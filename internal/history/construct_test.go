package history

import (
	"testing"
)

// runMachine feeds h's invocations into m and checks responses match.
func runMachine(t *testing.T, m Machine, h History) {
	t.Helper()
	for i, o := range h {
		got := m.Invoke(o.Thread, o.Class, o.Args)
		if len(got) != len(o.Ret) {
			t.Fatalf("step %d (%v): ret %v, want %v", i, o, got, o.Ret)
		}
		for j := range got {
			if got[j] != o.Ret[j] {
				t.Fatalf("step %d (%v): ret %v, want %v", i, o, got, o.Ret)
			}
		}
	}
}

var putMaxX = History{op(0, "put", []int64{2}, 0)}
var putMaxY = History{
	op(0, "put", []int64{1}, 0),
	op(1, "put", []int64{1}, 0),
	op(2, "max", nil, 2),
}

// Figure 1's mns replays H correctly but conflicts everywhere.
func TestNonScalableReplaysAndConflicts(t *testing.T) {
	h := putMaxX.Concat(putMaxY)
	m := NewNonScalable(h, NewPutMax)
	runMachine(t, m, h)
	cs := Conflicts(m.Log(), len(putMaxX), len(h))
	if len(cs) == 0 {
		t.Error("mns must conflict on its shared history component")
	}
}

// mns emulates the reference once input diverges from H.
func TestNonScalableDivergenceEmulates(t *testing.T) {
	h := putMaxX.Concat(putMaxY)
	m := NewNonScalable(h, NewPutMax)
	runMachine(t, m, putMaxX) // replay the X prefix
	// Diverge: a put(9) that is not in H.
	if got := m.Invoke(1, "put", []int64{9}); got[0] != 0 {
		t.Fatalf("divergent put ret = %v", got)
	}
	if got := m.Invoke(2, "max", nil); got[0] != 9 {
		t.Errorf("max after divergence = %v, want 9", got)
	}
}

// Figure 2's m: correct responses along H, and the commutative region's
// steps are conflict-free — the constructive heart of the rule's proof.
func TestConstructedScalableImplConflictFree(t *testing.T) {
	m := NewScalable(putMaxX, putMaxY, NewPutMax)
	h := putMaxX.Concat(putMaxY)
	runMachine(t, m, h)
	cs := Conflicts(m.Log(), len(putMaxX), len(h))
	if len(cs) != 0 {
		t.Errorf("commutative region must be conflict-free, got conflicts on %v", cs)
	}
}

// The commutative region may arrive in any reordering; m still answers
// correctly and conflict-free (per-thread queues are order-independent).
func TestConstructedScalableImplReorderedRegion(t *testing.T) {
	for _, y2 := range Reorderings(putMaxY) {
		m := NewScalable(putMaxX, putMaxY, NewPutMax)
		h := putMaxX.Concat(y2)
		runMachine(t, m, h)
		cs := Conflicts(m.Log(), len(putMaxX), len(h))
		if len(cs) != 0 {
			t.Errorf("reordering %v: conflicts on %v", y2, cs)
		}
	}
}

// Divergence inside the commutative region: m reconstructs H′ from
// per-thread queues (in some order — valid by SIM commutativity) and
// emulates the reference; responses stay spec-valid.
func TestConstructedScalableImplDivergesInRegion(t *testing.T) {
	m := NewScalable(putMaxX, putMaxY, NewPutMax)
	runMachine(t, m, putMaxX)
	// Consume part of the region...
	if got := m.Invoke(0, "put", []int64{1}); got[0] != 0 {
		t.Fatalf("put ret %v", got)
	}
	// ...then diverge with an action outside Y.
	if got := m.Invoke(1, "put", []int64{7}); got[0] != 0 {
		t.Fatalf("divergent put ret %v", got)
	}
	// The reference must now reflect put(2), put(1), put(7).
	if got := m.Invoke(2, "max", nil); got[0] != 7 {
		t.Errorf("max after divergence = %v, want 7", got)
	}
}

// §3.6's trade-off: per-thread-maxima and shared-max implementations each
// scale for a different subregion of H, but neither (nor any single
// implementation) is conflict-free across all of H. We demonstrate the two
// strategies with the Figure 2 construction applied to the two choices of
// commutative region.
func TestPutMaxAlternativeRegions(t *testing.T) {
	h := History{
		op(0, "put", []int64{1}, 0),
		op(1, "put", []int64{1}, 0),
		op(2, "max", nil, 1),
	}
	// Strategy 1: scale the two puts (per-thread maxima); max reconciles.
	m1 := NewScalable(nil, h[:2], NewPutMax)
	runMachine(t, m1, h[:2])
	if cs := Conflicts(m1.Log(), 0, 2); len(cs) != 0 {
		t.Errorf("puts region should be conflict-free, got %v", cs)
	}
	// Strategy 2: scale put||max after the first put (global max already 1).
	m2 := NewScalable(h[:1], h[1:], NewPutMax)
	runMachine(t, m2, h)
	if cs := Conflicts(m2.Log(), 1, 3); len(cs) != 0 {
		t.Errorf("put||max region should be conflict-free, got %v", cs)
	}
	// The full H is not SIM-commutative, so no region covers all of it:
	// put(1) before vs after max changes max's answer.
	s := RefSpec{New: NewPutMax}
	var maxes []Op
	for v := int64(0); v <= 2; v++ {
		maxes = append(maxes, op(9, "max", nil, v))
	}
	zs := ObserverUniverse(maxes, 1)
	if SIMCommutes(s, nil, h, zs) {
		t.Error("all of H must not SIM-commute")
	}
}

// The conflict analyzer itself: cross-thread write/read on one component.
func TestConflictsAnalyzer(t *testing.T) {
	log := []CompAccess{
		{Step: 0, Thread: 0, Comp: "x", Write: true},
		{Step: 1, Thread: 1, Comp: "x"},
		{Step: 2, Thread: 1, Comp: "y", Write: true},
	}
	if cs := Conflicts(log, 0, 3); len(cs) != 1 || cs[0] != "x" {
		t.Errorf("Conflicts = %v", cs)
	}
	// Restricting the window to the last step hides the x conflict.
	if cs := Conflicts(log, 2, 3); len(cs) != 0 {
		t.Errorf("windowed Conflicts = %v", cs)
	}
}
