package history

// Register is a get/set cell, the reference for §3.2's monotonicity
// example.
type Register struct{ v int64 }

// NewRegister returns a zero register state.
func NewRegister() RefState { return &Register{} }

// Apply implements RefState: set(x) -> [0]; get() -> [v].
func (r *Register) Apply(class string, args []int64) []int64 {
	switch class {
	case "set":
		r.v = args[0]
		return []int64{0}
	case "get":
		return []int64{r.v}
	}
	panic("history: register op " + class)
}

// Clone implements RefState.
func (r *Register) Clone() RefState { c := *r; return &c }

// PutMax is §3.6's interface: put(x) records a sample, max() returns the
// maximum recorded so far (or 0).
type PutMax struct{ max int64 }

// NewPutMax returns an empty sample set.
func NewPutMax() RefState { return &PutMax{} }

// Apply implements RefState.
func (p *PutMax) Apply(class string, args []int64) []int64 {
	switch class {
	case "put":
		if args[0] > p.max {
			p.max = args[0]
		}
		return []int64{0}
	case "max":
		return []int64{p.max}
	}
	panic("history: putmax op " + class)
}

// Clone implements RefState.
func (p *PutMax) Clone() RefState { c := *p; return &c }

// Counter supports inc() and read(); inc does not commute with read but
// incs commute with each other — a minimal interface with a nontrivial
// commutative class.
type Counter struct{ n int64 }

// NewCounter returns a zero counter.
func NewCounter() RefState { return &Counter{} }

// Apply implements RefState.
func (c *Counter) Apply(class string, args []int64) []int64 {
	switch class {
	case "inc":
		c.n++
		return []int64{0}
	case "read":
		return []int64{c.n}
	}
	panic("history: counter op " + class)
}

// Clone implements RefState.
func (c *Counter) Clone() RefState { cp := *c; return &cp }
