// Package history implements the paper's §3 formalism: histories of
// actions, specifications, SI and SIM commutativity, implementations as
// step functions with component-level access tracking, and the constructed
// implementations of Figures 1 and 2 whose conflict-freedom inside
// SIM-commutative regions proves the scalable commutativity rule.
//
// Histories here are serial: each invocation is immediately followed by its
// response, so a history is a sequence of completed operations. This is the
// same sequential-consistency restriction §5.1 of the paper adopts for
// ANALYZER; reorderings still permute operations across threads while
// preserving each thread's program order, which is exactly the freedom the
// SIM-commutativity definitions quantify over.
package history

import (
	"fmt"
	"strings"
)

// Op is one completed operation: an invocation and its response.
type Op struct {
	// Thread issues the operation.
	Thread int
	// Class names the operation (e.g. "put", "max").
	Class string
	// Args are the invocation arguments.
	Args []int64
	// Ret is the response value vector.
	Ret []int64
}

func (o Op) String() string {
	args := make([]string, len(o.Args))
	for i, a := range o.Args {
		args[i] = fmt.Sprint(a)
	}
	rets := make([]string, len(o.Ret))
	for i, r := range o.Ret {
		rets[i] = fmt.Sprint(r)
	}
	return fmt.Sprintf("t%d:%s(%s)=%s", o.Thread, o.Class, strings.Join(args, ","), strings.Join(rets, ","))
}

// equalOp compares operations including responses.
func equalOp(a, b Op) bool {
	if a.Thread != b.Thread || a.Class != b.Class ||
		len(a.Args) != len(b.Args) || len(a.Ret) != len(b.Ret) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	for i := range a.Ret {
		if a.Ret[i] != b.Ret[i] {
			return false
		}
	}
	return true
}

// History is a serial history: a sequence of completed operations.
type History []Op

// Restrict returns the thread-restricted subhistory H|t.
func (h History) Restrict(t int) History {
	var out History
	for _, o := range h {
		if o.Thread == t {
			out = append(out, o)
		}
	}
	return out
}

// Concat returns h || g.
func (h History) Concat(g History) History {
	out := make(History, 0, len(h)+len(g))
	out = append(out, h...)
	return append(out, g...)
}

// Equal compares histories elementwise.
func (h History) Equal(g History) bool {
	if len(h) != len(g) {
		return false
	}
	for i := range h {
		if !equalOp(h[i], g[i]) {
			return false
		}
	}
	return true
}

// IsReordering reports whether g is a reordering of h: same operations,
// possibly interleaved differently, with every thread's order preserved.
func IsReordering(h, g History) bool {
	if len(h) != len(g) {
		return false
	}
	threads := map[int]bool{}
	for _, o := range h {
		threads[o.Thread] = true
	}
	for _, o := range g {
		threads[o.Thread] = true
	}
	for t := range threads {
		if !h.Restrict(t).Equal(g.Restrict(t)) {
			return false
		}
	}
	return true
}

// Reorderings enumerates every reordering of h (all interleavings of the
// per-thread sequences). The count is multinomial in the thread loads; keep
// regions short.
func Reorderings(h History) []History {
	perThread := map[int]History{}
	var threadOrder []int
	for _, o := range h {
		if _, ok := perThread[o.Thread]; !ok {
			threadOrder = append(threadOrder, o.Thread)
		}
		perThread[o.Thread] = append(perThread[o.Thread], o)
	}
	idx := make(map[int]int, len(threadOrder))
	var out []History
	cur := make(History, 0, len(h))
	var rec func()
	rec = func() {
		if len(cur) == len(h) {
			cp := make(History, len(cur))
			copy(cp, cur)
			out = append(out, cp)
			return
		}
		for _, t := range threadOrder {
			if idx[t] < len(perThread[t]) {
				cur = append(cur, perThread[t][idx[t]])
				idx[t]++
				rec()
				idx[t]--
				cur = cur[:len(cur)-1]
			}
		}
	}
	rec()
	return out
}

// Prefixes returns every prefix of h, including the empty and full ones.
func Prefixes(h History) []History {
	out := make([]History, 0, len(h)+1)
	for i := 0; i <= len(h); i++ {
		out = append(out, h[:i])
	}
	return out
}

// Spec decides history membership. Implementations must be prefix-closed:
// if OK(h) then OK of every prefix of h.
type Spec interface {
	OK(h History) bool
}

// RefState is a deterministic reference state machine: Apply executes one
// operation and returns its response.
type RefState interface {
	Apply(class string, args []int64) []int64
	// Clone returns an independent copy of the state.
	Clone() RefState
}

// RefSpec derives a specification from a deterministic reference state
// machine: a history is in the spec iff replaying its invocations yields
// exactly its responses.
type RefSpec struct {
	New func() RefState
}

// OK implements Spec.
func (s RefSpec) OK(h History) bool {
	st := s.New()
	for _, o := range h {
		got := st.Apply(o.Class, o.Args)
		if len(got) != len(o.Ret) {
			return false
		}
		for i := range got {
			if got[i] != o.Ret[i] {
				return false
			}
		}
	}
	return true
}

// SICommutes reports whether region y SI-commutes in x||y (§3.2): for every
// reordering y' of y and every observer suffix z drawn from zs,
// x||y||z ∈ S ⟺ x||y'||z ∈ S. The observer universe zs bounds the
// quantification over "any action sequence Z"; callers supply a generator
// covering the interface's observations.
func SICommutes(s Spec, x, y History, zs []History) bool {
	base := x.Concat(y)
	for _, y2 := range Reorderings(y) {
		alt := x.Concat(y2)
		for _, z := range zs {
			if s.OK(base.Concat(z)) != s.OK(alt.Concat(z)) {
				return false
			}
		}
		// The empty observer distinguishes invalid responses inside y'.
		if s.OK(base) != s.OK(alt) {
			return false
		}
	}
	return true
}

// SIMCommutes reports whether region y SIM-commutes in x||y (§3.2): every
// prefix p of every reordering of y must SI-commute in x||p. Monotonicity
// is what the rule's proof needs; §3.2's get/set example shows SI alone is
// not monotonic.
func SIMCommutes(s Spec, x, y History, zs []History) bool {
	for _, y2 := range Reorderings(y) {
		for _, p := range Prefixes(y2) {
			if !SICommutes(s, x, p, zs) {
				return false
			}
		}
	}
	return true
}

// ObserverUniverse builds bounded observer suffixes from candidate
// completed operations: all sequences up to maxLen.
func ObserverUniverse(candidates []Op, maxLen int) []History {
	out := []History{nil}
	prev := []History{nil}
	for l := 0; l < maxLen; l++ {
		var next []History
		for _, h := range prev {
			for _, c := range candidates {
				nh := append(append(History{}, h...), c)
				next = append(next, nh)
				out = append(out, nh)
			}
		}
		prev = next
	}
	return out
}

// CompletedOps enumerates candidate completed operations for observers:
// every class/args invocation paired with every plausible return drawn from
// rets.
func CompletedOps(thread int, class string, argSets [][]int64, rets [][]int64) []Op {
	var out []Op
	for _, args := range argSets {
		for _, r := range rets {
			out = append(out, Op{Thread: thread, Class: class, Args: args, Ret: r})
		}
	}
	return out
}
