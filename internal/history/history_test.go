package history

import (
	"testing"
)

func op(t int, class string, args []int64, ret ...int64) Op {
	return Op{Thread: t, Class: class, Args: args, Ret: ret}
}

func registerObservers() []History {
	// get() with every plausible return distinguishes register states.
	var ops []Op
	for v := int64(0); v <= 2; v++ {
		ops = append(ops, op(9, "get", nil, v))
	}
	return ObserverUniverse(ops, 1)
}

func TestRestrictAndReordering(t *testing.T) {
	h := History{
		op(0, "set", []int64{1}, 0),
		op(1, "set", []int64{2}, 0),
		op(0, "get", nil, 2),
	}
	r0 := h.Restrict(0)
	if len(r0) != 2 || r0[0].Class != "set" || r0[1].Class != "get" {
		t.Errorf("Restrict(0) = %v", r0)
	}
	g := History{h[1], h[0], h[2]}
	if !IsReordering(h, g) {
		t.Error("swapping independent-thread ops is a reordering")
	}
	bad := History{h[2], h[0], h[1]}
	if IsReordering(h, bad) {
		t.Error("violating thread 0's order is not a reordering")
	}
}

func TestReorderingsCount(t *testing.T) {
	// Two threads with 2 and 1 ops: C(3,1) = 3 interleavings.
	h := History{
		op(0, "set", []int64{1}, 0),
		op(0, "set", []int64{2}, 0),
		op(1, "set", []int64{3}, 0),
	}
	rs := Reorderings(h)
	if len(rs) != 3 {
		t.Fatalf("want 3 reorderings, got %d", len(rs))
	}
	for _, r := range rs {
		if !IsReordering(h, r) {
			t.Errorf("generated non-reordering %v", r)
		}
	}
}

func TestRefSpecMembership(t *testing.T) {
	s := RefSpec{New: NewRegister}
	ok := History{
		op(0, "set", []int64{1}, 0),
		op(1, "get", nil, 1),
	}
	if !s.OK(ok) {
		t.Error("valid history rejected")
	}
	bad := History{
		op(0, "set", []int64{1}, 0),
		op(1, "get", nil, 2),
	}
	if s.OK(bad) {
		t.Error("invalid response accepted")
	}
}

// §3.2's example: Y = [A=set(1), B=set(2), C=set(2)] with A and C on one
// thread and B on another. Per-thread order forces C=set(2) after A=set(1),
// so every reordering ends with a set(2) and Y SI-commutes; but its prefix
// [A, B] does not (order decides 1 vs 2), so Y does not SIM-commute. SI
// commutativity is non-monotonic.
func TestSetSetSIButNotSIM(t *testing.T) {
	s := RefSpec{New: NewRegister}
	zs := registerObservers()
	y := History{
		op(0, "set", []int64{1}, 0),
		op(1, "set", []int64{2}, 0),
		op(0, "set", []int64{2}, 0),
	}
	if !SICommutes(s, nil, y, zs) {
		t.Error("set(1);set(2);set(2) should SI-commute (all orders end at 2)")
	}
	prefix := y[:2]
	if SICommutes(s, nil, prefix, zs) {
		t.Error("set(1);set(2) must not SI-commute (order decides the value)")
	}
	if SIMCommutes(s, nil, y, zs) {
		t.Error("the region must not SIM-commute: its prefix is order-dependent")
	}
}

func TestSameValueSetsSIMCommute(t *testing.T) {
	s := RefSpec{New: NewRegister}
	zs := registerObservers()
	y := History{
		op(0, "set", []int64{2}, 0),
		op(1, "set", []int64{2}, 0),
	}
	if !SIMCommutes(s, nil, y, zs) {
		t.Error("identical sets should SIM-commute")
	}
}

func TestIncsSIMCommute(t *testing.T) {
	s := RefSpec{New: NewCounter}
	var reads []Op
	for v := int64(0); v <= 4; v++ {
		reads = append(reads, op(9, "read", nil, v))
	}
	zs := ObserverUniverse(reads, 1)
	y := History{
		op(0, "inc", nil, 0),
		op(1, "inc", nil, 0),
	}
	if !SIMCommutes(s, nil, y, zs) {
		t.Error("incs should SIM-commute")
	}
	y2 := History{
		op(0, "inc", nil, 0),
		op(1, "read", nil, 1),
	}
	if SIMCommutes(s, nil, y2, zs) {
		t.Error("inc and read must not commute (read sees the order)")
	}
}

// State dependence (§3.2's open example, transposed to put/max): put(1) and
// max() commute when a larger sample is already recorded, but not on an
// empty state.
func TestStateDependentCommutativity(t *testing.T) {
	s := RefSpec{New: NewPutMax}
	var maxes []Op
	for v := int64(0); v <= 3; v++ {
		maxes = append(maxes, op(9, "max", nil, v))
	}
	zs := ObserverUniverse(maxes, 1)

	x := History{op(2, "put", []int64{3}, 0)}
	y := History{
		op(0, "put", []int64{1}, 0),
		op(1, "max", nil, 3),
	}
	if !SIMCommutes(s, x, y, zs) {
		t.Error("put(1)/max should commute after put(3)")
	}

	yEmpty := History{
		op(0, "put", []int64{1}, 0),
		op(1, "max", nil, 1),
	}
	if SIMCommutes(s, nil, yEmpty, zs) {
		t.Error("put(1)/max=1 must not commute on the empty state")
	}
}

// §3.6's put/put region from H = [put(1), put(1), max=1]: the two puts
// SIM-commute, as does put||max after both puts.
func TestPutMaxRegions(t *testing.T) {
	s := RefSpec{New: NewPutMax}
	var maxes []Op
	for v := int64(0); v <= 2; v++ {
		maxes = append(maxes, op(9, "max", nil, v))
	}
	zs := ObserverUniverse(maxes, 1)
	puts := History{
		op(0, "put", []int64{1}, 0),
		op(1, "put", []int64{1}, 0),
	}
	if !SIMCommutes(s, nil, puts, zs) {
		t.Error("identical puts should SIM-commute")
	}
	tail := History{
		op(1, "put", []int64{1}, 0),
		op(2, "max", nil, 1),
	}
	x := History{op(0, "put", []int64{1}, 0)}
	if !SIMCommutes(s, x, tail, zs) {
		t.Error("put(1)||max=1 should commute after put(1)")
	}
}

func TestPrefixesIncludesEmptyAndFull(t *testing.T) {
	h := History{op(0, "set", []int64{1}, 0), op(1, "set", []int64{2}, 0)}
	ps := Prefixes(h)
	if len(ps) != 3 || len(ps[0]) != 0 || len(ps[2]) != 2 {
		t.Errorf("Prefixes = %v", ps)
	}
}

func TestObserverUniverseSize(t *testing.T) {
	ops := []Op{op(9, "get", nil, 0), op(9, "get", nil, 1)}
	// Lengths 0,1,2 over 2 candidates: 1 + 2 + 4 = 7.
	if got := len(ObserverUniverse(ops, 2)); got != 7 {
		t.Errorf("universe size = %d, want 7", got)
	}
}
