package history

import (
	"fmt"
	"sort"
)

// CompAccess records one component access by a machine step.
type CompAccess struct {
	// Step is the index of the invocation being executed.
	Step int
	// Thread is the invoking thread.
	Thread int
	// Comp names the state component.
	Comp string
	// Write distinguishes writes from reads.
	Write bool
}

// store is a component store with access tracking, the executable analog of
// §3.3's state tuples: a machine step "writes component i" when it changes
// it and "reads component i" when the component may affect the step.
type store struct {
	comps map[string]any
	log   []CompAccess
	step  int
	th    int
}

func newStore() *store { return &store{comps: map[string]any{}} }

func (s *store) read(name string) any {
	s.log = append(s.log, CompAccess{Step: s.step, Thread: s.th, Comp: name})
	return s.comps[name]
}

func (s *store) write(name string, v any) {
	s.log = append(s.log, CompAccess{Step: s.step, Thread: s.th, Comp: name, Write: true})
	s.comps[name] = v
}

// Conflicts analyzes a machine's access log within the step index range
// [from, to): two accesses conflict when they are from different threads,
// touch the same component, and at least one is a write.
func Conflicts(log []CompAccess, from, to int) []string {
	type compStat struct {
		writers map[int]bool
		readers map[int]bool
	}
	stats := map[string]*compStat{}
	for _, a := range log {
		if a.Step < from || a.Step >= to {
			continue
		}
		st := stats[a.Comp]
		if st == nil {
			st = &compStat{writers: map[int]bool{}, readers: map[int]bool{}}
			stats[a.Comp] = st
		}
		if a.Write {
			st.writers[a.Thread] = true
		} else {
			st.readers[a.Thread] = true
		}
	}
	var out []string
	for comp, st := range stats {
		conflicted := len(st.writers) > 1
		if !conflicted && len(st.writers) == 1 {
			for r := range st.readers {
				for w := range st.writers {
					if r != w {
						conflicted = true
					}
				}
			}
		}
		if conflicted {
			out = append(out, comp)
		}
	}
	sort.Strings(out)
	return out
}

// Machine executes invocations serially, producing responses.
type Machine interface {
	// Invoke runs one operation on the given thread.
	Invoke(thread int, class string, args []int64) []int64
	// Log returns the access log so far.
	Log() []CompAccess
}

// NonScalable is Figure 1's constructed implementation mns: it replays the
// target history H from a single shared history component, so any two steps
// conflict on "h", and falls back to emulating the reference on divergence.
type NonScalable struct {
	st  *store
	ref func() RefState
}

// NewNonScalable builds mns specialized for history h over the reference.
func NewNonScalable(h History, ref func() RefState) *NonScalable {
	m := &NonScalable{st: newStore(), ref: ref}
	m.st.comps["h"] = h
	m.st.comps["done"] = History{}
	m.st.comps["refstate"] = nil
	return m
}

// Log implements Machine.
func (m *NonScalable) Log() []CompAccess { return m.st.log }

// Invoke implements Machine.
func (m *NonScalable) Invoke(thread int, class string, args []int64) []int64 {
	defer func() { m.st.step++ }()
	m.st.th = thread

	hv := m.st.read("h")
	if rem, ok := hv.(History); ok {
		if len(rem) > 0 && matches(rem[0], thread, class, args) {
			// Replay mode: respond from H without touching the reference.
			done := m.st.read("done").(History)
			m.st.write("done", append(append(History{}, done...), rem[0]))
			m.st.write("h", rem[1:])
			return rem[0].Ret
		}
		// Input diverged (or H is complete): initialize the reference
		// with H′, the invocations consistent with what was replayed.
		done := m.st.read("done").(History)
		rs := m.ref()
		for _, o := range done {
			rs.Apply(o.Class, o.Args)
		}
		m.st.write("refstate", rs)
		m.st.write("h", "EMULATE")
	}
	rs := m.st.read("refstate").(RefState)
	ret := rs.Apply(class, args)
	m.st.write("refstate", rs)
	return ret
}

// Scalable is Figure 2's constructed implementation m: per-thread history
// components with a COMMUTE marker; inside the commutative region each step
// touches only the invoking thread's components, so the region is
// conflict-free. On divergence it reconstructs an invocation sequence
// consistent with the per-thread queues — SIM commutativity guarantees any
// such order yields indistinguishable results — and emulates the reference.
type Scalable struct {
	st      *store
	ref     func() RefState
	threads []int
}

// commuteMarker is Figure 2's special COMMUTE action.
var commuteMarker = Op{Class: "COMMUTE"}

// NewScalable builds m specialized for H = x||y over the reference, where y
// is the SIM-commutative region.
func NewScalable(x, y History, ref func() RefState) *Scalable {
	threadSet := map[int]bool{}
	for _, o := range x.Concat(y) {
		threadSet[o.Thread] = true
	}
	m := &Scalable{st: newStore(), ref: ref}
	for t := range threadSet {
		m.threads = append(m.threads, t)
	}
	sort.Ints(m.threads)
	for _, t := range m.threads {
		q := append(History{}, x...)
		q = append(q, commuteMarker)
		q = append(q, y.Restrict(t)...)
		m.st.comps[hComp(t)] = q
		m.st.comps[cComp(t)] = false
		m.st.comps[dComp(t)] = History{}
	}
	m.st.comps["refstate"] = nil
	m.st.comps["emulate"] = false
	// donex records the replayed prefix of X. Only replay-mode steps
	// touch it, and those already share the h[u] components, so it adds
	// no conflicts inside the commutative region.
	m.st.comps["donex"] = History{}
	return m
}

func hComp(t int) string { return fmt.Sprintf("h[%d]", t) }
func cComp(t int) string { return fmt.Sprintf("commute[%d]", t) }

// dComp tracks the consumed prefix of thread t's commutative region; it is
// a t-local component, so it adds no conflicts.
func dComp(t int) string { return fmt.Sprintf("donecommute[%d]", t) }

// Log implements Machine.
func (m *Scalable) Log() []CompAccess { return m.st.log }

// Invoke implements Machine.
func (m *Scalable) Invoke(thread int, class string, args []int64) []int64 {
	defer func() { m.st.step++ }()
	m.st.th = thread
	t := thread

	if m.st.read("emulate").(bool) {
		return m.emulateStep(class, args)
	}
	q := m.st.read(hComp(t)).(History)
	if len(q) > 0 && q[0].Class == commuteMarker.Class {
		m.st.write(cComp(t), true)
		q = q[1:]
		m.st.write(hComp(t), q)
	}
	if len(q) > 0 && matches(q[0], t, class, args) {
		ret := q[0].Ret
		if m.st.read(cComp(t)).(bool) {
			// Conflict-free mode: only thread-t components change.
			done := m.st.read(dComp(t)).(History)
			m.st.write(dComp(t), append(append(History{}, done...), q[0]))
			m.st.write(hComp(t), q[1:])
			return ret
		}
		// Replay mode: every thread's queue advances past this action.
		donex := m.st.read("donex").(History)
		m.st.write("donex", append(append(History{}, donex...), q[0]))
		for _, u := range m.threads {
			qu := m.st.read(hComp(u)).(History)
			if len(qu) > 0 && equalOp(qu[0], q[0]) {
				m.st.write(hComp(u), qu[1:])
			}
		}
		return ret
	}
	// Divergence: rebuild an invocation sequence consistent with the
	// per-thread queues. The inter-thread order of consumed commutative
	// actions is unrecoverable; any interleaving is valid by SIM
	// commutativity, so consume them thread by thread.
	m.initEmulation()
	return m.emulateStep(class, args)
}

// initEmulation rebuilds H′, an invocation sequence consistent with the
// observed consumption: the replayed X prefix in order, then each thread's
// consumed commutative actions. The inter-thread order inside the
// commutative region is unrecoverable from per-thread components, and SIM
// commutativity is exactly what makes any chosen interleaving valid.
func (m *Scalable) initEmulation() {
	var consistent History
	consistent = append(consistent, m.st.read("donex").(History)...)
	for _, u := range m.threads {
		consistent = append(consistent, m.st.read(dComp(u)).(History)...)
	}
	rs := m.ref()
	for _, o := range consistent {
		rs.Apply(o.Class, o.Args)
	}
	m.st.write("refstate", rs)
	m.st.write("emulate", true)
	for _, u := range m.threads {
		m.st.write(hComp(u), "EMULATE")
	}
}

func (m *Scalable) emulateStep(class string, args []int64) []int64 {
	rs := m.st.read("refstate").(RefState)
	ret := rs.Apply(class, args)
	m.st.write("refstate", rs)
	return ret
}

func matches(o Op, thread int, class string, args []int64) bool {
	if o.Thread != thread || o.Class != class || len(o.Args) != len(args) {
		return false
	}
	for i := range args {
		if o.Args[i] != args[i] {
			return false
		}
	}
	return true
}
