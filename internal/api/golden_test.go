package api

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/sweep"
)

var update = flag.Bool("update", false, "rewrite the wire-format golden files")

// sampleTest is a representative concrete test case exercising every Setup
// table the wire must carry (files, inodes, fds, pipes, VMAs, queues).
func sampleTest() kernel.TestCase {
	return kernel.TestCase{
		ID: "rename-rename-p0-t1",
		Setup: kernel.Setup{
			Files:  []kernel.SetupFile{{Name: "f0", Inum: 1}, {Name: "f1", Inum: 1}},
			Inodes: []kernel.SetupInode{{Inum: 1, ExtraLinks: 1, Len: 2, Pages: map[int64]int64{0: 7}}},
			FDs:    []kernel.SetupFD{{Proc: 0, FD: 3, Inum: 1, Off: 1}, {Proc: 1, FD: 4, Pipe: true, PipeID: 2, WriteEnd: true}},
			Pipes:  []kernel.SetupPipe{{ID: 2, Items: []int64{5}}},
			VMAs:   []kernel.SetupVMA{{Proc: 0, Page: 8, Anon: true, Val: 3, Writable: true}},
			Queues: []kernel.SetupQueue{{Core: -1, Items: []int64{9, 10}}},
			KVs:    []kernel.SetupKV{{Key: 1, Val: 2}},
		},
		Calls: [2]kernel.Call{
			{Op: "rename", Proc: 0, Args: map[string]int64{"old": 0, "new": 1}},
			{Op: "rename", Proc: 1, Args: map[string]int64{"old": 1, "new": 0}},
		},
	}
}

// goldenCases enumerates one canonical value per wire type. The encodings
// are the v1 contract: if the encoding of an existing field changes,
// Version must be bumped and both Client bindings revisited. Purely
// additive omitempty/omitzero fields (and fixture extensions exercising
// them) stay within v1: old peers ignore the unknown keys, and absent
// keys decode to zero values.
func goldenCases() map[string]any {
	pair := sweep.PairResult{
		OpA: "rename", OpB: "rename", Tests: 6,
		Cells:     []sweep.KernelCell{{Kernel: "linux", Total: 6, Conflicts: 2}, {Kernel: "sv6", Total: 6, Conflicts: 0}},
		Unknown:   1,
		Cached:    true,
		ElapsedMS: 12.5,
		StartMS:   2.25,
		Phases:    sweep.PhaseTimes{AnalyzeMS: 1.5, TestgenMS: 2.25, CheckMS: 8, SolverMS: 0.75},
		Solver:    sweep.SolverCounters{SatCalls: 37, BudgetHits: 1, InternHits: 1065},
	}
	vmPair := sweep.PairResult{
		OpA: "mmap", OpB: "munmap", Tests: 4,
		Cells:     []sweep.KernelCell{{Kernel: "memvm", Total: 4, Conflicts: 1}},
		ElapsedMS: 3.5,
		Phases:    sweep.PhaseTimes{AnalyzeMS: 1, TestgenMS: 0.5, CheckMS: 2},
	}
	return map[string]any{
		"error": &Error{Code: CodeBadRequest, Message: `unknown spec "posxi" (known specs: posix, queue)`},
		"specs_response": &SpecsResponse{Version: Version, Specs: []SpecInfo{{
			Name: "queue", Ops: []string{"send", "recv", "send_any", "recv_any"},
			Sets:       map[string][]string{"any": {"send_any", "recv_any"}, "ordered": {"send", "recv"}},
			DefaultSet: "all", Impls: []string{"memq"},
		}}},
		"analyze_request": &AnalyzeRequest{Version: Version, OpA: "stat", OpB: "unlink",
			Options: Options{Spec: "posix", LowestFD: true, MaxPaths: 128}},
		"analysis": &Analysis{Spec: "posix", OpA: "stat", OpB: "unlink",
			Paths: 4, Commutative: 2, OrderDependent: 2, Unknown: 1,
			Clauses: []string{"the names differ", "the file is absent in both orders"},
			PathDetails: []PathSummary{
				{Condition: "(and (not (= stat.0.fname unlink.1.fname)))", Commutes: true},
				{Condition: "(= stat.0.fname unlink.1.fname)", CanDiverge: true, Unknown: true},
			}},
		"testgen_request": &TestgenRequest{Version: Version, OpA: "rename", OpB: "rename",
			Options: Options{MaxTestsPerPath: 2}},
		"test_set": &TestSet{Spec: "posix", OpA: "rename", OpB: "rename",
			Tests: []kernel.TestCase{sampleTest()}, Unknown: 1},
		"check_request": &CheckRequest{Version: Version, Kernel: "sv6",
			Tests: []kernel.TestCase{sampleTest()}, Options: Options{Spec: "posix"}},
		"check_summary": &CheckSummary{Kernel: "sv6", Total: 2, Conflicts: 1,
			Verdicts: []TestVerdict{
				{TestID: "a", ConflictFree: true, Commuted: true},
				{TestID: "b", Commuted: true, Conflicts: []string{"inode[1].nlink"}},
			}},
		"sweep_request": &SweepRequest{Version: Version,
			Options: Options{Spec: "posix", Ops: "fs", Kernels: []string{"linux", "sv6"}, Workers: 8}},
		"frame_update": &Frame{Type: FrameUpdate,
			Progress: &Progress{Pair: "rename/rename", Done: 3, Total: 45, Tests: 6, Cached: true, PairMS: 12.5, ElapsedMS: 810},
			Pair:     &pair},
		"frame_result": &Frame{Type: FrameResult, Result: &SweepResult{
			Spec: "posix", Pairs: []sweep.PairResult{pair}, Workers: 8, ElapsedMS: 910.25,
			Cache:            &CacheStats{TestgenHits: 40, TestgenMisses: 5, CheckHits: 80, CheckMisses: 10},
			CacheWriteErrors: 1,
		}},
		"frame_error": &Frame{Type: FrameError, Error: &Error{Code: CodeCanceled, Message: "context canceled"}},
		// One non-POSIX spec's result frame: pins that a vm pair result —
		// an implementation cell naming the memvm reference kernel under
		// the "vm" spec identity — rides the same v1 encoding.
		"frame_result_vm": &Frame{Type: FrameResult, Result: &SweepResult{
			Spec: "vm", Pairs: []sweep.PairResult{vmPair}, Workers: 2, ElapsedMS: 4.25,
		}},
		"fleet_claim_request": &FleetClaimRequest{Version: Version, Worker: "host-a-8372", Max: 4,
			Sweep: FleetSweepSpec{Spec: "posix", Ops: []string{"open", "rename"}, Kernels: []string{"linux", "sv6"},
				LowestFD: true, TestgenLowestFD: true, MaxPaths: 128, MaxTestsPerPath: 2},
			Renew:   []string{"ab12cd34.7"},
			Release: []string{"ab12cd34.3"}},
		"fleet_claim_response": &FleetClaimResponse{SweepID: "ab12cd34ef", TTLMS: 30000,
			Leases:    []FleetLease{{Pair: "open/rename", ID: "ab12cd34.8"}, {Pair: "rename/rename", ID: "ab12cd34.9", Stolen: true}},
			Total:     3, Completed: 1, Pending: 0, Leased: 2},
		"fleet_result_request": &FleetResultRequest{Version: Version, Worker: "host-a-8372",
			Sweep:   FleetSweepSpec{Spec: "posix", Ops: []string{"rename"}, Kernels: []string{"sv6"}},
			Results: []FleetPairDone{{Lease: "ab12cd34.8", Pair: pair, TestgenKey: "0011223344556677"}}},
		"fleet_result_response": &FleetResultResponse{Accepted: 1, Duplicate: 1, Stale: 1,
			Completed: 3, Total: 3, Done: true},
		"fleet_status_response": &FleetStatusResponse{SweepID: "ab12cd34ef",
			Total: 3, Completed: 3, Requeued: 1, Done: true,
			Workers: map[string]FleetWorkerStatus{"host-a-8372": {Leased: 0, Completed: 2, Stolen: 1}},
			Results: []sweep.PairResult{pair}},
	}
}

// TestFleetVersionTracksWire pins the fleet protocol's version stamp to
// the wire version: the fleet routes live under /v1/ and their requests
// must version together with the rest of the contract.
func TestFleetVersionTracksWire(t *testing.T) {
	if sweep.FleetAPIVersion != Version {
		t.Fatalf("sweep.FleetAPIVersion = %d, api.Version = %d; the fleet protocol must version with the wire contract", sweep.FleetAPIVersion, Version)
	}
}

// TestWireGolden pins every wire encoding byte-for-byte against its
// golden file, and round-trips the bytes back into an equal value — the
// two halves of the interface contract: stability and losslessness.
func TestWireGolden(t *testing.T) {
	for name, v := range goldenCases() {
		t.Run(name, func(t *testing.T) {
			got, err := json.MarshalIndent(v, "", "\t")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", name+".golden.json")
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/api -update` after a deliberate wire change AND bump api.Version)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("wire encoding of %s changed from golden — this breaks remote clients; bump api.Version if deliberate\ngot:\n%s\nwant:\n%s", name, got, want)
			}

			// Round-trip: decoding the golden bytes must reproduce the
			// value exactly (no field silently dropped by a tag typo).
			back := reflect.New(reflect.TypeOf(v).Elem()).Interface()
			if err := json.Unmarshal(want, back); err != nil {
				t.Fatalf("golden does not decode: %v", err)
			}
			if !reflect.DeepEqual(v, back) {
				t.Errorf("round-trip of %s lost data:\nsent: %#v\ngot:  %#v", name, v, back)
			}
		})
	}
}

// TestProgressEventRoundTrip pins the Progress <-> sweep.Event conversion.
func TestProgressEventRoundTrip(t *testing.T) {
	ev := sweep.Event{Pair: "open/close", Done: 2, Total: 6, Tests: 9, Cached: true, PairMS: 3.25, Elapsed: 42 * time.Millisecond}
	back := ProgressFromEvent(ev).Event()
	if !reflect.DeepEqual(ev, back) {
		t.Errorf("round-trip: %+v vs %+v", ev, back)
	}
}

// TestResultRoundTrip pins SweepResult <-> sweep.Result, including the
// nil-vs-zero cache distinction.
func TestResultRoundTrip(t *testing.T) {
	res := &sweep.Result{
		Spec:    "posix",
		Pairs:   []sweep.PairResult{{OpA: "stat", OpB: "stat", Tests: 1, ElapsedMS: 1}},
		Workers: 4, Elapsed: 1500 * 1000 * 1000,
		Cache:            sweep.CacheStats{TestgenHits: 1, TestgenMisses: 2, CheckHits: 3, CheckMisses: 4},
		CacheWriteErrors: 5,
	}
	back := ResultFromSweep(res, true).ToSweep()
	if !reflect.DeepEqual(res, back) {
		t.Errorf("round-trip with cache:\nsent: %+v\ngot:  %+v", res, back)
	}
	if got := ResultFromSweep(res, false); got.Cache != nil {
		t.Error("hasCache=false still produced wire cache stats")
	}
}

// TestCheckVersion pins version enforcement.
func TestCheckVersion(t *testing.T) {
	if err := CheckVersion(Version); err != nil {
		t.Errorf("current version rejected: %v", err)
	}
	err := CheckVersion(Version + 1)
	if err == nil {
		t.Fatal("future version accepted")
	}
	if err.Code != CodeVersionMismatch {
		t.Errorf("code = %q, want %q", err.Code, CodeVersionMismatch)
	}
}
