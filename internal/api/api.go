// Package api defines the COMMUTER toolchain's versioned JSON wire
// format: the interface contract between a commuter.Client and a
// `commuter serve` instance. The pipeline itself is model-agnostic, and
// so is the wire format — every payload speaks in plain names
// (spec/op/kernel strings) and plain data (kernel.TestCase, per-pair
// sweep results), never in symbolic expressions or function values, which
// is exactly what makes the local and remote bindings of the Client
// interface interchangeable.
//
// Versioning contract: Version stamps every request, and the server
// rejects mismatches outright (CodeVersionMismatch) rather than guessing
// at field semantics. The encodings of every request, response and stream
// frame are pinned byte-for-byte by golden files in testdata/ — a change
// that moves any of them must bump Version deliberately, the same
// discipline the sweep cache applies with CacheVersion.
//
// Sweeps stream: the response to PathSweep is NDJSON, one Frame per line
// — progress/pair updates as they complete, then exactly one terminal
// "result" or "error" frame.
package api

import (
	"fmt"
	"time"

	"repro/internal/kernel"
	"repro/internal/sweep"
)

// Version is the wire-format version. Bump it whenever any encoding in
// this package (or the JSON shape of the internal types it embeds —
// kernel.TestCase, sweep.PairResult) changes incompatibly.
const Version = 1

// Endpoint paths. The version lives in the path too, so a future v2
// server can serve both contracts side by side.
const (
	PathSpecs   = "/v1/specs"
	PathAnalyze = "/v1/analyze"
	PathTestgen = "/v1/testgen"
	PathCheck   = "/v1/check"
	PathSweep   = "/v1/sweep"
	PathHealth  = "/healthz"
	// PathMetrics is unversioned: Prometheus exposition carries its own
	// format version in the scrape Content-Type.
	PathMetrics = "/metrics"
	// Fleet coordination routes (defined next to their scheduler in
	// internal/sweep, same layering as the cache route): claim grants
	// batches of pair leases with TTL + piggybacked renew/release, result
	// posts completed PairResults, status reports fleet-wide progress and
	// the merged results.
	PathFleetClaim  = sweep.FleetClaimPath
	PathFleetResult = sweep.FleetResultPath
	PathFleetStatus = sweep.FleetStatusPath
)

// VersionHeader is set on every server response.
const VersionHeader = "Commuter-Api-Version"

// Error codes.
const (
	// CodeBadRequest covers malformed payloads and unknown names (specs,
	// ops, kernels); the message carries the known alternatives, exactly
	// like the local bindings' errors.
	CodeBadRequest = "bad_request"
	// CodeVersionMismatch reports a client speaking another wire version.
	CodeVersionMismatch = "version_mismatch"
	// CodeCanceled reports that the request's context ended server-side.
	CodeCanceled = "canceled"
	// CodeInternal covers everything else; the sweep itself failed.
	CodeInternal = "internal"
)

// Error is the wire form of any failure. It implements error, and the
// remote client returns it as-is, so a remote typo reads exactly like a
// local one ("unknown spec ... (known specs: ...)").
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *Error) Error() string { return e.Message }

// Errorf builds a coded wire error.
func Errorf(code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// Options is the pipeline knob set shared by every request; it mirrors
// the commuter package's functional options. Zero values mean "the
// pipeline default" everywhere.
type Options struct {
	// Spec selects the interface specification ("" means posix).
	Spec string `json:"spec,omitempty"`
	// LowestFD selects POSIX's lowest-FD rule over O_ANYFD.
	LowestFD bool `json:"lowest_fd,omitempty"`
	// MaxPaths caps joint path exploration per pair.
	MaxPaths int `json:"max_paths,omitempty"`
	// MaxTestsPerPath caps isomorphism classes per commutative path.
	MaxTestsPerPath int `json:"max_tests_per_path,omitempty"`
	// Workers sizes the sweep worker pool (0 means the server decides).
	Workers int `json:"workers,omitempty"`
	// Ops selects the operation universe with the CLI's selector syntax:
	// "all", a spec-named subset, or a comma list ("" means the spec's
	// default set).
	Ops string `json:"ops,omitempty"`
	// Kernels names the implementations to check (empty means all of the
	// spec's implementations).
	Kernels []string `json:"kernels,omitempty"`
}

// SpecInfo describes one registered interface specification: everything a
// remote client needs to enumerate what the server can analyze.
type SpecInfo struct {
	Name       string              `json:"name"`
	Ops        []string            `json:"ops"`
	Sets       map[string][]string `json:"sets,omitempty"`
	DefaultSet string              `json:"default_set"`
	Impls      []string            `json:"impls"`
}

// SpecsResponse answers GET PathSpecs.
type SpecsResponse struct {
	Version int        `json:"version"`
	Specs   []SpecInfo `json:"specs"`
}

// AnalyzeRequest asks for the commutativity analysis of one pair.
type AnalyzeRequest struct {
	Version int     `json:"version"`
	OpA     string  `json:"op_a"`
	OpB     string  `json:"op_b"`
	Options Options `json:"options"`
}

// PathSummary is the wire form of one analyzed joint path: the rendered
// commutativity condition plus its classification. Symbolic expressions
// never cross the wire — the rendering is for humans (the CLI's -v mode),
// the flags are the contract.
type PathSummary struct {
	Condition  string `json:"condition"`
	Commutes   bool   `json:"commutes,omitempty"`
	CanDiverge bool   `json:"can_diverge,omitempty"`
	Unknown    bool   `json:"unknown,omitempty"`
}

// Analysis is the wire form of a pair's analysis.
type Analysis struct {
	Spec string `json:"spec"`
	OpA  string `json:"op_a"`
	OpB  string `json:"op_b"`
	// Paths counts feasible joint paths; Commutative and OrderDependent
	// count paths with a satisfiable commute/diverge condition; Unknown
	// counts paths whose classification hit the solver budget.
	Paths          int `json:"paths"`
	Commutative    int `json:"commutative"`
	OrderDependent int `json:"order_dependent"`
	Unknown        int `json:"unknown,omitempty"`
	// Clauses are the §5.1-style human-readable commutative situations.
	Clauses []string `json:"clauses,omitempty"`
	// PathDetails carries one summary per path, in exploration order.
	PathDetails []PathSummary `json:"path_details,omitempty"`
}

// Summary renders the one-line description the CLI prints, matching
// analyzer.PairResult.Summary byte for byte.
func (a Analysis) Summary() string {
	s := fmt.Sprintf("%s x %s: %d paths, %d commutative, %d order-dependent",
		a.OpA, a.OpB, a.Paths, a.Commutative, a.OrderDependent)
	if a.Unknown > 0 {
		s += fmt.Sprintf(", %d unknown (solver budget exhausted)", a.Unknown)
	}
	return s
}

// TestgenRequest asks for the concrete test cases of one pair.
type TestgenRequest struct {
	Version int     `json:"version"`
	OpA     string  `json:"op_a"`
	OpB     string  `json:"op_b"`
	Options Options `json:"options"`
}

// TestSet is the wire form of a pair's generated tests. kernel.TestCase
// is plain data (ID, Setup, Calls) and JSON-round-trips exactly — the
// same property the sweep cache's TESTGEN tier relies on.
type TestSet struct {
	Spec  string            `json:"spec"`
	OpA   string            `json:"op_a"`
	OpB   string            `json:"op_b"`
	Tests []kernel.TestCase `json:"tests"`
	// Unknown counts paths whose analysis or enumeration hit the solver
	// budget; nonzero means Tests is a lower bound.
	Unknown int `json:"unknown,omitempty"`
}

// CheckRequest asks for conflict-freedom verdicts of concrete tests on
// one named implementation.
type CheckRequest struct {
	Version int               `json:"version"`
	Kernel  string            `json:"kernel"`
	Tests   []kernel.TestCase `json:"tests"`
	Options Options           `json:"options"`
}

// TestVerdict is one test's MTRACE verdict on one kernel.
type TestVerdict struct {
	TestID       string `json:"test_id"`
	ConflictFree bool   `json:"conflict_free"`
	// Commuted reports the order-swap sanity check.
	Commuted bool `json:"commuted"`
	// Conflicts names the shared cells when not conflict-free.
	Conflicts []string `json:"conflicts,omitempty"`
}

// CheckSummary is the wire form of a batch check: the Figure 6 cell
// counts plus per-test verdicts in request order.
type CheckSummary struct {
	Kernel    string        `json:"kernel"`
	Total     int           `json:"total"`
	Conflicts int           `json:"conflicts"`
	Verdicts  []TestVerdict `json:"verdicts"`
}

// SweepRequest asks for a full pipeline sweep; the response is an NDJSON
// Frame stream.
type SweepRequest struct {
	Version int     `json:"version"`
	Options Options `json:"options"`
}

// Frame types.
const (
	// FrameUpdate carries a finished pair: progress and/or its result.
	FrameUpdate = "update"
	// FrameResult is the terminal success frame.
	FrameResult = "result"
	// FrameError is the terminal failure frame.
	FrameError = "error"
)

// Frame is one NDJSON line of a sweep stream. The terminal result frame
// deliberately carries the complete SweepResult — including the Pairs
// already streamed one update frame at a time — so it is self-contained:
// consumers may treat update frames as optional progress decoration
// (commuter.Client.Sweep does exactly that) instead of reassembling the
// result themselves. The redundancy is bounded: pairs are cell summaries
// (the test cases never cross the wire at all during a sweep), well under
// 100 KiB even for the full 18-op matrix.
type Frame struct {
	Type     string            `json:"type"`
	Progress *Progress         `json:"progress,omitempty"`
	Pair     *sweep.PairResult `json:"pair,omitempty"`
	Result   *SweepResult      `json:"result,omitempty"`
	Error    *Error            `json:"error,omitempty"`
}

// Progress is the wire form of sweep.Event (minus the in-process result
// pointer), with the duration flattened to milliseconds.
type Progress struct {
	Pair      string  `json:"pair"`
	Done      int     `json:"done"`
	Total     int     `json:"total"`
	Tests     int     `json:"tests"`
	Cached    bool    `json:"cached,omitempty"`
	Coalesced bool    `json:"coalesced,omitempty"`
	PairMS    float64 `json:"pair_ms"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// ProgressFromEvent converts an engine event to its wire form.
func ProgressFromEvent(ev sweep.Event) *Progress {
	return &Progress{
		Pair:      ev.Pair,
		Done:      ev.Done,
		Total:     ev.Total,
		Tests:     ev.Tests,
		Cached:    ev.Cached,
		Coalesced: ev.Coalesced,
		PairMS:    ev.PairMS,
		ElapsedMS: float64(ev.Elapsed) / float64(time.Millisecond),
	}
}

// Event converts a wire progress report back to the engine's event type
// (Result stays nil; the pair travels in its own frame field).
func (p *Progress) Event() sweep.Event {
	return sweep.Event{
		Pair:      p.Pair,
		Done:      p.Done,
		Total:     p.Total,
		Tests:     p.Tests,
		Cached:    p.Cached,
		Coalesced: p.Coalesced,
		PairMS:    p.PairMS,
		Elapsed:   time.Duration(p.ElapsedMS * float64(time.Millisecond)),
	}
}

// CacheStats is the wire form of the two-tier cache counters.
type CacheStats struct {
	TestgenHits   int `json:"testgen_hits"`
	TestgenMisses int `json:"testgen_misses"`
	CheckHits     int `json:"check_hits"`
	CheckMisses   int `json:"check_misses"`
}

// SweepResult is the wire form of a completed sweep. Pairs reuses
// sweep.PairResult's artifact encoding (op_a/op_b/tests/cells/...), so a
// sweep's wire frames and its JSONL artifact lines agree.
type SweepResult struct {
	Spec    string             `json:"spec"`
	Pairs   []sweep.PairResult `json:"pairs"`
	Workers int                `json:"workers"`
	// ElapsedMS is the server-side wall time.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Cache is nil when the serving side has no cache configured.
	Cache            *CacheStats `json:"cache,omitempty"`
	CacheWriteErrors int         `json:"cache_write_errors,omitempty"`
}

// ResultFromSweep converts an engine result to its wire form. hasCache
// distinguishes "no cache configured" (nil) from "cache saw no traffic"
// (zero stats).
func ResultFromSweep(res *sweep.Result, hasCache bool) *SweepResult {
	out := &SweepResult{
		Spec:             res.Spec,
		Pairs:            res.Pairs,
		Workers:          res.Workers,
		ElapsedMS:        float64(res.Elapsed) / float64(time.Millisecond),
		CacheWriteErrors: res.CacheWriteErrors,
	}
	if hasCache {
		out.Cache = &CacheStats{
			TestgenHits:   res.Cache.TestgenHits,
			TestgenMisses: res.Cache.TestgenMisses,
			CheckHits:     res.Cache.CheckHits,
			CheckMisses:   res.Cache.CheckMisses,
		}
	}
	return out
}

// ToSweep converts a wire result back to the engine's result type.
func (r *SweepResult) ToSweep() *sweep.Result {
	out := &sweep.Result{
		Spec:             r.Spec,
		Pairs:            r.Pairs,
		Workers:          r.Workers,
		Elapsed:          time.Duration(r.ElapsedMS * float64(time.Millisecond)),
		CacheWriteErrors: r.CacheWriteErrors,
	}
	if r.Cache != nil {
		out.Cache = sweep.CacheStats{
			TestgenHits:   r.Cache.TestgenHits,
			TestgenMisses: r.Cache.TestgenMisses,
			CheckHits:     r.Cache.CheckHits,
			CheckMisses:   r.Cache.CheckMisses,
		}
	}
	return out
}

// Fleet wire types, defined in internal/sweep beside the lease table they
// describe (this package imports sweep, not the other way around) and
// aliased here so the golden files pin their encodings with the rest of
// the v1 contract. Fleet requests stamp sweep.FleetAPIVersion, which
// tracks Version (asserted by test).
type (
	// FleetSweepSpec is the fleet-wide identity of one sweep: spec,
	// resolved op/kernel names, and every test-shaping option.
	FleetSweepSpec = sweep.FleetSweepSpec
	// FleetLease is one granted pair lease.
	FleetLease = sweep.FleetLease
	// FleetClaimRequest asks for pair leases (POST PathFleetClaim), with
	// piggybacked lease renewal and release.
	FleetClaimRequest = sweep.FleetClaimRequest
	// FleetClaimResponse grants leases and reports sweep-wide state.
	FleetClaimResponse = sweep.FleetClaimResponse
	// FleetPairDone is one completed pair under its lease.
	FleetPairDone = sweep.FleetPairDone
	// FleetResultRequest posts completed pairs (POST PathFleetResult).
	FleetResultRequest = sweep.FleetResultRequest
	// FleetResultResponse acknowledges a result post.
	FleetResultResponse = sweep.FleetResultResponse
	// FleetWorkerStatus is one worker's view in the status report.
	FleetWorkerStatus = sweep.FleetWorkerStatus
	// FleetStatusResponse answers GET PathFleetStatus.
	FleetStatusResponse = sweep.FleetStatusResponse
)

// CheckVersion validates a request's wire version.
func CheckVersion(got int) *Error {
	if got != Version {
		return Errorf(CodeVersionMismatch,
			"wire version %d not supported (server speaks version %d)", got, Version)
	}
	return nil
}
