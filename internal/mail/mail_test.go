package mail

import (
	"testing"

	"repro/internal/kernel"
)

func TestPipelineRunsBothConfigs(t *testing.T) {
	for _, commutative := range []bool{false, true} {
		s := NewServer(Config{Commutative: commutative})
		for core := 0; core < 3; core++ {
			for i := 0; i < 5; i++ {
				if err := s.DeliverOne(core); err != nil {
					t.Fatalf("commutative=%v core=%d iter=%d: %v", commutative, core, i, err)
				}
			}
		}
	}
}

func TestMailboxAccumulates(t *testing.T) {
	s := NewServer(Config{Commutative: true})
	// Three deliveries on one core create three distinct maildir files.
	for i := 0; i < 3; i++ {
		if err := s.DeliverOne(0); err != nil {
			t.Fatal(err)
		}
	}
	k := s.Kernel()
	for seq := int64(0); seq < 3; seq++ {
		box := nameFor(0, seq, roleBox)
		r := k.Exec(0, call(t, "stat", map[string]int64{"fname": box}))
		if r.Code != 0 || r.V3 != 1 {
			t.Errorf("maildir file %d: %v", seq, r)
		}
	}
}

func TestSpoolCleanedUp(t *testing.T) {
	s := NewServer(Config{Commutative: true})
	if err := s.DeliverOne(0); err != nil {
		t.Fatal(err)
	}
	k := s.Kernel()
	for _, role := range []int64{roleMsg, roleEnv} {
		nm := nameFor(0, 0, role)
		r := k.Exec(0, call(t, "stat", map[string]int64{"fname": nm}))
		if r.Code == 0 {
			t.Errorf("spool file role %d not removed", role)
		}
	}
}

func TestNotificationOrderingModes(t *testing.T) {
	// Ordered mode: one shared FIFO across cores. Unordered: per-core
	// queues. Both must deliver exactly the sent envelope.
	for _, commutative := range []bool{false, true} {
		s := NewServer(Config{Commutative: commutative})
		s.notify(1, 4242)
		env, ok := s.fetchNotification(1)
		if !ok || env != 4242 {
			t.Errorf("commutative=%v: fetch = %d,%v", commutative, env, ok)
		}
		if _, ok := s.fetchNotification(1); ok {
			t.Errorf("commutative=%v: queue should be empty", commutative)
		}
	}
}

func TestOrderedSocketIsFIFOAcrossCores(t *testing.T) {
	s := NewServer(Config{Commutative: false})
	s.notify(0, 1)
	s.notify(1, 2)
	if env, _ := s.fetchNotification(1); env != 1 {
		t.Errorf("ordered socket must deliver oldest first, got %d", env)
	}
	if env, _ := s.fetchNotification(0); env != 2 {
		t.Errorf("second fetch = %d", env)
	}
}

func TestUnorderedSocketIsPerCore(t *testing.T) {
	s := NewServer(Config{Commutative: true})
	s.notify(0, 1)
	if _, ok := s.fetchNotification(1); ok {
		t.Error("core 1 must not see core 0's local queue in this model")
	}
	if env, ok := s.fetchNotification(0); !ok || env != 1 {
		t.Errorf("core 0 fetch = %d,%v", env, ok)
	}
}

func TestNameUniqueness(t *testing.T) {
	seen := map[int64]bool{}
	for core := 0; core < 4; core++ {
		for seq := int64(0); seq < 4; seq++ {
			for _, role := range []int64{roleMsg, roleEnv, roleBox} {
				n := nameFor(core, seq, role)
				if seen[n] {
					t.Fatalf("name collision at core=%d seq=%d role=%d", core, seq, role)
				}
				seen[n] = true
			}
		}
	}
}

func call(t *testing.T, op string, args map[string]int64) kernel.Call {
	t.Helper()
	return kernel.Call{Op: op, Args: args}
}
