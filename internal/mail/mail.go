// Package mail is the §7.3 application workload: a qmail-like mail server
// built from separate communicating stages — mail-enqueue writes the
// message and envelope to a spool directory and notifies the queue manager
// over a local socket; mail-qman reads notifications, opens the queued
// message, spawns the delivery helper, and removes the spool files;
// mail-deliver appends the message to the recipient's mailbox.
//
// Two API configurations mirror the paper's benchmark:
//
//   - Regular APIs: lowest-FD allocation, an order-preserving notification
//     socket (one shared queue), and fork/exec-style process spawning that
//     snapshots the parent's descriptor table.
//   - Commutative APIs (§4): O_ANYFD, an unordered datagram socket with
//     per-core queues and scalable load balancing, and posix_spawn, which
//     constructs the child image directly.
//
// The server drives the sv6 kernel for file system calls and models the
// socket and spawn paths with traced cells on the same memory, so MTRACE
// conflict analysis and coherence-simulator replay cover the whole
// pipeline.
package mail

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/kernel/svsix"
	"repro/internal/mtrace"
	"repro/internal/scale"
)

// Config selects the API variant.
type Config struct {
	// Commutative selects O_ANYFD + unordered socket + posix_spawn.
	Commutative bool
}

// Server is one mail-server instance over an sv6 kernel.
type Server struct {
	cfg Config
	k   *svsix.Kern
	mem *mtrace.Memory

	// Ordered-socket state: one shared queue.
	sockLock *scale.SpinLock
	sockHead *mtrace.Cell
	sockTail *mtrace.Cell
	sockMsgs map[int64]*mtrace.Cell

	// Unordered-socket state: per-core queues.
	coreQHead [scale.NCores]*mtrace.Cell
	coreQTail [scale.NCores]*mtrace.Cell
	coreQMsgs map[int64]*mtrace.Cell

	// Process table: fork serializes on it; posix_spawn builds the child
	// image from per-core state.
	procLock  *scale.SpinLock
	procTable *mtrace.Cell
	coreProc  [scale.NCores]*mtrace.Cell

	// parentFDs models the parent descriptor table that fork snapshots.
	parentFDs []*mtrace.Cell

	seq [scale.NCores]int64
}

// NewServer builds a server over a fresh sv6 kernel.
func NewServer(cfg Config) *Server {
	k := svsix.New()
	mem := k.Memory()
	s := &Server{
		cfg:       cfg,
		k:         k,
		mem:       mem,
		sockLock:  scale.NewSpinLock(mem, "sock.lock"),
		sockHead:  mem.NewCell("sock.head", 0),
		sockTail:  mem.NewCell("sock.tail", 0),
		sockMsgs:  map[int64]*mtrace.Cell{},
		procLock:  scale.NewSpinLock(mem, "proctable.lock"),
		procTable: mem.NewCell("proctable", 0),
		coreQMsgs: map[int64]*mtrace.Cell{},
	}
	for i := range s.coreQHead {
		s.coreQHead[i] = mem.NewCellf(0, "sock.q[%d].head", i)
		s.coreQTail[i] = mem.NewCellf(0, "sock.q[%d].tail", i)
		s.coreProc[i] = mem.NewCellf(0, "proc.slot[%d]", i)
	}
	for i := 0; i < 16; i++ {
		s.parentFDs = append(s.parentFDs, mem.NewCellf(1, "parent.fd[%d]", i))
	}
	return s
}

// Kernel exposes the underlying kernel (for inspection in tests).
func (s *Server) Kernel() kernel.Kernel { return s.k }

// Memory exposes the traced memory.
func (s *Server) Memory() *mtrace.Memory { return s.mem }

func (s *Server) sockMsg(seq int64) *mtrace.Cell {
	c, ok := s.sockMsgs[seq]
	if !ok {
		c = s.mem.NewCellf(0, "sock.msg[%d]", seq)
		s.sockMsgs[seq] = c
	}
	return c
}

func (s *Server) coreQMsg(core int, seq int64) *mtrace.Cell {
	key := int64(core)*1_000_000 + seq
	c, ok := s.coreQMsgs[key]
	if !ok {
		c = s.mem.NewCellf(0, "sock.q[%d].msg[%d]", core, seq)
		s.coreQMsgs[key] = c
	}
	return c
}

// notify sends a queue notification carrying the envelope name id.
func (s *Server) notify(core int, env int64) {
	if s.cfg.Commutative {
		// Unordered datagram socket: enqueue on the sender's core-local
		// queue (§4 "permit weak ordering").
		t := s.coreQTail[core].Load(core)
		s.coreQMsg(core, t).Store(core, env)
		s.coreQTail[core].Store(core, t+1)
		return
	}
	// Order-preserving socket: one shared queue under a lock.
	s.sockLock.Acquire(core)
	t := s.sockTail.Load(core)
	s.sockMsg(t).Store(core, env)
	s.sockTail.Store(core, t+1)
	s.sockLock.Release(core)
}

// fetchNotification receives one queue notification.
func (s *Server) fetchNotification(core int) (int64, bool) {
	if s.cfg.Commutative {
		// Scalable load balancing: drain the local queue first; the
		// benchmark's pipeline always finds its own message there.
		h := s.coreQHead[core].Load(core)
		if h == s.coreQTail[core].Load(core) {
			return 0, false
		}
		env := s.coreQMsg(core, h).Load(core)
		s.coreQHead[core].Store(core, h+1)
		return env, true
	}
	s.sockLock.Acquire(core)
	defer s.sockLock.Release(core)
	h := s.sockHead.Load(core)
	if h == s.sockTail.Load(core) {
		return 0, false
	}
	env := s.sockMsg(h).Load(core)
	s.sockHead.Store(core, h+1)
	return env, true
}

// spawn models starting the delivery helper. fork snapshots the parent
// descriptor table and registers the child in the shared process table;
// posix_spawn constructs the child image from core-local state (§4
// "decompose compound operations").
func (s *Server) spawn(core int) {
	if s.cfg.Commutative {
		n := s.coreProc[core].Load(core)
		s.coreProc[core].Store(core, n+1)
		return
	}
	for _, fd := range s.parentFDs {
		_ = fd.Load(core) // fork reads every descriptor slot
	}
	s.procLock.Acquire(core)
	s.procTable.Add(core, 1)
	s.procLock.Release(core)
}

func (s *Server) anyfd() int64 {
	if s.cfg.Commutative {
		return 1
	}
	return 0
}

func (s *Server) call(core int, op string, args map[string]int64) kernel.Result {
	return s.k.Exec(core, kernel.Call{Op: op, Proc: 0, Args: args})
}

// nameFor derives unique file name ids per core, message and role so the
// spool and maildir files of different cores never collide.
func nameFor(core int, seq int64, role int64) int64 {
	return int64(core)*1_000_000 + seq*10 + role
}

const (
	roleMsg = iota
	roleEnv
	roleBox
)

// DeliverOne runs the full pipeline for one message on one core: enqueue,
// queue-manager fetch, spawn, deliver, cleanup. It returns an error if any
// kernel call misbehaves (semantics are checked, not just conflicts).
func (s *Server) DeliverOne(core int) error {
	seq := s.seq[core]
	s.seq[core]++
	msg := nameFor(core, seq, roleMsg)
	env := nameFor(core, seq, roleEnv)
	box := nameFor(core, seq, roleBox)

	// mail-enqueue: spool the message and envelope, then notify.
	fd := s.call(core, "open", map[string]int64{"fname": msg, "creat": 1, "anyfd": s.anyfd()})
	if fd.Code < 0 {
		return fmt.Errorf("mail: open msg: %v", fd)
	}
	if r := s.call(core, "write", map[string]int64{"fd": fd.Code, "val": 7}); r.Code != 1 {
		return fmt.Errorf("mail: write msg: %v", r)
	}
	if r := s.call(core, "close", map[string]int64{"fd": fd.Code}); r.Code != 0 {
		return fmt.Errorf("mail: close msg: %v", r)
	}
	fd = s.call(core, "open", map[string]int64{"fname": env, "creat": 1, "anyfd": s.anyfd()})
	if fd.Code < 0 {
		return fmt.Errorf("mail: open env: %v", fd)
	}
	if r := s.call(core, "write", map[string]int64{"fd": fd.Code, "val": int64(core)}); r.Code != 1 {
		return fmt.Errorf("mail: write env: %v", r)
	}
	if r := s.call(core, "close", map[string]int64{"fd": fd.Code}); r.Code != 0 {
		return fmt.Errorf("mail: close env: %v", r)
	}
	s.notify(core, env)

	// mail-qman: fetch the notification, read the envelope, spawn the
	// delivery helper.
	got, ok := s.fetchNotification(core)
	if !ok {
		return fmt.Errorf("mail: lost notification on core %d", core)
	}
	fd = s.call(core, "open", map[string]int64{"fname": got, "anyfd": s.anyfd()})
	if fd.Code < 0 {
		return fmt.Errorf("mail: open fetched env: %v", fd)
	}
	if r := s.call(core, "read", map[string]int64{"fd": fd.Code}); r.Code != 1 {
		return fmt.Errorf("mail: read env: %v", r)
	}
	if r := s.call(core, "close", map[string]int64{"fd": fd.Code}); r.Code != 0 {
		return fmt.Errorf("mail: close env2: %v", r)
	}
	s.spawn(core)

	// mail-deliver: append to the per-recipient maildir.
	fd = s.call(core, "open", map[string]int64{"fname": box, "creat": 1, "anyfd": s.anyfd()})
	if fd.Code < 0 {
		return fmt.Errorf("mail: open box: %v", fd)
	}
	mfd := s.call(core, "open", map[string]int64{"fname": msg, "anyfd": s.anyfd()})
	if mfd.Code < 0 {
		return fmt.Errorf("mail: reopen msg: %v", mfd)
	}
	r := s.call(core, "read", map[string]int64{"fd": mfd.Code})
	if r.Code != 1 || r.Data != 7 {
		return fmt.Errorf("mail: read msg: %v", r)
	}
	if r := s.call(core, "write", map[string]int64{"fd": fd.Code, "val": r.Data}); r.Code != 1 {
		return fmt.Errorf("mail: deliver write: %v", r)
	}
	if r := s.call(core, "close", map[string]int64{"fd": mfd.Code}); r.Code != 0 {
		return fmt.Errorf("mail: close msg2: %v", r)
	}
	if r := s.call(core, "close", map[string]int64{"fd": fd.Code}); r.Code != 0 {
		return fmt.Errorf("mail: close box: %v", r)
	}

	// qman cleanup: remove the spool files.
	if r := s.call(core, "unlink", map[string]int64{"fname": msg}); r.Code != 0 {
		return fmt.Errorf("mail: unlink msg: %v", r)
	}
	if r := s.call(core, "unlink", map[string]int64{"fname": env}); r.Code != 0 {
		return fmt.Errorf("mail: unlink env: %v", r)
	}
	return nil
}
