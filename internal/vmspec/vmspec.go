// Package vmspec is a symbolic model of the paper's §5.2 virtual-memory
// interface, registered as the "vm" spec: mmap, munmap, mprotect, memread
// and memwrite over per-process address spaces of anonymous pages. It is
// the third interface the pipeline analyzes and it reproduces, at page
// granularity, the two sides of the paper's VM result:
//
//   - Operations on non-overlapping regions commute: every op other than
//     a non-fixed mmap names its page explicitly, so two ops touching
//     different (proc, page) locations leave no observable trace of their
//     order — exactly the executions RadixVM makes conflict-free.
//   - The kernel's address-selection rule breaks commutativity: a mmap
//     without MAP_FIXED asks the kernel to choose the address, and the
//     returned address makes the choice observable. Real kernels choose
//     deterministically (the lowest — or highest — free region), so two
//     such mmaps in one process return swapped addresses across the two
//     orders and never commute, the address-space analog of the lowest-FD
//     rule (§4). MAP_FIXED is the commutative refinement: the application
//     names the page, the choice disappears, and non-overlapping mmaps
//     commute again.
//
// The model keeps only anonymous memory (file-backed mappings belong to
// the POSIX spec's universe, where mmap interacts with inodes); that is
// the smallest state that still exhibits the §5.2 structure. The
// reference in-memory implementation is internal/kernel/memvm, checked by
// the standard MTRACE runner.
package vmspec

import (
	"sort"

	"repro/internal/kernel"
	"repro/internal/kernel/memvm"
	"repro/internal/spec"
	"repro/internal/sym"
	"repro/internal/symx"
)

// DataSort is the uninterpreted sort of one page of memory content:
// semantics only ever compare pages for equality.
var DataSort = sym.Uninterpreted("VMData")

// DataZero is the distinguished zero-filled page: fresh anonymous
// mappings read as zero.
var DataZero = sym.Const(DataSort, 0)

// MaxPage bounds virtual address pages: 0..MaxPage-1, like the POSIX
// model's. Three pages leave room for every distinct region a pair of
// calls can mention.
const MaxPage = 3

// Errno values used by the model (negated in return slot 0).
const (
	ENOMEM   = kernel.ENOMEM
	ESIGSEGV = kernel.ESIGSEGV
)

// State is the symbolic VM state.
type State struct {
	// VMA maps (proc, page) -> {wr}: per-process page mappings; proc is a
	// boolean expression (two processes), wr the write permission.
	VMA *symx.Dict
	// Mem maps (proc, page) -> {val}: page contents, a total-function
	// view (the content of a mapped page always resolves).
	Mem *symx.Dict
}

// Dicts returns the dictionaries in comparison order (the spec layer's
// State contract); neither invariant closure probes the other, so any
// order works — mappings precede contents for readability.
func (s *State) Dicts() []*symx.Dict { return []*symx.Dict{s.VMA, s.Mem} }

// NewState builds the symbolic state with unconstrained initial content:
// each process starts with an arbitrary set of mapped pages holding
// arbitrary content and permissions.
func NewState(c *symx.Context) *State {
	return &State{
		VMA: symx.NewDict("vmap", func(c *symx.Context, tag string) symx.Value {
			return symx.NewStruct("wr", c.Var(tag+".wr", sym.BoolSort, symx.KindState))
		}),
		Mem: symx.NewDict("vmem", func(c *symx.Context, tag string) symx.Value {
			return symx.NewStruct("val", c.Var(tag+".val", DataSort, symx.KindState))
		}),
	}
}

func errRet(errno int64) []*sym.Expr {
	return []*sym.Expr{sym.Int(-errno), sym.Int(0), sym.Int(0), sym.Int(0), DataZero}
}

func okRet(code, i1, data *sym.Expr) []*sym.Expr {
	return []*sym.Expr{code, i1, sym.Int(0), sym.Int(0), data}
}

func st(x *spec.Exec) *State { return x.S.(*State) }

func procArg() spec.ArgSpec { return spec.ArgSpec{Name: "proc", Sort: sym.BoolSort} }

func pageArg() spec.ArgSpec {
	return spec.ArgSpec{Name: "page", Sort: sym.IntSort, Min: 0, Max: MaxPage - 1, Bounded: true}
}

// Ops returns the five modeled operations in canonical (matrix) order.
func Ops() []*spec.Op {
	return []*spec.Op{opMmap(), opMunmap(), opMprotect(), opMemread(), opMemwrite()}
}

func opMmap() *spec.Op {
	return &spec.Op{
		Name: "mmap",
		Args: []spec.ArgSpec{
			procArg(), pageArg(),
			{Name: "fixed", Sort: sym.BoolSort},
			{Name: "wr", Sort: sym.BoolSort},
		},
		Exec: func(x *spec.Exec, slot string, a []*sym.Expr) []*sym.Expr {
			s := st(x)
			proc, page, fixed, wr := a[0], a[1], a[2], a[3]
			var addr *sym.Expr
			if x.C.Branch(fixed) {
				addr = page // MAP_FIXED replaces any existing mapping
			} else {
				// The kernel chooses: lowest free page, the address-space
				// analog of the lowest-FD rule. The scan makes the
				// allocation order observable through the returned
				// address, which is what destroys commutativity (§5.2).
				addr = nil
				for p := int64(0); p < MaxPage; p++ {
					if !s.VMA.Contains(x.C, symx.K(proc, sym.Int(p))) {
						addr = sym.Int(p)
						break
					}
				}
				if addr == nil {
					return errRet(ENOMEM) // address space exhausted
				}
			}
			s.VMA.Set(x.C, symx.K(proc, addr), symx.NewStruct("wr", wr))
			s.Mem.Set(x.C, symx.K(proc, addr), symx.NewStruct("val", DataZero))
			return okRet(sym.Int(0), addr, DataZero)
		},
	}
}

func opMunmap() *spec.Op {
	return &spec.Op{
		Name: "munmap",
		Args: []spec.ArgSpec{procArg(), pageArg()},
		Exec: func(x *spec.Exec, slot string, a []*sym.Expr) []*sym.Expr {
			s, proc, page := st(x), a[0], a[1]
			s.VMA.Del(x.C, symx.K(proc, page))
			s.Mem.Del(x.C, symx.K(proc, page))
			return okRet(sym.Int(0), sym.Int(0), DataZero)
		},
	}
}

func opMprotect() *spec.Op {
	return &spec.Op{
		Name: "mprotect",
		Args: []spec.ArgSpec{procArg(), pageArg(), {Name: "wr", Sort: sym.BoolSort}},
		Exec: func(x *spec.Exec, slot string, a []*sym.Expr) []*sym.Expr {
			s, proc, page, wr := st(x), a[0], a[1], a[2]
			if !s.VMA.Contains(x.C, symx.K(proc, page)) {
				return errRet(ENOMEM)
			}
			v := s.VMA.Get(x.C, symx.K(proc, page)).(*symx.Struct)
			s.VMA.Set(x.C, symx.K(proc, page), v.With("wr", wr))
			return okRet(sym.Int(0), sym.Int(0), DataZero)
		},
	}
}

func opMemread() *spec.Op {
	return &spec.Op{
		Name: "memread",
		Args: []spec.ArgSpec{procArg(), pageArg()},
		Exec: func(x *spec.Exec, slot string, a []*sym.Expr) []*sym.Expr {
			s, proc, page := st(x), a[0], a[1]
			if !s.VMA.Contains(x.C, symx.K(proc, page)) {
				return errRet(ESIGSEGV)
			}
			v := s.Mem.GetFunc(x.C, symx.K(proc, page)).(*symx.Struct)
			return okRet(sym.Int(0), sym.Int(0), v.Get("val"))
		},
	}
}

func opMemwrite() *spec.Op {
	return &spec.Op{
		Name: "memwrite",
		Args: []spec.ArgSpec{procArg(), pageArg(), {Name: "val", Sort: DataSort}},
		Exec: func(x *spec.Exec, slot string, a []*sym.Expr) []*sym.Expr {
			s, proc, page, val := st(x), a[0], a[1], a[2]
			if !s.VMA.Contains(x.C, symx.K(proc, page)) {
				return errRet(ESIGSEGV)
			}
			v := s.VMA.Get(x.C, symx.K(proc, page)).(*symx.Struct)
			if !x.C.Branch(v.Get("wr")) {
				return errRet(ESIGSEGV) // write to a read-only mapping
			}
			s.Mem.Set(x.C, symx.K(proc, page), symx.NewStruct("val", val))
			return okRet(sym.Int(0), sym.Int(0), DataZero)
		},
	}
}

// vmSpec packages the model as the registered "vm" spec.
type vmSpec struct{}

// Spec is the VM model as a pluggable pipeline spec.
var Spec spec.Spec = vmSpec{}

func init() { spec.Register(Spec) }

func (vmSpec) Name() string { return "vm" }

func (vmSpec) Ops() []*spec.Op { return Ops() }

func (vmSpec) Sets() map[string][]string {
	return map[string][]string{
		"map": {"mmap", "munmap", "mprotect"},
		"mem": {"memread", "memwrite"},
	}
}

// DefaultSet: the VM universe is small, so default to all of it.
func (vmSpec) DefaultSet() string { return "all" }

func (vmSpec) NewState(c *symx.Context, cfg spec.Config) spec.State {
	return NewState(c)
}

func (vmSpec) Concretizer() spec.Concretizer { return concretizer{} }

func (vmSpec) Impls() []spec.Impl {
	return []spec.Impl{{Name: "memvm", New: func() kernel.Kernel { return memvm.New() }}}
}

// concretizer mines address spaces from the witness.
type concretizer struct{}

// FixupCall is a no-op: the VM interface has no per-call spec flags.
func (concretizer) FixupCall(cfg spec.Config, call *kernel.Call) {}

// Setup rebuilds the concrete address spaces: every (proc, page) the
// witness probed as mapped becomes an anonymous SetupVMA carrying the
// probed permission and content.
func (concretizer) Setup(a, b spec.State, m sym.Model) (kernel.Setup, error) {
	var s kernel.Setup
	sa, sb := a.(*State), b.(*State)

	vals := map[[2]int64]int64{}
	for _, p := range spec.CollectProbes(m, sa.Mem, sb.Mem) {
		vals[[2]int64{p.Key[0], p.Key[1]}] = p.Fields["val"]
	}
	seen := map[[2]int64]bool{}
	for _, p := range spec.CollectProbes(m, sa.VMA, sb.VMA) {
		proc := spec.Clamp(p.Key[0], 0, 1)
		page := spec.Clamp(p.Key[1], 0, MaxPage-1)
		at := [2]int64{proc, page}
		if seen[at] {
			continue
		}
		seen[at] = true
		s.VMAs = append(s.VMAs, kernel.SetupVMA{
			Proc: int(proc), Page: page, Anon: true,
			Val: vals[[2]int64{p.Key[0], p.Key[1]}], Writable: p.Bools["wr"],
		})
	}
	sort.Slice(s.VMAs, func(i, j int) bool {
		if s.VMAs[i].Proc != s.VMAs[j].Proc {
			return s.VMAs[i].Proc < s.VMAs[j].Proc
		}
		return s.VMAs[i].Page < s.VMAs[j].Page
	})
	return s, nil
}
