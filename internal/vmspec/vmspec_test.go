package vmspec

import (
	"testing"

	"repro/internal/analyzer"
	"repro/internal/kernel"
	"repro/internal/spec"
	"repro/internal/sweep"
	"repro/internal/testgen"
)

func analyze(t *testing.T, a, b string) analyzer.PairResult {
	t.Helper()
	opA, err := spec.OpByName(Spec, a)
	if err != nil {
		t.Fatal(err)
	}
	opB, err := spec.OpByName(Spec, b)
	if err != nil {
		t.Fatal(err)
	}
	return analyzer.AnalyzePair(Spec, opA, opB, analyzer.Options{})
}

func counts(r analyzer.PairResult) (commute, diverge int) {
	for _, p := range r.Paths {
		if p.Commutes {
			commute++
		}
		if p.CanDiverge {
			diverge++
		}
	}
	return
}

// TestNonOverlappingOpsCommute pins the first half of the §5.2 result:
// every pair of VM operations admits a commutative execution, because
// the witness can always place them on non-overlapping regions (different
// pages or different processes).
func TestNonOverlappingOpsCommute(t *testing.T) {
	for _, pair := range [][2]string{
		{"mmap", "mmap"},
		{"mmap", "munmap"},
		{"munmap", "munmap"},
		{"munmap", "memread"},
		{"mprotect", "memwrite"},
		{"memread", "memwrite"},
		{"memwrite", "memwrite"},
	} {
		r := analyze(t, pair[0], pair[1])
		nc, _ := counts(r)
		if r.Unknown() > 0 {
			t.Fatalf("%s x %s: solver budget hit", pair[0], pair[1])
		}
		if nc == 0 {
			t.Errorf("%s x %s: no commutative path (non-overlapping regions should commute)", pair[0], pair[1])
		}
	}
}

// TestAddressSelectionDoesNotCommute pins the second half: pairs whose
// order is observable through the kernel's address choice or through
// overlapping regions have divergent paths. Two non-MAP_FIXED mmaps in
// one process get swapped addresses across the two orders (the
// lowest-address analog of the lowest-FD rule), and an munmap that frees
// a low page changes what a following non-fixed mmap returns.
func TestAddressSelectionDoesNotCommute(t *testing.T) {
	for _, pair := range [][2]string{
		{"mmap", "mmap"},
		{"mmap", "munmap"},
		{"munmap", "memread"},
		{"memread", "memwrite"},
	} {
		r := analyze(t, pair[0], pair[1])
		_, nd := counts(r)
		if nd == 0 {
			t.Errorf("%s x %s: no divergent path (overlap/address selection should order-distinguish)", pair[0], pair[1])
		}
	}
}

// TestMemreadsAlwaysCommute: reads never write state, so two memreads
// admit no divergent path at all.
func TestMemreadsAlwaysCommute(t *testing.T) {
	r := analyze(t, "memread", "memread")
	nc, nd := counts(r)
	if r.Unknown() > 0 {
		t.Fatal("memread x memread: solver budget hit")
	}
	if nc == 0 {
		t.Error("memread x memread: no commutative path")
	}
	if nd != 0 {
		t.Errorf("memread x memread: %d divergent paths, want 0", nd)
	}
}

// TestVMSweep is the end-to-end acceptance: the full vm sweep on the
// memvm reference implementation produces both commuting and
// never-commuting cells, and the commutative tests that place their
// calls on non-overlapping (proc, page) regions run conflict-free —
// the RadixVM design point the kernel mirrors.
func TestVMSweep(t *testing.T) {
	impls := Spec.Impls()
	if len(impls) != 1 || impls[0].Name != "memvm" {
		t.Fatalf("vm impls = %+v, want memvm", impls)
	}
	res, err := sweep.Run(sweep.Config{
		Spec:    Spec,
		Ops:     Ops(),
		Kernels: []sweep.KernelSpec{{Name: impls[0].Name, New: impls[0].New}},
	})
	if err != nil {
		t.Fatal(err)
	}
	tested, empty, conflictFree := 0, 0, 0
	for _, p := range res.Pairs {
		if p.Unknown > 0 {
			t.Errorf("%s: solver budget hit", p.Pair())
		}
		if p.Tests > 0 {
			tested++
		} else {
			empty++
		}
		for _, c := range p.Cells {
			if c.Total > 0 && c.Conflicts < c.Total {
				conflictFree++
			}
		}
	}
	if tested == 0 {
		t.Fatal("vm sweep generated no tests")
	}
	if conflictFree == 0 {
		t.Error("no pair had a conflict-free test on memvm")
	}
	t.Logf("vm sweep: %d pairs with tests, %d without, %d cells with conflict-free tests",
		tested, empty, conflictFree)
}

// TestDisjointRegionTestsConflictFree checks the implementation half of
// the rule on the sharpest pair: every generated memread/memwrite test
// whose calls touch different (proc, page) locations must be
// conflict-free on memvm (per-page cells, no shared structure).
func TestDisjointRegionTestsConflictFree(t *testing.T) {
	r := analyze(t, "memread", "memwrite")
	tests := testgen.Generate(Spec, r, testgen.Options{})
	if len(tests) == 0 {
		t.Fatal("no tests for memread x memwrite")
	}
	disjoint := 0
	for _, tc := range tests {
		a, b := tc.Calls[0], tc.Calls[1]
		if a.Proc == b.Proc && a.Arg("page") == b.Arg("page") {
			continue
		}
		disjoint++
		res, err := kernel.Check(Spec.Impls()[0].New, tc)
		if err != nil {
			t.Fatalf("%s: %v", tc.ID, err)
		}
		if !res.ConflictFree {
			names := make([]string, len(res.Conflicts))
			for i, c := range res.Conflicts {
				names[i] = c.CellName
			}
			t.Errorf("%s (%v / %v): conflicts on %v", tc.ID, a, b, names)
		}
		if !res.Commuted {
			t.Errorf("%s: results did not commute on memvm: %v vs %v", tc.ID, res.Res, res.ResSwapped)
		}
	}
	if disjoint == 0 {
		t.Fatal("no generated test places the calls on disjoint regions")
	}
}

// TestGenerateVMTests pins the concretizer: commutative memread/memwrite
// tests must seed the mapped pages the witness probed (anonymous VMAs
// with the probed permission), and a successful memread must observe the
// seeded content.
func TestGenerateVMTests(t *testing.T) {
	r := analyze(t, "memread", "memwrite")
	tests := testgen.Generate(Spec, r, testgen.Options{})
	seeded := false
	for _, tc := range tests {
		for _, v := range tc.Setup.VMAs {
			if !v.Anon {
				t.Errorf("%s: non-anonymous setup VMA %+v", tc.ID, v)
			}
			if v.Page < 0 || v.Page >= MaxPage {
				t.Errorf("%s: setup page %d out of range", tc.ID, v.Page)
			}
			seeded = true
		}
		if tc.Calls[0].Op != "memread" || tc.Calls[1].Op != "memwrite" {
			t.Errorf("%s: calls %v", tc.ID, tc.Calls)
		}
	}
	if !seeded {
		t.Error("no generated test seeds a mapped page")
	}
}
