package sweep

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/kernel"
)

// maxEntryBytes bounds a cache-peer response body, mirroring the serve
// side's request bound: a TESTGEN entry for the heaviest pair is well
// under a megabyte, so 64 MiB is a defect detector, not a real limit.
const maxEntryBytes = 64 << 20

// HTTPBackend reads and writes cache entries on a peer `commuter serve`
// instance's /v1/cache routes, which is what lets N servers share one warm
// cache: point every fleet member's -cache at one peer (or layer it under
// a mem: tier — see Tiered) and a pair analyzed anywhere is a hit
// everywhere.
//
// Entries travel in the exact on-disk encoding (EncodeTestsEntry /
// EncodeCellEntry), so the wire is self-validating: the embedded
// CacheVersion and key are checked on every read, and a peer running an
// older code version simply reads as a miss rather than serving stale
// semantics. Transport failures degrade the same way the disk backend's
// contract does — a failed GET is a miss, a failed PUT is a counted
// write error — so a dead peer slows the fleet down to cold-sweep speed
// but never breaks it.
type HTTPBackend struct {
	base   string // scheme://host[:port], no trailing slash
	client *http.Client

	mu    sync.Mutex
	stats CacheStats
}

// NewHTTPBackend returns a backend speaking to the peer at baseURL.
func NewHTTPBackend(baseURL string) (*HTTPBackend, error) {
	u, err := url.Parse(baseURL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("sweep: cache peer %q is not an http(s) URL", baseURL)
	}
	return &HTTPBackend{
		base: strings.TrimSuffix(baseURL, "/"),
		// Entry bodies are small and the peer answers from disk or memory;
		// a generous timeout only bounds how long a dead peer can stall a
		// sweep worker on one entry.
		client: &http.Client{Timeout: 15 * time.Second},
	}, nil
}

func (h *HTTPBackend) entryURL(tier, key string) string {
	return h.base + CacheRoutePrefix + "/" + tier + "/" + key
}

// get fetches one entry's bytes; any transport or status defect is a miss.
func (h *HTTPBackend) get(tier, key string) ([]byte, bool) {
	resp, err := h.client.Get(h.entryURL(tier, key))
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) // drain for keep-alive
		return nil, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxEntryBytes))
	if err != nil {
		return nil, false
	}
	return data, true
}

// put stores one entry's bytes on the peer.
func (h *HTTPBackend) put(tier, key string, data []byte) error {
	req, err := http.NewRequest(http.MethodPut, h.entryURL(tier, key), bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := h.client.Do(req)
	if err != nil {
		return fmt.Errorf("cache peer %s: %w", h.base, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("cache peer %s: PUT %s/%s: %s", h.base, tier, key, resp.Status)
	}
	return nil
}

// GetTests returns the TESTGEN tier entry for key from the peer.
func (h *HTTPBackend) GetTests(key string) ([]kernel.TestCase, bool) {
	var tests []kernel.TestCase
	ok := false
	if data, fetched := h.get(TierTestgen, key); fetched {
		tests, ok = DecodeTestsEntry(key, data)
	}
	h.mu.Lock()
	if ok {
		h.stats.TestgenHits++
	} else {
		h.stats.TestgenMisses++
	}
	h.mu.Unlock()
	return tests, ok
}

// PutTests stores a pair's generated tests on the peer.
func (h *HTTPBackend) PutTests(key string, tests []kernel.TestCase) error {
	data, err := EncodeTestsEntry(key, tests)
	if err != nil {
		return err
	}
	return h.put(TierTestgen, key, data)
}

// GetCell returns the CHECK tier entry for key from the peer.
func (h *HTTPBackend) GetCell(key string) (*KernelCell, bool) {
	var cell *KernelCell
	if data, fetched := h.get(TierCheck, key); fetched {
		cell, _ = DecodeCellEntry(key, data)
	}
	h.mu.Lock()
	if cell != nil {
		h.stats.CheckHits++
	} else {
		h.stats.CheckMisses++
	}
	h.mu.Unlock()
	return cell, cell != nil
}

// PutCell stores one kernel's cell on the peer.
func (h *HTTPBackend) PutCell(key string, cell KernelCell) error {
	data, err := EncodeCellEntry(key, cell)
	if err != nil {
		return err
	}
	return h.put(TierCheck, key, data)
}

// Stats returns cumulative hit/miss counts as seen from this side of the
// wire (a transport failure counts as a miss here even though the peer
// never saw the request).
func (h *HTTPBackend) Stats() CacheStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

// Ready probes the peer's own health endpoint: this backend can store
// entries iff the peer is up and its cache is writable.
func (h *HTTPBackend) Ready() error {
	resp, err := h.client.Get(h.base + "/healthz")
	if err != nil {
		return fmt.Errorf("cache peer %s unreachable: %w", h.base, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cache peer %s unhealthy: %s: %s", h.base, resp.Status, strings.TrimSpace(string(body)))
	}
	return nil
}

// String identifies the peer.
func (h *HTTPBackend) String() string { return h.base }
