package sweep

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/model"
	"repro/internal/testgen"
)

func TestKeyStability(t *testing.T) {
	base := func() string {
		return Key("open", "rename", analyzer.Options{}, testgen.Options{MaxTestsPerPath: 4}, []string{"linux", "sv6"})
	}
	k := base()
	if len(k) != 64 || strings.Trim(k, "0123456789abcdef") != "" {
		t.Fatalf("key %q is not lowercase hex sha256", k)
	}
	if k != base() {
		t.Error("identical inputs produced different keys")
	}

	// Every determining input must move the key.
	variants := map[string]string{
		"pair":         Key("open", "link", analyzer.Options{}, testgen.Options{MaxTestsPerPath: 4}, []string{"linux", "sv6"}),
		"pair order":   Key("rename", "open", analyzer.Options{}, testgen.Options{MaxTestsPerPath: 4}, []string{"linux", "sv6"}),
		"model config": Key("open", "rename", analyzer.Options{Config: model.Config{LowestFD: true}}, testgen.Options{MaxTestsPerPath: 4}, []string{"linux", "sv6"}),
		"max paths":    Key("open", "rename", analyzer.Options{MaxPaths: 128}, testgen.Options{MaxTestsPerPath: 4}, []string{"linux", "sv6"}),
		"per path":     Key("open", "rename", analyzer.Options{}, testgen.Options{MaxTestsPerPath: 8}, []string{"linux", "sv6"}),
		"gen lowestfd": Key("open", "rename", analyzer.Options{}, testgen.Options{MaxTestsPerPath: 4, LowestFD: true}, []string{"linux", "sv6"}),
		"kernels":      Key("open", "rename", analyzer.Options{}, testgen.Options{MaxTestsPerPath: 4}, []string{"sv6"}),
	}
	for what, v := range variants {
		if v == k {
			t.Errorf("changing %s did not change the key", what)
		}
	}

	// Zero-value options normalize to the pipeline defaults, so explicit
	// and implicit defaults share cache entries.
	zero := Key("open", "rename", analyzer.Options{}, testgen.Options{}, []string{"linux", "sv6"})
	explicit := Key("open", "rename", analyzer.Options{MaxPaths: 4096}, testgen.Options{MaxTestsPerPath: 4}, []string{"linux", "sv6"})
	if zero != explicit {
		t.Error("explicit defaults produced a different key than zero values")
	}
}

func TestCacheHitMissAccounting(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("stat", "stat", analyzer.Options{}, testgen.Options{}, []string{"sv6"})

	if _, ok := c.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	want := PairResult{OpA: "stat", OpB: "stat", Tests: 3,
		Cells: []KernelCell{{Kernel: "sv6", Total: 3, Conflicts: 1}}}
	if err := c.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("miss after Put")
	}
	if got.OpA != want.OpA || got.OpB != want.OpB || got.Tests != want.Tests ||
		len(got.Cells) != 1 || got.Cells[0] != want.Cells[0] {
		t.Errorf("got %+v, want %+v", got, want)
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats hits=%d misses=%d, want 1/1", hits, misses)
	}
}

// TestCachePutStripsProvenance pins that stored entries never carry timing
// or cached-ness from the run that produced them.
func TestCachePutStripsProvenance(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("lseek", "lseek", analyzer.Options{}, testgen.Options{}, []string{"linux"})
	if err := c.Put(key, PairResult{OpA: "lseek", OpB: "lseek", Cached: true, ElapsedMS: 99}); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("miss after Put")
	}
	if got.Cached || got.ElapsedMS != 0 {
		t.Errorf("stored entry kept provenance: %+v", got)
	}
}

// TestCacheCorruptionRecovery pins the graceful-degradation contract: a
// corrupted, version-mismatched or key-mismatched entry is a miss (so the
// sweep recomputes), never an error.
func TestCacheCorruptionRecovery(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("close", "close", analyzer.Options{}, testgen.Options{}, []string{"sv6"})
	good := PairResult{OpA: "close", OpB: "close", Tests: 2,
		Cells: []KernelCell{{Kernel: "sv6", Total: 2}}}
	if err := c.Put(key, good); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key+".json")

	// Truncated garbage.
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Error("corrupted entry served as a hit")
	}

	// Valid JSON from a different (older) code version.
	stale, _ := json.Marshal(cacheEntry{Version: CacheVersion - 1, Key: key, Pair: good})
	if err := os.WriteFile(path, stale, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Error("version-mismatched entry served as a hit")
	}

	// Entry whose embedded key disagrees with its filename (e.g. a file
	// copied between cache dirs).
	alien, _ := json.Marshal(cacheEntry{Version: CacheVersion, Key: "somebody-else", Pair: good})
	if err := os.WriteFile(path, alien, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Error("key-mismatched entry served as a hit")
	}

	// Overwriting repairs the slot.
	if err := c.Put(key, good); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); !ok {
		t.Error("repaired entry still misses")
	}
}

// TestSweepSurvivesUnwritableCache pins the write-side degradation
// contract: when results can't be stored (read-only cache directory), the
// sweep still completes and reports the failed stores instead of erroring.
func TestSweepSurvivesUnwritableCache(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep pipeline in -short mode")
	}
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if os.Getuid() == 0 {
		t.Skip("running as root: directory permissions are not enforced")
	}

	ops, kernels := testOps(t), testKernels()
	res, err := Run(Config{Ops: ops, Kernels: kernels, Workers: 2, Cache: cache})
	if err != nil {
		t.Fatalf("sweep failed on unwritable cache: %v", err)
	}
	wantPairs := len(ops) * (len(ops) + 1) / 2
	if len(res.Pairs) != wantPairs {
		t.Errorf("got %d pairs, want %d", len(res.Pairs), wantPairs)
	}
	if res.CacheWriteErrors != wantPairs {
		t.Errorf("CacheWriteErrors=%d, want %d", res.CacheWriteErrors, wantPairs)
	}
}

// TestSweepRecoversFromCorruptedCache pins end-to-end recovery: a sweep
// over a cache directory full of garbage recomputes everything and
// succeeds.
func TestSweepRecoversFromCorruptedCache(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep pipeline in -short mode")
	}
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	ops, kernels := testOps(t), testKernels()
	cfg := Config{Ops: ops, Kernels: kernels, Workers: 4, Cache: cache}
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Smash every entry on disk.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(first.Pairs) {
		t.Fatalf("cache holds %d files, want %d", len(entries), len(first.Pairs))
	}
	for _, e := range entries {
		if err := os.WriteFile(filepath.Join(dir, e.Name()), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	second, err := Run(cfg)
	if err != nil {
		t.Fatalf("sweep failed on corrupted cache: %v", err)
	}
	if second.CacheHits != 0 || second.CacheMisses != len(first.Pairs) {
		t.Errorf("corrupted cache: hits=%d misses=%d, want 0/%d",
			second.CacheHits, second.CacheMisses, len(first.Pairs))
	}

	// Third run sees the repaired entries.
	third, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if third.CacheHits != len(first.Pairs) || third.CacheMisses != 0 {
		t.Errorf("after repair: hits=%d misses=%d, want %d/0",
			third.CacheHits, third.CacheMisses, len(first.Pairs))
	}
}
