package sweep

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/sym"
	"repro/internal/testgen"
)

func TestTestgenKeyStability(t *testing.T) {
	base := func() string {
		return TestgenKey("posix", "open", "rename", analyzer.Options{}, testgen.Options{MaxTestsPerPath: 4})
	}
	k := base()
	if len(k) != 64 || strings.Trim(k, "0123456789abcdef") != "" {
		t.Fatalf("key %q is not lowercase hex sha256", k)
	}
	if k != base() {
		t.Error("identical inputs produced different keys")
	}

	// Every determining input must move the key.
	variants := map[string]string{
		"pair":         TestgenKey("posix", "open", "link", analyzer.Options{}, testgen.Options{MaxTestsPerPath: 4}),
		"pair order":   TestgenKey("posix", "rename", "open", analyzer.Options{}, testgen.Options{MaxTestsPerPath: 4}),
		"model config": TestgenKey("posix", "open", "rename", analyzer.Options{Config: model.Config{LowestFD: true}}, testgen.Options{MaxTestsPerPath: 4}),
		"max paths":    TestgenKey("posix", "open", "rename", analyzer.Options{MaxPaths: 128}, testgen.Options{MaxTestsPerPath: 4}),
		"per path":     TestgenKey("posix", "open", "rename", analyzer.Options{}, testgen.Options{MaxTestsPerPath: 8}),
		"gen lowestfd": TestgenKey("posix", "open", "rename", analyzer.Options{}, testgen.Options{MaxTestsPerPath: 4, LowestFD: true}),
		"spec":         TestgenKey("queue", "open", "rename", analyzer.Options{}, testgen.Options{MaxTestsPerPath: 4}),
	}
	for what, v := range variants {
		if v == k {
			t.Errorf("changing %s did not change the key", what)
		}
	}

	// Zero-value options normalize to the pipeline defaults, so explicit
	// and implicit defaults share cache entries.
	zero := TestgenKey("posix", "open", "rename", analyzer.Options{}, testgen.Options{})
	explicit := TestgenKey("posix", "open", "rename", analyzer.Options{MaxPaths: 4096}, testgen.Options{MaxTestsPerPath: 4})
	if zero != explicit {
		t.Error("explicit defaults produced a different key than zero values")
	}

	// The kernel set must NOT influence the testgen key: that independence
	// is what makes kernel-subset reruns incremental.
	ck := CheckKey(k, "sv6")
	if len(ck) != 64 || ck == k {
		t.Errorf("check key %q is not a distinct sha256", ck)
	}
	if CheckKey(k, "linux") == ck {
		t.Error("changing the kernel did not change the check key")
	}
	if CheckKey(variants["pair"], "sv6") == ck {
		t.Error("changing the testgen key did not change the check key")
	}
}

// cachedTests is a nontrivial test-case slice exercising every Setup field
// that must survive the JSON round trip through the TESTGEN tier.
func cachedTests() []kernel.TestCase {
	return []kernel.TestCase{{
		ID: "open_rename_path0_test0",
		Setup: kernel.Setup{
			Files:  []kernel.SetupFile{{Name: "f1", Inum: 1}},
			Inodes: []kernel.SetupInode{{Inum: 1, ExtraLinks: 2, Len: 1, Pages: map[int64]int64{0: 7}}},
			FDs:    []kernel.SetupFD{{Proc: 1, FD: 3, Inum: 1, Off: 1}},
			Pipes:  []kernel.SetupPipe{{ID: 1, Items: []int64{4, 5}}},
			VMAs:   []kernel.SetupVMA{{Proc: 0, Page: 2, Anon: true, Val: 9, Writable: true}},
		},
		Calls: [2]kernel.Call{
			{Op: "open", Proc: 0, Args: map[string]int64{"fname": 1, "anyfd": 1}},
			{Op: "rename", Proc: 1, Args: map[string]int64{"src": 1, "dst": 2}},
		},
	}}
}

func TestCacheTierRoundTripAndAccounting(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tgKey := TestgenKey("posix", "open", "rename", analyzer.Options{}, testgen.Options{})
	ckKey := CheckKey(tgKey, "sv6")

	if _, ok := c.GetTests(tgKey); ok {
		t.Fatal("testgen hit on empty cache")
	}
	if _, ok := c.GetCell(ckKey); ok {
		t.Fatal("check hit on empty cache")
	}

	tests := cachedTests()
	if err := c.PutTests(tgKey, tests); err != nil {
		t.Fatal(err)
	}
	got, ok := c.GetTests(tgKey)
	if !ok {
		t.Fatal("testgen miss after PutTests")
	}
	if !reflect.DeepEqual(got, tests) {
		t.Errorf("tests did not round-trip\ngot  %+v\nwant %+v", got, tests)
	}

	cell := KernelCell{Kernel: "sv6", Total: 3, Conflicts: 1}
	if err := c.PutCell(ckKey, cell); err != nil {
		t.Fatal(err)
	}
	gotCell, ok := c.GetCell(ckKey)
	if !ok {
		t.Fatal("check miss after PutCell")
	}
	if *gotCell != cell {
		t.Errorf("cell did not round-trip: got %+v, want %+v", *gotCell, cell)
	}

	want := CacheStats{TestgenHits: 1, TestgenMisses: 1, CheckHits: 1, CheckMisses: 1}
	if s := c.Stats(); s != want {
		t.Errorf("stats %+v, want %+v", s, want)
	}
	if s := c.Stats(); s.Hits() != 2 || s.Misses() != 2 {
		t.Errorf("tier sums hits=%d misses=%d, want 2/2", s.Hits(), s.Misses())
	}
}

// TestCacheCorruptionRecovery pins the graceful-degradation contract on
// both tiers: a corrupted, version-mismatched or key-mismatched entry is a
// miss (so the sweep recomputes), never an error. The version-mismatch
// cases double as the CacheVersion-bump discipline: entries stamped by an
// older code version are never matched again.
func TestCacheCorruptionRecovery(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	tgKey := TestgenKey("posix", "close", "close", analyzer.Options{}, testgen.Options{})
	ckKey := CheckKey(tgKey, "sv6")
	tests := cachedTests()
	cell := KernelCell{Kernel: "sv6", Total: 2}
	if err := c.PutTests(tgKey, tests); err != nil {
		t.Fatal(err)
	}
	if err := c.PutCell(ckKey, cell); err != nil {
		t.Fatal(err)
	}
	testsFile := filepath.Join(dir, tgKey+".tests.json")
	cellFile := filepath.Join(dir, ckKey+".cell.json")

	// Truncated garbage in either tier.
	for _, f := range []string{testsFile, cellFile} {
		if err := os.WriteFile(f, []byte("{not json"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := c.GetTests(tgKey); ok {
		t.Error("corrupted testgen entry served as a hit")
	}
	if _, ok := c.GetCell(ckKey); ok {
		t.Error("corrupted check entry served as a hit")
	}

	// Valid JSON from a different (older) code version: what a
	// CacheVersion bump leaves behind.
	staleT, _ := json.Marshal(testgenEntry{Version: CacheVersion - 1, Key: tgKey, Tests: tests})
	staleC, _ := json.Marshal(checkEntry{Version: CacheVersion - 1, Key: ckKey, Cell: cell})
	if err := os.WriteFile(testsFile, staleT, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cellFile, staleC, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GetTests(tgKey); ok {
		t.Error("version-mismatched testgen entry served as a hit")
	}
	if _, ok := c.GetCell(ckKey); ok {
		t.Error("version-mismatched check entry served as a hit")
	}

	// Entries whose embedded key disagrees with the filename (e.g. files
	// copied between cache dirs).
	alienT, _ := json.Marshal(testgenEntry{Version: CacheVersion, Key: "somebody-else", Tests: tests})
	alienC, _ := json.Marshal(checkEntry{Version: CacheVersion, Key: "somebody-else", Cell: cell})
	if err := os.WriteFile(testsFile, alienT, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cellFile, alienC, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GetTests(tgKey); ok {
		t.Error("key-mismatched testgen entry served as a hit")
	}
	if _, ok := c.GetCell(ckKey); ok {
		t.Error("key-mismatched check entry served as a hit")
	}

	// Overwriting repairs both slots.
	if err := c.PutTests(tgKey, tests); err != nil {
		t.Fatal(err)
	}
	if err := c.PutCell(ckKey, cell); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GetTests(tgKey); !ok {
		t.Error("repaired testgen entry still misses")
	}
	if _, ok := c.GetCell(ckKey); !ok {
		t.Error("repaired check entry still misses")
	}
}

// TestTruncatedResultsNotCached pins the budget/cache interaction: the
// cache key excludes the solver, which is only sound if budget-truncated
// (Unknown > 0) results are never stored — otherwise a tiny-budget sweep
// would poison both tiers and a full-budget rerun would serve the
// truncated tests and stale lower-bound cells forever.
func TestTruncatedResultsNotCached(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep pipeline in -short mode")
	}
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	ops, kernels := testOps(t), testKernels()
	tiny := Config{
		Ops: ops, Kernels: kernels, Cache: cache,
		Analyzer: analyzer.Options{Solver: &sym.Solver{MaxSteps: 1}},
	}
	res, err := Run(tiny)
	if err != nil {
		t.Fatal(err)
	}
	wantPairs := len(ops) * (len(ops) + 1) / 2
	truncated := 0
	for _, p := range res.Pairs {
		if p.Unknown > 0 {
			truncated++
		}
	}
	if truncated == 0 {
		t.Skip("one-step budget truncated nothing; test needs a harsher setup")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := (wantPairs - truncated) * (1 + len(kernels)); len(entries) != want {
		t.Errorf("cache holds %d files after truncated sweep, want %d (truncated pairs must not be stored)", len(entries), want)
	}

	// A full-budget sweep against the same cache must recompute the
	// truncated pairs (misses, not stale hits) and then report complete
	// results with no Unknown pairs.
	full, err := Run(Config{Ops: ops, Kernels: kernels, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if full.Cache.TestgenMisses != truncated {
		t.Errorf("full-budget rerun: %d testgen misses, want %d (the truncated pairs)", full.Cache.TestgenMisses, truncated)
	}
	for _, p := range full.Pairs {
		if p.Unknown > 0 {
			t.Errorf("full-budget pair %s still reports Unknown=%d (stale cache entry served?)", p.Pair(), p.Unknown)
		}
	}
}

// TestSweepSurvivesUnwritableCache pins the write-side degradation
// contract: when results can't be stored (read-only cache directory), the
// sweep still completes and reports the failed stores instead of erroring.
func TestSweepSurvivesUnwritableCache(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep pipeline in -short mode")
	}
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if os.Getuid() == 0 {
		t.Skip("running as root: directory permissions are not enforced")
	}

	ops, kernels := testOps(t), testKernels()
	res, err := Run(Config{Ops: ops, Kernels: kernels, Workers: 2, Cache: cache})
	if err != nil {
		t.Fatalf("sweep failed on unwritable cache: %v", err)
	}
	wantPairs := len(ops) * (len(ops) + 1) / 2
	if len(res.Pairs) != wantPairs {
		t.Errorf("got %d pairs, want %d", len(res.Pairs), wantPairs)
	}
	// One failed testgen store plus one failed cell store per kernel, per
	// pair.
	if want := wantPairs * (1 + len(kernels)); res.CacheWriteErrors != want {
		t.Errorf("CacheWriteErrors=%d, want %d", res.CacheWriteErrors, want)
	}
}

// TestSweepRecoversFromCorruptedCache pins end-to-end recovery: a sweep
// over a cache directory full of garbage recomputes everything in both
// tiers and succeeds.
func TestSweepRecoversFromCorruptedCache(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep pipeline in -short mode")
	}
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	ops, kernels := testOps(t), testKernels()
	cfg := Config{Ops: ops, Kernels: kernels, Workers: 4, Cache: cache}
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Smash every entry on disk, in both tiers.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	wantFiles := len(first.Pairs) * (1 + len(kernels))
	if len(entries) != wantFiles {
		t.Fatalf("cache holds %d files, want %d", len(entries), wantFiles)
	}
	for _, e := range entries {
		if err := os.WriteFile(filepath.Join(dir, e.Name()), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	second, err := Run(cfg)
	if err != nil {
		t.Fatalf("sweep failed on corrupted cache: %v", err)
	}
	wantMiss := CacheStats{
		TestgenMisses: len(first.Pairs),
		CheckMisses:   len(first.Pairs) * len(kernels),
	}
	if second.Cache != wantMiss {
		t.Errorf("corrupted cache: stats %+v, want %+v", second.Cache, wantMiss)
	}

	// Third run sees the repaired entries.
	third, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantHit := CacheStats{
		TestgenHits: len(first.Pairs),
		CheckHits:   len(first.Pairs) * len(kernels),
	}
	if third.Cache != wantHit {
		t.Errorf("after repair: stats %+v, want %+v", third.Cache, wantHit)
	}
}
