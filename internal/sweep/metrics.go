package sweep

import (
	"log/slog"
	"sync"

	"repro/internal/obs"
	"repro/internal/sym"
)

// Process-wide sweep metrics, recorded into the obs.Default registry that
// `commuter serve` exposes at /metrics. They aggregate across every sweep
// in the process (a serve instance's whole client population); per-run
// numbers stay on Result/PairResult.
var (
	metricSweepsInflight = obs.Default.Gauge(
		"commuter_sweeps_inflight",
		"Sweeps currently executing in this process.")
	metricPairsTotal = obs.Default.CounterVec(
		"commuter_sweep_pairs_total",
		"Finished sweep pairs by outcome (computed or served from cache).",
		"outcome")
	metricPhaseSeconds = obs.Default.HistogramVec(
		"commuter_sweep_phase_seconds",
		"Per-pair wall time spent in each pipeline phase.",
		obs.DefBuckets, "phase")
	metricTestgenHits = obs.Default.Counter(
		"commuter_cache_testgen_hits_total",
		"TESTGEN-tier cache hits (pairs whose symbolic analysis was skipped).")
	metricTestgenMisses = obs.Default.Counter(
		"commuter_cache_testgen_misses_total",
		"TESTGEN-tier cache misses (pairs whose symbolic analysis ran).")
	metricCheckHits = obs.Default.Counter(
		"commuter_cache_check_hits_total",
		"CHECK-tier cache hits (kernel cells served without replaying tests).")
	metricCheckMisses = obs.Default.Counter(
		"commuter_cache_check_misses_total",
		"CHECK-tier cache misses (kernel cells recomputed under mtrace).")
	metricCacheWriteErrors = obs.Default.CounterVec(
		"commuter_cache_write_errors_total",
		"Cache entries that could not be stored (best-effort writes), by backend kind.",
		"backend")
	metricBackendRequests = obs.Default.CounterVec(
		"commuter_cache_backend_requests_total",
		"Cache backend lookups by backend kind, tier and outcome.",
		"backend", "tier", "outcome")
	metricCoalescedShared = obs.Default.CounterVec(
		"commuter_coalesced_requests_total",
		"Sweep stages served by sharing a concurrent identical execution instead of recomputing.",
		"tier")
	metricCoalesceHandoffs = obs.Default.CounterVec(
		"commuter_coalesce_handoffs_total",
		"Canceled coalescing leaders that handed execution to a surviving waiter.",
		"tier")
	metricCheckShardBorrows = obs.Default.Counter(
		"commuter_check_shard_borrows_total",
		"Extra worker permits borrowed by CHECK stages to replay setup groups in parallel.")
	metricFleetLeasesIssued = obs.Default.Counter(
		"commuter_fleet_leases_issued_total",
		"Pair leases issued by this coordinator (including re-issues).")
	metricFleetSteals = obs.Default.Counter(
		"commuter_fleet_leases_stolen_total",
		"Expired or released leases re-issued to another worker (work stealing).")
	metricFleetRequeues = obs.Default.Counter(
		"commuter_fleet_requeues_total",
		"Leases released by their worker (cancellation) and returned to the pending queue.")
	metricFleetDupResults = obs.Default.Counter(
		"commuter_fleet_duplicate_results_total",
		"Posted pair results dropped because the pair was already complete.")
	metricFleetPairsExecuted = obs.Default.Counter(
		"commuter_fleet_pairs_executed_total",
		"Pairs this server executed under a fleet lease.")
	metricFleetPairsLeased = obs.Default.GaugeVec(
		"commuter_fleet_pairs_leased",
		"Pair leases currently held, by worker (coordinator view).",
		"worker")
	metricFleetPairsDone = obs.Default.CounterVec(
		"commuter_fleet_pairs_completed_total",
		"Pairs completed, by worker (coordinator view).",
		"worker")
	metricSatCalls = obs.Default.Counter(
		"commuter_solver_sat_calls_total",
		"Backtracking satisfiability searches started by sweep pairs.")
	metricBudgetHits = obs.Default.Counter(
		"commuter_solver_budget_exhaustions_total",
		"Solver searches that exhausted the step budget (unknown verdicts).")
)

// The intern table is process-wide and already keeps its own totals;
// expose them as scrape-time counters instead of mirroring every bump.
func init() {
	obs.Default.CounterFunc(
		"commuter_sym_intern_hits_total",
		"Hash-consing intern-table hits (constructors that reused a live node).",
		func() float64 { h, _ := sym.InternStats(); return float64(h) })
	obs.Default.CounterFunc(
		"commuter_sym_intern_misses_total",
		"Hash-consing intern-table misses (newly interned nodes).",
		func() float64 { _, m := sym.InternStats(); return float64(m) })
}

// putErrWarned dedups the write-degradation warning per backend handle,
// so a full disk (or dead cache peer) logs one warning, not one line per
// failed entry; the per-entry record is the write_errors counter.
var putErrWarned sync.Map // Backend -> *sync.Once

// reportPutError counts one failed best-effort store against its backend
// and logs the degradation once per backend handle at warn level.
func reportPutError(b Backend, err error) {
	metricCacheWriteErrors.With(backendKind(b)).Inc()
	once, _ := putErrWarned.LoadOrStore(b, new(sync.Once))
	once.(*sync.Once).Do(func() {
		slog.Warn("sweep: cache writes failing; sweeps continue but stay cold",
			"backend", b.String(), "err", err)
	})
}

// observeBackendGet records one backend lookup outcome on the labeled
// per-backend counter (the unlabeled per-tier counters stay as the stable
// dashboard names; this adds the per-backend breakdown).
func observeBackendGet(b Backend, tier string, hit bool) {
	outcome := "miss"
	if hit {
		outcome = "hit"
	}
	metricBackendRequests.With(backendKind(b), tier, outcome).Inc()
}

// observePair folds one finished pair into the process-wide metrics and
// emits the engine's debug log line.
func observePair(pr *PairResult) {
	outcome := "computed"
	switch {
	case pr.Cached:
		outcome = "cached"
	case pr.Coalesced:
		outcome = "coalesced"
	}
	metricPairsTotal.With(outcome).Inc()
	// Phase times describe work actually done; cached and coalesced pairs
	// did none, and folding their zeros in would skew the histograms.
	if outcome == "computed" {
		metricPhaseSeconds.With("analyze").Observe(pr.Phases.AnalyzeMS / 1e3)
		metricPhaseSeconds.With("testgen").Observe(pr.Phases.TestgenMS / 1e3)
		metricPhaseSeconds.With("check").Observe(pr.Phases.CheckMS / 1e3)
		metricPhaseSeconds.With("solver").Observe(pr.Phases.SolverMS / 1e3)
	}
	if pr.Solver.SatCalls > 0 {
		metricSatCalls.Add(uint64(pr.Solver.SatCalls))
	}
	if pr.Solver.BudgetHits > 0 {
		metricBudgetHits.Add(uint64(pr.Solver.BudgetHits))
	}
	slog.Debug("sweep: pair done",
		"pair", pr.Pair(),
		"tests", pr.Tests,
		"cached", pr.Cached,
		"coalesced", pr.Coalesced,
		"unknown", pr.Unknown,
		"elapsed_ms", pr.ElapsedMS,
		"check_groups", pr.CheckGroups,
		"check_shards", pr.CheckShards,
		"analyze_ms", pr.Phases.AnalyzeMS,
		"testgen_ms", pr.Phases.TestgenMS,
		"check_ms", pr.Phases.CheckMS,
		"solver_ms", pr.Phases.SolverMS,
		"sat_calls", pr.Solver.SatCalls)
}
