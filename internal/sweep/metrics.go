package sweep

import (
	"log/slog"

	"repro/internal/obs"
	"repro/internal/sym"
)

// Process-wide sweep metrics, recorded into the obs.Default registry that
// `commuter serve` exposes at /metrics. They aggregate across every sweep
// in the process (a serve instance's whole client population); per-run
// numbers stay on Result/PairResult.
var (
	metricSweepsInflight = obs.Default.Gauge(
		"commuter_sweeps_inflight",
		"Sweeps currently executing in this process.")
	metricPairsTotal = obs.Default.CounterVec(
		"commuter_sweep_pairs_total",
		"Finished sweep pairs by outcome (computed or served from cache).",
		"outcome")
	metricPhaseSeconds = obs.Default.HistogramVec(
		"commuter_sweep_phase_seconds",
		"Per-pair wall time spent in each pipeline phase.",
		obs.DefBuckets, "phase")
	metricTestgenHits = obs.Default.Counter(
		"commuter_cache_testgen_hits_total",
		"TESTGEN-tier cache hits (pairs whose symbolic analysis was skipped).")
	metricTestgenMisses = obs.Default.Counter(
		"commuter_cache_testgen_misses_total",
		"TESTGEN-tier cache misses (pairs whose symbolic analysis ran).")
	metricCheckHits = obs.Default.Counter(
		"commuter_cache_check_hits_total",
		"CHECK-tier cache hits (kernel cells served without replaying tests).")
	metricCheckMisses = obs.Default.Counter(
		"commuter_cache_check_misses_total",
		"CHECK-tier cache misses (kernel cells recomputed under mtrace).")
	metricCacheWriteErrors = obs.Default.Counter(
		"commuter_cache_write_errors_total",
		"Cache entries that could not be stored (best-effort writes).")
	metricSatCalls = obs.Default.Counter(
		"commuter_solver_sat_calls_total",
		"Backtracking satisfiability searches started by sweep pairs.")
	metricBudgetHits = obs.Default.Counter(
		"commuter_solver_budget_exhaustions_total",
		"Solver searches that exhausted the step budget (unknown verdicts).")
)

// The intern table is process-wide and already keeps its own totals;
// expose them as scrape-time counters instead of mirroring every bump.
func init() {
	obs.Default.CounterFunc(
		"commuter_sym_intern_hits_total",
		"Hash-consing intern-table hits (constructors that reused a live node).",
		func() float64 { h, _ := sym.InternStats(); return float64(h) })
	obs.Default.CounterFunc(
		"commuter_sym_intern_misses_total",
		"Hash-consing intern-table misses (newly interned nodes).",
		func() float64 { _, m := sym.InternStats(); return float64(m) })
}

// observePair folds one finished pair into the process-wide metrics and
// emits the engine's debug log line.
func observePair(pr *PairResult) {
	outcome := "computed"
	if pr.Cached {
		outcome = "cached"
	}
	metricPairsTotal.With(outcome).Inc()
	if !pr.Cached {
		metricPhaseSeconds.With("analyze").Observe(pr.Phases.AnalyzeMS / 1e3)
		metricPhaseSeconds.With("testgen").Observe(pr.Phases.TestgenMS / 1e3)
		metricPhaseSeconds.With("check").Observe(pr.Phases.CheckMS / 1e3)
		metricPhaseSeconds.With("solver").Observe(pr.Phases.SolverMS / 1e3)
	}
	if pr.Solver.SatCalls > 0 {
		metricSatCalls.Add(uint64(pr.Solver.SatCalls))
	}
	if pr.Solver.BudgetHits > 0 {
		metricBudgetHits.Add(uint64(pr.Solver.BudgetHits))
	}
	slog.Debug("sweep: pair done",
		"pair", pr.Pair(),
		"tests", pr.Tests,
		"cached", pr.Cached,
		"unknown", pr.Unknown,
		"elapsed_ms", pr.ElapsedMS,
		"analyze_ms", pr.Phases.AnalyzeMS,
		"testgen_ms", pr.Phases.TestgenMS,
		"check_ms", pr.Phases.CheckMS,
		"solver_ms", pr.Phases.SolverMS,
		"sat_calls", pr.Solver.SatCalls)
}
