package sweep

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/kernel"
)

// DefaultMemEntries is the MemBackend capacity OpenBackend("mem:") uses.
// Entries are whole tier values (a pair's test set or one kernel cell);
// 4096 comfortably holds the full 18-op posix matrix for both tiers and
// both kernels (171 pairs x 3 entries) with room for several specs and
// option variants.
const DefaultMemEntries = 4096

// MemBackend is a bounded in-memory LRU cache backend. It exists for two
// jobs: hermetic tests (no disk), and the fast tier of a Tiered stack
// layered over a slower shared backend — hot entries answer from memory,
// evictions fall through to the slow tier, nothing is lost because every
// Put writes through.
type MemBackend struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used
	items map[string]*list.Element
	stats CacheStats
}

// memItem is one LRU entry; exactly one of tests/cell is set, matching
// the tier encoded in its key's prefix.
type memItem struct {
	key   string
	tests []kernel.TestCase
	cell  *KernelCell
}

// NewMemBackend returns an empty LRU backend holding at most max entries
// (<= 0 means DefaultMemEntries).
func NewMemBackend(max int) *MemBackend {
	if max <= 0 {
		max = DefaultMemEntries
	}
	return &MemBackend{max: max, order: list.New(), items: make(map[string]*list.Element)}
}

// The two tiers share one LRU; tier prefixes keep their key spaces
// disjoint (the hex keys alone are already disjoint per tier, but the
// prefix makes that independent of how keys are derived).
func testsKey(key string) string { return "t:" + key }
func cellKey(key string) string  { return "c:" + key }

func (m *MemBackend) get(k string) (*memItem, bool) {
	el, ok := m.items[k]
	if !ok {
		return nil, false
	}
	m.order.MoveToFront(el)
	return el.Value.(*memItem), true
}

func (m *MemBackend) put(it *memItem) {
	if el, ok := m.items[it.key]; ok {
		el.Value = it
		m.order.MoveToFront(el)
		return
	}
	m.items[it.key] = m.order.PushFront(it)
	for m.order.Len() > m.max {
		oldest := m.order.Back()
		m.order.Remove(oldest)
		delete(m.items, oldest.Value.(*memItem).key)
	}
}

// GetTests returns the TESTGEN tier entry for key.
func (m *MemBackend) GetTests(key string) ([]kernel.TestCase, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	it, ok := m.get(testsKey(key))
	if ok {
		m.stats.TestgenHits++
		return it.tests, true
	}
	m.stats.TestgenMisses++
	return nil, false
}

// PutTests stores a pair's generated tests under key. It never fails.
func (m *MemBackend) PutTests(key string, tests []kernel.TestCase) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.put(&memItem{key: testsKey(key), tests: tests})
	return nil
}

// GetCell returns the CHECK tier entry for key. The cell is returned by
// value-copy so callers can't mutate the stored entry.
func (m *MemBackend) GetCell(key string) (*KernelCell, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	it, ok := m.get(cellKey(key))
	if ok {
		m.stats.CheckHits++
		cell := *it.cell
		return &cell, true
	}
	m.stats.CheckMisses++
	return nil, false
}

// PutCell stores one kernel's cell under key. It never fails.
func (m *MemBackend) PutCell(key string, cell KernelCell) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.put(&memItem{key: cellKey(key), cell: &cell})
	return nil
}

// Stats returns cumulative hit/miss counts.
func (m *MemBackend) Stats() CacheStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Len reports the number of live entries (both tiers).
func (m *MemBackend) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.order.Len()
}

// Ready always succeeds: memory is writable as long as the process is.
func (m *MemBackend) Ready() error { return nil }

// String identifies the backend and its capacity.
func (m *MemBackend) String() string { return fmt.Sprintf("mem:%d", m.max) }
