package sweep

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/model"
)

// tinyConfig is the smallest real pipeline run: one pair (stat/stat), one
// kernel. Phase-accounting tests need real work, not mocks, but not much
// of it.
func tinyConfig(t testing.TB) Config {
	op := model.OpByName("stat")
	if op == nil {
		t.Fatal("unknown op stat")
	}
	return Config{Ops: []*model.OpDef{op}, Kernels: testKernels()[:1], Workers: 1}
}

// TestPhaseBreakdown pins the per-pair observability record: a computed
// pair reports every phase, solver work, and phase sums consistent with
// its elapsed wall time; a fully cached pair reports none of it.
func TestPhaseBreakdown(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep pipeline in -short mode")
	}
	cfg := tinyConfig(t)
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cache = cache

	cold, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := cold.Pairs[0]
	if p.Phases.AnalyzeMS <= 0 || p.Phases.TestgenMS <= 0 || p.Phases.CheckMS <= 0 {
		t.Errorf("computed pair is missing phase times: %+v", p.Phases)
	}
	if sum := p.Phases.AnalyzeMS + p.Phases.TestgenMS + p.Phases.CheckMS; sum > p.ElapsedMS {
		t.Errorf("phase sum %v ms exceeds pair elapsed %v ms", sum, p.ElapsedMS)
	}
	// Solver search time happens inside the analyze and testgen phases.
	if p.Phases.SolverMS > p.Phases.AnalyzeMS+p.Phases.TestgenMS {
		t.Errorf("solver time %v ms exceeds its enclosing phases %v ms",
			p.Phases.SolverMS, p.Phases.AnalyzeMS+p.Phases.TestgenMS)
	}
	if p.Solver.SatCalls <= 0 {
		t.Errorf("computed pair reports %d SAT calls", p.Solver.SatCalls)
	}
	if p.Solver.InternHits <= 0 {
		t.Errorf("computed pair reports %d intern hits", p.Solver.InternHits)
	}

	warm, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := warm.Pairs[0]
	if !w.Cached {
		t.Fatal("warm pair was recomputed")
	}
	if w.Phases != (PhaseTimes{}) {
		t.Errorf("cached pair reports phase work: %+v", w.Phases)
	}
	if w.Solver.SatCalls != 0 || w.Solver.BudgetHits != 0 {
		t.Errorf("cached pair reports solver work: %+v", w.Solver)
	}
}

// TestWriteTrace pins the Chrome trace export: every pair becomes a span
// at its recorded offset, its phases nest inside it on the same lane, and
// cached pairs carry no phase children.
func TestWriteTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep pipeline in -short mode")
	}
	cfg := tinyConfig(t)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := WriteTrace(&b, res); err != nil {
		t.Fatal(err)
	}

	var file struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	p := res.Pairs[0]
	var pairSpan, phaseSum float64
	pairTID := -1
	phases := 0
	for _, ev := range file.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %s: phase %q, want X", ev.Name, ev.Ph)
		}
		switch ev.Cat {
		case "pair":
			if ev.Name != p.Pair() {
				t.Errorf("pair span named %q, want %q", ev.Name, p.Pair())
			}
			pairSpan, pairTID = ev.Dur, ev.TID
			if ev.TS != p.StartMS*1e3 || ev.Dur != p.ElapsedMS*1e3 {
				t.Errorf("pair span at ts=%v dur=%v, want ts=%v dur=%v",
					ev.TS, ev.Dur, p.StartMS*1e3, p.ElapsedMS*1e3)
			}
		case "phase":
			phases++
			phaseSum += ev.Dur
		}
	}
	if phases != 3 {
		t.Fatalf("got %d phase spans, want 3 (analyze, testgen, check)", phases)
	}
	// The acceptance contract: phase spans nest inside their pair span,
	// so their durations sum to no more than the pair's ElapsedMS.
	if phaseSum > pairSpan {
		t.Errorf("phase spans sum to %v us, exceeding the pair span %v us", phaseSum, pairSpan)
	}
	for _, ev := range file.TraceEvents {
		if ev.Cat == "phase" && ev.TID != pairTID {
			t.Errorf("phase %s on lane %d, pair on lane %d", ev.Name, ev.TID, pairTID)
		}
	}

	// A cached pair renders as a bare span with no phase children.
	cached := &Result{Pairs: []PairResult{{OpA: "a", OpB: "b", Cached: true, ElapsedMS: 0.5}}}
	b.Reset()
	if err := WriteTrace(&b, cached); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	if len(file.TraceEvents) != 1 || file.TraceEvents[0].Cat != "pair" {
		t.Errorf("cached pair rendered %d events, want 1 bare pair span", len(file.TraceEvents))
	}
}
