package sweep

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/kernel/monokernel"
)

// errSetup is the injected mid-sweep failure.
var errSetup = errors.New("injected setup failure")

// flakyKernel delegates to a real kernel but fails Apply once armed.
type flakyKernel struct {
	kernel.Kernel
	fail bool
}

func (f *flakyKernel) Apply(s kernel.Setup) error {
	if f.fail {
		return errSetup
	}
	return f.Kernel.Apply(s)
}

// TestSweepFailFastCleanShutdown pins the engine's error path, best run
// under -race: a pair that starts failing mid-sweep must fail the whole
// run with that pair's error, already-finished pairs must keep their
// serialized, monotone progress events, every worker goroutine must exit
// before Run returns, and pairs scheduled after the failure are skipped.
func TestSweepFailFastCleanShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep pipeline in -short mode")
	}
	ops := testOps(t)
	const failAfter = 2 // kernel constructions that succeed before failures begin
	var built atomic.Int64
	kernels := []KernelSpec{{
		Name: "flaky",
		New: func() kernel.Kernel {
			return &flakyKernel{
				Kernel: monokernel.New(),
				fail:   built.Add(1) > failAfter,
			}
		},
	}}

	var (
		mu     sync.Mutex
		events []Event
	)
	before := runtime.NumGoroutine()
	res, err := Run(Config{
		Ops: ops, Kernels: kernels, Workers: 4,
		Progress: func(ev Event) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	})
	if err == nil {
		t.Fatal("sweep with failing pair returned nil error")
	}
	if !errors.Is(err, errSetup) {
		t.Errorf("error lost the cause: %v", err)
	}
	if !strings.Contains(err.Error(), "flaky") {
		t.Errorf("error does not name the kernel: %v", err)
	}
	if res != nil {
		t.Errorf("failed sweep returned a result: %+v", res)
	}

	// Events for pairs that finished before the failure are intact and
	// serialized: Done counts 1..k with the shared total.
	wantPairs := len(ops) * (len(ops) + 1) / 2
	mu.Lock()
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != wantPairs {
			t.Errorf("event %d: done=%d total=%d, want %d/%d", i, ev.Done, ev.Total, i+1, wantPairs)
		}
	}
	got := len(events)
	mu.Unlock()
	if got >= wantPairs {
		t.Errorf("all %d pairs reported success despite injected failure", got)
	}

	// All workers must have exited before Run returned (Parallel waits on
	// its pool); allow the runtime a moment to retire finished goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutine leak: %d before sweep, %d after", before, after)
	}
}
