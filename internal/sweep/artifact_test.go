package sweep

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestReadArtifactHugeLine pins the regression the json.Decoder rewrite
// fixes: a single artifact line larger than bufio.Scanner's old 1 MiB cap
// (a test-heavy pair like rename,rename can produce one) must round-trip
// instead of failing with "token too long".
func TestReadArtifactHugeLine(t *testing.T) {
	big := PairResult{OpA: "rename", OpB: "rename", Tests: 1}
	for i := 0; len(big.Cells) < 40000; i++ {
		big.Cells = append(big.Cells, KernelCell{
			Kernel: strings.Repeat("k", 20) + string(rune('a'+i%26)), Total: i, Conflicts: i % 3,
		})
	}
	small := PairResult{OpA: "open", OpB: "open", Tests: 2}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, pr := range []PairResult{big, small} {
		if err := enc.Encode(pr); err != nil {
			t.Fatal(err)
		}
	}
	if buf.Len() < 1<<20 {
		t.Fatalf("artifact too small to exercise the old 1 MiB cap: %d bytes", buf.Len())
	}

	got, err := ReadArtifact(&buf)
	if err != nil {
		t.Fatalf("ReadArtifact: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d results, want 2", len(got))
	}
	if !reflect.DeepEqual(got[0], big) || !reflect.DeepEqual(got[1], small) {
		t.Error("artifact round-trip mutated results")
	}
}

// TestReadArtifactBlankLines pins whitespace tolerance: encoders emit one
// value per line, and hand-edited or concatenated artifacts may carry
// blank lines between values.
func TestReadArtifactBlankLines(t *testing.T) {
	in := "\n{\"op_a\":\"open\",\"op_b\":\"open\",\"tests\":3,\"elapsed_ms\":0}\n\n" +
		"{\"op_a\":\"pipe\",\"op_b\":\"pipe\",\"tests\":1,\"elapsed_ms\":0}\n\n\n"
	got, err := ReadArtifact(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].OpA != "open" || got[1].OpA != "pipe" {
		t.Fatalf("got %+v", got)
	}
}

// TestReadArtifactMalformed pins the error contract: a malformed value
// reports which entry failed.
func TestReadArtifactMalformed(t *testing.T) {
	in := "{\"op_a\":\"open\",\"op_b\":\"open\"}\n{not json}\n"
	_, err := ReadArtifact(strings.NewReader(in))
	if err == nil {
		t.Fatal("malformed artifact accepted")
	}
	if !strings.Contains(err.Error(), "entry 2") {
		t.Errorf("error does not name the failing entry: %v", err)
	}
}
