package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// FleetClient is the worker's side of the fleet coordination protocol:
// claim leases (with piggybacked renew/release), post completed results,
// read sweep status. Implementations must be safe for concurrent use —
// RunFleet posts results from every executor goroutine.
type FleetClient interface {
	Claim(ctx context.Context, req FleetClaimRequest) (FleetClaimResponse, error)
	Report(ctx context.Context, req FleetResultRequest) (FleetResultResponse, error)
	Status(ctx context.Context, sw FleetSweepSpec, withResults bool) (FleetStatusResponse, error)
}

// LocalFleet binds a FleetClient directly to an in-process hub — the
// coordinator talking to its own table without a network hop, and the
// deterministic harness the fleet tests drive.
func LocalFleet(h *FleetHub) FleetClient { return hubFleetClient{h} }

type hubFleetClient struct{ h *FleetHub }

func (c hubFleetClient) Claim(ctx context.Context, req FleetClaimRequest) (FleetClaimResponse, error) {
	if err := ctx.Err(); err != nil {
		return FleetClaimResponse{}, err
	}
	return c.h.Claim(req)
}

func (c hubFleetClient) Report(ctx context.Context, req FleetResultRequest) (FleetResultResponse, error) {
	if err := ctx.Err(); err != nil {
		return FleetResultResponse{}, err
	}
	return c.h.Report(req)
}

func (c hubFleetClient) Status(ctx context.Context, sw FleetSweepSpec, withResults bool) (FleetStatusResponse, error) {
	if err := ctx.Err(); err != nil {
		return FleetStatusResponse{}, err
	}
	return c.h.Status(sw, withResults)
}

// httpFleetClient speaks the fleet routes of a coordinator `commuter
// serve` instance, mirroring HTTPBackend's transport conventions.
type httpFleetClient struct {
	base   string
	client *http.Client
}

// NewHTTPFleetClient returns a FleetClient for the coordinator at
// baseURL (scheme://host[:port]).
func NewHTTPFleetClient(baseURL string) (FleetClient, error) {
	u, err := url.Parse(baseURL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("sweep: fleet coordinator %q is not an http(s) URL", baseURL)
	}
	return &httpFleetClient{
		base: strings.TrimSuffix(baseURL, "/"),
		// Coordination bodies are small and answered from memory; the
		// timeout only bounds how long a dead coordinator stalls a worker
		// on one round trip.
		client: &http.Client{Timeout: 15 * time.Second},
	}, nil
}

// post sends one JSON request and decodes the JSON response; non-2xx
// answers surface the body (the coordinator's wire error) in the error.
func (c *httpFleetClient) post(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.client.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("fleet coordinator %s: %w", c.base, err)
	}
	defer hresp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(hresp.Body, maxEntryBytes))
	if err != nil {
		return fmt.Errorf("fleet coordinator %s: %w", c.base, err)
	}
	if hresp.StatusCode < 200 || hresp.StatusCode >= 300 {
		return fmt.Errorf("fleet coordinator %s: POST %s: %s: %s",
			c.base, path, hresp.Status, strings.TrimSpace(string(data)))
	}
	return json.Unmarshal(data, resp)
}

func (c *httpFleetClient) Claim(ctx context.Context, req FleetClaimRequest) (FleetClaimResponse, error) {
	var resp FleetClaimResponse
	err := c.post(ctx, FleetClaimPath, req, &resp)
	return resp, err
}

func (c *httpFleetClient) Report(ctx context.Context, req FleetResultRequest) (FleetResultResponse, error) {
	var resp FleetResultResponse
	err := c.post(ctx, FleetResultPath, req, &resp)
	return resp, err
}

func (c *httpFleetClient) Status(ctx context.Context, sw FleetSweepSpec, withResults bool) (FleetStatusResponse, error) {
	q := url.Values{"sweep": {encodeSweepParam(sw)}}
	if withResults {
		q.Set("results", "1")
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+FleetStatusPath+"?"+q.Encode(), nil)
	if err != nil {
		return FleetStatusResponse{}, err
	}
	hresp, err := c.client.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			return FleetStatusResponse{}, ctx.Err()
		}
		return FleetStatusResponse{}, fmt.Errorf("fleet coordinator %s: %w", c.base, err)
	}
	defer hresp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(hresp.Body, maxEntryBytes))
	if err != nil {
		return FleetStatusResponse{}, fmt.Errorf("fleet coordinator %s: %w", c.base, err)
	}
	if hresp.StatusCode < 200 || hresp.StatusCode >= 300 {
		return FleetStatusResponse{}, fmt.Errorf("fleet coordinator %s: GET %s: %s: %s",
			c.base, FleetStatusPath, hresp.Status, strings.TrimSpace(string(data)))
	}
	var resp FleetStatusResponse
	err = json.Unmarshal(data, &resp)
	return resp, err
}

// encodeSweepParam renders the sweep identity as the status route's query
// parameter (base64-free: JSON is URL-encoded by url.Values).
func encodeSweepParam(sw FleetSweepSpec) string {
	data, _ := json.Marshal(sw)
	return string(data)
}

// DecodeSweepParam parses the status route's sweep parameter; the serve
// handler uses it.
func DecodeSweepParam(s string) (FleetSweepSpec, error) {
	var sw FleetSweepSpec
	if err := json.Unmarshal([]byte(s), &sw); err != nil {
		return FleetSweepSpec{}, fmt.Errorf("fleet: malformed sweep parameter: %w", err)
	}
	return sw, nil
}
