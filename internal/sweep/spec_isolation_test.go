package sweep

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/kvspec"
	"repro/internal/model"
	"repro/internal/queuespec"
	"repro/internal/spec"
	"repro/internal/vmspec"
)

// TestCacheIsolatesSpecs pins the spec-identity plumbing of the cache
// keys: two specs sharing one cache directory never serve each other's
// entries. A queue sweep after a warm posix sweep is fully cold (and vice
// versa), while each spec's own rerun is fully warm — so a shared cache
// costs nothing in correctness and loses nothing in incrementality.
func TestCacheIsolatesSpecs(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	posixOps, err := spec.OpSet(model.Spec, "stat,close")
	if err != nil {
		t.Fatal(err)
	}
	queueOps, err := spec.OpSet(queuespec.Spec, "send_any,recv_any")
	if err != nil {
		t.Fatal(err)
	}
	posixCfg := Config{Spec: model.Spec, Ops: posixOps, Cache: cache,
		Kernels: []KernelSpec{implSpec(model.Spec, t)}}
	queueCfg := Config{Spec: queuespec.Spec, Ops: queueOps, Cache: cache,
		Kernels: []KernelSpec{implSpec(queuespec.Spec, t)}}

	run := func(what string, cfg Config, wantHits, wantMisses bool) CacheStats {
		t.Helper()
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		st := res.Cache
		if wantMisses && st.TestgenMisses == 0 {
			t.Errorf("%s: expected cold TESTGEN tier, got %+v", what, st)
		}
		if !wantMisses && st.TestgenMisses != 0 {
			t.Errorf("%s: expected warm TESTGEN tier, got %+v", what, st)
		}
		if wantHits && st.TestgenHits == 0 {
			t.Errorf("%s: expected TESTGEN hits, got %+v", what, st)
		}
		return st
	}

	vmOps, err := spec.OpSet(vmspec.Spec, "memread,memwrite")
	if err != nil {
		t.Fatal(err)
	}
	kvOps, err := spec.OpSet(kvspec.Spec, "get,put")
	if err != nil {
		t.Fatal(err)
	}
	vmCfg := Config{Spec: vmspec.Spec, Ops: vmOps, Cache: cache,
		Kernels: []KernelSpec{implSpec(vmspec.Spec, t)}}
	kvCfg := Config{Spec: kvspec.Spec, Ops: kvOps, Cache: cache,
		Kernels: []KernelSpec{implSpec(kvspec.Spec, t)}}

	run("cold posix", posixCfg, false, true)
	// No other spec may be served posix entries: each one's first sweep
	// over the shared directory is fully cold.
	run("cold queue after warm posix", queueCfg, false, true)
	run("cold vm after warm posix", vmCfg, false, true)
	run("cold kv after warm posix", kvCfg, false, true)
	// And none of those sweeps may have disturbed another spec's entries.
	run("warm posix", posixCfg, true, false)
	run("warm queue", queueCfg, true, false)
	run("warm vm", vmCfg, true, false)
	run("warm kv", kvCfg, true, false)
}

// TestFleetSessionKeyIsolatesSpecs pins the fleet coordinator's session
// hashing: identical op lists and kernel lists under different specs must
// derive different session keys, so two fleets sweeping, say, a "vm"
// universe and a "kv" universe with coincidentally matching op name sets
// never join one pair table. Same-spec specs still coalesce.
func TestFleetSessionKeyIsolatesSpecs(t *testing.T) {
	base := FleetSweepSpec{Ops: []string{"alpha", "beta"}, Kernels: []string{"impl"}}
	keys := map[string]string{}
	for _, name := range []string{"posix", "queue", "vm", "kv"} {
		s := base
		s.Spec = name
		keys[name] = s.Key()
	}
	for a, ka := range keys {
		for b, kb := range keys {
			if a != b && ka == kb {
				t.Errorf("specs %q and %q share session key %s", a, b, ka)
			}
		}
	}
	same := base
	same.Spec = "vm"
	if same.Key() != keys["vm"] {
		t.Error("identical fleet specs derived different session keys")
	}
}

// implSpec picks a spec's first implementation binding as a sweep kernel.
func implSpec(sp spec.Spec, t *testing.T) KernelSpec {
	t.Helper()
	impls := sp.Impls()
	if len(impls) == 0 {
		t.Fatalf("%s: no implementations", sp.Name())
	}
	return KernelSpec{Name: impls[0].Name, New: func() kernel.Kernel { return impls[0].New() }}
}
