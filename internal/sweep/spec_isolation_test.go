package sweep

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/queuespec"
	"repro/internal/spec"
)

// TestCacheIsolatesSpecs pins the spec-identity plumbing of the cache
// keys: two specs sharing one cache directory never serve each other's
// entries. A queue sweep after a warm posix sweep is fully cold (and vice
// versa), while each spec's own rerun is fully warm — so a shared cache
// costs nothing in correctness and loses nothing in incrementality.
func TestCacheIsolatesSpecs(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	posixOps, err := spec.OpSet(model.Spec, "stat,close")
	if err != nil {
		t.Fatal(err)
	}
	queueOps, err := spec.OpSet(queuespec.Spec, "send_any,recv_any")
	if err != nil {
		t.Fatal(err)
	}
	posixCfg := Config{Spec: model.Spec, Ops: posixOps, Cache: cache,
		Kernels: []KernelSpec{implSpec(model.Spec, t)}}
	queueCfg := Config{Spec: queuespec.Spec, Ops: queueOps, Cache: cache,
		Kernels: []KernelSpec{implSpec(queuespec.Spec, t)}}

	run := func(what string, cfg Config, wantHits, wantMisses bool) CacheStats {
		t.Helper()
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		st := res.Cache
		if wantMisses && st.TestgenMisses == 0 {
			t.Errorf("%s: expected cold TESTGEN tier, got %+v", what, st)
		}
		if !wantMisses && st.TestgenMisses != 0 {
			t.Errorf("%s: expected warm TESTGEN tier, got %+v", what, st)
		}
		if wantHits && st.TestgenHits == 0 {
			t.Errorf("%s: expected TESTGEN hits, got %+v", what, st)
		}
		return st
	}

	run("cold posix", posixCfg, false, true)
	// The queue spec must not be served posix entries: its first sweep
	// over the shared directory is fully cold.
	run("cold queue after warm posix", queueCfg, false, true)
	// And the queue sweep must not have disturbed posix's entries.
	run("warm posix", posixCfg, true, false)
	run("warm queue", queueCfg, true, false)
}

// implSpec picks a spec's first implementation binding as a sweep kernel.
func implSpec(sp spec.Spec, t *testing.T) KernelSpec {
	t.Helper()
	impls := sp.Impls()
	if len(impls) == 0 {
		t.Fatalf("%s: no implementations", sp.Name())
	}
	return KernelSpec{Name: impls[0].Name, New: func() kernel.Kernel { return impls[0].New() }}
}
