package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/model"
)

// countingBackend wraps a Backend, counting Put calls per key and letting
// a test intercept GetTests (to hold a flight leader inside its work
// function at a known point). All sweeps sharing one countingBackend share
// its String(), and therefore its flight key space.
type countingBackend struct {
	Backend
	onGetTests func(key string)

	mu       sync.Mutex
	putTests map[string]int
	putCells map[string]int
}

func newCountingBackend(inner Backend) *countingBackend {
	return &countingBackend{
		Backend:  inner,
		putTests: make(map[string]int),
		putCells: make(map[string]int),
	}
}

func (c *countingBackend) GetTests(key string) ([]kernel.TestCase, bool) {
	if c.onGetTests != nil {
		c.onGetTests(key)
	}
	return c.Backend.GetTests(key)
}

func (c *countingBackend) PutTests(key string, tests []kernel.TestCase) error {
	c.mu.Lock()
	c.putTests[key]++
	c.mu.Unlock()
	return c.Backend.PutTests(key, tests)
}

func (c *countingBackend) PutCell(key string, cell KernelCell) error {
	c.mu.Lock()
	c.putCells[key]++
	c.mu.Unlock()
	return c.Backend.PutCell(key, cell)
}

// waitPending polls until key's testgen flight has want attached callers.
// On timeout it records the failure and returns (it may run on a worker
// goroutine, where FailNow would strand the sweep), letting the test
// finish and report.
func waitPending(t *testing.T, key string, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for testgenFlights.Pending(key) != want {
		if time.Now().After(deadline) {
			t.Errorf("flight %s never reached %d attached callers (have %d)",
				key, want, testgenFlights.Pending(key))
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestConcurrentIdenticalSweepsExecuteOnce is the coalescing acceptance
// test: N concurrent identical cold sweeps over one shared backend store
// every cache entry exactly once — each TESTGEN and each CHECK executed
// once, everyone else either shared the in-flight execution or hit the
// entry it stored — and every sweep reports an identical result payload.
func TestConcurrentIdenticalSweepsExecuteOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline in -short mode")
	}
	ops, kernels := testOps(t), testKernels()
	backend := newCountingBackend(NewMemBackend(0))
	cfg := Config{Ops: ops, Kernels: kernels, Workers: 4, Cache: backend}

	const sweeps = 4
	results := make([]*Result, sweeps)
	errs := make([]error, sweeps)
	var wg sync.WaitGroup
	for i := range sweeps {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = Run(cfg)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("sweep %d: %v", i, err)
		}
	}

	// Exactly one execution per stage: every stored key was stored once.
	backend.mu.Lock()
	for key, n := range backend.putTests {
		if n != 1 {
			t.Errorf("testgen key %s stored %d times, want 1", key, n)
		}
	}
	for key, n := range backend.putCells {
		if n != 1 {
			t.Errorf("check key %s stored %d times, want 1", key, n)
		}
	}
	wantKeys := len(ops) * (len(ops) + 1) / 2
	if len(backend.putTests) != wantKeys || len(backend.putCells) != wantKeys*len(kernels) {
		t.Errorf("stored %d testgen / %d check keys, want %d / %d",
			len(backend.putTests), len(backend.putCells), wantKeys, wantKeys*len(kernels))
	}
	backend.mu.Unlock()

	// Identical payloads for every sweep, byte for byte once the
	// fields that legitimately differ (timings, which sweep led vs
	// shared vs hit the cache) are stripped.
	want, err := json.Marshal(stripTiming(results[0].Pairs))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < sweeps; i++ {
		got, err := json.Marshal(stripTiming(results[i].Pairs))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("sweep %d payload diverges from sweep 0\ngot  %s\nwant %s", i, got, want)
		}
	}

	// The work was accounted exactly once across the fleet: per tier,
	// the sweeps' summed misses equal the number of distinct keys (each
	// missed by its one leader; waiters and later hits did no tier probe
	// or hit the stored entry).
	var total CacheStats
	for _, res := range results {
		total.TestgenMisses += res.Cache.TestgenMisses
		total.CheckMisses += res.Cache.CheckMisses
	}
	if total.TestgenMisses != wantKeys {
		t.Errorf("summed testgen misses = %d, want %d (one per key)", total.TestgenMisses, wantKeys)
	}
	if total.CheckMisses != wantKeys*len(kernels) {
		t.Errorf("summed check misses = %d, want %d (one per key)", total.CheckMisses, wantKeys*len(kernels))
	}
}

// TestCoalescedWaitersShareLeader forces true in-flight sharing (not a
// cache hit after the fact): the leader is held inside the flight until
// every sweep has attached, so all other sweeps must report the pair
// Coalesced with the same test count.
func TestCoalescedWaitersShareLeader(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline in -short mode")
	}
	op := model.OpByName("stat")
	if op == nil {
		t.Fatal("unknown op stat")
	}
	kernels := testKernels()[:1]

	const sweeps = 3
	backend := newCountingBackend(NewMemBackend(0))
	cfg := Config{Ops: []*model.OpDef{op}, Kernels: kernels, Workers: 1, Cache: backend}
	tgKey := TestgenKey("posix", "stat", "stat", cfg.Analyzer, cfg.Testgen)
	fid := flightID(backend, tgKey)

	// The leader announces itself from inside the flight and then holds
	// until every sweep is attached to it.
	var gateOnce sync.Once
	backend.onGetTests = func(key string) {
		gateOnce.Do(func() { waitPending(t, fid, sweeps) })
	}

	results := make([]*Result, sweeps)
	errs := make([]error, sweeps)
	var wg sync.WaitGroup
	for i := range sweeps {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = Run(cfg)
		}()
	}
	wg.Wait()

	var led, coalesced int
	for i := range sweeps {
		if errs[i] != nil {
			t.Fatalf("sweep %d: %v", i, errs[i])
		}
		if n := len(results[i].Pairs); n != 1 {
			t.Fatalf("sweep %d: %d pairs, want 1", i, n)
		}
		p := results[i].Pairs[0]
		switch {
		case p.Coalesced:
			coalesced++
			if p.Cached {
				t.Errorf("sweep %d: pair both coalesced and cached", i)
			}
		default:
			led++
			if p.Tests == 0 {
				t.Errorf("sweep %d: leader generated no tests", i)
			}
		}
	}
	if led != 1 || coalesced != sweeps-1 {
		t.Errorf("led=%d coalesced=%d, want 1 leader and %d waiters", led, coalesced, sweeps-1)
	}
	for i := 1; i < sweeps; i++ {
		if results[i].Pairs[0].Tests != results[0].Pairs[0].Tests {
			t.Errorf("sweep %d test count %d != sweep 0's %d",
				i, results[i].Pairs[0].Tests, results[0].Pairs[0].Tests)
		}
	}
	if n := backend.putTests[tgKey]; n != 1 {
		t.Errorf("testgen executed %d times, want 1", n)
	}
}

// TestCanceledLeaderHandsOffToWaiter pins the cancellation contract at the
// engine level: cancelling the sweep that leads a flight must not fail the
// concurrent sweep waiting on it — a waiter takes over and completes.
func TestCanceledLeaderHandsOffToWaiter(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline in -short mode")
	}
	op := model.OpByName("stat")
	if op == nil {
		t.Fatal("unknown op stat")
	}
	kernels := testKernels()[:1]

	backend := newCountingBackend(NewMemBackend(0))
	cfg := Config{Ops: []*model.OpDef{op}, Kernels: kernels, Workers: 1, Cache: backend}
	tgKey := TestgenKey("posix", "stat", "stat", cfg.Analyzer, cfg.Testgen)
	fid := flightID(backend, tgKey)

	// The first GetTests call (the original leader, inside the flight)
	// blocks until released; the waiter's re-execution passes through.
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	var gateOnce sync.Once
	backend.onGetTests = func(key string) {
		gateOnce.Do(func() {
			close(leaderIn)
			<-release
		})
	}

	lctx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()
	leaderErr := make(chan error, 1)
	go func() {
		_, err := RunContext(lctx, cfg)
		leaderErr <- err
	}()
	<-leaderIn

	waiterRes := make(chan *Result, 1)
	waiterErr := make(chan error, 1)
	go func() {
		res, err := Run(cfg)
		waiterRes <- res
		waiterErr <- err
	}()
	waitPending(t, fid, 2)

	// Cancel the leader, then let it out of the gate: its compute fails
	// with the context error, and the flight token passes to the waiter.
	cancelLeader()
	close(release)

	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled leader returned %v, want context.Canceled", err)
	}
	if err := <-waiterErr; err != nil {
		t.Fatalf("waiter sweep failed: %v", err)
	}
	res := <-waiterRes
	if len(res.Pairs) != 1 || res.Pairs[0].Tests == 0 {
		t.Fatalf("waiter result %+v, want one computed pair", res.Pairs)
	}
	if res.Pairs[0].Coalesced {
		t.Error("the waiter re-executed, so its pair must not be marked coalesced")
	}
	if n := backend.putTests[tgKey]; n != 1 {
		t.Errorf("testgen stored %d times, want 1 (the waiter's re-execution)", n)
	}
}
