package sweep

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/spec"
)

// fakeClock is an injectable clock for lease-expiry tests: time moves
// only when the test says so, making every expiry decision deterministic.
type fakeClock struct{ ns atomic.Int64 }

func newFakeClock() *fakeClock {
	c := &fakeClock{}
	c.ns.Store(time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC).UnixNano())
	return c
}

func (c *fakeClock) Now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *fakeClock) Advance(d time.Duration) { c.ns.Add(int64(d)) }

func claimReq(worker string, max int) FleetClaimRequest {
	return FleetClaimRequest{Version: FleetAPIVersion, Worker: worker, Max: max}
}

// TestFleetSweepSpecPairNames pins that the coordinator's spec-free work
// list enumeration matches the engine's Pairs orientation exactly — the
// property that lets lease names round-trip to ops on any worker.
func TestFleetSweepSpecPairNames(t *testing.T) {
	ops := testOps(t)
	sw := FleetSweepSpec{Ops: []string{"stat", "lseek", "close"}}
	var want []string
	for _, j := range Pairs(ops) {
		want = append(want, j[0].Name+"/"+j[1].Name)
	}
	if got := sw.PairNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("PairNames = %v, want %v (Pairs orientation)", got, want)
	}
}

// TestFleetSweepSpecKey pins session identity: semantically identical
// specs (zero caps vs explicit defaults) share a key, different option
// values do not.
func TestFleetSweepSpecKey(t *testing.T) {
	base := FleetSweepSpec{Spec: "posix", Ops: []string{"stat", "close"}, Kernels: []string{"linux"}}
	norm := base
	norm.MaxPaths, norm.MaxTestsPerPath = 4096, 4
	if base.Key() != norm.Key() {
		t.Error("zero caps and explicit defaults should share a session key")
	}
	for _, mut := range []func(*FleetSweepSpec){
		func(s *FleetSweepSpec) { s.Spec = "queue" },
		func(s *FleetSweepSpec) { s.Ops = []string{"close", "stat"} },
		func(s *FleetSweepSpec) { s.Kernels = []string{"sv6"} },
		func(s *FleetSweepSpec) { s.LowestFD = true },
		func(s *FleetSweepSpec) { s.TestgenLowestFD = true },
		func(s *FleetSweepSpec) { s.MaxPaths = 7 },
		func(s *FleetSweepSpec) { s.MaxTestsPerPath = 1 },
	} {
		v := base
		mut(&v)
		if v.Key() == base.Key() {
			t.Errorf("%+v should not share a session key with %+v", v, base)
		}
	}
}

// TestFleetTableClaimAndDoubleClaim pins the basic grant discipline: a
// pair whose lease is live is never granted twice, no matter who asks.
func TestFleetTableClaimAndDoubleClaim(t *testing.T) {
	clk := newFakeClock()
	tab := NewFleetTable("deadbeef", []string{"a/a", "b/a", "b/b"}, 10*time.Second, clk.Now)

	r1 := tab.Claim(claimReq("w1", 2))
	if len(r1.Leases) != 2 || r1.Leases[0].Pair != "a/a" || r1.Leases[1].Pair != "b/a" {
		t.Fatalf("w1 claim: %+v, want head-first [a/a b/a]", r1.Leases)
	}
	for _, l := range r1.Leases {
		if l.Stolen {
			t.Errorf("first grant of %s marked stolen", l.Pair)
		}
	}

	// w2 gets only the remaining pending pair — the two live leases are
	// invisible to it.
	r2 := tab.Claim(claimReq("w2", 5))
	if len(r2.Leases) != 1 || r2.Leases[0].Pair != "b/b" {
		t.Fatalf("w2 claim: %+v, want [b/b]", r2.Leases)
	}
	if r3 := tab.Claim(claimReq("w2", 5)); len(r3.Leases) != 0 {
		t.Fatalf("w2 re-claim with everything leased granted %+v", r3.Leases)
	}
	if r2.Pending != 0 || r2.Leased != 3 || r2.Total != 3 {
		t.Errorf("counts after full lease-out: %+v", r2)
	}
}

// TestFleetTableExpirySteal pins TTL stealing with a fake clock: an
// unrenewed lease is re-issued (tail-first, marked stolen) exactly when
// it expires, and renewal pushes expiry out.
func TestFleetTableExpirySteal(t *testing.T) {
	clk := newFakeClock()
	tab := NewFleetTable("deadbeef", []string{"a/a", "b/a", "b/b"}, 10*time.Second, clk.Now)

	r1 := tab.Claim(claimReq("w1", 3))
	if len(r1.Leases) != 3 {
		t.Fatalf("w1 claimed %d leases, want 3", len(r1.Leases))
	}

	// Renew one lease just before expiry; let the other two lapse.
	clk.Advance(9 * time.Second)
	renew := claimReq("w1", 0)
	renew.Renew = []string{r1.Leases[0].ID}
	tab.Claim(renew)
	clk.Advance(2 * time.Second) // 11s: unrenewed leases expired, renewed one is 2s old

	r2 := tab.Claim(claimReq("w2", 3))
	if len(r2.Leases) != 2 {
		t.Fatalf("w2 stole %d leases, want the 2 expired: %+v", len(r2.Leases), r2.Leases)
	}
	// Tail-first: the thief drains toward the head the victim works from.
	if r2.Leases[0].Pair != "b/b" || r2.Leases[1].Pair != "b/a" {
		t.Errorf("steal order %+v, want tail-first [b/b b/a]", r2.Leases)
	}
	for _, l := range r2.Leases {
		if !l.Stolen {
			t.Errorf("re-issued lease for %s not marked stolen", l.Pair)
		}
	}

	// The renewed lease is live; nobody can steal it yet.
	if r3 := tab.Claim(claimReq("w3", 3)); len(r3.Leases) != 0 {
		t.Fatalf("renewed lease stolen early: %+v", r3.Leases)
	}
	st := tab.Status(false)
	if st.Workers["w2"].Stolen != 2 {
		t.Errorf("w2 stolen count = %d, want 2", st.Workers["w2"].Stolen)
	}
}

// TestFleetTableReleaseRequeue pins requeue-on-cancel: a released lease
// is claimable immediately, with no clock advance at all.
func TestFleetTableReleaseRequeue(t *testing.T) {
	clk := newFakeClock()
	tab := NewFleetTable("deadbeef", []string{"a/a", "b/a"}, 10*time.Second, clk.Now)

	r1 := tab.Claim(claimReq("w1", 2))
	rel := claimReq("w1", 0)
	rel.Release = []string{r1.Leases[0].ID, r1.Leases[1].ID}
	tab.Claim(rel)

	r2 := tab.Claim(claimReq("w2", 2))
	if len(r2.Leases) != 2 {
		t.Fatalf("released leases not immediately claimable: %+v", r2.Leases)
	}
	if st := tab.Status(false); st.Requeued != 2 {
		t.Errorf("requeued = %d, want 2", st.Requeued)
	}

	// A foreign or stale release is a no-op, not a steal vector.
	rel2 := claimReq("w1", 0)
	rel2.Release = []string{r2.Leases[0].ID}
	tab.Claim(rel2)
	if r3 := tab.Claim(claimReq("w3", 2)); len(r3.Leases) != 0 {
		t.Fatalf("w1 released w2's lease: %+v", r3.Leases)
	}
}

// TestFleetTableCompleteIdempotent pins result-post semantics: first
// completion wins, repeats are duplicates, unknown pairs are stale, and
// Done trips exactly when the last pair lands.
func TestFleetTableCompleteIdempotent(t *testing.T) {
	clk := newFakeClock()
	tab := NewFleetTable("deadbeef", []string{"a/a", "b/a"}, 10*time.Second, clk.Now)
	tab.Claim(claimReq("w1", 2))

	done := func(a, b string) []FleetPairDone {
		return []FleetPairDone{{Pair: PairResult{OpA: a, OpB: b, Tests: 1}}}
	}
	r := tab.Complete("w1", done("a", "a"))
	if r.Accepted != 1 || r.Done {
		t.Fatalf("first completion: %+v", r)
	}
	if r = tab.Complete("w2", done("a", "a")); r.Duplicate != 1 || r.Accepted != 0 {
		t.Fatalf("repeat completion: %+v", r)
	}
	if r = tab.Complete("w2", done("zz", "zz")); r.Stale != 1 {
		t.Fatalf("unknown pair: %+v", r)
	}
	if r = tab.Complete("w2", done("b", "a")); !r.Done || r.Completed != 2 {
		t.Fatalf("final completion: %+v", r)
	}
	st := tab.Status(true)
	if !st.Done || len(st.Results) != 2 {
		t.Fatalf("status after done: %+v", st)
	}
	if st.Results[0].Pair() != "a/a" || st.Results[1].Pair() != "b/a" {
		t.Errorf("results unsorted: %v, %v", st.Results[0].Pair(), st.Results[1].Pair())
	}
}

// countingFleet wraps a FleetClient and records, per pair, how many
// result posts it carried — the exactly-once ledger the fleet tests
// assert against.
type countingFleet struct {
	FleetClient
	mu       sync.Mutex
	reported map[string]int
}

func newCountingFleet(fc FleetClient) *countingFleet {
	return &countingFleet{FleetClient: fc, reported: map[string]int{}}
}

func (c *countingFleet) Report(ctx context.Context, req FleetResultRequest) (FleetResultResponse, error) {
	c.mu.Lock()
	for _, item := range req.Results {
		c.reported[item.Pair.Pair()]++
	}
	c.mu.Unlock()
	return c.FleetClient.Report(ctx, req)
}

// TestRunFleetMatchesRunContext is the tentpole contract: two workers
// sharing one coordinator each return the complete matrix, identical to
// a single-process RunContext of the same Config, and every pair is
// executed exactly once fleet-wide.
func TestRunFleetMatchesRunContext(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep pipeline in -short mode")
	}
	ops, kernels := testOps(t), testKernels()
	want := stripTiming(mustRun(t, Config{Ops: ops, Kernels: kernels, Workers: 2}).Pairs)

	hub := NewFleetHub(0, nil)
	counting := newCountingFleet(LocalFleet(hub))
	var wg sync.WaitGroup
	results := make([]*Result, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := Config{Ops: ops, Kernels: kernels, Workers: 2, FleetWorker: []string{"w1", "w2"}[i]}
			results[i], errs[i] = RunFleet(context.Background(), cfg, counting)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	for i, res := range results {
		if got := stripTiming(res.Pairs); !reflect.DeepEqual(got, want) {
			t.Errorf("worker %d matrix diverges from RunContext\ngot  %+v\nwant %+v", i, got, want)
		}
	}

	counting.mu.Lock()
	defer counting.mu.Unlock()
	if len(counting.reported) != len(want) {
		t.Errorf("fleet executed %d distinct pairs, want %d", len(counting.reported), len(want))
	}
	for pair, n := range counting.reported {
		if n != 1 {
			t.Errorf("pair %s executed %d times fleet-wide, want exactly once", pair, n)
		}
	}
}

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// cancelAfterClaim cancels the worker's context as soon as its first
// claim granted leases — the "worker killed mid-sweep" shape.
type cancelAfterClaim struct {
	FleetClient
	cancel  context.CancelFunc
	tripped atomic.Bool
}

func (c *cancelAfterClaim) Claim(ctx context.Context, req FleetClaimRequest) (FleetClaimResponse, error) {
	resp, err := c.FleetClient.Claim(ctx, req)
	if err == nil && len(resp.Leases) > 0 && !c.tripped.Swap(true) {
		c.cancel()
	}
	return resp, err
}

// TestRunFleetCancelRequeues pins lease loss on cancellation: a worker
// canceled while holding leases releases them on its way out (requeue,
// not completion), so a second worker finishes the full matrix without
// any lease ever expiring — the hub runs the default 30s TTL and the
// test finishes in a fraction of that.
func TestRunFleetCancelRequeues(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep pipeline in -short mode")
	}
	ops, kernels := testOps(t), testKernels()
	want := stripTiming(mustRun(t, Config{Ops: ops, Kernels: kernels, Workers: 2}).Pairs)

	hub := NewFleetHub(0, nil)
	actx, acancel := context.WithCancel(context.Background())
	defer acancel()
	fcA := &cancelAfterClaim{FleetClient: LocalFleet(hub), cancel: acancel}
	_, errA := RunFleet(actx, Config{Ops: ops, Kernels: kernels, Workers: 2, FleetWorker: "doomed"}, fcA)
	if errA == nil {
		t.Fatal("canceled worker returned no error")
	}

	res, err := RunFleet(context.Background(), Config{Ops: ops, Kernels: kernels, Workers: 2, FleetWorker: "survivor"}, LocalFleet(hub))
	if err != nil {
		t.Fatal(err)
	}
	if got := stripTiming(res.Pairs); !reflect.DeepEqual(got, want) {
		t.Errorf("matrix after mid-sweep cancellation diverges (truncated?)\ngot  %+v\nwant %+v", got, want)
	}
	st, err := LocalFleet(hub).Status(context.Background(), FleetSpec(mustSpec(t), Config{Ops: ops, Kernels: kernels}), false)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done {
		t.Error("sweep not done after survivor finished")
	}
	if st.Workers["doomed"].Leased != 0 {
		t.Errorf("doomed worker still holds %d leases after cancellation", st.Workers["doomed"].Leased)
	}
}

func mustSpec(t *testing.T) spec.Spec {
	t.Helper()
	sp, err := spec.Lookup("posix")
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestRunFleetSlowPeerTailFinish pins stealing end to end with a fake
// clock: a peer that claims part of the sweep and then goes silent does
// not wedge it — once its leases expire, the live worker steals the tail
// and still produces the complete matrix.
func TestRunFleetSlowPeerTailFinish(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep pipeline in -short mode")
	}
	ops, kernels := testOps(t), testKernels()
	want := stripTiming(mustRun(t, Config{Ops: ops, Kernels: kernels, Workers: 2}).Pairs)

	clk := newFakeClock()
	hub := NewFleetHub(0, clk.Now)
	cfg := Config{Ops: ops, Kernels: kernels, Workers: 2, FleetWorker: "fast"}
	fspec := FleetSpec(mustSpec(t), cfg)

	// The slow peer claims two pairs and is never heard from again.
	dead, err := hub.Claim(FleetClaimRequest{Version: FleetAPIVersion, Worker: "slow", Max: 2, Sweep: fspec})
	if err != nil {
		t.Fatal(err)
	}
	if len(dead.Leases) != 2 {
		t.Fatalf("slow peer claimed %d leases, want 2", len(dead.Leases))
	}
	// Its leases expire in fake time before the fast worker ever polls.
	clk.Advance(DefaultFleetTTL + time.Second)

	res, err := RunFleet(context.Background(), cfg, LocalFleet(hub))
	if err != nil {
		t.Fatal(err)
	}
	if got := stripTiming(res.Pairs); !reflect.DeepEqual(got, want) {
		t.Errorf("matrix with a dead peer diverges\ngot  %+v\nwant %+v", got, want)
	}
	st, err := LocalFleet(hub).Status(context.Background(), fspec, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers["fast"].Stolen != 2 {
		t.Errorf("fast worker stole %d leases, want the dead peer's 2", st.Workers["fast"].Stolen)
	}
}

// TestFleetHubLateJoiner pins completed-session retention: a worker
// arriving after the sweep finished is answered from the finished table
// (deterministic results make that equivalent to recomputing).
func TestFleetHubLateJoiner(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep pipeline in -short mode")
	}
	ops, kernels := testOps(t), testKernels()
	hub := NewFleetHub(0, nil)
	cfg := Config{Ops: ops, Kernels: kernels, Workers: 2, FleetWorker: "first"}
	first, err := RunFleet(context.Background(), cfg, LocalFleet(hub))
	if err != nil {
		t.Fatal(err)
	}
	counting := newCountingFleet(LocalFleet(hub))
	cfg.FleetWorker = "late"
	late, err := RunFleet(context.Background(), cfg, counting)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripTiming(late.Pairs), stripTiming(first.Pairs)) {
		t.Error("late joiner's matrix diverges from the fleet's")
	}
	counting.mu.Lock()
	defer counting.mu.Unlock()
	if len(counting.reported) != 0 {
		t.Errorf("late joiner re-executed %d pairs of a finished sweep", len(counting.reported))
	}
}

// TestFleetHubReportUnknownSession pins the coordinator-restart
// semantics: results cannot be posted into a session nobody claimed
// from.
func TestFleetHubReportUnknownSession(t *testing.T) {
	hub := NewFleetHub(0, nil)
	_, err := hub.Report(FleetResultRequest{
		Version: FleetAPIVersion, Worker: "w",
		Sweep: FleetSweepSpec{Spec: "posix", Ops: []string{"stat"}},
	})
	if err == nil || !strings.Contains(err.Error(), "unknown sweep") {
		t.Fatalf("report into unknown session: %v, want unknown-sweep error", err)
	}
}
