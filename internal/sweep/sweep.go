// Package sweep is the parallel orchestration engine for the COMMUTER
// pipeline. It fans the per-pair ANALYZE → TESTGEN → CHECK work across a
// configurable worker pool: the mtrace tracer is single-threaded, so
// isolation is per pair (every kernel.Check builds fresh kernel instances
// with their own mtrace.Memory) and parallelism is across the 171 unordered
// pairs of the modeled operations.
//
// The engine optionally consults a content-addressed cache Backend (on
// disk, in memory, a peer server over HTTP, or a tiered stack of those) so
// repeat sweeps are incremental, coalesces identical concurrent cold
// stages into one execution, streams per-pair progress Events, and can
// mirror every PairResult to a JSONL artifact stream.
package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analyzer"
	"repro/internal/flight"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/spec"
	"repro/internal/sym"
	"repro/internal/testgen"
)

// KernelSpec names one kernel implementation under test and how to build a
// fresh instance of it. The cache identifies kernels by Name alone, so a
// caller supplying a custom New must give it a name distinct from the stock
// implementations (or use a separate cache directory) — otherwise cached
// results computed with the stock kernel are served for the custom one.
type KernelSpec struct {
	Name string
	New  func() kernel.Kernel
}

// Event is one streaming progress report, emitted after a pair finishes.
// Progress callbacks are serialized by the engine.
type Event struct {
	// Pair is "opA/opB".
	Pair string
	// Done and Total count finished and scheduled pairs.
	Done, Total int
	// Tests is the number of generated test cases for the pair.
	Tests int
	// Cached reports that the pair was served entirely from the cache
	// (TESTGEN tier plus every kernel's CHECK tier entry).
	Cached bool
	// Coalesced reports that at least one of the pair's stages was shared
	// from a concurrent identical execution instead of run here.
	Coalesced bool
	// PairMS is the wall time this pair took, in milliseconds.
	PairMS float64
	// Elapsed is the cumulative wall time since the sweep started.
	Elapsed time.Duration
	// Result points at the finished pair's full result, so streaming
	// consumers (the Client façade, the serve endpoint) get per-pair
	// results as they complete instead of waiting for Run to return. It
	// is immutable once the event fires.
	Result *PairResult
}

// Config describes one sweep.
type Config struct {
	// Spec is the interface specification the swept ops belong to; nil
	// selects the registered "posix" spec. The spec's name is folded
	// into both cache tiers so different specs can share one cache
	// directory without ever colliding.
	Spec spec.Spec
	// Ops is the operation universe; the sweep covers every unordered
	// pair, oriented like the sequential evaluation path (earlier op
	// first).
	Ops []*spec.Op
	// Kernels are the implementations to check each generated test on.
	Kernels []KernelSpec
	// Analyzer tunes ANALYZER. A caller-provided Solver disables
	// parallelism (solvers are not safe to share); leave it nil.
	Analyzer analyzer.Options
	// Testgen tunes TESTGEN; same Solver caveat as Analyzer.
	Testgen testgen.Options
	// Workers sizes the pool; <= 0 means runtime.NumCPU().
	Workers int
	// Cache, when non-nil, serves and stores per-pair results. Any
	// Backend works: the on-disk *Cache (OpenCache), an in-memory LRU
	// (NewMemBackend), a peer server (NewHTTPBackend), a Tiered stack,
	// or whatever OpenBackend resolves from a -cache URL.
	Cache Backend
	// Progress, when non-nil, receives one Event per finished pair.
	Progress func(Event)
	// Artifact, when non-nil, receives one JSON line per finished pair.
	Artifact io.Writer
	// FleetWorker names this process to the fleet coordinator (RunFleet
	// only); empty derives a host-pid-unique name.
	FleetWorker string
}

// KernelCell is one kernel's aggregate verdict for one pair: how many of
// the generated tests ran and how many were not conflict-free.
type KernelCell struct {
	Kernel    string `json:"kernel"`
	Total     int    `json:"total"`
	Conflicts int    `json:"conflicts"`
}

// PairResult is the sweep outcome for one operation pair.
type PairResult struct {
	OpA   string       `json:"op_a"`
	OpB   string       `json:"op_b"`
	Tests int          `json:"tests"`
	Cells []KernelCell `json:"cells,omitempty"`
	// Unknown counts paths whose work exhausted the solver's step
	// budget: analyzer paths with truncated classification plus testgen
	// paths with truncated class enumeration. A nonzero count means the
	// pair's test set — and hence its matrix cell — is a lower bound,
	// not a proof of non-commutativity; downstream rendering marks such
	// pairs instead of presenting them as "never commutes".
	Unknown int `json:"unknown,omitempty"`
	// Cached reports that nothing was recomputed for the pair: the tests
	// came from the TESTGEN tier and every cell from the CHECK tier.
	Cached bool `json:"cached,omitempty"`
	// Coalesced reports that at least one stage's result was shared from
	// a concurrent identical execution (single-flight): this sweep did
	// not run that stage, another in-process sweep did. Phase and solver
	// counters cover only work this sweep performed itself.
	Coalesced bool `json:"coalesced,omitempty"`
	// CheckGroups is the number of distinct setup fingerprints the pair's
	// tests were batched into for CHECK (zero for a cached or coalesced
	// pair, like the phase times). Grouping is deterministic: it depends
	// only on the generated tests.
	CheckGroups int `json:"check_groups,omitempty"`
	// CheckShards is the largest number of replay shards any kernel's
	// CHECK ran on, 1 meaning fully sequential. Unlike CheckGroups it is a
	// scheduling artifact — it depends on how many workers were idle — so
	// result comparisons should ignore it like the timing fields.
	CheckShards int `json:"check_shards,omitempty"`
	// ElapsedMS is the wall time this pair took in this sweep.
	ElapsedMS float64 `json:"elapsed_ms"`
	// StartMS is when this pair started, in milliseconds from the start
	// of its sweep — with ElapsedMS it places the pair on the sweep's
	// timeline, which is what the -trace Chrome export renders.
	StartMS float64 `json:"start_ms,omitempty"`
	// Phases breaks ElapsedMS down by pipeline phase. All zero for a
	// fully cached pair (nothing was recomputed).
	Phases PhaseTimes `json:"phases,omitzero"`
	// Solver counts the pair's symbolic-search work. All zero for a
	// fully cached pair.
	Solver SolverCounters `json:"solver,omitzero"`
}

// PhaseTimes is a per-pair wall-time breakdown by pipeline phase. The
// three phase times are disjoint and their sum is bounded by the pair's
// ElapsedMS (the remainder is cache I/O and scheduling); SolverMS is the
// time inside satisfiability searches, a subset of AnalyzeMS+TestgenMS,
// tracked separately because "make CHECK fast" and "make the solver
// fast" are different optimization targets.
type PhaseTimes struct {
	// AnalyzeMS is the ANALYZE phase: symbolic execution of both
	// permutations plus per-path commutativity classification.
	AnalyzeMS float64 `json:"analyze_ms,omitempty"`
	// TestgenMS is the TESTGEN phase: isomorphism-class enumeration and
	// concrete test construction.
	TestgenMS float64 `json:"testgen_ms,omitempty"`
	// CheckMS is the CHECK phase: replaying generated tests on every
	// kernel under mtrace, summed across kernels.
	CheckMS float64 `json:"check_ms,omitempty"`
	// SolverMS is the wall time inside the solver's backtracking
	// searches (analyzer and testgen solvers combined).
	SolverMS float64 `json:"solver_ms,omitempty"`
}

// SolverCounters aggregates the pair's solver and intern-table traffic.
type SolverCounters struct {
	// SatCalls counts backtracking searches run for this pair.
	SatCalls int64 `json:"sat_calls,omitempty"`
	// BudgetHits counts searches that exhausted the step budget (each
	// one is an "unknown", not a proof; see PairResult.Unknown).
	BudgetHits int64 `json:"budget_exhaustions,omitempty"`
	// InternHits counts intern-table hits observed while the pair ran.
	// The table is process-wide, so under a parallel sweep concurrent
	// pairs' hits land in whichever pair observes them — per-pair
	// attribution is approximate, but the sum across pairs is exact.
	InternHits int64 `json:"intern_hits,omitempty"`
}

// Pair is "opA/opB", the identifier used in progress events.
func (p PairResult) Pair() string { return p.OpA + "/" + p.OpB }

// Result is a completed sweep.
type Result struct {
	// Spec names the swept interface specification.
	Spec string
	// Pairs holds one result per pair, sorted by (OpA, OpB).
	Pairs []PairResult
	// Workers is the resolved pool size.
	Workers int
	// Elapsed is the sweep wall time.
	Elapsed time.Duration
	// Cache counts per-tier hit/miss outcomes during this sweep (all zero
	// when no cache was configured). A TESTGEN miss means the pair's
	// symbolic analysis ran; a CHECK miss means one kernel's tests ran.
	Cache CacheStats
	// CacheWriteErrors counts cache entries (testgen or check tier) that
	// could not be stored (disk full, permissions). Writes are
	// best-effort: a failed store costs incrementality, never the sweep.
	CacheWriteErrors int
}

// TotalTests sums generated tests across pairs.
func (r *Result) TotalTests() int {
	n := 0
	for _, p := range r.Pairs {
		n += p.Tests
	}
	return n
}

// Run executes the sweep described by cfg and returns the per-pair results.
// Pair computation is deterministic, so the result is independent of worker
// count and scheduling; only timing fields vary.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run under a context. Cancellation stops the sweep
// promptly: no new pairs start, in-flight pairs abandon their symbolic
// work between (and, via the solver Stop hook, inside) satisfiability
// searches, every worker exits before RunContext returns, and the call
// reports ctx.Err(). Cache writes are never interrupted mid-entry — each
// goes through a temp file and an atomic rename, and a pair that did not
// complete stores nothing — so a cancelled sweep leaves only complete
// cache entries behind.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	// Solvers carry no cross-call guarantees, so a shared caller-provided
	// solver forces sequential execution; the common nil case gets a
	// fresh solver per pair inside analyzer/testgen.
	if cfg.Analyzer.Solver != nil || cfg.Testgen.Solver != nil {
		workers = 1
	}
	sp := cfg.Spec
	if sp == nil {
		var err error
		if sp, err = spec.Lookup("posix"); err != nil {
			return nil, fmt.Errorf("sweep: no spec configured and %w", err)
		}
	}

	jobs := Pairs(cfg.Ops)

	start := time.Now()
	results := make([]PairResult, len(jobs))
	errs := make([]error, len(jobs))
	var (
		emitMu sync.Mutex // serializes done/Progress/Artifact
		done   int
		enc    *json.Encoder
	)
	if cfg.Artifact != nil {
		enc = json.NewEncoder(cfg.Artifact)
	}

	metricSweepsInflight.Inc()
	defer metricSweepsInflight.Dec()

	var (
		failed   atomic.Bool // fail fast: stop starting pairs after the first error
		counters runCounters
	)
	// One permit per worker: each pair holds its own permit while it runs,
	// and a pair's CHECK stage borrows whatever permits are idle to shard
	// its replay batches — so a hot pair (open/open) spreads across workers
	// the cold tail has stopped using, without ever exceeding the pool.
	budget := newWorkerBudget(workers)
	ParallelCtx(ctx, len(jobs), workers, func(i int) {
		if failed.Load() || ctx.Err() != nil {
			return
		}
		budget.acquire()
		defer budget.release(1)
		j := jobs[i]
		pr, err := runPair(ctx, sp, j[0], j[1], cfg, start, &counters, budget)
		results[i], errs[i] = pr, err
		if err != nil {
			failed.Store(true)
			return
		}

		emitMu.Lock()
		defer emitMu.Unlock()
		done++
		if enc != nil {
			if werr := enc.Encode(pr); werr != nil {
				errs[i] = fmt.Errorf("sweep: artifact write: %w", werr)
				failed.Store(true)
			}
		}
		if cfg.Progress != nil {
			// The event points at the worker's own copy, not results[i]:
			// consumers may hold the pointer beyond the callback (the
			// streaming façade hands it to another goroutine), and the
			// final sort reorders the results slice in place.
			cfg.Progress(Event{
				Pair:      pr.Pair(),
				Done:      done,
				Total:     len(jobs),
				Tests:     pr.Tests,
				Cached:    pr.Cached,
				Coalesced: pr.Coalesced,
				PairMS:    pr.ElapsedMS,
				Elapsed:   time.Since(start),
				Result:    &pr,
			})
		}
	})

	// Cancellation trumps per-pair errors: an in-flight pair observes the
	// cancelled context as its own failure, and the caller should see the
	// context's error, not an artifact of where cancellation landed.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &Result{Spec: sp.Name(), Pairs: results, Workers: workers, Elapsed: time.Since(start)}
	sort.Slice(res.Pairs, func(i, j int) bool {
		if res.Pairs[i].OpA != res.Pairs[j].OpA {
			return res.Pairs[i].OpA < res.Pairs[j].OpA
		}
		return res.Pairs[i].OpB < res.Pairs[j].OpB
	})
	if cfg.Cache != nil {
		res.Cache = counters.stats()
		res.CacheWriteErrors = int(counters.writeErrs.Load())
	}
	return res, nil
}

// runCounters accumulates this run's cache outcomes. They are counted
// per run rather than taken as a before/after delta of the cache handle's
// cumulative Stats, because one handle may serve concurrent sweeps (the
// serve endpoint shares its cache across requests) and a delta would
// attribute the neighbors' traffic to this run.
type runCounters struct {
	tgHits, tgMisses atomic.Int64
	ckHits, ckMisses atomic.Int64
	writeErrs        atomic.Int64
}

func (c *runCounters) stats() CacheStats {
	return CacheStats{
		TestgenHits:   int(c.tgHits.Load()),
		TestgenMisses: int(c.tgMisses.Load()),
		CheckHits:     int(c.ckHits.Load()),
		CheckMisses:   int(c.ckMisses.Load()),
	}
}

// count bumps the run-local and the process-wide hit/miss counters.
func count(hit bool, hits, misses *atomic.Int64, mHits, mMisses *obs.Counter) {
	if hit {
		hits.Add(1)
		mHits.Inc()
	} else {
		misses.Add(1)
		mMisses.Inc()
	}
}

// Process-wide single-flight groups: concurrent sweeps (a serve
// instance's whole client population) coalesce identical cold stages
// through them, keyed by backend identity plus content address, so 1,000
// clients requesting the same cold pair trigger one ANALYZE+TESTGEN and
// one CHECK per kernel, not 1,000.
var (
	testgenFlights flight.Group[testgenOutcome]
	checkFlights   flight.Group[checkOutcome]
)

// flightID scopes coalescing to one backend's key space: sweeps sharing a
// backend (or both running cacheless) coalesce, sweeps over different
// backends never observe each other's results.
func flightID(b Backend, key string) string {
	if b == nil {
		return "nocache|" + key
	}
	return b.String() + "|" + key
}

// testgenOutcome is the ANALYZE+TESTGEN stage's shareable result.
type testgenOutcome struct {
	tests     []kernel.TestCase
	unknown   int
	fromCache bool
}

// checkOutcome is one kernel's CHECK stage shareable result.
type checkOutcome struct {
	cell      KernelCell
	fromCache bool
}

// runPair assembles one pair's result from whichever cache tiers hit,
// computing only the stages that miss: a TESTGEN miss runs the symbolic
// analysis and test generation, and each kernel's CHECK miss runs that
// kernel against the (cached or fresh) tests. Cache writes are
// best-effort, mirroring the read side's degradation contract: a failed
// store costs incrementality, never the sweep.
//
// When no caller-provided solver is in play, each stage runs under
// single-flight: the cache probe, the computation and the store happen
// inside the flight, so of N concurrent identical cold requests exactly
// one executes (and populates the cache) while the rest share its result,
// marked Coalesced. A sequential sweep is always its own leader, so its
// statistics and output are identical to the pre-coalescing engine.
//
// Along the way it records the pair's observability record: per-phase
// wall times, solver counters (snapshot deltas, so a caller-shared
// solver attributes only this pair's work) and intern-table traffic,
// both on the PairResult and in the process-wide obs registry.
func runPair(ctx context.Context, sp spec.Spec, a, b *spec.Op, cfg Config, sweepStart time.Time, counters *runCounters, budget *workerBudget) (PairResult, error) {
	start := time.Now()
	out := PairResult{OpA: a.Name, OpB: b.Name, StartMS: msBetween(sweepStart, start)}
	internHits0, _ := sym.InternStats()

	// Caller-provided solvers carry budget state that must not leak
	// between requests, so they opt the sweep out of cross-request
	// sharing (such sweeps already run sequentially; see RunContext).
	coalesce := cfg.Analyzer.Solver == nil && cfg.Testgen.Solver == nil
	var tgKey string
	if cfg.Cache != nil || coalesce {
		tgKey = TestgenKey(sp.Name(), a.Name, b.Name, cfg.Analyzer, cfg.Testgen)
	}

	var (
		tg  testgenOutcome
		err error
	)
	if coalesce {
		var st flight.Stat
		tg, st, err = testgenFlights.Do(ctx, flightID(cfg.Cache, tgKey), func() (testgenOutcome, error) {
			return generateTests(ctx, sp, a, b, cfg, tgKey, &out, counters)
		})
		noteFlight(&out, st, TierTestgen)
	} else {
		tg, err = generateTests(ctx, sp, a, b, cfg, tgKey, &out, counters)
	}
	if err != nil {
		return out, wrapPairErr(&out, err)
	}
	out.Tests = len(tg.tests)
	out.Unknown = tg.unknown

	cached := tg.fromCache
	for _, ks := range cfg.Kernels {
		var ckKey string
		if cfg.Cache != nil || coalesce {
			ckKey = CheckKey(tgKey, ks.Name)
		}
		var ck checkOutcome
		if coalesce {
			var st flight.Stat
			ck, st, err = checkFlights.Do(ctx, flightID(cfg.Cache, ckKey), func() (checkOutcome, error) {
				return runCheck(ctx, ks, tg.tests, tg.unknown, cfg, ckKey, &out, counters, budget)
			})
			noteFlight(&out, st, TierCheck)
		} else {
			ck, err = runCheck(ctx, ks, tg.tests, tg.unknown, cfg, ckKey, &out, counters, budget)
		}
		if err != nil {
			return out, wrapPairErr(&out, err)
		}
		if !ck.fromCache {
			cached = false
		}
		out.Cells = append(out.Cells, ck.cell)
	}
	out.Cached = cached
	out.ElapsedMS = msSince(start)
	internHits1, _ := sym.InternStats()
	out.Solver.InternHits = int64(internHits1 - internHits0)
	observePair(&out)
	return out, nil
}

// noteFlight folds one flight outcome into the pair record and the
// coalescing metrics.
func noteFlight(out *PairResult, st flight.Stat, tier string) {
	if st.Shared {
		out.Coalesced = true
		metricCoalescedShared.With(tier).Inc()
	}
	if st.HandedOff {
		metricCoalesceHandoffs.With(tier).Inc()
	}
}

// wrapPairErr tags an error with the pair, unless a stage already did.
func wrapPairErr(out *PairResult, err error) error {
	if strings.HasPrefix(err.Error(), "sweep ") {
		return err
	}
	return fmt.Errorf("sweep %s: %w", out.Pair(), err)
}

// generateTests is the ANALYZE+TESTGEN stage: cache probe, computation on
// a miss, best-effort store. It runs either directly (sequential and
// caller-solver sweeps) or as a flight's leader; out and counters always
// belong to the caller that executes, so phase times, solver work and
// cache accounting land on the sweep that actually did the work.
func generateTests(ctx context.Context, sp spec.Spec, a, b *spec.Op, cfg Config, tgKey string, out *PairResult, counters *runCounters) (testgenOutcome, error) {
	if cfg.Cache != nil {
		// A hit is complete by construction (truncated results are never
		// stored below), so unknown stays 0.
		tests, ok := cfg.Cache.GetTests(tgKey)
		count(ok, &counters.tgHits, &counters.tgMisses, metricTestgenHits, metricTestgenMisses)
		observeBackendGet(cfg.Cache, TierTestgen, ok)
		if ok {
			return testgenOutcome{tests: tests, fromCache: true}, nil
		}
	}
	aOpt := cfg.Analyzer
	if aOpt.Solver == nil {
		// The analyzer would build this per-pair solver itself; build
		// it here instead so its search counters can be read after
		// the phase. The cache key deliberately excludes solvers, and
		// a fresh solver per pair preserves the engine's parallelism
		// (only a shared caller-provided solver forces workers=1
		// above).
		aOpt.Solver = &sym.Solver{Stop: func() bool { return ctx.Err() != nil }}
	}
	aStats0 := aOpt.Solver.Stats()
	phaseStart := time.Now()
	pr, err := analyzer.AnalyzePairCtx(ctx, sp, a, b, aOpt)
	out.Phases.AnalyzeMS = msSince(phaseStart)
	if err != nil {
		return testgenOutcome{}, fmt.Errorf("sweep %s: %w", out.Pair(), err)
	}
	gOpt := cfg.Testgen
	if gOpt.Solver == nil {
		// TESTGEN runs its own searches; give it a per-pair solver
		// wired to the context so cancellation lands there too.
		gOpt.Solver = &sym.Solver{Stop: func() bool { return ctx.Err() != nil }}
	}
	gStats0 := gOpt.Solver.Stats()
	phaseStart = time.Now()
	tests, truncated := testgen.GenerateChecked(sp, pr, gOpt)
	out.Phases.TestgenMS = msSince(phaseStart)
	if err := ctx.Err(); err != nil {
		// A cancelled generation pass is truncated, not short: drop it
		// before its lower-bound test set can reach the cache or a cell.
		return testgenOutcome{}, fmt.Errorf("sweep %s: %w", out.Pair(), err)
	}
	recordSolverDelta(out, aOpt.Solver.Stats(), aStats0)
	recordSolverDelta(out, gOpt.Solver.Stats(), gStats0)
	unknown := pr.Unknown() + truncated
	if cfg.Cache != nil && unknown == 0 {
		// Budget-truncated results are never stored: the cache key
		// deliberately excludes the solver (so tuning it doesn't
		// orphan entries), which is only sound if every stored
		// result is budget-independent — i.e. complete. A truncated
		// pair recomputes on every sweep until some run affords it.
		if err := cfg.Cache.PutTests(tgKey, tests); err != nil {
			counters.writeErrs.Add(1)
			reportPutError(cfg.Cache, err)
		}
	}
	return testgenOutcome{tests: tests, unknown: unknown}, nil
}

// runCheck is one kernel's CHECK stage: cache probe, mtrace replay on a
// miss, best-effort store. Like generateTests it runs directly or as a
// flight's leader, with out/counters belonging to the executing caller.
func runCheck(ctx context.Context, ks KernelSpec, tests []kernel.TestCase, unknown int, cfg Config, ckKey string, out *PairResult, counters *runCounters, budget *workerBudget) (checkOutcome, error) {
	if cfg.Cache != nil {
		var (
			cell KernelCell
			hit  bool
		)
		if cl, ok := cfg.Cache.GetCell(ckKey); ok {
			cell, hit = *cl, true
		}
		count(hit, &counters.ckHits, &counters.ckMisses, metricCheckHits, metricCheckMisses)
		observeBackendGet(cfg.Cache, TierCheck, hit)
		if hit {
			return checkOutcome{cell: cell, fromCache: true}, nil
		}
	}
	phaseStart := time.Now()
	total, conflicts, groups, shards, err := checkTestsSharded(ctx, ks.New, tests, budget)
	out.Phases.CheckMS += msSince(phaseStart)
	out.CheckGroups = groups
	if shards > out.CheckShards {
		out.CheckShards = shards
	}
	if err != nil {
		return checkOutcome{}, fmt.Errorf("sweep %s on %s: %w", out.Pair(), ks.Name, err)
	}
	cell := KernelCell{Kernel: ks.Name, Total: total, Conflicts: conflicts}
	// A cell computed from a truncated test set must not be stored
	// either: CheckKey chains the (budget-independent) testgen key, so a
	// stale lower-bound cell would shadow the complete one a full-budget
	// rerun generates.
	if cfg.Cache != nil && unknown == 0 {
		if err := cfg.Cache.PutCell(ckKey, cell); err != nil {
			counters.writeErrs.Add(1)
			reportPutError(cfg.Cache, err)
		}
	}
	return checkOutcome{cell: cell}, nil
}

// recordSolverDelta folds one solver's work since the snapshot into the
// pair's counters and phase times.
func recordSolverDelta(out *PairResult, now, before sym.SolverStats) {
	out.Solver.SatCalls += now.SatCalls - before.SatCalls
	out.Solver.BudgetHits += now.BudgetHits - before.BudgetHits
	out.Phases.SolverMS += float64(now.SearchTime-before.SearchTime) / float64(time.Millisecond)
}

// Pairs enumerates the unordered pairs of ops in the orientation the whole
// pipeline depends on — earlier op first, matching the original sequential
// evaluation loop — so cache keys and matrix cells agree across every path
// that fans out over pairs.
func Pairs(ops []*spec.Op) [][2]*spec.Op {
	var out [][2]*spec.Op
	for i, a := range ops {
		for _, b := range ops[:i+1] {
			out = append(out, [2]*spec.Op{b, a})
		}
	}
	return out
}

// CheckTests runs every test against fresh kernels from the constructor and
// returns the Figure 6 cell counts (tests run, tests not conflict-free).
// Both the sweep engine and the evaluation layer's matrix path count cells
// through this one loop.
func CheckTests(fresh func() kernel.Kernel, tests []kernel.TestCase) (total, conflicts int, err error) {
	return CheckTestsCtx(context.Background(), fresh, tests)
}

// CheckTestsCtx is CheckTests under a context, polling for cancellation
// between tests (individual checks are short; the poll granularity is the
// single test case). Tests are grouped by setup fingerprint and replayed on
// a long-lived kernel per group (kernel.Replayer), so the per-test cost is
// the two calls plus a journal rollback rather than two fresh kernel
// constructions.
func CheckTestsCtx(ctx context.Context, fresh func() kernel.Kernel, tests []kernel.TestCase) (total, conflicts int, err error) {
	total, conflicts, _, _, err = checkTestsSharded(ctx, fresh, tests, nil)
	return total, conflicts, err
}

// workerBudget is the pool-wide permit set shared between the pair-level
// scheduler and the CHECK stage's intra-pair sharding. Capacity equals the
// sweep's worker count: every running pair holds one base permit, and a
// pair's CHECK stage may borrow permits that are idle (pairs not yet
// started, or finished) to replay its setup groups on parallel shards.
// Borrowers only tryAcquire — never block — while holding permits, so the
// scheme cannot deadlock: the base permits alone guarantee progress.
//
// Borrowing is globally scheduled rather than per-pair greedy: checkers
// counts the CHECK stages currently competing for idle permits, and each
// borrower is capped at its fair share of the idle pool. Under the old
// first-come-takes-all policy one hot pair could drain every idle permit
// while an equally hot neighbor replayed single-threaded.
type workerBudget struct {
	sem      chan struct{}
	checkers atomic.Int32
}

func newWorkerBudget(n int) *workerBudget {
	if n < 1 {
		n = 1
	}
	return &workerBudget{sem: make(chan struct{}, n)}
}

// acquire blocks for one permit (the pair-level base permit).
func (b *workerBudget) acquire() { b.sem <- struct{}{} }

// tryAcquire grabs up to max extra permits without blocking and returns
// how many it got.
func (b *workerBudget) tryAcquire(max int) int {
	got := 0
	for got < max {
		select {
		case b.sem <- struct{}{}:
			got++
		default:
			return got
		}
	}
	return got
}

// release returns n permits.
func (b *workerBudget) release(n int) {
	for i := 0; i < n; i++ {
		<-b.sem
	}
}

// borrow grabs up to want extra permits for a CHECK stage, capped at the
// caller's fair share — ceil(idle / active checkers) — of the currently
// idle pool. The reads are racy in the benign way schedulers tolerate: a
// stale share only shifts how many shards a stage gets, never the summed
// counts (shard aggregation is partition-independent) and never past the
// pool's capacity (tryAcquire is the sole admission gate). Callers must
// bracket the stage with enterCheck/exitCheck.
func (b *workerBudget) borrow(want int) int {
	n := int(b.checkers.Load())
	if n < 1 {
		n = 1
	}
	share := (cap(b.sem) - len(b.sem) + n - 1) / n
	if want > share {
		want = share
	}
	return b.tryAcquire(want)
}

func (b *workerBudget) enterCheck() { b.checkers.Add(1) }
func (b *workerBudget) exitCheck()  { b.checkers.Add(-1) }

// testGroup is a run of test cases sharing one initial state.
type testGroup struct {
	setup kernel.Setup
	tests []kernel.TestCase
}

// groupBySetup buckets tests by setup fingerprint, preserving first-
// appearance order. Tests generated by testgen carry a precomputed
// SetupID; tests from other sources (hand-built, older caches) are
// fingerprinted here.
func groupBySetup(tests []kernel.TestCase) []testGroup {
	var groups []testGroup
	index := map[string]int{}
	for _, tc := range tests {
		id := tc.SetupID
		if id == "" {
			id = tc.Setup.Fingerprint()
		}
		gi, ok := index[id]
		if !ok {
			gi = len(groups)
			index[id] = gi
			groups = append(groups, testGroup{setup: tc.Setup})
		}
		groups[gi].tests = append(groups[gi].tests, tc)
	}
	return groups
}

// checkTestsSharded is the CHECK stage engine: it groups tests by setup,
// borrows idle worker permits from the budget (nil budget means run
// sequentially), and replays the groups round-robin across shards, each
// with its own long-lived Replayer. Counts are summed, so the aggregate is
// independent of the shard partition; on error the first failing shard in
// partition order wins, keeping the reported error deterministic for a
// given shard count.
func checkTestsSharded(ctx context.Context, fresh func() kernel.Kernel, tests []kernel.TestCase, budget *workerBudget) (total, conflicts, ngroups, shards int, err error) {
	groups := groupBySetup(tests)
	ngroups = len(groups)
	extra := 0
	if budget != nil && ngroups > 1 {
		budget.enterCheck()
		defer budget.exitCheck()
		extra = budget.borrow(ngroups - 1)
		defer budget.release(extra)
		if extra > 0 {
			metricCheckShardBorrows.Add(uint64(extra))
		}
	}
	shards = 1 + extra

	// Round-robin partition: group i goes to shard i%shards. Groups carry
	// uneven test counts, so striping spreads large adjacent groups better
	// than contiguous slabs.
	parts := make([][]testGroup, shards)
	for i, g := range groups {
		parts[i%shards] = append(parts[i%shards], g)
	}

	runShard := func(part []testGroup) (tot, conf int, err error) {
		var rep *kernel.Replayer
		for _, g := range part {
			if err := ctx.Err(); err != nil {
				return tot, conf, err
			}
			if rep == nil {
				rep = kernel.NewReplayer(fresh)
			}
			err = rep.CheckGroup(g.setup, g.tests, func(res kernel.CheckResult) bool {
				tot++
				if !res.ConflictFree {
					conf++
				}
				return ctx.Err() == nil
			})
			if err != nil {
				return tot, conf, err
			}
		}
		return tot, conf, ctx.Err()
	}

	totals := make([]int, shards)
	confs := make([]int, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for s := 1; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			totals[s], confs[s], errs[s] = runShard(parts[s])
		}(s)
	}
	// Shard 0 runs inline under the caller's own (base) permit.
	totals[0], confs[0], errs[0] = runShard(parts[0])
	wg.Wait()

	for s := 0; s < shards; s++ {
		total += totals[s]
		conflicts += confs[s]
		if err == nil && errs[s] != nil {
			err = errs[s]
		}
	}
	return total, conflicts, ngroups, shards, err
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}

func msBetween(a, b time.Time) float64 {
	return float64(b.Sub(a)) / float64(time.Millisecond)
}

// Parallel runs fn(i) for every i in [0, n) on up to workers goroutines
// (<= 0 means runtime.NumCPU()). It is the scheduling primitive the
// evaluation layer reuses to parallelize pre-existing loops.
func Parallel(n, workers int, fn func(i int)) {
	ParallelCtx(context.Background(), n, workers, fn)
}

// ParallelCtx is Parallel under a context: once ctx is cancelled no new
// index is dispatched, and the call still waits for in-flight fn calls to
// return — the pool never leaks goroutines, cancelled or not. fn is
// responsible for observing ctx itself if it wants to cut its own work
// short.
func ParallelCtx(ctx context.Context, n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
}
