package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/kernel"
)

// trippingContext reports cancellation after its Err method has been
// consulted a fixed number of times — deterministic mid-run cancellation
// for code that polls ctx.Err() at its stopping points, where a timer or
// an external cancel() would race the replay loop.
type trippingContext struct {
	context.Context
	polls atomic.Int64
	trip  int64
}

func (c *trippingContext) Err() error {
	if c.polls.Add(1) > c.trip {
		return context.Canceled
	}
	return c.Context.Err()
}

// shardTestCases hand-builds a CHECK batch with many distinct setups, so
// the sharded replay has real groups to partition. The (g%4, g%3, g%5)
// shape triple repeats only every lcm = 60 groups, so up to 60 groups
// every fingerprint is distinct.
func shardTestCases(groups, perGroup int) []kernel.TestCase {
	var tests []kernel.TestCase
	for g := 0; g < groups; g++ {
		inum := int64(1 + g%3)
		setup := kernel.Setup{
			Files:  []kernel.SetupFile{{Name: kernel.Fname(int64(g % 4)), Inum: inum}},
			Inodes: []kernel.SetupInode{{Inum: inum, Len: int64(g % 5)}},
		}
		for i := 0; i < perGroup; i++ {
			tests = append(tests, kernel.TestCase{
				ID:    fmt.Sprintf("g%d_t%d", g, i),
				Setup: setup,
				Calls: [2]kernel.Call{
					{Op: "stat", Proc: 0, Args: map[string]int64{"fname": int64(g % 4)}},
					{Op: "stat", Proc: 1, Args: map[string]int64{"fname": int64((g + 1) % 4)}},
				},
			})
		}
	}
	return tests
}

// TestShardedCheckCancelStopsPromptly pins the sharded replay's
// cancellation contract, best run under -race: once the context reports
// cancellation mid-batch, every shard stops at its next poll point,
// checkTestsSharded returns the context error with partial counts, all
// shard goroutines exit before it returns, and every borrowed worker
// permit is back in the budget.
func TestShardedCheckCancelStopsPromptly(t *testing.T) {
	tests := shardTestCases(32, 4)
	ks := testKernels()[0]
	budget := newWorkerBudget(4)
	budget.acquire() // the caller's own base permit
	defer budget.release(1)

	before := runtime.NumGoroutine()
	ctx := &trippingContext{Context: context.Background(), trip: 25}
	total, _, groups, shards, err := checkTestsSharded(ctx, ks.New, tests, budget)

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sharded check returned %v, want context.Canceled", err)
	}
	if groups != 32 {
		t.Errorf("grouped %d setups, want 32", groups)
	}
	if shards < 2 {
		t.Errorf("borrowed no permits (shards=%d) despite an idle budget", shards)
	}
	if total >= len(tests) {
		t.Errorf("cancelled run still checked all %d tests", total)
	}

	// Every borrowed permit is back: with the base permit still held, the
	// other three must be immediately acquirable.
	if got := budget.tryAcquire(4); got != 3 {
		t.Errorf("budget has %d free permits after cancellation, want 3", got)
	} else {
		budget.release(got)
	}

	// Shard goroutines must all have exited; allow the runtime a moment to
	// retire them.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutine leak: %d before sharded check, %d after", before, after)
	}
}

// TestShardedCheckCancelDoesNotCacheTruncatedCell pins the cache side of
// the contract: a CHECK stage cut short by cancellation must not store its
// partial counts, and a later uncancelled run computes and stores the
// complete cell under the same key.
func TestShardedCheckCancelDoesNotCacheTruncatedCell(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tests := shardTestCases(16, 4)
	ks := testKernels()[0]
	cfg := Config{Cache: cache}
	out := PairResult{OpA: "stat", OpB: "stat"}
	var counters runCounters

	ctx := &trippingContext{Context: context.Background(), trip: 10}
	if _, err := runCheck(ctx, ks, tests, 0, cfg, "ck-cancel-key", &out, &counters, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled runCheck returned %v, want context.Canceled", err)
	}
	if _, ok := cache.GetCell("ck-cancel-key"); ok {
		t.Fatalf("cancelled CHECK stored a truncated cell")
	}

	outcome, err := runCheck(context.Background(), ks, tests, 0, cfg, "ck-cancel-key", &out, &counters, nil)
	if err != nil {
		t.Fatal(err)
	}
	if outcome.fromCache {
		t.Fatalf("rerun was served from cache despite no stored cell")
	}
	cl, ok := cache.GetCell("ck-cancel-key")
	if !ok {
		t.Fatalf("complete CHECK did not store its cell")
	}
	if cl.Total != len(tests) {
		t.Errorf("stored cell counts %d tests, want %d", cl.Total, len(tests))
	}
}
