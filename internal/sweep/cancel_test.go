package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSweepCancelMidFlight pins the cancellation contract end to end, best
// run under -race: cancelling a sweep mid-flight makes RunContext return
// context.Canceled promptly, every worker goroutine exits before it
// returns, and the cache directory holds only complete, parsable entries
// (an in-flight pair abandons its work instead of storing a truncated
// result; entry writes themselves are atomic temp-file renames).
func TestSweepCancelMidFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep pipeline in -short mode")
	}
	ops := testOps(t)
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var (
		mu     sync.Mutex
		events []Event
	)
	before := runtime.NumGoroutine()
	start := time.Now()
	res, err := RunContext(ctx, Config{
		Ops: ops, Kernels: testKernels(), Workers: 4, Cache: cache,
		Progress: func(ev Event) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
			// Cancel from inside the first pair's progress callback: the
			// remaining pairs are either unstarted (must never start) or
			// in-flight (must abandon their work).
			if ev.Done == 1 {
				cancel()
			}
		},
	})
	elapsed := time.Since(start)

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned %v, want context.Canceled", err)
	}
	if res != nil {
		t.Errorf("cancelled sweep returned a result: %+v", res)
	}
	// "Promptly" for this universe: the full sweep costs well under ten
	// seconds, so a generous bound still catches a pool that drains the
	// whole queue before noticing.
	if elapsed > 30*time.Second {
		t.Errorf("cancelled sweep took %v to return", elapsed)
	}

	// All workers must have exited before RunContext returned; allow the
	// runtime a moment to retire finished goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutine leak: %d before sweep, %d after", before, after)
	}

	// Progress events that did fire stayed serialized and monotone.
	mu.Lock()
	for i, ev := range events {
		if ev.Done != i+1 {
			t.Errorf("event %d: done=%d, want %d", i, ev.Done, i+1)
		}
	}
	mu.Unlock()

	// The partial cache holds only complete entries: every file parses as
	// a current-version entry, and no temp files were left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	stored := 0
	for _, de := range entries {
		name := de.Name()
		if strings.Contains(name, ".tmp") {
			t.Errorf("cancelled sweep left temp file %s", name)
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		var e struct {
			Version int    `json:"version"`
			Key     string `json:"key"`
		}
		if err := json.Unmarshal(data, &e); err != nil {
			t.Errorf("cache entry %s does not parse: %v", name, err)
			continue
		}
		if e.Version != CacheVersion {
			t.Errorf("cache entry %s has version %d, want %d", name, e.Version, CacheVersion)
		}
		if e.Key == "" {
			t.Errorf("cache entry %s is missing its key", name)
		}
		stored++
	}

	// Every stored entry must be a genuine hit on a fresh warm run: the
	// survivors are complete, not merely parsable.
	warm, err := Run(Config{Ops: ops, Kernels: testKernels(), Workers: 2, Cache: cache})
	if err != nil {
		t.Fatalf("warm sweep after cancellation: %v", err)
	}
	if warm.Cache.TestgenHits+warm.Cache.CheckHits < stored {
		t.Errorf("warm run hit %d+%d entries, but the cancelled run stored %d",
			warm.Cache.TestgenHits, warm.Cache.CheckHits, stored)
	}
}

// TestSweepCancelBeforeStart pins the degenerate case: a context cancelled
// before RunContext is called returns context.Canceled without running any
// pair or emitting any event.
func TestSweepCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fired := false
	res, err := RunContext(ctx, Config{
		Ops: testOps(t), Kernels: testKernels(), Workers: 2,
		Progress: func(Event) { fired = true },
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if res != nil {
		t.Errorf("pre-cancelled sweep returned a result")
	}
	if fired {
		t.Errorf("pre-cancelled sweep emitted progress events")
	}
}
