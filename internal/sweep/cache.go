// On-disk sweep cache, split along the pipeline's phase boundary into two
// tiers of content-addressed JSON files:
//
//   - The TESTGEN tier stores the generated test cases of one pair, keyed
//     by the pair and every analyzer/testgen option that shapes them. The
//     key deliberately excludes the kernel set: ANALYZE and TESTGEN never
//     look at an implementation, so the (dominant) symbolic work is shared
//     across every kernel selection.
//   - The CHECK tier stores one kernel's aggregate cell for one pair, keyed
//     by the TESTGEN key plus the kernel name. The testgen key pins the
//     exact test slice the cell was computed from, so a cell hit never has
//     to re-read or re-validate the tests it summarizes.
//
// A `-kernel sv6` rerun after a `-kernel both` sweep therefore hits both
// tiers and runs nothing, and adding a new kernel reruns only CHECK against
// the cached tests.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/analyzer"
	"repro/internal/kernel"
	"repro/internal/testgen"
)

// CacheVersion stamps every key and entry. Bump it whenever the model,
// analyzer, testgen or checker semantics change, so stale results from an
// older code version are recomputed instead of trusted. Version 2
// introduced the two-tier layout; version 3 accompanies the hash-consed
// symbolic engine (canonicalization changed the shape of generated
// conditions, and with them the test sets entries store); version 4
// accompanies the pluggable spec layer — keys now fold in the spec name,
// so specs sharing one cache directory can never serve each other's
// entries. Older-version entries are simply never matched again.
const CacheVersion = 4

// TestgenKey derives the content address of the kernel-independent phase:
// the test cases ANALYZE → TESTGEN produces for one pair of the named
// spec. The encoding is an explicit field-by-field string (not struct
// marshaling) so the key is stable across runs and robust to field
// reordering; solvers are deliberately excluded because complete results
// don't depend on them, and incomplete (budget-truncated) results are
// never stored (see runPair). Zero-value options are normalized to the
// defaults the pipeline applies (MaxPaths 4096, MaxTestsPerPath 4), so
// semantically identical configurations share cache entries.
func TestgenKey(specName, opA, opB string, aOpt analyzer.Options, gOpt testgen.Options) string {
	maxPaths := aOpt.MaxPaths
	if maxPaths == 0 {
		maxPaths = 4096
	}
	perPath := gOpt.MaxTestsPerPath
	if perPath == 0 {
		perPath = 4
	}
	var b strings.Builder
	fmt.Fprintf(&b, "v%d|tier=testgen|spec=%s|pair=%s,%s", CacheVersion, specName, opA, opB)
	fmt.Fprintf(&b, "|model.lowestfd=%v", aOpt.Config.LowestFD)
	fmt.Fprintf(&b, "|analyzer.maxpaths=%d", maxPaths)
	fmt.Fprintf(&b, "|testgen.maxtestsperpath=%d", perPath)
	fmt.Fprintf(&b, "|testgen.lowestfd=%v", gOpt.LowestFD)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// CheckKey derives the content address of one kernel's CHECK cell from the
// TESTGEN key of the tests it ran and the kernel's name. Chaining through
// the testgen key means every input that moves the tests moves the cell
// key too, without restating them.
func CheckKey(testgenKey, kernelName string) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("v%d|tier=check|testgen=%s|kernel=%s",
		CacheVersion, testgenKey, kernelName)))
	return hex.EncodeToString(sum[:])
}

// CacheStats counts hit/miss outcomes per tier, plus the disk backend's
// startup-cleanup accounting.
type CacheStats struct {
	TestgenHits, TestgenMisses int
	CheckHits, CheckMisses     int
	// TempReclaimed and TempFailed count stale temp files (orphaned by a
	// sweep killed mid-store) that OpenCache's best-effort cleanup removed
	// or failed to remove. Always zero for non-disk backends.
	TempReclaimed, TempFailed int
}

// Hits sums hits across both tiers.
func (s CacheStats) Hits() int { return s.TestgenHits + s.CheckHits }

// Misses sums misses across both tiers.
func (s CacheStats) Misses() int { return s.TestgenMisses + s.CheckMisses }

// Sub returns the per-field difference s − t, for windowed accounting
// over one handle. Note the sweep engine does not use it for per-run
// statistics: a shared handle (the serve endpoint's) serves concurrent
// runs, whose windows would include each other's traffic; the engine
// counts its own outcomes instead.
func (s CacheStats) Sub(t CacheStats) CacheStats {
	return CacheStats{
		TestgenHits:   s.TestgenHits - t.TestgenHits,
		TestgenMisses: s.TestgenMisses - t.TestgenMisses,
		CheckHits:     s.CheckHits - t.CheckHits,
		CheckMisses:   s.CheckMisses - t.CheckMisses,
		TempReclaimed: s.TempReclaimed - t.TempReclaimed,
		TempFailed:    s.TempFailed - t.TempFailed,
	}
}

// Cache is a directory of two-tier entry files. It is safe for concurrent
// use by the sweep workers; distinct keys never contend on the filesystem
// because each lives in its own file, written atomically.
type Cache struct {
	dir string

	mu    sync.Mutex
	stats CacheStats
}

// testgenEntry is the TESTGEN tier's on-disk format: the serialized test
// cases of one pair. TestCase is plain data (ID, Setup, Calls), so it
// JSON-round-trips exactly. Version and Key are stored redundantly with
// the filename so a mismatched or truncated file is detected and treated
// as a miss rather than trusted.
type testgenEntry struct {
	Version int               `json:"version"`
	Key     string            `json:"key"`
	Tests   []kernel.TestCase `json:"tests"`
}

// checkEntry is the CHECK tier's on-disk format: one kernel's cell for the
// tests named by the entry's (testgen-derived) key.
type checkEntry struct {
	Version int        `json:"version"`
	Key     string     `json:"key"`
	Cell    KernelCell `json:"cell"`
}

// staleTempAge is how old an orphaned temp file must be before OpenCache
// reclaims it. The threshold keeps the cleanup from racing a concurrent
// sweep process that is mid-Put in the same cache directory.
const staleTempAge = time.Hour

// OpenCache opens (creating if needed) the cache rooted at dir. Temp files
// orphaned by a sweep killed mid-store are swept out (once they're old
// enough to clearly not belong to a live sweep) so they can't accumulate
// across interrupted runs. The cleanup is best-effort — it can never fail
// the open — and its outcome is reported through Stats (TempReclaimed /
// TempFailed) instead of being silently dropped.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: open cache: %w", err)
	}
	c := &Cache{dir: dir}
	stale, err := filepath.Glob(filepath.Join(dir, "*.tmp*"))
	if err != nil {
		// Glob fails only on a malformed pattern, which a fixed suffix
		// can't produce — but if it ever does, surface it as a failed
		// cleanup rather than pretending the directory was scanned.
		c.stats.TempFailed++
		return c, nil
	}
	for _, p := range stale {
		fi, err := os.Stat(p)
		if err != nil {
			continue // vanished under us: someone else's cleanup won
		}
		if time.Since(fi.ModTime()) <= staleTempAge {
			continue // plausibly a live sweep's in-progress store
		}
		if err := os.Remove(p); err != nil {
			c.stats.TempFailed++
		} else {
			c.stats.TempReclaimed++
		}
	}
	return c, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// testsPath and cellPath give the tiers distinct filename suffixes so a
// cache directory is inspectable by eye; the keys alone would already be
// distinct (each tier hashes its tier name).
func (c *Cache) testsPath(key string) string {
	return filepath.Join(c.dir, key+".tests.json")
}

func (c *Cache) cellPath(key string) string {
	return filepath.Join(c.dir, key+".cell.json")
}

// GetTests returns the TESTGEN tier entry for key. Stored entries are
// complete by construction — budget-truncated results are never written
// (see runPair) — so a hit always carries a definitive test set. Any
// defect — missing file, unparsable JSON, version or key mismatch — is a
// miss: the sweep recomputes and overwrites, never fails.
func (c *Cache) GetTests(key string) ([]kernel.TestCase, bool) {
	var tests []kernel.TestCase
	ok := false
	if data, err := os.ReadFile(c.testsPath(key)); err == nil {
		tests, ok = DecodeTestsEntry(key, data)
	}
	c.mu.Lock()
	if ok {
		c.stats.TestgenHits++
	} else {
		c.stats.TestgenMisses++
	}
	c.mu.Unlock()
	return tests, ok
}

// PutTests stores a pair's generated tests under key. The write goes
// through a temp file and rename so a crashed or concurrent sweep can
// never leave a half-written entry that parses.
func (c *Cache) PutTests(key string, tests []kernel.TestCase) error {
	data, err := EncodeTestsEntry(key, tests)
	if err != nil {
		return err
	}
	return c.writeEntry(c.testsPath(key), key, data)
}

// GetCell returns the CHECK tier entry for key, with the same
// miss-on-any-defect contract as GetTests.
func (c *Cache) GetCell(key string) (*KernelCell, bool) {
	var cell *KernelCell
	if data, err := os.ReadFile(c.cellPath(key)); err == nil {
		cell, _ = DecodeCellEntry(key, data)
	}
	c.mu.Lock()
	if cell != nil {
		c.stats.CheckHits++
	} else {
		c.stats.CheckMisses++
	}
	c.mu.Unlock()
	return cell, cell != nil
}

// PutCell stores one kernel's cell under key, atomically like PutTests.
func (c *Cache) PutCell(key string, cell KernelCell) error {
	data, err := EncodeCellEntry(key, cell)
	if err != nil {
		return err
	}
	return c.writeEntry(c.cellPath(key), key, data)
}

// The entry codecs are the single source of the on-disk (and cache-route
// wire) bytes: the disk backend writes exactly these encodings, the HTTP
// backend and the server's /v1/cache routes ship them verbatim, and every
// consumer validates with the same decode. An entry carries its version
// and key, so a decode failure anywhere — stale version from an older
// binary, a file copied under the wrong name, a truncated body — is a
// miss, never a wrong answer.

// EncodeTestsEntry renders a TESTGEN tier entry in its canonical form.
func EncodeTestsEntry(key string, tests []kernel.TestCase) ([]byte, error) {
	return json.MarshalIndent(testgenEntry{Version: CacheVersion, Key: key, Tests: tests}, "", "\t")
}

// DecodeTestsEntry parses and validates a TESTGEN tier entry; any defect
// reports a miss (false).
func DecodeTestsEntry(key string, data []byte) ([]kernel.TestCase, bool) {
	var e testgenEntry
	if json.Unmarshal(data, &e) != nil || e.Version != CacheVersion || e.Key != key {
		return nil, false
	}
	return e.Tests, true
}

// EncodeCellEntry renders a CHECK tier entry in its canonical form.
func EncodeCellEntry(key string, cell KernelCell) ([]byte, error) {
	return json.MarshalIndent(checkEntry{Version: CacheVersion, Key: key, Cell: cell}, "", "\t")
}

// DecodeCellEntry parses and validates a CHECK tier entry; any defect
// reports a miss (nil, false).
func DecodeCellEntry(key string, data []byte) (*KernelCell, bool) {
	var e checkEntry
	if json.Unmarshal(data, &e) != nil || e.Version != CacheVersion || e.Key != key {
		return nil, false
	}
	return &e.Cell, true
}

func (c *Cache) writeEntry(path, key string, data []byte) error {
	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Stats returns cumulative per-tier hit and miss counts since the cache
// was opened.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Ready probes whether the cache directory is still writable — the
// readiness signal `commuter serve`'s /healthz reports. The error message
// keeps the "cache not writable" phrasing health-check consumers match on.
func (c *Cache) Ready() error {
	f, err := os.CreateTemp(c.dir, ".ready-*")
	if err != nil {
		return fmt.Errorf("sweep cache not writable: %w", err)
	}
	name := f.Name()
	f.Close()
	os.Remove(name)
	return nil
}

// String identifies the backend in logs, metrics labels and the -cache
// URL syntax.
func (c *Cache) String() string { return "dir:" + c.dir }
