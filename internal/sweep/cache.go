// On-disk result cache for sweeps: one JSON file per pair, named by a
// content-addressed key over everything that determines the pair's result.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/analyzer"
	"repro/internal/testgen"
)

// CacheVersion stamps every key and entry. Bump it whenever the model,
// analyzer, testgen or checker semantics change, so stale results from an
// older code version are recomputed instead of trusted.
const CacheVersion = 1

// Key derives the content address of one pair's sweep result from the pair
// itself and every option that influences it. The encoding is an explicit
// field-by-field string (not struct marshaling) so the key is stable across
// runs and robust to field reordering; solvers are deliberately excluded
// because they don't change results, only how they're searched for.
// Zero-value options are normalized to the defaults the pipeline applies
// (MaxPaths 4096, MaxTestsPerPath 4), so semantically identical
// configurations share cache entries.
func Key(opA, opB string, aOpt analyzer.Options, gOpt testgen.Options, kernels []string) string {
	maxPaths := aOpt.MaxPaths
	if maxPaths == 0 {
		maxPaths = 4096
	}
	perPath := gOpt.MaxTestsPerPath
	if perPath == 0 {
		perPath = 4
	}
	var b strings.Builder
	fmt.Fprintf(&b, "v%d|pair=%s,%s", CacheVersion, opA, opB)
	fmt.Fprintf(&b, "|model.lowestfd=%v", aOpt.Config.LowestFD)
	fmt.Fprintf(&b, "|analyzer.maxpaths=%d", maxPaths)
	fmt.Fprintf(&b, "|testgen.maxtestsperpath=%d", perPath)
	fmt.Fprintf(&b, "|testgen.lowestfd=%v", gOpt.LowestFD)
	fmt.Fprintf(&b, "|kernels=%s", strings.Join(kernels, ","))
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// Cache is a directory of per-pair result files. It is safe for concurrent
// use by the sweep workers; distinct keys never contend on the filesystem
// because each lives in its own file, written atomically.
type Cache struct {
	dir string

	mu           sync.Mutex
	hits, misses int
}

// cacheEntry is the on-disk format. Version and Key are stored redundantly
// with the filename so a mismatched or truncated file is detected and
// treated as a miss rather than trusted.
type cacheEntry struct {
	Version int        `json:"version"`
	Key     string     `json:"key"`
	Pair    PairResult `json:"pair"`
}

// staleTempAge is how old an orphaned temp file must be before OpenCache
// reclaims it. The threshold keeps the cleanup from racing a concurrent
// sweep process that is mid-Put in the same cache directory.
const staleTempAge = time.Hour

// OpenCache opens (creating if needed) the cache rooted at dir. Temp files
// orphaned by a sweep killed mid-store are swept out (once they're old
// enough to clearly not belong to a live sweep) so they can't accumulate
// across interrupted runs.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: open cache: %w", err)
	}
	if stale, err := filepath.Glob(filepath.Join(dir, "*.tmp*")); err == nil {
		for _, p := range stale {
			if fi, err := os.Stat(p); err == nil && time.Since(fi.ModTime()) > staleTempAge {
				os.Remove(p)
			}
		}
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get returns the cached result for key. Any defect — missing file,
// unparsable JSON, version or key mismatch — is a miss: the sweep
// recomputes and overwrites, never fails.
func (c *Cache) Get(key string) (*PairResult, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return c.record(nil, false)
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil || e.Version != CacheVersion || e.Key != key {
		return c.record(nil, false)
	}
	return c.record(&e.Pair, true)
}

func (c *Cache) record(pr *PairResult, hit bool) (*PairResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if hit {
		c.hits++
	} else {
		c.misses++
	}
	return pr, hit
}

// Put stores a result under key. Timing and cache provenance are stripped:
// the entry holds only what is reproducible from the key. The write goes
// through a temp file and rename so a crashed or concurrent sweep can never
// leave a half-written entry that parses.
func (c *Cache) Put(key string, pr PairResult) error {
	pr.Cached = false
	pr.ElapsedMS = 0
	data, err := json.MarshalIndent(cacheEntry{Version: CacheVersion, Key: key, Pair: pr}, "", "\t")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Stats returns cumulative hit and miss counts since the cache was opened.
func (c *Cache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
