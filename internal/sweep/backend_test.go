package sweep

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestOpenBackendParsing(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		spec string
		want string // expected String() of the opened backend
	}{
		{dir, "dir:" + dir},
		{"dir:" + dir, "dir:" + dir},
		{"mem", fmt.Sprintf("mem:%d", DefaultMemEntries)},
		{"mem:", fmt.Sprintf("mem:%d", DefaultMemEntries)},
		{"mem:16", "mem:16"},
		{"http://127.0.0.1:9", "http://127.0.0.1:9"},
		{"https://cache.example", "https://cache.example"},
		{"mem:8,http://127.0.0.1:9", "tiered(mem:8,http://127.0.0.1:9)"},
		{"mem:8,http://127.0.0.1:9,dir:" + dir,
			"tiered(mem:8,tiered(http://127.0.0.1:9,dir:" + dir + "))"},
	}
	for _, tc := range cases {
		b, err := OpenBackend(tc.spec)
		if err != nil {
			t.Errorf("OpenBackend(%q): %v", tc.spec, err)
			continue
		}
		if got := b.String(); got != tc.want {
			t.Errorf("OpenBackend(%q).String() = %q, want %q", tc.spec, got, tc.want)
		}
	}

	for _, bad := range []string{"", "mem:0", "mem:x", "mem:-3", "ftp://nope", ",", "mem:8,"} {
		if b, err := OpenBackend(bad); err == nil {
			t.Errorf("OpenBackend(%q) = %v, want error", bad, b)
		}
	}
}

func TestMemBackendLRU(t *testing.T) {
	m := NewMemBackend(2)
	tests := cachedTests()
	keys := []string{
		strings.Repeat("1", 64),
		strings.Repeat("2", 64),
		strings.Repeat("3", 64),
	}
	for _, k := range keys[:2] {
		if err := m.PutTests(k, tests); err != nil {
			t.Fatal(err)
		}
	}
	// Touch the oldest so the middle entry becomes the eviction victim.
	if _, ok := m.GetTests(keys[0]); !ok {
		t.Fatalf("missing %s", keys[0])
	}
	if err := m.PutTests(keys[2], tests); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 {
		t.Fatalf("Len() = %d after eviction, want 2", m.Len())
	}
	if _, ok := m.GetTests(keys[1]); ok {
		t.Error("LRU victim survived the eviction")
	}
	for _, k := range []string{keys[0], keys[2]} {
		got, ok := m.GetTests(k)
		if !ok {
			t.Fatalf("lost %s", k)
		}
		if !reflect.DeepEqual(got, tests) {
			t.Errorf("entry %s round-tripped mutated", k)
		}
	}

	// The CHECK tier shares the LRU but not the key space, and hands back
	// copies so callers cannot mutate the stored cell.
	m2 := NewMemBackend(4)
	cell := KernelCell{Kernel: "linux", Total: 5, Conflicts: 2}
	if err := m2.PutCell(keys[0], cell); err != nil {
		t.Fatal(err)
	}
	if _, ok := m2.GetTests(keys[0]); ok {
		t.Error("cell entry answered a tests lookup")
	}
	got, ok := m2.GetCell(keys[0])
	if !ok || *got != cell {
		t.Fatalf("GetCell = %v, %v", got, ok)
	}
	got.Conflicts = 99
	if again, _ := m2.GetCell(keys[0]); again.Conflicts != 2 {
		t.Error("mutating a returned cell changed the stored entry")
	}

	if err := m2.Ready(); err != nil {
		t.Errorf("Ready() = %v", err)
	}
	wantStats := CacheStats{TestgenMisses: 1, CheckHits: 2}
	if s := m2.Stats(); s != wantStats {
		t.Errorf("Stats() = %+v, want %+v", s, wantStats)
	}
}

func TestTieredBackfillAndWriteThrough(t *testing.T) {
	fast, slow := NewMemBackend(8), NewMemBackend(8)
	tb := Tiered(fast, slow)
	key := strings.Repeat("a", 64)
	tests := cachedTests()
	cell := KernelCell{Kernel: "sv6", Total: 3}

	// Write-through: both tiers hold the entry after one Put.
	if err := tb.PutTests(key, tests); err != nil {
		t.Fatal(err)
	}
	if err := tb.PutCell(key, cell); err != nil {
		t.Fatal(err)
	}
	for name, tier := range map[string]*MemBackend{"fast": fast, "slow": slow} {
		if _, ok := tier.GetTests(key); !ok {
			t.Errorf("%s tier missing tests entry after write-through", name)
		}
		if _, ok := tier.GetCell(key); !ok {
			t.Errorf("%s tier missing cell entry after write-through", name)
		}
	}

	// Backfill: an entry only the slow tier holds lands in the fast tier
	// after the first read.
	key2 := strings.Repeat("b", 64)
	if err := slow.PutTests(key2, tests); err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.GetTests(key2); !ok {
		t.Fatal("slow-tier entry missed through the stack")
	}
	if _, ok := fast.GetTests(key2); !ok {
		t.Error("slow-tier hit was not backfilled into the fast tier")
	}

	// The stack counts one outcome per call, not per tier probed: one hit
	// (key2, answered by the slow tier) and one miss so far.
	if _, ok := tb.GetTests(strings.Repeat("c", 64)); ok {
		t.Fatal("phantom hit")
	}
	s := tb.Stats()
	if s.TestgenHits != 1 || s.TestgenMisses != 1 {
		t.Errorf("stack stats = %+v, want 1 testgen hit and 1 miss", s)
	}
}

// newCachePeer spins up a minimal peer speaking the /v1/cache wire: a
// byte store keyed by tier/key, like a `commuter serve` instance's cache
// routes but with no engine behind it.
func newCachePeer(t *testing.T) (*httptest.Server, *sync.Map) {
	t.Helper()
	var store sync.Map // "tier/key" -> []byte
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc(CacheRoutePrefix+"/{tier}/{key}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("tier") + "/" + r.PathValue("key")
		switch r.Method {
		case http.MethodGet:
			if data, ok := store.Load(id); ok {
				w.Write(data.([]byte))
				return
			}
			w.WriteHeader(http.StatusNotFound)
		case http.MethodPut:
			data, err := io.ReadAll(r.Body)
			if err != nil {
				w.WriteHeader(http.StatusBadRequest)
				return
			}
			store.Store(id, data)
			w.WriteHeader(http.StatusNoContent)
		}
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, &store
}

func TestHTTPBackendRoundTrip(t *testing.T) {
	srv, store := newCachePeer(t)
	hb, err := NewHTTPBackend(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("ab", 32)
	tests := cachedTests()
	cell := KernelCell{Kernel: "linux", Total: 7, Conflicts: 1}

	if _, ok := hb.GetTests(key); ok {
		t.Fatal("hit on an empty peer")
	}
	if err := hb.PutTests(key, tests); err != nil {
		t.Fatal(err)
	}
	if err := hb.PutCell(key, cell); err != nil {
		t.Fatal(err)
	}

	// The wire carries the canonical entry encoding, byte for byte.
	stored, ok := store.Load(TierTestgen + "/" + key)
	if !ok {
		t.Fatal("peer never stored the tests entry")
	}
	want, err := EncodeTestsEntry(key, tests)
	if err != nil {
		t.Fatal(err)
	}
	if string(stored.([]byte)) != string(want) {
		t.Error("wire encoding differs from the canonical entry encoding")
	}

	got, ok := hb.GetTests(key)
	if !ok || !reflect.DeepEqual(got, tests) {
		t.Fatalf("GetTests round trip = %v, %v", got, ok)
	}
	gotCell, ok := hb.GetCell(key)
	if !ok || *gotCell != cell {
		t.Fatalf("GetCell round trip = %v, %v", gotCell, ok)
	}
	if err := hb.Ready(); err != nil {
		t.Errorf("Ready() against a live peer = %v", err)
	}

	// A stored entry whose body fails validation (wrong key) reads as a
	// miss, never a decode error.
	other := strings.Repeat("d", 64)
	store.Store(TierTestgen+"/"+other, want) // body still claims `key`
	if _, ok := hb.GetTests(other); ok {
		t.Error("mis-keyed entry served as a hit")
	}

	wantStats := CacheStats{TestgenHits: 1, TestgenMisses: 2, CheckHits: 1}
	if s := hb.Stats(); s != wantStats {
		t.Errorf("Stats() = %+v, want %+v", s, wantStats)
	}
}

func TestHTTPBackendDeadPeerDegrades(t *testing.T) {
	srv, _ := newCachePeer(t)
	hb, err := NewHTTPBackend(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()

	key := strings.Repeat("e", 64)
	if _, ok := hb.GetTests(key); ok {
		t.Error("dead peer answered a Get")
	}
	if err := hb.PutTests(key, cachedTests()); err == nil {
		t.Error("dead peer accepted a Put")
	}
	if err := hb.Ready(); err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("Ready() against a dead peer = %v, want unreachable error", err)
	}

	for _, bad := range []string{"not a url", "127.0.0.1:9", "file:///x"} {
		if _, err := NewHTTPBackend(bad); err == nil {
			t.Errorf("NewHTTPBackend(%q) accepted a non-http URL", bad)
		}
	}
}

// TestOpenCacheReclaimsStaleTemps pins the startup cleanup's accounting:
// an orphaned temp file old enough to be stale is removed and counted,
// while a fresh one (plausibly a live sweep's in-progress store) is left
// alone.
func TestOpenCacheReclaimsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, strings.Repeat("a", 64)+".tmp123")
	fresh := filepath.Join(dir, strings.Repeat("b", 64)+".tmp456")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("{"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * staleTempAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.TempReclaimed != 1 || s.TempFailed != 0 {
		t.Errorf("cleanup stats = %+v, want 1 reclaimed / 0 failed", s)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file survived the cleanup")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("fresh temp file was reclaimed")
	}
}
