package sweep

import (
	"bytes"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/kernel"
	"repro/internal/kernel/monokernel"
	"repro/internal/kernel/svsix"
	"repro/internal/model"
	"repro/internal/testgen"
)

// testOps is a small, fast operation universe (6 pairs) for engine tests.
func testOps(t testing.TB) []*model.OpDef {
	names := []string{"stat", "lseek", "close"}
	out := make([]*model.OpDef, len(names))
	for i, n := range names {
		out[i] = model.OpByName(n)
		if out[i] == nil {
			t.Fatalf("unknown op %q", n)
		}
	}
	return out
}

func testKernels() []KernelSpec {
	return []KernelSpec{
		{Name: "linux", New: func() kernel.Kernel { return monokernel.New() }},
		{Name: "sv6", New: func() kernel.Kernel { return svsix.New() }},
	}
}

// sequentialReference computes the expected sweep result with a plain
// sequential loop over the same pipeline, mirroring the pre-engine
// evaluation path (earlier-op-first pair orientation).
func sequentialReference(t testing.TB, ops []*model.OpDef, kernels []KernelSpec) []PairResult {
	t.Helper()
	var out []PairResult
	for i, a := range ops {
		for _, b := range ops[:i+1] {
			pr := analyzer.AnalyzePair(model.Spec, b, a, analyzer.Options{})
			tests := testgen.Generate(model.Spec, pr, testgen.Options{})
			res := PairResult{OpA: pr.OpA, OpB: pr.OpB, Tests: len(tests)}
			for _, ks := range kernels {
				cell := KernelCell{Kernel: ks.Name}
				for _, tc := range tests {
					cr, err := kernel.Check(ks.New, tc)
					if err != nil {
						t.Fatal(err)
					}
					cell.Total++
					if !cr.ConflictFree {
						cell.Conflicts++
					}
				}
				res.Cells = append(res.Cells, cell)
			}
			out = append(out, res)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].OpA != out[j].OpA {
			return out[i].OpA < out[j].OpA
		}
		return out[i].OpB < out[j].OpB
	})
	return out
}

// stripTiming clears the fields that legitimately vary between runs so the
// deterministic payload can be compared directly.
func stripTiming(pairs []PairResult) []PairResult {
	out := make([]PairResult, len(pairs))
	for i, p := range pairs {
		p.ElapsedMS = 0
		p.Cached = false
		p.Coalesced = false
		p.StartMS = 0
		p.Phases = PhaseTimes{}
		p.Solver = SolverCounters{}
		// Execution-shape details: CheckGroups is only populated when the
		// CHECK stage actually replays (cache hits skip it), and CheckShards
		// depends on how many worker permits were idle at that instant.
		p.CheckGroups = 0
		p.CheckShards = 0
		out[i] = p
	}
	return out
}

// TestSweepMatchesSequential pins the engine's core contract: the parallel
// sweep computes exactly what the sequential pipeline computes, for any
// worker count.
func TestSweepMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep pipeline in -short mode")
	}
	ops, kernels := testOps(t), testKernels()
	want := sequentialReference(t, ops, kernels)

	for _, workers := range []int{1, 4} {
		res, err := Run(Config{Ops: ops, Kernels: kernels, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Workers != workers {
			t.Errorf("workers=%d: resolved pool size %d", workers, res.Workers)
		}
		if got := stripTiming(res.Pairs); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: sweep diverges from sequential pipeline\ngot  %+v\nwant %+v", workers, got, want)
		}
	}
}

// TestSweepWarmCache pins incrementality: a second identical sweep is all
// hits and recomputes nothing, yet reports identical results.
func TestSweepWarmCache(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep pipeline in -short mode")
	}
	ops, kernels := testOps(t), testKernels()
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Ops: ops, Kernels: kernels, Workers: 4, Cache: cache}

	cold, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantPairs := len(ops) * (len(ops) + 1) / 2
	if len(cold.Pairs) != wantPairs {
		t.Fatalf("got %d pairs, want %d", len(cold.Pairs), wantPairs)
	}
	wantCold := CacheStats{TestgenMisses: wantPairs, CheckMisses: wantPairs * len(kernels)}
	if cold.Cache != wantCold {
		t.Errorf("cold run: stats %+v, want %+v", cold.Cache, wantCold)
	}
	for _, p := range cold.Pairs {
		if p.Cached {
			t.Errorf("cold run: pair %s claims to be cached", p.Pair())
		}
	}

	warm, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantWarm := CacheStats{TestgenHits: wantPairs, CheckHits: wantPairs * len(kernels)}
	if warm.Cache != wantWarm {
		t.Errorf("warm run: stats %+v, want %+v", warm.Cache, wantWarm)
	}
	for _, p := range warm.Pairs {
		if !p.Cached {
			t.Errorf("warm run: pair %s was recomputed", p.Pair())
		}
	}
	if got, want := stripTiming(warm.Pairs), stripTiming(cold.Pairs); !reflect.DeepEqual(got, want) {
		t.Errorf("warm results diverge from cold results\ngot  %+v\nwant %+v", got, want)
	}
}

// TestSweepKernelSubsetWarm pins the tentpole scenario the two-tier cache
// exists for: after a both-kernel sweep, a one-kernel sweep of the same
// ops against the same cache performs zero analyzer/testgen invocations
// (no TESTGEN misses) and zero kernel checks (no CHECK misses) — both
// tiers serve, and every pair reports Cached.
func TestSweepKernelSubsetWarm(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep pipeline in -short mode")
	}
	ops, kernels := testOps(t), testKernels()
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(Config{Ops: ops, Kernels: kernels, Workers: 4, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	wantPairs := len(ops) * (len(ops) + 1) / 2

	for _, ks := range kernels {
		sub, err := Run(Config{Ops: ops, Kernels: []KernelSpec{ks}, Workers: 4, Cache: cache})
		if err != nil {
			t.Fatalf("%s subset: %v", ks.Name, err)
		}
		want := CacheStats{TestgenHits: wantPairs, CheckHits: wantPairs}
		if sub.Cache != want {
			t.Errorf("%s subset: stats %+v, want %+v (a miss means work was recomputed)", ks.Name, sub.Cache, want)
		}
		for i, p := range sub.Pairs {
			if !p.Cached {
				t.Errorf("%s subset: pair %s was recomputed", ks.Name, p.Pair())
			}
			// The subset's single cell must be exactly the full sweep's
			// cell for this kernel.
			fp := full.Pairs[i]
			if p.OpA != fp.OpA || p.OpB != fp.OpB || p.Tests != fp.Tests {
				t.Fatalf("%s subset: pair %d is %s, full sweep has %s", ks.Name, i, p.Pair(), fp.Pair())
			}
			var wantCell *KernelCell
			for j := range fp.Cells {
				if fp.Cells[j].Kernel == ks.Name {
					wantCell = &fp.Cells[j]
				}
			}
			if wantCell == nil || len(p.Cells) != 1 || p.Cells[0] != *wantCell {
				t.Errorf("%s subset: pair %s cells %+v, want [%+v]", ks.Name, p.Pair(), p.Cells, wantCell)
			}
		}
	}
}

// TestSweepNewKernelReusesTests pins the other half of the tier split:
// sweeping a kernel the cache has never seen hits the TESTGEN tier for
// every pair (no symbolic work reruns) but misses CHECK, which reruns
// against the cached tests and produces the same cells as a cache-free
// sweep.
func TestSweepNewKernelReusesTests(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep pipeline in -short mode")
	}
	ops, kernels := testOps(t), testKernels()
	linuxOnly, sv6Only := kernels[:1], kernels[1:]
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Config{Ops: ops, Kernels: linuxOnly, Workers: 4, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	wantPairs := len(ops) * (len(ops) + 1) / 2

	added, err := Run(Config{Ops: ops, Kernels: sv6Only, Workers: 4, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	want := CacheStats{TestgenHits: wantPairs, CheckMisses: wantPairs}
	if added.Cache != want {
		t.Errorf("new-kernel run: stats %+v, want %+v", added.Cache, want)
	}
	for _, p := range added.Pairs {
		if p.Cached {
			t.Errorf("new-kernel run: pair %s claims to be fully cached", p.Pair())
		}
	}

	reference, err := Run(Config{Ops: ops, Kernels: sv6Only, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := stripTiming(added.Pairs), stripTiming(reference.Pairs); !reflect.DeepEqual(got, want) {
		t.Errorf("cells checked against cached tests diverge from a cache-free sweep\ngot  %+v\nwant %+v", got, want)
	}
}

// TestSweepProgressAndArtifact pins the streaming surfaces: one serialized
// progress event per pair with a monotone Done counter, and a JSONL
// artifact that round-trips to the same results.
func TestSweepProgressAndArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep pipeline in -short mode")
	}
	ops, kernels := testOps(t), testKernels()
	var (
		mu     sync.Mutex
		events []Event
	)
	var artifact bytes.Buffer
	res, err := Run(Config{
		Ops: ops, Kernels: kernels, Workers: 4,
		Progress: func(ev Event) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
		Artifact: &artifact,
	})
	if err != nil {
		t.Fatal(err)
	}

	wantPairs := len(res.Pairs)
	if len(events) != wantPairs {
		t.Fatalf("got %d progress events, want %d", len(events), wantPairs)
	}
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != wantPairs {
			t.Errorf("event %d: done=%d total=%d, want %d/%d", i, ev.Done, ev.Total, i+1, wantPairs)
		}
	}

	fromArtifact, err := ReadArtifact(&artifact)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(fromArtifact, func(i, j int) bool {
		if fromArtifact[i].OpA != fromArtifact[j].OpA {
			return fromArtifact[i].OpA < fromArtifact[j].OpA
		}
		return fromArtifact[i].OpB < fromArtifact[j].OpB
	})
	if got, want := stripTiming(fromArtifact), stripTiming(res.Pairs); !reflect.DeepEqual(got, want) {
		t.Errorf("artifact diverges from results\ngot  %+v\nwant %+v", got, want)
	}
}

// TestParallel pins the scheduling primitive: every index runs exactly
// once for degenerate and normal worker counts.
func TestParallel(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 4}, {1, 4}, {7, 1}, {7, 3}, {3, 100}, {16, 0},
	} {
		counts := make([]int, tc.n)
		var mu sync.Mutex
		Parallel(tc.n, tc.workers, func(i int) {
			mu.Lock()
			counts[i]++
			mu.Unlock()
		})
		for i, c := range counts {
			if c != 1 {
				t.Errorf("n=%d workers=%d: index %d ran %d times", tc.n, tc.workers, i, c)
			}
		}
	}
}
