package sweep

import (
	"bytes"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/kernel"
	"repro/internal/kernel/monokernel"
	"repro/internal/kernel/svsix"
	"repro/internal/model"
	"repro/internal/testgen"
)

// testOps is a small, fast operation universe (6 pairs) for engine tests.
func testOps(t testing.TB) []*model.OpDef {
	names := []string{"stat", "lseek", "close"}
	out := make([]*model.OpDef, len(names))
	for i, n := range names {
		out[i] = model.OpByName(n)
		if out[i] == nil {
			t.Fatalf("unknown op %q", n)
		}
	}
	return out
}

func testKernels() []KernelSpec {
	return []KernelSpec{
		{Name: "linux", New: func() kernel.Kernel { return monokernel.New() }},
		{Name: "sv6", New: func() kernel.Kernel { return svsix.New() }},
	}
}

// sequentialReference computes the expected sweep result with a plain
// sequential loop over the same pipeline, mirroring the pre-engine
// evaluation path (earlier-op-first pair orientation).
func sequentialReference(t testing.TB, ops []*model.OpDef, kernels []KernelSpec) []PairResult {
	t.Helper()
	var out []PairResult
	for i, a := range ops {
		for _, b := range ops[:i+1] {
			pr := analyzer.AnalyzePair(b, a, analyzer.Options{})
			tests := testgen.Generate(pr, testgen.Options{})
			res := PairResult{OpA: pr.OpA, OpB: pr.OpB, Tests: len(tests)}
			for _, ks := range kernels {
				cell := KernelCell{Kernel: ks.Name}
				for _, tc := range tests {
					cr, err := kernel.Check(ks.New, tc)
					if err != nil {
						t.Fatal(err)
					}
					cell.Total++
					if !cr.ConflictFree {
						cell.Conflicts++
					}
				}
				res.Cells = append(res.Cells, cell)
			}
			out = append(out, res)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].OpA != out[j].OpA {
			return out[i].OpA < out[j].OpA
		}
		return out[i].OpB < out[j].OpB
	})
	return out
}

// stripTiming clears the fields that legitimately vary between runs so the
// deterministic payload can be compared directly.
func stripTiming(pairs []PairResult) []PairResult {
	out := make([]PairResult, len(pairs))
	for i, p := range pairs {
		p.ElapsedMS = 0
		p.Cached = false
		out[i] = p
	}
	return out
}

// TestSweepMatchesSequential pins the engine's core contract: the parallel
// sweep computes exactly what the sequential pipeline computes, for any
// worker count.
func TestSweepMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep pipeline in -short mode")
	}
	ops, kernels := testOps(t), testKernels()
	want := sequentialReference(t, ops, kernels)

	for _, workers := range []int{1, 4} {
		res, err := Run(Config{Ops: ops, Kernels: kernels, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Workers != workers {
			t.Errorf("workers=%d: resolved pool size %d", workers, res.Workers)
		}
		if got := stripTiming(res.Pairs); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: sweep diverges from sequential pipeline\ngot  %+v\nwant %+v", workers, got, want)
		}
	}
}

// TestSweepWarmCache pins incrementality: a second identical sweep is all
// hits and recomputes nothing, yet reports identical results.
func TestSweepWarmCache(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep pipeline in -short mode")
	}
	ops, kernels := testOps(t), testKernels()
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Ops: ops, Kernels: kernels, Workers: 4, Cache: cache}

	cold, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantPairs := len(ops) * (len(ops) + 1) / 2
	if len(cold.Pairs) != wantPairs {
		t.Fatalf("got %d pairs, want %d", len(cold.Pairs), wantPairs)
	}
	if cold.CacheHits != 0 || cold.CacheMisses != wantPairs {
		t.Errorf("cold run: hits=%d misses=%d, want 0/%d", cold.CacheHits, cold.CacheMisses, wantPairs)
	}
	for _, p := range cold.Pairs {
		if p.Cached {
			t.Errorf("cold run: pair %s claims to be cached", p.Pair())
		}
	}

	warm, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits != wantPairs || warm.CacheMisses != 0 {
		t.Errorf("warm run: hits=%d misses=%d, want %d/0", warm.CacheHits, warm.CacheMisses, wantPairs)
	}
	for _, p := range warm.Pairs {
		if !p.Cached {
			t.Errorf("warm run: pair %s was recomputed", p.Pair())
		}
	}
	if got, want := stripTiming(warm.Pairs), stripTiming(cold.Pairs); !reflect.DeepEqual(got, want) {
		t.Errorf("warm results diverge from cold results\ngot  %+v\nwant %+v", got, want)
	}
}

// TestSweepProgressAndArtifact pins the streaming surfaces: one serialized
// progress event per pair with a monotone Done counter, and a JSONL
// artifact that round-trips to the same results.
func TestSweepProgressAndArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep pipeline in -short mode")
	}
	ops, kernels := testOps(t), testKernels()
	var (
		mu     sync.Mutex
		events []Event
	)
	var artifact bytes.Buffer
	res, err := Run(Config{
		Ops: ops, Kernels: kernels, Workers: 4,
		Progress: func(ev Event) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
		Artifact: &artifact,
	})
	if err != nil {
		t.Fatal(err)
	}

	wantPairs := len(res.Pairs)
	if len(events) != wantPairs {
		t.Fatalf("got %d progress events, want %d", len(events), wantPairs)
	}
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != wantPairs {
			t.Errorf("event %d: done=%d total=%d, want %d/%d", i, ev.Done, ev.Total, i+1, wantPairs)
		}
	}

	fromArtifact, err := ReadArtifact(&artifact)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(fromArtifact, func(i, j int) bool {
		if fromArtifact[i].OpA != fromArtifact[j].OpA {
			return fromArtifact[i].OpA < fromArtifact[j].OpA
		}
		return fromArtifact[i].OpB < fromArtifact[j].OpB
	})
	if got, want := stripTiming(fromArtifact), stripTiming(res.Pairs); !reflect.DeepEqual(got, want) {
		t.Errorf("artifact diverges from results\ngot  %+v\nwant %+v", got, want)
	}
}

// TestParallel pins the scheduling primitive: every index runs exactly
// once for degenerate and normal worker counts.
func TestParallel(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 4}, {1, 4}, {7, 1}, {7, 3}, {3, 100}, {16, 0},
	} {
		counts := make([]int, tc.n)
		var mu sync.Mutex
		Parallel(tc.n, tc.workers, func(i int) {
			mu.Lock()
			counts[i]++
			mu.Unlock()
		})
		for i, c := range counts {
			if c != 1 {
				t.Errorf("n=%d workers=%d: index %d ran %d times", tc.n, tc.workers, i, c)
			}
		}
	}
}
