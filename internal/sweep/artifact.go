// JSONL artifact support: a sweep can mirror every per-pair result to a
// stream, one JSON object per line, so large sweeps leave a machine-readable
// record that downstream tooling can consume without rerunning anything.
package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// ReadArtifact parses a JSONL stream previously produced by a sweep's
// Artifact writer. Values are streamed through a json.Decoder, so a single
// huge line — a test-heavy pair's result can exceed 1 MiB — parses fine;
// the previous line-scanner implementation capped lines and failed such
// artifacts with an opaque "token too long". Blank lines are ignored (the
// decoder skips whitespace); a malformed value is an error carrying its
// entry number and byte offset.
func ReadArtifact(r io.Reader) ([]PairResult, error) {
	dec := json.NewDecoder(r)
	var out []PairResult
	for {
		var pr PairResult
		err := dec.Decode(&pr)
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("sweep: artifact entry %d (near byte %d): %w",
				len(out)+1, dec.InputOffset(), err)
		}
		out = append(out, pr)
	}
}
