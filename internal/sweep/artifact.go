// JSONL artifact support: a sweep can mirror every per-pair result to a
// stream, one JSON object per line, so large sweeps leave a machine-readable
// record that downstream tooling can consume without rerunning anything.
package sweep

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// ReadArtifact parses a JSONL stream previously produced by a sweep's
// Artifact writer. Blank lines are ignored; a malformed line is an error
// with its line number.
func ReadArtifact(r io.Reader) ([]PairResult, error) {
	var out []PairResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var pr PairResult
		if err := json.Unmarshal([]byte(text), &pr); err != nil {
			return nil, fmt.Errorf("sweep: artifact line %d: %w", line, err)
		}
		out = append(out, pr)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sweep: artifact read: %w", err)
	}
	return out, nil
}
