// Fleet mode: pair-space sharding with work stealing across servers.
//
// The sweep is embarrassingly parallel across its deterministic pair
// list, and PR 7's shared cache already deduplicates *results* — but N
// servers given the same sweep still burned N× the solver time racing to
// produce one matrix. Fleet mode shards the computation itself: a
// coordinator (any `commuter serve` instance, selected by the client)
// partitions the pair list into leases, and every participating server
// runs a pull loop that claims a batch, executes it through the ordinary
// runPair path, reports the finished PairResults back, and — when the
// pending queue runs dry — steals the tail by re-claiming leases whose
// TTL expired. A dead or slow peer therefore never wedges the sweep: its
// leases expire and are re-issued to whoever is still pulling.
//
// The pieces live here, in internal/sweep, for the same reason the cache
// route does (internal/api imports this package): the wire types are
// defined next to the scheduler and aliased into api for golden pinning.
//
//   - FleetSweepSpec: the deterministic identity of one fleet-wide sweep
//     (spec, resolved op/kernel names, every test-shaping option). Its
//     Key() names the coordinator session; its PairNames() is the work
//     list, in the exact orientation Pairs() uses.
//   - FleetTable: one sweep's lease table (pending → leased → done, TTL
//     expiry, idempotent completion). Time is injected for tests.
//   - FleetHub: the coordinator — a keyed collection of tables, plus the
//     optional write-through of posted cells into the shared cache.
//   - FleetClient: the worker side of the protocol, implemented in
//     process (LocalFleet) and over HTTP (NewHTTPFleetClient).
//   - RunFleet (fleet_run.go): the worker pull loop.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// FleetAPIVersion stamps fleet requests; it tracks api.Version (asserted
// by an api test) so the whole wire surface versions together.
const FleetAPIVersion = 1

// Fleet coordination routes, served by `commuter serve` next to the cache
// routes. Versioned like every other endpoint.
const (
	FleetRoutePrefix = "/v1/fleet"
	FleetClaimPath   = FleetRoutePrefix + "/claim"
	FleetResultPath  = FleetRoutePrefix + "/result"
	FleetStatusPath  = FleetRoutePrefix + "/status"
)

// DefaultFleetTTL is the lease time-to-live when the coordinator does not
// override it: long enough that no healthy pair (hundreds of ms) expires
// under its worker even with renewal hiccups, short enough that a dead
// peer's share is stolen within one human attention span.
const DefaultFleetTTL = 30 * time.Second

// FleetSweepSpec is the fleet-wide identity of one sweep: the spec, the
// resolved operation and kernel names (order preserved — it fixes the
// pair orientation and the cell order), and every option that shapes the
// generated tests. Two clients whose specs hash to the same Key join the
// same coordinator session and compute one matrix between them.
type FleetSweepSpec struct {
	Spec    string   `json:"spec"`
	Ops     []string `json:"ops"`
	Kernels []string `json:"kernels"`
	// The test-shaping options, mirroring exactly what TestgenKey folds
	// into the cache's content address.
	LowestFD        bool `json:"lowest_fd,omitempty"`
	TestgenLowestFD bool `json:"testgen_lowest_fd,omitempty"`
	MaxPaths        int  `json:"max_paths,omitempty"`
	MaxTestsPerPath int  `json:"max_tests_per_path,omitempty"`
}

// Key derives the coordinator session's content address. Zero-value caps
// normalize to the pipeline defaults (as in TestgenKey) so semantically
// identical configurations join one session, and CacheVersion is folded
// in so servers running different pipeline semantics never share a table.
func (s FleetSweepSpec) Key() string {
	maxPaths := s.MaxPaths
	if maxPaths == 0 {
		maxPaths = 4096
	}
	perPath := s.MaxTestsPerPath
	if perPath == 0 {
		perPath = 4
	}
	var b strings.Builder
	fmt.Fprintf(&b, "fleetv%d|cache=v%d|spec=%s|ops=%s|kernels=%s",
		FleetAPIVersion, CacheVersion, s.Spec, strings.Join(s.Ops, ","), strings.Join(s.Kernels, ","))
	fmt.Fprintf(&b, "|model.lowestfd=%v|testgen.lowestfd=%v|maxpaths=%d|perpath=%d",
		s.LowestFD, s.TestgenLowestFD, maxPaths, perPath)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// PairNames enumerates the work list in the exact orientation Pairs()
// uses (earlier op first), so the coordinator — which never loads the
// spec — and every worker agree on pair naming and ordering.
func (s FleetSweepSpec) PairNames() []string {
	var out []string
	for i, a := range s.Ops {
		for _, b := range s.Ops[:i+1] {
			out = append(out, b+"/"+a)
		}
	}
	return out
}

// FleetLease is one granted pair lease.
type FleetLease struct {
	// Pair is the pair name ("opA/opB" in canonical orientation).
	Pair string `json:"pair"`
	// ID names this grant; renewal, release and completion all quote it.
	ID string `json:"id"`
	// Stolen marks a re-issue: the pair's previous lease expired (or was
	// released) under another worker.
	Stolen bool `json:"stolen,omitempty"`
}

// FleetClaimRequest asks the coordinator for up to Max pair leases, and
// piggybacks lease maintenance: Renew extends the TTL of leases this
// worker still holds, Release returns leases it will not finish (a
// canceling worker requeues its claims this way instead of letting them
// dangle until expiry). Max 0 with Renew/Release set is a pure heartbeat.
type FleetClaimRequest struct {
	Version int            `json:"version"`
	Worker  string         `json:"worker"`
	Max     int            `json:"max"`
	Sweep   FleetSweepSpec `json:"sweep"`
	Renew   []string       `json:"renew,omitempty"`
	Release []string       `json:"release,omitempty"`
}

// FleetClaimResponse grants leases and reports the sweep-wide state.
type FleetClaimResponse struct {
	SweepID   string       `json:"sweep_id"`
	Leases    []FleetLease `json:"leases,omitempty"`
	TTLMS     float64      `json:"ttl_ms"`
	Total     int          `json:"total"`
	Completed int          `json:"completed"`
	Pending   int          `json:"pending"`
	Leased    int          `json:"leased"`
	Done      bool         `json:"done,omitempty"`
}

// FleetPairDone is one completed pair: the lease it was executed under
// and the full result. TestgenKey (when set) lets the coordinator write
// the cells through its shared cache backend, so a fleet-computed pair
// warms the coordinator's CHECK tier exactly like a locally-computed one.
type FleetPairDone struct {
	Lease      string     `json:"lease"`
	Pair       PairResult `json:"pair"`
	TestgenKey string     `json:"testgen_key,omitempty"`
}

// FleetResultRequest posts completed pairs to the coordinator.
type FleetResultRequest struct {
	Version int             `json:"version"`
	Worker  string          `json:"worker"`
	Sweep   FleetSweepSpec  `json:"sweep"`
	Results []FleetPairDone `json:"results"`
}

// FleetResultResponse acknowledges a result post. Duplicate counts pairs
// that were already complete (a slow worker finishing after the thief —
// first completion wins, results are deterministic either way); Stale
// counts results for pairs the session does not contain.
type FleetResultResponse struct {
	Accepted  int  `json:"accepted"`
	Duplicate int  `json:"duplicate,omitempty"`
	Stale     int  `json:"stale,omitempty"`
	Completed int  `json:"completed"`
	Total     int  `json:"total"`
	Done      bool `json:"done,omitempty"`
}

// FleetWorkerStatus is one worker's view in the status report.
type FleetWorkerStatus struct {
	// Leased counts leases currently held.
	Leased int `json:"leased"`
	// Completed counts pairs this worker completed.
	Completed int `json:"completed"`
	// Stolen counts re-issued (expired or released) leases this worker
	// picked up.
	Stolen int `json:"stolen,omitempty"`
}

// FleetStatusResponse answers GET FleetStatusPath.
type FleetStatusResponse struct {
	SweepID   string                       `json:"sweep_id"`
	Total     int                          `json:"total"`
	Completed int                          `json:"completed"`
	Pending   int                          `json:"pending"`
	Leased    int                          `json:"leased"`
	Requeued  int                          `json:"requeued,omitempty"`
	Done      bool                         `json:"done,omitempty"`
	Workers   map[string]FleetWorkerStatus `json:"workers,omitempty"`
	// Results carries every completed PairResult when requested
	// (?results=1) and the sweep is done.
	Results []PairResult `json:"results,omitempty"`
}

// fleetPair is one pair's scheduling state: pending (cur == nil, not
// done), leased (cur set), or done (result recorded, cur cleared).
type fleetPair struct {
	name   string
	done   bool
	result PairResult
	cur    *fleetLease
	leased int // grants ever issued, to mark re-issues as stolen
}

type fleetLease struct {
	id      string
	pair    string
	worker  string
	expires time.Time
}

// FleetTable is one sweep's lease table. All methods are safe for
// concurrent use. Time is injected (now) so expiry is testable with a
// fake clock; nil means time.Now.
type FleetTable struct {
	mu      sync.Mutex
	id      string
	ttl     time.Duration
	now     func() time.Time
	order   []string
	pairs   map[string]*fleetPair
	leases  map[string]*fleetLease
	workers map[string]*FleetWorkerStatus
	done    int
	requeue int
	seq     int
}

// NewFleetTable builds the table for one sweep: id names the session
// (FleetSweepSpec.Key), pairs is the deterministic work list, ttl bounds
// how long an unrenewed lease shields its pair from stealing.
func NewFleetTable(id string, pairs []string, ttl time.Duration, now func() time.Time) *FleetTable {
	if ttl <= 0 {
		ttl = DefaultFleetTTL
	}
	if now == nil {
		now = time.Now
	}
	t := &FleetTable{
		id:      id,
		ttl:     ttl,
		now:     now,
		order:   append([]string(nil), pairs...),
		pairs:   make(map[string]*fleetPair, len(pairs)),
		leases:  map[string]*fleetLease{},
		workers: map[string]*FleetWorkerStatus{},
	}
	for _, p := range t.order {
		t.pairs[p] = &fleetPair{name: p}
	}
	return t
}

func (t *FleetTable) worker(name string) *FleetWorkerStatus {
	w := t.workers[name]
	if w == nil {
		w = &FleetWorkerStatus{}
		t.workers[name] = w
	}
	return w
}

// dropLease detaches a pair's current lease (completion, release or
// steal) and keeps the holder's gauge honest.
func (t *FleetTable) dropLease(p *fleetPair) {
	l := p.cur
	if l == nil {
		return
	}
	p.cur = nil
	delete(t.leases, l.id)
	w := t.worker(l.worker)
	w.Leased--
	metricFleetPairsLeased.With(l.worker).Set(int64(w.Leased))
}

func (t *FleetTable) grant(p *fleetPair, workerName string) FleetLease {
	t.seq++
	l := &fleetLease{
		id:      fmt.Sprintf("%.8s.%d", t.id, t.seq),
		pair:    p.name,
		worker:  workerName,
		expires: t.now().Add(t.ttl),
	}
	stolen := p.leased > 0
	p.leased++
	p.cur = l
	t.leases[l.id] = l
	w := t.worker(workerName)
	w.Leased++
	metricFleetPairsLeased.With(workerName).Set(int64(w.Leased))
	metricFleetLeasesIssued.Inc()
	if stolen {
		w.Stolen++
		metricFleetSteals.Inc()
	}
	return FleetLease{Pair: p.name, ID: l.id, Stolen: stolen}
}

// Claim processes renewals and releases, then grants up to req.Max
// leases: pending pairs head-first, then — only when pending runs dry —
// expired leases tail-first (the steal path, so two workers draining the
// tail approach each other instead of colliding at the head). A pair
// whose lease is live is never double-granted.
func (t *FleetTable) Claim(req FleetClaimRequest) FleetClaimResponse {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()

	for _, id := range req.Renew {
		if l := t.leases[id]; l != nil && l.worker == req.Worker {
			l.expires = now.Add(t.ttl)
		}
	}
	for _, id := range req.Release {
		l := t.leases[id]
		if l == nil || l.worker != req.Worker {
			continue
		}
		p := t.pairs[l.pair]
		if p == nil || p.done || p.cur != l {
			continue
		}
		t.dropLease(p)
		t.requeue++
		metricFleetRequeues.Inc()
	}

	resp := FleetClaimResponse{
		SweepID: t.id,
		TTLMS:   float64(t.ttl) / float64(time.Millisecond),
	}
	for i := 0; i < len(t.order) && len(resp.Leases) < req.Max; i++ {
		p := t.pairs[t.order[i]]
		if p.done || p.cur != nil {
			continue
		}
		resp.Leases = append(resp.Leases, t.grant(p, req.Worker))
	}
	for i := len(t.order) - 1; i >= 0 && len(resp.Leases) < req.Max; i-- {
		p := t.pairs[t.order[i]]
		if p.done || p.cur == nil || p.cur.worker == req.Worker || !now.After(p.cur.expires) {
			continue
		}
		t.dropLease(p)
		resp.Leases = append(resp.Leases, t.grant(p, req.Worker))
	}

	t.fillCounts(&resp.Total, &resp.Completed, &resp.Pending, &resp.Leased, &resp.Done)
	return resp
}

// Complete records posted results. Idempotent per pair: the first
// completion wins, later ones count as Duplicate (results are
// deterministic, so which one wins is immaterial); pairs outside the
// sweep count as Stale. A completion is accepted even when the worker's
// lease was stolen meanwhile — the work is done and discarding it would
// only force a re-execution.
func (t *FleetTable) Complete(workerName string, results []FleetPairDone) FleetResultResponse {
	t.mu.Lock()
	defer t.mu.Unlock()
	var resp FleetResultResponse
	for _, item := range results {
		p := t.pairs[item.Pair.Pair()]
		if p == nil {
			resp.Stale++
			continue
		}
		if p.done {
			resp.Duplicate++
			metricFleetDupResults.Inc()
			continue
		}
		t.dropLease(p)
		p.done = true
		p.result = item.Pair
		t.done++
		t.worker(workerName).Completed++
		metricFleetPairsDone.With(workerName).Inc()
		resp.Accepted++
	}
	var pending, leased int
	t.fillCounts(&resp.Total, &resp.Completed, &pending, &leased, &resp.Done)
	return resp
}

func (t *FleetTable) fillCounts(total, completed, pending, leased *int, done *bool) {
	*total = len(t.order)
	*completed = t.done
	for _, p := range t.pairs {
		if p.done {
			continue
		}
		if p.cur != nil {
			*leased++
		} else {
			*pending++
		}
	}
	*done = t.done == len(t.order)
}

// Status reports the table's state; withResults additionally copies out
// every completed PairResult (sorted like RunContext sorts) once the
// sweep is done.
func (t *FleetTable) Status(withResults bool) FleetStatusResponse {
	t.mu.Lock()
	defer t.mu.Unlock()
	resp := FleetStatusResponse{
		SweepID:  t.id,
		Requeued: t.requeue,
		Workers:  make(map[string]FleetWorkerStatus, len(t.workers)),
	}
	for name, w := range t.workers {
		resp.Workers[name] = *w
	}
	t.fillCounts(&resp.Total, &resp.Completed, &resp.Pending, &resp.Leased, &resp.Done)
	if withResults && resp.Done {
		resp.Results = make([]PairResult, 0, len(t.order))
		for _, name := range t.order {
			resp.Results = append(resp.Results, t.pairs[name].result)
		}
		sort.Slice(resp.Results, func(i, j int) bool {
			if resp.Results[i].OpA != resp.Results[j].OpA {
				return resp.Results[i].OpA < resp.Results[j].OpA
			}
			return resp.Results[i].OpB < resp.Results[j].OpB
		})
	}
	return resp
}

// FleetHub is the coordinator: sessions keyed by FleetSweepSpec.Key,
// created on first claim. Completed sessions are retained (and answer
// late joiners instantly — results are deterministic, so serving a
// finished table is equivalent to recomputing) until retention expires.
type FleetHub struct {
	mu       sync.Mutex
	ttl      time.Duration
	retain   time.Duration
	now      func() time.Time
	cache    Backend
	sessions map[string]*fleetSession
}

type fleetSession struct {
	table    *FleetTable
	lastUsed time.Time
}

// fleetRetain bounds how long an idle session (done or not) survives: a
// fresh client after that recomputes from scratch rather than reading a
// table whose workers are long gone.
const fleetRetain = 10 * time.Minute

// NewFleetHub builds a coordinator. ttl <= 0 means DefaultFleetTTL; nil
// now means time.Now.
func NewFleetHub(ttl time.Duration, now func() time.Time) *FleetHub {
	if ttl <= 0 {
		ttl = DefaultFleetTTL
	}
	if now == nil {
		now = time.Now
	}
	return &FleetHub{ttl: ttl, retain: fleetRetain, now: now, sessions: map[string]*fleetSession{}}
}

// SetCache wires the shared cache backend posted cells are written
// through (best-effort; nil disables the write-through).
func (h *FleetHub) SetCache(b Backend) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.cache = b
}

// session returns (creating if create) the table for the sweep, evicting
// sessions idle past retention on the way.
func (h *FleetHub) session(sw FleetSweepSpec, create bool) (*FleetTable, error) {
	if len(sw.Ops) == 0 {
		return nil, fmt.Errorf("fleet: sweep names no operations")
	}
	key := sw.Key()
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.now()
	for k, s := range h.sessions {
		if now.Sub(s.lastUsed) > h.retain {
			delete(h.sessions, k)
		}
	}
	s := h.sessions[key]
	if s == nil {
		if !create {
			return nil, fmt.Errorf("fleet: unknown sweep %.8s (no claim seen; the coordinator may have restarted)", key)
		}
		s = &fleetSession{table: NewFleetTable(key, sw.PairNames(), h.ttl, h.now)}
		h.sessions[key] = s
	}
	s.lastUsed = now
	return s.table, nil
}

// Claim serves one claim request, creating the session on first contact.
func (h *FleetHub) Claim(req FleetClaimRequest) (FleetClaimResponse, error) {
	if req.Worker == "" {
		return FleetClaimResponse{}, fmt.Errorf("fleet: claim names no worker")
	}
	t, err := h.session(req.Sweep, true)
	if err != nil {
		return FleetClaimResponse{}, err
	}
	return t.Claim(req), nil
}

// Report serves one result post. The session must already exist — a
// worker cannot post into a sweep nobody claimed from (after a
// coordinator restart the worker's next claim rebuilds the session and
// the pairs re-run). Accepted cells are written through the shared cache
// backend when one is configured, so the fleet's work warms it exactly
// like local work; truncated (Unknown > 0) pairs are never written, the
// same completeness rule runPair applies.
func (h *FleetHub) Report(req FleetResultRequest) (FleetResultResponse, error) {
	if req.Worker == "" {
		return FleetResultResponse{}, fmt.Errorf("fleet: result post names no worker")
	}
	t, err := h.session(req.Sweep, false)
	if err != nil {
		return FleetResultResponse{}, err
	}
	resp := t.Complete(req.Worker, req.Results)
	h.mu.Lock()
	cache := h.cache
	h.mu.Unlock()
	if cache != nil {
		for _, item := range req.Results {
			if item.TestgenKey == "" || item.Pair.Unknown > 0 {
				continue
			}
			for _, cell := range item.Pair.Cells {
				if err := cache.PutCell(CheckKey(item.TestgenKey, cell.Kernel), cell); err != nil {
					reportPutError(cache, err)
				}
			}
		}
	}
	return resp, nil
}

// Status serves one status request.
func (h *FleetHub) Status(sw FleetSweepSpec, withResults bool) (FleetStatusResponse, error) {
	t, err := h.session(sw, false)
	if err != nil {
		return FleetStatusResponse{}, err
	}
	return t.Status(withResults), nil
}
