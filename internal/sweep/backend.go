package sweep

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/kernel"
)

// Backend is the sweep cache's storage interface: the two content-addressed
// tiers (Get/Put per tier), cumulative statistics, and a readiness probe.
// The engine, the Client façade and `commuter serve` all speak to the
// cache through it, so where entries live — a local directory (*Cache), a
// bounded in-memory LRU (*MemBackend), a peer server's /v1/cache routes
// (*HTTPBackend), or a Tiered stack of those — is a deployment choice,
// not a code path.
//
// Contract notes, shared by every implementation:
//
//   - Gets never fail: any defect (absent entry, stale version, transport
//     error) is a miss, and the caller recomputes. Puts return their error
//     so callers can count the degradation, but a failed store costs
//     incrementality, never correctness.
//   - A hit's value is shared, not copied, on the tests slice — callers
//     treat cached test sets as immutable (kernel.Check only reads them).
//   - Implementations are safe for concurrent use.
type Backend interface {
	// GetTests returns the TESTGEN tier entry for key, if present.
	GetTests(key string) ([]kernel.TestCase, bool)
	// PutTests stores a pair's generated tests under key.
	PutTests(key string, tests []kernel.TestCase) error
	// GetCell returns the CHECK tier entry for key, if present.
	GetCell(key string) (*KernelCell, bool)
	// PutCell stores one kernel's cell under key.
	PutCell(key string, cell KernelCell) error
	// Stats returns cumulative hit/miss counts since the backend opened.
	Stats() CacheStats
	// Ready probes whether the backend can currently store entries; the
	// serve health endpoint surfaces its error.
	Ready() error
	// String identifies the backend ("dir:/path", "mem:4096", a peer URL,
	// "tiered(...)") for logs and metric labels.
	String() string
}

// Tier names used by the cache wire route (/v1/cache/{tier}/{key}).
const (
	TierTestgen = "testgen"
	TierCheck   = "check"
)

// CacheRoutePrefix is the serve-side mount point of the cache-peer routes;
// an entry's URL is CacheRoutePrefix + "/{tier}/{key}". It lives here
// rather than internal/api because the HTTP backend (this package) and the
// api package cannot import each other.
const CacheRoutePrefix = "/v1/cache"

// OpenBackend opens a cache backend from its URL-ish spec:
//
//	dir:/path/to/cache   - the on-disk backend (a bare path means the same)
//	mem:  or  mem:50000  - a bounded in-memory LRU (default DefaultMemEntries)
//	http://host:port     - a peer `commuter serve -cache ...` instance
//	fast,slow            - a Tiered stack, fastest first (e.g. "mem:,http://peer")
//
// The bare-path form keeps every existing `-cache DIR` invocation meaning
// exactly what it did before backends were pluggable.
func OpenBackend(spec string) (Backend, error) {
	if strings.Contains(spec, ",") {
		parts := strings.Split(spec, ",")
		backends := make([]Backend, 0, len(parts))
		for _, p := range parts {
			p = strings.TrimSpace(p)
			if p == "" {
				return nil, fmt.Errorf("sweep: open backend %q: empty tier in list", spec)
			}
			b, err := OpenBackend(p)
			if err != nil {
				return nil, err
			}
			backends = append(backends, b)
		}
		// Fold right-to-left so the first-listed backend is the fastest,
		// outermost tier.
		b := backends[len(backends)-1]
		for i := len(backends) - 2; i >= 0; i-- {
			b = Tiered(backends[i], b)
		}
		return b, nil
	}
	switch {
	case spec == "":
		return nil, fmt.Errorf("sweep: open backend: empty spec")
	case strings.HasPrefix(spec, "dir:"):
		return OpenCache(strings.TrimPrefix(spec, "dir:"))
	case spec == "mem" || spec == "mem:":
		return NewMemBackend(DefaultMemEntries), nil
	case strings.HasPrefix(spec, "mem:"):
		n, err := strconv.Atoi(strings.TrimPrefix(spec, "mem:"))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("sweep: open backend %q: mem wants a positive entry count", spec)
		}
		return NewMemBackend(n), nil
	case strings.HasPrefix(spec, "http://"), strings.HasPrefix(spec, "https://"):
		return NewHTTPBackend(spec)
	case strings.Contains(spec, "://"):
		return nil, fmt.Errorf("sweep: open backend %q: unknown scheme (want dir:, mem:, http:// or https://)", spec)
	default:
		return OpenCache(spec)
	}
}

// backendKind derives the metric/log label for a backend from its String
// form: the leading run of letters ("dir", "mem", "http", "https",
// "tiered").
func backendKind(b Backend) string {
	s := b.String()
	for i, r := range s {
		if (r < 'a' || r > 'z') && (r < 'A' || r > 'Z') {
			if i == 0 {
				return "unknown"
			}
			return s[:i]
		}
	}
	if s == "" {
		return "unknown"
	}
	return s
}
