package sweep

import (
	"runtime"
	"testing"
)

// benchConfig sweeps a 6-pair universe on both kernels with the given
// worker count and no cache, so every iteration does the full pipeline.
func benchSweep(b *testing.B, workers int) {
	ops, kernels := testOps(b), testKernels()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Ops: ops, Kernels: kernels, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepSerial is the -j 1 baseline the acceptance criteria compare
// against: run with
//
//	go test -bench Sweep -benchtime 3x ./internal/sweep
func BenchmarkSweepSerial(b *testing.B)   { benchSweep(b, 1) }
func BenchmarkSweepParallel(b *testing.B) { benchSweep(b, runtime.NumCPU()) }

// BenchmarkSweepWarmCache measures the incremental path: every pair served
// from a pre-populated cache.
func BenchmarkSweepWarmCache(b *testing.B) {
	ops, kernels := testOps(b), testKernels()
	cache, err := OpenCache(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Ops: ops, Kernels: kernels, Cache: cache}
	if _, err := Run(cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if n := res.Cache.Misses(); n != 0 {
			b.Fatalf("warm run missed %d entries", n)
		}
	}
}

// BenchmarkSweepWarmSubset measures the kernel-subset rerun the two-tier
// cache makes incremental: the cache is populated by a both-kernel sweep,
// then one kernel is swept against it. Both tiers serve, so this should
// track BenchmarkSweepWarmCache (warm-subset ≈ warm-full) rather than the
// cold pipeline.
func BenchmarkSweepWarmSubset(b *testing.B) {
	ops, kernels := testOps(b), testKernels()
	cache, err := OpenCache(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := Run(Config{Ops: ops, Kernels: kernels, Cache: cache}); err != nil {
		b.Fatal(err)
	}
	sub := Config{Ops: ops, Kernels: kernels[1:], Cache: cache}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(sub)
		if err != nil {
			b.Fatal(err)
		}
		if n := res.Cache.Misses(); n != 0 {
			b.Fatalf("warm subset run missed %d entries", n)
		}
	}
}
