package sweep

import (
	"io"

	"repro/internal/obs"
)

// WriteTrace renders a finished sweep as a Chrome trace-event file
// (loadable in chrome://tracing or https://ui.perfetto.dev). Each pair
// becomes a top-level span placed at its recorded start offset, with its
// analyze/testgen/check phases nested inside; spans are packed onto the
// fewest lanes (trace "threads") that keep overlapping pairs separate,
// which visually reconstructs the worker schedule of the sweep.
//
// Pairs served entirely from cache carry no phase breakdown; they appear
// as a single short span tagged cached=true.
func WriteTrace(w io.Writer, res *Result) error {
	starts := make([]float64, len(res.Pairs))
	durs := make([]float64, len(res.Pairs))
	for i, p := range res.Pairs {
		starts[i] = p.StartMS
		durs[i] = p.ElapsedMS
	}
	lanes := obs.PackLanes(starts, durs)

	var spans []obs.Span
	for i, p := range res.Pairs {
		tid := lanes[i]
		spans = append(spans, obs.Span{
			Name:    p.Pair(),
			Cat:     "pair",
			StartUS: p.StartMS * 1e3,
			DurUS:   p.ElapsedMS * 1e3,
			PID:     1,
			TID:     tid,
			Args: map[string]any{
				"tests":     p.Tests,
				"cached":    p.Cached,
				"unknown":   p.Unknown,
				"sat_calls": p.Solver.SatCalls,
			},
		})
		if p.Cached {
			continue
		}
		// Phases ran back to back in this order inside the pair span.
		cursor := p.StartMS * 1e3
		for _, ph := range []struct {
			name string
			ms   float64
		}{
			{"analyze", p.Phases.AnalyzeMS},
			{"testgen", p.Phases.TestgenMS},
			{"check", p.Phases.CheckMS},
		} {
			if ph.ms <= 0 {
				continue
			}
			spans = append(spans, obs.Span{
				Name:    ph.name,
				Cat:     "phase",
				StartUS: cursor,
				DurUS:   ph.ms * 1e3,
				PID:     1,
				TID:     tid,
			})
			cursor += ph.ms * 1e3
		}
	}
	return obs.WriteChromeTrace(w, spans)
}
