package sweep

import (
	"errors"
	"sync"

	"repro/internal/kernel"
)

// TieredBackend layers a fast backend over a slow one: reads try fast
// first and backfill it on a slow-tier hit, writes go through to both.
// The canonical stack is Tiered(mem, http) on a fleet member — hot
// entries answer from process memory, the shared peer keeps the fleet
// warm, and a mem eviction costs one peer round trip, not a recompute.
// Stacks nest: OpenBackend("mem:,http://peer,dir:/spill") folds the list
// into Tiered(mem, Tiered(http, dir)).
type TieredBackend struct {
	fast, slow Backend

	mu    sync.Mutex
	stats CacheStats
}

// Tiered combines two backends, fast first.
func Tiered(fast, slow Backend) *TieredBackend {
	return &TieredBackend{fast: fast, slow: slow}
}

// GetTests tries the fast tier, then the slow tier (backfilling the fast
// tier on a hit so the next read stays local). One hit or miss is counted
// per call, whichever tier answered.
func (t *TieredBackend) GetTests(key string) ([]kernel.TestCase, bool) {
	tests, ok := t.fast.GetTests(key)
	if !ok {
		if tests, ok = t.slow.GetTests(key); ok {
			// Backfill is best-effort: a full or failing fast tier just
			// means the next read pays the slow tier again.
			t.fast.PutTests(key, tests)
		}
	}
	t.mu.Lock()
	if ok {
		t.stats.TestgenHits++
	} else {
		t.stats.TestgenMisses++
	}
	t.mu.Unlock()
	return tests, ok
}

// PutTests writes through to both tiers; a failure in either is reported
// (both are attempted regardless).
func (t *TieredBackend) PutTests(key string, tests []kernel.TestCase) error {
	return errors.Join(t.fast.PutTests(key, tests), t.slow.PutTests(key, tests))
}

// GetCell mirrors GetTests for the CHECK tier.
func (t *TieredBackend) GetCell(key string) (*KernelCell, bool) {
	cell, ok := t.fast.GetCell(key)
	if !ok {
		if cell, ok = t.slow.GetCell(key); ok {
			t.fast.PutCell(key, *cell)
		}
	}
	t.mu.Lock()
	if ok {
		t.stats.CheckHits++
	} else {
		t.stats.CheckMisses++
	}
	t.mu.Unlock()
	return cell, ok
}

// PutCell writes through to both tiers.
func (t *TieredBackend) PutCell(key string, cell KernelCell) error {
	return errors.Join(t.fast.PutCell(key, cell), t.slow.PutCell(key, cell))
}

// Stats returns the stack's combined outcome counts (one per Get call,
// not per tier probed); the per-tier breakdown lives on the tiers' own
// Stats.
func (t *TieredBackend) Stats() CacheStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// Ready requires both tiers: a stack that can only half-store entries
// would silently stop sharing, which is exactly what readiness exists to
// surface.
func (t *TieredBackend) Ready() error {
	if err := t.fast.Ready(); err != nil {
		return err
	}
	return t.slow.Ready()
}

// String identifies the stack.
func (t *TieredBackend) String() string {
	return "tiered(" + t.fast.String() + "," + t.slow.String() + ")"
}
