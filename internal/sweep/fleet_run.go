package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/spec"
)

// FleetSpec derives the fleet-wide sweep identity from an engine
// configuration: the resolved op and kernel names plus exactly the
// options TestgenKey folds into the cache address, normalized the same
// way, so every server resolving the same request computes the same Key.
func FleetSpec(sp spec.Spec, cfg Config) FleetSweepSpec {
	fs := FleetSweepSpec{
		Spec:            sp.Name(),
		LowestFD:        cfg.Analyzer.Config.LowestFD,
		TestgenLowestFD: cfg.Testgen.LowestFD,
		MaxPaths:        cfg.Analyzer.MaxPaths,
		MaxTestsPerPath: cfg.Testgen.MaxTestsPerPath,
	}
	for _, op := range cfg.Ops {
		fs.Ops = append(fs.Ops, op.Name)
	}
	for _, ks := range cfg.Kernels {
		fs.Kernels = append(fs.Kernels, ks.Name)
	}
	return fs
}

// fleetWorkerSeq distinguishes concurrent RunFleet calls in one process.
var fleetWorkerSeq atomic.Int64

func fleetWorkerName(cfg Config) string {
	if cfg.FleetWorker != "" {
		return cfg.FleetWorker
	}
	host, _ := os.Hostname()
	if host == "" {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d-%d", host, os.Getpid(), fleetWorkerSeq.Add(1))
}

// fleetPoll is the idle claim cadence: how often a worker with nothing
// granted re-asks the coordinator (which doubles as lease renewal while
// its executors grind through long pairs). Orders of magnitude under the
// lease TTL, so renewal can miss many beats before anything is stolen.
const fleetPoll = 100 * time.Millisecond

// RunFleet executes one sweep as a fleet member: instead of running the
// full pair list the way RunContext does, it pulls pair leases from the
// coordinator behind fc, executes them through the ordinary runPair path
// (same cache, coalescing and budget machinery), posts each finished
// PairResult back, and repeats until the coordinator reports the sweep
// complete fleet-wide — then assembles the merged Result from the
// coordinator's table (local pairs keep their locally-observed timings).
// The returned matrix is byte-identical to a single-server RunContext of
// the same Config: cells are deterministic and the merge re-sorts pairs
// exactly like RunContext does.
//
// Work stealing is coordinator-side (expired leases re-issued to whoever
// still claims), so a worker needs no peer knowledge: when the pending
// queue is dry it polls, and either picks up stolen tail work or learns
// the sweep is done. On cancellation every lease still held is released
// back to the pending queue on a short background context — a killed
// worker's share is re-issued immediately instead of after TTL expiry.
func RunFleet(ctx context.Context, cfg Config, fc FleetClient) (*Result, error) {
	if cfg.Analyzer.Solver != nil || cfg.Testgen.Solver != nil {
		return nil, fmt.Errorf("sweep: fleet mode cannot share caller-provided solvers across servers")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	sp := cfg.Spec
	if sp == nil {
		var err error
		if sp, err = spec.Lookup("posix"); err != nil {
			return nil, fmt.Errorf("sweep: no spec configured and %w", err)
		}
	}
	fspec := FleetSpec(sp, cfg)
	wid := fleetWorkerName(cfg)

	// The lease names the pair; resolve it back to ops through the same
	// enumeration that produced the coordinator's work list.
	byName := make(map[string][2]*spec.Op)
	for _, j := range Pairs(cfg.Ops) {
		byName[j[0].Name+"/"+j[1].Name] = j
	}

	start := time.Now()
	budget := newWorkerBudget(workers)
	var counters runCounters
	var enc *json.Encoder
	if cfg.Artifact != nil {
		enc = json.NewEncoder(cfg.Artifact)
	}

	metricSweepsInflight.Inc()
	defer metricSweepsInflight.Dec()

	// Executors run under ectx so one pair's failure (or the caller's
	// cancellation) stops the rest promptly; held leases survive the
	// teardown and are released below.
	ectx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu        sync.Mutex
		held      = map[string]string{} // lease id -> pair name
		executed  = map[string]PairResult{}
		runErr    error
		fleetDone bool
		emitDone  int // monotone fleet-wide progress already emitted
	)
	fail := func(err error) {
		mu.Lock()
		if runErr == nil {
			runErr = err
		}
		mu.Unlock()
		cancel()
	}

	// Buffered beyond the claim-ahead window (2×workers), so feeding
	// granted leases never blocks the claim loop.
	leaseCh := make(chan FleetLease, 4*workers+16)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for l := range leaseCh {
				if ectx.Err() != nil {
					continue // drain; the lease stays held and is released in teardown
				}
				ops, ok := byName[l.Pair]
				if !ok {
					fail(fmt.Errorf("sweep fleet: coordinator leased unknown pair %q", l.Pair))
					continue
				}
				budget.acquire()
				pr, err := runPair(ectx, sp, ops[0], ops[1], cfg, start, &counters, budget)
				budget.release(1)
				if err != nil {
					if ectx.Err() == nil {
						fail(err)
					}
					continue
				}
				metricFleetPairsExecuted.Inc()
				tgKey := TestgenKey(sp.Name(), ops[0].Name, ops[1].Name, cfg.Analyzer, cfg.Testgen)
				resp, rerr := fc.Report(ectx, FleetResultRequest{
					Version: FleetAPIVersion,
					Worker:  wid,
					Sweep:   fspec,
					Results: []FleetPairDone{{Lease: l.ID, Pair: pr, TestgenKey: tgKey}},
				})
				if rerr != nil {
					if ectx.Err() == nil {
						fail(fmt.Errorf("sweep fleet: report %s: %w", l.Pair, rerr))
					}
					continue
				}

				mu.Lock()
				executed[l.Pair] = pr
				delete(held, l.ID)
				if resp.Done {
					fleetDone = true
				}
				if enc != nil {
					if werr := enc.Encode(pr); werr != nil && runErr == nil {
						runErr = fmt.Errorf("sweep: artifact write: %w", werr)
					}
				}
				// Done is the fleet-wide completion count; peers complete
				// pairs concurrently, so only emit forward progress.
				if cfg.Progress != nil && resp.Completed > emitDone {
					emitDone = resp.Completed
					cfg.Progress(Event{
						Pair:      pr.Pair(),
						Done:      resp.Completed,
						Total:     resp.Total,
						Tests:     pr.Tests,
						Cached:    pr.Cached,
						Coalesced: pr.Coalesced,
						PairMS:    pr.ElapsedMS,
						Elapsed:   time.Since(start),
						Result:    &pr,
					})
				}
				failNow := runErr
				mu.Unlock()
				if failNow != nil {
					cancel()
				}
			}
		}()
	}

	// The claim loop: keep up to 2×workers leases in flight, renew what
	// is held on every round, and poll when nothing was granted (peers
	// hold the remainder, or our own executors are still grinding).
	claimFails := 0
	for {
		mu.Lock()
		done, err := fleetDone, runErr
		renew := make([]string, 0, len(held))
		for id := range held {
			renew = append(renew, id)
		}
		mu.Unlock()
		if done || err != nil || ctx.Err() != nil {
			break
		}
		want := 2*workers - len(renew)
		if want < 0 {
			want = 0
		}
		resp, cerr := fc.Claim(ctx, FleetClaimRequest{
			Version: FleetAPIVersion,
			Worker:  wid,
			Max:     want,
			Sweep:   fspec,
			Renew:   renew,
		})
		if cerr != nil {
			if ctx.Err() != nil {
				break
			}
			// Transient coordinator trouble must not kill the sweep — but
			// a coordinator that stays dead must not hang it either.
			if claimFails++; claimFails >= 8 {
				fail(fmt.Errorf("sweep fleet: claim: %w", cerr))
				break
			}
			if !sleepCtx(ctx, time.Duration(claimFails)*fleetPoll) {
				break
			}
			continue
		}
		claimFails = 0
		mu.Lock()
		if resp.Done {
			fleetDone = true
		}
		for _, l := range resp.Leases {
			held[l.ID] = l.Pair
		}
		mu.Unlock()
		if resp.Done {
			break
		}
		for _, l := range resp.Leases {
			leaseCh <- l
		}
		if len(resp.Leases) == 0 {
			if !sleepCtx(ctx, fleetPoll) {
				break
			}
		}
	}
	close(leaseCh)
	wg.Wait()

	// Requeue-on-cancel: leases still held (never executed, or executed
	// but unreported) go back to the pending queue now, on a context that
	// survives the caller's cancellation, so a peer picks them up without
	// waiting out the TTL. Best-effort — expiry remains the backstop.
	mu.Lock()
	release := make([]string, 0, len(held))
	for id := range held {
		release = append(release, id)
	}
	err := runErr
	mu.Unlock()
	if len(release) > 0 {
		rctx, rcancel := context.WithTimeout(context.WithoutCancel(ctx), 3*time.Second)
		fc.Claim(rctx, FleetClaimRequest{
			Version: FleetAPIVersion,
			Worker:  wid,
			Max:     0,
			Sweep:   fspec,
			Release: release,
		})
		rcancel()
	}

	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	if err != nil {
		return nil, err
	}

	// Assemble the merged matrix from the coordinator's table, preferring
	// the local copy of pairs this worker executed (it carries this run's
	// phase timings; the cells are identical by determinism).
	st, serr := fc.Status(ctx, fspec, true)
	if serr != nil {
		return nil, fmt.Errorf("sweep fleet: status: %w", serr)
	}
	if !st.Done || len(st.Results) != st.Total {
		return nil, fmt.Errorf("sweep fleet: coordinator reports %d/%d pairs complete after done signal", st.Completed, st.Total)
	}
	merged := make([]PairResult, 0, len(st.Results))
	for _, pr := range st.Results {
		if local, ok := executed[pr.Pair()]; ok {
			merged = append(merged, local)
		} else {
			merged = append(merged, pr)
		}
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].OpA != merged[j].OpA {
			return merged[i].OpA < merged[j].OpA
		}
		return merged[i].OpB < merged[j].OpB
	})
	res := &Result{Spec: sp.Name(), Pairs: merged, Workers: workers, Elapsed: time.Since(start)}
	if cfg.Cache != nil {
		res.Cache = counters.stats()
		res.CacheWriteErrors = int(counters.writeErrs.Load())
	}
	return res, nil
}

// sleepCtx sleeps d or until ctx ends; false means the context ended.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
