// Package model is a symbolic model of 18 POSIX file system and virtual
// memory system calls, in the style of COMMUTER's Python model (§6.1 of the
// paper): a simplified specification-level implementation over symbolic
// state, covering inodes, file names, file descriptors and offsets, hard
// links, link counts, file lengths, file contents, pipes, memory-mapped
// files, anonymous memory, and processes.
//
// File sizes and offsets are restricted to page granularity, like the
// paper's model. Nested directories are omitted (the paper disables them
// too, because of solver limitations).
package model

import (
	"repro/internal/spec"
	"repro/internal/sym"
	"repro/internal/symx"
)

// Symbolic sorts of the model. Filename and byte-page values are
// uninterpreted: they support only equality, which is all POSIX semantics
// needs from them.
var (
	// FilenameSort is the sort of path components.
	FilenameSort = sym.Uninterpreted("Filename")
	// DataSort is the sort of one page worth of file/pipe/memory content.
	DataSort = sym.Uninterpreted("Data")
)

// DataZero is the distinguished zero-filled page (anonymous mappings read
// as zero).
var DataZero = sym.Const(DataSort, 0)

// Errno values used by the model (negated in return slot 0).
const (
	ENOENT   = 2
	EBADF    = 9
	EFAULT   = 14
	EEXIST   = 17
	EINVAL   = 22
	EMFILE   = 24
	ESPIPE   = 29
	ENOMEM   = 12
	ENODEV   = 19
	EAGAIN   = 11
	EISDIR   = 21
	ESIGSEGV = 1001 // pseudo-errno: the access faulted with SIGSEGV
	ESIGBUS  = 1002 // pseudo-errno: the access faulted with SIGBUS
)

// Bounds keep the symbolic integer domains small enough for the finite
// solver while leaving room for every distinct object a pair of calls can
// mention (two calls touch at most four names, so four inodes; at most
// three FDs; and so on).
const (
	// MaxInum bounds initial inode numbers: 1..MaxInum.
	MaxInum = 4
	// MaxPipe bounds initial pipe ids: 1..MaxPipe.
	MaxPipe = 2
	// MaxLen bounds file lengths (in pages).
	MaxLen = 3
	// MaxFD bounds the per-process FD table: fds are 0..MaxFD-1.
	MaxFD = 3
	// MaxPage bounds virtual address pages: 0..MaxPage-1.
	MaxPage = 3
)

// State is the symbolic POSIX state. Dictionaries are flat with tuple keys
// (see symx); both permutations of a pair analysis build a State with
// identical dictionary names so that unconstrained initial content is
// shared by construction.
type State struct {
	// Fname maps (name) -> {inum}: the single shared directory.
	Fname *symx.Dict
	// Inode maps (inum) -> {nlink, len}: a total-function view.
	Inode *symx.Dict
	// Data maps (inum, page) -> {val}: file contents.
	Data *symx.Dict
	// FD maps (proc, fd) -> {ispipe, inum, off, pipe, wend}: per-process
	// descriptor tables; proc is a boolean expression (two processes).
	FD *symx.Dict
	// Pipe maps (pipe) -> {head, tail}: pipe cursors, total-function view.
	Pipe *symx.Dict
	// PipeD maps (pipe, seq) -> {val}: pipe contents by sequence number.
	PipeD *symx.Dict
	// VMA maps (proc, page) -> {anon, inum, foff, wr}: address spaces.
	VMA *symx.Dict
	// Anon maps (proc, page) -> {val}: anonymous memory contents.
	Anon *symx.Dict

	// newInums and newPipes track nondeterministically allocated ids so
	// later allocations can be constrained distinct. Initial ids are
	// positive; allocated ids are negative, so the two can never collide.
	newInums []*sym.Expr
	newPipes []*sym.Expr
}

// NewState builds the symbolic state with unconstrained initial content.
// The MakeVal closures install the model's state invariants via Assume:
// object ids referenced by initial state are positive and bounded, link
// counts of referenced inodes are at least one, cursors are ordered.
func NewState(c *symx.Context) *State {
	s := &State{}
	s.Fname = symx.NewDict("fname", func(c *symx.Context, tag string) symx.Value {
		inum := c.Var(tag+".inum", sym.IntSort, symx.KindState)
		c.Assume(sym.And(sym.Ge(inum, sym.Int(1)), sym.Le(inum, sym.Int(MaxInum))))
		return symx.NewStruct("inum", inum)
	})
	s.Inode = symx.NewDict("inode", func(c *symx.Context, tag string) symx.Value {
		nlink := c.Var(tag+".nlink", sym.IntSort, symx.KindState)
		ln := c.Var(tag+".len", sym.IntSort, symx.KindState)
		c.Assume(sym.And(
			sym.Ge(nlink, sym.Int(1)), sym.Le(nlink, sym.Int(MaxInum)),
			sym.Ge(ln, sym.Int(0)), sym.Le(ln, sym.Int(MaxLen))))
		return symx.NewStruct("nlink", nlink, "len", ln)
	})
	s.Data = symx.NewDict("data", func(c *symx.Context, tag string) symx.Value {
		return symx.NewStruct("val", c.Var(tag+".val", DataSort, symx.KindState))
	})
	s.FD = symx.NewDict("fd", func(c *symx.Context, tag string) symx.Value {
		ispipe := c.Var(tag+".ispipe", sym.BoolSort, symx.KindState)
		inum := c.Var(tag+".inum", sym.IntSort, symx.KindState)
		off := c.Var(tag+".off", sym.IntSort, symx.KindState)
		pipe := c.Var(tag+".pipe", sym.IntSort, symx.KindState)
		wend := c.Var(tag+".wend", sym.BoolSort, symx.KindState)
		c.Assume(sym.And(
			sym.Ge(inum, sym.Int(1)), sym.Le(inum, sym.Int(MaxInum)),
			sym.Ge(off, sym.Int(0)), sym.Le(off, sym.Int(MaxLen)),
			sym.Ge(pipe, sym.Int(1)), sym.Le(pipe, sym.Int(MaxPipe))))
		return symx.NewStruct("ispipe", ispipe, "inum", inum, "off", off, "pipe", pipe, "wend", wend)
	})
	s.Pipe = symx.NewDict("pipe", func(c *symx.Context, tag string) symx.Value {
		head := c.Var(tag+".head", sym.IntSort, symx.KindState)
		tail := c.Var(tag+".tail", sym.IntSort, symx.KindState)
		c.Assume(sym.And(
			sym.Ge(head, sym.Int(0)), sym.Le(head, tail), sym.Le(tail, sym.Int(MaxLen))))
		return symx.NewStruct("head", head, "tail", tail)
	})
	s.PipeD = symx.NewDict("piped", func(c *symx.Context, tag string) symx.Value {
		return symx.NewStruct("val", c.Var(tag+".val", DataSort, symx.KindState))
	})
	s.VMA = symx.NewDict("vma", func(c *symx.Context, tag string) symx.Value {
		anon := c.Var(tag+".anon", sym.BoolSort, symx.KindState)
		inum := c.Var(tag+".inum", sym.IntSort, symx.KindState)
		foff := c.Var(tag+".foff", sym.IntSort, symx.KindState)
		wr := c.Var(tag+".wr", sym.BoolSort, symx.KindState)
		c.Assume(sym.And(
			sym.Ge(inum, sym.Int(1)), sym.Le(inum, sym.Int(MaxInum)),
			sym.Ge(foff, sym.Int(0)), sym.Le(foff, sym.Int(MaxLen))))
		return symx.NewStruct("anon", anon, "inum", inum, "foff", foff, "wr", wr)
	})
	s.Anon = symx.NewDict("anon", func(c *symx.Context, tag string) symx.Value {
		return symx.NewStruct("val", c.Var(tag+".val", DataSort, symx.KindState))
	})
	return s
}

// Dicts returns the state dictionaries in comparison order (the spec
// layer's State contract). Fname, FD and VMA come before Inode/Data
// because their invariant closures may probe the inode table; comparing
// dependents first keeps late materialization from racing the comparison
// of the tables they reference.
func (s *State) Dicts() []*symx.Dict {
	return []*symx.Dict{s.Fname, s.FD, s.VMA, s.Pipe, s.PipeD, s.Anon, s.Inode, s.Data}
}

// Equivalent builds the formula stating that two final states are
// indistinguishable through the interface: every dictionary holds equal
// content at every key either execution touched.
func Equivalent(c *symx.Context, a, b *State) *sym.Expr {
	return spec.Equivalent(c, a, b)
}

// AllocInum returns a fresh, nondeterministically chosen inode number for
// slot (an operation instance tag). Allocated numbers are negative —
// disjoint from all initial inode numbers — and pairwise distinct.
func (s *State) AllocInum(c *symx.Context, slot string) *sym.Expr {
	v := c.Var("alloc.inum."+slot, sym.IntSort, symx.KindNondet)
	c.Assume(sym.Le(v, sym.Int(-1)))
	for _, prev := range s.newInums {
		c.Assume(sym.Ne(v, prev))
	}
	s.newInums = append(s.newInums, v)
	return v
}

// AllocPipe returns a fresh nondeterministic pipe id (negative, distinct).
func (s *State) AllocPipe(c *symx.Context, slot string) *sym.Expr {
	v := c.Var("alloc.pipe."+slot, sym.IntSort, symx.KindNondet)
	c.Assume(sym.Le(v, sym.Int(-1)))
	for _, prev := range s.newPipes {
		c.Assume(sym.Ne(v, prev))
	}
	s.newPipes = append(s.newPipes, v)
	return v
}
