package model

import (
	"repro/internal/kernel"
	"repro/internal/kernel/monokernel"
	"repro/internal/kernel/svsix"
	"repro/internal/spec"
	"repro/internal/symx"
)

// FSOpNames is the fast file-system subset of the op universe (the 9
// metadata and descriptor calls), the CLI's "-ops fs" selection.
var FSOpNames = []string{
	"open", "link", "unlink", "rename", "stat", "fstat", "lseek", "close", "pipe",
}

// posixSpec packages the POSIX model as the registered "posix" spec: the
// 18 Figure 6 operations, the symbolic file-system/VM state, the
// fs-specific witness concretizer, and the two kernel implementations
// under test.
type posixSpec struct{}

// Spec is the POSIX model as a pluggable pipeline spec.
var Spec spec.Spec = posixSpec{}

func init() { spec.Register(Spec) }

func (posixSpec) Name() string { return "posix" }

func (posixSpec) Ops() []*spec.Op { return Ops() }

func (posixSpec) Sets() map[string][]string {
	return map[string][]string{"fs": FSOpNames}
}

// DefaultSet keeps the CLI's historical fast default: the fs subset.
func (posixSpec) DefaultSet() string { return "fs" }

func (posixSpec) NewState(c *symx.Context, cfg spec.Config) spec.State {
	return NewState(c)
}

func (posixSpec) Concretizer() spec.Concretizer { return concretizer{} }

// Impls binds the spec to the two kernel implementations the paper
// evaluates: the Linux-3.8-like monokernel baseline and the sv6-like
// scalable rebuild.
func (posixSpec) Impls() []spec.Impl {
	return []spec.Impl{
		{Name: "linux", New: func() kernel.Kernel { return monokernel.New() }},
		{Name: "sv6", New: func() kernel.Kernel { return svsix.New() }},
	}
}
