package model

import (
	"sort"

	"repro/internal/kernel"
	"repro/internal/spec"
	"repro/internal/sym"
)

// concretizer is the POSIX spec's witness-to-setup converter: it owns
// every fs-specific field-name convention (len/nlink/off/head/tail/foff…)
// that used to be hard-wired into TESTGEN.
type concretizer struct{}

// FixupCall attaches the O_ANYFD flag to descriptor-allocating calls
// unless the model ran under the POSIX lowest-FD rule, matching the
// specification nondeterminism the generated tests assume.
func (concretizer) FixupCall(cfg spec.Config, call *kernel.Call) {
	if !cfg.LowestFD && (call.Op == "open" || call.Op == "pipe") {
		call.Args["anyfd"] = 1
	}
}

// Setup reconstructs a concrete, realizable initial kernel state from the
// model assignment. Link counts are realized with hidden extra links (the
// paper's Figure 5 "__i0" trick) when the probed count exceeds the
// visible names.
func (concretizer) Setup(a, b spec.State, m sym.Model) (kernel.Setup, error) {
	var s kernel.Setup
	sa, sb := a.(*State), b.(*State)

	inodeLen := map[int64]int64{}
	inodeNlink := map[int64]int64{}
	for _, p := range spec.CollectProbes(m, sa.Inode, sb.Inode) {
		inum := p.Key[0]
		if inum < 1 {
			continue // allocated during the calls, not initial state
		}
		inodeLen[inum] = spec.Clamp(p.Fields["len"], 0, MaxLen)
		inodeNlink[inum] = spec.Clamp(p.Fields["nlink"], 0, MaxInum)
	}

	visibleLinks := map[int64]int{}
	for _, p := range spec.CollectProbes(m, sa.Fname, sb.Fname) {
		name, inum := p.Key[0], p.Fields["inum"]
		if inum < 1 {
			continue
		}
		s.Files = append(s.Files, kernel.SetupFile{Name: kernel.Fname(name), Inum: inum})
		visibleLinks[inum]++
		if _, ok := inodeLen[inum]; !ok {
			inodeLen[inum] = 0
		}
	}

	pages := map[int64]map[int64]int64{}
	for _, p := range spec.CollectProbes(m, sa.Data, sb.Data) {
		inum, pg := p.Key[0], p.Key[1]
		if inum < 1 || pg < 0 {
			continue
		}
		if _, ok := inodeLen[inum]; !ok {
			continue // content of a file not otherwise in play
		}
		if pg >= inodeLen[inum] {
			continue // beyond EOF: invisible through the interface
		}
		if pages[inum] == nil {
			pages[inum] = map[int64]int64{}
		}
		pages[inum][pg] = p.Fields["val"]
	}

	pipesNeeded := map[int64]bool{}
	for _, p := range spec.CollectProbes(m, sa.FD, sb.FD) {
		proc, fd := int(p.Key[0]), p.Key[1]
		if fd < 0 {
			continue
		}
		sd := kernel.SetupFD{Proc: proc, FD: fd}
		if p.Bools["ispipe"] {
			sd.Pipe = true
			sd.PipeID = p.Fields["pipe"]
			sd.WriteEnd = p.Bools["wend"]
			if sd.PipeID >= 1 {
				pipesNeeded[sd.PipeID] = true
			}
		} else {
			sd.Inum = p.Fields["inum"]
			sd.Off = spec.Clamp(p.Fields["off"], 0, MaxLen)
			if sd.Inum >= 1 {
				if _, ok := inodeLen[sd.Inum]; !ok {
					inodeLen[sd.Inum] = 0
				}
			}
		}
		s.FDs = append(s.FDs, sd)
	}

	pipeFields := map[int64]map[string]int64{}
	for _, p := range spec.CollectProbes(m, sa.Pipe, sb.Pipe) {
		id := p.Key[0]
		if id < 1 {
			continue
		}
		pipeFields[id] = p.Fields
		pipesNeeded[id] = true
	}
	pipeVals := map[int64]map[int64]int64{}
	for _, p := range spec.CollectProbes(m, sa.PipeD, sb.PipeD) {
		id, seq := p.Key[0], p.Key[1]
		if id < 1 {
			continue
		}
		if pipeVals[id] == nil {
			pipeVals[id] = map[int64]int64{}
		}
		pipeVals[id][seq] = p.Fields["val"]
	}
	for id := range pipesNeeded {
		s.Pipes = append(s.Pipes, kernel.SetupPipe{
			ID: id, Items: spec.BacklogItems(pipeFields[id], pipeVals[id], MaxLen)})
	}

	anonVals := map[[2]int64]int64{}
	for _, p := range spec.CollectProbes(m, sa.Anon, sb.Anon) {
		anonVals[[2]int64{p.Key[0], p.Key[1]}] = p.Fields["val"]
	}
	for _, p := range spec.CollectProbes(m, sa.VMA, sb.VMA) {
		proc, page := p.Key[0], p.Key[1]
		if page < 0 {
			continue
		}
		sv := kernel.SetupVMA{
			Proc: int(proc), Page: page,
			Anon:     p.Bools["anon"],
			Writable: p.Bools["wr"],
		}
		if sv.Anon {
			sv.Val = anonVals[[2]int64{proc, page}]
		} else {
			sv.Inum = p.Fields["inum"]
			sv.Foff = spec.Clamp(p.Fields["foff"], 0, MaxLen)
			if sv.Inum >= 1 {
				if _, ok := inodeLen[sv.Inum]; !ok {
					inodeLen[sv.Inum] = 0
				}
			}
		}
		s.VMAs = append(s.VMAs, sv)
	}

	inums := make([]int64, 0, len(inodeLen))
	for inum := range inodeLen {
		inums = append(inums, inum)
	}
	sort.Slice(inums, func(i, j int) bool { return inums[i] < inums[j] })
	for _, inum := range inums {
		extra := 0
		if want, ok := inodeNlink[inum]; ok {
			if d := int(want) - visibleLinks[inum]; d > 0 {
				extra = d
			}
		}
		s.Inodes = append(s.Inodes, kernel.SetupInode{
			Inum:       inum,
			ExtraLinks: extra,
			Len:        inodeLen[inum],
			Pages:      pages[inum],
		})
	}
	sortSetup(&s)
	return s, nil
}

// sortSetup fixes deterministic ordering for reproducible output.
func sortSetup(s *kernel.Setup) {
	sort.Slice(s.Files, func(i, j int) bool { return s.Files[i].Name < s.Files[j].Name })
	sort.Slice(s.FDs, func(i, j int) bool {
		a, b := s.FDs[i], s.FDs[j]
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		return a.FD < b.FD
	})
	sort.Slice(s.Pipes, func(i, j int) bool { return s.Pipes[i].ID < s.Pipes[j].ID })
	sort.Slice(s.VMAs, func(i, j int) bool {
		a, b := s.VMAs[i], s.VMAs[j]
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		return a.Page < b.Page
	})
}
