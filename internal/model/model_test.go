package model

import (
	"testing"

	"repro/internal/spec"
	"repro/internal/sym"
	"repro/internal/symx"
)

func TestOpsInventory(t *testing.T) {
	ops := Ops()
	if len(ops) != 18 {
		t.Fatalf("want the paper's 18 calls, got %d", len(ops))
	}
	want := []string{"open", "link", "unlink", "rename", "stat", "fstat", "lseek",
		"close", "pipe", "read", "write", "pread", "pwrite", "mmap", "munmap",
		"mprotect", "memread", "memwrite"}
	seen := map[string]bool{}
	for i, op := range ops {
		if op.Name != want[i] {
			t.Errorf("op %d = %s, want %s (Figure 6 order)", i, op.Name, want[i])
		}
		if seen[op.Name] {
			t.Errorf("duplicate op %s", op.Name)
		}
		seen[op.Name] = true
		if op.Exec == nil {
			t.Errorf("%s has no Exec", op.Name)
		}
	}
	if OpByName("rename") == nil || OpByName("nope") != nil {
		t.Error("OpByName misbehaves")
	}
}

// runOp executes one op standalone and returns its paths with results.
func runOp(t *testing.T, name string, cfg Config) []symx.Path {
	t.Helper()
	op := OpByName(name)
	return symx.Run(func(c *symx.Context) any {
		args := MakeArgs(c, op, "0")
		s := NewState(c)
		x := &spec.Exec{C: c, S: s, Cfg: cfg}
		return op.Exec(x, "0", args)
	}, symx.Options{})
}

// Every op must return fixed-width vectors on every path.
func TestUniformReturnWidth(t *testing.T) {
	for _, op := range Ops() {
		for _, p := range runOp(t, op.Name, Config{}) {
			ret := p.Result.([]*sym.Expr)
			if len(ret) != RetWidth {
				t.Errorf("%s: return width %d on some path", op.Name, len(ret))
			}
		}
	}
}

// Each op must have both error and success paths where the spec has them.
func TestErrorPathsExist(t *testing.T) {
	wantErr := map[string]int64{
		"stat":     ENOENT,
		"link":     ENOENT,
		"unlink":   ENOENT,
		"rename":   ENOENT,
		"fstat":    EBADF,
		"close":    EBADF,
		"read":     EBADF,
		"lseek":    ESPIPE,
		"pread":    ESPIPE,
		"pwrite":   ESPIPE,
		"mprotect": ENOMEM,
		"memread":  ESIGSEGV,
		"memwrite": ESIGSEGV,
	}
	var s sym.Solver
	for name, errno := range wantErr {
		found := false
		hasSuccess := false
		for _, p := range runOp(t, name, Config{}) {
			ret := p.Result.([]*sym.Expr)
			cond := sym.And(p.PC, sym.Eq(ret[0], sym.Int(-errno)))
			if s.Sat(cond) {
				found = true
			}
			if s.Sat(sym.And(p.PC, sym.Ge(ret[0], sym.Int(0)))) {
				hasSuccess = true
			}
		}
		if !found {
			t.Errorf("%s: no path returns errno %d", name, errno)
		}
		if !hasSuccess {
			t.Errorf("%s: no success path", name)
		}
	}
}

// The lowest-FD configuration produces concrete descriptor constants; the
// nondeterministic default produces an allocation variable.
func TestFDAllocationModes(t *testing.T) {
	sawConst, sawVar := false, false
	for _, p := range runOp(t, "open", Config{LowestFD: true}) {
		ret := p.Result.([]*sym.Expr)
		if ret[0].IsConst() && ret[0].Int >= 0 {
			sawConst = true
		}
	}
	for _, p := range runOp(t, "open", Config{}) {
		ret := p.Result.([]*sym.Expr)
		if ret[0].Op == sym.OpVar && p.VarKinds[ret[0].Name] == symx.KindNondet {
			sawVar = true
		}
	}
	if !sawConst {
		t.Error("LowestFD mode never returned a constant descriptor")
	}
	if !sawVar {
		t.Error("default mode never returned a nondeterministic descriptor")
	}
}

func TestMakeArgsBounds(t *testing.T) {
	var s sym.Solver
	paths := symx.Run(func(c *symx.Context) any {
		args := MakeArgs(c, OpByName("pread"), "0")
		return args
	}, symx.Options{})
	p := paths[0]
	off := sym.Var("pread.0.off", sym.IntSort)
	if s.Sat(sym.And(p.PC, sym.Lt(off, sym.Int(0)))) {
		t.Error("offset bound (>= 0) not enforced")
	}
	if s.Sat(sym.And(p.PC, sym.Gt(off, sym.Int(MaxLen)))) {
		t.Error("offset bound (<= MaxLen) not enforced")
	}
}

func TestRetEq(t *testing.T) {
	a := []*sym.Expr{sym.Int(0), sym.Int(1), sym.Int(2), sym.Int(3), DataZero}
	b := []*sym.Expr{sym.Int(0), sym.Int(1), sym.Int(2), sym.Int(3), DataZero}
	if !RetEq(a, b).IsTrue() {
		t.Error("identical returns must be equal")
	}
	b[1] = sym.Int(9)
	if !RetEq(a, b).IsFalse() {
		t.Error("different returns must be unequal")
	}
}

// State invariants: a probed file's inode number is within the initial
// range, never overlapping allocated (negative) numbers.
func TestStateInvariants(t *testing.T) {
	var s sym.Solver
	paths := symx.Run(func(c *symx.Context) any {
		st := NewState(c)
		name := c.Var("n", FilenameSort, symx.KindArg)
		if st.Fname.Contains(c, symx.K(name)) {
			return st.Fname.Get(c, symx.K(name)).(*symx.Struct).Get("inum")
		}
		return nil
	}, symx.Options{})
	checked := false
	for _, p := range paths {
		inum, ok := p.Result.(*sym.Expr)
		if !ok || inum == nil {
			continue
		}
		checked = true
		if s.Sat(sym.And(p.PC, sym.Lt(inum, sym.Int(1)))) {
			t.Error("initial inode numbers must be >= 1")
		}
		if s.Sat(sym.And(p.PC, sym.Gt(inum, sym.Int(MaxInum)))) {
			t.Error("initial inode numbers must be bounded")
		}
	}
	if !checked {
		t.Fatal("no present path explored")
	}
}

// Allocated identifiers are negative and pairwise distinct.
func TestAllocDistinctness(t *testing.T) {
	var s sym.Solver
	paths := symx.Run(func(c *symx.Context) any {
		st := NewState(c)
		a := st.AllocInum(c, "0")
		b := st.AllocInum(c, "1")
		return [2]*sym.Expr{a, b}
	}, symx.Options{})
	for _, p := range paths {
		ab := p.Result.([2]*sym.Expr)
		if s.Sat(sym.And(p.PC, sym.Eq(ab[0], ab[1]))) {
			t.Error("allocated inums can collide")
		}
		if s.Sat(sym.And(p.PC, sym.Ge(ab[0], sym.Int(0)))) {
			t.Error("allocated inums must be negative")
		}
	}
}

// Equivalent must accept identical untouched states and reject states that
// differ at a written key.
func TestEquivalentDetectsWrites(t *testing.T) {
	var s sym.Solver
	paths := symx.Run(func(c *symx.Context) any {
		s1 := NewState(c)
		s2 := NewState(c)
		name := c.Var("n", FilenameSort, symx.KindArg)
		s1.Fname.Set(c, symx.K(name), symx.NewStruct("inum", sym.Int(1)))
		s2.Fname.Set(c, symx.K(name), symx.NewStruct("inum", sym.Int(2)))
		return Equivalent(c, s1, s2)
	}, symx.Options{})
	for _, p := range paths {
		if s.Sat(sym.And(p.PC, p.Result.(*sym.Expr))) {
			t.Error("states with different bindings reported equivalent")
		}
	}

	paths = symx.Run(func(c *symx.Context) any {
		s1 := NewState(c)
		s2 := NewState(c)
		return Equivalent(c, s1, s2)
	}, symx.Options{})
	for _, p := range paths {
		if !s.Valid(sym.Implies(p.PC, p.Result.(*sym.Expr))) {
			t.Error("untouched states must be equivalent")
		}
	}
}
