package model

import (
	"repro/internal/spec"
	"repro/internal/sym"
	"repro/internal/symx"
)

// Config selects specification variants for the model; it is the spec
// layer's shared configuration. The default (zero) Config embraces
// specification nondeterminism per §4 of the paper: FD allocation may
// return any unused descriptor. Setting LowestFD restores POSIX's "lowest
// available FD" rule so ANALYZER can demonstrate the commutativity it
// destroys.
type Config = spec.Config

// RetWidth is the uniform return-vector width of every operation.
const RetWidth = spec.RetWidth

// ArgSpec describes one symbolic operation argument.
type ArgSpec = spec.ArgSpec

// OpDef is the spec layer's operation type; the POSIX calls are written
// against the richer M context below and adapted by def.
type OpDef = spec.Op

// opDef is the POSIX-local definition of one modeled system call.
type opDef struct {
	// Name matches the Figure 6 row/column labels.
	Name string
	// Args are the symbolic arguments.
	Args []ArgSpec
	// Exec runs the call against m's state, returning a RetWidth vector.
	Exec func(m *M, slot string, args []*sym.Expr) []*sym.Expr
}

// def adapts a POSIX-local definition to the spec layer's Exec signature.
func def(d *opDef) *spec.Op {
	return &spec.Op{
		Name: d.Name,
		Args: d.Args,
		Exec: func(x *spec.Exec, slot string, args []*sym.Expr) []*sym.Expr {
			return d.Exec(&M{C: x.C, S: x.S.(*State), Cfg: x.Cfg}, slot, args)
		},
	}
}

// M bundles the execution context for one permutation run.
type M struct {
	C   *symx.Context
	S   *State
	Cfg Config
}

// MakeArgs materializes the symbolic arguments of op for an operation slot,
// applying declared bounds.
func MakeArgs(c *symx.Context, op *OpDef, slot string) []*sym.Expr {
	return spec.MakeArgs(c, op, slot)
}

func errRet(errno int64) []*sym.Expr {
	return []*sym.Expr{sym.Int(-errno), sym.Int(0), sym.Int(0), sym.Int(0), DataZero}
}

func okRet(code *sym.Expr, is ...*sym.Expr) []*sym.Expr {
	out := []*sym.Expr{code, sym.Int(0), sym.Int(0), sym.Int(0), DataZero}
	for i, e := range is {
		out[i+1] = e
	}
	return out
}

func dataRet(code int64, d *sym.Expr) []*sym.Expr {
	return []*sym.Expr{sym.Int(code), sym.Int(0), sym.Int(0), sym.Int(0), d}
}

// RetEq builds the formula stating two return vectors are equal.
func RetEq(a, b []*sym.Expr) *sym.Expr { return spec.RetEq(a, b) }

// allocFD picks a descriptor for a new open file. In LowestFD mode it scans
// for the lowest free slot (nil when the table is full); otherwise it is an
// unused descriptor chosen nondeterministically.
func (m *M) allocFD(slot string, proc *sym.Expr) *sym.Expr {
	if m.Cfg.LowestFD {
		for i := int64(0); i < MaxFD; i++ {
			if !m.S.FD.Contains(m.C, symx.K(proc, sym.Int(i))) {
				return sym.Int(i)
			}
		}
		return nil
	}
	v := m.C.Var("alloc.fd."+slot, sym.IntSort, symx.KindNondet)
	m.C.Assume(sym.And(sym.Ge(v, sym.Int(0)), sym.Le(v, sym.Int(MaxFD-1))))
	if m.S.FD.Contains(m.C, symx.K(proc, v)) {
		m.C.Abort() // the kernel picks an unused descriptor
	}
	return v
}

func fileFD(inum, off *sym.Expr) *symx.Struct {
	return symx.NewStruct("ispipe", sym.False, "inum", inum, "off", off,
		"pipe", sym.Int(1), "wend", sym.False)
}

func pipeFD(pipe *sym.Expr, wend bool) *symx.Struct {
	return symx.NewStruct("ispipe", sym.True, "inum", sym.Int(1), "off", sym.Int(0),
		"pipe", pipe, "wend", sym.Bool(wend))
}

// Ops returns the 18 modeled POSIX operations, in Figure 6 order.
func Ops() []*OpDef {
	defs := []*opDef{
		opOpen(), opLink(), opUnlink(), opRename(), opStat(), opFstat(),
		opLseek(), opClose(), opPipe(), opRead(), opWrite(), opPread(),
		opPwrite(), opMmap(), opMunmap(), opMprotect(), opMemread(), opMemwrite(),
	}
	out := make([]*OpDef, len(defs))
	for i, d := range defs {
		out[i] = def(d)
	}
	return out
}

// OpByName returns the operation definition with the given name, or nil
// when unknown. Callers wanting a diagnostic error should resolve through
// the spec registry (spec.OpByName) instead.
func OpByName(name string) *OpDef {
	for _, op := range Ops() {
		if op.Name == name {
			return op
		}
	}
	return nil
}

func procArg() ArgSpec { return ArgSpec{Name: "proc", Sort: sym.BoolSort} }
func fdArg() ArgSpec {
	return ArgSpec{Name: "fd", Sort: sym.IntSort, Min: 0, Max: MaxFD - 1, Bounded: true}
}
func pageArg(name string) ArgSpec {
	return ArgSpec{Name: name, Sort: sym.IntSort, Min: 0, Max: MaxPage - 1, Bounded: true}
}
func offArg(name string) ArgSpec {
	return ArgSpec{Name: name, Sort: sym.IntSort, Min: 0, Max: MaxLen, Bounded: true}
}

func opOpen() *opDef {
	return &opDef{
		Name: "open",
		Args: []ArgSpec{
			procArg(),
			{Name: "fname", Sort: FilenameSort},
			{Name: "creat", Sort: sym.BoolSort},
			{Name: "excl", Sort: sym.BoolSort},
			{Name: "trunc", Sort: sym.BoolSort},
		},
		Exec: func(m *M, slot string, a []*sym.Expr) []*sym.Expr {
			proc, fname, creat, excl, trunc := a[0], a[1], a[2], a[3], a[4]
			var inum *sym.Expr
			if m.S.Fname.Contains(m.C, symx.K(fname)) {
				if m.C.Branch(sym.And(creat, excl)) {
					return errRet(EEXIST)
				}
				inum = m.S.Fname.Get(m.C, symx.K(fname)).(*symx.Struct).Get("inum")
				if m.C.Branch(trunc) {
					ino := m.S.Inode.GetFunc(m.C, symx.K(inum)).(*symx.Struct)
					m.S.Inode.Set(m.C, symx.K(inum), ino.With("len", sym.Int(0)))
				}
			} else {
				if !m.C.Branch(creat) {
					return errRet(ENOENT)
				}
				inum = m.S.AllocInum(m.C, slot)
				m.S.Inode.Set(m.C, symx.K(inum),
					symx.NewStruct("nlink", sym.Int(1), "len", sym.Int(0)))
				m.S.Fname.Set(m.C, symx.K(fname), symx.NewStruct("inum", inum))
			}
			fd := m.allocFD(slot, proc)
			if fd == nil {
				return errRet(EMFILE)
			}
			m.S.FD.Set(m.C, symx.K(proc, fd), fileFD(inum, sym.Int(0)))
			return okRet(fd)
		},
	}
}

func opLink() *opDef {
	return &opDef{
		Name: "link",
		Args: []ArgSpec{
			{Name: "old", Sort: FilenameSort},
			{Name: "new", Sort: FilenameSort},
		},
		Exec: func(m *M, slot string, a []*sym.Expr) []*sym.Expr {
			old, nw := a[0], a[1]
			if !m.S.Fname.Contains(m.C, symx.K(old)) {
				return errRet(ENOENT)
			}
			if m.S.Fname.Contains(m.C, symx.K(nw)) {
				return errRet(EEXIST)
			}
			inum := m.S.Fname.Get(m.C, symx.K(old)).(*symx.Struct).Get("inum")
			ino := m.S.Inode.GetFunc(m.C, symx.K(inum)).(*symx.Struct)
			m.S.Inode.Set(m.C, symx.K(inum),
				ino.With("nlink", sym.Add(ino.Get("nlink"), sym.Int(1))))
			m.S.Fname.Set(m.C, symx.K(nw), symx.NewStruct("inum", inum))
			return okRet(sym.Int(0))
		},
	}
}

func opUnlink() *opDef {
	return &opDef{
		Name: "unlink",
		Args: []ArgSpec{{Name: "fname", Sort: FilenameSort}},
		Exec: func(m *M, slot string, a []*sym.Expr) []*sym.Expr {
			fname := a[0]
			if !m.S.Fname.Contains(m.C, symx.K(fname)) {
				return errRet(ENOENT)
			}
			inum := m.S.Fname.Get(m.C, symx.K(fname)).(*symx.Struct).Get("inum")
			ino := m.S.Inode.GetFunc(m.C, symx.K(inum)).(*symx.Struct)
			m.S.Inode.Set(m.C, symx.K(inum),
				ino.With("nlink", sym.Sub(ino.Get("nlink"), sym.Int(1))))
			m.S.Fname.Del(m.C, symx.K(fname))
			return okRet(sym.Int(0))
		},
	}
}

// opRename mirrors Figure 4 of the paper.
func opRename() *opDef {
	return &opDef{
		Name: "rename",
		Args: []ArgSpec{
			{Name: "src", Sort: FilenameSort},
			{Name: "dst", Sort: FilenameSort},
		},
		Exec: func(m *M, slot string, a []*sym.Expr) []*sym.Expr {
			src, dst := a[0], a[1]
			if !m.S.Fname.Contains(m.C, symx.K(src)) {
				return errRet(ENOENT)
			}
			if m.C.Branch(sym.Eq(src, dst)) {
				return okRet(sym.Int(0))
			}
			si := m.S.Fname.Get(m.C, symx.K(src)).(*symx.Struct).Get("inum")
			if m.S.Fname.Contains(m.C, symx.K(dst)) {
				di := m.S.Fname.Get(m.C, symx.K(dst)).(*symx.Struct).Get("inum")
				ino := m.S.Inode.GetFunc(m.C, symx.K(di)).(*symx.Struct)
				m.S.Inode.Set(m.C, symx.K(di),
					ino.With("nlink", sym.Sub(ino.Get("nlink"), sym.Int(1))))
			}
			m.S.Fname.Set(m.C, symx.K(dst), symx.NewStruct("inum", si))
			m.S.Fname.Del(m.C, symx.K(src))
			return okRet(sym.Int(0))
		},
	}
}

func opStat() *opDef {
	return &opDef{
		Name: "stat",
		Args: []ArgSpec{{Name: "fname", Sort: FilenameSort}},
		Exec: func(m *M, slot string, a []*sym.Expr) []*sym.Expr {
			fname := a[0]
			if !m.S.Fname.Contains(m.C, symx.K(fname)) {
				return errRet(ENOENT)
			}
			inum := m.S.Fname.Get(m.C, symx.K(fname)).(*symx.Struct).Get("inum")
			ino := m.S.Inode.GetFunc(m.C, symx.K(inum)).(*symx.Struct)
			return okRet(sym.Int(0), inum, ino.Get("nlink"), ino.Get("len"))
		},
	}
}

func opFstat() *opDef {
	return &opDef{
		Name: "fstat",
		Args: []ArgSpec{procArg(), fdArg()},
		Exec: func(m *M, slot string, a []*sym.Expr) []*sym.Expr {
			proc, fd := a[0], a[1]
			if !m.S.FD.Contains(m.C, symx.K(proc, fd)) {
				return errRet(EBADF)
			}
			f := m.S.FD.Get(m.C, symx.K(proc, fd)).(*symx.Struct)
			if m.C.Branch(f.Get("ispipe")) {
				p := m.S.Pipe.GetFunc(m.C, symx.K(f.Get("pipe"))).(*symx.Struct)
				// Pipes report a pseudo-inode in a disjoint (negative)
				// number space, link count 1, and queued length.
				return okRet(sym.Int(0), sym.Sub(sym.Int(0), f.Get("pipe")),
					sym.Int(1), sym.Sub(p.Get("tail"), p.Get("head")))
			}
			inum := f.Get("inum")
			ino := m.S.Inode.GetFunc(m.C, symx.K(inum)).(*symx.Struct)
			return okRet(sym.Int(0), inum, ino.Get("nlink"), ino.Get("len"))
		},
	}
}

func opLseek() *opDef {
	return &opDef{
		Name: "lseek",
		Args: []ArgSpec{
			procArg(), fdArg(),
			{Name: "delta", Sort: sym.IntSort, Min: -MaxLen, Max: MaxLen, Bounded: true},
			{Name: "wset", Sort: sym.BoolSort},
			{Name: "wend", Sort: sym.BoolSort},
		},
		Exec: func(m *M, slot string, a []*sym.Expr) []*sym.Expr {
			proc, fd, delta, wset, wend := a[0], a[1], a[2], a[3], a[4]
			if !m.S.FD.Contains(m.C, symx.K(proc, fd)) {
				return errRet(EBADF)
			}
			f := m.S.FD.Get(m.C, symx.K(proc, fd)).(*symx.Struct)
			if m.C.Branch(f.Get("ispipe")) {
				return errRet(ESPIPE)
			}
			var n *sym.Expr
			switch {
			case m.C.Branch(wset):
				n = delta
			case m.C.Branch(wend):
				ino := m.S.Inode.GetFunc(m.C, symx.K(f.Get("inum"))).(*symx.Struct)
				n = sym.Add(ino.Get("len"), delta)
			default:
				n = sym.Add(f.Get("off"), delta)
			}
			if m.C.Branch(sym.Lt(n, sym.Int(0))) {
				return errRet(EINVAL)
			}
			m.S.FD.Set(m.C, symx.K(proc, fd), f.With("off", n))
			return okRet(sym.Int(0), n)
		},
	}
}

func opClose() *opDef {
	return &opDef{
		Name: "close",
		Args: []ArgSpec{procArg(), fdArg()},
		Exec: func(m *M, slot string, a []*sym.Expr) []*sym.Expr {
			proc, fd := a[0], a[1]
			if !m.S.FD.Contains(m.C, symx.K(proc, fd)) {
				return errRet(EBADF)
			}
			m.S.FD.Del(m.C, symx.K(proc, fd))
			return okRet(sym.Int(0))
		},
	}
}

func opPipe() *opDef {
	return &opDef{
		Name: "pipe",
		Args: []ArgSpec{procArg()},
		Exec: func(m *M, slot string, a []*sym.Expr) []*sym.Expr {
			proc := a[0]
			pid := m.S.AllocPipe(m.C, slot)
			m.S.Pipe.Set(m.C, symx.K(pid),
				symx.NewStruct("head", sym.Int(0), "tail", sym.Int(0)))
			rfd := m.allocFD(slot+".r", proc)
			if rfd == nil {
				return errRet(EMFILE)
			}
			m.S.FD.Set(m.C, symx.K(proc, rfd), pipeFD(pid, false))
			wfd := m.allocFD(slot+".w", proc)
			if wfd == nil {
				m.S.FD.Del(m.C, symx.K(proc, rfd))
				return errRet(EMFILE)
			}
			m.S.FD.Set(m.C, symx.K(proc, wfd), pipeFD(pid, true))
			return okRet(sym.Int(0), rfd, wfd)
		},
	}
}

func opRead() *opDef {
	return &opDef{
		Name: "read",
		Args: []ArgSpec{procArg(), fdArg()},
		Exec: func(m *M, slot string, a []*sym.Expr) []*sym.Expr {
			proc, fd := a[0], a[1]
			if !m.S.FD.Contains(m.C, symx.K(proc, fd)) {
				return errRet(EBADF)
			}
			f := m.S.FD.Get(m.C, symx.K(proc, fd)).(*symx.Struct)
			if m.C.Branch(f.Get("ispipe")) {
				if m.C.Branch(f.Get("wend")) {
					return errRet(EBADF)
				}
				pid := f.Get("pipe")
				p := m.S.Pipe.GetFunc(m.C, symx.K(pid)).(*symx.Struct)
				if m.C.Branch(sym.Eq(p.Get("head"), p.Get("tail"))) {
					return errRet(EAGAIN) // modeled as non-blocking
				}
				v := m.S.PipeD.GetFunc(m.C, symx.K(pid, p.Get("head"))).(*symx.Struct)
				m.S.Pipe.Set(m.C, symx.K(pid),
					p.With("head", sym.Add(p.Get("head"), sym.Int(1))))
				return dataRet(1, v.Get("val"))
			}
			ino := m.S.Inode.GetFunc(m.C, symx.K(f.Get("inum"))).(*symx.Struct)
			if m.C.Branch(sym.Ge(f.Get("off"), ino.Get("len"))) {
				return okRet(sym.Int(0)) // EOF
			}
			v := m.S.Data.GetFunc(m.C, symx.K(f.Get("inum"), f.Get("off"))).(*symx.Struct)
			m.S.FD.Set(m.C, symx.K(proc, fd),
				f.With("off", sym.Add(f.Get("off"), sym.Int(1))))
			return dataRet(1, v.Get("val"))
		},
	}
}

func opWrite() *opDef {
	return &opDef{
		Name: "write",
		Args: []ArgSpec{procArg(), fdArg(), {Name: "val", Sort: DataSort}},
		Exec: func(m *M, slot string, a []*sym.Expr) []*sym.Expr {
			proc, fd, val := a[0], a[1], a[2]
			if !m.S.FD.Contains(m.C, symx.K(proc, fd)) {
				return errRet(EBADF)
			}
			f := m.S.FD.Get(m.C, symx.K(proc, fd)).(*symx.Struct)
			if m.C.Branch(f.Get("ispipe")) {
				if !m.C.Branch(f.Get("wend")) {
					return errRet(EBADF)
				}
				pid := f.Get("pipe")
				p := m.S.Pipe.GetFunc(m.C, symx.K(pid)).(*symx.Struct)
				m.S.PipeD.Set(m.C, symx.K(pid, p.Get("tail")),
					symx.NewStruct("val", val))
				m.S.Pipe.Set(m.C, symx.K(pid),
					p.With("tail", sym.Add(p.Get("tail"), sym.Int(1))))
				return okRet(sym.Int(1))
			}
			off := f.Get("off")
			inum := f.Get("inum")
			m.S.Data.Set(m.C, symx.K(inum, off), symx.NewStruct("val", val))
			ino := m.S.Inode.GetFunc(m.C, symx.K(inum)).(*symx.Struct)
			end := sym.Add(off, sym.Int(1))
			if m.C.Branch(sym.Gt(end, ino.Get("len"))) {
				m.S.Inode.Set(m.C, symx.K(inum), ino.With("len", end))
			}
			m.S.FD.Set(m.C, symx.K(proc, fd), f.With("off", end))
			return okRet(sym.Int(1))
		},
	}
}

func opPread() *opDef {
	return &opDef{
		Name: "pread",
		Args: []ArgSpec{procArg(), fdArg(), offArg("off")},
		Exec: func(m *M, slot string, a []*sym.Expr) []*sym.Expr {
			proc, fd, off := a[0], a[1], a[2]
			if !m.S.FD.Contains(m.C, symx.K(proc, fd)) {
				return errRet(EBADF)
			}
			f := m.S.FD.Get(m.C, symx.K(proc, fd)).(*symx.Struct)
			if m.C.Branch(f.Get("ispipe")) {
				return errRet(ESPIPE)
			}
			ino := m.S.Inode.GetFunc(m.C, symx.K(f.Get("inum"))).(*symx.Struct)
			if m.C.Branch(sym.Ge(off, ino.Get("len"))) {
				return okRet(sym.Int(0)) // EOF
			}
			v := m.S.Data.GetFunc(m.C, symx.K(f.Get("inum"), off)).(*symx.Struct)
			return dataRet(1, v.Get("val"))
		},
	}
}

func opPwrite() *opDef {
	return &opDef{
		Name: "pwrite",
		Args: []ArgSpec{procArg(), fdArg(), offArg("off"), {Name: "val", Sort: DataSort}},
		Exec: func(m *M, slot string, a []*sym.Expr) []*sym.Expr {
			proc, fd, off, val := a[0], a[1], a[2], a[3]
			if !m.S.FD.Contains(m.C, symx.K(proc, fd)) {
				return errRet(EBADF)
			}
			f := m.S.FD.Get(m.C, symx.K(proc, fd)).(*symx.Struct)
			if m.C.Branch(f.Get("ispipe")) {
				return errRet(ESPIPE)
			}
			inum := f.Get("inum")
			m.S.Data.Set(m.C, symx.K(inum, off), symx.NewStruct("val", val))
			ino := m.S.Inode.GetFunc(m.C, symx.K(inum)).(*symx.Struct)
			end := sym.Add(off, sym.Int(1))
			if m.C.Branch(sym.Gt(end, ino.Get("len"))) {
				m.S.Inode.Set(m.C, symx.K(inum), ino.With("len", end))
			}
			return okRet(sym.Int(1))
		},
	}
}

func opMmap() *opDef {
	return &opDef{
		Name: "mmap",
		Args: []ArgSpec{
			procArg(), pageArg("page"),
			{Name: "anon", Sort: sym.BoolSort},
			{Name: "fixed", Sort: sym.BoolSort},
			{Name: "wr", Sort: sym.BoolSort},
			fdArg(), offArg("foff"),
		},
		Exec: func(m *M, slot string, a []*sym.Expr) []*sym.Expr {
			proc, page, anon, fixed, wr, fd, foff := a[0], a[1], a[2], a[3], a[4], a[5], a[6]
			var addr *sym.Expr
			if m.C.Branch(fixed) {
				addr = page // MAP_FIXED replaces any existing mapping
			} else {
				addr = m.C.Var("alloc.addr."+slot, sym.IntSort, symx.KindNondet)
				m.C.Assume(sym.And(sym.Ge(addr, sym.Int(0)), sym.Le(addr, sym.Int(MaxPage-1))))
				if m.S.VMA.Contains(m.C, symx.K(proc, addr)) {
					m.C.Abort() // the kernel picks an unused address
				}
			}
			if m.C.Branch(anon) {
				m.S.VMA.Set(m.C, symx.K(proc, addr), symx.NewStruct(
					"anon", sym.True, "inum", sym.Int(1), "foff", sym.Int(0), "wr", wr))
				m.S.Anon.Set(m.C, symx.K(proc, addr), symx.NewStruct("val", DataZero))
				return okRet(sym.Int(0), addr)
			}
			if !m.S.FD.Contains(m.C, symx.K(proc, fd)) {
				return errRet(EBADF)
			}
			f := m.S.FD.Get(m.C, symx.K(proc, fd)).(*symx.Struct)
			if m.C.Branch(f.Get("ispipe")) {
				return errRet(ENODEV)
			}
			m.S.VMA.Set(m.C, symx.K(proc, addr), symx.NewStruct(
				"anon", sym.False, "inum", f.Get("inum"), "foff", foff, "wr", wr))
			return okRet(sym.Int(0), addr)
		},
	}
}

func opMunmap() *opDef {
	return &opDef{
		Name: "munmap",
		Args: []ArgSpec{procArg(), pageArg("page")},
		Exec: func(m *M, slot string, a []*sym.Expr) []*sym.Expr {
			proc, page := a[0], a[1]
			m.S.VMA.Del(m.C, symx.K(proc, page))
			m.S.Anon.Del(m.C, symx.K(proc, page))
			return okRet(sym.Int(0))
		},
	}
}

func opMprotect() *opDef {
	return &opDef{
		Name: "mprotect",
		Args: []ArgSpec{procArg(), pageArg("page"), {Name: "wr", Sort: sym.BoolSort}},
		Exec: func(m *M, slot string, a []*sym.Expr) []*sym.Expr {
			proc, page, wr := a[0], a[1], a[2]
			if !m.S.VMA.Contains(m.C, symx.K(proc, page)) {
				return errRet(ENOMEM)
			}
			v := m.S.VMA.Get(m.C, symx.K(proc, page)).(*symx.Struct)
			m.S.VMA.Set(m.C, symx.K(proc, page), v.With("wr", wr))
			return okRet(sym.Int(0))
		},
	}
}

func opMemread() *opDef {
	return &opDef{
		Name: "memread",
		Args: []ArgSpec{procArg(), pageArg("page")},
		Exec: func(m *M, slot string, a []*sym.Expr) []*sym.Expr {
			proc, page := a[0], a[1]
			if !m.S.VMA.Contains(m.C, symx.K(proc, page)) {
				return errRet(ESIGSEGV)
			}
			v := m.S.VMA.Get(m.C, symx.K(proc, page)).(*symx.Struct)
			if m.C.Branch(v.Get("anon")) {
				av := m.S.Anon.GetFunc(m.C, symx.K(proc, page)).(*symx.Struct)
				return dataRet(0, av.Get("val"))
			}
			ino := m.S.Inode.GetFunc(m.C, symx.K(v.Get("inum"))).(*symx.Struct)
			if m.C.Branch(sym.Ge(v.Get("foff"), ino.Get("len"))) {
				return errRet(ESIGBUS)
			}
			dv := m.S.Data.GetFunc(m.C, symx.K(v.Get("inum"), v.Get("foff"))).(*symx.Struct)
			return dataRet(0, dv.Get("val"))
		},
	}
}

func opMemwrite() *opDef {
	return &opDef{
		Name: "memwrite",
		Args: []ArgSpec{procArg(), pageArg("page"), {Name: "val", Sort: DataSort}},
		Exec: func(m *M, slot string, a []*sym.Expr) []*sym.Expr {
			proc, page, val := a[0], a[1], a[2]
			if !m.S.VMA.Contains(m.C, symx.K(proc, page)) {
				return errRet(ESIGSEGV)
			}
			v := m.S.VMA.Get(m.C, symx.K(proc, page)).(*symx.Struct)
			if !m.C.Branch(v.Get("wr")) {
				return errRet(ESIGSEGV)
			}
			if m.C.Branch(v.Get("anon")) {
				m.S.Anon.Set(m.C, symx.K(proc, page), symx.NewStruct("val", val))
				return okRet(sym.Int(0))
			}
			ino := m.S.Inode.GetFunc(m.C, symx.K(v.Get("inum"))).(*symx.Struct)
			if m.C.Branch(sym.Ge(v.Get("foff"), ino.Get("len"))) {
				return errRet(ESIGBUS)
			}
			m.S.Data.Set(m.C, symx.K(v.Get("inum"), v.Get("foff")), symx.NewStruct("val", val))
			return okRet(sym.Int(0))
		},
	}
}
