package obs

import (
	"log/slog"
	"net/http"
)

// contentType is the Prometheus text exposition content type.
const contentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns the /metrics endpoint for a registry: every scrape is a
// fresh snapshot in the text exposition format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", contentType)
		r.WritePrometheus(w)
	})
}

// ParseLevel parses a -log flag value into a slog level. Accepted values
// are debug, info, warn and error (case-insensitive).
func ParseLevel(s string) (slog.Level, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(s)); err != nil {
		return 0, err
	}
	return lv, nil
}
