package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// Span is one complete ("X"-phase) span of a trace: a named interval on a
// (pid, tid) lane, with optional structured arguments shown in the trace
// viewer's detail pane. Times are microseconds from the trace origin —
// the Chrome trace-event format's native unit.
type Span struct {
	// Name is the span label ("rename/rename", "analyze", ...).
	Name string
	// Cat is the span category; viewers filter on it ("pair", "phase").
	Cat string
	// StartUS and DurUS place the span, in microseconds from the origin.
	StartUS, DurUS float64
	// PID and TID select the process and thread lane the span renders on.
	PID, TID int
	// Args carries arbitrary key/value detail (counters, verdicts).
	Args map[string]any
}

// traceEvent is the wire form of one trace-event entry.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON-object flavor of the trace-event format, which —
// unlike the bare-array flavor — admits metadata like the display unit.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace renders spans as a Chrome trace-event file loadable by
// chrome://tracing and https://ui.perfetto.dev. Spans are written in
// start order; zero-duration spans are kept (viewers render them as
// instants), so a caller need not special-case empty phases.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	ordered := make([]Span, len(spans))
	copy(ordered, spans)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].StartUS < ordered[j].StartUS })

	out := traceFile{TraceEvents: make([]traceEvent, 0, len(ordered)), DisplayTimeUnit: "ms"}
	for _, s := range ordered {
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			TS: s.StartUS, Dur: s.DurUS,
			PID: s.PID, TID: s.TID, Args: s.Args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// PackLanes assigns each interval [start[i], start[i]+dur[i]) to the
// lowest-numbered lane (1-based) where it does not overlap a previously
// assigned interval — greedy interval partitioning in start order. The
// sweep's trace export uses it to reconstruct worker-style lanes from
// per-pair timings, so concurrent pairs render stacked instead of
// overlapping on one row.
func PackLanes(start, dur []float64) []int {
	idx := make([]int, len(start))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return start[idx[a]] < start[idx[b]] })

	lanes := make([]int, len(start))
	var laneEnd []float64
	for _, i := range idx {
		placed := false
		for l, end := range laneEnd {
			if start[i] >= end {
				lanes[i] = l + 1
				laneEnd[l] = start[i] + dur[i]
				placed = true
				break
			}
		}
		if !placed {
			laneEnd = append(laneEnd, start[i]+dur[i])
			lanes[i] = len(laneEnd)
		}
	}
	return lanes
}
