package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestWriteChromeTrace(t *testing.T) {
	spans := []Span{
		{Name: "analyze", Cat: "phase", StartUS: 100, DurUS: 40, PID: 1, TID: 2},
		{Name: "open/open", Cat: "pair", StartUS: 100, DurUS: 90, PID: 1, TID: 2,
			Args: map[string]any{"tests": 6}},
		{Name: "check", Cat: "phase", StartUS: 140, DurUS: 50, PID: 1, TID: 2},
	}
	var b bytes.Buffer
	if err := WriteChromeTrace(&b, spans); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b.Bytes(), &file); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}
	if len(file.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(file.TraceEvents))
	}
	// Events come out in start order regardless of input order.
	if file.TraceEvents[2].Name != "check" || file.TraceEvents[2].TS != 140 {
		t.Errorf("events not start-ordered: %+v", file.TraceEvents)
	}
	for _, ev := range file.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %s has phase %q, want X", ev.Name, ev.Ph)
		}
	}
	if file.TraceEvents[0].Name == "open/open" && file.TraceEvents[0].Args["tests"] != 6.0 {
		t.Errorf("args lost: %+v", file.TraceEvents[0])
	}
}

func TestPackLanes(t *testing.T) {
	// Three overlapping intervals need three lanes; a fourth starting
	// after the first ends reuses lane 1.
	start := []float64{0, 1, 2, 11}
	dur := []float64{10, 10, 10, 1}
	lanes := PackLanes(start, dur)
	if lanes[0] != 1 || lanes[1] != 2 || lanes[2] != 3 {
		t.Errorf("overlapping intervals got lanes %v", lanes[:3])
	}
	if lanes[3] != 1 {
		t.Errorf("non-overlapping interval got lane %d, want 1 (reuse)", lanes[3])
	}
	if got := PackLanes(nil, nil); len(got) != 0 {
		t.Errorf("empty input got %v", got)
	}
}
