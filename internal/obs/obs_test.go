package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestExposition pins the text exposition format for each metric kind on
// a small fixed registry — names, TYPE lines, label rendering, cumulative
// histogram buckets.
func TestExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_requests_total", "Total requests.").Add(3)
	r.Gauge("test_inflight", "In-flight requests.").Set(2)
	cv := r.CounterVec("test_hits_total", "Hits by tier.", "tier")
	cv.With("testgen").Add(5)
	cv.With("check").Inc()
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.GaugeFunc("test_func_gauge", "Func-backed.", func() float64 { return 7.5 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_func_gauge Func-backed.
# TYPE test_func_gauge gauge
test_func_gauge 7.5
# HELP test_hits_total Hits by tier.
# TYPE test_hits_total counter
test_hits_total{tier="check"} 1
test_hits_total{tier="testgen"} 5
# HELP test_inflight In-flight requests.
# TYPE test_inflight gauge
test_inflight 2
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.1"} 1
test_latency_seconds_bucket{le="1"} 2
test_latency_seconds_bucket{le="+Inf"} 3
test_latency_seconds_sum 5.55
test_latency_seconds_count 3
# HELP test_requests_total Total requests.
# TYPE test_requests_total counter
test_requests_total 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestHistogramVecLabels(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("test_route_seconds", "Per-route latency.", []float64{1}, "route")
	hv.With("/v1/sweep").Observe(0.5)
	hv.With("/v1/sweep").Observe(2)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`test_route_seconds_bucket{route="/v1/sweep",le="1"} 1`,
		`test_route_seconds_bucket{route="/v1/sweep",le="+Inf"} 2`,
		`test_route_seconds_sum{route="/v1/sweep"} 2.5`,
		`test_route_seconds_count{route="/v1/sweep"} 2`,
	} {
		if !strings.Contains(b.String(), want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, b.String())
		}
	}
}

// TestIdempotentRegistration: the same name with the same shape returns
// the same metric (package-level declarations must not double-count), and
// a shape change panics.
func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_total", "Help.")
	b := r.Counter("test_total", "Help.")
	if a != b {
		t.Fatal("same-shape registration returned a different counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("re-registered counter does not share state")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting registration did not panic")
		}
	}()
	r.Gauge("test_total", "Help.")
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("test_esc_total", "Escapes.", "path").With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `test_esc_total{path="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want+"\n") {
		t.Errorf("exposition missing %q:\n%s", want, b.String())
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_handler_total", "Help.").Inc()
	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "test_handler_total 1\n") {
		t.Errorf("body missing sample:\n%s", rec.Body.String())
	}
}

// TestConcurrentRegistry hammers one registry from many goroutines — the
// -race CI job turns any unsynchronized access into a failure — and then
// checks nothing was lost: counters are exact, histogram count/sum agree.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("test_conc_total", "Help.")
			cv := r.CounterVec("test_conc_vec_total", "Help.", "worker")
			g := r.Gauge("test_conc_inflight", "Help.")
			h := r.HistogramVec("test_conc_seconds", "Help.", DefBuckets, "phase")
			for i := 0; i < iters; i++ {
				c.Inc()
				cv.With("w").Inc()
				g.Inc()
				g.Dec()
				h.With("analyze").Observe(0.01)
				if i%100 == 0 {
					var b strings.Builder
					r.WritePrometheus(&b) // scrape while being written
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("test_conc_total", "Help.").Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := r.CounterVec("test_conc_vec_total", "Help.", "worker").With("w").Value(); got != workers*iters {
		t.Errorf("vec counter = %d, want %d", got, workers*iters)
	}
	if got := r.Gauge("test_conc_inflight", "Help.").Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	h := r.HistogramVec("test_conc_seconds", "Help.", DefBuckets, "phase").With("analyze")
	if h.Count() != workers*iters {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
	if want := float64(workers*iters) * 0.01; h.Sum() < want*0.999 || h.Sum() > want*1.001 {
		t.Errorf("histogram sum = %g, want ≈%g", h.Sum(), want)
	}
}
