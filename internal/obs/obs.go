// Package obs is the repository's telemetry layer: counters, gauges and
// bucketed histograms behind a Registry with Prometheus text exposition,
// plus a Chrome trace-event writer (trace.go) for per-span timelines.
//
// The package is deliberately dependency-free (standard library only) and
// cheap on the hot path: counters and gauges are single atomic operations,
// histogram observations are one atomic per bucket boundary search plus a
// CAS for the sum, and labeled lookups that hit an existing series take
// one RLock. Every layer of the COMMUTER pipeline — the sweep engine, the
// serve endpoint, the solver — records into the process-wide Default
// registry, and `commuter serve` exposes it at /metrics.
//
// Registration is idempotent: asking for a metric that already exists
// with the same shape returns the existing one, so packages can declare
// their metrics in top-level vars without coordinating initialization
// order, and tests can build any number of handlers over one registry.
// Asking for an existing name with a different type, help string, label
// set or bucket layout panics — that is a programming error, not a
// runtime condition.
package obs

import (
	"fmt"
	"io"
	"math"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets is the default histogram bucket layout for latencies in
// seconds (the Prometheus convention: tight sub-second resolution, a long
// tail to 10s).
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; counters only go up).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative allowed).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into cumulative buckets. Observations are
// lock-free; exposition reads may race individual observations (bucket
// counts, sum and count are each atomically consistent, the snapshot as a
// whole is not), which is the standard scrape-time contract.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, exclusive of +Inf
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Buckets are few (≈10); a linear scan beats binary search overhead.
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// metric kinds (the TYPE line of the exposition format).
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// series is one labeled instance of a family; exactly one of the value
// fields is non-nil, matching the family's type.
type series struct {
	labelVals []string
	c         *Counter
	g         *Gauge
	h         *Histogram
}

// family is one named metric with all its labeled series.
type family struct {
	name, help, typ string
	labels          []string
	buckets         []float64      // histogram families only
	fn              func() float64 // func-backed families only

	mu     sync.RWMutex
	series map[string]*series
}

// sameShape reports whether a registration request matches the existing
// family exactly.
func (f *family) sameShape(typ, help string, labels []string, buckets []float64, isFn bool) bool {
	return f.typ == typ && f.help == help &&
		slices.Equal(f.labels, labels) && slices.Equal(f.buckets, buckets) &&
		(f.fn != nil) == isFn
}

// get returns the series for the label values, creating it on first use.
func (f *family) get(vals []string) *series {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(vals)))
	}
	key := strings.Join(vals, "\x00")
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s != nil {
		return s
	}
	s = &series{labelVals: slices.Clone(vals)}
	switch f.typ {
	case typeCounter:
		s.c = &Counter{}
	case typeGauge:
		s.g = &Gauge{}
	case typeHistogram:
		s.h = &Histogram{bounds: f.buckets, counts: make([]atomic.Uint64, len(f.buckets))}
	}
	f.series[key] = s
	return s
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. The zero value is not usable; use NewRegistry (or the
// process-wide Default).
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: make(map[string]*family)} }

// Default is the process-wide registry every pipeline layer records into
// and `commuter serve` exposes at /metrics.
var Default = NewRegistry()

// register returns the family, creating it if absent and panicking on a
// shape mismatch with an existing registration.
func (r *Registry) register(name, help, typ string, labels []string, buckets []float64, fn func() float64) *family {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if !f.sameShape(typ, help, labels, buckets, fn != nil) {
			panic("obs: conflicting registration for metric " + name)
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels:  slices.Clone(labels),
		buckets: slices.Clone(buckets),
		fn:      fn,
		series:  make(map[string]*series),
	}
	r.fams[name] = f
	return f
}

// Counter returns the unlabeled counter with the given name, registering
// it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, typeCounter, nil, nil, nil).get(nil).c
}

// Gauge returns the unlabeled gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, typeGauge, nil, nil, nil).get(nil).g
}

// Histogram returns the unlabeled histogram with the given name; buckets
// are upper bounds in increasing order (the implicit +Inf bucket is
// always appended at exposition).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, typeHistogram, nil, buckets, nil).get(nil).h
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for totals already maintained elsewhere (the sym interner's
// process-wide hit counters). fn must be safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, typeCounter, nil, nil, fn)
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, typeGauge, nil, nil, fn)
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family with the given name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, typeCounter, labels, nil, nil)}
}

// With returns the counter for the label values (one per label, in
// registration order), creating the series on first use.
func (v *CounterVec) With(values ...string) *Counter { return v.f.get(values).c }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family with the given name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, typeGauge, labels, nil, nil)}
}

// With returns the gauge for the label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.get(values).g }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec returns the labeled histogram family with the given name.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, typeHistogram, labels, buckets, nil)}
}

// With returns the histogram for the label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.get(values).h }

// WritePrometheus renders every family in the text exposition format
// (version 0.0.4): families sorted by name, series sorted by label
// values, histograms as cumulative _bucket/_sum/_count samples.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		f.write(&b)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// write renders one family with its HELP/TYPE header.
func (f *family) write(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	if f.fn != nil {
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(formatFloat(f.fn()))
		b.WriteByte('\n')
		return
	}

	f.mu.RLock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sers := make([]*series, 0, len(keys))
	for _, k := range keys {
		sers = append(sers, f.series[k])
	}
	f.mu.RUnlock()

	for _, s := range sers {
		switch f.typ {
		case typeCounter:
			f.sample(b, "", s.labelVals, "", float64(s.c.Value()))
		case typeGauge:
			f.sample(b, "", s.labelVals, "", float64(s.g.Value()))
		case typeHistogram:
			cum := uint64(0)
			for i, bound := range s.h.bounds {
				cum += s.h.counts[i].Load()
				f.sample(b, "_bucket", s.labelVals, formatFloat(bound), float64(cum))
			}
			f.sample(b, "_bucket", s.labelVals, "+Inf", float64(s.h.Count()))
			f.sample(b, "_sum", s.labelVals, "", s.h.Sum())
			f.sample(b, "_count", s.labelVals, "", float64(s.h.Count()))
		}
	}
}

// sample renders one line: name[suffix]{labels,le} value.
func (f *family) sample(b *strings.Builder, suffix string, vals []string, le string, v float64) {
	b.WriteString(f.name)
	b.WriteString(suffix)
	if len(vals) > 0 || le != "" {
		b.WriteByte('{')
		first := true
		for i, lv := range vals {
			if !first {
				b.WriteByte(',')
			}
			first = false
			b.WriteString(f.labels[i])
			b.WriteString(`="`)
			b.WriteString(escapeLabel(lv))
			b.WriteByte('"')
		}
		if le != "" {
			if !first {
				b.WriteByte(',')
			}
			b.WriteString(`le="`)
			b.WriteString(le)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

// formatFloat renders a sample value: integers without a fraction, the
// rest in shortest-roundtrip form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP string (backslash and newline).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value (backslash, quote, newline).
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
