// Package coherence is a MESI-like cache-coherence cost simulator. The
// paper's scalability argument (§1) is exactly that, on MESI hardware,
// conflict-free memory accesses scale linearly while writes to shared cache
// lines serialize on ownership transfers; this package makes that model
// executable so the Figure 7 benchmarks can be regenerated without an
// 80-core machine.
//
// A workload is, per core, a cyclic sequence of operations, each a list of
// cache-line accesses (captured by replaying traced-kernel operations).
// The simulator charges one cycle for a local cache hit, a fixed transfer
// latency for fetching a line another core owns or has modified, and
// serializes ownership transfers per line — the directory grants exclusive
// ownership one requester at a time, which is what collapses throughput
// when many cores write one line.
package coherence

import "container/heap"

// Access is one cache-line touch.
type Access struct {
	// Line identifies the cache line.
	Line int
	// Write distinguishes writes (need exclusive ownership).
	Write bool
}

// Op is one operation's access sequence.
type Op []Access

// CoreTrace is the cyclic operation sequence one core executes.
type CoreTrace []Op

// Opts tunes the cost model. Zero fields take defaults matching the rough
// ratios of a large x86 NUMA machine: L1 hit 1 cycle, cross-socket cache
// line transfer ~100 cycles.
type Opts struct {
	// HitCost is the cost of a local cache hit (default 1).
	HitCost int64
	// TransferCost is the cost of acquiring a line from a remote cache
	// (default 100); transfers of one line serialize.
	TransferCost int64
	// MissCost is the cost of a non-serialized shared-mode fill from a
	// clean copy (default 50).
	MissCost int64
	// Duration is the simulated horizon in cycles (default 1_000_000).
	Duration int64
	// CoresPerSocket, when nonzero, models the paper's testbed topology
	// (8 sockets x 10 cores, socket-shared L3): transfers between cores
	// of one socket cost IntraSocketCost instead of TransferCost.
	CoresPerSocket int
	// IntraSocketCost is the same-socket transfer cost (default
	// TransferCost/3, the rough on-die vs cross-socket latency ratio).
	IntraSocketCost int64
}

func (o Opts) withDefaults() Opts {
	if o.HitCost == 0 {
		o.HitCost = 1
	}
	if o.TransferCost == 0 {
		o.TransferCost = 100
	}
	if o.MissCost == 0 {
		o.MissCost = 50
	}
	if o.Duration == 0 {
		o.Duration = 1_000_000
	}
	if o.IntraSocketCost == 0 {
		o.IntraSocketCost = o.TransferCost / 3
	}
	return o
}

// transferCost returns the ownership-transfer latency between two cores
// under the configured topology. A previous owner of -1 (no owner) pays the
// full cost: the line comes from memory or a remote directory.
func (o Opts) transferCost(from, to int) int64 {
	if o.CoresPerSocket <= 0 || from < 0 {
		return o.TransferCost
	}
	if from/o.CoresPerSocket == to/o.CoresPerSocket {
		return o.IntraSocketCost
	}
	return o.TransferCost
}

// Result reports per-core completed operations over the simulated horizon.
type Result struct {
	// Ops[i] counts operations core i completed.
	Ops []int64
	// Duration echoes the simulated horizon.
	Duration int64
}

// Total sums completed operations.
func (r Result) Total() int64 {
	var t int64
	for _, n := range r.Ops {
		t += n
	}
	return t
}

// PerCorePerCycle is the throughput metric Figure 7 plots (operations per
// unit time per core).
func (r Result) PerCorePerCycle() float64 {
	if len(r.Ops) == 0 || r.Duration == 0 {
		return 0
	}
	return float64(r.Total()) / float64(r.Duration) / float64(len(r.Ops))
}

// lineState tracks MESI-ish ownership of a line.
type lineState struct {
	owner    int  // core holding the line exclusively (-1 none)
	dirty    bool // owner has modified it
	sharers  map[int]bool
	nextFree int64 // serialization point for ownership transfers
}

type coreItem struct {
	core int
	time int64
}

type coreHeap []coreItem

func (h coreHeap) Len() int           { return len(h) }
func (h coreHeap) Less(i, j int) bool { return h[i].time < h[j].time }
func (h coreHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *coreHeap) Push(x any)        { *h = append(*h, x.(coreItem)) }
func (h *coreHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// Simulate runs each core's cyclic trace until the horizon and reports
// completed operations. Cores advance in simulated-time order, so a
// contended line's transfers interleave realistically.
func Simulate(traces []CoreTrace, opts Opts) Result {
	opts = opts.withDefaults()
	lines := map[int]*lineState{}
	line := func(id int) *lineState {
		l, ok := lines[id]
		if !ok {
			l = &lineState{owner: -1, sharers: map[int]bool{}}
			lines[id] = l
		}
		return l
	}

	times := make([]int64, len(traces))
	opIdx := make([]int, len(traces))
	ops := make([]int64, len(traces))

	h := &coreHeap{}
	for c, tr := range traces {
		if len(tr) > 0 {
			heap.Push(h, coreItem{core: c, time: 0})
		}
	}
	for h.Len() > 0 {
		it := heap.Pop(h).(coreItem)
		c := it.core
		t := times[c]
		if t >= opts.Duration {
			continue
		}
		op := traces[c][opIdx[c]%len(traces[c])]
		opIdx[c]++
		for _, a := range op {
			l := line(a.Line)
			t += cost(l, c, a.Write, t, opts)
		}
		times[c] = t
		ops[c]++
		if t < opts.Duration {
			heap.Push(h, coreItem{core: c, time: t})
		}
	}
	return Result{Ops: ops, Duration: opts.Duration}
}

// cost charges one access and updates the line's coherence state.
func cost(l *lineState, c int, write bool, now int64, opts Opts) int64 {
	if write {
		if l.owner == c && len(l.sharers) == 0 {
			l.dirty = true
			return opts.HitCost // already exclusive
		}
		// Acquire exclusive ownership: serialize on the line.
		start := now
		if l.nextFree > start {
			start = l.nextFree
		}
		end := start + opts.transferCost(l.owner, c)
		l.nextFree = end
		l.owner = c
		l.dirty = true
		l.sharers = map[int]bool{}
		return end - now
	}
	// Read.
	if l.owner == c || l.sharers[c] {
		return opts.HitCost
	}
	if l.owner >= 0 && l.dirty {
		// Fetch the dirty copy: serialized downgrade to shared.
		start := now
		if l.nextFree > start {
			start = l.nextFree
		}
		end := start + opts.transferCost(l.owner, c)
		l.nextFree = end
		l.sharers[l.owner] = true
		l.sharers[c] = true
		l.owner = -1
		l.dirty = false
		return end - now
	}
	// Clean shared fill: concurrent, no serialization.
	l.sharers[c] = true
	return opts.MissCost
}
