package coherence

import (
	"testing"
	"testing/quick"
)

// conflict-free workload: each core writes its own line.
func disjointTraces(n int) []CoreTrace {
	traces := make([]CoreTrace, n)
	for c := 0; c < n; c++ {
		traces[c] = CoreTrace{Op{{Line: c, Write: true}}}
	}
	return traces
}

// contended workload: every core writes line 0.
func contendedTraces(n int) []CoreTrace {
	traces := make([]CoreTrace, n)
	for c := 0; c < n; c++ {
		traces[c] = CoreTrace{Op{{Line: 0, Write: true}}}
	}
	return traces
}

func TestConflictFreeScalesLinearly(t *testing.T) {
	r1 := Simulate(disjointTraces(1), Opts{})
	r8 := Simulate(disjointTraces(8), Opts{})
	per1 := r1.PerCorePerCycle()
	per8 := r8.PerCorePerCycle()
	if per8 < per1*0.95 {
		t.Errorf("conflict-free per-core throughput degraded: 1 core %v, 8 cores %v", per1, per8)
	}
}

func TestContendedLineCollapses(t *testing.T) {
	r1 := Simulate(contendedTraces(1), Opts{})
	r16 := Simulate(contendedTraces(16), Opts{})
	per1 := r1.PerCorePerCycle()
	per16 := r16.PerCorePerCycle()
	// With 16 cores serializing on one line, per-core throughput must
	// collapse by roughly the transfer/hit ratio; demand at least 5x.
	if per16 > per1/5 {
		t.Errorf("contended per-core throughput did not collapse: 1 core %v, 16 cores %v", per1, per16)
	}
	// Aggregate throughput must not exceed the line's transfer rate.
	maxTotal := r16.Duration / 100
	if r16.Total() > maxTotal+int64(len(r16.Ops)) {
		t.Errorf("total %d exceeds line transfer capacity %d", r16.Total(), maxTotal)
	}
}

func TestSharedReadsScale(t *testing.T) {
	// All cores read line 0 (read-only sharing): after the initial fill,
	// hits all around — near-linear scaling.
	n := 8
	traces := make([]CoreTrace, n)
	for c := 0; c < n; c++ {
		traces[c] = CoreTrace{Op{{Line: 0, Write: false}}}
	}
	r := Simulate(traces, Opts{})
	per := r.PerCorePerCycle()
	r1 := Simulate(traces[:1], Opts{})
	if per < r1.PerCorePerCycle()*0.9 {
		t.Errorf("read sharing should scale: 1 core %v, %d cores %v", r1.PerCorePerCycle(), n, per)
	}
}

func TestWritersAndReadersOnOneLine(t *testing.T) {
	// statbench's shared-counter shape: n/2 cores write line 0 (link/
	// unlink updating st_nlink), n/2 read it (fstat). The line bounces
	// continuously, so every access pays a serialized transfer.
	n := 8
	traces := make([]CoreTrace, n)
	for c := 0; c < n; c++ {
		traces[c] = CoreTrace{Op{{Line: 0, Write: c%2 == 0}}}
	}
	r := Simulate(traces, Opts{})
	per := r.PerCorePerCycle()
	free := Simulate(disjointTraces(n), Opts{})
	if per > free.PerCorePerCycle()/5 {
		t.Errorf("writers+readers on one line should be far below conflict-free: %v vs %v",
			per, free.PerCorePerCycle())
	}
}

func TestSingleWriterManyReadersDegradesSome(t *testing.T) {
	// One writer and seven readers: readers amortize fetches between
	// writes, so throughput sits between fully contended and free.
	n := 8
	traces := make([]CoreTrace, n)
	traces[0] = CoreTrace{Op{{Line: 0, Write: true}}}
	for c := 1; c < n; c++ {
		traces[c] = CoreTrace{Op{{Line: 0, Write: false}}}
	}
	r := Simulate(traces, Opts{})
	per := r.PerCorePerCycle()
	free := Simulate(disjointTraces(n), Opts{}).PerCorePerCycle()
	cont := Simulate(contendedTraces(n), Opts{}).PerCorePerCycle()
	if per >= free || per <= cont {
		t.Errorf("one-writer throughput %v should fall between contended %v and free %v",
			per, cont, free)
	}
}

func TestDeterministic(t *testing.T) {
	a := Simulate(contendedTraces(4), Opts{})
	b := Simulate(contendedTraces(4), Opts{})
	if a.Total() != b.Total() {
		t.Errorf("simulation not deterministic: %d vs %d", a.Total(), b.Total())
	}
}

func TestResultAccessors(t *testing.T) {
	r := Result{Ops: []int64{10, 20}, Duration: 100}
	if r.Total() != 30 {
		t.Errorf("Total = %d", r.Total())
	}
	if got := r.PerCorePerCycle(); got != 0.15 {
		t.Errorf("PerCorePerCycle = %v", got)
	}
	if (Result{}).PerCorePerCycle() != 0 {
		t.Error("empty result should yield 0 throughput")
	}
}

// Property: ops completed never exceed duration/hitCost per core, and every
// core makes progress when it has work.
func TestQuickProgressBounds(t *testing.T) {
	f := func(nc uint8, contended bool) bool {
		n := int(nc%8) + 1
		var traces []CoreTrace
		if contended {
			traces = contendedTraces(n)
		} else {
			traces = disjointTraces(n)
		}
		r := Simulate(traces, Opts{Duration: 10_000})
		for _, ops := range r.Ops {
			if ops <= 0 || ops > 10_000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Socket topology: with the paper's 8x10 layout, contention among cores of
// one socket costs less than cross-socket contention, so a socket-local
// workload outperforms the same workload spread across sockets.
func TestSocketTopology(t *testing.T) {
	opts := Opts{CoresPerSocket: 10, Duration: 200_000}
	// 4 cores contending on one line, all within socket 0.
	local := make([]CoreTrace, 4)
	for c := range local {
		local[c] = CoreTrace{Op{{Line: 0, Write: true}}}
	}
	rLocal := Simulate(local, opts)
	// 4 cores contending on one line, one per socket (cores 0,10,20,30).
	spread := make([]CoreTrace, 31)
	for _, c := range []int{0, 10, 20, 30} {
		spread[c] = CoreTrace{Op{{Line: 0, Write: true}}}
	}
	rSpread := Simulate(spread, opts)
	if rLocal.Total() <= rSpread.Total() {
		t.Errorf("socket-local contention (%d ops) should beat cross-socket (%d ops)",
			rLocal.Total(), rSpread.Total())
	}
}

func TestTransferCostTopologyDefaults(t *testing.T) {
	o := Opts{}.withDefaults()
	if o.transferCost(0, 1) != o.TransferCost {
		t.Error("no topology: always full transfer cost")
	}
	o.CoresPerSocket = 10
	if o.transferCost(0, 5) != o.IntraSocketCost {
		t.Error("same-socket transfer should use the intra-socket cost")
	}
	if o.transferCost(0, 15) != o.TransferCost {
		t.Error("cross-socket transfer should use the full cost")
	}
	if o.transferCost(-1, 3) != o.TransferCost {
		t.Error("unowned lines pay the full fill cost")
	}
}
