package eval

import (
	"reflect"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/model"
	"repro/internal/sweep"
	"repro/internal/testgen"
)

// fsSubset is the fast file-system operation universe used for in-test
// matrix checks; the full 18-op matrix runs via cmd/commuter.
func fsSubset() []*model.OpDef {
	names := []string{"open", "link", "unlink", "rename", "stat", "fstat", "lseek", "close", "pipe"}
	out := make([]*model.OpDef, len(names))
	for i, n := range names {
		out[i] = model.OpByName(n)
	}
	return out
}

// TestGenerationCounts pins §6.1's headline: COMMUTER generates thousands
// of tests across the pairs, every pair analysis terminates, and every
// commutative pair yields at least one test.
func TestGenerationCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix generation in -short mode")
	}
	tests := GenerateAllTests(model.Spec, fsSubset(), analyzer.Options{}, testgen.Options{MaxTestsPerPath: 4}, nil)
	total := 0
	for _, ts := range tests {
		total += len(ts.Tests)
	}
	if total < 1000 {
		t.Errorf("expected thousands of generated tests over the fs subset, got %d", total)
	}
	for pair, ts := range tests {
		if len(ts.Tests) == 0 && pair != [2]string{"pipe", "pipe"} {
			// Every fs pair has commutative situations (even pipe x pipe:
			// two pipes never share state).
			t.Errorf("pair %v generated no tests", pair)
		}
	}
}

// TestSweepMatchesMatrix pins that the sweep engine path and the
// generate-then-check path agree cell for cell, so `commuter sweep` and
// `commuter matrix` regenerate the same Figure 6.
func TestSweepMatchesMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep pipeline in -short mode")
	}
	ops := []*model.OpDef{model.OpByName("stat"), model.OpByName("lseek"), model.OpByName("close")}
	tests := GenerateAllTests(model.Spec, ops, analyzer.Options{}, testgen.Options{}, nil)
	var want []Matrix
	for _, kn := range []string{"linux", "sv6"} {
		m, err := CheckMatrix(model.Spec, kn, tests)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, m)
	}

	res, err := sweep.Run(sweep.Config{Ops: ops, Kernels: SweepKernels(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := MatricesFromSweep(res)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sweep matrices diverge\ngot  %+v\nwant %+v", got, want)
	}
}

// TestFigure6Headline pins the paper's central empirical claim on the fs
// subset: the commutative tests are overwhelmingly conflict-free on sv6 and
// substantially less so on the Linux-like kernel (the paper reports 99% vs
// 68% over all 18 operations).
func TestFigure6Headline(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix check in -short mode")
	}
	tests := GenerateAllTests(model.Spec, fsSubset(), analyzer.Options{}, testgen.Options{MaxTestsPerPath: 4}, nil)

	linux, err := CheckMatrix(model.Spec, "linux", tests)
	if err != nil {
		t.Fatal(err)
	}
	sv6, err := CheckMatrix(model.Spec, "sv6", tests)
	if err != nil {
		t.Fatal(err)
	}
	lt, lc := linux.Totals()
	st, sc := sv6.Totals()
	linuxPct := 100 * float64(lt-lc) / float64(lt)
	sv6Pct := 100 * float64(st-sc) / float64(st)
	t.Logf("linux: %.1f%% conflict-free (%d/%d); sv6: %.1f%% (%d/%d)",
		linuxPct, lt-lc, lt, sv6Pct, st-sc, st)

	if sv6Pct < 95 {
		t.Errorf("sv6 should be conflict-free for nearly all tests, got %.1f%%", sv6Pct)
	}
	if linuxPct > sv6Pct-5 {
		t.Errorf("linux (%.1f%%) should trail sv6 (%.1f%%) clearly", linuxPct, sv6Pct)
	}

	// Per-pair dominance: Linux must never beat sv6 on any cell by more
	// than noise, and the paper's marquee cells must show the gap.
	sv6Cells := map[[2]string]MatrixCell{}
	for _, c := range sv6.Cells {
		sv6Cells[[2]string{c.OpA, c.OpB}] = c
	}
	for _, lcell := range linux.Cells {
		scell := sv6Cells[[2]string{lcell.OpA, lcell.OpB}]
		if scell.Conflicts > lcell.Conflicts {
			t.Errorf("%s x %s: sv6 (%d) conflicts more than linux (%d)",
				lcell.OpA, lcell.OpB, scell.Conflicts, lcell.Conflicts)
		}
	}
	// Marquee: open x open (creating files in a shared directory) must be
	// a Linux problem and (mostly) an sv6 non-problem.
	for _, lcell := range linux.Cells {
		if lcell.OpA == "open" && lcell.OpB == "open" {
			if lcell.Conflicts == 0 {
				t.Error("linux open x open should show conflicts (dir lock, lowest FD)")
			}
			s := sv6Cells[[2]string{"open", "open"}]
			if s.Conflicts >= lcell.Conflicts {
				t.Errorf("sv6 open x open (%d) should beat linux (%d)", s.Conflicts, lcell.Conflicts)
			}
		}
	}
}
