package eval

import (
	"strings"
	"testing"

	"repro/internal/mail"
)

var testCores = []int{1, 4, 16}

// Figure 7(a): fstatx scales near-linearly; fstat with any st_nlink
// representation collapses as link/unlink cores grow.
func TestStatbenchShape(t *testing.T) {
	fx := Statbench(StatFstatx, testCores)
	rc := Statbench(StatRefcache, testCores)
	sh := Statbench(StatShared, testCores)

	if fx.PerSec[2] < fx.PerSec[0]*0.5 {
		t.Errorf("fstatx per-core throughput should stay near flat: %v", fx.PerSec)
	}
	if rc.PerSec[2] > fx.PerSec[2]*0.5 {
		t.Errorf("Refcache fstat at 16 cores should be far below fstatx: %v vs %v",
			rc.PerSec[2], fx.PerSec[2])
	}
	if sh.PerSec[2] > fx.PerSec[2]*0.5 {
		t.Errorf("shared-count fstat at 16 cores should be far below fstatx: %v vs %v",
			sh.PerSec[2], fx.PerSec[2])
	}
	// §7.2: with a shared count, fstat outperforms the Refcache variant
	// on a single core (no reconciliation scan).
	if sh.PerSec[0] < rc.PerSec[0] {
		t.Errorf("shared-count fstat should beat Refcache fstat at 1 core: %v vs %v",
			sh.PerSec[0], rc.PerSec[0])
	}
}

// Figure 7(b): O_ANYFD scales; lowest-FD collapses.
func TestOpenbenchShape(t *testing.T) {
	any := Openbench(true, testCores)
	low := Openbench(false, testCores)
	if any.PerSec[2] < any.PerSec[0]*0.5 {
		t.Errorf("any-FD throughput should stay near flat: %v", any.PerSec)
	}
	if low.PerSec[2] > any.PerSec[2]*0.5 {
		t.Errorf("lowest-FD at 16 cores should collapse: %v vs any-FD %v",
			low.PerSec[2], any.PerSec[2])
	}
}

// Figure 7(c): commutative APIs scale; regular APIs collapse.
func TestMailbenchShape(t *testing.T) {
	com := Mailbench(true, testCores)
	reg := Mailbench(false, testCores)
	if com.PerSec[2] < com.PerSec[0]*0.4 {
		t.Errorf("commutative-API mail throughput should scale: %v", com.PerSec)
	}
	if reg.PerSec[2] > com.PerSec[2]*0.6 {
		t.Errorf("regular-API mail at 16 cores should be well below commutative: %v vs %v",
			reg.PerSec[2], com.PerSec[2])
	}
}

func TestMailServerSemantics(t *testing.T) {
	for _, commutative := range []bool{false, true} {
		s := mail.NewServer(mail.Config{Commutative: commutative})
		for core := 0; core < 4; core++ {
			for i := 0; i < 3; i++ {
				if err := s.DeliverOne(core); err != nil {
					t.Fatalf("commutative=%v core=%d iter=%d: %v", commutative, core, i, err)
				}
			}
		}
	}
}

// The commutative-API pipeline must be conflict-free across cores; the
// regular-API pipeline must not be.
func TestMailPipelineConflicts(t *testing.T) {
	for _, commutative := range []bool{false, true} {
		s := mail.NewServer(mail.Config{Commutative: commutative})
		for core := 0; core < 2; core++ {
			if err := s.DeliverOne(core); err != nil {
				t.Fatal(err)
			}
		}
		s.Memory().Start()
		for core := 0; core < 2; core++ {
			if err := s.DeliverOne(core); err != nil {
				t.Fatal(err)
			}
		}
		s.Memory().Stop()
		free := s.Memory().ConflictFree()
		if commutative && !free {
			t.Errorf("commutative pipeline conflicts: %v", s.Memory().Conflicts())
		}
		if !commutative && free {
			t.Error("regular pipeline unexpectedly conflict-free")
		}
	}
}

func TestFormatCurves(t *testing.T) {
	c := Curve{Name: "x", Cores: []int{1, 2}, PerSec: []float64{1.5, 1.4}}
	out := FormatCurves("title", []Curve{c})
	if !strings.Contains(out, "title") || !strings.Contains(out, "1.50") {
		t.Errorf("FormatCurves output:\n%s", out)
	}
}

func TestFormatMatrix(t *testing.T) {
	m := Matrix{Kernel: "linux", Cells: []MatrixCell{
		{OpA: "open", OpB: "open", Total: 5, Conflicts: 2},
		{OpA: "open", OpB: "link", Total: 3, Conflicts: 0},
	}}
	out := FormatMatrix(m)
	if !strings.Contains(out, "linux (6 of 8 tests conflict-free)") {
		t.Errorf("matrix header wrong:\n%s", out)
	}
	if !strings.Contains(out, "2") || !strings.Contains(out, ".") {
		t.Errorf("matrix body wrong:\n%s", out)
	}
	if strings.Contains(out, "?") || strings.Contains(out, "solver budget") {
		t.Errorf("clean matrix mentions solver budget:\n%s", out)
	}
}

// TestFormatMatrixUnknown pins the solver-budget surface: a pair with no
// tests whose analysis hit the budget renders "?" (unclassified) rather
// than "-" (proven test-free), with a footer calling out the truncation.
func TestFormatMatrixUnknown(t *testing.T) {
	m := Matrix{Kernel: "linux", Cells: []MatrixCell{
		{OpA: "open", OpB: "open", Total: 5, Conflicts: 2},
		{OpA: "open", OpB: "link", Total: 0, Unknown: 3},
	}}
	out := FormatMatrix(m)
	if !strings.Contains(out, "?") {
		t.Errorf("unknown cell not rendered as ?:\n%s", out)
	}
	if !strings.Contains(out, "1 pair(s) hit the solver budget") {
		t.Errorf("missing solver-budget footer:\n%s", out)
	}
}
