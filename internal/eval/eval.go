// Package eval regenerates the paper's evaluation: the Figure 6
// conflict-freedom matrices (COMMUTER tests run against both kernels) and
// the Figure 7 throughput curves (statbench, openbench, mail server) via
// the MESI coherence simulator.
package eval

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/analyzer"
	"repro/internal/coherence"
	"repro/internal/kernel"
	"repro/internal/kernel/svsix"
	"repro/internal/mail"
	_ "repro/internal/model" // registers the "posix" spec
	"repro/internal/mtrace"
	"repro/internal/spec"
	"repro/internal/sweep"
	"repro/internal/testgen"
)

// CaptureOps records the cache-line access sequences of a series of
// operation thunks executed on the given traced memory, one coherence.Op
// per thunk.
func CaptureOps(mem *mtrace.Memory, thunks []func()) coherence.CoreTrace {
	// The per-access log is opt-in (the CHECK path detects conflicts online
	// and never materializes it); the coherence simulator is the consumer
	// that genuinely needs the ordered access sequence.
	mem.LogAccesses(true)
	var trace coherence.CoreTrace
	for _, th := range thunks {
		mem.Start()
		th()
		mem.Stop()
		var op coherence.Op
		for _, a := range mem.Accesses() {
			op = append(op, coherence.Access{Line: a.Cell.ID(), Write: a.Write})
		}
		trace = append(trace, op)
	}
	return trace
}

// Curve is one throughput-vs-cores series.
type Curve struct {
	Name   string
	Cores  []int
	PerSec []float64 // per-core throughput (simulated ops/Mcycle/core)
}

// DefaultCores is the x-axis of the Figure 7 plots.
var DefaultCores = []int{1, 10, 20, 30, 40, 50, 60, 70, 80}

// StatbenchMode selects the statbench variant (Figure 7a).
type StatbenchMode int

const (
	// StatFstatx omits st_nlink (commutative with link/unlink).
	StatFstatx StatbenchMode = iota
	// StatRefcache returns st_nlink from a Refcache counter.
	StatRefcache
	// StatShared returns st_nlink from a single shared counter.
	StatShared
)

func (m StatbenchMode) String() string {
	switch m {
	case StatFstatx:
		return "Without st_nlink"
	case StatRefcache:
		return "With Refcache st_nlink"
	default:
		return "With shared st_nlink"
	}
}

// Statbench reproduces Figure 7(a): n/2 cores fstat one file while n/2
// cores link/unlink it. Returns fstats per Mcycle per fstat-core.
func Statbench(mode StatbenchMode, cores []int) Curve {
	c := Curve{Name: mode.String(), Cores: cores}
	for _, n := range cores {
		c.PerSec = append(c.PerSec, statbenchAt(mode, n))
	}
	return c
}

func statbenchAt(mode StatbenchMode, n int) float64 {
	k := svsix.NewOpts(svsix.Opts{SharedLinkCount: mode == StatShared})
	setup := kernel.Setup{
		Files:  []kernel.SetupFile{{Name: "f0", Inum: 1}},
		Inodes: []kernel.SetupInode{{Inum: 1, Len: 1, Pages: map[int64]int64{0: 1}}},
	}
	if err := k.Apply(setup); err != nil {
		panic(err)
	}
	// Each core opens the target file once, untraced.
	fds := make([]int64, n)
	for c := 0; c < n; c++ {
		r := k.Exec(c, kernel.Call{Op: "open", Args: map[string]int64{"fname": 0, "anyfd": 1}})
		if r.Code < 0 {
			panic(fmt.Sprint("statbench open: ", r))
		}
		fds[c] = r.Code
	}

	statCores := (n + 1) / 2
	traces := make([]coherence.CoreTrace, n)
	for c := 0; c < n; c++ {
		core := c
		if core < statCores {
			args := map[string]int64{"fd": fds[core]}
			if mode == StatFstatx {
				args["nolink"] = 1
			}
			traces[core] = CaptureOps(k.Memory(), []func(){
				func() { k.Exec(core, kernel.Call{Op: "fstat", Args: args}) },
			})
		} else {
			// link/unlink loop: link f0 to a core-unique name, unlink it.
			nm := int64(1000 + core)
			traces[core] = CaptureOps(k.Memory(), []func(){
				func() { k.Exec(core, kernel.Call{Op: "link", Args: map[string]int64{"old": 0, "new": nm}}) },
				func() { k.Exec(core, kernel.Call{Op: "unlink", Args: map[string]int64{"fname": nm}}) },
			})
		}
	}
	res := coherence.Simulate(traces, coherence.Opts{})
	// Figure 7a plots fstat throughput per core.
	var statOps int64
	for c := 0; c < statCores; c++ {
		statOps += res.Ops[c]
	}
	return float64(statOps) / float64(res.Duration) * 1e6 / float64(statCores)
}

// Openbench reproduces Figure 7(b): n cores open and close per-core files,
// with either any-FD or lowest-FD allocation.
func Openbench(anyFD bool, cores []int) Curve {
	name := "Lowest FD"
	if anyFD {
		name = "Any FD"
	}
	c := Curve{Name: name, Cores: cores}
	for _, n := range cores {
		c.PerSec = append(c.PerSec, openbenchAt(anyFD, n))
	}
	return c
}

func openbenchAt(anyFD bool, n int) float64 {
	k := svsix.New()
	var setup kernel.Setup
	for c := 0; c < n; c++ {
		setup.Files = append(setup.Files, kernel.SetupFile{Name: kernel.Fname(int64(c)), Inum: int64(c + 1)})
		setup.Inodes = append(setup.Inodes, kernel.SetupInode{Inum: int64(c + 1)})
	}
	if err := k.Apply(setup); err != nil {
		panic(err)
	}
	var af int64
	if anyFD {
		af = 1
	}
	traces := make([]coherence.CoreTrace, n)
	for c := 0; c < n; c++ {
		core := c
		var lastFD int64
		traces[core] = CaptureOps(k.Memory(), []func(){
			func() {
				r := k.Exec(core, kernel.Call{Op: "open", Args: map[string]int64{"fname": int64(core), "anyfd": af}})
				lastFD = r.Code
			},
			func() {
				k.Exec(core, kernel.Call{Op: "close", Args: map[string]int64{"fd": lastFD}})
			},
		})
	}
	res := coherence.Simulate(traces, coherence.Opts{})
	// Each open+close is two ops in the trace; report opens per Mcycle.
	return float64(res.Total()) / 2 / float64(res.Duration) * 1e6 / float64(n)
}

// Mailbench reproduces Figure 7(c): n cores run the full mail pipeline with
// regular or commutative APIs; throughput is messages per Mcycle per core.
func Mailbench(commutative bool, cores []int) Curve {
	name := "Regular APIs"
	if commutative {
		name = "Commutative APIs"
	}
	c := Curve{Name: name, Cores: cores}
	for _, n := range cores {
		c.PerSec = append(c.PerSec, mailbenchAt(commutative, n))
	}
	return c
}

func mailbenchAt(commutative bool, n int) float64 {
	s := mail.NewServer(mail.Config{Commutative: commutative})
	// Warm up each core once (builds per-core files and maps), then
	// capture two pipeline iterations per core.
	for c := 0; c < n; c++ {
		if err := s.DeliverOne(c); err != nil {
			panic(err)
		}
	}
	traces := make([]coherence.CoreTrace, n)
	for c := 0; c < n; c++ {
		core := c
		traces[core] = CaptureOps(s.Memory(), []func(){
			func() {
				if err := s.DeliverOne(core); err != nil {
					panic(err)
				}
			},
			func() {
				if err := s.DeliverOne(core); err != nil {
					panic(err)
				}
			},
		})
	}
	res := coherence.Simulate(traces, coherence.Opts{Duration: 4_000_000})
	return float64(res.Total()) / float64(res.Duration) * 1e6 / float64(n)
}

// FormatCurves renders curves as an aligned table, one row per core count.
func FormatCurves(title string, curves []Curve) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-8s", title, "cores")
	for _, c := range curves {
		fmt.Fprintf(&b, "%24s", c.Name)
	}
	b.WriteByte('\n')
	for i, n := range curves[0].Cores {
		fmt.Fprintf(&b, "%-8d", n)
		for _, c := range curves {
			fmt.Fprintf(&b, "%24.2f", c.PerSec[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// MatrixCell is one Figure 6 cell: results of all generated tests for one
// operation pair on one kernel.
type MatrixCell struct {
	OpA, OpB  string
	Total     int
	Conflicts int
	// Unknown counts analyzer paths of the pair whose classification hit
	// the solver budget: the cell's counts are then lower bounds, and
	// FormatMatrix renders a pair with no tests and a nonzero Unknown as
	// "?" rather than the "-" that reads as "never commutes".
	Unknown int
}

// Matrix is a Figure 6 half-matrix for one kernel.
type Matrix struct {
	Kernel string
	// Spec names the interface specification the matrix covers; it fixes
	// the row/column order ("" falls back to posix for pre-spec callers).
	Spec  string
	Cells []MatrixCell
}

// Totals sums tests and non-conflict-free tests.
func (m Matrix) Totals() (total, conflicted int) {
	for _, c := range m.Cells {
		total += c.Total
		conflicted += c.Conflicts
	}
	return
}

// ImplSpecs resolves implementation names against one spec's bindings,
// returning them as sweep kernel specs; with no names it returns all of
// the spec's implementations in their default order. Names are
// deduplicated preserving first-appearance order (a repeated name must
// not double-count every matrix cell); unknown names error with the
// spec's known implementations.
func ImplSpecs(sp spec.Spec, names ...string) ([]sweep.KernelSpec, error) {
	impls := sp.Impls()
	byName := make(map[string]spec.Impl, len(impls))
	known := make([]string, len(impls))
	for i, im := range impls {
		byName[im.Name] = im
		known[i] = im.Name
	}
	if len(names) == 0 {
		names = known
	}
	out := make([]sweep.KernelSpec, 0, len(names))
	seen := map[string]bool{}
	for _, n := range names {
		im, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("spec %s has no implementation %q (known: %s)",
				sp.Name(), n, strings.Join(known, ", "))
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, sweep.KernelSpec{Name: im.Name, New: im.New})
	}
	return out, nil
}

// PairTests is the ANALYZE → TESTGEN outcome for one pair: the generated
// tests plus the count of analyzer paths whose classification hit the
// solver budget (see analyzer.PairPath.Unknown).
type PairTests struct {
	Tests   []kernel.TestCase
	Unknown int
}

// GenerateAllTests runs ANALYZER + TESTGEN over every pair of the given
// operations and returns the concrete test cases grouped by pair. The pairs
// are fanned across the sweep engine's worker pool (per-pair work is
// deterministic and independent, so the result matches a sequential run);
// progress callbacks are serialized but arrive in completion order. A
// caller-provided Solver in either option struct forces sequential
// execution, since solvers are not safe to share.
func GenerateAllTests(sp spec.Spec, ops []*spec.Op, aOpt analyzer.Options, gOpt testgen.Options, progress func(pair string, n int)) map[[2]string]PairTests {
	jobs := sweep.Pairs(ops)
	workers := 0
	if aOpt.Solver != nil || gOpt.Solver != nil {
		workers = 1
	}
	names := make([][2]string, len(jobs))
	tests := make([]PairTests, len(jobs))
	var mu sync.Mutex
	sweep.Parallel(len(jobs), workers, func(i int) {
		pr := analyzer.AnalyzePair(sp, jobs[i][0], jobs[i][1], aOpt)
		ts, truncated := testgen.GenerateChecked(sp, pr, gOpt)
		names[i] = [2]string{pr.OpA, pr.OpB}
		tests[i] = PairTests{Tests: ts, Unknown: pr.Unknown() + truncated}
		if progress != nil {
			mu.Lock()
			progress(pr.OpA+"/"+pr.OpB, len(ts))
			mu.Unlock()
		}
	})
	out := map[[2]string]PairTests{}
	for i := range jobs {
		out[names[i]] = tests[i]
	}
	return out
}

// CheckMatrix runs generated tests against a kernel and builds its matrix,
// checking pairs in parallel on the sweep engine's worker pool. Each check
// builds fresh kernel instances with their own traced memory, so pairs
// never share state.
func CheckMatrix(sp spec.Spec, kernelName string, tests map[[2]string]PairTests) (Matrix, error) {
	// Resolve the implementation within the spec's own bindings, so a
	// spec/kernel mismatch fails here with the known implementations
	// listed instead of at Exec time deep inside a worker.
	impls, err := ImplSpecs(sp, kernelName)
	if err != nil {
		return Matrix{Kernel: kernelName, Spec: sp.Name()}, err
	}
	fresh := impls[0].New
	var pairs [][2]string
	for p := range tests {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	cells := make([]MatrixCell, len(pairs))
	errs := make([]error, len(pairs))
	var failed atomic.Bool // fail fast: skip remaining pairs after the first error
	sweep.Parallel(len(pairs), 0, func(i int) {
		if failed.Load() {
			return
		}
		p := pairs[i]
		total, conflicts, err := sweep.CheckTests(fresh, tests[p].Tests)
		if err != nil {
			errs[i] = err
			failed.Store(true)
			return
		}
		cells[i] = MatrixCell{OpA: p[0], OpB: p[1], Total: total, Conflicts: conflicts, Unknown: tests[p].Unknown}
	})
	for _, err := range errs {
		if err != nil {
			return Matrix{Kernel: kernelName, Spec: sp.Name()}, err
		}
	}
	return Matrix{Kernel: kernelName, Spec: sp.Name(), Cells: cells}, nil
}

// SweepKernels returns posix implementation bindings as sweep specs (all
// of them when no names are given). It is the posix shorthand over
// ImplSpecs, keeping that function the single kernel-name resolver; an
// unknown name panics, preserving this helper's historical contract.
func SweepKernels(kernelNames ...string) []sweep.KernelSpec {
	posix, err := spec.Lookup("posix")
	if err != nil {
		panic("eval: " + err.Error())
	}
	specs, err := ImplSpecs(posix, kernelNames...)
	if err != nil {
		panic("eval: " + err.Error())
	}
	return specs
}

// MatricesFromSweep converts a sweep result into one Figure 6 matrix per
// kernel, in the kernel order the sweep ran them.
func MatricesFromSweep(res *sweep.Result) []Matrix {
	var order []string
	idx := map[string]int{}
	for _, p := range res.Pairs {
		for _, c := range p.Cells {
			if _, ok := idx[c.Kernel]; !ok {
				idx[c.Kernel] = len(order)
				order = append(order, c.Kernel)
			}
		}
	}
	ms := make([]Matrix, len(order))
	for i, n := range order {
		ms[i].Kernel = n
		ms[i].Spec = res.Spec
	}
	for _, p := range res.Pairs {
		for _, c := range p.Cells {
			i := idx[c.Kernel]
			ms[i].Cells = append(ms[i].Cells, MatrixCell{
				OpA: p.OpA, OpB: p.OpB, Total: c.Total, Conflicts: c.Conflicts,
				Unknown: p.Unknown,
			})
		}
	}
	return ms
}

// FormatMatrix renders a Figure 6-style half-matrix: the number of
// non-conflict-free tests per pair ("." for all-scalable cells). A pair
// with no tests renders as "-" — unless its analysis hit the solver
// budget, which renders as "?": such a pair is unclassified, not proven
// non-commutative, and a footer calls the truncation out.
func FormatMatrix(m Matrix) string {
	names := opOrder(m)
	idx := map[string]int{}
	for i, n := range names {
		idx[n] = i
	}
	grid := make([][]string, len(names))
	for i := range grid {
		grid[i] = make([]string, len(names))
	}
	unknownPairs := 0
	for _, c := range m.Cells {
		i, j := idx[c.OpA], idx[c.OpB]
		if i < j {
			i, j = j, i
		}
		s := "."
		if c.Conflicts > 0 {
			s = fmt.Sprint(c.Conflicts)
		}
		if c.Total == 0 {
			s = "-"
			if c.Unknown > 0 {
				s = "?"
			}
		}
		if c.Unknown > 0 {
			unknownPairs++
		}
		grid[i][j] = s
	}
	total, conf := m.Totals()
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d of %d tests conflict-free)\n", m.Kernel, total-conf, total)
	for i, row := range grid {
		fmt.Fprintf(&b, "%-10s", names[i])
		for j := 0; j <= i; j++ {
			fmt.Fprintf(&b, "%6s", row[j])
		}
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", 10))
	for j := range names {
		fmt.Fprintf(&b, "%6s", abbrev(names[j]))
	}
	b.WriteByte('\n')
	if unknownPairs > 0 {
		fmt.Fprintf(&b, "%d pair(s) hit the solver budget: their counts are lower bounds (\"?\" = unclassified)\n", unknownPairs)
	}
	return b.String()
}

func opOrder(m Matrix) []string {
	specName := m.Spec
	if specName == "" {
		specName = "posix"
	}
	var want []string
	if sp, err := spec.Lookup(specName); err == nil {
		want = spec.OpNames(sp)
	} else {
		// Unknown spec: fall back to the cells' own (sorted) op names so
		// the matrix still renders.
		seen := map[string]bool{}
		for _, c := range m.Cells {
			for _, n := range []string{c.OpA, c.OpB} {
				if !seen[n] {
					seen[n] = true
					want = append(want, n)
				}
			}
		}
		sort.Strings(want)
	}
	present := map[string]bool{}
	for _, c := range m.Cells {
		present[c.OpA] = true
		present[c.OpB] = true
	}
	var out []string
	for _, n := range want {
		if present[n] {
			out = append(out, n)
		}
	}
	return out
}

func abbrev(s string) string {
	if len(s) > 5 {
		return s[:5]
	}
	return s
}
