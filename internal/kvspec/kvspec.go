// Package kvspec is a symbolic model of an ordered key-value store,
// registered as the "kv" spec: get, put and delete point operations plus
// a range scan over a bounded, ordered key domain. A key-value store is
// the canonical interface behind the serve/fleet stack this repository
// scales, and its commutativity structure is the one the scalable
// commutativity rule predicts for every ordered map:
//
//   - Point operations on distinct keys always commute: each one
//     observes and mutates a single binding, so orders over different
//     keys are indistinguishable — the executions a hash-partitioned or
//     B-tree-leaf-partitioned implementation makes conflict-free.
//   - Scans conflict with mutations inside their range: scan returns the
//     live bindings of [lo, hi], so a put that inserts or changes a key
//     in that window (or a delete that removes one) is observable across
//     orders and the pair does not commute. Mutations outside the
//     scanned range commute with the scan.
//   - Same-key structure mirrors POSIX names: put/put with different
//     values never commutes (last writer wins), delete/delete of one key
//     never commutes (the second returns ENOENT, like unlink), and
//     get/put commutes only when the put rewrites the value already
//     there.
//
// The reference in-memory implementation is internal/kernel/memkv,
// checked by the standard MTRACE runner.
package kvspec

import (
	"sort"

	"repro/internal/kernel"
	"repro/internal/kernel/memkv"
	"repro/internal/spec"
	"repro/internal/sym"
	"repro/internal/symx"
)

// Bounds keep the symbolic domains small, like the other specs'.
const (
	// NKeys bounds the ordered key domain: keys are 0..NKeys-1.
	NKeys = 3
	// MaxVal bounds stored values: 0..MaxVal.
	MaxVal = 3
)

// State is the symbolic store state: one total-function dictionary whose
// per-key binding carries an explicit presence bit, so the range scan can
// fold membership arithmetically instead of forking per key.
type State struct {
	// KV maps (key) -> {present, val}: the ordered map's bindings.
	KV *symx.Dict
}

// Dicts returns the dictionaries in comparison order (the spec layer's
// State contract).
func (s *State) Dicts() []*symx.Dict { return []*symx.Dict{s.KV} }

// NewState builds the symbolic state with unconstrained initial content:
// every key starts arbitrarily present or absent with an arbitrary
// bounded value.
func NewState(c *symx.Context) *State {
	return &State{
		KV: symx.NewDict("kv", func(c *symx.Context, tag string) symx.Value {
			present := c.Var(tag+".present", sym.BoolSort, symx.KindState)
			val := c.Var(tag+".val", sym.IntSort, symx.KindState)
			c.Assume(sym.And(sym.Ge(val, sym.Int(0)), sym.Le(val, sym.Int(MaxVal))))
			return symx.NewStruct("present", present, "val", val)
		}),
	}
}

func errRet(errno int64) []*sym.Expr {
	return []*sym.Expr{sym.Int(-errno), sym.Int(0), sym.Int(0), sym.Int(0), sym.Int(0)}
}

func okRet(code, i1, data *sym.Expr) []*sym.Expr {
	return []*sym.Expr{code, i1, sym.Int(0), sym.Int(0), data}
}

func st(x *spec.Exec) *State { return x.S.(*State) }

func keyArg(name string) spec.ArgSpec {
	return spec.ArgSpec{Name: name, Sort: sym.IntSort, Min: 0, Max: NKeys - 1, Bounded: true}
}

// Ops returns the four modeled operations in canonical (matrix) order.
func Ops() []*spec.Op {
	return []*spec.Op{opGet(), opPut(), opDelete(), opScan()}
}

func opGet() *spec.Op {
	return &spec.Op{
		Name: "get",
		Args: []spec.ArgSpec{keyArg("key")},
		Exec: func(x *spec.Exec, slot string, a []*sym.Expr) []*sym.Expr {
			s, key := st(x), a[0]
			v := s.KV.GetFunc(x.C, symx.K(key)).(*symx.Struct)
			if !x.C.Branch(v.Get("present")) {
				return errRet(kernel.ENOENT)
			}
			return okRet(sym.Int(0), sym.Int(0), v.Get("val"))
		},
	}
}

func opPut() *spec.Op {
	return &spec.Op{
		Name: "put",
		Args: []spec.ArgSpec{keyArg("key"),
			{Name: "val", Sort: sym.IntSort, Min: 0, Max: MaxVal, Bounded: true}},
		Exec: func(x *spec.Exec, slot string, a []*sym.Expr) []*sym.Expr {
			s, key, val := st(x), a[0], a[1]
			s.KV.Set(x.C, symx.K(key), symx.NewStruct("present", sym.True, "val", val))
			// No "was it an insert?" receipt: like O_ANYFD, returning
			// less is what lets put/put on distinct keys commute even
			// with scans of disjoint ranges interleaved.
			return okRet(sym.Int(0), sym.Int(0), sym.Int(0))
		},
	}
}

func opDelete() *spec.Op {
	return &spec.Op{
		Name: "delete",
		Args: []spec.ArgSpec{keyArg("key")},
		Exec: func(x *spec.Exec, slot string, a []*sym.Expr) []*sym.Expr {
			s, key := st(x), a[0]
			v := s.KV.GetFunc(x.C, symx.K(key)).(*symx.Struct)
			if !x.C.Branch(v.Get("present")) {
				return errRet(kernel.ENOENT) // like unlink of a missing name
			}
			s.KV.Set(x.C, symx.K(key), symx.NewStruct("present", sym.False, "val", sym.Int(0)))
			return okRet(sym.Int(0), sym.Int(0), sym.Int(0))
		},
	}
}

// scanWeight is the per-key positional weight of the scan fingerprint:
// strictly larger than MaxVal+1, so the fingerprint is an injective
// encoding of the scanned window's bindings (which keys are present, and
// each present key's value).
const scanWeight = MaxVal + 2

func opScan() *spec.Op {
	return &spec.Op{
		Name: "scan",
		Args: []spec.ArgSpec{keyArg("lo"), keyArg("hi")},
		Exec: func(x *spec.Exec, slot string, a []*sym.Expr) []*sym.Expr {
			s, lo, hi := st(x), a[0], a[1]
			// Fold the window arithmetically over the (bounded, ordered)
			// key domain: no branching, so scans stay cheap to analyze.
			// count is the number of live bindings in [lo, hi]; fp is the
			// injective fingerprint Σ in-window (val+1)·scanWeight^key —
			// together they expose exactly the window's content, which is
			// what makes in-range mutations order-observable.
			count, fp := sym.Int(0), sym.Int(0)
			weight := int64(1)
			for k := int64(0); k < NKeys; k++ {
				v := s.KV.GetFunc(x.C, symx.K(sym.Int(k))).(*symx.Struct)
				in := sym.And(
					sym.Le(lo, sym.Int(k)), sym.Le(sym.Int(k), hi), v.Get("present"))
				count = sym.Add(count, sym.Ite(in, sym.Int(1), sym.Int(0)))
				fp = sym.Add(fp, sym.Ite(in,
					sym.Mul(sym.Add(v.Get("val"), sym.Int(1)), sym.Int(weight)), sym.Int(0)))
				weight *= scanWeight
			}
			return okRet(count, fp, sym.Int(0))
		},
	}
}

// kvSpec packages the model as the registered "kv" spec.
type kvSpec struct{}

// Spec is the key-value model as a pluggable pipeline spec.
var Spec spec.Spec = kvSpec{}

func init() { spec.Register(Spec) }

func (kvSpec) Name() string { return "kv" }

func (kvSpec) Ops() []*spec.Op { return Ops() }

func (kvSpec) Sets() map[string][]string {
	return map[string][]string{
		"point": {"get", "put", "delete"},
		"range": {"scan"},
	}
}

// DefaultSet: the kv universe is tiny, so default to all of it.
func (kvSpec) DefaultSet() string { return "all" }

func (kvSpec) NewState(c *symx.Context, cfg spec.Config) spec.State {
	return NewState(c)
}

func (kvSpec) Concretizer() spec.Concretizer { return concretizer{} }

func (kvSpec) Impls() []spec.Impl {
	return []spec.Impl{{Name: "memkv", New: func() kernel.Kernel { return memkv.New() }}}
}

// concretizer mines store bindings from the witness.
type concretizer struct{}

// FixupCall is a no-op: the kv interface has no per-call spec flags.
func (concretizer) FixupCall(cfg spec.Config, call *kernel.Call) {}

// Setup rebuilds the concrete store: every key the witness probed as
// present becomes a seeded binding with the probed value.
func (concretizer) Setup(a, b spec.State, m sym.Model) (kernel.Setup, error) {
	var s kernel.Setup
	sa, sb := a.(*State), b.(*State)
	seen := map[int64]bool{}
	for _, p := range spec.CollectProbes(m, sa.KV, sb.KV) {
		if !p.Bools["present"] {
			continue
		}
		key := spec.Clamp(p.Key[0], 0, NKeys-1)
		if seen[key] {
			continue
		}
		seen[key] = true
		s.KVs = append(s.KVs, kernel.SetupKV{
			Key: key, Val: spec.Clamp(p.Fields["val"], 0, MaxVal)})
	}
	sort.Slice(s.KVs, func(i, j int) bool { return s.KVs[i].Key < s.KVs[j].Key })
	return s, nil
}
