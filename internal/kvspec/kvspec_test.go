package kvspec

import (
	"testing"

	"repro/internal/analyzer"
	"repro/internal/kernel"
	"repro/internal/spec"
	"repro/internal/sweep"
	"repro/internal/testgen"
)

func analyze(t *testing.T, a, b string) analyzer.PairResult {
	t.Helper()
	opA, err := spec.OpByName(Spec, a)
	if err != nil {
		t.Fatal(err)
	}
	opB, err := spec.OpByName(Spec, b)
	if err != nil {
		t.Fatal(err)
	}
	return analyzer.AnalyzePair(Spec, opA, opB, analyzer.Options{})
}

func counts(r analyzer.PairResult) (commute, diverge int) {
	for _, p := range r.Paths {
		if p.Commutes {
			commute++
		}
		if p.CanDiverge {
			diverge++
		}
	}
	return
}

// TestDistinctKeyPointOpsCommute pins the point-operation half of the kv
// structure: every point-op pair admits a commutative execution, because
// the witness can place the calls on distinct keys (or make the mutation
// a no-op rewrite).
func TestDistinctKeyPointOpsCommute(t *testing.T) {
	for _, pair := range [][2]string{
		{"get", "get"},
		{"get", "put"},
		{"get", "delete"},
		{"put", "put"},
		{"put", "delete"},
		{"delete", "delete"},
	} {
		r := analyze(t, pair[0], pair[1])
		nc, _ := counts(r)
		if r.Unknown() > 0 {
			t.Fatalf("%s x %s: solver budget hit", pair[0], pair[1])
		}
		if nc == 0 {
			t.Errorf("%s x %s: no commutative path (distinct keys should commute)", pair[0], pair[1])
		}
	}
}

// TestSameKeyMutationsDiverge pins the same-key structure: mutating pairs
// on one key are order-observable (last writer wins; the second delete
// returns ENOENT like unlink of a missing name).
func TestSameKeyMutationsDiverge(t *testing.T) {
	for _, pair := range [][2]string{
		{"get", "put"},
		{"put", "put"},
		{"put", "delete"},
		{"delete", "delete"},
	} {
		r := analyze(t, pair[0], pair[1])
		_, nd := counts(r)
		if nd == 0 {
			t.Errorf("%s x %s: no divergent path (same-key mutation should order-distinguish)", pair[0], pair[1])
		}
	}
}

// TestScanConflictsWithRangeMutations pins the range half: a scan
// commutes with mutations outside its window and with rewrites of the
// value already stored, but an insert/change/removal inside [lo, hi] is
// observable in the scan's result across orders.
func TestScanConflictsWithRangeMutations(t *testing.T) {
	for _, pair := range [][2]string{
		{"put", "scan"},
		{"delete", "scan"},
	} {
		r := analyze(t, pair[0], pair[1])
		nc, nd := counts(r)
		if r.Unknown() > 0 {
			t.Fatalf("%s x %s: solver budget hit", pair[0], pair[1])
		}
		if nc == 0 {
			t.Errorf("%s x %s: no commutative path (out-of-range mutations should commute)", pair[0], pair[1])
		}
		if nd == 0 {
			t.Errorf("%s x %s: no divergent path (in-range mutations should order-distinguish)", pair[0], pair[1])
		}
	}

	// Pure readers never diverge.
	for _, pair := range [][2]string{
		{"get", "scan"},
		{"scan", "scan"},
	} {
		r := analyze(t, pair[0], pair[1])
		nc, nd := counts(r)
		if nc == 0 {
			t.Errorf("%s x %s: no commutative path", pair[0], pair[1])
		}
		if nd != 0 {
			t.Errorf("%s x %s: %d divergent paths, want 0 (reads cannot order-distinguish)",
				pair[0], pair[1], nd)
		}
	}
}

// TestKVSweep is the end-to-end acceptance: the full kv sweep on the
// memkv reference implementation produces tests for every pair (every kv
// pair has commutative executions) and a healthy share of them run
// conflict-free (the per-key-cell design realizes distinct-key and
// out-of-range commutativity).
func TestKVSweep(t *testing.T) {
	impls := Spec.Impls()
	if len(impls) != 1 || impls[0].Name != "memkv" {
		t.Fatalf("kv impls = %+v, want memkv", impls)
	}
	res, err := sweep.Run(sweep.Config{
		Spec:    Spec,
		Ops:     Ops(),
		Kernels: []sweep.KernelSpec{{Name: impls[0].Name, New: impls[0].New}},
	})
	if err != nil {
		t.Fatal(err)
	}
	total, conflictFree := 0, 0
	for _, p := range res.Pairs {
		if p.Unknown > 0 {
			t.Errorf("%s: solver budget hit", p.Pair())
		}
		if p.Tests == 0 {
			t.Errorf("%s: no tests (every kv pair has commutative paths)", p.Pair())
		}
		for _, c := range p.Cells {
			total += c.Total
			conflictFree += c.Total - c.Conflicts
		}
	}
	if total == 0 {
		t.Fatal("kv sweep generated no tests")
	}
	if conflictFree == 0 {
		t.Error("no generated test ran conflict-free on memkv")
	}
	t.Logf("kv sweep: %d tests, %d conflict-free", total, conflictFree)
}

// TestDisjointKeyTestsConflictFree checks the implementation half of the
// rule where it must be exact: every generated test of a point-op pair
// whose calls name distinct keys, and every put/scan test whose put lands
// outside the scanned window, must be conflict-free on memkv.
func TestDisjointKeyTestsConflictFree(t *testing.T) {
	r := analyze(t, "put", "put")
	for _, tc := range testgen.Generate(Spec, r, testgen.Options{}) {
		if tc.Calls[0].Arg("key") == tc.Calls[1].Arg("key") {
			continue
		}
		checkFree(t, tc)
	}

	r = analyze(t, "put", "scan")
	found := false
	for _, tc := range testgen.Generate(Spec, r, testgen.Options{}) {
		put, scan := tc.Calls[0], tc.Calls[1]
		key := put.Arg("key")
		if scan.Arg("lo") <= key && key <= scan.Arg("hi") {
			continue
		}
		found = true
		checkFree(t, tc)
	}
	if !found {
		t.Error("no generated put/scan test puts outside the scanned window")
	}
}

func checkFree(t *testing.T, tc kernel.TestCase) {
	t.Helper()
	res, err := kernel.Check(Spec.Impls()[0].New, tc)
	if err != nil {
		t.Fatalf("%s: %v", tc.ID, err)
	}
	if !res.ConflictFree {
		names := make([]string, len(res.Conflicts))
		for i, c := range res.Conflicts {
			names[i] = c.CellName
		}
		t.Errorf("%s (%v / %v): conflicts on %v", tc.ID, tc.Calls[0], tc.Calls[1], names)
	}
	if !res.Commuted {
		t.Errorf("%s: results did not commute on memkv: %v vs %v", tc.ID, res.Res, res.ResSwapped)
	}
}

// TestGenerateKVTests pins the concretizer: commutative get/put tests
// must seed the bindings the witness probed, within bounds and sorted by
// key.
func TestGenerateKVTests(t *testing.T) {
	r := analyze(t, "get", "put")
	tests := testgen.Generate(Spec, r, testgen.Options{})
	if len(tests) == 0 {
		t.Fatal("no tests for get x put")
	}
	seeded := false
	for _, tc := range tests {
		for i, kv := range tc.Setup.KVs {
			if kv.Key < 0 || kv.Key >= NKeys || kv.Val < 0 || kv.Val > MaxVal {
				t.Errorf("%s: setup binding %+v out of bounds", tc.ID, kv)
			}
			if i > 0 && tc.Setup.KVs[i-1].Key >= kv.Key {
				t.Errorf("%s: setup bindings not sorted: %+v", tc.ID, tc.Setup.KVs)
			}
			seeded = true
		}
		if tc.Calls[0].Op != "get" || tc.Calls[1].Op != "put" {
			t.Errorf("%s: calls %v", tc.ID, tc.Calls)
		}
	}
	if !seeded {
		t.Error("no generated test seeds a binding")
	}
}
