package scale

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/mtrace"
)

func TestSharedCounterConflicts(t *testing.T) {
	mem := mtrace.NewMemory()
	c := NewSharedCounter(mem, "n", 0)
	mem.Start()
	c.Inc(0, 1)
	c.Inc(1, 1)
	mem.Stop()
	if mem.ConflictFree() {
		t.Error("shared counter increments from two cores must conflict")
	}
	if c.Peek() != 2 {
		t.Errorf("value = %d", c.Peek())
	}
}

func TestRefcacheIncConflictFree(t *testing.T) {
	mem := mtrace.NewMemory()
	r := NewRefcache(mem, "nlink", 5)
	mem.Start()
	r.Inc(0, 1)
	r.Inc(1, -1)
	mem.Stop()
	if !mem.ConflictFree() {
		t.Errorf("per-core deltas must not conflict: %v", mem.Conflicts())
	}
	if r.Peek() != 5 {
		t.Errorf("reconciled value = %d, want 5", r.Peek())
	}
}

func TestRefcacheReadConflictsWithWriter(t *testing.T) {
	mem := mtrace.NewMemory()
	r := NewRefcache(mem, "nlink", 0)
	mem.Start()
	r.Inc(0, 1)
	_ = r.Read(1)
	mem.Stop()
	if mem.ConflictFree() {
		t.Error("reconciling read must conflict with a concurrent increment")
	}
}

func TestIDAllocDisjointAndUnique(t *testing.T) {
	mem := mtrace.NewMemory()
	a := NewIDAlloc(mem, "ino", 1)
	mem.Start()
	x := a.Alloc(0)
	y := a.Alloc(1)
	mem.Stop()
	if !mem.ConflictFree() {
		t.Errorf("per-core allocation must not conflict: %v", mem.Conflicts())
	}
	if x == y {
		t.Error("ids collide across cores")
	}
	if z := a.Alloc(0); z == x {
		t.Error("ids reused within a core")
	}
}

func TestSpinLockTracksHolder(t *testing.T) {
	mem := mtrace.NewMemory()
	l := NewSpinLock(mem, "l")
	l.Acquire(0)
	l.Release(0)
	defer func() {
		if recover() == nil {
			t.Error("double release must panic")
		}
	}()
	l.Release(0)
}

func TestSeqlockProtocol(t *testing.T) {
	mem := mtrace.NewMemory()
	s := NewSeqlock(mem, "s")
	v := s.ReadBegin(0)
	if s.ReadRetry(0, v) {
		t.Error("no concurrent writer: read should not retry")
	}
	s.WriteBegin(1)
	if !s.ReadRetry(0, v) {
		t.Error("concurrent writer: read must retry")
	}
	s.WriteEnd(1)
}

func TestHashDirBasics(t *testing.T) {
	mem := mtrace.NewMemory()
	d := NewHashDir(mem, "dir", 64)
	if !d.Insert(0, 1, 100) {
		t.Fatal("insert failed")
	}
	if d.Insert(0, 1, 200) {
		t.Error("duplicate insert succeeded")
	}
	if ino, ok := d.Lookup(0, 1); !ok || ino != 100 {
		t.Errorf("lookup = %d,%v", ino, ok)
	}
	if !d.Exists(0, 1) || d.Exists(0, 2) {
		t.Error("Exists wrong")
	}
	if old := d.Replace(0, 1, 300); old != 100 {
		t.Errorf("Replace returned %d", old)
	}
	if ino, ok := d.Remove(0, 1); !ok || ino != 300 {
		t.Errorf("Remove = %d,%v", ino, ok)
	}
	if _, ok := d.Remove(0, 1); ok {
		t.Error("second Remove succeeded")
	}
}

func TestHashDirDistinctNamesConflictFree(t *testing.T) {
	mem := mtrace.NewMemory()
	d := NewHashDir(mem, "dir", 1024)
	mem.Start()
	d.Insert(0, 1, 100)
	d.Insert(1, 2, 200)
	mem.Stop()
	if !mem.ConflictFree() {
		t.Errorf("distinct-name inserts should land in distinct buckets: %v", mem.Conflicts())
	}
}

func TestRadixDisjointKeysConflictFree(t *testing.T) {
	mem := mtrace.NewMemory()
	r := NewRadix(mem, "pages", 16)
	r.Poke(0, 1) // pre-populate the interior node
	r.Poke(1, 1)
	mem.Start()
	r.Set(0, 0, 5)
	_ = r.Get(1, 1)
	mem.Stop()
	if !mem.ConflictFree() {
		t.Errorf("disjoint radix keys should not conflict: %v", mem.Conflicts())
	}
	if r.Get(0, 0) != 5 {
		t.Error("radix lost a value")
	}
}

func TestRealSharedVsRefcacheSemantics(t *testing.T) {
	var sc RealSharedCounter
	rc := NewRealRefcache(8, 10)
	var wg sync.WaitGroup
	for slot := 0; slot < 8; slot++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				sc.Inc(1)
				rc.Inc(s, 1)
			}
		}(slot)
	}
	wg.Wait()
	if sc.Read() != 8000 {
		t.Errorf("shared = %d", sc.Read())
	}
	if rc.Read() != 8010 {
		t.Errorf("refcache = %d", rc.Read())
	}
}

func TestRealIDAllocUniqueUnderConcurrency(t *testing.T) {
	a := NewRealIDAlloc(8)
	var mu sync.Mutex
	seen := map[int64]bool{}
	var wg sync.WaitGroup
	for slot := 0; slot < 8; slot++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			local := make([]int64, 0, 500)
			for i := 0; i < 500; i++ {
				local = append(local, a.Alloc(s))
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range local {
				if seen[id] {
					t.Errorf("duplicate id %d", id)
				}
				seen[id] = true
			}
		}(slot)
	}
	wg.Wait()
}

func TestRealLowestFDRule(t *testing.T) {
	tbl := NewRealLowestFD(4)
	if fd := tbl.Alloc(); fd != 0 {
		t.Errorf("first = %d", fd)
	}
	if fd := tbl.Alloc(); fd != 1 {
		t.Errorf("second = %d", fd)
	}
	tbl.Free(0)
	if fd := tbl.Alloc(); fd != 0 {
		t.Errorf("after free = %d, want lowest", fd)
	}
	tbl.Alloc()
	tbl.Alloc()
	if fd := tbl.Alloc(); fd != -1 {
		t.Errorf("full table = %d, want -1", fd)
	}
}

// Property: Refcache and a plain sum agree for any increment pattern.
func TestQuickRefcacheAgreesWithSum(t *testing.T) {
	f := func(deltas []int8) bool {
		mem := mtrace.NewMemory()
		r := NewRefcache(mem, "x", 0)
		var want int64
		for i, d := range deltas {
			r.Inc(i%NCores, int64(d))
			want += int64(d)
		}
		return r.Peek() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: HashDir behaves like a map for sequential ops.
func TestQuickHashDirMatchesMap(t *testing.T) {
	f := func(ops []uint16) bool {
		mem := mtrace.NewMemory()
		d := NewHashDir(mem, "dir", 64)
		ref := map[int64]int64{}
		for _, o := range ops {
			name := int64(o % 16)
			val := int64(o%7) + 1
			switch (o / 16) % 3 {
			case 0: // insert
				ok := d.Insert(0, name, val)
				_, had := ref[name]
				if ok == had {
					return false
				}
				if ok {
					ref[name] = val
				}
			case 1: // remove
				got, ok := d.Remove(0, name)
				want, had := ref[name]
				if ok != had || (ok && got != want) {
					return false
				}
				delete(ref, name)
			default: // lookup
				got, ok := d.Lookup(0, name)
				want, had := ref[name]
				if ok != had || (ok && got != want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
