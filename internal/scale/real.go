package scale

import (
	"sync"
	"sync/atomic"
)

// This file holds the real concurrent counterparts of the traced
// substrates. The traced versions feed MTRACE conflict analysis and the
// coherence simulator; these run on the host's actual cores so the
// benchmarks can corroborate the simulator's shapes on real hardware
// (§7's claim that conflict-free implementations scale and single shared
// cache lines do not).

// pad fills the rest of a cache line so adjacent counters never share one.
type paddedCounter struct {
	v atomic.Int64
	_ [7]int64
}

// RealSharedCounter is one atomic counter on one cache line: every
// increment from every core contends.
type RealSharedCounter struct {
	v atomic.Int64
	_ [7]int64
}

// Inc adds delta.
func (c *RealSharedCounter) Inc(delta int64) { c.v.Add(delta) }

// Read returns the value.
func (c *RealSharedCounter) Read() int64 { return c.v.Load() }

// RealRefcache is the Refcache-style scalable counter: per-slot padded
// deltas. Slots map to goroutines/cores; increments touch only the
// caller's line, reads reconcile all lines.
type RealRefcache struct {
	base  atomic.Int64
	slots []paddedCounter
}

// NewRealRefcache allocates a counter with the given slot count.
func NewRealRefcache(slots int, init int64) *RealRefcache {
	r := &RealRefcache{slots: make([]paddedCounter, slots)}
	r.base.Store(init)
	return r
}

// Inc adds delta from the given slot.
func (r *RealRefcache) Inc(slot int, delta int64) {
	r.slots[slot].v.Add(delta)
}

// Read reconciles the true value (reads every slot's line).
func (r *RealRefcache) Read() int64 {
	v := r.base.Load()
	for i := range r.slots {
		v += r.slots[i].v.Load()
	}
	return v
}

// RealIDAlloc allocates identifiers from per-slot pools: id = n*slots+slot,
// never reused, no shared state.
type RealIDAlloc struct {
	n     int
	slots []paddedCounter
}

// NewRealIDAlloc allocates an id allocator.
func NewRealIDAlloc(slots int) *RealIDAlloc {
	return &RealIDAlloc{n: slots, slots: make([]paddedCounter, slots)}
}

// Alloc returns a fresh id using only the slot's line.
func (a *RealIDAlloc) Alloc(slot int) int64 {
	n := a.slots[slot].v.Add(1) - 1
	return n*int64(a.n) + int64(slot)
}

// RealLowestFD implements POSIX's lowest-available-descriptor rule the way
// a faithful implementation must: a shared bitmap under a lock.
type RealLowestFD struct {
	mu   sync.Mutex
	used []bool
}

// NewRealLowestFD allocates a table with the given capacity.
func NewRealLowestFD(capacity int) *RealLowestFD {
	return &RealLowestFD{used: make([]bool, capacity)}
}

// Alloc returns the lowest free descriptor, or -1 when full.
func (t *RealLowestFD) Alloc() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, u := range t.used {
		if !u {
			t.used[i] = true
			return int64(i)
		}
	}
	return -1
}

// Free releases a descriptor.
func (t *RealLowestFD) Free(fd int64) {
	t.mu.Lock()
	t.used[fd] = false
	t.mu.Unlock()
}

// RealAnyFD implements O_ANYFD: per-slot descriptor partitions with no
// shared state at all.
type RealAnyFD struct {
	alloc *RealIDAlloc
}

// NewRealAnyFD allocates the partitioned table.
func NewRealAnyFD(slots int) *RealAnyFD { return &RealAnyFD{alloc: NewRealIDAlloc(slots)} }

// Alloc returns an unused descriptor for the slot.
func (t *RealAnyFD) Alloc(slot int) int64 { return t.alloc.Alloc(slot) }

// Free is a no-op: the partitioned space is large and ids are not reused
// within a benchmark run (ScaleFS's defer-work pattern).
func (t *RealAnyFD) Free(int64) {}
