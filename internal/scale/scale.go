// Package scale implements the scalable-implementation substrates that
// ScaleFS and RadixVM build on (§6.3 of the paper): Refcache-style scalable
// reference counters, per-core identifier allocation, radix arrays, hash
// directories with per-bucket locks, and seqlocks — plus their conventional
// non-scalable counterparts (shared counters, coarse locks) used by the
// Linux-like baseline kernel.
//
// Everything here operates on mtrace cells so the MTRACE checker can decide
// conflict-freedom; package scale also has real concurrent counterparts
// (see real.go) used by the hardware benchmarks.
package scale

import (
	"fmt"

	"repro/internal/mtrace"
)

// NCores is the number of simulated cores traced kernels provision for.
// Conflict tests use two; the Figure 7 curves replay traces for up to 80,
// matching the paper's testbed.
const NCores = 96

// SharedCounter is the conventional counter: one cell, so every increment
// conflicts with every other access — the "shared st_nlink" configuration
// of statbench.
type SharedCounter struct {
	cell *mtrace.Cell
}

// NewSharedCounter allocates a shared counter.
func NewSharedCounter(mem *mtrace.Memory, name string, init int64) *SharedCounter {
	return &SharedCounter{cell: mem.NewCell(name, init)}
}

// Inc adds delta from core.
func (c *SharedCounter) Inc(core int, delta int64) { c.cell.Add(core, delta) }

// Read returns the value from core.
func (c *SharedCounter) Read(core int) int64 { return c.cell.Load(core) }

// Set stores the value from core.
func (c *SharedCounter) Set(core int, v int64) { c.cell.Store(core, v) }

// Peek reads without tracing (setup/verification only).
func (c *SharedCounter) Peek() int64 { return c.cell.Peek() }

// Poke writes without tracing (setup only).
func (c *SharedCounter) Poke(v int64) { c.cell.Poke(v) }

// Refcache is a scalable reference counter modeled on Refcache [15]: each
// core holds a private delta cell (its own cache line), so increments and
// decrements are conflict-free across cores. Reading the true value must
// reconcile every per-core delta, which conflicts with concurrent updates —
// the cost statbench's fstat-with-Refcache configuration pays, and the cost
// fstatx avoids by not asking for the link count.
type Refcache struct {
	base   *mtrace.Cell
	deltas [NCores]*mtrace.Cell
}

// NewRefcache allocates a Refcache counter.
func NewRefcache(mem *mtrace.Memory, name string, init int64) *Refcache {
	r := &Refcache{base: mem.NewCell(name+".base", init)}
	for i := range r.deltas {
		r.deltas[i] = mem.NewCellf(0, "%s.delta[%d]", name, i)
	}
	return r
}

// Inc adds delta using only the invoking core's cache line.
func (r *Refcache) Inc(core int, delta int64) { r.deltas[core].Add(core, delta) }

// Read reconciles and returns the true count; it reads every core's delta
// cell, so it is conflict-free only against other readers.
func (r *Refcache) Read(core int) int64 {
	v := r.base.Load(core)
	for _, d := range r.deltas {
		v += d.Load(core)
	}
	return v
}

// Peek reads the true count without tracing.
func (r *Refcache) Peek() int64 {
	v := r.base.Peek()
	for _, d := range r.deltas {
		v += d.Peek()
	}
	return v
}

// Poke resets the count without tracing (setup only).
func (r *Refcache) Poke(v int64) {
	r.base.Poke(v)
	for _, d := range r.deltas {
		d.Poke(0)
	}
}

// IDAlloc allocates identifiers scalably: each core owns a monotonic
// counter whose values are interleaved by core number (id = n*NCores +
// core), ScaleFS's "per-core counter concatenated with the core number"
// scheme for inode numbers. Allocations on different cores are
// conflict-free and never collide, and identifiers are never reused.
type IDAlloc struct {
	next [NCores]*mtrace.Cell
}

// NewIDAlloc allocates an id allocator whose ids start at base.
func NewIDAlloc(mem *mtrace.Memory, name string, base int64) *IDAlloc {
	a := &IDAlloc{}
	for i := range a.next {
		a.next[i] = mem.NewCellf(base, "%s.next[%d]", name, i)
	}
	return a
}

// Alloc returns a fresh identifier using only core-local state.
func (a *IDAlloc) Alloc(core int) int64 {
	n := a.next[core].Load(core)
	a.next[core].Store(core, n+1)
	return n*NCores + int64(core)
}

// SpinLock is a test-and-set lock on one cell. Acquire/Release are
// read-modify-writes, so any two critical sections on different cores
// conflict — the signature of coarse-grained locking.
type SpinLock struct {
	cell *mtrace.Cell
}

// NewSpinLock allocates a lock.
func NewSpinLock(mem *mtrace.Memory, name string) *SpinLock {
	return &SpinLock{cell: mem.NewCell(name, 0)}
}

// Acquire takes the lock from core. The traced execution is sequential, so
// the lock is always free; the point is the recorded write.
func (l *SpinLock) Acquire(core int) {
	if l.cell.Add(core, 1) != 1 {
		panic("scale: lock " + l.cell.Name() + " already held")
	}
}

// Release drops the lock.
func (l *SpinLock) Release(core int) {
	if l.cell.Add(core, -1) != 0 {
		panic("scale: lock " + l.cell.Name() + " not held")
	}
}

// Seqlock lets writers version a record so lock-free readers can detect
// concurrent updates. Readers read only the version cell (shared-mode
// cacheable); writers bump it twice around the update.
type Seqlock struct {
	version *mtrace.Cell
}

// NewSeqlock allocates a seqlock.
func NewSeqlock(mem *mtrace.Memory, name string) *Seqlock {
	return &Seqlock{version: mem.NewCell(name, 0)}
}

// ReadBegin returns the version for a read-side critical section.
func (s *Seqlock) ReadBegin(core int) int64 { return s.version.Load(core) }

// ReadRetry reports whether the section observed a concurrent write.
func (s *Seqlock) ReadRetry(core int, v int64) bool {
	return s.version.Load(core) != v || v%2 != 0
}

// WriteBegin enters a write-side critical section.
func (s *Seqlock) WriteBegin(core int) { s.version.Add(core, 1) }

// WriteEnd leaves a write-side critical section.
func (s *Seqlock) WriteEnd(core int) { s.version.Add(core, 1) }

// HashDir is a directory represented as a fixed-size hash table with an
// independent lock and entry list per bucket (§1's file-creation example):
// operations on names that hash to different buckets are conflict-free.
type HashDir struct {
	mem     *mtrace.Memory
	name    string
	buckets []*dirBucket
}

type dirBucket struct {
	lock *SpinLock
	// entries maps name id -> entry cell holding the inode number; a
	// nil/absent entry means the name is unbound. Each entry is its own
	// cell so lookups of different names in one bucket stay conflict-
	// free (only bucket membership changes touch the list cell).
	list    *mtrace.Cell // version of the bucket's entry list
	entries map[int64]*mtrace.Cell
}

// NewHashDir allocates a directory with the given bucket count.
func NewHashDir(mem *mtrace.Memory, name string, nbuckets int) *HashDir {
	d := &HashDir{mem: mem, name: name}
	for i := 0; i < nbuckets; i++ {
		d.buckets = append(d.buckets, &dirBucket{
			lock:    NewSpinLock(mem, fmt.Sprintf("%s.bucket[%d].lock", name, i)),
			list:    mem.NewCellf(0, "%s.bucket[%d].list", name, i),
			entries: map[int64]*mtrace.Cell{},
		})
	}
	return d
}

func (d *HashDir) bucket(name int64) *dirBucket {
	// SplitMix64-style finalizer: high bits feed back into the low bits
	// that select the bucket, so structured name spaces spread evenly.
	h := uint64(name) * 0x9E3779B97F4A7C15
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	return d.buckets[h%uint64(len(d.buckets))]
}

// Lookup returns the inode bound to name, or (0, false). It reads the
// bucket's list version and the entry cell only.
func (d *HashDir) Lookup(core int, name int64) (int64, bool) {
	b := d.bucket(name)
	_ = b.list.Load(core)
	e, ok := b.entries[name]
	if !ok || e.Load(core) == 0 {
		return 0, false
	}
	return e.Load(core), true
}

// Exists reports whether name is bound, reading the same cells as Lookup.
// It exists as a distinct entry point because ScaleFS's "don't read unless
// necessary" pattern needs a name-existence check that skips the inode.
func (d *HashDir) Exists(core int, name int64) bool {
	_, ok := d.Lookup(core, name)
	return ok
}

// Insert binds name to inum under the bucket lock; it fails when the name
// is already bound.
func (d *HashDir) Insert(core int, name, inum int64) bool {
	b := d.bucket(name)
	b.lock.Acquire(core)
	defer b.lock.Release(core)
	e, ok := b.entries[name]
	if ok && e.Load(core) != 0 {
		return false
	}
	if !ok {
		e = d.mem.NewCellf(0, "%s.entry[%d]", d.name, name)
		d.installEntry(b, name, e)
		b.list.Add(core, 1)
	}
	e.Store(core, inum)
	return true
}

// installEntry adds an entry with a snapshot-reset hook removing it again:
// a stale entry would skip the bucket-list write a fresh directory's
// Insert performs (and add an entry read to lookups of an unbound name),
// changing the traced access pattern between replays.
func (d *HashDir) installEntry(b *dirBucket, name int64, e *mtrace.Cell) {
	d.mem.OnReset(func() { delete(b.entries, name) })
	b.entries[name] = e
}

// Remove unbinds name; it reports whether the name was bound.
func (d *HashDir) Remove(core int, name int64) (int64, bool) {
	b := d.bucket(name)
	b.lock.Acquire(core)
	defer b.lock.Release(core)
	e, ok := b.entries[name]
	if !ok || e.Load(core) == 0 {
		return 0, false
	}
	old := e.Load(core)
	e.Store(core, 0)
	return old, true
}

// Replace binds name to inum regardless of a prior binding, returning the
// old inode (0 if none). rename's destination update uses this.
func (d *HashDir) Replace(core int, name, inum int64) int64 {
	b := d.bucket(name)
	b.lock.Acquire(core)
	defer b.lock.Release(core)
	e, ok := b.entries[name]
	if !ok {
		e = d.mem.NewCellf(0, "%s.entry[%d]", d.name, name)
		d.installEntry(b, name, e)
		b.list.Add(core, 1)
	}
	old := e.Load(core)
	e.Store(core, inum)
	return old
}

// PokeInsert binds a name without tracing (setup only).
func (d *HashDir) PokeInsert(name, inum int64) {
	b := d.bucket(name)
	e, ok := b.entries[name]
	if !ok {
		e = d.mem.NewCellf(0, "%s.entry[%d]", d.name, name)
		d.installEntry(b, name, e)
	}
	e.Poke(inum)
}

// Radix is a two-level radix array (RadixVM's core structure): every slot
// is its own cell, so reads and writes of different keys are conflict-free,
// in contrast with balanced trees whose rebalancing shares interior nodes.
type Radix struct {
	mem   *mtrace.Memory
	name  string
	fan   int64
	roots map[int64]*radixNode
}

type radixNode struct {
	present *mtrace.Cell // interior slot: nonzero when the leaf array exists
	leaves  map[int64]*mtrace.Cell
}

// NewRadix allocates a radix array with the given fanout.
func NewRadix(mem *mtrace.Memory, name string, fan int64) *Radix {
	return &Radix{mem: mem, name: name, fan: fan, roots: map[int64]*radixNode{}}
}

func (r *Radix) node(key int64) *radixNode {
	slot := key / r.fan
	n, ok := r.roots[slot]
	if !ok {
		n = &radixNode{
			present: r.mem.NewCellf(0, "%s.node[%d]", r.name, slot),
			leaves:  map[int64]*mtrace.Cell{},
		}
		r.roots[slot] = n
	}
	return n
}

func (r *Radix) leaf(key int64) *mtrace.Cell {
	n := r.node(key)
	l, ok := n.leaves[key]
	if !ok {
		l = r.mem.NewCellf(0, "%s.leaf[%d]", r.name, key)
		n.leaves[key] = l
	}
	return l
}

// Get reads the value at key (0 when never set).
func (r *Radix) Get(core int, key int64) int64 {
	n := r.node(key)
	if n.present.Load(core) == 0 {
		return 0
	}
	return r.leaf(key).Load(core)
}

// Set stores the value at key, materializing the interior slot on first
// touch.
func (r *Radix) Set(core int, key int64, v int64) {
	n := r.node(key)
	if n.present.Load(core) == 0 {
		n.present.Store(core, 1)
	}
	r.leaf(key).Store(core, v)
}

// Poke stores without tracing (setup only).
func (r *Radix) Poke(key int64, v int64) {
	n := r.node(key)
	n.present.Poke(1)
	r.leaf(key).Poke(v)
}

// Materialize pre-populates the interior nodes covering keys [0, n)
// untraced, so first writes in that range touch only their own leaf cells.
// RadixVM similarly eagerly allocates interior nodes to keep concurrent
// first-touch of different slots conflict-free.
func (r *Radix) Materialize(n int64) {
	for k := int64(0); k < n; k += r.fan {
		r.node(k).present.Poke(1)
	}
	if n > 0 {
		r.node(n - 1).present.Poke(1)
	}
}
