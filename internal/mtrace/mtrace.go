// Package mtrace is a software-simulated, access-traced shared memory. It
// plays the role of the paper's qemu-based MTRACE (§5.3): kernel
// implementations under test perform all of their state accesses through
// tracked cells, and after running a test case's operations on distinct
// simulated cores, the tracer reports every access conflict — a cell
// written by one core and read or written by another — along with the
// cell's name, which stands in for MTRACE's DWARF-resolved C types.
//
// A cell models one cache line: accesses to the same cell from different
// cores conflict regardless of byte offsets, mirroring cache-line-granular
// coherence. Implementations decide cell placement, so false sharing is
// expressible (two fields in one cell) and avoidable (padding = separate
// cells), just as on real hardware.
package mtrace

import (
	"fmt"
	"sort"
)

// Memory is an allocator of traced cells plus the access recorder.
// It is not safe for concurrent use: conflict checking runs operations
// sequentially on simulated cores, which is exactly how the paper's MTRACE
// executes test cases (it logs accesses and analyzes them afterward).
type Memory struct {
	recording bool
	nextID    int
	accesses  []Access
}

// NewMemory returns an empty traced memory.
func NewMemory() *Memory { return &Memory{} }

// Access records one read or write of a cell by a core.
type Access struct {
	Cell  *Cell
	Core  int
	Write bool
}

// Cell is one traced cache line holding an int64 payload. Composite state
// is built from multiple cells; implementations pick the granularity.
type Cell struct {
	mem  *Memory
	id   int
	name string
	v    int64
}

// NewCell allocates a traced cell. The name should identify the data
// structure and field (e.g. "dentry[f0].refcnt") — it is what conflict
// reports show, like MTRACE's type+field output.
func (m *Memory) NewCell(name string, init int64) *Cell {
	m.nextID++
	return &Cell{mem: m, id: m.nextID, name: name, v: init}
}

// NewCellf allocates a traced cell with a formatted name.
func (m *Memory) NewCellf(init int64, format string, args ...any) *Cell {
	return m.NewCell(fmt.Sprintf(format, args...), init)
}

// Name returns the cell's diagnostic name.
func (c *Cell) Name() string { return c.name }

// ID returns the cell's unique id within its Memory; the coherence
// simulator uses it as the cache-line identity when replaying traces.
func (c *Cell) ID() int { return c.id }

// Load reads the cell from the given core.
func (c *Cell) Load(core int) int64 {
	c.record(core, false)
	return c.v
}

// Store writes the cell from the given core.
func (c *Cell) Store(core int, v int64) {
	c.record(core, true)
	c.v = v
}

// Add adds delta to the cell (a read-modify-write) and returns the new
// value.
func (c *Cell) Add(core int, delta int64) int64 {
	c.record(core, false)
	c.record(core, true)
	c.v += delta
	return c.v
}

// Peek reads the cell without recording an access. Use only outside traced
// regions (setup and verification code).
func (c *Cell) Peek() int64 { return c.v }

// Poke writes the cell without recording an access. Use only outside traced
// regions.
func (c *Cell) Poke(v int64) { c.v = v }

func (c *Cell) record(core int, write bool) {
	if c.mem.recording {
		c.mem.accesses = append(c.mem.accesses, Access{Cell: c, Core: core, Write: write})
	}
}

// Start clears the access log and begins recording (the test hypercall).
func (m *Memory) Start() {
	m.accesses = m.accesses[:0]
	m.recording = true
}

// Stop ends recording.
func (m *Memory) Stop() { m.recording = false }

// Accesses returns the recorded access log.
func (m *Memory) Accesses() []Access { return m.accesses }

// Conflict describes a cell that was written by one core and touched by
// another during the traced region.
type Conflict struct {
	// CellName identifies the shared data.
	CellName string
	// Writers and Readers list the cores that wrote/read the cell.
	Writers []int
	Readers []int
}

// Conflicts analyzes the access log and returns every conflicted cell,
// sorted by name. A cell conflicts when some core wrote it and a different
// core read or wrote it.
func (m *Memory) Conflicts() []Conflict {
	type stat struct {
		cell    *Cell
		writers map[int]bool
		readers map[int]bool
	}
	stats := map[int]*stat{}
	for _, a := range m.accesses {
		s := stats[a.Cell.id]
		if s == nil {
			s = &stat{cell: a.Cell, writers: map[int]bool{}, readers: map[int]bool{}}
			stats[a.Cell.id] = s
		}
		if a.Write {
			s.writers[a.Core] = true
		} else {
			s.readers[a.Core] = true
		}
	}
	var out []Conflict
	for _, s := range stats {
		if len(s.writers) == 0 {
			continue
		}
		conflicted := len(s.writers) > 1
		if !conflicted {
			var w int
			for c := range s.writers {
				w = c
			}
			for c := range s.readers {
				if c != w {
					conflicted = true
					break
				}
			}
		}
		if conflicted {
			out = append(out, Conflict{
				CellName: s.cell.name,
				Writers:  sortedCores(s.writers),
				Readers:  sortedCores(s.readers),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CellName < out[j].CellName })
	return out
}

// ConflictFree reports whether the traced region had no access conflicts.
func (m *Memory) ConflictFree() bool { return len(m.Conflicts()) == 0 }

func sortedCores(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

func (c Conflict) String() string {
	return fmt.Sprintf("%s (writers %v, readers %v)", c.CellName, c.Writers, c.Readers)
}
