// Package mtrace is a software-simulated, access-traced shared memory. It
// plays the role of the paper's qemu-based MTRACE (§5.3): kernel
// implementations under test perform all of their state accesses through
// tracked cells, and after running a test case's operations on distinct
// simulated cores, the tracer reports every access conflict — a cell
// written by one core and read or written by another — along with the
// cell's name, which stands in for MTRACE's DWARF-resolved C types.
//
// A cell models one cache line: accesses to the same cell from different
// cores conflict regardless of byte offsets, mirroring cache-line-granular
// coherence. Implementations decide cell placement, so false sharing is
// expressible (two fields in one cell) and avoidable (padding = separate
// cells), just as on real hardware.
//
// Conflict detection is online, like the real MTRACE's hypercall-driven
// analysis: each cell carries the epoch of its last touch plus writer and
// reader core bitmasks, updated inline on every traced access, so a traced
// region's verdict is a counter compare and Start is an epoch bump — no
// access log is appended or scanned. The detailed per-access log the
// coherence simulator replays (see Accesses) is opt-in via LogAccesses.
//
// The memory also supports nested snapshot/reset regions (Snapshot, Reset,
// Pop): inside a region every first write to a cell journals its old value,
// and Reset undoes the region's writes, which is how the checker replays
// many tests against one kernel instance instead of rebuilding it per test.
package mtrace

import (
	"fmt"
	"sort"
)

// maxCores bounds the simulated core numbers the conflict bitmasks can
// represent; it covers scale.NCores with headroom.
const maxCores = 128

// coreset is a fixed-width bitmask over simulated core numbers.
type coreset [maxCores / 64]uint64

func (s *coreset) add(core int) { s[core>>6] |= 1 << (core & 63) }

func (s coreset) empty() bool { return s[0]|s[1] == 0 }

// single reports whether exactly one bit is set.
func (s coreset) single() bool {
	switch {
	case s[1] == 0:
		return s[0] != 0 && s[0]&(s[0]-1) == 0
	case s[0] == 0:
		return s[1]&(s[1]-1) == 0
	}
	return false
}

// minus returns the cores in s that are not in o.
func (s coreset) minus(o coreset) coreset {
	return coreset{s[0] &^ o[0], s[1] &^ o[1]}
}

// cores lists the set bits in ascending order.
func (s coreset) cores() []int {
	var out []int
	for w, bits := range s {
		for bits != 0 {
			b := bits & (-bits)
			out = append(out, w*64+popLow(b))
			bits &^= b
		}
	}
	return out
}

// popLow returns the index of the (single) set bit in b.
func popLow(b uint64) int {
	n := 0
	for b > 1 {
		b >>= 1
		n++
	}
	return n
}

// Memory is an allocator of traced cells plus the access recorder.
// It is not safe for concurrent use: conflict checking runs operations
// sequentially on simulated cores, which is exactly how the paper's MTRACE
// executes test cases (it logs accesses and analyzes them afterward).
type Memory struct {
	recording bool
	logging   bool
	nextID    int
	accesses  []Access

	// Online conflict state: the current trace epoch, the cells touched in
	// it (for lazy Conflicts materialization), and the conflicted-cell
	// count that decides ConflictFree without any scan.
	epoch   uint64
	touched []*Cell
	nconf   int

	// Snapshot/reset journal: marks delimit nested regions; undo holds
	// journaled old cell values; hooks holds structural undo closures
	// registered via OnReset. jepoch dedups journaling to one entry per
	// cell per region.
	jepoch uint64
	undo   []undoEntry
	hooks  []func()
	marks  []mark
}

type undoEntry struct {
	cell *Cell
	v    int64
}

type mark struct {
	undo  int
	hooks int
}

// NewMemory returns an empty traced memory.
func NewMemory() *Memory { return &Memory{} }

// Access records one read or write of a cell by a core.
type Access struct {
	Cell  *Cell
	Core  int
	Write bool
}

// Cell is one traced cache line holding an int64 payload. Composite state
// is built from multiple cells; implementations pick the granularity.
type Cell struct {
	mem  *Memory
	id   int
	name string
	v    int64

	// Conflict state for the epoch the cell was last touched in; stale
	// (epoch != mem.epoch) state is reset lazily on first touch.
	epoch      uint64
	writers    coreset
	readers    coreset
	conflicted bool

	// jepoch is the journal epoch of the cell's last journaled write.
	jepoch uint64
}

// NewCell allocates a traced cell. The name should identify the data
// structure and field (e.g. "dentry[f0].refcnt") — it is what conflict
// reports show, like MTRACE's type+field output.
func (m *Memory) NewCell(name string, init int64) *Cell {
	m.nextID++
	return &Cell{mem: m, id: m.nextID, name: name, v: init}
}

// NewCellf allocates a traced cell with a formatted name.
func (m *Memory) NewCellf(init int64, format string, args ...any) *Cell {
	return m.NewCell(fmt.Sprintf(format, args...), init)
}

// Name returns the cell's diagnostic name.
func (c *Cell) Name() string { return c.name }

// ID returns the cell's unique id within its Memory; the coherence
// simulator uses it as the cache-line identity when replaying traces.
func (c *Cell) ID() int { return c.id }

// Load reads the cell from the given core.
func (c *Cell) Load(core int) int64 {
	c.record(core, false)
	return c.v
}

// Store writes the cell from the given core.
func (c *Cell) Store(core int, v int64) {
	c.record(core, true)
	c.journal()
	c.v = v
}

// Add adds delta to the cell (a read-modify-write) and returns the new
// value.
func (c *Cell) Add(core int, delta int64) int64 {
	c.record(core, false)
	c.record(core, true)
	c.journal()
	c.v += delta
	return c.v
}

// Peek reads the cell without recording an access. Use only outside traced
// regions (setup and verification code).
func (c *Cell) Peek() int64 { return c.v }

// Poke writes the cell without recording an access. Use only outside traced
// regions. Pokes are journaled like Stores, so setup applied inside a
// snapshot region is undone by Reset.
func (c *Cell) Poke(v int64) {
	c.journal()
	c.v = v
}

func (c *Cell) record(core int, write bool) {
	m := c.mem
	if !m.recording {
		return
	}
	if m.logging {
		m.accesses = append(m.accesses, Access{Cell: c, Core: core, Write: write})
	}
	if c.epoch != m.epoch {
		c.epoch = m.epoch
		c.writers, c.readers = coreset{}, coreset{}
		c.conflicted = false
		m.touched = append(m.touched, c)
	}
	if write {
		c.writers.add(core)
	} else {
		c.readers.add(core)
	}
	// A cell conflicts when some core wrote it and a different core read
	// or wrote it: more than one writer, or any reader outside the single
	// writer's bit.
	if !c.conflicted && !c.writers.empty() &&
		(!c.writers.single() || !c.readers.minus(c.writers).empty()) {
		c.conflicted = true
		m.nconf++
	}
}

// journal records the cell's value once per snapshot region, so Reset can
// restore it. A no-op outside snapshot regions.
func (c *Cell) journal() {
	m := c.mem
	if len(m.marks) == 0 || c.jepoch == m.jepoch {
		return
	}
	c.jepoch = m.jepoch
	m.undo = append(m.undo, undoEntry{cell: c, v: c.v})
}

// Start begins a fresh traced region (the test hypercall): an epoch bump
// invalidates every cell's conflict state lazily, nothing is scanned or
// cleared per cell.
func (m *Memory) Start() {
	m.epoch++
	m.touched = m.touched[:0]
	m.nconf = 0
	m.accesses = m.accesses[:0]
	m.recording = true
}

// Stop ends recording.
func (m *Memory) Stop() { m.recording = false }

// LogAccesses switches the per-access log on or off. The log exists for
// consumers that replay access sequences (the coherence simulator); the
// conflict checker itself never needs it, so it is off by default and the
// CHECK hot path pays nothing for it.
func (m *Memory) LogAccesses(on bool) { m.logging = on }

// Accesses returns a copy of the recorded access log (empty unless
// LogAccesses(true) was set before the traced region ran). It is a copy
// because the internal buffer is truncated and overwritten in place by the
// next Start; callers routinely hold the result across traced regions.
func (m *Memory) Accesses() []Access {
	if len(m.accesses) == 0 {
		return nil
	}
	out := make([]Access, len(m.accesses))
	copy(out, m.accesses)
	return out
}

// Conflict describes a cell that was written by one core and touched by
// another during the traced region.
type Conflict struct {
	// CellName identifies the shared data.
	CellName string
	// Writers and Readers list the cores that wrote/read the cell.
	Writers []int
	Readers []int
}

// Conflicts returns every conflicted cell of the last traced region,
// sorted by name. A cell conflicts when some core wrote it and a different
// core read or wrote it. The detailed report is materialized lazily from
// the touched-cell list — the common conflict-free region returns nil
// without any work.
func (m *Memory) Conflicts() []Conflict {
	if m.nconf == 0 {
		return nil
	}
	out := make([]Conflict, 0, m.nconf)
	for _, c := range m.touched {
		if !c.conflicted {
			continue
		}
		out = append(out, Conflict{
			CellName: c.name,
			Writers:  c.writers.cores(),
			Readers:  c.readers.cores(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CellName < out[j].CellName })
	return out
}

// ConflictFree reports whether the traced region had no access conflicts.
// It is a counter compare: conflicts are detected online as accesses are
// recorded.
func (m *Memory) ConflictFree() bool { return m.nconf == 0 }

func (c Conflict) String() string {
	return fmt.Sprintf("%s (writers %v, readers %v)", c.CellName, c.Writers, c.Readers)
}

// Snapshot opens a nested snapshot region: every subsequent write (Store,
// Add, Poke) journals the cell's prior value once, and structural changes
// can register undo closures via OnReset. Reset restores the state at the
// matching Snapshot. Regions nest; Pop merges the innermost region into
// its parent without restoring.
func (m *Memory) Snapshot() {
	m.marks = append(m.marks, mark{undo: len(m.undo), hooks: len(m.hooks)})
	m.jepoch++
}

// Reset undoes every journaled write and runs every OnReset hook of the
// innermost snapshot region, newest first, leaving the region open so the
// next test can run from the same state. It must not be called inside a
// traced region (Reset itself is untraced by design).
func (m *Memory) Reset() {
	if len(m.marks) == 0 {
		panic("mtrace: Reset without Snapshot")
	}
	mk := m.marks[len(m.marks)-1]
	for i := len(m.undo) - 1; i >= mk.undo; i-- {
		e := m.undo[i]
		e.cell.v = e.v
	}
	m.undo = m.undo[:mk.undo]
	for i := len(m.hooks) - 1; i >= mk.hooks; i-- {
		m.hooks[i]()
	}
	m.hooks = m.hooks[:mk.hooks]
	// New journal epoch: cells journaled in the finished generation must
	// journal again on their next write.
	m.jepoch++
}

// Pop closes the innermost snapshot region, merging its journal entries
// and hooks into the parent region instead of restoring them: a later
// Reset of the parent undoes both generations in reverse order, so the
// oldest value wins, exactly as if the inner region never existed.
func (m *Memory) Pop() {
	if len(m.marks) == 0 {
		panic("mtrace: Pop without Snapshot")
	}
	m.marks = m.marks[:len(m.marks)-1]
}

// Journaling reports whether a snapshot region is open.
func (m *Memory) Journaling() bool { return len(m.marks) > 0 }

// OnReset registers a structural undo closure on the innermost snapshot
// region — for state the journal cannot see (map entries, plain struct
// fields). Reset runs hooks newest-first after restoring cell values. A
// no-op outside snapshot regions, so implementation code can register
// hooks unconditionally at mutation sites.
func (m *Memory) OnReset(fn func()) {
	if len(m.marks) == 0 {
		return
	}
	m.hooks = append(m.hooks, fn)
}
