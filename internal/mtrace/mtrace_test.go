package mtrace

import (
	"testing"
	"testing/quick"
)

func TestNoConflictDisjointCells(t *testing.T) {
	m := NewMemory()
	a := m.NewCell("a", 0)
	b := m.NewCell("b", 0)
	m.Start()
	a.Store(0, 1)
	b.Store(1, 2)
	m.Stop()
	if !m.ConflictFree() {
		t.Errorf("disjoint writes conflict: %v", m.Conflicts())
	}
}

func TestSharedReadsDoNotConflict(t *testing.T) {
	m := NewMemory()
	a := m.NewCell("a", 7)
	m.Start()
	_ = a.Load(0)
	_ = a.Load(1)
	m.Stop()
	if !m.ConflictFree() {
		t.Errorf("read sharing conflicts: %v", m.Conflicts())
	}
}

func TestWriteReadConflict(t *testing.T) {
	m := NewMemory()
	a := m.NewCell("refcnt", 0)
	m.Start()
	a.Store(0, 1)
	_ = a.Load(1)
	m.Stop()
	cs := m.Conflicts()
	if len(cs) != 1 || cs[0].CellName != "refcnt" {
		t.Fatalf("conflicts = %v", cs)
	}
	if len(cs[0].Writers) != 1 || cs[0].Writers[0] != 0 {
		t.Errorf("writers = %v", cs[0].Writers)
	}
}

func TestWriteWriteConflict(t *testing.T) {
	m := NewMemory()
	a := m.NewCell("lock", 0)
	m.Start()
	a.Store(0, 1)
	a.Store(1, 2)
	m.Stop()
	if m.ConflictFree() {
		t.Error("write-write sharing not detected")
	}
}

func TestSameCoreNeverConflicts(t *testing.T) {
	m := NewMemory()
	a := m.NewCell("a", 0)
	m.Start()
	a.Store(0, 1)
	_ = a.Load(0)
	a.Add(0, 5)
	m.Stop()
	if !m.ConflictFree() {
		t.Errorf("single-core accesses conflict: %v", m.Conflicts())
	}
}

func TestAddIsReadModifyWrite(t *testing.T) {
	m := NewMemory()
	a := m.NewCell("ctr", 10)
	m.Start()
	if got := a.Add(0, 5); got != 15 {
		t.Errorf("Add = %d", got)
	}
	_ = a.Load(1)
	m.Stop()
	if m.ConflictFree() {
		t.Error("remote read of incremented counter must conflict")
	}
}

func TestPeekPokeUntraced(t *testing.T) {
	m := NewMemory()
	a := m.NewCell("a", 0)
	m.Start()
	a.Poke(9)
	if a.Peek() != 9 {
		t.Error("Poke/Peek roundtrip failed")
	}
	m.Stop()
	if len(m.Accesses()) != 0 {
		t.Error("Peek/Poke must not be recorded")
	}
}

func TestStartClearsLog(t *testing.T) {
	m := NewMemory()
	a := m.NewCell("a", 0)
	m.Start()
	a.Store(0, 1)
	a.Store(1, 1)
	m.Stop()
	m.Start()
	m.Stop()
	if !m.ConflictFree() {
		t.Error("Start must clear the previous access log")
	}
}

func TestAccessesOutsideRecordingIgnored(t *testing.T) {
	m := NewMemory()
	a := m.NewCell("a", 0)
	a.Store(0, 1) // before Start
	m.Start()
	m.Stop()
	a.Store(1, 2) // after Stop
	if len(m.Accesses()) != 0 {
		t.Error("accesses outside the traced region were recorded")
	}
}

func TestConflictsSortedByName(t *testing.T) {
	m := NewMemory()
	b := m.NewCell("b", 0)
	a := m.NewCell("a", 0)
	m.Start()
	b.Store(0, 1)
	b.Store(1, 1)
	a.Store(0, 1)
	a.Store(1, 1)
	m.Stop()
	cs := m.Conflicts()
	if len(cs) != 2 || cs[0].CellName != "a" || cs[1].CellName != "b" {
		t.Errorf("conflicts = %v", cs)
	}
}

// Property: a trace where every cell is touched by exactly one core is
// always conflict-free, regardless of the access pattern.
func TestQuickPerCoreAccessesConflictFree(t *testing.T) {
	f := func(ops []uint8) bool {
		m := NewMemory()
		cells := map[int]*Cell{}
		m.Start()
		for _, op := range ops {
			cellIdx := int(op>>2) % 8
			core := cellIdx % 4 // cell → fixed core
			c, ok := cells[cellIdx]
			if !ok {
				c = m.NewCellf(0, "c%d", cellIdx)
				cells[cellIdx] = c
			}
			if op&1 == 0 {
				c.Store(core, int64(op))
			} else {
				_ = c.Load(core)
			}
		}
		m.Stop()
		return m.ConflictFree()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: adding a remote write to any cell already touched by another
// core creates at least one conflict.
func TestQuickRemoteWriteConflicts(t *testing.T) {
	f := func(firstWrite bool) bool {
		m := NewMemory()
		c := m.NewCell("x", 0)
		m.Start()
		if firstWrite {
			c.Store(0, 1)
		} else {
			_ = c.Load(0)
		}
		c.Store(1, 2)
		m.Stop()
		return !m.ConflictFree()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
