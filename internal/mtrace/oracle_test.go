package mtrace

// Differential oracle for the online epoch/bitset conflict detector: a
// direct reimplementation of the legacy algorithm — scan the full access
// log, build per-cell writer/reader core maps, report cells with more
// than one writer or with a reader besides the single writer — is run on
// randomized multi-core access sequences and must agree with the online
// verdict and the lazily materialized []Conflict report.

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// legacyConflicts is the pre-epoch implementation, kept verbatim as the
// oracle: map-based post-hoc analysis over the access log.
func legacyConflicts(accesses []Access) []Conflict {
	type cellState struct {
		cell    *Cell
		writers map[int]bool
		readers map[int]bool
	}
	states := map[*Cell]*cellState{}
	var order []*cellState
	for _, a := range accesses {
		st := states[a.Cell]
		if st == nil {
			st = &cellState{cell: a.Cell, writers: map[int]bool{}, readers: map[int]bool{}}
			states[a.Cell] = st
			order = append(order, st)
		}
		if a.Write {
			st.writers[a.Core] = true
		} else {
			st.readers[a.Core] = true
		}
	}
	var out []Conflict
	for _, st := range order {
		conflict := len(st.writers) > 1
		if !conflict && len(st.writers) == 1 {
			var w int
			for core := range st.writers {
				w = core
			}
			for core := range st.readers {
				if core != w {
					conflict = true
					break
				}
			}
		}
		if conflict {
			out = append(out, Conflict{
				CellName: st.cell.Name(),
				Writers:  sortedCores(st.writers),
				Readers:  sortedCores(st.readers),
			})
		}
	}
	sortConflicts(out)
	return out
}

func sortedCores(set map[int]bool) []int {
	var out []int
	for c := range set {
		out = append(out, c)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func sortConflicts(cs []Conflict) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].CellName < cs[j-1].CellName; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

// scriptStep drives one traced access in the differential runs.
type scriptStep struct {
	cell  int
	core  int
	write bool
}

// runScript replays the steps on a fresh memory with the access log on and
// returns the online results plus the captured log for the oracle.
func runScript(t *testing.T, ncells int, steps []scriptStep) (bool, []Conflict, []Access) {
	t.Helper()
	m := NewMemory()
	m.LogAccesses(true)
	cells := make([]*Cell, ncells)
	for i := range cells {
		cells[i] = m.NewCellf(0, "cell%d", i)
	}
	m.Start()
	for _, s := range steps {
		if s.write {
			cells[s.cell].Store(s.core, 1)
		} else {
			cells[s.cell].Load(s.core)
		}
	}
	m.Stop()
	return m.ConflictFree(), m.Conflicts(), m.Accesses()
}

func TestOnlineMatchesLegacyOracle(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ncells := 1 + rng.Intn(8)
		// Core numbers deliberately straddle the 64-bit word boundary of
		// the coreset so both mask words are exercised.
		corePool := []int{0, 1, 2, 63, 64, 65, 95, 127}
		nsteps := rng.Intn(40)
		steps := make([]scriptStep, nsteps)
		for i := range steps {
			steps[i] = scriptStep{
				cell:  rng.Intn(ncells),
				core:  corePool[rng.Intn(len(corePool))],
				write: rng.Intn(2) == 0,
			}
		}
		free, got, log := runScript(t, ncells, steps)
		want := legacyConflicts(log)
		if free != (len(want) == 0) {
			t.Logf("seed %d: ConflictFree=%v but oracle found %d conflicts", seed, free, len(want))
			return false
		}
		if len(got) == 0 && len(want) == 0 {
			return true
		}
		if !reflect.DeepEqual(got, want) {
			t.Logf("seed %d:\n online: %v\n oracle: %v", seed, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestOnlineMatchesLegacyAcrossEpochs reruns several traced regions on the
// same memory: the epoch bump must fully isolate regions (stale bitset
// state from one region must never leak a conflict into the next).
func TestOnlineMatchesLegacyAcrossEpochs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := NewMemory()
	m.LogAccesses(true)
	cells := make([]*Cell, 6)
	for i := range cells {
		cells[i] = m.NewCellf(0, "cell%d", i)
	}
	for round := 0; round < 200; round++ {
		m.Start()
		nsteps := rng.Intn(25)
		for i := 0; i < nsteps; i++ {
			c := cells[rng.Intn(len(cells))]
			core := rng.Intn(96)
			switch rng.Intn(3) {
			case 0:
				c.Load(core)
			case 1:
				c.Store(core, int64(i))
			case 2:
				c.Add(core, 1)
			}
		}
		m.Stop()
		want := legacyConflicts(m.Accesses())
		if m.ConflictFree() != (len(want) == 0) {
			t.Fatalf("round %d: ConflictFree=%v, oracle conflicts=%d",
				round, m.ConflictFree(), len(want))
		}
		got := m.Conflicts()
		if len(got) != len(want) {
			t.Fatalf("round %d: online %v != oracle %v", round, got, want)
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("round %d: online %v != oracle %v", round, got, want)
			}
		}
	}
}

// TestAccessesReturnsCopy is the regression test for the aliasing bug: the
// slice returned by Accesses must survive a subsequent Start truncating
// and overwriting the internal buffer.
func TestAccessesReturnsCopy(t *testing.T) {
	m := NewMemory()
	m.LogAccesses(true)
	a := m.NewCell("a", 0)
	b := m.NewCell("b", 0)

	m.Start()
	a.Store(0, 1)
	a.Load(1)
	m.Stop()
	log := m.Accesses()
	if len(log) != 2 || log[0].Cell != a || !log[0].Write || log[1].Cell != a || log[1].Write {
		t.Fatalf("unexpected first log: %+v", log)
	}

	// A second traced region reuses the internal buffer in place; the
	// previously returned slice must not change.
	m.Start()
	b.Load(5)
	b.Store(6, 2)
	m.Stop()
	if log[0].Cell != a || log[0].Core != 0 || !log[0].Write {
		t.Fatalf("Accesses result aliased internal buffer: %+v", log[0])
	}
	if log[1].Cell != a || log[1].Core != 1 || log[1].Write {
		t.Fatalf("Accesses result aliased internal buffer: %+v", log[1])
	}

	log2 := m.Accesses()
	if len(log2) != 2 || log2[0].Cell != b || log2[1].Cell != b {
		t.Fatalf("unexpected second log: %+v", log2)
	}
}

// TestAccessLogOptIn pins that the detailed log is off by default (the
// CHECK hot path must not pay for it) and that conflicts are still
// detected without it.
func TestAccessLogOptIn(t *testing.T) {
	m := NewMemory()
	c := m.NewCell("c", 0)
	m.Start()
	c.Store(0, 1)
	c.Load(1)
	m.Stop()
	if got := m.Accesses(); got != nil {
		t.Fatalf("access log recorded without LogAccesses(true): %+v", got)
	}
	if m.ConflictFree() {
		t.Fatal("conflict missed with access log disabled")
	}
	want := []Conflict{{CellName: "c", Writers: []int{0}, Readers: []int{1}}}
	if got := m.Conflicts(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Conflicts() = %v, want %v", got, want)
	}
}
