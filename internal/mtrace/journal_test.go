package mtrace

import (
	"math/rand"
	"testing"
)

// TestSnapshotResetRestoresValues covers the journal basics: Store, Add,
// and Poke inside a region are all undone by Reset, repeatedly.
func TestSnapshotResetRestoresValues(t *testing.T) {
	m := NewMemory()
	a := m.NewCell("a", 10)
	b := m.NewCell("b", 20)
	c := m.NewCell("c", 30)

	m.Snapshot()
	for round := 0; round < 3; round++ {
		m.Start()
		a.Store(0, 111)
		b.Add(1, 5)
		m.Stop()
		c.Poke(333)
		if a.Peek() != 111 || b.Peek() != 25 || c.Peek() != 333 {
			t.Fatalf("round %d: writes not applied: %d %d %d", round, a.Peek(), b.Peek(), c.Peek())
		}
		m.Reset()
		if a.Peek() != 10 || b.Peek() != 20 || c.Peek() != 30 {
			t.Fatalf("round %d: Reset did not restore: %d %d %d", round, a.Peek(), b.Peek(), c.Peek())
		}
	}
	m.Pop()
	if m.Journaling() {
		t.Fatal("Journaling() true after final Pop")
	}
}

// TestNestedSnapshotRegions checks that Reset only rolls back the
// innermost region, and Pop merges the inner journal into the outer one so
// the outer Reset restores through both generations.
func TestNestedSnapshotRegions(t *testing.T) {
	m := NewMemory()
	x := m.NewCell("x", 1)

	m.Snapshot() // outer
	x.Poke(2)
	m.Snapshot() // inner
	x.Poke(3)
	m.Reset() // inner reset: back to 2
	if got := x.Peek(); got != 2 {
		t.Fatalf("inner Reset: x = %d, want 2", got)
	}
	x.Poke(4)
	m.Pop()   // merge inner region (x=2 recorded there) into outer
	x.Poke(5) // outer-region write after the merge
	m.Reset() // outer reset: through both generations back to 1
	if got := x.Peek(); got != 1 {
		t.Fatalf("outer Reset: x = %d, want 1", got)
	}
	m.Pop()
}

// TestOnResetHooks checks hook ordering (newest first, after value
// restore) and region scoping.
func TestOnResetHooks(t *testing.T) {
	m := NewMemory()
	v := m.NewCell("v", 0)
	var trace []string

	m.OnReset(func() { t.Fatal("hook registered outside any region ran") })

	m.Snapshot()
	v.Poke(9)
	m.OnReset(func() {
		if v.Peek() != 0 {
			t.Errorf("hook ran before value restore: v = %d", v.Peek())
		}
		trace = append(trace, "first")
	})
	m.OnReset(func() { trace = append(trace, "second") })
	m.Reset()
	if len(trace) != 2 || trace[0] != "second" || trace[1] != "first" {
		t.Fatalf("hook order = %v, want [second first]", trace)
	}

	// Hooks are consumed by Reset: a second Reset of the same region must
	// not rerun them.
	m.Reset()
	if len(trace) != 2 {
		t.Fatalf("hooks reran on second Reset: %v", trace)
	}
	m.Pop()
}

// TestJournalDedupsPerRegion pins that a cell journals its pre-region
// value even when written many times, and journals again after Reset
// opens a new generation.
func TestJournalDedupsPerRegion(t *testing.T) {
	m := NewMemory()
	c := m.NewCell("c", 7)
	m.Snapshot()
	for i := 0; i < 100; i++ {
		c.Poke(int64(i))
	}
	if len(m.undo) != 1 {
		t.Fatalf("journal has %d entries for one cell, want 1", len(m.undo))
	}
	m.Reset()
	if c.Peek() != 7 {
		t.Fatalf("c = %d after Reset, want 7", c.Peek())
	}
	c.Poke(42)
	m.Reset()
	if c.Peek() != 7 {
		t.Fatalf("c = %d after second-generation Reset, want 7", c.Peek())
	}
	m.Pop()
}

// TestResetRandomized fuzzes the journal: random writes inside a region
// must always restore to the pre-region snapshot taken by Peek.
func TestResetRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMemory()
	cells := make([]*Cell, 20)
	for i := range cells {
		cells[i] = m.NewCellf(int64(rng.Intn(100)), "cell%d", i)
	}
	m.Snapshot()
	for round := 0; round < 50; round++ {
		want := make([]int64, len(cells))
		for i, c := range cells {
			want[i] = c.Peek()
		}
		nwrites := rng.Intn(60)
		for i := 0; i < nwrites; i++ {
			c := cells[rng.Intn(len(cells))]
			switch rng.Intn(3) {
			case 0:
				c.Poke(int64(rng.Intn(1000)))
			case 1:
				m.Start()
				c.Store(rng.Intn(96), int64(rng.Intn(1000)))
				m.Stop()
			case 2:
				m.Start()
				c.Add(rng.Intn(96), int64(rng.Intn(10)))
				m.Stop()
			}
		}
		m.Reset()
		for i, c := range cells {
			if c.Peek() != want[i] {
				t.Fatalf("round %d: cell%d = %d, want %d", round, i, c.Peek(), want[i])
			}
		}
	}
	m.Pop()
}
