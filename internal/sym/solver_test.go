package sym

import (
	"testing"
	"testing/quick"
)

func TestSolveSimpleEquality(t *testing.T) {
	fn := Uninterpreted("Filename")
	a, b := Var("a", fn), Var("b", fn)
	var s Solver

	m, ok := s.Solve(Eq(a, b))
	if !ok {
		t.Fatal("a==b should be satisfiable")
	}
	if m["a"].Int != m["b"].Int {
		t.Errorf("model does not satisfy a==b: %v", m)
	}

	m, ok = s.Solve(Ne(a, b))
	if !ok {
		t.Fatal("a!=b should be satisfiable")
	}
	if m["a"].Int == m["b"].Int {
		t.Errorf("model does not satisfy a!=b: %v", m)
	}

	if s.Sat(And(Eq(a, b), Ne(a, b))) {
		t.Error("a==b && a!=b should be unsat")
	}
}

func TestSolveIntArithmetic(t *testing.T) {
	x, y := Var("x", IntSort), Var("y", IntSort)
	var s Solver
	e := And(Eq(Add(x, y), Int(3)), Lt(x, y), Ge(x, Int(0)))
	m, ok := s.Solve(e)
	if !ok {
		t.Fatal("x+y=3, x<y, x>=0 should be satisfiable")
	}
	if m["x"].Int+m["y"].Int != 3 || m["x"].Int >= m["y"].Int || m["x"].Int < 0 {
		t.Errorf("bad model %v", m)
	}
}

func TestSolveUnsatArithmetic(t *testing.T) {
	x := Var("x", IntSort)
	var s Solver
	if s.Sat(And(Lt(x, Int(0)), Gt(x, Int(0)))) {
		t.Error("x<0 && x>0 should be unsat")
	}
}

func TestValid(t *testing.T) {
	p := Var("p", BoolSort)
	var s Solver
	if !s.Valid(Or(p, Not(p))) {
		t.Error("p || !p should be valid")
	}
	if s.Valid(p) {
		t.Error("p alone should not be valid")
	}
}

func TestEnumerateCountsBooleans(t *testing.T) {
	p, q := Var("p", BoolSort), Var("q", BoolSort)
	var s Solver
	n := 0
	s.Enumerate(Or(p, q), func(Model) bool { n++; return true })
	if n != 3 {
		t.Errorf("p||q has 3 models over booleans, enumerated %d", n)
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	p, q := Var("p", BoolSort), Var("q", BoolSort)
	var s Solver
	n := 0
	s.Enumerate(Or(p, q), func(Model) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("enumeration should stop after 2 callbacks, got %d", n)
	}
}

func TestSmallModelPropertyDomains(t *testing.T) {
	// Three pairwise-distinct uninterpreted variables require a domain of
	// at least three elements; the solver must find a model.
	fn := Uninterpreted("Filename")
	a, b, c := Var("a", fn), Var("b", fn), Var("c", fn)
	var s Solver
	e := And(Ne(a, b), Ne(b, c), Ne(a, c))
	m, ok := s.Solve(e)
	if !ok {
		t.Fatal("three distinct names should be satisfiable")
	}
	if m["a"].Int == m["b"].Int || m["b"].Int == m["c"].Int || m["a"].Int == m["c"].Int {
		t.Errorf("bad model %v", m)
	}
}

func TestSolveWithUninterpretedConstants(t *testing.T) {
	fn := Uninterpreted("Filename")
	a := Var("a", fn)
	var s Solver
	e := And(Ne(a, Const(fn, 0)), Ne(a, Const(fn, 1)))
	m, ok := s.Solve(e)
	if !ok {
		t.Fatal("a distinct from two constants should be satisfiable")
	}
	if m["a"].Int == 0 || m["a"].Int == 1 {
		t.Errorf("bad model %v", m)
	}
}

func TestIteSolving(t *testing.T) {
	x := Var("x", IntSort)
	p := Var("p", BoolSort)
	var s Solver
	// ite(p, 1, 2) == x && p  forces x == 1.
	e := And(Eq(Ite(p, Int(1), Int(2)), x), p)
	m, ok := s.Solve(e)
	if !ok {
		t.Fatal("should be satisfiable")
	}
	if m["x"].Int != 1 || !m["p"].Bool {
		t.Errorf("bad model %v", m)
	}
}

func TestSolverBudget(t *testing.T) {
	// A formula with many integer variables blows the tiny step budget.
	var e *Expr = True
	for i := 0; i < 8; i++ {
		e = And(e, Ne(Var(string(rune('a'+i)), IntSort), Int(100)))
	}
	s := Solver{MaxSteps: 10}
	if s.Sat(e) {
		// Finding a model quickly is fine too; just ensure no panic.
		return
	}
	if !s.Budget() {
		t.Error("unsat result under tiny budget should report budget exhaustion")
	}
}

// Property: any model returned by Solve actually satisfies the formula.
func TestQuickSolveModelsSatisfy(t *testing.T) {
	fn := Uninterpreted("T")
	a, b, c := Var("a", fn), Var("b", fn), Var("c", fn)
	x := Var("x", IntSort)
	f := func(w1, w2, w3 bool, k int8) bool {
		var conj []*Expr
		if w1 {
			conj = append(conj, Eq(a, b))
		} else {
			conj = append(conj, Ne(a, b))
		}
		if w2 {
			conj = append(conj, Eq(b, c))
		} else {
			conj = append(conj, Ne(b, c))
		}
		if w3 {
			conj = append(conj, Lt(x, Int(int64(k%4))))
		} else {
			conj = append(conj, Ge(x, Int(int64(k%4))))
		}
		e := And(conj...)
		var s Solver
		m, ok := s.Solve(e)
		if !ok {
			return true // unsat is acceptable for some combinations
		}
		return m.EvalBool(e)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
