package sym

import (
	"sync"
	"sync/atomic"
	"weak"
)

// This file implements hash-consing for expressions: every node built by
// the package constructors is interned, so structurally equal live
// expressions are pointer-equal and expression "trees" are really DAGs
// that share common subterms. Interning is what makes the rest of the
// engine cheap:
//
//   - syntactic equality (structEq, And/Or dedup, Eq canonicalization) is
//     a pointer comparison instead of a tree walk,
//   - derived per-node data — the free-variable list, an unfolded size
//     estimate, the rendered canonical form — is computed once per node
//     and cached on it, turning repeated O(tree) walks (variable ordering,
//     cone-of-influence computation, canonical ordering keys) into O(1)
//     lookups,
//   - evaluation and substitution memoize on node identity, so shared
//     subterms are visited once per call instead of once per occurrence.
//
// The interner is process-wide and shared by every symx.Context rather
// than per-context: path conditions for the 171 operation pairs of a cold
// sweep share most of their structure (the same initial-state invariants
// and key-equality guards recur in every pair), and a shared table lets
// concurrent sweep workers reuse each other's nodes while keeping the
// public constructor API (sym.And, sym.Eq, ...) unchanged. The table is
// sharded to keep lock contention negligible; nodes are immutable after
// publication, so readers never lock.
//
// Entries are weak references: the pipeline builds unbounded transient
// formulas (every cone-of-influence query, every path condition of every
// explored path), and a strong table would pin all of them for the
// process lifetime, growing the live heap — and with it every GC mark
// phase — without bound. Weak entries let dead expressions be collected;
// each shard compacts its dead entries away once they outnumber the
// insertions since the last sweep. Two structurally equal *live* nodes
// still cannot coexist: a node is only rebuilt after every strong
// reference to its predecessor is gone.

// internShardCount is a power of two sizing the lock shards.
const internShardCount = 64

type internShard struct {
	mu sync.Mutex
	m  map[uint64][]weak.Pointer[Expr]
	// inserts counts insertions since the last full compaction; the
	// insertion-driven sweep in intern() amortizes dead-entry cleanup so
	// the table stays proportional to the live expression population.
	inserts int
}

// interner is the process-wide hash-consing table.
type interner struct {
	shards [internShardCount]internShard
	nextID atomic.Uint64
}

func newInterner() *interner {
	it := &interner{}
	for i := range it.shards {
		it.shards[i].m = make(map[uint64][]weak.Pointer[Expr])
	}
	return it
}

var defaultInterner = newInterner()

// Process-wide intern-table traffic counters. A hit means a constructor
// returned an already-live node (structure sharing paid off); a miss
// means a new node was interned. They are monotonically increasing for
// the process lifetime, so observers (the obs metrics layer, per-pair
// sweep deltas) read them as totals and difference snapshots themselves.
var internHitCount, internMissCount atomic.Uint64

// InternStats returns the process-wide intern-table hit and miss totals.
func InternStats() (hits, misses uint64) {
	return internHitCount.Load(), internMissCount.Load()
}

// maxSize caps the unfolded-size estimate so heavily shared DAGs (whose
// tree unfolding grows exponentially) cannot overflow it. The cap is far
// above every memoization threshold, so capping loses nothing.
const maxSize = 1 << 30

const fnvOffset, fnvPrime = 14695981039346656037, 1099511628211

func hashMix(h, v uint64) uint64 { return (h ^ v) * fnvPrime }

// hashNode computes the structural hash of a prospective node from its
// components. Children contribute their interning ids, which is sound
// because children are always interned before their parents and ids are
// never reused while the child is reachable.
func hashNode(op Op, sort Sort, i64 int64, b bool, name string, args []*Expr) uint64 {
	h := uint64(fnvOffset)
	h = hashMix(h, uint64(op))
	h = hashMix(h, uint64(sort.Kind))
	for i := 0; i < len(sort.Name); i++ {
		h = hashMix(h, uint64(sort.Name[i]))
	}
	h = hashMix(h, uint64(i64))
	if b {
		h = hashMix(h, 1)
	}
	for i := 0; i < len(name); i++ {
		h = hashMix(h, uint64(name[i]))
	}
	h = hashMix(h, uint64(len(args)))
	for _, a := range args {
		h = hashMix(h, a.id)
	}
	return h
}

// matches reports whether the interned node e is exactly the node described
// by the components. Children compare by pointer: they are interned.
func matches(e *Expr, op Op, sort Sort, i64 int64, b bool, name string, args []*Expr) bool {
	if e.Op != op || e.Sort != sort || e.Int != i64 || e.Bool != b || e.Name != name || len(e.Args) != len(args) {
		return false
	}
	for i, a := range args {
		if e.Args[i] != a {
			return false
		}
	}
	return true
}

// intern returns the canonical node for the given components, creating and
// publishing it on first use. args must already be interned and must not be
// mutated by the caller afterwards.
func intern(op Op, sort Sort, i64 int64, b bool, name string, args []*Expr) *Expr {
	it := defaultInterner
	h := hashNode(op, sort, i64, b, name, args)
	sh := &it.shards[h&(internShardCount-1)]
	sh.mu.Lock()
	bucket := sh.m[h]
	compact := false
	for _, wp := range bucket {
		e := wp.Value()
		if e == nil {
			compact = true
			continue
		}
		if matches(e, op, sort, i64, b, name, args) {
			if compact {
				sh.m[h] = compactBucket(bucket)
			}
			sh.mu.Unlock()
			internHitCount.Add(1)
			return e
		}
	}
	e := &Expr{Op: op, Sort: sort, Int: i64, Bool: b, Name: name, Args: args}
	if op == OpVar {
		e.VarID = internVar(name)
	}
	e.id = it.nextID.Add(1)
	e.size = 1
	for _, a := range args {
		e.size += a.size
		if e.size > maxSize {
			e.size = maxSize
			break
		}
	}
	e.vars = mergeVars(e, args)
	if compact {
		bucket = compactBucket(bucket)
	}
	// All fields are set before the node becomes reachable; the shard
	// mutex publishes it to other goroutines.
	sh.m[h] = append(bucket, weak.Make(e))
	sh.inserts++
	if sh.inserts >= 4096 && sh.inserts >= 2*len(sh.m) {
		sh.compact()
	}
	sh.mu.Unlock()
	internMissCount.Add(1)
	return e
}

// compactBucket drops cleared entries from one bucket.
func compactBucket(bucket []weak.Pointer[Expr]) []weak.Pointer[Expr] {
	out := bucket[:0]
	for _, wp := range bucket {
		if wp.Value() != nil {
			out = append(out, wp)
		}
	}
	return out
}

// compact sweeps the whole shard, dropping entries whose expressions have
// been collected. Called with the shard lock held, amortized against the
// insertions since the previous sweep.
func (sh *internShard) compact() {
	for h, bucket := range sh.m {
		nb := compactBucket(bucket)
		if len(nb) == 0 {
			delete(sh.m, h)
		} else {
			sh.m[h] = nb
		}
	}
	sh.inserts = 0
}

// mergeVars computes the free variables of a node in first-occurrence
// DFS order — identical to walking the unfolded tree left to right and
// keeping first appearances — by merging the (already ordered) child
// lists. The result is shared and must never be mutated.
func mergeVars(e *Expr, args []*Expr) []*Expr {
	if e.Op == OpVar {
		return []*Expr{e}
	}
	total, nonEmpty := 0, 0
	var last []*Expr
	for _, a := range args {
		if len(a.vars) > 0 {
			total += len(a.vars)
			nonEmpty++
			last = a.vars
		}
	}
	switch nonEmpty {
	case 0:
		return nil
	case 1:
		return last
	}
	out := make([]*Expr, 0, total)
	if total <= 16 {
		for _, a := range args {
		vloop:
			for _, v := range a.vars {
				for _, o := range out {
					if o == v {
						continue vloop
					}
				}
				out = append(out, v)
			}
		}
		return out
	}
	seen := make(map[*Expr]struct{}, total)
	for _, a := range args {
		for _, v := range a.vars {
			if _, ok := seen[v]; ok {
				continue
			}
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	return out
}

// varsOf returns e's free variables in first-occurrence order, without
// copying. Callers must not mutate the result. Non-interned nodes (hand
// built test literals) fall back to a walk.
func varsOf(e *Expr) []*Expr {
	if e.id != 0 {
		return e.vars
	}
	var out []*Expr
	seen := map[string]bool{}
	var walk func(x *Expr)
	walk = func(x *Expr) {
		if x.Op == OpVar {
			if !seen[x.Name] {
				seen[x.Name] = true
				out = append(out, x)
			}
			return
		}
		for _, a := range x.Args {
			walk(a)
		}
	}
	walk(e)
	return out
}
