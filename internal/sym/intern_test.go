package sym

import (
	"runtime"
	"testing"
)

// TestInterningPointerEquality pins the hash-consing contract: equal
// constructions return the same node, across every constructor shape.
func TestInterningPointerEquality(t *testing.T) {
	x, y := Var("ix", IntSort), Var("iy", IntSort)
	fn := Uninterpreted("Filename")
	cases := [][2]*Expr{
		{Var("ix", IntSort), x},
		{Int(42), Int(42)},
		{Const(fn, 3), Const(fn, 3)},
		{Bool(true), True},
		{Not(Eq(x, y)), Not(Eq(x, y))},
		{Eq(x, y), Eq(y, x)}, // canonical argument order
		{And(Lt(x, y), Le(y, Int(2))), And(Lt(x, y), Le(y, Int(2)))},
		{Or(Eq(x, y), Lt(x, y)), Or(Eq(x, y), Lt(x, y))},
		{Add(x, y), Add(x, y)},
		{Ite(Lt(x, y), x, y), Ite(Lt(x, y), x, y)},
	}
	for i, c := range cases {
		if c[0] != c[1] {
			t.Errorf("case %d: structurally equal expressions are distinct pointers: %v vs %v", i, c[0], c[1])
		}
	}
	if Int(42) == Int(43) || Var("ix", IntSort) == Var("iy", IntSort) {
		t.Error("distinct expressions interned to one node")
	}
}

// TestInterningDistinctSorts pins that sort is part of node identity: one
// name at two sorts yields two nodes, and equal element ids of different
// uninterpreted sorts stay distinct.
func TestInterningDistinctSorts(t *testing.T) {
	if Var("sortedvar", IntSort) == Var("sortedvar", BoolSort) {
		t.Error("same name at different sorts interned to one node")
	}
	if Const(Uninterpreted("A"), 1) == Const(Uninterpreted("B"), 1) {
		t.Error("element 1 of different uninterpreted sorts interned to one node")
	}
}

// TestCachedVarsOrder pins that the cached variable list preserves
// first-occurrence DFS order — the solver's chronological assignment
// heuristic depends on it.
func TestCachedVarsOrder(t *testing.T) {
	a, b, c := Var("ova", IntSort), Var("ovb", IntSort), Var("ovc", IntSort)
	e := And(Lt(b, c), Eq(a, b), Lt(a, Int(2)))
	got := varsInOrder(e)
	want := []*Expr{b, c, a}
	if len(got) != len(want) {
		t.Fatalf("varsInOrder returned %d vars, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("varsInOrder[%d] = %s, want %s", i, got[i].Name, want[i].Name)
		}
	}
	// Vars sorts the same set by name.
	vs := Vars(e)
	if len(vs) != 3 || vs[0] != a || vs[1] != b || vs[2] != c {
		t.Errorf("Vars = %v", vs)
	}
}

// TestInternedStringCached pins that rendering is stable and cached
// renders match fresh ones.
func TestInternedStringCached(t *testing.T) {
	x, y := Var("sx", IntSort), Var("sy", IntSort)
	e := And(Lt(x, y), Eq(Add(x, Int(1)), y))
	first := e.String()
	if second := e.String(); second != first {
		t.Errorf("cached render differs: %q vs %q", first, second)
	}
	ref := &Expr{Op: OpAnd, Sort: BoolSort, Args: e.Args}
	if ref.String() != first {
		t.Errorf("cached render %q differs from uncached reference %q", first, ref.String())
	}
}

// TestInterningSurvivesGC exercises the weak table across collections:
// transient expressions may be reclaimed and rebuilt, but construction
// stays consistent (pointer equality within a live generation, no stale
// matches, no panics from cleared entries).
func TestInterningSurvivesGC(t *testing.T) {
	for round := 0; round < 5; round++ {
		var keep *Expr
		for i := 0; i < 2000; i++ {
			x := Var("gcx", IntSort)
			e := And(Lt(x, Int(int64(i))), Ne(x, Int(int64(i)+1)))
			if i == 1999 {
				keep = e
			}
			_ = e
		}
		runtime.GC()
		x := Var("gcx", IntSort)
		again := And(Lt(x, Int(1999)), Ne(x, Int(2000)))
		if keep != again {
			t.Fatalf("round %d: live expression lost its identity after GC", round)
		}
	}
}
