package sym

import (
	"fmt"
	"sort"
	"time"
)

// Value is a concrete value assigned to a variable by a model.
type Value struct {
	Sort Sort
	Int  int64 // integer value, or uninterpreted element id
	Bool bool
}

func (v Value) String() string {
	switch v.Sort.Kind {
	case KindBool:
		return fmt.Sprintf("%v", v.Bool)
	case KindInt:
		return fmt.Sprintf("%d", v.Int)
	default:
		return fmt.Sprintf("%s!%d", v.Sort.Name, v.Int)
	}
}

// Model maps variable names to concrete values.
type Model map[string]Value

// Eval evaluates e under m; it panics if e contains variables not bound by m.
func (m Model) Eval(e *Expr) Value {
	v, ok := partialEval(e, m)
	if !ok {
		panic("sym: Eval with incomplete model for " + e.String())
	}
	return v
}

// EvalBool evaluates a boolean expression under m.
func (m Model) EvalBool(e *Expr) bool { return m.Eval(e).Bool }

// TryEval evaluates e as far as m determines it; ok reports whether the
// value is decided. Useful as a cheap satisfiability witness check.
func (m Model) TryEval(e *Expr) (Value, bool) { return partialEval(e, m) }

// EvalInt evaluates an integer or uninterpreted expression under m.
func (m Model) EvalInt(e *Expr) int64 { return m.Eval(e).Int }

// Clone returns a copy of the model.
func (m Model) Clone() Model {
	out := make(Model, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Memoization thresholds for partialEval and Substitute. Hash-consed
// expressions are DAGs: a shared subterm appears once but is reachable
// along many paths, and a naive recursive walk revisits it once per path.
// A per-call memo keyed on node identity makes the walk linear in DAG
// size. Small expressions skip the memo (map traffic would cost more than
// the recomputation), and leaf-adjacent nodes are never stored.
const (
	evalMemoMinSize  = 64 // whole-expression size that turns the memo on
	evalMemoNodeSize = 16 // smallest node worth a memo entry
)

type evalResult struct {
	v  Value
	ok bool
}

// partialEval evaluates e as far as the (possibly partial) assignment
// allows. The second result reports whether the value is determined. Boolean
// connectives short-circuit so that, e.g., a conjunction with one known-false
// conjunct is known false even when other conjuncts mention unassigned
// variables — this drives search-space pruning.
func partialEval(e *Expr, m Model) (Value, bool) {
	var memo map[*Expr]evalResult
	if e.size >= evalMemoMinSize {
		memo = make(map[*Expr]evalResult)
	}
	return peval(e, m, memo)
}

func peval(e *Expr, m Model, memo map[*Expr]evalResult) (Value, bool) {
	useMemo := memo != nil && e.size >= evalMemoNodeSize
	if useMemo {
		if r, ok := memo[e]; ok {
			return r.v, r.ok
		}
	}
	v, ok := pevalNode(e, m, memo)
	if useMemo {
		memo[e] = evalResult{v, ok}
	}
	return v, ok
}

func pevalNode(e *Expr, m Model, memo map[*Expr]evalResult) (Value, bool) {
	switch e.Op {
	case OpConst:
		return Value{Sort: e.Sort, Int: e.Int, Bool: e.Bool}, true
	case OpVar:
		v, ok := m[e.Name]
		return v, ok
	case OpNot:
		v, ok := peval(e.Args[0], m, memo)
		if !ok {
			return Value{}, false
		}
		return Value{Sort: BoolSort, Bool: !v.Bool}, true
	case OpAnd:
		all := true
		for _, a := range e.Args {
			v, ok := peval(a, m, memo)
			if !ok {
				all = false
				continue
			}
			if !v.Bool {
				return Value{Sort: BoolSort, Bool: false}, true
			}
		}
		return Value{Sort: BoolSort, Bool: true}, all
	case OpOr:
		all := true
		for _, a := range e.Args {
			v, ok := peval(a, m, memo)
			if !ok {
				all = false
				continue
			}
			if v.Bool {
				return Value{Sort: BoolSort, Bool: true}, true
			}
		}
		return Value{Sort: BoolSort, Bool: false}, all
	case OpEq:
		a, aok := peval(e.Args[0], m, memo)
		b, bok := peval(e.Args[1], m, memo)
		if !aok || !bok {
			return Value{}, false
		}
		var eq bool
		if a.Sort.Kind == KindBool {
			eq = a.Bool == b.Bool
		} else {
			eq = a.Int == b.Int
		}
		return Value{Sort: BoolSort, Bool: eq}, true
	case OpLt, OpLe:
		a, aok := peval(e.Args[0], m, memo)
		b, bok := peval(e.Args[1], m, memo)
		if !aok || !bok {
			return Value{}, false
		}
		if e.Op == OpLt {
			return Value{Sort: BoolSort, Bool: a.Int < b.Int}, true
		}
		return Value{Sort: BoolSort, Bool: a.Int <= b.Int}, true
	case OpAdd, OpSub, OpMul:
		a, aok := peval(e.Args[0], m, memo)
		b, bok := peval(e.Args[1], m, memo)
		if !aok || !bok {
			return Value{}, false
		}
		var r int64
		switch e.Op {
		case OpAdd:
			r = a.Int + b.Int
		case OpSub:
			r = a.Int - b.Int
		default:
			r = a.Int * b.Int
		}
		return Value{Sort: IntSort, Int: r}, true
	case OpIte:
		c, cok := peval(e.Args[0], m, memo)
		if !cok {
			// Both branches agreeing would still determine the value.
			a, aok := peval(e.Args[1], m, memo)
			b, bok := peval(e.Args[2], m, memo)
			if aok && bok && a.Sort == b.Sort && a.Int == b.Int && a.Bool == b.Bool {
				return a, true
			}
			return Value{}, false
		}
		if c.Bool {
			return peval(e.Args[1], m, memo)
		}
		return peval(e.Args[2], m, memo)
	}
	panic("sym: unknown op")
}

// asn is the solver's internal assignment: dense arrays indexed by the
// interned variable id, avoiding string hashing on the search hot path.
type asn struct {
	vals []Value
	set  []bool
}

// evalBoolIdx and evalIntIdx mirror partialEval over an array-indexed
// assignment, specialized by result kind so the hot search loop moves
// (bool, bool) and (int64, bool) pairs instead of fat Value structs. They
// must stay in sync with partialEval; they exist because assignment
// lookups dominate the solver's profile, so they stay lean recursions
// with no memo — solver conjuncts are small after conjunction splitting,
// and wrapper or map traffic here costs more than subterm re-walks save.
func evalBoolIdx(e *Expr, a *asn) (res, known bool) {
	switch e.Op {
	case OpConst:
		return e.Bool, true
	case OpVar:
		if e.VarID < len(a.set) && a.set[e.VarID] {
			return a.vals[e.VarID].Bool, true
		}
		return false, false
	case OpNot:
		v, ok := evalBoolIdx(e.Args[0], a)
		return !v, ok
	case OpAnd:
		all := true
		for _, x := range e.Args {
			v, ok := evalBoolIdx(x, a)
			if !ok {
				all = false
				continue
			}
			if !v {
				return false, true
			}
		}
		return true, all
	case OpOr:
		all := true
		for _, x := range e.Args {
			v, ok := evalBoolIdx(x, a)
			if !ok {
				all = false
				continue
			}
			if v {
				return true, true
			}
		}
		return false, all
	case OpEq:
		if e.Args[0].Sort.Kind == KindBool {
			x, xok := evalBoolIdx(e.Args[0], a)
			y, yok := evalBoolIdx(e.Args[1], a)
			if !xok || !yok {
				return false, false
			}
			return x == y, true
		}
		x, xok := evalIntIdx(e.Args[0], a)
		y, yok := evalIntIdx(e.Args[1], a)
		if !xok || !yok {
			return false, false
		}
		return x == y, true
	case OpLt, OpLe:
		x, xok := evalIntIdx(e.Args[0], a)
		y, yok := evalIntIdx(e.Args[1], a)
		if !xok || !yok {
			return false, false
		}
		if e.Op == OpLt {
			return x < y, true
		}
		return x <= y, true
	}
	panic("sym: non-boolean op in evalBoolIdx")
}

// evalIntIdx evaluates integer and uninterpreted-sort expressions (both
// carry their value in Int) over an array-indexed assignment.
func evalIntIdx(e *Expr, a *asn) (res int64, known bool) {
	switch e.Op {
	case OpConst:
		return e.Int, true
	case OpVar:
		if e.VarID < len(a.set) && a.set[e.VarID] {
			return a.vals[e.VarID].Int, true
		}
		return 0, false
	case OpAdd, OpSub, OpMul:
		x, xok := evalIntIdx(e.Args[0], a)
		y, yok := evalIntIdx(e.Args[1], a)
		if !xok || !yok {
			return 0, false
		}
		switch e.Op {
		case OpAdd:
			return x + y, true
		case OpSub:
			return x - y, true
		default:
			return x * y, true
		}
	case OpIte:
		c, cok := evalBoolIdx(e.Args[0], a)
		if !cok {
			// Both branches agreeing would still determine the value.
			x, xok := evalIntIdx(e.Args[1], a)
			y, yok := evalIntIdx(e.Args[2], a)
			if xok && yok && x == y {
				return x, true
			}
			return 0, false
		}
		if c {
			return evalIntIdx(e.Args[1], a)
		}
		return evalIntIdx(e.Args[2], a)
	}
	panic("sym: non-integer op in evalIntIdx")
}

// Solver finds finite models of boolean expressions. The zero value is
// ready to use; IntRadius widens the integer candidate domain.
//
// A Solver is single-flight: it reuses internal search state across
// calls, so it must not be invoked re-entrantly (e.g. starting another
// Solve from inside an Enumerate callback) or concurrently. Use separate
// Solver values for nested or parallel searches.
type Solver struct {
	// IntRadius is the half-width of the neighborhood around each integer
	// constant included in the candidate domain (default 2).
	IntRadius int64
	// MaxSteps bounds the backtracking search (default 5,000,000 node
	// visits). When the budget is exhausted, Solve/Sat report
	// unsatisfiable and Budget reports true: the result is "unknown", and
	// callers that treat it as a definite "no" under-approximate.
	MaxSteps int
	// Stop, when non-nil, is polled every stopCheckMask+1 node visits of
	// the backtracking search; when it returns true the search aborts
	// exactly like budget exhaustion (unsatisfiable + Budget() true). It
	// is how context cancellation reaches a long-running search: the
	// symbolic executor installs a hook that reports ctx.Err() != nil, so
	// a cancelled pipeline stops mid-search instead of at the next
	// between-searches checkpoint.
	Stop func() bool

	steps    int
	exceeded bool
	stats    SolverStats

	// Reusable assignment arrays, sized by the largest interned variable
	// id seen. Backtracking always unsets what it set, so the arrays are
	// clean between searches and only ever need growing.
	asnVals []Value
	asnSet  []bool
}

// SolverStats counts one Solver's search work since construction. A
// Solver is single-flight, so reads are only consistent between calls —
// the pipeline snapshots stats per pair to attribute solver work to the
// pair that caused it.
type SolverStats struct {
	// SatCalls counts backtracking searches started (every public
	// entry point — Solve, Sat, Enumerate, SatAssuming — funnels into
	// exactly one search; syntactic short-circuits that avoid the search
	// entirely are not counted).
	SatCalls int64
	// BudgetHits counts searches that exhausted MaxSteps (or were aborted
	// by the Stop hook): answers that are "unknown", not proofs.
	BudgetHits int64
	// SearchTime is the wall time spent inside searches.
	SearchTime time.Duration
}

// Stats returns the cumulative search counters.
func (s *Solver) Stats() SolverStats { return s.stats }

// Budget reports whether the previous Solve/Sat/Enumerate/SatAssuming call
// ran out of steps before exhausting the search space — i.e. whether an
// unsatisfiable answer from that call is actually "unknown". A search
// interrupted by the Stop hook reports the same way: its negative answer
// is not a proof either.
func (s *Solver) Budget() bool { return s.exceeded }

// stopCheckMask throttles the Stop hook to one poll per 1024 node visits:
// frequent enough that cancellation lands within microseconds, cheap
// enough that the hook (typically a ctx.Err() check behind a mutex) never
// shows up in search profiles.
const stopCheckMask = 1<<10 - 1

type domain struct {
	v    *Expr
	vals []Value
}

// domains computes a finite candidate domain for every free variable of
// the conjunct list.
//
// Booleans get {false, true}. Each uninterpreted sort gets element ids
// 0..n-1 where n = (#variables of that sort) + (#distinct constants of that
// sort): by the small-model property of equality logic this is sufficient.
// Integers get the union of neighborhoods around every integer constant in
// the formula plus a small default range.
func (s *Solver) domains(conjs []*Expr) []domain {
	var vars []*Expr
	seenVar := map[string]bool{}
	for _, c := range conjs {
		for _, v := range varsInOrder(c) {
			if !seenVar[v.Name] {
				seenVar[v.Name] = true
				vars = append(vars, v)
			}
		}
	}
	sortVarCount := map[Sort]int{}
	sortConsts := map[Sort]map[int64]bool{}
	intConsts := map[int64]bool{0: true, 1: true}
	// The constant walk memoizes on node identity: shared subterms of the
	// hash-consed DAG contribute their constants once.
	visited := map[*Expr]bool{}
	var walk func(x *Expr)
	walk = func(x *Expr) {
		if x.id != 0 {
			if visited[x] {
				return
			}
			visited[x] = true
		}
		if x.Op == OpConst {
			switch x.Sort.Kind {
			case KindInt:
				intConsts[x.Int] = true
			case KindUnint:
				if sortConsts[x.Sort] == nil {
					sortConsts[x.Sort] = map[int64]bool{}
				}
				sortConsts[x.Sort][x.Int] = true
			}
		}
		for _, a := range x.Args {
			walk(a)
		}
	}
	for _, c := range conjs {
		walk(c)
	}
	for _, v := range vars {
		if v.Sort.Kind == KindUnint {
			sortVarCount[v.Sort]++
		}
	}

	radius := s.IntRadius
	if radius == 0 {
		radius = 1
	}
	intDomain := map[int64]bool{}
	for c := range intConsts {
		for d := -radius; d <= radius; d++ {
			intDomain[c+d] = true
		}
	}
	intVals := make([]int64, 0, len(intDomain))
	for v := range intDomain {
		intVals = append(intVals, v)
	}
	sort.Slice(intVals, func(i, j int) bool { return intVals[i] < intVals[j] })

	// Candidate value slices are shared between same-sort variables (and
	// never mutated by the search), so each is built once per call.
	var sharedIntVals []Value
	sortVals := map[Sort][]Value{}
	doms := make([]domain, 0, len(vars))
	for _, v := range vars {
		var vals []Value
		switch v.Sort.Kind {
		case KindBool:
			vals = boolVals
		case KindInt:
			if sharedIntVals == nil {
				sharedIntVals = make([]Value, 0, len(intVals))
				for _, iv := range intVals {
					sharedIntVals = append(sharedIntVals, Value{Sort: IntSort, Int: iv})
				}
			}
			vals = sharedIntVals
		case KindUnint:
			if vals = sortVals[v.Sort]; vals == nil {
				n := sortVarCount[v.Sort]
				ids := map[int64]bool{}
				for id := range sortConsts[v.Sort] {
					ids[id] = true
				}
				next := int64(0)
				for len(ids) < n+len(sortConsts[v.Sort]) || len(ids) == 0 {
					if !ids[next] {
						ids[next] = true
					}
					next++
				}
				ordered := make([]int64, 0, len(ids))
				for id := range ids {
					ordered = append(ordered, id)
				}
				sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
				for _, id := range ordered {
					vals = append(vals, Value{Sort: v.Sort, Int: id})
				}
				sortVals[v.Sort] = vals
			}
		}
		doms = append(doms, domain{v: v, vals: vals})
	}
	return doms
}

// boolVals is the shared candidate domain of every boolean variable.
var boolVals = []Value{{Sort: BoolSort, Bool: false}, {Sort: BoolSort, Bool: true}}

// Solve returns a model of e, or ok=false if e is unsatisfiable over the
// finite candidate domains (or the step budget was exceeded; see Budget).
func (s *Solver) Solve(e *Expr) (Model, bool) {
	return s.solveConjs(Conjuncts(e))
}

func (s *Solver) solveConjs(conjs []*Expr) (Model, bool) {
	var found Model
	s.enumerateConjs(conjs, func(m Model) bool {
		found = m.Clone() // the emitted map is reused by the enumerator
		return false      // stop at first model
	})
	return found, found != nil
}

// Sat reports whether e is satisfiable over the finite candidate domains.
func (s *Solver) Sat(e *Expr) bool {
	_, ok := s.Solve(e)
	return ok
}

// Valid reports whether e holds in every model over the candidate domains
// (i.e. its negation is unsatisfiable).
func (s *Solver) Valid(e *Expr) bool { return !s.Sat(Not(e)) }

// Enumerate invokes cb for each model of e until cb returns false or the
// space is exhausted. The Model passed to cb is reused; clone it to keep it.
func (s *Solver) Enumerate(e *Expr, cb func(Model) bool) {
	if e.IsFalse() {
		s.steps, s.exceeded = 0, false
		return
	}
	s.enumerateConjs(Conjuncts(e), cb)
}

// enumerateConjs is Enumerate over an implicit conjunction, without
// requiring the caller to materialize an And node (cone-of-influence
// queries assemble conjunct lists on the fly, and interning a transient
// conjunction per query would churn the intern table for no benefit).
//
// The search evaluates each conjunct exactly once per candidate — at the
// depth where its last free variable gets assigned — so pruning costs are
// proportional to the conjunct, not the whole formula.
func (s *Solver) enumerateConjs(conjs []*Expr, cb func(Model) bool) {
	s.steps = 0
	s.exceeded = false
	s.stats.SatCalls++
	searchStart := time.Now()
	defer func() {
		s.stats.SearchTime += time.Since(searchStart)
		if s.exceeded {
			s.stats.BudgetHits++
		}
	}()
	for _, c := range conjs {
		if c.IsFalse() {
			return
		}
	}
	doms := s.domains(conjs)
	varIdx := make(map[string]int, len(doms))
	for i, d := range doms {
		varIdx[d.v.Name] = i
	}

	// completedAt[i] lists conjuncts whose variables are all assigned
	// once doms[i] has a value.
	completedAt := make([][]*Expr, len(doms))
	for _, conj := range conjs {
		if conj.IsTrue() {
			continue
		}
		last := -1
		for _, v := range varsInOrder(conj) {
			if idx := varIdx[v.Name]; idx > last {
				last = idx
			}
		}
		if last < 0 {
			// Ground conjunct: constructors fold these, but guard anyway.
			if v, ok := partialEval(conj, Model{}); ok && !v.Bool {
				return
			}
			continue
		}
		completedAt[last] = append(completedAt[last], conj)
	}

	maxSteps := s.MaxSteps
	if maxSteps == 0 {
		maxSteps = 5_000_000
	}
	maxID := 0
	for _, d := range doms {
		if d.v.VarID > maxID {
			maxID = d.v.VarID
		}
	}
	if len(s.asnVals) <= maxID {
		s.asnVals = make([]Value, maxID+1)
		s.asnSet = make([]bool, maxID+1)
	}
	a := &asn{vals: s.asnVals, set: s.asnSet}
	// The emitted Model is one reusable map, cleared and refilled per
	// model (the documented Enumerate contract): dense enumerations with
	// filtering callbacks would otherwise allocate a map per model.
	reused := make(Model, len(doms))
	emit := func() bool {
		clear(reused)
		for _, d := range doms {
			reused[d.v.Name] = a.vals[d.v.VarID]
		}
		return cb(reused)
	}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(doms) {
			return emit()
		}
		d := doms[i]
		id := d.v.VarID
	next:
		for _, val := range d.vals {
			s.steps++
			if s.steps > maxSteps ||
				(s.Stop != nil && s.steps&stopCheckMask == 0 && s.Stop()) {
				s.exceeded = true
				a.set[id] = false // keep the reusable arrays clean
				return false
			}
			a.vals[id] = val
			a.set[id] = true
			for _, conj := range completedAt[i] {
				v, ok := evalBoolIdx(conj, a)
				if !ok {
					panic("sym: completed conjunct left undetermined: " + conj.String())
				}
				if !v {
					continue next // prune this value
				}
			}
			if !rec(i + 1) {
				a.set[id] = false
				return false
			}
		}
		a.set[id] = false
		return true
	}
	rec(0)
}

// Conjuncts splits a top-level conjunction (a non-And expression is its own
// single conjunct; True yields none).
func Conjuncts(e *Expr) []*Expr {
	if e.IsTrue() {
		return nil
	}
	if e.Op == OpAnd {
		return e.Args
	}
	return []*Expr{e}
}

// SatAssuming decides satisfiability of base ∧ extra given that base is
// already known satisfiable. It restricts the search to extra's cone of
// influence: the conjuncts of base transitively sharing variables with
// extra. Conjuncts outside the cone share no variables with it, so a model
// of the cone extends to a full model by reusing any model of base —
// soundness and completeness both follow from that disjointness. The
// returned model binds only cone variables.
func (s *Solver) SatAssuming(base, extra *Expr) (Model, bool) {
	return s.SatAssumingConjs(Conjuncts(base), extra)
}

// SatAssumingConjs is SatAssuming with the base formula given as its
// conjunct list. Callers that maintain path conditions as incremental
// conjunct lists (the symbolic executor) query directly, avoiding the
// construction of a conjunction node per feasibility check.
func (s *Solver) SatAssumingConjs(conjs []*Expr, extra *Expr) (Model, bool) {
	if extra.IsTrue() {
		s.exceeded = false // no search ran, so no truncation
		return Model{}, true
	}
	if extra.IsFalse() {
		s.exceeded = false
		return nil, false
	}
	type entry struct {
		e    *Expr
		vars []*Expr
		used bool
	}
	entries := make([]entry, len(conjs))
	for i, c := range conjs {
		entries[i] = entry{e: c, vars: varsInOrder(c)}
	}
	inCone := map[string]bool{}
	for _, v := range varsInOrder(extra) {
		inCone[v.Name] = true
	}
	nCone := 1
	for changed := true; changed; {
		changed = false
		for i := range entries {
			if entries[i].used {
				continue
			}
			touches := false
			for _, v := range entries[i].vars {
				if inCone[v.Name] {
					touches = true
					break
				}
			}
			if !touches {
				continue
			}
			entries[i].used = true
			changed = true
			nCone++
			for _, v := range entries[i].vars {
				inCone[v.Name] = true
			}
		}
	}
	// extra goes first (its own top-level conjuncts spliced so each
	// prunes independently), then the cone's base conjuncts in
	// chronological order. Leading with extra assigns its variables at
	// the top of the search tree, so when base ∧ extra is unsatisfiable
	// the contradiction surfaces after a handful of assignments instead
	// of after enumerating every base-satisfying prefix — and
	// unsatisfiable queries are exactly the expensive ones, since a
	// satisfiable query stops at its first model either way. The answer
	// is order-independent (the search is complete over the same
	// domains); only which model is found first changes, and SatAssuming
	// models feed heuristic witness caches, never outputs.
	ordered := make([]*Expr, 0, nCone)
	ordered = append(ordered, Conjuncts(extra)...)
	for i := range entries {
		if entries[i].used {
			ordered = append(ordered, entries[i].e)
		}
	}
	return s.solveConjs(ordered)
}

// varsInOrder returns free variables in first-occurrence order. Because
// conjunctions preserve construction order, this matches the chronological
// order in which path conditions constrained the variables, so assigning in
// this order lets partial evaluation prune failed prefixes early.
//
// For interned expressions this is the node's cached variable list,
// computed once at construction; the result must not be mutated.
func varsInOrder(e *Expr) []*Expr { return varsOf(e) }

// Substitute replaces variables in e according to bind, returning the
// simplified result. Variables absent from bind are left in place.
func Substitute(e *Expr, bind map[string]*Expr) *Expr {
	var memo map[*Expr]*Expr
	if e.size >= evalMemoMinSize {
		memo = make(map[*Expr]*Expr)
	}
	return subst(e, bind, memo)
}

func subst(e *Expr, bind map[string]*Expr, memo map[*Expr]*Expr) *Expr {
	// Subtrees mentioning no bound variable are unchanged; the cached
	// variable list makes this prune O(vars) instead of O(tree).
	if e.id != 0 {
		hit := false
		for _, v := range e.vars {
			if _, ok := bind[v.Name]; ok {
				hit = true
				break
			}
		}
		if !hit {
			return e
		}
	}
	useMemo := memo != nil && e.size >= evalMemoNodeSize
	if useMemo {
		if r, ok := memo[e]; ok {
			return r
		}
	}
	r := substNode(e, bind, memo)
	if useMemo {
		memo[e] = r
	}
	return r
}

func substNode(e *Expr, bind map[string]*Expr, memo map[*Expr]*Expr) *Expr {
	switch e.Op {
	case OpConst:
		return e
	case OpVar:
		if r, ok := bind[e.Name]; ok {
			if r.Sort != e.Sort {
				panic("sym: Substitute sort mismatch for " + e.Name)
			}
			return r
		}
		return e
	}
	args := make([]*Expr, len(e.Args))
	changed := false
	for i, a := range e.Args {
		args[i] = subst(a, bind, memo)
		if args[i] != a {
			changed = true
		}
	}
	if !changed {
		return e
	}
	switch e.Op {
	case OpNot:
		return Not(args[0])
	case OpAnd:
		return And(args...)
	case OpOr:
		return Or(args...)
	case OpEq:
		return Eq(args[0], args[1])
	case OpLt:
		return Lt(args[0], args[1])
	case OpLe:
		return Le(args[0], args[1])
	case OpAdd:
		return Add(args[0], args[1])
	case OpSub:
		return Sub(args[0], args[1])
	case OpMul:
		return Mul(args[0], args[1])
	case OpIte:
		return Ite(args[0], args[1], args[2])
	}
	panic("sym: unknown op in Substitute")
}
