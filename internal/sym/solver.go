package sym

import (
	"fmt"
	"sort"
)

// Value is a concrete value assigned to a variable by a model.
type Value struct {
	Sort Sort
	Int  int64 // integer value, or uninterpreted element id
	Bool bool
}

func (v Value) String() string {
	switch v.Sort.Kind {
	case KindBool:
		return fmt.Sprintf("%v", v.Bool)
	case KindInt:
		return fmt.Sprintf("%d", v.Int)
	default:
		return fmt.Sprintf("%s!%d", v.Sort.Name, v.Int)
	}
}

// Model maps variable names to concrete values.
type Model map[string]Value

// Eval evaluates e under m; it panics if e contains variables not bound by m.
func (m Model) Eval(e *Expr) Value {
	v, ok := partialEval(e, m)
	if !ok {
		panic("sym: Eval with incomplete model for " + e.String())
	}
	return v
}

// EvalBool evaluates a boolean expression under m.
func (m Model) EvalBool(e *Expr) bool { return m.Eval(e).Bool }

// TryEval evaluates e as far as m determines it; ok reports whether the
// value is decided. Useful as a cheap satisfiability witness check.
func (m Model) TryEval(e *Expr) (Value, bool) { return partialEval(e, m) }

// EvalInt evaluates an integer or uninterpreted expression under m.
func (m Model) EvalInt(e *Expr) int64 { return m.Eval(e).Int }

// Clone returns a copy of the model.
func (m Model) Clone() Model {
	out := make(Model, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// partialEval evaluates e as far as the (possibly partial) assignment
// allows. The second result reports whether the value is determined. Boolean
// connectives short-circuit so that, e.g., a conjunction with one known-false
// conjunct is known false even when other conjuncts mention unassigned
// variables — this drives search-space pruning.
func partialEval(e *Expr, m Model) (Value, bool) {
	switch e.Op {
	case OpConst:
		return Value{Sort: e.Sort, Int: e.Int, Bool: e.Bool}, true
	case OpVar:
		v, ok := m[e.Name]
		return v, ok
	case OpNot:
		v, ok := partialEval(e.Args[0], m)
		if !ok {
			return Value{}, false
		}
		return Value{Sort: BoolSort, Bool: !v.Bool}, true
	case OpAnd:
		all := true
		for _, a := range e.Args {
			v, ok := partialEval(a, m)
			if !ok {
				all = false
				continue
			}
			if !v.Bool {
				return Value{Sort: BoolSort, Bool: false}, true
			}
		}
		return Value{Sort: BoolSort, Bool: true}, all
	case OpOr:
		all := true
		for _, a := range e.Args {
			v, ok := partialEval(a, m)
			if !ok {
				all = false
				continue
			}
			if v.Bool {
				return Value{Sort: BoolSort, Bool: true}, true
			}
		}
		return Value{Sort: BoolSort, Bool: false}, all
	case OpEq:
		a, aok := partialEval(e.Args[0], m)
		b, bok := partialEval(e.Args[1], m)
		if !aok || !bok {
			return Value{}, false
		}
		var eq bool
		if a.Sort.Kind == KindBool {
			eq = a.Bool == b.Bool
		} else {
			eq = a.Int == b.Int
		}
		return Value{Sort: BoolSort, Bool: eq}, true
	case OpLt, OpLe:
		a, aok := partialEval(e.Args[0], m)
		b, bok := partialEval(e.Args[1], m)
		if !aok || !bok {
			return Value{}, false
		}
		if e.Op == OpLt {
			return Value{Sort: BoolSort, Bool: a.Int < b.Int}, true
		}
		return Value{Sort: BoolSort, Bool: a.Int <= b.Int}, true
	case OpAdd, OpSub, OpMul:
		a, aok := partialEval(e.Args[0], m)
		b, bok := partialEval(e.Args[1], m)
		if !aok || !bok {
			return Value{}, false
		}
		var r int64
		switch e.Op {
		case OpAdd:
			r = a.Int + b.Int
		case OpSub:
			r = a.Int - b.Int
		default:
			r = a.Int * b.Int
		}
		return Value{Sort: IntSort, Int: r}, true
	case OpIte:
		c, cok := partialEval(e.Args[0], m)
		if !cok {
			// Both branches agreeing would still determine the value.
			a, aok := partialEval(e.Args[1], m)
			b, bok := partialEval(e.Args[2], m)
			if aok && bok && a.Sort == b.Sort && a.Int == b.Int && a.Bool == b.Bool {
				return a, true
			}
			return Value{}, false
		}
		if c.Bool {
			return partialEval(e.Args[1], m)
		}
		return partialEval(e.Args[2], m)
	}
	panic("sym: unknown op")
}

// asn is the solver's internal assignment: dense arrays indexed by the
// interned variable id, avoiding string hashing on the search hot path.
type asn struct {
	vals []Value
	set  []bool
}

// evalIdx mirrors partialEval over an array-indexed assignment. The two
// evaluators must stay in sync; evalIdx exists because assignment lookups
// dominate the solver's profile.
func evalIdx(e *Expr, a *asn) (Value, bool) {
	switch e.Op {
	case OpConst:
		return Value{Sort: e.Sort, Int: e.Int, Bool: e.Bool}, true
	case OpVar:
		if e.VarID < len(a.set) && a.set[e.VarID] {
			return a.vals[e.VarID], true
		}
		return Value{}, false
	case OpNot:
		v, ok := evalIdx(e.Args[0], a)
		if !ok {
			return Value{}, false
		}
		return Value{Sort: BoolSort, Bool: !v.Bool}, true
	case OpAnd:
		all := true
		for _, x := range e.Args {
			v, ok := evalIdx(x, a)
			if !ok {
				all = false
				continue
			}
			if !v.Bool {
				return Value{Sort: BoolSort, Bool: false}, true
			}
		}
		return Value{Sort: BoolSort, Bool: true}, all
	case OpOr:
		all := true
		for _, x := range e.Args {
			v, ok := evalIdx(x, a)
			if !ok {
				all = false
				continue
			}
			if v.Bool {
				return Value{Sort: BoolSort, Bool: true}, true
			}
		}
		return Value{Sort: BoolSort, Bool: false}, all
	case OpEq:
		x, xok := evalIdx(e.Args[0], a)
		y, yok := evalIdx(e.Args[1], a)
		if !xok || !yok {
			return Value{}, false
		}
		var eq bool
		if x.Sort.Kind == KindBool {
			eq = x.Bool == y.Bool
		} else {
			eq = x.Int == y.Int
		}
		return Value{Sort: BoolSort, Bool: eq}, true
	case OpLt, OpLe:
		x, xok := evalIdx(e.Args[0], a)
		y, yok := evalIdx(e.Args[1], a)
		if !xok || !yok {
			return Value{}, false
		}
		if e.Op == OpLt {
			return Value{Sort: BoolSort, Bool: x.Int < y.Int}, true
		}
		return Value{Sort: BoolSort, Bool: x.Int <= y.Int}, true
	case OpAdd, OpSub, OpMul:
		x, xok := evalIdx(e.Args[0], a)
		y, yok := evalIdx(e.Args[1], a)
		if !xok || !yok {
			return Value{}, false
		}
		var r int64
		switch e.Op {
		case OpAdd:
			r = x.Int + y.Int
		case OpSub:
			r = x.Int - y.Int
		default:
			r = x.Int * y.Int
		}
		return Value{Sort: IntSort, Int: r}, true
	case OpIte:
		c, cok := evalIdx(e.Args[0], a)
		if !cok {
			x, xok := evalIdx(e.Args[1], a)
			y, yok := evalIdx(e.Args[2], a)
			if xok && yok && x.Sort == y.Sort && x.Int == y.Int && x.Bool == y.Bool {
				return x, true
			}
			return Value{}, false
		}
		if c.Bool {
			return evalIdx(e.Args[1], a)
		}
		return evalIdx(e.Args[2], a)
	}
	panic("sym: unknown op")
}

// Solver finds finite models of boolean expressions. The zero value is
// ready to use; IntRadius widens the integer candidate domain.
type Solver struct {
	// IntRadius is the half-width of the neighborhood around each integer
	// constant included in the candidate domain (default 2).
	IntRadius int64
	// MaxSteps bounds the backtracking search (default 2_000_000 node
	// visits); exceeding it makes Solve report unknown via ok=false plus
	// ErrBudget from LastErr.
	MaxSteps int

	steps    int
	exceeded bool
}

// Budget reports whether the previous Solve/Enumerate call ran out of steps
// before exhausting the search space.
func (s *Solver) Budget() bool { return s.exceeded }

type domain struct {
	v    *Expr
	vals []Value
}

// domains computes a finite candidate domain for every free variable.
//
// Booleans get {false, true}. Each uninterpreted sort gets element ids
// 0..n-1 where n = (#variables of that sort) + (#distinct constants of that
// sort): by the small-model property of equality logic this is sufficient.
// Integers get the union of neighborhoods around every integer constant in
// the formula plus a small default range.
func (s *Solver) domains(e *Expr) []domain {
	vars := varsInOrder(e)
	sortVarCount := map[Sort]int{}
	sortConsts := map[Sort]map[int64]bool{}
	intConsts := map[int64]bool{0: true, 1: true}
	var walk func(x *Expr)
	walk = func(x *Expr) {
		if x.Op == OpConst {
			switch x.Sort.Kind {
			case KindInt:
				intConsts[x.Int] = true
			case KindUnint:
				if sortConsts[x.Sort] == nil {
					sortConsts[x.Sort] = map[int64]bool{}
				}
				sortConsts[x.Sort][x.Int] = true
			}
		}
		for _, a := range x.Args {
			walk(a)
		}
	}
	walk(e)
	for _, v := range vars {
		if v.Sort.Kind == KindUnint {
			sortVarCount[v.Sort]++
		}
	}

	radius := s.IntRadius
	if radius == 0 {
		radius = 1
	}
	intDomain := map[int64]bool{}
	for c := range intConsts {
		for d := -radius; d <= radius; d++ {
			intDomain[c+d] = true
		}
	}
	intVals := make([]int64, 0, len(intDomain))
	for v := range intDomain {
		intVals = append(intVals, v)
	}
	sort.Slice(intVals, func(i, j int) bool { return intVals[i] < intVals[j] })

	doms := make([]domain, 0, len(vars))
	for _, v := range vars {
		var vals []Value
		switch v.Sort.Kind {
		case KindBool:
			vals = []Value{{Sort: BoolSort, Bool: false}, {Sort: BoolSort, Bool: true}}
		case KindInt:
			for _, iv := range intVals {
				vals = append(vals, Value{Sort: IntSort, Int: iv})
			}
		case KindUnint:
			n := sortVarCount[v.Sort]
			ids := map[int64]bool{}
			for id := range sortConsts[v.Sort] {
				ids[id] = true
			}
			next := int64(0)
			for len(ids) < n+len(sortConsts[v.Sort]) || len(ids) == 0 {
				if !ids[next] {
					ids[next] = true
				}
				next++
			}
			ordered := make([]int64, 0, len(ids))
			for id := range ids {
				ordered = append(ordered, id)
			}
			sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
			for _, id := range ordered {
				vals = append(vals, Value{Sort: v.Sort, Int: id})
			}
		}
		doms = append(doms, domain{v: v, vals: vals})
	}
	return doms
}

// Solve returns a model of e, or ok=false if e is unsatisfiable over the
// finite candidate domains (or the step budget was exceeded; see Budget).
func (s *Solver) Solve(e *Expr) (Model, bool) {
	var found Model
	s.Enumerate(e, func(m Model) bool {
		found = m.Clone()
		return false // stop at first model
	})
	return found, found != nil
}

// Sat reports whether e is satisfiable over the finite candidate domains.
func (s *Solver) Sat(e *Expr) bool {
	_, ok := s.Solve(e)
	return ok
}

// Valid reports whether e holds in every model over the candidate domains
// (i.e. its negation is unsatisfiable).
func (s *Solver) Valid(e *Expr) bool { return !s.Sat(Not(e)) }

// Enumerate invokes cb for each model of e until cb returns false or the
// space is exhausted. The Model passed to cb is reused; clone it to keep it.
//
// The search splits e's top-level conjunction and evaluates each conjunct
// exactly once — at the depth where its last free variable gets assigned —
// so pruning costs are proportional to the conjunct, not the whole formula.
func (s *Solver) Enumerate(e *Expr, cb func(Model) bool) {
	if e.IsFalse() {
		return
	}
	doms := s.domains(e)
	varIdx := make(map[string]int, len(doms))
	for i, d := range doms {
		varIdx[d.v.Name] = i
	}

	var conjs []*Expr
	if e.Op == OpAnd {
		conjs = e.Args
	} else if !e.IsTrue() {
		conjs = []*Expr{e}
	}
	// completedAt[i] lists conjuncts whose variables are all assigned
	// once doms[i] has a value.
	completedAt := make([][]*Expr, len(doms))
	for _, conj := range conjs {
		last := -1
		for _, v := range varsInOrder(conj) {
			if idx := varIdx[v.Name]; idx > last {
				last = idx
			}
		}
		if last < 0 {
			// Ground conjunct: constructors fold these, but guard anyway.
			if v, ok := partialEval(conj, Model{}); ok && !v.Bool {
				return
			}
			continue
		}
		completedAt[last] = append(completedAt[last], conj)
	}

	s.steps = 0
	s.exceeded = false
	maxSteps := s.MaxSteps
	if maxSteps == 0 {
		maxSteps = 5_000_000
	}
	maxID := 0
	for _, d := range doms {
		if d.v.VarID > maxID {
			maxID = d.v.VarID
		}
	}
	a := &asn{vals: make([]Value, maxID+1), set: make([]bool, maxID+1)}
	emit := func() bool {
		m := make(Model, len(doms))
		for _, d := range doms {
			m[d.v.Name] = a.vals[d.v.VarID]
		}
		return cb(m)
	}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(doms) {
			return emit()
		}
		d := doms[i]
		id := d.v.VarID
	next:
		for _, val := range d.vals {
			s.steps++
			if s.steps > maxSteps {
				s.exceeded = true
				return false
			}
			a.vals[id] = val
			a.set[id] = true
			for _, conj := range completedAt[i] {
				v, ok := evalIdx(conj, a)
				if !ok {
					panic("sym: completed conjunct left undetermined: " + conj.String())
				}
				if !v.Bool {
					continue next // prune this value
				}
			}
			if !rec(i + 1) {
				a.set[id] = false
				return false
			}
		}
		a.set[id] = false
		return true
	}
	rec(0)
}

// Conjuncts splits a top-level conjunction (a non-And expression is its own
// single conjunct; True yields none).
func Conjuncts(e *Expr) []*Expr {
	if e.IsTrue() {
		return nil
	}
	if e.Op == OpAnd {
		return e.Args
	}
	return []*Expr{e}
}

// SatAssuming decides satisfiability of base ∧ extra given that base is
// already known satisfiable. It restricts the search to extra's cone of
// influence: the conjuncts of base transitively sharing variables with
// extra. Conjuncts outside the cone share no variables with it, so a model
// of the cone extends to a full model by reusing any model of base —
// soundness and completeness both follow from that disjointness. The
// returned model binds only cone variables.
func (s *Solver) SatAssuming(base, extra *Expr) (Model, bool) {
	if extra.IsTrue() {
		return Model{}, true
	}
	if extra.IsFalse() {
		return nil, false
	}
	conjs := Conjuncts(base)
	type entry struct {
		e    *Expr
		vars []*Expr
		used bool
	}
	entries := make([]entry, len(conjs))
	for i, c := range conjs {
		entries[i] = entry{e: c, vars: varsInOrder(c)}
	}
	inCone := map[string]bool{}
	for _, v := range varsInOrder(extra) {
		inCone[v.Name] = true
	}
	cone := []*Expr{extra}
	for changed := true; changed; {
		changed = false
		for i := range entries {
			if entries[i].used {
				continue
			}
			touches := false
			for _, v := range entries[i].vars {
				if inCone[v.Name] {
					touches = true
					break
				}
			}
			if !touches {
				continue
			}
			entries[i].used = true
			changed = true
			cone = append(cone, entries[i].e)
			for _, v := range entries[i].vars {
				inCone[v.Name] = true
			}
		}
	}
	// Keep base-conjunct order first so chronological pruning still works,
	// with extra last (it references the latest variables).
	ordered := make([]*Expr, 0, len(cone))
	for i := range entries {
		if entries[i].used {
			ordered = append(ordered, entries[i].e)
		}
	}
	ordered = append(ordered, extra)
	return s.Solve(And(ordered...))
}

// varsInOrder returns free variables in first-occurrence order. Because
// conjunctions preserve construction order, this matches the chronological
// order in which path conditions constrained the variables, so assigning in
// this order lets partial evaluation prune failed prefixes early.
func varsInOrder(e *Expr) []*Expr {
	var out []*Expr
	seen := map[string]bool{}
	var walk func(x *Expr)
	walk = func(x *Expr) {
		if x.Op == OpVar {
			if !seen[x.Name] {
				seen[x.Name] = true
				out = append(out, x)
			}
			return
		}
		for _, a := range x.Args {
			walk(a)
		}
	}
	walk(e)
	return out
}

// Substitute replaces variables in e according to bind, returning the
// simplified result. Variables absent from bind are left in place.
func Substitute(e *Expr, bind map[string]*Expr) *Expr {
	switch e.Op {
	case OpConst:
		return e
	case OpVar:
		if r, ok := bind[e.Name]; ok {
			if r.Sort != e.Sort {
				panic("sym: Substitute sort mismatch for " + e.Name)
			}
			return r
		}
		return e
	}
	args := make([]*Expr, len(e.Args))
	changed := false
	for i, a := range e.Args {
		args[i] = Substitute(a, bind)
		if args[i] != a {
			changed = true
		}
	}
	if !changed {
		return e
	}
	switch e.Op {
	case OpNot:
		return Not(args[0])
	case OpAnd:
		return And(args...)
	case OpOr:
		return Or(args...)
	case OpEq:
		return Eq(args[0], args[1])
	case OpLt:
		return Lt(args[0], args[1])
	case OpLe:
		return Le(args[0], args[1])
	case OpAdd:
		return Add(args[0], args[1])
	case OpSub:
		return Sub(args[0], args[1])
	case OpMul:
		return Mul(args[0], args[1])
	case OpIte:
		return Ite(args[0], args[1], args[2])
	}
	panic("sym: unknown op in Substitute")
}
