// Package sym implements a small symbolic-expression engine and a
// finite-model constraint solver. It stands in for the Z3 SMT solver that
// the COMMUTER prototype used: the POSIX interface model only generates
// constraints in the quantifier-free theory of equality over uninterpreted
// sorts plus bounded linear integer arithmetic and booleans, for which
// bounded model search with constraint propagation is complete.
package sym

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// SortKind distinguishes the three value sorts the engine supports.
type SortKind int

const (
	// KindBool is the sort of boolean expressions.
	KindBool SortKind = iota
	// KindInt is the sort of (mathematical) integer expressions.
	KindInt
	// KindUnint is an uninterpreted sort: values support only equality.
	KindUnint
)

// Sort identifies the sort of an expression. Uninterpreted sorts are
// distinguished by name ("Filename", "Inode", ...).
type Sort struct {
	Kind SortKind
	Name string
}

// BoolSort and IntSort are the built-in interpreted sorts.
var (
	BoolSort = Sort{Kind: KindBool}
	IntSort  = Sort{Kind: KindInt}
)

// Uninterpreted returns the uninterpreted sort with the given name.
func Uninterpreted(name string) Sort { return Sort{Kind: KindUnint, Name: name} }

func (s Sort) String() string {
	switch s.Kind {
	case KindBool:
		return "Bool"
	case KindInt:
		return "Int"
	default:
		return s.Name
	}
}

// Op enumerates expression node kinds.
type Op int

const (
	// OpConst is a literal boolean or integer (or uninterpreted-sort
	// element identified by a small integer).
	OpConst Op = iota
	// OpVar is a free variable.
	OpVar
	// OpNot, OpAnd, OpOr are the boolean connectives.
	OpNot
	OpAnd
	OpOr
	// OpEq is equality at any sort; OpLt and OpLe compare integers.
	OpEq
	OpLt
	OpLe
	// OpAdd, OpSub, OpMul are integer arithmetic.
	OpAdd
	OpSub
	OpMul
	// OpIte is if-then-else: Ite(cond, then, else).
	OpIte
)

// Expr is an immutable symbolic expression node. Construct expressions with
// the package-level constructor functions, which simplify eagerly.
type Expr struct {
	Op   Op
	Sort Sort
	// Int holds the value for integer constants and the element id for
	// uninterpreted-sort constants; Bool holds boolean constant values.
	Int  int64
	Bool bool
	// Name is the variable name for OpVar nodes; VarID is its interned
	// id, used by the solver for array-indexed assignments.
	Name  string
	VarID int
	Args  []*Expr
}

// Variable names are interned process-wide so solver assignments can be
// dense arrays instead of string-keyed maps (the solver's hot path).
var (
	varMu  sync.Mutex
	varIDs = map[string]int{}
)

func internVar(name string) int {
	varMu.Lock()
	defer varMu.Unlock()
	id, ok := varIDs[name]
	if !ok {
		id = len(varIDs)
		varIDs[name] = id
	}
	return id
}

var (
	// True and False are the boolean constants.
	True  = &Expr{Op: OpConst, Sort: BoolSort, Bool: true}
	False = &Expr{Op: OpConst, Sort: BoolSort, Bool: false}
)

// Int returns the integer constant v.
func Int(v int64) *Expr { return &Expr{Op: OpConst, Sort: IntSort, Int: v} }

// Bool returns the boolean constant v.
func Bool(v bool) *Expr {
	if v {
		return True
	}
	return False
}

// Const returns element id of an uninterpreted sort as a constant. TESTGEN
// uses these to pin isomorphism-class representatives.
func Const(s Sort, id int64) *Expr {
	if s.Kind != KindUnint {
		panic("sym: Const requires an uninterpreted sort")
	}
	return &Expr{Op: OpConst, Sort: s, Int: id}
}

// Var returns a free variable with the given name and sort.
func Var(name string, s Sort) *Expr {
	return &Expr{Op: OpVar, Sort: s, Name: name, VarID: internVar(name)}
}

// IsConst reports whether e is a literal constant.
func (e *Expr) IsConst() bool { return e.Op == OpConst }

// IsTrue and IsFalse report whether e is the respective boolean constant.
func (e *Expr) IsTrue() bool  { return e.Op == OpConst && e.Sort.Kind == KindBool && e.Bool }
func (e *Expr) IsFalse() bool { return e.Op == OpConst && e.Sort.Kind == KindBool && !e.Bool }

func sameConst(a, b *Expr) bool {
	if a.Sort != b.Sort {
		return false
	}
	if a.Sort.Kind == KindBool {
		return a.Bool == b.Bool
	}
	return a.Int == b.Int
}

// structEq reports syntactic equality of two expressions.
func structEq(a, b *Expr) bool {
	if a == b {
		return true
	}
	if a.Op != b.Op || a.Sort != b.Sort || len(a.Args) != len(b.Args) {
		return false
	}
	switch a.Op {
	case OpConst:
		return sameConst(a, b)
	case OpVar:
		return a.Name == b.Name
	}
	for i := range a.Args {
		if !structEq(a.Args[i], b.Args[i]) {
			return false
		}
	}
	return true
}

// Not returns the negation of a, simplified.
func Not(a *Expr) *Expr {
	if a.Sort.Kind != KindBool {
		panic("sym: Not on non-boolean")
	}
	switch {
	case a.IsTrue():
		return False
	case a.IsFalse():
		return True
	case a.Op == OpNot:
		return a.Args[0]
	}
	return &Expr{Op: OpNot, Sort: BoolSort, Args: []*Expr{a}}
}

// And returns the conjunction of args, flattened and simplified.
func And(args ...*Expr) *Expr {
	var flat []*Expr
	for _, a := range args {
		if a.Sort.Kind != KindBool {
			panic("sym: And on non-boolean")
		}
		switch {
		case a.IsFalse():
			return False
		case a.IsTrue():
			continue
		case a.Op == OpAnd:
			flat = append(flat, a.Args...)
		default:
			flat = append(flat, a)
		}
	}
	flat = dedup(flat)
	switch len(flat) {
	case 0:
		return True
	case 1:
		return flat[0]
	}
	return &Expr{Op: OpAnd, Sort: BoolSort, Args: flat}
}

// Or returns the disjunction of args, flattened and simplified.
func Or(args ...*Expr) *Expr {
	var flat []*Expr
	for _, a := range args {
		if a.Sort.Kind != KindBool {
			panic("sym: Or on non-boolean")
		}
		switch {
		case a.IsTrue():
			return True
		case a.IsFalse():
			continue
		case a.Op == OpOr:
			flat = append(flat, a.Args...)
		default:
			flat = append(flat, a)
		}
	}
	flat = dedup(flat)
	switch len(flat) {
	case 0:
		return False
	case 1:
		return flat[0]
	}
	return &Expr{Op: OpOr, Sort: BoolSort, Args: flat}
}

func dedup(args []*Expr) []*Expr {
	var out []*Expr
outer:
	for _, a := range args {
		for _, b := range out {
			if structEq(a, b) {
				continue outer
			}
		}
		out = append(out, a)
	}
	return out
}

// Implies returns a → b.
func Implies(a, b *Expr) *Expr { return Or(Not(a), b) }

// Eq returns a == b; the operands must share a sort.
func Eq(a, b *Expr) *Expr {
	if a.Sort != b.Sort {
		panic(fmt.Sprintf("sym: Eq sort mismatch: %v vs %v", a.Sort, b.Sort))
	}
	if a.IsConst() && b.IsConst() {
		return Bool(sameConst(a, b))
	}
	if structEq(a, b) {
		return True
	}
	if a.Sort.Kind == KindBool {
		switch {
		case a.IsTrue():
			return b
		case a.IsFalse():
			return Not(b)
		case b.IsTrue():
			return a
		case b.IsFalse():
			return Not(a)
		}
	}
	// Canonical argument order keeps dedup effective.
	if exprKey(b) < exprKey(a) {
		a, b = b, a
	}
	return &Expr{Op: OpEq, Sort: BoolSort, Args: []*Expr{a, b}}
}

// Ne returns a != b.
func Ne(a, b *Expr) *Expr { return Not(Eq(a, b)) }

// Lt returns the integer comparison a < b.
func Lt(a, b *Expr) *Expr {
	checkInt("Lt", a, b)
	if a.IsConst() && b.IsConst() {
		return Bool(a.Int < b.Int)
	}
	if structEq(a, b) {
		return False
	}
	return &Expr{Op: OpLt, Sort: BoolSort, Args: []*Expr{a, b}}
}

// Le returns the integer comparison a <= b.
func Le(a, b *Expr) *Expr {
	checkInt("Le", a, b)
	if a.IsConst() && b.IsConst() {
		return Bool(a.Int <= b.Int)
	}
	if structEq(a, b) {
		return True
	}
	return &Expr{Op: OpLe, Sort: BoolSort, Args: []*Expr{a, b}}
}

// Gt and Ge are the flipped comparisons.
func Gt(a, b *Expr) *Expr { return Lt(b, a) }
func Ge(a, b *Expr) *Expr { return Le(b, a) }

func checkInt(op string, args ...*Expr) {
	for _, a := range args {
		if a.Sort.Kind != KindInt {
			panic("sym: " + op + " on non-integer")
		}
	}
}

// Add returns a + b.
func Add(a, b *Expr) *Expr {
	checkInt("Add", a, b)
	if a.IsConst() && b.IsConst() {
		return Int(a.Int + b.Int)
	}
	if a.IsConst() && a.Int == 0 {
		return b
	}
	if b.IsConst() && b.Int == 0 {
		return a
	}
	return &Expr{Op: OpAdd, Sort: IntSort, Args: []*Expr{a, b}}
}

// Sub returns a - b.
func Sub(a, b *Expr) *Expr {
	checkInt("Sub", a, b)
	if a.IsConst() && b.IsConst() {
		return Int(a.Int - b.Int)
	}
	if b.IsConst() && b.Int == 0 {
		return a
	}
	if structEq(a, b) {
		return Int(0)
	}
	return &Expr{Op: OpSub, Sort: IntSort, Args: []*Expr{a, b}}
}

// Mul returns a * b.
func Mul(a, b *Expr) *Expr {
	checkInt("Mul", a, b)
	if a.IsConst() && b.IsConst() {
		return Int(a.Int * b.Int)
	}
	if a.IsConst() {
		a, b = b, a
	}
	if b.IsConst() {
		switch b.Int {
		case 0:
			return Int(0)
		case 1:
			return a
		}
	}
	return &Expr{Op: OpMul, Sort: IntSort, Args: []*Expr{a, b}}
}

// Ite returns if cond then a else b; a and b must share a sort.
func Ite(cond, a, b *Expr) *Expr {
	if cond.Sort.Kind != KindBool {
		panic("sym: Ite condition must be boolean")
	}
	if a.Sort != b.Sort {
		panic("sym: Ite branch sort mismatch")
	}
	switch {
	case cond.IsTrue():
		return a
	case cond.IsFalse():
		return b
	case structEq(a, b):
		return a
	}
	if a.Sort.Kind == KindBool {
		// Encode boolean ITE with connectives so the solver's
		// propagation sees through it.
		return Or(And(cond, a), And(Not(cond), b))
	}
	return &Expr{Op: OpIte, Sort: a.Sort, Args: []*Expr{cond, a, b}}
}

// Vars returns the free variables of e, sorted by name.
func Vars(e *Expr) []*Expr {
	seen := map[string]*Expr{}
	collectVars(e, seen)
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Expr, len(names))
	for i, n := range names {
		out[i] = seen[n]
	}
	return out
}

func collectVars(e *Expr, seen map[string]*Expr) {
	if e.Op == OpVar {
		seen[e.Name] = e
		return
	}
	for _, a := range e.Args {
		collectVars(a, seen)
	}
}

// String renders the expression in a Lisp-like prefix form.
func (e *Expr) String() string {
	var b strings.Builder
	e.write(&b)
	return b.String()
}

func (e *Expr) write(b *strings.Builder) {
	switch e.Op {
	case OpConst:
		switch e.Sort.Kind {
		case KindBool:
			fmt.Fprintf(b, "%v", e.Bool)
		case KindInt:
			fmt.Fprintf(b, "%d", e.Int)
		default:
			fmt.Fprintf(b, "%s!%d", e.Sort.Name, e.Int)
		}
	case OpVar:
		b.WriteString(e.Name)
	default:
		b.WriteByte('(')
		b.WriteString(opName(e.Op))
		for _, a := range e.Args {
			b.WriteByte(' ')
			a.write(b)
		}
		b.WriteByte(')')
	}
}

func opName(op Op) string {
	switch op {
	case OpNot:
		return "not"
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	case OpEq:
		return "="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpIte:
		return "ite"
	default:
		return "?"
	}
}

// exprKey returns a total-order key used only for canonicalization.
func exprKey(e *Expr) string { return e.String() }
