// Package sym implements a small symbolic-expression engine and a
// finite-model constraint solver. It stands in for the Z3 SMT solver that
// the COMMUTER prototype used: the POSIX interface model only generates
// constraints in the quantifier-free theory of equality over uninterpreted
// sorts plus bounded linear integer arithmetic and booleans, for which
// bounded model search with constraint propagation is complete.
//
// Expressions are hash-consed (see intern.go): the constructors intern
// every node, so structurally equal expressions are pointer-equal and the
// engine's walks, dedups and memo tables all key on node identity.
package sym

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// SortKind distinguishes the three value sorts the engine supports.
type SortKind int

const (
	// KindBool is the sort of boolean expressions.
	KindBool SortKind = iota
	// KindInt is the sort of (mathematical) integer expressions.
	KindInt
	// KindUnint is an uninterpreted sort: values support only equality.
	KindUnint
)

// Sort identifies the sort of an expression. Uninterpreted sorts are
// distinguished by name ("Filename", "Inode", ...).
type Sort struct {
	Kind SortKind
	Name string
}

// BoolSort and IntSort are the built-in interpreted sorts.
var (
	BoolSort = Sort{Kind: KindBool}
	IntSort  = Sort{Kind: KindInt}
)

// Uninterpreted returns the uninterpreted sort with the given name.
func Uninterpreted(name string) Sort { return Sort{Kind: KindUnint, Name: name} }

func (s Sort) String() string {
	switch s.Kind {
	case KindBool:
		return "Bool"
	case KindInt:
		return "Int"
	default:
		return s.Name
	}
}

// Op enumerates expression node kinds.
type Op int

const (
	// OpConst is a literal boolean or integer (or uninterpreted-sort
	// element identified by a small integer).
	OpConst Op = iota
	// OpVar is a free variable.
	OpVar
	// OpNot, OpAnd, OpOr are the boolean connectives.
	OpNot
	OpAnd
	OpOr
	// OpEq is equality at any sort; OpLt and OpLe compare integers.
	OpEq
	OpLt
	OpLe
	// OpAdd, OpSub, OpMul are integer arithmetic.
	OpAdd
	OpSub
	OpMul
	// OpIte is if-then-else: Ite(cond, then, else).
	OpIte
)

// Expr is an immutable symbolic expression node. Construct expressions with
// the package-level constructor functions, which canonicalize eagerly and
// hash-cons the result: two structurally equal constructor-built
// expressions are the same pointer.
type Expr struct {
	Op   Op
	Sort Sort
	// Int holds the value for integer constants and the element id for
	// uninterpreted-sort constants; Bool holds boolean constant values.
	Int  int64
	Bool bool
	// Name is the variable name for OpVar nodes; VarID is its interned
	// id, used by the solver for array-indexed assignments.
	Name  string
	VarID int
	Args  []*Expr

	// Interning metadata, set before publication and immutable after
	// (see intern.go). id is the nonzero interning identity; size is a
	// capped unfolded-node-count estimate used as a memoization
	// threshold; vars lists free variables in first-occurrence order.
	id   uint64
	size int
	vars []*Expr
	// str caches the rendered canonical form; it is written at most a
	// handful of times with identical content, so racing stores are
	// harmless and loads never block.
	str atomic.Pointer[string]
}

// Variable names are interned process-wide so solver assignments can be
// dense arrays instead of string-keyed maps (the solver's hot path).
var (
	varMu  sync.Mutex
	varIDs = map[string]int{}
)

func internVar(name string) int {
	varMu.Lock()
	defer varMu.Unlock()
	id, ok := varIDs[name]
	if !ok {
		id = len(varIDs)
		varIDs[name] = id
	}
	return id
}

var (
	// True and False are the boolean constants.
	True  = intern(OpConst, BoolSort, 0, true, "", nil)
	False = intern(OpConst, BoolSort, 0, false, "", nil)
)

// Int returns the integer constant v.
func Int(v int64) *Expr { return intern(OpConst, IntSort, v, false, "", nil) }

// Bool returns the boolean constant v.
func Bool(v bool) *Expr {
	if v {
		return True
	}
	return False
}

// Const returns element id of an uninterpreted sort as a constant. TESTGEN
// uses these to pin isomorphism-class representatives.
func Const(s Sort, id int64) *Expr {
	if s.Kind != KindUnint {
		panic("sym: Const requires an uninterpreted sort")
	}
	return intern(OpConst, s, id, false, "", nil)
}

// Var returns the free variable with the given name and sort; repeated
// calls return the same node.
func Var(name string, s Sort) *Expr {
	return intern(OpVar, s, 0, false, name, nil)
}

// IsConst reports whether e is a literal constant.
func (e *Expr) IsConst() bool { return e.Op == OpConst }

// IsTrue and IsFalse report whether e is the respective boolean constant.
func (e *Expr) IsTrue() bool  { return e.Op == OpConst && e.Sort.Kind == KindBool && e.Bool }
func (e *Expr) IsFalse() bool { return e.Op == OpConst && e.Sort.Kind == KindBool && !e.Bool }

func sameConst(a, b *Expr) bool {
	if a.Sort != b.Sort {
		return false
	}
	if a.Sort.Kind == KindBool {
		return a.Bool == b.Bool
	}
	return a.Int == b.Int
}

// structEq reports syntactic equality of two expressions. For interned
// nodes (everything the constructors return) this is a pointer compare;
// the deep walk only runs when a hand-built literal is involved.
func structEq(a, b *Expr) bool {
	if a == b {
		return true
	}
	if a.id != 0 && b.id != 0 {
		return false // interned and distinct: structurally different
	}
	if a.Op != b.Op || a.Sort != b.Sort || len(a.Args) != len(b.Args) {
		return false
	}
	switch a.Op {
	case OpConst:
		return sameConst(a, b)
	case OpVar:
		return a.Name == b.Name
	}
	for i := range a.Args {
		if !structEq(a.Args[i], b.Args[i]) {
			return false
		}
	}
	return true
}

// Not returns the negation of a, simplified.
func Not(a *Expr) *Expr {
	if a.Sort.Kind != KindBool {
		panic("sym: Not on non-boolean")
	}
	switch {
	case a.IsTrue():
		return False
	case a.IsFalse():
		return True
	case a.Op == OpNot:
		return a.Args[0]
	}
	return intern(OpNot, BoolSort, 0, false, "", []*Expr{a})
}

// And returns the conjunction of args, flattened, deduplicated and
// simplified. Argument order is preserved (first occurrence wins): the
// solver's variable-ordering heuristic depends on conjuncts appearing in
// the chronological order path conditions accumulated them.
func And(args ...*Expr) *Expr {
	var flat []*Expr
	for _, a := range args {
		if a.Sort.Kind != KindBool {
			panic("sym: And on non-boolean")
		}
		switch {
		case a.IsFalse():
			return False
		case a.IsTrue():
			continue
		case a.Op == OpAnd:
			flat = append(flat, a.Args...)
		default:
			flat = append(flat, a)
		}
	}
	flat = dedup(flat)
	switch len(flat) {
	case 0:
		return True
	case 1:
		return flat[0]
	}
	return intern(OpAnd, BoolSort, 0, false, "", flat)
}

// Or returns the disjunction of args, flattened, deduplicated and
// simplified, preserving first-occurrence order like And.
func Or(args ...*Expr) *Expr {
	var flat []*Expr
	for _, a := range args {
		if a.Sort.Kind != KindBool {
			panic("sym: Or on non-boolean")
		}
		switch {
		case a.IsTrue():
			return True
		case a.IsFalse():
			continue
		case a.Op == OpOr:
			flat = append(flat, a.Args...)
		default:
			flat = append(flat, a)
		}
	}
	flat = dedup(flat)
	switch len(flat) {
	case 0:
		return False
	case 1:
		return flat[0]
	}
	return intern(OpOr, BoolSort, 0, false, "", flat)
}

// dedup removes duplicate conjuncts/disjuncts, keeping first occurrences.
// Interned nodes compare by pointer; a hash set takes over past the sizes
// where a linear scan is cheaper.
func dedup(args []*Expr) []*Expr {
	if len(args) <= 16 {
		var out []*Expr
	outer:
		for _, a := range args {
			for _, b := range out {
				if structEq(a, b) {
					continue outer
				}
			}
			out = append(out, a)
		}
		return out
	}
	out := make([]*Expr, 0, len(args))
	seen := make(map[*Expr]struct{}, len(args))
	for _, a := range args {
		if a.id != 0 {
			if _, ok := seen[a]; ok {
				continue
			}
			seen[a] = struct{}{}
			out = append(out, a)
			continue
		}
		dup := false
		for _, b := range out {
			if structEq(a, b) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, a)
		}
	}
	return out
}

// Implies returns a → b.
func Implies(a, b *Expr) *Expr { return Or(Not(a), b) }

// Eq returns a == b; the operands must share a sort.
func Eq(a, b *Expr) *Expr {
	if a.Sort != b.Sort {
		panic(fmt.Sprintf("sym: Eq sort mismatch: %v vs %v", a.Sort, b.Sort))
	}
	if a.IsConst() && b.IsConst() {
		return Bool(sameConst(a, b))
	}
	if structEq(a, b) {
		return True
	}
	if a.Sort.Kind == KindBool {
		switch {
		case a.IsTrue():
			return b
		case a.IsFalse():
			return Not(b)
		case b.IsTrue():
			return a
		case b.IsFalse():
			return Not(a)
		}
	}
	// Canonical argument order keeps dedup effective.
	if exprKey(b) < exprKey(a) {
		a, b = b, a
	}
	return intern(OpEq, BoolSort, 0, false, "", []*Expr{a, b})
}

// Ne returns a != b.
func Ne(a, b *Expr) *Expr { return Not(Eq(a, b)) }

// Lt returns the integer comparison a < b.
func Lt(a, b *Expr) *Expr {
	checkInt("Lt", a, b)
	if a.IsConst() && b.IsConst() {
		return Bool(a.Int < b.Int)
	}
	if structEq(a, b) {
		return False
	}
	return intern(OpLt, BoolSort, 0, false, "", []*Expr{a, b})
}

// Le returns the integer comparison a <= b.
func Le(a, b *Expr) *Expr {
	checkInt("Le", a, b)
	if a.IsConst() && b.IsConst() {
		return Bool(a.Int <= b.Int)
	}
	if structEq(a, b) {
		return True
	}
	return intern(OpLe, BoolSort, 0, false, "", []*Expr{a, b})
}

// Gt and Ge are the flipped comparisons.
func Gt(a, b *Expr) *Expr { return Lt(b, a) }
func Ge(a, b *Expr) *Expr { return Le(b, a) }

func checkInt(op string, args ...*Expr) {
	for _, a := range args {
		if a.Sort.Kind != KindInt {
			panic("sym: " + op + " on non-integer")
		}
	}
}

// Add returns a + b.
func Add(a, b *Expr) *Expr {
	checkInt("Add", a, b)
	if a.IsConst() && b.IsConst() {
		return Int(a.Int + b.Int)
	}
	if a.IsConst() && a.Int == 0 {
		return b
	}
	if b.IsConst() && b.Int == 0 {
		return a
	}
	return intern(OpAdd, IntSort, 0, false, "", []*Expr{a, b})
}

// Sub returns a - b.
func Sub(a, b *Expr) *Expr {
	checkInt("Sub", a, b)
	if a.IsConst() && b.IsConst() {
		return Int(a.Int - b.Int)
	}
	if b.IsConst() && b.Int == 0 {
		return a
	}
	if structEq(a, b) {
		return Int(0)
	}
	return intern(OpSub, IntSort, 0, false, "", []*Expr{a, b})
}

// Mul returns a * b.
func Mul(a, b *Expr) *Expr {
	checkInt("Mul", a, b)
	if a.IsConst() && b.IsConst() {
		return Int(a.Int * b.Int)
	}
	if a.IsConst() {
		a, b = b, a
	}
	if b.IsConst() {
		switch b.Int {
		case 0:
			return Int(0)
		case 1:
			return a
		}
	}
	return intern(OpMul, IntSort, 0, false, "", []*Expr{a, b})
}

// Ite returns if cond then a else b; a and b must share a sort.
func Ite(cond, a, b *Expr) *Expr {
	if cond.Sort.Kind != KindBool {
		panic("sym: Ite condition must be boolean")
	}
	if a.Sort != b.Sort {
		panic("sym: Ite branch sort mismatch")
	}
	switch {
	case cond.IsTrue():
		return a
	case cond.IsFalse():
		return b
	case structEq(a, b):
		return a
	}
	if a.Sort.Kind == KindBool {
		// Encode boolean ITE with connectives so the solver's
		// propagation sees through it.
		return Or(And(cond, a), And(Not(cond), b))
	}
	return intern(OpIte, a.Sort, 0, false, "", []*Expr{cond, a, b})
}

// Vars returns the free variables of e, sorted by name.
func Vars(e *Expr) []*Expr {
	vs := varsOf(e)
	out := append([]*Expr(nil), vs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// String renders the expression in a Lisp-like prefix form. The rendering
// of interned nodes is cached, so ordering keys and content-derived tags
// amortize across repeated calls.
func (e *Expr) String() string {
	if e.id != 0 {
		if s := e.str.Load(); s != nil {
			return *s
		}
		var b strings.Builder
		e.render(&b)
		s := b.String()
		e.str.Store(&s)
		return s
	}
	var b strings.Builder
	e.render(&b)
	return b.String()
}

func (e *Expr) render(b *strings.Builder) {
	if e.id != 0 {
		if s := e.str.Load(); s != nil {
			b.WriteString(*s)
			return
		}
	}
	switch e.Op {
	case OpConst:
		switch e.Sort.Kind {
		case KindBool:
			fmt.Fprintf(b, "%v", e.Bool)
		case KindInt:
			fmt.Fprintf(b, "%d", e.Int)
		default:
			fmt.Fprintf(b, "%s!%d", e.Sort.Name, e.Int)
		}
	case OpVar:
		b.WriteString(e.Name)
	default:
		b.WriteByte('(')
		b.WriteString(opName(e.Op))
		for _, a := range e.Args {
			b.WriteByte(' ')
			a.render(b)
		}
		b.WriteByte(')')
	}
}

func opName(op Op) string {
	switch op {
	case OpNot:
		return "not"
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	case OpEq:
		return "="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpIte:
		return "ite"
	default:
		return "?"
	}
}

// exprKey returns a total-order key used only for canonicalization.
func exprKey(e *Expr) string { return e.String() }
