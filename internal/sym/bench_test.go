package sym

import (
	"fmt"
	"testing"
)

// The benchmarks below cover the layers the hash-consed engine
// accelerates: constructing path-condition-shaped formulas (interning),
// evaluating shared DAGs under a model (memoized partialEval), and the
// solver's cone-of-influence queries (cached variable lists plus
// extra-first ordering). Run them with
//
//	go test -bench . -benchtime 1x ./internal/sym
//
// for a smoke pass, or higher -benchtime for stable numbers.

// pcLike builds a path-condition-shaped conjunction: n key-equality
// guards and bound constraints over a rolling window of variables, the
// pattern symbolic execution accumulates.
func pcLike(n int) *Expr {
	fn := Uninterpreted("BenchName")
	pc := True
	for i := 0; i < n; i++ {
		k := Var(fmt.Sprintf("bk%d", i), fn)
		o := Var(fmt.Sprintf("bk%d", (i+3)%n), fn)
		x := Var(fmt.Sprintf("bx%d", i), IntSort)
		pc = And(pc,
			Ne(k, o),
			Ge(x, Int(0)), Le(x, Int(3)),
			Or(Eq(k, Const(fn, int64(i%4))), Lt(x, Int(2))))
	}
	return pc
}

// BenchmarkConstructPathCondition measures formula construction: with
// hash-consing every node build is a table probe, and rebuilt formulas
// resolve to existing nodes instead of fresh allocations.
func BenchmarkConstructPathCondition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if pcLike(32).IsFalse() {
			b.Fatal("unexpected fold")
		}
	}
}

// BenchmarkTryEvalSharedDAG measures witness checks over a deep
// Ite-chain DAG with heavy subterm sharing — the shape DictsEquivalent
// produces — where memoized partialEval visits each shared node once.
func BenchmarkTryEvalSharedDAG(b *testing.B) {
	fn := Uninterpreted("BenchName")
	k := Var("dagk", fn)
	chain := Var("dagv", IntSort)
	m := Model{"dagk": {Sort: fn, Int: 1}, "dagv": {Sort: IntSort, Int: 0}}
	for i := 0; i < 64; i++ {
		guard := Eq(k, Const(fn, int64(i%8)))
		chain = Ite(guard, Add(chain, Int(1)), chain)
		m[fmt.Sprintf("dagc%d", i)] = Value{Sort: IntSort, Int: int64(i)}
	}
	cond := And(Le(chain, Int(64)), Ge(chain, Int(0)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v, ok := m.TryEval(cond); !ok || !v.Bool {
			b.Fatal("expected decided-true")
		}
	}
}

// BenchmarkSatAssumingFeasible measures the solver path symbolic
// execution hits on every branch whose witness goes stale: a
// cone-of-influence query that finds a model.
func BenchmarkSatAssumingFeasible(b *testing.B) {
	pc := pcLike(24)
	fn := Uninterpreted("BenchName")
	extra := Eq(Var("bk0", fn), Var("bk5", fn))
	var s Solver
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.SatAssuming(pc, extra); !ok {
			b.Fatal("expected satisfiable")
		}
	}
}

// BenchmarkSatAssumingUnsat measures the expensive direction — an
// unsatisfiability proof — where the extra-first conjunct ordering keeps
// the contradiction near the top of the search tree.
func BenchmarkSatAssumingUnsat(b *testing.B) {
	pc := pcLike(24)
	x := Var("bx1", IntSort)
	extra := And(Lt(x, Int(0)), Gt(x, Int(0)))
	var s Solver
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.SatAssuming(pc, extra); ok {
			b.Fatal("expected unsatisfiable")
		}
	}
}

// BenchmarkSubstituteSharedDAG measures Substitute with the cached
// variable-list prune: subtrees not mentioning bound variables return
// unchanged without a walk.
func BenchmarkSubstituteSharedDAG(b *testing.B) {
	pc := pcLike(32)
	bind := map[string]*Expr{"bx0": Int(1), "bx7": Int(2)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Substitute(pc, bind) == nil {
			b.Fatal("nil substitution")
		}
	}
}
