package sym

import (
	"testing"
	"testing/quick"
)

func TestConstFolding(t *testing.T) {
	cases := []struct {
		got  *Expr
		want *Expr
	}{
		{Add(Int(2), Int(3)), Int(5)},
		{Sub(Int(2), Int(3)), Int(-1)},
		{Mul(Int(2), Int(3)), Int(6)},
		{Mul(Int(2), Int(0)), Int(0)},
		{Lt(Int(1), Int(2)), True},
		{Le(Int(2), Int(2)), True},
		{Lt(Int(2), Int(2)), False},
		{Eq(Int(2), Int(2)), True},
		{Eq(Int(2), Int(3)), False},
		{Not(True), False},
		{Not(Not(Var("p", BoolSort))), Var("p", BoolSort)},
		{And(True, True), True},
		{And(True, False), False},
		{Or(False, False), False},
		{Or(True, False), True},
		{Ite(True, Int(1), Int(2)), Int(1)},
		{Ite(False, Int(1), Int(2)), Int(2)},
	}
	for i, c := range cases {
		if !structEq(c.got, c.want) {
			t.Errorf("case %d: got %v, want %v", i, c.got, c.want)
		}
	}
}

func TestSimplifyIdentities(t *testing.T) {
	x := Var("x", IntSort)
	if got := Add(x, Int(0)); got != x {
		t.Errorf("x+0 = %v", got)
	}
	if got := Sub(x, x); !structEq(got, Int(0)) {
		t.Errorf("x-x = %v", got)
	}
	if got := Mul(x, Int(1)); got != x {
		t.Errorf("x*1 = %v", got)
	}
	if got := Eq(x, x); !got.IsTrue() {
		t.Errorf("x==x = %v", got)
	}
	if got := Le(x, x); !got.IsTrue() {
		t.Errorf("x<=x = %v", got)
	}
	if got := Lt(x, x); !got.IsFalse() {
		t.Errorf("x<x = %v", got)
	}
	p := Var("p", BoolSort)
	if got := And(p, p); got != p {
		t.Errorf("p&&p = %v", got)
	}
	if got := Or(p, p); got != p {
		t.Errorf("p||p = %v", got)
	}
	if got := Ite(p, x, x); got != x {
		t.Errorf("ite(p,x,x) = %v", got)
	}
}

func TestAndOrFlatten(t *testing.T) {
	p, q, r := Var("p", BoolSort), Var("q", BoolSort), Var("r", BoolSort)
	e := And(And(p, q), r)
	if e.Op != OpAnd || len(e.Args) != 3 {
		t.Errorf("nested And not flattened: %v", e)
	}
	e = Or(Or(p, q), r)
	if e.Op != OpOr || len(e.Args) != 3 {
		t.Errorf("nested Or not flattened: %v", e)
	}
}

func TestEqCanonicalOrder(t *testing.T) {
	a := Var("a", IntSort)
	b := Var("b", IntSort)
	if !structEq(Eq(a, b), Eq(b, a)) {
		t.Errorf("Eq not canonicalized: %v vs %v", Eq(a, b), Eq(b, a))
	}
}

func TestBoolIteEncoding(t *testing.T) {
	p, q, r := Var("p", BoolSort), Var("q", BoolSort), Var("r", BoolSort)
	e := Ite(p, q, r)
	// Boolean ITE is lowered to connectives, so no OpIte node remains.
	var hasIte func(x *Expr) bool
	hasIte = func(x *Expr) bool {
		if x.Op == OpIte {
			return true
		}
		for _, a := range x.Args {
			if hasIte(a) {
				return true
			}
		}
		return false
	}
	if hasIte(e) {
		t.Errorf("boolean Ite not lowered: %v", e)
	}
}

func TestVarsSorted(t *testing.T) {
	e := And(Eq(Var("z", IntSort), Var("a", IntSort)), Var("m", BoolSort))
	vs := Vars(e)
	if len(vs) != 3 || vs[0].Name != "a" || vs[1].Name != "m" || vs[2].Name != "z" {
		t.Errorf("Vars = %v", vs)
	}
}

func TestSubstitute(t *testing.T) {
	x, y := Var("x", IntSort), Var("y", IntSort)
	e := Add(x, y)
	got := Substitute(e, map[string]*Expr{"x": Int(2), "y": Int(3)})
	if !structEq(got, Int(5)) {
		t.Errorf("substitute: got %v", got)
	}
	// Partial substitution leaves the other variable.
	got = Substitute(e, map[string]*Expr{"x": Int(2)})
	if len(Vars(got)) != 1 || Vars(got)[0].Name != "y" {
		t.Errorf("partial substitute: got %v", got)
	}
}

// Property: simplification preserves semantics under arbitrary small models.
func TestQuickSimplifyPreservesEval(t *testing.T) {
	x, y := Var("x", IntSort), Var("y", IntSort)
	f := func(xv, yv int8, pick uint8) bool {
		m := Model{"x": {Sort: IntSort, Int: int64(xv)}, "y": {Sort: IntSort, Int: int64(yv)}}
		var e, ref *Expr
		switch pick % 5 {
		case 0:
			e, ref = Add(x, y), &Expr{Op: OpAdd, Sort: IntSort, Args: []*Expr{x, y}}
		case 1:
			e, ref = Sub(x, y), &Expr{Op: OpSub, Sort: IntSort, Args: []*Expr{x, y}}
		case 2:
			e, ref = Mul(x, y), &Expr{Op: OpMul, Sort: IntSort, Args: []*Expr{x, y}}
		case 3:
			e, ref = Lt(x, y), &Expr{Op: OpLt, Sort: BoolSort, Args: []*Expr{x, y}}
		default:
			e, ref = Le(x, y), &Expr{Op: OpLe, Sort: BoolSort, Args: []*Expr{x, y}}
		}
		a, b := m.Eval(e), m.Eval(ref)
		return a.Int == b.Int && a.Bool == b.Bool
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUninterpretedConstEquality(t *testing.T) {
	fn := Uninterpreted("Filename")
	if !Eq(Const(fn, 1), Const(fn, 1)).IsTrue() {
		t.Error("equal uninterpreted constants should fold to true")
	}
	if !Eq(Const(fn, 1), Const(fn, 2)).IsFalse() {
		t.Error("distinct uninterpreted constants should fold to false")
	}
}
