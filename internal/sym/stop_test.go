package sym

import "testing"

// pigeonhole builds an unsatisfiable formula — n integer variables,
// pairwise distinct, each confined to [0, n-2] — whose refutation requires
// exhausting a search space of tens of thousands of nodes. It is the
// cheapest way to observe where a search stops: a satisfiable formula ends
// at its first model, which the enumeration order can reach arbitrarily
// early.
func pigeonhole(n int) *Expr {
	vars := make([]*Expr, n)
	conjs := []*Expr{}
	for i := range vars {
		vars[i] = Var(string(rune('a'+i)), IntSort)
		conjs = append(conjs, Ge(vars[i], Int(0)), Le(vars[i], Int(int64(n-2))))
	}
	for i := range vars {
		for j := i + 1; j < n; j++ {
			conjs = append(conjs, Not(Eq(vars[i], vars[j])))
		}
	}
	return And(conjs...)
}

// TestSolverStopHook pins the cancellation hook's contract: once Stop
// reports true, the in-flight search aborts at the next poll, the answer
// reads as unsatisfiable, and Budget() reports true so the caller knows
// the "no" is not a proof.
func TestSolverStopHook(t *testing.T) {
	e := pigeonhole(8)

	// Baseline: the full refutation must cost well over one poll interval
	// (else the stopped run below proves nothing) and finish within the
	// default budget, reporting a definitive unsat.
	base := Solver{}
	if _, ok := base.Solve(e); ok {
		t.Fatal("pigeonhole formula is satisfiable; test formula needs adjusting")
	}
	if base.Budget() {
		t.Fatal("baseline refutation exceeded the default budget")
	}
	if base.steps <= stopCheckMask+1 {
		t.Fatalf("baseline refutation took only %d steps (want > %d)", base.steps, stopCheckMask+1)
	}

	polls := 0
	s := Solver{Stop: func() bool { polls++; return true }}
	if _, ok := s.Solve(e); ok {
		t.Error("stopped search returned a model of an unsatisfiable formula")
	}
	if !s.Budget() {
		t.Error("stopped search did not report Budget() (its answer would read as a proof)")
	}
	if polls == 0 {
		t.Error("Stop hook was never polled")
	}
	if s.steps > stopCheckMask+1 {
		t.Errorf("search ran %d steps under a Stop hook that always fires (want <= %d)", s.steps, stopCheckMask+1)
	}

	// A hook that never fires must not perturb the verdict or mark the
	// result as truncated.
	s2 := Solver{Stop: func() bool { return false }}
	if _, ok := s2.Solve(e); ok {
		t.Error("non-firing Stop hook changed the verdict")
	}
	if s2.Budget() {
		t.Error("non-firing Stop hook marked the result as budget-truncated")
	}
}
