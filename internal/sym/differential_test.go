package sym

import (
	"math/rand"
	"testing"
)

// Differential testing of the solver against brute force: random small
// formulas over a fixed finite universe, where satisfiability can be
// decided by exhaustive enumeration. The solver's candidate domains must
// subsume the universe's behavior (its domain construction guarantees
// completeness for equality patterns and constant-neighborhood arithmetic,
// which is how the generator draws its constants).

type exprGen struct {
	r     *rand.Rand
	ints  []*Expr
	names []*Expr
	bools []*Expr
}

func newGen(r *rand.Rand) *exprGen {
	g := &exprGen{r: r}
	sortU := Uninterpreted("U")
	for i := 0; i < 3; i++ {
		g.ints = append(g.ints, Var(string(rune('i'+i))+"x", IntSort))
		g.names = append(g.names, Var(string(rune('u'+i))+"x", sortU))
		g.bools = append(g.bools, Var(string(rune('p'+i))+"x", BoolSort))
	}
	return g
}

func (g *exprGen) intTerm(depth int) *Expr {
	switch g.r.Intn(4) {
	case 0:
		return Int(int64(g.r.Intn(4)))
	case 1, 2:
		return g.ints[g.r.Intn(len(g.ints))]
	default:
		if depth <= 0 {
			return g.ints[g.r.Intn(len(g.ints))]
		}
		a, b := g.intTerm(depth-1), g.intTerm(depth-1)
		if g.r.Intn(2) == 0 {
			return Add(a, b)
		}
		return Sub(a, b)
	}
}

func (g *exprGen) boolTerm(depth int) *Expr {
	if depth <= 0 {
		switch g.r.Intn(3) {
		case 0:
			return g.bools[g.r.Intn(len(g.bools))]
		case 1:
			return Eq(g.names[g.r.Intn(len(g.names))], g.names[g.r.Intn(len(g.names))])
		default:
			return Lt(g.intTerm(0), g.intTerm(0))
		}
	}
	switch g.r.Intn(6) {
	case 0:
		return Not(g.boolTerm(depth - 1))
	case 1:
		return And(g.boolTerm(depth-1), g.boolTerm(depth-1))
	case 2:
		return Or(g.boolTerm(depth-1), g.boolTerm(depth-1))
	case 3:
		return Le(g.intTerm(1), g.intTerm(1))
	case 4:
		return Eq(g.intTerm(1), g.intTerm(1))
	default:
		return Ite(g.boolTerm(depth-1), g.boolTerm(depth-1), g.boolTerm(depth-1))
	}
}

// bruteSat enumerates the fixed universe: ints in [-2, 5], uninterpreted
// elements in [0, 3], booleans. The generator draws constants from [0, 3],
// so this universe is wide enough to witness every satisfiable formula the
// generator can produce (values beyond constant reach can be renamed into
// range without changing any predicate).
func bruteSat(e *Expr) bool {
	vars := Vars(e)
	m := Model{}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(vars) {
			v, ok := m.TryEval(e)
			return ok && v.Bool
		}
		v := vars[i]
		switch v.Sort.Kind {
		case KindBool:
			for _, b := range []bool{false, true} {
				m[v.Name] = Value{Sort: BoolSort, Bool: b}
				if rec(i + 1) {
					return true
				}
			}
		case KindInt:
			for x := int64(-2); x <= 5; x++ {
				m[v.Name] = Value{Sort: IntSort, Int: x}
				if rec(i + 1) {
					return true
				}
			}
		case KindUnint:
			for x := int64(0); x <= 3; x++ {
				m[v.Name] = Value{Sort: v.Sort, Int: x}
				if rec(i + 1) {
					return true
				}
			}
		}
		delete(m, v.Name)
		return false
	}
	return rec(0)
}

func TestSolverAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g := newGen(r)
	var s Solver
	for trial := 0; trial < 400; trial++ {
		e := g.boolTerm(3)
		want := bruteSat(e)
		got := s.Sat(e)
		if got != want {
			t.Fatalf("trial %d: solver=%v brute=%v for %v", trial, got, want, e)
		}
		// Models returned must actually satisfy the formula.
		if got {
			m, ok := s.Solve(e)
			if !ok {
				t.Fatalf("trial %d: Sat true but Solve failed", trial)
			}
			if v, k := m.TryEval(e); !k || !v.Bool {
				t.Fatalf("trial %d: model does not satisfy %v: %v", trial, e, m)
			}
		}
	}
}

func TestSatAssumingAgainstDirect(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	g := newGen(r)
	var s Solver
	for trial := 0; trial < 250; trial++ {
		var base *Expr = True
		for i := 0; i < 3; i++ {
			base = And(base, g.boolTerm(2))
		}
		if !s.Sat(base) {
			continue // SatAssuming's precondition requires base SAT
		}
		extra := g.boolTerm(2)
		want := s.Sat(And(base, extra))
		_, got := s.SatAssuming(base, extra)
		if got != want {
			t.Fatalf("trial %d: SatAssuming=%v direct=%v\nbase: %v\nextra: %v",
				trial, got, want, base, extra)
		}
	}
}
