// Package memkv is the reference in-memory implementation of the kv spec
// (internal/kvspec): an ordered key-value store built on traced mtrace
// cells so the standard MTRACE runner can check conflict-freedom.
//
// Cell placement follows the partitioned-map design the rule predicts:
// every key owns a presence cell and a value cell (think one B-tree leaf
// — or hash bucket — per key, with no shared root version), so point
// operations on distinct keys touch disjoint cells and run conflict-free.
// A scan walks the key domain in order and reads the presence cell of
// every key in its window (and the value cell of the live ones), so a
// mutation inside the scanned range conflicts with the scan — exactly the
// pairs the spec says do not commute — while mutations outside the window
// share nothing with it.
package memkv

import (
	"repro/internal/kernel"
	"repro/internal/mtrace"
)

// binding is one key's cells: presence (0/1) and value.
type binding struct {
	present *mtrace.Cell
	val     *mtrace.Cell
}

// nKeys and maxVal mirror the spec's bounds (kvspec.NKeys/MaxVal;
// duplicated here because the spec package imports this one).
const (
	nKeys      = 3
	maxVal     = 3
	scanWeight = maxVal + 2
)

// Kern is the kv-spec reference implementation.
type Kern struct {
	mem  *mtrace.Memory
	keys map[int64]*binding
}

var _ kernel.Kernel = (*Kern)(nil)

// New returns a fresh, empty store instance.
func New() *Kern {
	return &Kern{mem: mtrace.NewMemory(), keys: map[int64]*binding{}}
}

// Name identifies the implementation.
func (k *Kern) Name() string { return "memkv" }

// Memory returns the traced memory.
func (k *Kern) Memory() *mtrace.Memory { return k.mem }

// Snapshot opens a snapshot region for batched replay. Cell values are
// journaled by the memory itself; binding creation registers an OnReset
// hook at the mutation site, so a Reset leaves the key map structurally
// identical to the snapshot point — a replayed run re-creates bindings
// exactly like a fresh kernel would.
func (k *Kern) Snapshot() { k.mem.Snapshot() }

// Reset rolls the kernel back to the innermost Snapshot.
func (k *Kern) Reset() { k.mem.Reset() }

// binding returns (creating on first use) one key's cells. Creation
// allocates cells but records no accesses; the OnReset hook undoes the
// map insert so replayed state matches fresh state.
func (k *Kern) binding(key int64) *binding {
	b, ok := k.keys[key]
	if !ok {
		b = &binding{
			present: k.mem.NewCellf(0, "kv[%d].present", key),
			val:     k.mem.NewCellf(0, "kv[%d].val", key),
		}
		key := key
		k.mem.OnReset(func() { delete(k.keys, key) })
		k.keys[key] = b
	}
	return b
}

// Apply seeds the store bindings from the setup (untraced); fields of
// other interfaces are ignored.
func (k *Kern) Apply(s kernel.Setup) error {
	for _, kv := range s.KVs {
		b := k.binding(kv.Key)
		b.present.Poke(1)
		b.val.Poke(kv.Val)
	}
	return nil
}

func errR(errno int64) kernel.Result { return kernel.Result{Code: -errno} }

// Exec performs one store operation on the given simulated core.
func (k *Kern) Exec(core int, c kernel.Call) kernel.Result {
	switch c.Op {
	case "get":
		b := k.binding(c.Arg("key"))
		if b.present.Load(core) == 0 {
			return errR(kernel.ENOENT)
		}
		return kernel.Result{Code: 0, Data: b.val.Load(core)}
	case "put":
		b := k.binding(c.Arg("key"))
		b.present.Store(core, 1)
		b.val.Store(core, c.Arg("val"))
		return kernel.Result{Code: 0}
	case "delete":
		b := k.binding(c.Arg("key"))
		if b.present.Load(core) == 0 {
			return errR(kernel.ENOENT)
		}
		b.present.Store(core, 0)
		b.val.Store(core, 0)
		return kernel.Result{Code: 0}
	case "scan":
		lo, hi := c.Arg("lo"), c.Arg("hi")
		var count, fp, weight int64 = 0, 0, 1
		for key := int64(0); key < nKeys; key++ {
			if lo <= key && key <= hi {
				b := k.binding(key)
				if b.present.Load(core) != 0 {
					count++
					fp += (b.val.Load(core) + 1) * weight
				}
			}
			weight *= scanWeight
		}
		return kernel.Result{Code: count, V1: fp}
	}
	panic("memkv: unknown op " + c.Op)
}
