package memq

import (
	"testing"

	"repro/internal/kernel"
)

func call(op string, args map[string]int64) kernel.Call {
	if args == nil {
		args = map[string]int64{}
	}
	return kernel.Call{Op: op, Args: args}
}

// TestOrderedFIFO pins send/recv semantics: FIFO order, sequence-number
// receipts, EAGAIN on empty.
func TestOrderedFIFO(t *testing.T) {
	k := New()
	if r := k.Exec(0, call("recv", nil)); r.Code != -kernel.EAGAIN {
		t.Fatalf("recv on empty = %v, want EAGAIN", r)
	}
	for i, v := range []int64{7, 8, 9} {
		r := k.Exec(0, call("send", map[string]int64{"val": v}))
		if r.Code != int64(i) {
			t.Fatalf("send #%d receipt = %v, want %d", i, r, i)
		}
	}
	if r := k.Exec(0, call("status", nil)); r.Code != 3 {
		t.Fatalf("status = %v, want 3", r)
	}
	for i, v := range []int64{7, 8, 9} {
		r := k.Exec(1, call("recv", nil))
		if r.Code != 0 || r.V1 != int64(i) || r.Data != v {
			t.Fatalf("recv #%d = %v, want seq %d val %d", i, r, i, v)
		}
	}
	if r := k.Exec(1, call("recv", nil)); r.Code != -kernel.EAGAIN {
		t.Fatalf("recv after drain = %v, want EAGAIN", r)
	}
}

// TestPerCoreQueues pins the unordered variants' isolation: each core's
// send_any/recv_any work its own queue.
func TestPerCoreQueues(t *testing.T) {
	k := New()
	k.Exec(0, call("send_any", map[string]int64{"val": 5}))
	if r := k.Exec(1, call("recv_any", nil)); r.Code != -kernel.EAGAIN {
		t.Fatalf("core 1 recv_any saw core 0's message: %v", r)
	}
	if r := k.Exec(0, call("recv_any", nil)); r.Code != 0 || r.Data != 5 {
		t.Fatalf("core 0 recv_any = %v, want val 5", r)
	}
	if r := k.Exec(0, call("status", nil)); r.Code != 0 {
		t.Fatalf("status counts unordered messages: %v", r)
	}
}

// TestApplySeedsBacklogs pins setup application for both queue kinds.
func TestApplySeedsBacklogs(t *testing.T) {
	k := New()
	err := k.Apply(kernel.Setup{Queues: []kernel.SetupQueue{
		{Core: -1, Items: []int64{4, 5}},
		{Core: 1, Items: []int64{6}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if r := k.Exec(0, call("recv", nil)); r.Data != 4 {
		t.Fatalf("seeded ordered head = %v, want 4", r)
	}
	if r := k.Exec(1, call("recv_any", nil)); r.Data != 6 {
		t.Fatalf("seeded core-1 queue = %v, want 6", r)
	}
}

// TestSendRecvNonEmptyConflictFree pins the implementation's scalability
// claim directly: on a non-empty queue, concurrent send and recv touch
// disjoint cells (split cursors, per-slot full flags), so the MTRACE
// check reports conflict-freedom — while on an empty queue the two
// operations genuinely collide (and genuinely don't commute).
func TestSendRecvNonEmptyConflictFree(t *testing.T) {
	tc := kernel.TestCase{
		ID:    "send_recv_nonempty",
		Setup: kernel.Setup{Queues: []kernel.SetupQueue{{Core: -1, Items: []int64{1}}}},
		Calls: [2]kernel.Call{
			call("send", map[string]int64{"val": 2}),
			call("recv", nil),
		},
	}
	res, err := kernel.Check(func() kernel.Kernel { return New() }, tc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ConflictFree {
		t.Errorf("non-empty send||recv conflicts: %v", res.Conflicts)
	}
	if !res.Commuted {
		t.Errorf("non-empty send||recv results differ across orders: %v vs %v", res.Res, res.ResSwapped)
	}

	empty := kernel.TestCase{
		ID:    "send_recv_empty",
		Calls: tc.Calls,
	}
	res, err = kernel.Check(func() kernel.Kernel { return New() }, empty)
	if err != nil {
		t.Fatal(err)
	}
	if res.ConflictFree {
		t.Error("empty-queue send||recv reported conflict-free; the slot handoff must collide")
	}
}
