// Package memq is the reference in-memory implementation of the queue
// spec (internal/queuespec): a shared ordered FIFO plus per-core
// unordered queues, built on traced mtrace cells so the standard MTRACE
// runner can check its conflict-freedom.
//
// Cell placement follows the sv6 pipe design: head and tail live on
// separate cache lines, each slot has its own message and full-flag
// cells, and receivers detect emptiness from the head slot's full flag —
// never by reading tail — so send/recv of a non-empty queue is
// conflict-free, exactly the executions the spec says commute. The
// unordered operations use the calling core's own queue (the §4 mail
// server's per-core load balancing), so send_any/recv_any from different
// cores touch disjoint cells.
package memq

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/mtrace"
)

// fifo is one queue's cells: cursors on their own lines plus per-slot
// message and full-flag cells, created lazily by sequence number.
type fifo struct {
	mem   *mtrace.Memory
	label string
	head  *mtrace.Cell
	tail  *mtrace.Cell
	msgs  map[int64]*mtrace.Cell
	full  map[int64]*mtrace.Cell
}

func newFifo(mem *mtrace.Memory, label string) *fifo {
	return &fifo{
		mem:   mem,
		label: label,
		head:  mem.NewCell(label+".head", 0),
		tail:  mem.NewCell(label+".tail", 0),
		msgs:  map[int64]*mtrace.Cell{},
		full:  map[int64]*mtrace.Cell{},
	}
}

func (q *fifo) msg(seq int64) *mtrace.Cell {
	c, ok := q.msgs[seq]
	if !ok {
		c = q.mem.NewCellf(0, "%s.msg[%d]", q.label, seq)
		q.msgs[seq] = c
	}
	return c
}

func (q *fifo) fullFlag(seq int64) *mtrace.Cell {
	c, ok := q.full[seq]
	if !ok {
		c = q.mem.NewCellf(0, "%s.full[%d]", q.label, seq)
		q.full[seq] = c
	}
	return c
}

// send appends a message: writers own tail and the tail slot.
func (q *fifo) send(core int, val int64) int64 {
	t := q.tail.Load(core)
	q.msg(t).Store(core, val)
	q.fullFlag(t).Store(core, 1)
	q.tail.Store(core, t+1)
	return t
}

// recv takes the head message. Emptiness comes from the head slot's full
// flag, so receivers never read tail and a non-empty queue's send||recv
// is conflict-free.
func (q *fifo) recv(core int) (seq, val int64, ok bool) {
	h := q.head.Load(core)
	fc := q.fullFlag(h)
	if fc.Load(core) == 0 {
		return 0, 0, false
	}
	v := q.msg(h).Load(core)
	fc.Store(core, 0)
	q.head.Store(core, h+1)
	return h, v, true
}

// seed installs a backlog untraced (test setup).
func (q *fifo) seed(items []int64) {
	for i, v := range items {
		q.msg(int64(i)).Poke(v)
		q.fullFlag(int64(i)).Poke(1)
	}
	q.head.Poke(0)
	q.tail.Poke(int64(len(items)))
}

// Kern is the queue-spec reference implementation.
type Kern struct {
	mem *mtrace.Memory
	ord *fifo
	any map[int64]*fifo
}

// New returns a fresh, empty implementation instance.
func New() *Kern {
	mem := mtrace.NewMemory()
	return &Kern{mem: mem, ord: newFifo(mem, "mq"), any: map[int64]*fifo{}}
}

// Name identifies the implementation.
func (k *Kern) Name() string { return "memq" }

// Memory returns the traced memory.
func (k *Kern) Memory() *mtrace.Memory { return k.mem }

// Snapshot opens a snapshot region for batched replay. All of memq's
// state lives in traced cells (lazily created fifos persist across Reset
// with their cells value-restored, which is indistinguishable from fresh
// creation), so the journal alone suffices — no OnReset hooks.
func (k *Kern) Snapshot() { k.mem.Snapshot() }

// Reset rolls the kernel back to the innermost Snapshot.
func (k *Kern) Reset() { k.mem.Reset() }

// coreQ returns (creating on first use) the per-core unordered queue.
// Creation allocates cells but records no accesses, so lazily building a
// queue inside a traced section is conflict-neutral.
func (k *Kern) coreQ(core int) *fifo {
	q, ok := k.any[int64(core)]
	if !ok {
		q = newFifo(k.mem, fmt.Sprintf("anyq[%d]", core))
		k.any[int64(core)] = q
	}
	return q
}

// Apply seeds queue backlogs from the setup (untraced); the fs/VM setup
// fields belong to the POSIX kernels and are ignored.
func (k *Kern) Apply(s kernel.Setup) error {
	for _, sq := range s.Queues {
		if sq.Core < 0 {
			k.ord.seed(sq.Items)
			continue
		}
		k.coreQ(int(sq.Core)).seed(sq.Items)
	}
	return nil
}

func errR(errno int64) kernel.Result { return kernel.Result{Code: -errno} }

// Exec performs one queue operation on the given simulated core.
func (k *Kern) Exec(core int, c kernel.Call) kernel.Result {
	switch c.Op {
	case "send":
		seq := k.ord.send(core, c.Arg("val"))
		return kernel.Result{Code: seq}
	case "recv":
		seq, val, ok := k.ord.recv(core)
		if !ok {
			return errR(kernel.EAGAIN)
		}
		return kernel.Result{Code: 0, V1: seq, Data: val}
	case "send_any":
		k.coreQ(core).send(core, c.Arg("val"))
		return kernel.Result{Code: 0}
	case "recv_any":
		_, val, ok := k.coreQ(core).recv(core)
		if !ok {
			return errR(kernel.EAGAIN)
		}
		return kernel.Result{Code: 0, Data: val}
	case "status":
		n := k.ord.tail.Load(core) - k.ord.head.Load(core)
		return kernel.Result{Code: n}
	}
	panic("memq: unknown op " + c.Op)
}
