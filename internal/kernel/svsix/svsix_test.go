package svsix

import (
	"testing"

	"repro/internal/kernel"
)

func apply(t *testing.T, k *Kern, s kernel.Setup) {
	t.Helper()
	if err := k.Apply(s); err != nil {
		t.Fatal(err)
	}
}

// Length reconciliation: with no shared length cell, the maximum present
// page defines the file length, including after truncation and sparse
// extension.
func TestLengthReconciliation(t *testing.T) {
	k := New()
	apply(t, k, kernel.Setup{
		Files:  []kernel.SetupFile{{Name: "f0", Inum: 1}},
		Inodes: []kernel.SetupInode{{Inum: 1, Len: 2}},
		FDs:    []kernel.SetupFD{{Proc: 0, FD: 0, Inum: 1}},
	})
	if r := k.Exec(0, kernel.Call{Op: "fstat", Args: map[string]int64{"fd": 0}}); r.V3 != 2 {
		t.Errorf("initial len = %v", r)
	}
	// Sparse extension: pwrite at page 5 makes the length 6.
	if r := k.Exec(0, kernel.Call{Op: "pwrite", Args: map[string]int64{"fd": 0, "off": 5, "val": 9}}); r.Code != 1 {
		t.Fatalf("pwrite: %v", r)
	}
	if r := k.Exec(0, kernel.Call{Op: "fstat", Args: map[string]int64{"fd": 0}}); r.V3 != 6 {
		t.Errorf("len after sparse pwrite = %v, want 6", r)
	}
	// The hole reads as zero, not stale data.
	if r := k.Exec(0, kernel.Call{Op: "pread", Args: map[string]int64{"fd": 0, "off": 3}}); r.Code != 1 || r.Data != 0 {
		t.Errorf("hole read = %v, want zero page", r)
	}
	// Truncate drops everything.
	if r := k.Exec(0, kernel.Call{Op: "open", Args: map[string]int64{"fname": 0, "trunc": 1, "anyfd": 1}}); r.Code < 0 {
		t.Fatalf("trunc open: %v", r)
	}
	if r := k.Exec(0, kernel.Call{Op: "fstat", Args: map[string]int64{"fd": 0}}); r.V3 != 0 {
		t.Errorf("len after trunc = %v, want 0", r)
	}
}

// Per-core O_ANYFD descriptors never collide across cores, and the
// lowest-FD mode matches POSIX.
func TestFDAllocationModes(t *testing.T) {
	k := New()
	apply(t, k, kernel.Setup{
		Files:  []kernel.SetupFile{{Name: "f0", Inum: 1}},
		Inodes: []kernel.SetupInode{{Inum: 1}},
	})
	seen := map[int64]bool{}
	for core := 0; core < 4; core++ {
		for i := 0; i < 3; i++ {
			r := k.Exec(core, kernel.Call{Op: "open", Args: map[string]int64{"fname": 0, "anyfd": 1}})
			if r.Code < 0 {
				t.Fatalf("open: %v", r)
			}
			if seen[r.Code] {
				t.Fatalf("any-FD collision on %d", r.Code)
			}
			seen[r.Code] = true
		}
	}
	// Lowest mode: fresh kernel, sequential opens get 0,1,2.
	k2 := New()
	apply(t, k2, kernel.Setup{
		Files:  []kernel.SetupFile{{Name: "f0", Inum: 1}},
		Inodes: []kernel.SetupInode{{Inum: 1}},
	})
	for want := int64(0); want < 3; want++ {
		r := k2.Exec(0, kernel.Call{Op: "open", Args: map[string]int64{"fname": 0}})
		if r.Code != want {
			t.Errorf("lowest-FD open = %d, want %d", r.Code, want)
		}
	}
}

// Inode numbers are never reused (ScaleFS's defer-work design).
func TestInodeNumbersNeverReused(t *testing.T) {
	k := New()
	apply(t, k, kernel.Setup{})
	seen := map[int64]bool{}
	for i := int64(0); i < 5; i++ {
		r := k.Exec(0, kernel.Call{Op: "open", Args: map[string]int64{"fname": i, "creat": 1, "anyfd": 1}})
		if r.Code < 0 {
			t.Fatal(r)
		}
		st := k.Exec(0, kernel.Call{Op: "stat", Args: map[string]int64{"fname": i}})
		if seen[st.V1] {
			t.Fatalf("inode %d reused", st.V1)
		}
		seen[st.V1] = true
		k.Exec(0, kernel.Call{Op: "unlink", Args: map[string]int64{"fname": i}})
	}
}

// SharedLinkCount swaps the nlink representation without changing results.
func TestSharedLinkCountOption(t *testing.T) {
	for _, shared := range []bool{false, true} {
		k := NewOpts(Opts{SharedLinkCount: shared})
		apply(t, k, kernel.Setup{
			Files:  []kernel.SetupFile{{Name: "f0", Inum: 1}},
			Inodes: []kernel.SetupInode{{Inum: 1}},
		})
		k.Exec(0, kernel.Call{Op: "link", Args: map[string]int64{"old": 0, "new": 1}})
		r := k.Exec(1, kernel.Call{Op: "stat", Args: map[string]int64{"fname": 0}})
		if r.V2 != 2 {
			t.Errorf("shared=%v: nlink = %v, want 2", shared, r)
		}
	}
}

// fstatx's nolink selection must not read the link count's cache lines.
func TestFstatxSkipsLinkCount(t *testing.T) {
	k := New()
	apply(t, k, kernel.Setup{
		Files:  []kernel.SetupFile{{Name: "f0", Inum: 1}},
		Inodes: []kernel.SetupInode{{Inum: 1}},
		FDs:    []kernel.SetupFD{{Proc: 0, FD: 0, Inum: 1}},
	})
	mem := k.Memory()
	mem.Start()
	k.Exec(0, kernel.Call{Op: "fstatx", Args: map[string]int64{"fd": 0, "nolink": 1}})
	k.Exec(1, kernel.Call{Op: "link", Args: map[string]int64{"old": 0, "new": 1}})
	mem.Stop()
	if !mem.ConflictFree() {
		t.Errorf("fstatx must not conflict with link: %v", mem.Conflicts())
	}
	// Plain fstat does conflict (it reconciles the Refcache count).
	mem.Start()
	k.Exec(0, kernel.Call{Op: "fstat", Args: map[string]int64{"fd": 0}})
	k.Exec(1, kernel.Call{Op: "unlink", Args: map[string]int64{"fname": 1}})
	mem.Stop()
	if mem.ConflictFree() {
		t.Error("fstat should conflict with concurrent link-count updates")
	}
}
