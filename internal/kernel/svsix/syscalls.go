package svsix

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/mtrace"
	"repro/internal/scale"
)

// maxScan bounds page-presence scans when reconciling file lengths; test
// cases and benchmarks keep files within this many pages.
const maxScan = 8

// Exec implements kernel.Kernel.
func (k *Kern) Exec(core int, c kernel.Call) kernel.Result {
	switch c.Op {
	case "open":
		return k.open(core, c)
	case "link":
		return k.link(core, c)
	case "unlink":
		return k.unlink(core, c)
	case "rename":
		return k.rename(core, c)
	case "stat":
		return k.stat(core, c)
	case "fstat":
		return k.fstat(core, c)
	case "fstatx":
		return k.fstat(core, c) // field selection via the "nolink" arg
	case "lseek":
		return k.lseek(core, c)
	case "close":
		return k.close(core, c)
	case "pipe":
		return k.pipe(core, c)
	case "read":
		return k.read(core, c)
	case "write":
		return k.write(core, c)
	case "pread":
		return k.pread(core, c)
	case "pwrite":
		return k.pwrite(core, c)
	case "mmap":
		return k.mmap(core, c)
	case "munmap":
		return k.munmap(core, c)
	case "mprotect":
		return k.mprotect(core, c)
	case "memread":
		return k.memread(core, c)
	case "memwrite":
		return k.memwrite(core, c)
	}
	panic(fmt.Sprintf("svsix: unknown op %q", c.Op))
}

func (k *Kern) open(core int, c kernel.Call) kernel.Result {
	name := c.Arg("fname")
	creat, excl, trunc := c.ArgBool("creat"), c.ArgBool("excl"), c.ArgBool("trunc")
	// Optimistic check stage (§6.3): a lock-free lookup handles the
	// no-update cases (plain open, EEXIST) without writes.
	inum, exists := k.dir.Lookup(core, name)
	switch {
	case exists && creat && excl:
		return errR(kernel.EEXIST)
	case exists:
		if trunc {
			ino := k.inode(inum)
			for pg := int64(0); pg < maxScan; pg++ {
				if ino.pagePresent.Get(core, pg) != 0 {
					ino.pagePresent.Set(core, pg, 0)
				}
			}
		}
	case !creat:
		return errR(kernel.ENOENT)
	default:
		// Pessimistic update stage: allocate from the per-core pool and
		// publish under the bucket lock, re-verifying existence.
		inum = k.inoAlloc.Alloc(core)
		ino := k.inode(inum)
		ino.linkInc(core, 1)
		if !k.dir.Insert(core, name, inum) {
			// Raced with another creator (unreachable single-threaded).
			ino.linkInc(core, -1)
			inum, _ = k.dir.Lookup(core, name)
		}
	}
	f := &file{
		off:  k.mem.NewCellf(0, "file[new:%d].off", inum),
		inum: inum,
	}
	fd := k.allocFD(core, c.Proc, f, c.ArgBool("anyfd"))
	return kernel.Result{Code: fd}
}

func (k *Kern) link(core int, c kernel.Call) kernel.Result {
	old, nw := c.Arg("old"), c.Arg("new")
	inum, ok := k.dir.Lookup(core, old)
	if !ok {
		return errR(kernel.ENOENT)
	}
	// Optimistic check stage (§6.3): an existing target fails with no
	// writes and no lock, so identical failing links commute conflict-
	// free; Insert re-verifies under the bucket lock.
	if k.dir.Exists(core, nw) {
		return errR(kernel.EEXIST)
	}
	if !k.dir.Insert(core, nw, inum) {
		return errR(kernel.EEXIST)
	}
	k.inode(inum).linkInc(core, 1)
	return kernel.Result{}
}

func (k *Kern) unlink(core int, c kernel.Call) kernel.Result {
	name := c.Arg("fname")
	// Optimistic check stage: a missing name fails lock-free.
	if !k.dir.Exists(core, name) {
		return errR(kernel.ENOENT)
	}
	inum, ok := k.dir.Remove(core, name)
	if !ok {
		return errR(kernel.ENOENT)
	}
	// Defer work (§6.3): the link count drops via per-core deltas and
	// the inode is garbage-collected later; numbers are never reused.
	k.inode(inum).linkInc(core, -1)
	return kernel.Result{}
}

// rename follows the model's Figure 4 semantics with ScaleFS's patterns:
// existence checks never read inodes, and the destination entry is not
// written when it already points at the source's inode.
func (k *Kern) rename(core int, c kernel.Call) kernel.Result {
	src, dst := c.Arg("src"), c.Arg("dst")
	si, ok := k.dir.Lookup(core, src)
	if !ok {
		return errR(kernel.ENOENT)
	}
	if src == dst {
		return kernel.Result{}
	}
	if di, ok := k.dir.Lookup(core, dst); ok && di == si {
		// Don't read or write what you don't need: b already points at
		// the right inode, so only the source entry changes. Figure 4's
		// model still drops one link (two names collapsed to one).
		k.dir.Remove(core, src)
		k.inode(si).linkInc(core, -1)
		return kernel.Result{}
	}
	old := k.dir.Replace(core, dst, si)
	if old != 0 {
		k.inode(old).linkInc(core, -1)
	}
	k.dir.Remove(core, src)
	return kernel.Result{}
}

func (k *Kern) statResult(core int, inum int64, nolink bool) kernel.Result {
	ino := k.inode(inum)
	var nlink int64
	if !nolink {
		nlink = ino.linkRead(core)
	}
	return kernel.Result{V1: inum, V2: nlink, V3: ino.length(core, maxScan)}
}

func (k *Kern) stat(core int, c kernel.Call) kernel.Result {
	inum, ok := k.dir.Lookup(core, c.Arg("fname"))
	if !ok {
		return errR(kernel.ENOENT)
	}
	return k.statResult(core, inum, c.ArgBool("nolink"))
}

func (k *Kern) fstat(core int, c kernel.Call) kernel.Result {
	f := k.fget(core, c.Proc, c.Arg("fd"))
	if f == nil {
		return errR(kernel.EBADF)
	}
	if f.pipe != nil {
		n := f.pipe.tail.Load(core) - f.pipe.head.Load(core)
		return kernel.Result{V1: -pipeID(f), V2: 1, V3: n}
	}
	return k.statResult(core, f.inum, c.ArgBool("nolink"))
}

func pipeID(f *file) int64 {
	var id int64
	fmt.Sscanf(f.pipe.head.Name(), "pipe[%d].head", &id)
	return id
}

func (k *Kern) lseek(core int, c kernel.Call) kernel.Result {
	f := k.fget(core, c.Proc, c.Arg("fd"))
	if f == nil {
		return errR(kernel.EBADF)
	}
	if f.pipe != nil {
		return errR(kernel.ESPIPE)
	}
	delta := c.Arg("delta")
	cur := f.off.Load(core)
	var n int64
	switch {
	case c.ArgBool("wset"):
		n = delta
	case c.ArgBool("wend"):
		n = k.inode(f.inum).length(core, maxScan) + delta
	default:
		n = cur + delta
	}
	if n < 0 {
		return errR(kernel.EINVAL)
	}
	// Precede pessimism with optimism (§6.3): seeking to the current
	// offset needs no write. Two lseeks to the same target still share
	// the offset cell — the §6.4 idempotent-update trade-off.
	if n != cur {
		f.off.Store(core, n)
	}
	return kernel.Result{V1: n}
}

func (k *Kern) close(core int, c kernel.Call) kernel.Result {
	f := k.fget(core, c.Proc, c.Arg("fd"))
	if f == nil {
		return errR(kernel.EBADF)
	}
	f.slot.Store(core, 0)
	if f.pipe != nil {
		// §6.4: pipe ends must observe the last close immediately, so a
		// shared count is kept — a deliberately non-scalable case.
		f.pipe.refs.Add(core, -1)
	}
	return kernel.Result{}
}

func (k *Kern) pipe(core int, c kernel.Call) kernel.Result {
	old := k.nextPipe
	k.mem.OnReset(func() { k.nextPipe = old })
	k.nextPipe++
	p := k.newPipe(k.nextPipe + int64(core)*1000000)
	p.refs.Store(core, 2)
	anyfd := c.ArgBool("anyfd")
	rf := &file{off: k.mem.NewCellf(0, "file[piper].off"), pipe: p}
	rfd := k.allocFD(core, c.Proc, rf, anyfd)
	wf := &file{off: k.mem.NewCellf(0, "file[pipew].off"), pipe: p, wend: true}
	wfd := k.allocFD(core, c.Proc, wf, anyfd)
	return kernel.Result{V1: rfd, V2: wfd}
}

func (k *Kern) read(core int, c kernel.Call) kernel.Result {
	f := k.fget(core, c.Proc, c.Arg("fd"))
	if f == nil {
		return errR(kernel.EBADF)
	}
	if f.pipe != nil {
		if f.wend {
			return errR(kernel.EBADF)
		}
		p := f.pipe
		// Readers own head, writers own tail; emptiness is detected
		// from the head slot's full flag, so read||write of a non-empty
		// pipe is conflict-free (§4 weak ordering).
		h := p.head.Load(core)
		fullCell := p.slotFull(k.mem, h)
		if fullCell.Load(core) == 0 {
			return errR(kernel.EAGAIN)
		}
		v := p.item(k.mem, h).Load(core)
		fullCell.Store(core, 0)
		p.head.Store(core, h+1)
		return kernel.Result{Code: 1, Data: v}
	}
	ino := k.inode(f.inum)
	off := f.off.Load(core)
	// Layer scalability (§6.3): bounds come from the per-page presence
	// radix, not a shared length cell, so reads don't conflict with
	// appends elsewhere in the file. Only the miss path (a hole or EOF)
	// reconciles the length, and reads racing the end of the file don't
	// commute with extension anyway.
	if ino.pagePresent.Get(core, off) == 0 {
		if off >= ino.length(core, maxScan) {
			return kernel.Result{Code: 0} // EOF
		}
		f.off.Store(core, off+1)
		return kernel.Result{Code: 1, Data: 0} // hole: reads as zero
	}
	v := ino.pages.Get(core, off)
	f.off.Store(core, off+1)
	return kernel.Result{Code: 1, Data: v}
}

func (k *Kern) write(core int, c kernel.Call) kernel.Result {
	f := k.fget(core, c.Proc, c.Arg("fd"))
	if f == nil {
		return errR(kernel.EBADF)
	}
	val := c.Arg("val")
	if f.pipe != nil {
		if !f.wend {
			return errR(kernel.EBADF)
		}
		p := f.pipe
		t := p.tail.Load(core)
		p.item(k.mem, t).Store(core, val)
		p.slotFull(k.mem, t).Store(core, 1)
		p.tail.Store(core, t+1)
		return kernel.Result{Code: 1}
	}
	ino := k.inode(f.inum)
	off := f.off.Load(core)
	ino.pages.Set(core, off, val)
	// Double-checked presence: rewriting an existing page must not write
	// the presence cell that readers of other offsets scan (§6.3's
	// "precede pessimism with optimism").
	if ino.pagePresent.Get(core, off) == 0 {
		ino.pagePresent.Set(core, off, 1)
	}
	f.off.Store(core, off+1)
	return kernel.Result{Code: 1}
}

func (k *Kern) pread(core int, c kernel.Call) kernel.Result {
	f := k.fget(core, c.Proc, c.Arg("fd"))
	if f == nil {
		return errR(kernel.EBADF)
	}
	if f.pipe != nil {
		return errR(kernel.ESPIPE)
	}
	ino := k.inode(f.inum)
	off := c.Arg("off")
	if ino.pagePresent.Get(core, off) == 0 {
		if off >= ino.length(core, maxScan) {
			return kernel.Result{Code: 0} // EOF
		}
		return kernel.Result{Code: 1, Data: 0} // hole
	}
	return kernel.Result{Code: 1, Data: ino.pages.Get(core, off)}
}

func (k *Kern) pwrite(core int, c kernel.Call) kernel.Result {
	f := k.fget(core, c.Proc, c.Arg("fd"))
	if f == nil {
		return errR(kernel.EBADF)
	}
	if f.pipe != nil {
		return errR(kernel.ESPIPE)
	}
	ino := k.inode(f.inum)
	off := c.Arg("off")
	ino.pages.Set(core, off, c.Arg("val"))
	if ino.pagePresent.Get(core, off) == 0 {
		ino.pagePresent.Set(core, off, 1)
	}
	return kernel.Result{Code: 1}
}

func (k *Kern) vma(pr int, page int64) *vmaCell {
	p := k.procs[pr]
	v, ok := p.vmas[page]
	if !ok {
		v = &vmaCell{cell: k.mem.NewCellf(0, "proc%d.vma[%d]", pr, page)}
		p.vmas[page] = v
	}
	return v
}

func (k *Kern) anonPage(pr int, page int64) *mtrace.Cell {
	p := k.procs[pr]
	c, ok := p.anon[page]
	if !ok {
		c = k.mem.NewCellf(0, "proc%d.anonpage[%d]", pr, page)
		p.anon[page] = c
	}
	return c
}

func (k *Kern) mmap(core int, c kernel.Call) kernel.Result {
	pr := c.Proc
	p := k.procs[pr]
	addr := c.Arg("page")
	if !c.ArgBool("fixed") {
		// RadixVM address allocation: per-core partitions, no shared
		// cursor and no whole-address-space lock.
		n := p.nextAddr[core].Load(core)
		p.nextAddr[core].Store(core, n+1)
		addr = 1000 + n*scale.NCores + int64(core)
	}
	v := k.vma(pr, addr)
	var nv vmaCell
	if c.ArgBool("anon") {
		nv = vmaCell{anon: true, wr: c.ArgBool("wr")}
	} else {
		f := k.fget(core, pr, c.Arg("fd"))
		if f == nil {
			return errR(kernel.EBADF)
		}
		if f.pipe != nil {
			return errR(kernel.ENODEV)
		}
		nv = vmaCell{inum: f.inum, foff: c.Arg("foff"), wr: c.ArgBool("wr")}
	}
	prev := *v
	k.mem.OnReset(func() { v.anon, v.inum, v.foff, v.wr = prev.anon, prev.inum, prev.foff, prev.wr })
	v.anon, v.inum, v.foff, v.wr = nv.anon, nv.inum, nv.foff, nv.wr
	v.cell.Store(core, 1)
	if v.anon {
		k.anonPage(pr, addr).Store(core, 0)
	}
	return kernel.Result{V1: addr}
}

func (k *Kern) munmap(core int, c kernel.Call) kernel.Result {
	v := k.vma(c.Proc, c.Arg("page"))
	// One page cell; RadixVM's targeted TLB shootdowns touch only cores
	// that accessed the page, which the two-core checker never overlaps.
	if v.cell.Load(core) != 0 {
		v.cell.Store(core, 0)
	}
	return kernel.Result{}
}

func (k *Kern) mprotect(core int, c kernel.Call) kernel.Result {
	v := k.vma(c.Proc, c.Arg("page"))
	if v.cell.Load(core) == 0 {
		return errR(kernel.ENOMEM)
	}
	oldWr := v.wr
	k.mem.OnReset(func() { v.wr = oldWr })
	v.wr = c.ArgBool("wr")
	v.cell.Add(core, 1)
	return kernel.Result{}
}

func (k *Kern) memread(core int, c kernel.Call) kernel.Result {
	page := c.Arg("page")
	v := k.vma(c.Proc, page)
	if v.cell.Load(core) == 0 {
		return errR(kernel.ESIGSEGV)
	}
	if v.anon {
		return kernel.Result{Data: k.anonPage(c.Proc, page).Load(core)}
	}
	ino := k.inode(v.inum)
	if ino.pagePresent.Get(core, v.foff) == 0 {
		if v.foff >= ino.length(core, maxScan) {
			return errR(kernel.ESIGBUS)
		}
		return kernel.Result{Data: 0} // hole
	}
	return kernel.Result{Data: ino.pages.Get(core, v.foff)}
}

func (k *Kern) memwrite(core int, c kernel.Call) kernel.Result {
	page := c.Arg("page")
	v := k.vma(c.Proc, page)
	if v.cell.Load(core) == 0 {
		return errR(kernel.ESIGSEGV)
	}
	if !v.wr {
		return errR(kernel.ESIGSEGV)
	}
	if v.anon {
		k.anonPage(c.Proc, page).Store(core, c.Arg("val"))
		return kernel.Result{}
	}
	ino := k.inode(v.inum)
	if ino.pagePresent.Get(core, v.foff) == 0 {
		if v.foff >= ino.length(core, maxScan) {
			return errR(kernel.ESIGBUS)
		}
		ino.pagePresent.Set(core, v.foff, 1) // materialize the hole
	}
	ino.pages.Set(core, v.foff, c.Arg("val"))
	return kernel.Result{}
}
