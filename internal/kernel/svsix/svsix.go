// Package svsix is the sv6-like kernel: the same POSIX semantics as the
// monokernel, rebuilt on the scalable substrates §6.3 of the paper
// describes for ScaleFS and RadixVM:
//
//   - the directory is a hash table with independent per-bucket locks, and
//     name lookups are lock-free with no reference-count writes,
//   - link counts are Refcache counters (per-core deltas),
//   - descriptor lookup touches only the slot's own cache line,
//   - descriptor allocation uses per-core partitions of the FD space
//     (O_ANYFD) — the lowest-FD rule is also available for the openbench
//     comparison, implemented with a shared scan like any faithful
//     implementation must,
//   - inode numbers come from per-core allocators and are never reused,
//   - lseek precedes pessimism with optimism: an offset update equal to
//     the current value writes nothing,
//   - rename avoids writing the destination when it already points at the
//     source's inode and checks name existence without reading inodes,
//   - pages live in radix arrays; reads probe per-page presence instead of
//     the shared length where possible,
//   - pipes keep head and tail on separate cache lines so reads and
//     writes of a non-empty pipe are conflict-free,
//   - the address space is a RadixVM-style radix array: operations on
//     different pages touch disjoint cells, with no process-wide lock.
//
// Remaining shared cells are the deliberate §6.4 trade-offs: idempotent
// updates (lseek to the same offset still reads, mmap of the same fixed
// range still writes) and the pipe descriptor reference counts.
package svsix

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/mtrace"
	"repro/internal/scale"
)

type inode struct {
	nlink *scale.Refcache
	// nlinkShared replaces nlink when the kernel is built with
	// Opts.SharedLinkCount (statbench's "shared st_nlink" configuration).
	nlinkShared *scale.SharedCounter
	pages       *scale.Radix
	// pagePresent tracks which pages are within bounds. ScaleFS keeps no
	// shared length cell at all: readers probe per-page presence, and
	// length-returning operations reconcile it by scanning the radix
	// ("layer scalability", §6.3), so concurrent writes extending the
	// file stay conflict-free with reads of other pages.
	pagePresent *scale.Radix
}

func (ino *inode) linkInc(core int, delta int64) {
	if ino.nlinkShared != nil {
		ino.nlinkShared.Inc(core, delta)
		return
	}
	ino.nlink.Inc(core, delta)
}

func (ino *inode) linkRead(core int) int64 {
	if ino.nlinkShared != nil {
		return ino.nlinkShared.Read(core)
	}
	return ino.nlink.Read(core)
}

// length reconciles the file length from the per-page presence radix.
func (ino *inode) length(core int, maxScan int64) int64 {
	var n int64
	for pg := int64(0); pg < maxScan; pg++ {
		if ino.pagePresent.Get(core, pg) != 0 {
			n = pg + 1
		}
	}
	return n
}

func (ino *inode) linkPoke(v int64) {
	if ino.nlinkShared != nil {
		ino.nlinkShared.Poke(v)
		return
	}
	ino.nlink.Poke(v)
}

func (ino *inode) linkPeek() int64 {
	if ino.nlinkShared != nil {
		return ino.nlinkShared.Peek()
	}
	return ino.nlink.Peek()
}

type file struct {
	slot *mtrace.Cell // the descriptor slot's own cache line
	off  *mtrace.Cell
	pipe *pipe
	wend bool
	inum int64
}

type pipe struct {
	// head and tail live on separate cache lines; readers write only
	// head, writers only tail, so read||write of a non-empty pipe is
	// conflict-free (§4's weak-ordering discussion). Readers detect
	// emptiness from per-slot full flags rather than reading the
	// writer-owned tail.
	head  *mtrace.Cell
	tail  *mtrace.Cell
	items map[int64]*mtrace.Cell
	full  map[int64]*mtrace.Cell
	// refs is the deliberately shared pipe-FD reference count that §6.4
	// reports as a difficult-to-scale case.
	refs *mtrace.Cell
}

type vmaCell struct {
	cell *mtrace.Cell // mapping descriptor: one cache line per page
	anon bool
	inum int64
	foff int64
	wr   bool
}

type proc struct {
	slots map[int64]*file
	// nextFD are the per-core O_ANYFD partitions: fd = base + core.
	nextFD [scale.NCores]*mtrace.Cell
	// lowHint is the shared cell a faithful lowest-FD allocator must
	// maintain; only the lowest-FD mode touches it.
	lowHint *mtrace.Cell
	// nextAddr are per-core partitions of the free address space for
	// non-fixed mmap (RadixVM picks addresses without a shared cursor).
	nextAddr [scale.NCores]*mtrace.Cell
	vmas     map[int64]*vmaCell
	anon     map[int64]*mtrace.Cell
}

// Opts selects svsix build variants for the evaluation.
type Opts struct {
	// SharedLinkCount replaces Refcache link counts with single shared
	// counters — statbench's "shared st_nlink" configuration, which
	// makes fstat cheaper but link/unlink non-scalable.
	SharedLinkCount bool
}

// Kern is the sv6-like kernel instance.
type Kern struct {
	mem      *mtrace.Memory
	opts     Opts
	dir      *scale.HashDir
	inoAlloc *scale.IDAlloc
	inodes   map[int64]*inode
	pipes    map[int64]*pipe
	nextPipe int64
	procs    [2]*proc
}

var _ kernel.Kernel = (*Kern)(nil)

// New returns an empty sv6-like kernel over a fresh traced memory.
func New() *Kern { return NewOpts(Opts{}) }

// NewOpts returns an sv6-like kernel with the given build variant.
func NewOpts(opts Opts) *Kern {
	mem := mtrace.NewMemory()
	k := &Kern{
		mem:      mem,
		opts:     opts,
		dir:      scale.NewHashDir(mem, "dir", 8192),
		inoAlloc: scale.NewIDAlloc(mem, "ialloc", 1000),
		inodes:   map[int64]*inode{},
		pipes:    map[int64]*pipe{},
		nextPipe: 2000,
	}
	for i := range k.procs {
		p := &proc{
			slots:   map[int64]*file{},
			lowHint: mem.NewCellf(0, "proc%d.fd.lowhint", i),
			vmas:    map[int64]*vmaCell{},
			anon:    map[int64]*mtrace.Cell{},
		}
		for c := range p.nextFD {
			p.nextFD[c] = mem.NewCellf(0, "proc%d.fd.next[%d]", i, c)
			p.nextAddr[c] = mem.NewCellf(0, "proc%d.vm.next[%d]", i, c)
		}
		k.procs[i] = p
	}
	return k
}

// Name implements kernel.Kernel.
func (k *Kern) Name() string { return "sv6" }

// Memory implements kernel.Kernel.
func (k *Kern) Memory() *mtrace.Memory { return k.mem }

// Snapshot implements kernel.Kernel. Cell values are journaled by the
// memory; the mutation sites below register OnReset hooks for state the
// journal cannot see — map entries, the vmaCell fields, the pipe id
// counter — so Reset leaves the kernel observationally identical to a
// fresh instance with the same setup.
func (k *Kern) Snapshot() { k.mem.Snapshot() }

// Reset implements kernel.Kernel.
func (k *Kern) Reset() { k.mem.Reset() }

func (k *Kern) inode(inum int64) *inode {
	ino, ok := k.inodes[inum]
	if !ok {
		ino = &inode{
			pages:       scale.NewRadix(k.mem, fmt.Sprintf("inode[%d].pages", inum), 16),
			pagePresent: scale.NewRadix(k.mem, fmt.Sprintf("inode[%d].present", inum), 16),
		}
		// Interior nodes exist up front (RadixVM's eager allocation), so
		// concurrent first writes to different pages stay conflict-free.
		ino.pages.Materialize(maxScan)
		ino.pagePresent.Materialize(maxScan)
		if k.opts.SharedLinkCount {
			ino.nlinkShared = scale.NewSharedCounter(k.mem, fmt.Sprintf("inode[%d].nlink", inum), 0)
		} else {
			ino.nlink = scale.NewRefcache(k.mem, fmt.Sprintf("inode[%d].nlink", inum), 0)
		}
		// Reset must drop the inode entirely rather than keep it with
		// journal-restored cells: the restored radix interior cells read 0,
		// so a kept inode would re-materialize them through traced Sets —
		// writes a fresh kernel (which Pokes them in Materialize here)
		// never performs, changing conflict verdicts. Recreating the inode
		// reruns this constructor and is exactly fresh.
		k.mem.OnReset(func() { delete(k.inodes, inum) })
		k.inodes[inum] = ino
	}
	return ino
}

func (k *Kern) newPipe(id int64) *pipe {
	p := &pipe{
		head:  k.mem.NewCellf(0, "pipe[%d].head", id),
		tail:  k.mem.NewCellf(0, "pipe[%d].tail", id),
		items: map[int64]*mtrace.Cell{},
		full:  map[int64]*mtrace.Cell{},
		refs:  k.mem.NewCellf(0, "pipe[%d].refs", id),
	}
	prev, had := k.pipes[id]
	k.mem.OnReset(func() {
		if had {
			k.pipes[id] = prev
		} else {
			delete(k.pipes, id)
		}
	})
	k.pipes[id] = p
	return p
}

func (p *pipe) item(mem *mtrace.Memory, seq int64) *mtrace.Cell {
	c, ok := p.items[seq]
	if !ok {
		c = mem.NewCellf(0, "pipe.item[%d]", seq)
		p.items[seq] = c
	}
	return c
}

func (p *pipe) slotFull(mem *mtrace.Memory, seq int64) *mtrace.Cell {
	c, ok := p.full[seq]
	if !ok {
		c = mem.NewCellf(0, "pipe.full[%d]", seq)
		p.full[seq] = c
	}
	return c
}

// fget resolves a descriptor by reading only the slot cell — no reference
// count write (ScaleFS defers reclamation with Refcache epochs, so readers
// are conflict-free).
func (k *Kern) fget(core int, pr int, fd int64) *file {
	f, ok := k.procs[pr].slots[fd]
	if !ok || f.slot.Load(core) == 0 {
		return nil
	}
	return f
}

// allocFD installs f. anyfd uses the per-core partition (conflict-free);
// otherwise a faithful lowest-FD scan maintains the shared hint.
func (k *Kern) allocFD(core int, pr int, f *file, anyfd bool) int64 {
	p := k.procs[pr]
	install := func(fd int64) {
		// A stale slot entry would redirect a later fget to the wrong file
		// (and change its traced access pattern); restore the map on reset.
		prev, had := p.slots[fd]
		k.mem.OnReset(func() {
			if had {
				p.slots[fd] = prev
			} else {
				delete(p.slots, fd)
			}
		})
		p.slots[fd] = f
	}
	if anyfd {
		n := p.nextFD[core].Load(core)
		p.nextFD[core].Store(core, n+1)
		fd := 1000 + n*scale.NCores + int64(core)
		f.slot = k.mem.NewCellf(0, "proc%d.fd[%d]", pr, fd)
		f.slot.Store(core, 1)
		install(fd)
		return fd
	}
	_ = p.lowHint.Add(core, 0) // shared lowest-FD cursor: read-modify-write
	for fd := int64(0); ; fd++ {
		g, ok := p.slots[fd]
		if ok && g.slot.Load(core) != 0 {
			continue
		}
		if !ok {
			f.slot = k.mem.NewCellf(0, "proc%d.fd[%d]", pr, fd)
		} else {
			f.slot = g.slot
		}
		f.slot.Store(core, 1)
		install(fd)
		p.lowHint.Add(core, 1)
		return fd
	}
}

// Apply implements kernel.Kernel; it builds initial state untraced.
func (k *Kern) Apply(s kernel.Setup) error {
	for _, si := range s.Inodes {
		ino := k.inode(si.Inum)
		ino.linkPoke(int64(si.ExtraLinks))
		for pg := int64(0); pg < si.Len; pg++ {
			ino.pagePresent.Poke(pg, 1)
		}
		for pg, val := range si.Pages {
			ino.pages.Poke(pg, val)
			ino.pagePresent.Poke(pg, 1)
		}
	}
	for _, sf := range s.Files {
		var id int64
		if _, err := fmt.Sscanf(sf.Name, "f%d", &id); err != nil {
			return fmt.Errorf("svsix: bad setup name %q", sf.Name)
		}
		k.dir.PokeInsert(id, sf.Inum)
		ino := k.inode(sf.Inum)
		ino.linkPoke(ino.linkPeek() + 1)
	}
	for _, sp := range s.Pipes {
		p := k.newPipe(sp.ID)
		for i, v := range sp.Items {
			p.item(k.mem, int64(i)).Poke(v)
			p.slotFull(k.mem, int64(i)).Poke(1)
		}
		p.tail.Poke(int64(len(sp.Items)))
	}
	for _, sd := range s.FDs {
		p := k.procs[sd.Proc]
		f := &file{
			slot: k.mem.NewCellf(1, "proc%d.fd[%d]", sd.Proc, sd.FD),
			off:  k.mem.NewCellf(sd.Off, "file[p%d:%d].off", sd.Proc, sd.FD),
		}
		if sd.Pipe {
			pp, ok := k.pipes[sd.PipeID]
			if !ok {
				pp = k.newPipe(sd.PipeID)
			}
			f.pipe = pp
			f.wend = sd.WriteEnd
			pp.refs.Poke(pp.refs.Peek() + 1)
		} else {
			f.inum = sd.Inum
			k.inode(sd.Inum)
		}
		// The slot cell is born live (1) and never journaled; a reset must
		// drop the entry rather than revive it.
		fd := sd.FD
		k.mem.OnReset(func() { delete(p.slots, fd) })
		p.slots[fd] = f
	}
	for _, sv := range s.VMAs {
		p := k.procs[sv.Proc]
		v := &vmaCell{
			cell: k.mem.NewCellf(1, "proc%d.vma[%d]", sv.Proc, sv.Page),
			anon: sv.Anon, inum: sv.Inum, foff: sv.Foff, wr: sv.Writable,
		}
		page := sv.Page
		k.mem.OnReset(func() { delete(p.vmas, page) })
		p.vmas[page] = v
		if sv.Anon {
			c := k.mem.NewCellf(sv.Val, "proc%d.anonpage[%d]", sv.Proc, sv.Page)
			k.mem.OnReset(func() { delete(p.anon, page) })
			p.anon[page] = c
		} else {
			k.inode(sv.Inum)
		}
	}
	return nil
}

func errR(errno int64) kernel.Result { return kernel.Result{Code: -errno} }
