// Package kernel defines the system-call surface shared by the two kernel
// implementations under test (the Linux-like monokernel and the sv6-like
// svsix), the concrete test-case format TESTGEN emits, and the MTRACE-style
// runner that checks an implementation's conflict-freedom on a test case.
package kernel

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mtrace"
)

// Errno values mirrored from the model.
const (
	ENOENT = 2
	EBADF  = 9
	EEXIST = 17
	EINVAL = 22
	EMFILE = 24
	ESPIPE = 29
	ENOMEM = 12
	ENODEV = 19
	EAGAIN = 11
	// ESIGSEGV and ESIGBUS are pseudo-errnos reporting faults.
	ESIGSEGV = 1001
	ESIGBUS  = 1002
)

// Result is a syscall result: Code is the return value (>= 0) or a negated
// errno; V1..V3 carry extra integers (inode number, link count, length,
// descriptors); Data carries one page of read data as a token.
type Result struct {
	Code int64
	V1   int64
	V2   int64
	V3   int64
	Data int64
}

func (r Result) String() string {
	return fmt.Sprintf("(%d,%d,%d,%d,%d)", r.Code, r.V1, r.V2, r.V3, r.Data)
}

// Call is one concrete system call. Args hold the per-operation argument
// values under the same names the model uses ("fname", "fd", "off", ...).
// Filename arguments hold small ids; implementations render them as "fN".
// The Proc field selects the calling process (0 or 1); the core is chosen
// by the runner.
type Call struct {
	Op   string
	Proc int
	Args map[string]int64
}

// Arg returns the named argument (0 when absent).
func (c Call) Arg(name string) int64 { return c.Args[name] }

// ArgBool returns the named argument as a flag.
func (c Call) ArgBool(name string) bool { return c.Args[name] != 0 }

// Fname renders a filename id as a path component.
func Fname(id int64) string { return fmt.Sprintf("f%d", id) }

func (c Call) String() string {
	keys := make([]string, 0, len(c.Args))
	for k := range c.Args {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, c.Args[k])
	}
	return fmt.Sprintf("%s@p%d(%s)", c.Op, c.Proc, strings.Join(parts, ","))
}

// SetupFile creates one directory entry in the initial state. Multiple
// entries may share an Inum to set up hard links.
type SetupFile struct {
	Name string
	Inum int64
}

// SetupInode fixes an inode's initial metadata and content.
type SetupInode struct {
	Inum int64
	// ExtraLinks adds hidden hard links (names outside the test's name
	// space) so the link count can exceed the visible name count, the
	// trick Figure 5 of the paper uses with "__i0".
	ExtraLinks int
	// Len is the file length in pages.
	Len int64
	// Pages maps page index -> content token for pages with fixed
	// initial content.
	Pages map[int64]int64
}

// SetupFD opens a descriptor in a process's table before the test runs.
type SetupFD struct {
	Proc int
	FD   int64
	// Pipe selects a pipe descriptor (PipeID, WriteEnd) instead of a
	// file descriptor (Inum, Off).
	Pipe     bool
	PipeID   int64
	WriteEnd bool
	Inum     int64
	Off      int64
}

// SetupPipe creates a pipe with queued content.
type SetupPipe struct {
	ID int64
	// Items are the queued page tokens, oldest first.
	Items []int64
}

// SetupVMA maps one page of a process's address space.
type SetupVMA struct {
	Proc int
	Page int64
	Anon bool
	// Val is the anonymous page's initial content token.
	Val      int64
	Writable bool
	Inum     int64
	Foff     int64
}

// SetupQueue seeds one message queue of the queue spec's reference
// implementation. Core -1 is the shared ordered queue; Core >= 0 seeds
// one per-core unordered queue. Items are queued page tokens, oldest
// first.
type SetupQueue struct {
	Core  int64
	Items []int64
}

// SetupKV seeds one key of the kv spec's reference store with a present
// binding.
type SetupKV struct {
	Key int64
	Val int64
}

// Setup is the concrete initial state of a test case. The fs/VM fields
// are consumed by the POSIX kernels; Queues by the queue spec's reference
// implementation; KVs by the kv spec's — each implementation ignores the
// fields of interfaces it does not provide.
type Setup struct {
	Files  []SetupFile
	Inodes []SetupInode
	FDs    []SetupFD
	Pipes  []SetupPipe
	VMAs   []SetupVMA
	Queues []SetupQueue `json:",omitempty"`
	KVs    []SetupKV    `json:",omitempty"`
}

// Fingerprint returns a canonical content-address of the setup: two setups
// with the same fingerprint describe the same initial state, so the
// checker can apply the setup once and replay every test sharing it
// against snapshot/reset. The encoding is an exact rendering (not a hash),
// so equal fingerprints imply equal setups with no collision risk.
func (s Setup) Fingerprint() string {
	var b strings.Builder
	for _, f := range s.Files {
		fmt.Fprintf(&b, "F%s=%d;", f.Name, f.Inum)
	}
	for _, in := range s.Inodes {
		fmt.Fprintf(&b, "I%d,x%d,l%d", in.Inum, in.ExtraLinks, in.Len)
		if len(in.Pages) > 0 {
			idxs := make([]int64, 0, len(in.Pages))
			for idx := range in.Pages {
				idxs = append(idxs, idx)
			}
			sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
			for _, idx := range idxs {
				fmt.Fprintf(&b, ",p%d=%d", idx, in.Pages[idx])
			}
		}
		b.WriteByte(';')
	}
	for _, fd := range s.FDs {
		if fd.Pipe {
			fmt.Fprintf(&b, "D%d,%d,pipe%d,w%t;", fd.Proc, fd.FD, fd.PipeID, fd.WriteEnd)
		} else {
			fmt.Fprintf(&b, "D%d,%d,i%d,o%d;", fd.Proc, fd.FD, fd.Inum, fd.Off)
		}
	}
	for _, p := range s.Pipes {
		fmt.Fprintf(&b, "P%d=%v;", p.ID, p.Items)
	}
	for _, v := range s.VMAs {
		fmt.Fprintf(&b, "V%d,%d,a%t,v%d,w%t,i%d,o%d;", v.Proc, v.Page, v.Anon, v.Val, v.Writable, v.Inum, v.Foff)
	}
	for _, q := range s.Queues {
		fmt.Fprintf(&b, "Q%d=%v;", q.Core, q.Items)
	}
	for _, kv := range s.KVs {
		fmt.Fprintf(&b, "K%d=%d;", kv.Key, kv.Val)
	}
	return b.String()
}

// TestCase is one generated commutative test: after Setup, the two Calls
// run on different cores and, per the commutativity rule, admit a
// conflict-free execution.
type TestCase struct {
	// ID names the test (pair, path and assignment indices).
	ID string
	// Setup is the concrete initial state.
	Setup Setup
	// Calls are the two commutative operations.
	Calls [2]Call
	// SetupID is Setup.Fingerprint(), stamped by testgen so the checker
	// can group tests sharing an initial state without recomputing it.
	// Excluded from the wire/cache encodings: decoders regroup via
	// Fingerprint when it is empty.
	SetupID string `json:"-"`
}

// Kernel is the interface both implementations provide. Exec runs a call on
// a simulated core; all state accesses must go through the kernel's traced
// memory.
type Kernel interface {
	// Name identifies the implementation ("linux" or "sv6").
	Name() string
	// Memory returns the kernel's traced memory.
	Memory() *mtrace.Memory
	// Apply initializes kernel state from a setup (untraced).
	Apply(s Setup) error
	// Exec performs one system call on the given simulated core.
	Exec(core int, c Call) Result
	// Snapshot opens a snapshot region on the kernel's memory; subsequent
	// Apply/Exec mutations are journaled so Reset can undo them.
	// Implementations whose state is not held entirely in traced cells
	// register mtrace.Memory.OnReset hooks at their structural mutation
	// sites (map inserts, plain struct fields).
	Snapshot()
	// Reset restores the kernel to the state at the innermost Snapshot,
	// leaving that snapshot in place for the next replay.
	Reset()
}

// CheckResult reports one test case's conflict-freedom on a kernel.
type CheckResult struct {
	Test TestCase
	// ConflictFree is the MTRACE verdict.
	ConflictFree bool
	// Conflicts lists the shared cells when not conflict-free.
	Conflicts []mtrace.Conflict
	// Res holds the results of the two calls (first order).
	Res [2]Result
	// Commuted reports whether running the calls in the opposite order
	// (on a fresh kernel) produced the same pair of results — a sanity
	// check that the generated test really is commutative on this
	// implementation.
	Commuted bool
	// ResSwapped holds the opposite-order results.
	ResSwapped [2]Result
}

// Check runs tc on kernels produced by fresh (one per order), recording
// accesses for the two calls and analyzing conflicts, like MTRACE's
// qemu hypercall + log analysis.
func Check(fresh func() Kernel, tc TestCase) (CheckResult, error) {
	k := fresh()
	if err := k.Apply(tc.Setup); err != nil {
		return CheckResult{}, fmt.Errorf("%s: setup %s: %w", k.Name(), tc.ID, err)
	}
	mem := k.Memory()
	mem.Start()
	r0 := k.Exec(0, tc.Calls[0])
	r1 := k.Exec(1, tc.Calls[1])
	mem.Stop()
	conflicts := mem.Conflicts()

	// Opposite order on a fresh kernel for the commutativity check.
	k2 := fresh()
	if err := k2.Apply(tc.Setup); err != nil {
		return CheckResult{}, fmt.Errorf("%s: setup2 %s: %w", k2.Name(), tc.ID, err)
	}
	s1 := k2.Exec(1, tc.Calls[1])
	s0 := k2.Exec(0, tc.Calls[0])

	return CheckResult{
		Test:         tc,
		ConflictFree: len(conflicts) == 0,
		Conflicts:    conflicts,
		Res:          [2]Result{r0, r1},
		Commuted:     resultsCommute(r0, s0) && resultsCommute(r1, s1),
		ResSwapped:   [2]Result{s0, s1},
	}, nil
}

// resultsCommute compares one call's results across the two execution
// orders. The specification permits nondeterministic outputs to differ, but
// both implementations here make order-independent choices (per-core
// allocation in sv6; the monokernel's order-dependent lowest-FD rule is
// precisely one of the non-commutative behaviors the evaluation surfaces),
// so plain equality is the right check.
func resultsCommute(a, b Result) bool { return a == b }
