// Package memvm is the reference in-memory implementation of the vm spec
// (internal/vmspec): per-process anonymous address spaces built on traced
// mtrace cells so the standard MTRACE runner can check conflict-freedom.
//
// Cell placement follows the RadixVM design point the paper's §5.2
// evaluation targets: each (proc, page) has its own mapping-descriptor
// cell and content cell — no address-space-wide lock, no shared VMA-tree
// version — so operations on non-overlapping regions touch disjoint
// cells and run conflict-free, exactly the executions the spec says
// commute. The one deliberately shared structure is the address
// allocator: a non-MAP_FIXED mmap scans the mapping cells from page 0
// for a free slot (the lowest-address rule the spec models), so two such
// mmaps in one process contend on the low pages — matching the spec-level
// verdict that the kernel's address choice does not commute.
package memvm

import (
	"repro/internal/kernel"
	"repro/internal/mtrace"
)

// pageCells is one (proc, page)'s state: a mapping descriptor (0 =
// unmapped, 1 = mapped read-only, 2 = mapped writable) and the page's
// content.
type pageCells struct {
	m *mtrace.Cell
	v *mtrace.Cell
}

const (
	unmapped = 0
	mappedRO = 1
	mappedRW = 2

	// maxPage mirrors the spec's page bound (vmspec.MaxPage; duplicated
	// here because the spec package imports this one); the allocator
	// scans this range.
	maxPage = 3
)

// Kern is the vm-spec reference implementation.
type Kern struct {
	mem   *mtrace.Memory
	pages [2]map[int64]*pageCells
}

var _ kernel.Kernel = (*Kern)(nil)

// New returns a fresh implementation instance with two empty address
// spaces.
func New() *Kern {
	k := &Kern{mem: mtrace.NewMemory()}
	for i := range k.pages {
		k.pages[i] = map[int64]*pageCells{}
	}
	return k
}

// Name identifies the implementation.
func (k *Kern) Name() string { return "memvm" }

// Memory returns the traced memory.
func (k *Kern) Memory() *mtrace.Memory { return k.mem }

// Snapshot opens a snapshot region for batched replay. Cell values are
// journaled by the memory itself; page (cell-pair) creation registers an
// OnReset hook at the mutation site, so a Reset leaves the address-space
// maps structurally identical to the snapshot point — a replayed run
// re-creates pages exactly like a fresh kernel would.
func (k *Kern) Snapshot() { k.mem.Snapshot() }

// Reset rolls the kernel back to the innermost Snapshot.
func (k *Kern) Reset() { k.mem.Reset() }

// page returns (creating on first use) the cells of one (proc, page).
// Creation allocates cells but records no accesses; the OnReset hook
// undoes the map insert so replayed state matches fresh state.
func (k *Kern) page(proc int, page int64) *pageCells {
	p, ok := k.pages[proc][page]
	if !ok {
		p = &pageCells{
			m: k.mem.NewCellf(unmapped, "proc%d.vmap[%d]", proc, page),
			v: k.mem.NewCellf(0, "proc%d.vmem[%d]", proc, page),
		}
		page := page
		k.mem.OnReset(func() { delete(k.pages[proc], page) })
		k.pages[proc][page] = p
	}
	return p
}

// Apply seeds the address spaces from the setup (untraced); fields of
// other interfaces are ignored.
func (k *Kern) Apply(s kernel.Setup) error {
	for _, sv := range s.VMAs {
		p := k.page(sv.Proc, sv.Page)
		if sv.Writable {
			p.m.Poke(mappedRW)
		} else {
			p.m.Poke(mappedRO)
		}
		p.v.Poke(sv.Val)
	}
	return nil
}

func errR(errno int64) kernel.Result { return kernel.Result{Code: -errno} }

func mapVal(wr bool) int64 {
	if wr {
		return mappedRW
	}
	return mappedRO
}

// Exec performs one VM operation on the given simulated core.
func (k *Kern) Exec(core int, c kernel.Call) kernel.Result {
	proc := c.Proc
	switch c.Op {
	case "mmap":
		addr := c.Arg("page")
		if !c.ArgBool("fixed") {
			// Lowest free page: the scan reads every mapping cell below
			// the chosen address, the sharing that mirrors the spec's
			// non-commutative address selection.
			addr = -1
			for pg := int64(0); pg < maxPage; pg++ {
				if k.page(proc, pg).m.Load(core) == unmapped {
					addr = pg
					break
				}
			}
			if addr < 0 {
				return errR(kernel.ENOMEM)
			}
		}
		p := k.page(proc, addr)
		p.m.Store(core, mapVal(c.ArgBool("wr")))
		p.v.Store(core, 0)
		return kernel.Result{Code: 0, V1: addr}
	case "munmap":
		k.page(proc, c.Arg("page")).m.Store(core, unmapped)
		return kernel.Result{Code: 0}
	case "mprotect":
		p := k.page(proc, c.Arg("page"))
		if p.m.Load(core) == unmapped {
			return errR(kernel.ENOMEM)
		}
		p.m.Store(core, mapVal(c.ArgBool("wr")))
		return kernel.Result{Code: 0}
	case "memread":
		p := k.page(proc, c.Arg("page"))
		if p.m.Load(core) == unmapped {
			return errR(kernel.ESIGSEGV)
		}
		return kernel.Result{Code: 0, Data: p.v.Load(core)}
	case "memwrite":
		p := k.page(proc, c.Arg("page"))
		if p.m.Load(core) != mappedRW {
			return errR(kernel.ESIGSEGV)
		}
		p.v.Store(core, c.Arg("val"))
		return kernel.Result{Code: 0}
	}
	panic("memvm: unknown op " + c.Op)
}
