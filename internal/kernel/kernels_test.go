package kernel_test

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/kernel/monokernel"
	"repro/internal/kernel/svsix"
)

func kernels() map[string]func() kernel.Kernel {
	return map[string]func() kernel.Kernel{
		"linux": func() kernel.Kernel { return monokernel.New() },
		"sv6":   func() kernel.Kernel { return svsix.New() },
	}
}

func call(op string, proc int, args map[string]int64) kernel.Call {
	if args == nil {
		args = map[string]int64{}
	}
	return kernel.Call{Op: op, Proc: proc, Args: args}
}

// oneFile is a setup with f0 -> inode 1, length 2 pages, contents 11, 12.
func oneFile() kernel.Setup {
	return kernel.Setup{
		Files:  []kernel.SetupFile{{Name: "f0", Inum: 1}},
		Inodes: []kernel.SetupInode{{Inum: 1, Len: 2, Pages: map[int64]int64{0: 11, 1: 12}}},
	}
}

func TestStatSemantics(t *testing.T) {
	for name, fresh := range kernels() {
		k := fresh()
		if err := k.Apply(oneFile()); err != nil {
			t.Fatal(err)
		}
		r := k.Exec(0, call("stat", 0, map[string]int64{"fname": 0}))
		if r.Code != 0 || r.V1 != 1 || r.V2 != 1 || r.V3 != 2 {
			t.Errorf("%s: stat(f0) = %v, want ino=1 nlink=1 len=2", name, r)
		}
		r = k.Exec(0, call("stat", 0, map[string]int64{"fname": 9}))
		if r.Code != -kernel.ENOENT {
			t.Errorf("%s: stat(missing) = %v, want ENOENT", name, r)
		}
	}
}

func TestOpenReadWriteSemantics(t *testing.T) {
	for name, fresh := range kernels() {
		k := fresh()
		if err := k.Apply(oneFile()); err != nil {
			t.Fatal(err)
		}
		r := k.Exec(0, call("open", 0, map[string]int64{"fname": 0}))
		if r.Code < 0 {
			t.Fatalf("%s: open = %v", name, r)
		}
		fd := r.Code
		if r = k.Exec(0, call("read", 0, map[string]int64{"fd": fd})); r.Code != 1 || r.Data != 11 {
			t.Errorf("%s: first read = %v, want data 11", name, r)
		}
		if r = k.Exec(0, call("read", 0, map[string]int64{"fd": fd})); r.Code != 1 || r.Data != 12 {
			t.Errorf("%s: second read = %v, want data 12", name, r)
		}
		if r = k.Exec(0, call("read", 0, map[string]int64{"fd": fd})); r.Code != 0 {
			t.Errorf("%s: read at EOF = %v, want 0", name, r)
		}
		if r = k.Exec(0, call("write", 0, map[string]int64{"fd": fd, "val": 99})); r.Code != 1 {
			t.Errorf("%s: write = %v", name, r)
		}
		if r = k.Exec(0, call("pread", 0, map[string]int64{"fd": fd, "off": 2})); r.Data != 99 {
			t.Errorf("%s: pread(2) after extend = %v, want 99", name, r)
		}
		if r = k.Exec(0, call("stat", 0, map[string]int64{"fname": 0})); r.V3 != 3 {
			t.Errorf("%s: len after extend = %v, want 3", name, r)
		}
	}
}

func TestOpenCreatExclTrunc(t *testing.T) {
	for name, fresh := range kernels() {
		k := fresh()
		if err := k.Apply(oneFile()); err != nil {
			t.Fatal(err)
		}
		r := k.Exec(0, call("open", 0, map[string]int64{"fname": 0, "creat": 1, "excl": 1}))
		if r.Code != -kernel.EEXIST {
			t.Errorf("%s: O_CREAT|O_EXCL on existing = %v", name, r)
		}
		r = k.Exec(0, call("open", 0, map[string]int64{"fname": 5}))
		if r.Code != -kernel.ENOENT {
			t.Errorf("%s: open missing without O_CREAT = %v", name, r)
		}
		r = k.Exec(0, call("open", 0, map[string]int64{"fname": 5, "creat": 1}))
		if r.Code < 0 {
			t.Errorf("%s: O_CREAT new file = %v", name, r)
		}
		if r = k.Exec(0, call("stat", 0, map[string]int64{"fname": 5})); r.Code != 0 || r.V3 != 0 {
			t.Errorf("%s: stat of created file = %v", name, r)
		}
		r = k.Exec(0, call("open", 0, map[string]int64{"fname": 0, "trunc": 1}))
		if r.Code < 0 {
			t.Errorf("%s: O_TRUNC open = %v", name, r)
		}
		if r = k.Exec(0, call("stat", 0, map[string]int64{"fname": 0})); r.V3 != 0 {
			t.Errorf("%s: len after O_TRUNC = %v, want 0", name, r)
		}
	}
}

func TestLinkUnlinkRename(t *testing.T) {
	for name, fresh := range kernels() {
		k := fresh()
		if err := k.Apply(oneFile()); err != nil {
			t.Fatal(err)
		}
		if r := k.Exec(0, call("link", 0, map[string]int64{"old": 0, "new": 1})); r.Code != 0 {
			t.Fatalf("%s: link = %v", name, r)
		}
		if r := k.Exec(0, call("stat", 0, map[string]int64{"fname": 1})); r.V1 != 1 || r.V2 != 2 {
			t.Errorf("%s: stat(link) = %v, want ino=1 nlink=2", name, r)
		}
		if r := k.Exec(0, call("link", 0, map[string]int64{"old": 0, "new": 1})); r.Code != -kernel.EEXIST {
			t.Errorf("%s: link to existing = %v", name, r)
		}
		if r := k.Exec(0, call("link", 0, map[string]int64{"old": 7, "new": 2})); r.Code != -kernel.ENOENT {
			t.Errorf("%s: link from missing = %v", name, r)
		}
		if r := k.Exec(0, call("unlink", 0, map[string]int64{"fname": 1})); r.Code != 0 {
			t.Errorf("%s: unlink = %v", name, r)
		}
		if r := k.Exec(0, call("stat", 0, map[string]int64{"fname": 0})); r.V2 != 1 {
			t.Errorf("%s: nlink after unlink = %v, want 1", name, r)
		}
		if r := k.Exec(0, call("rename", 0, map[string]int64{"src": 0, "dst": 3})); r.Code != 0 {
			t.Errorf("%s: rename = %v", name, r)
		}
		if r := k.Exec(0, call("stat", 0, map[string]int64{"fname": 0})); r.Code != -kernel.ENOENT {
			t.Errorf("%s: stat old name after rename = %v", name, r)
		}
		if r := k.Exec(0, call("stat", 0, map[string]int64{"fname": 3})); r.V1 != 1 {
			t.Errorf("%s: stat new name after rename = %v", name, r)
		}
		if r := k.Exec(0, call("rename", 0, map[string]int64{"src": 9, "dst": 3})); r.Code != -kernel.ENOENT {
			t.Errorf("%s: rename missing src = %v", name, r)
		}
	}
}

func TestFDSemantics(t *testing.T) {
	setup := kernel.Setup{
		Files:  []kernel.SetupFile{{Name: "f0", Inum: 1}},
		Inodes: []kernel.SetupInode{{Inum: 1, Len: 2, Pages: map[int64]int64{0: 11, 1: 12}}},
		FDs:    []kernel.SetupFD{{Proc: 0, FD: 0, Inum: 1, Off: 1}},
	}
	for name, fresh := range kernels() {
		k := fresh()
		if err := k.Apply(setup); err != nil {
			t.Fatal(err)
		}
		if r := k.Exec(0, call("fstat", 0, map[string]int64{"fd": 0})); r.V1 != 1 || r.V3 != 2 {
			t.Errorf("%s: fstat = %v", name, r)
		}
		if r := k.Exec(0, call("read", 0, map[string]int64{"fd": 0})); r.Data != 12 {
			t.Errorf("%s: read at off=1 = %v, want 12", name, r)
		}
		if r := k.Exec(0, call("lseek", 0, map[string]int64{"fd": 0, "delta": 0, "wset": 1})); r.V1 != 0 {
			t.Errorf("%s: lseek SET 0 = %v", name, r)
		}
		if r := k.Exec(0, call("lseek", 0, map[string]int64{"fd": 0, "delta": 1, "wend": 1})); r.V1 != 3 {
			t.Errorf("%s: lseek END+1 = %v", name, r)
		}
		if r := k.Exec(0, call("lseek", 0, map[string]int64{"fd": 0, "delta": -9})); r.Code != -kernel.EINVAL {
			t.Errorf("%s: lseek to negative = %v", name, r)
		}
		if r := k.Exec(0, call("close", 0, map[string]int64{"fd": 0})); r.Code != 0 {
			t.Errorf("%s: close = %v", name, r)
		}
		if r := k.Exec(0, call("fstat", 0, map[string]int64{"fd": 0})); r.Code != -kernel.EBADF {
			t.Errorf("%s: fstat closed fd = %v", name, r)
		}
		if r := k.Exec(1, call("fstat", 1, map[string]int64{"fd": 0})); r.Code != -kernel.EBADF {
			t.Errorf("%s: fstat in other proc = %v", name, r)
		}
	}
}

func TestPipeSemantics(t *testing.T) {
	setup := kernel.Setup{
		Pipes: []kernel.SetupPipe{{ID: 1, Items: []int64{41}}},
		FDs: []kernel.SetupFD{
			{Proc: 0, FD: 0, Pipe: true, PipeID: 1},
			{Proc: 0, FD: 1, Pipe: true, PipeID: 1, WriteEnd: true},
		},
	}
	for name, fresh := range kernels() {
		k := fresh()
		if err := k.Apply(setup); err != nil {
			t.Fatal(err)
		}
		if r := k.Exec(0, call("fstat", 0, map[string]int64{"fd": 0})); r.V3 != 1 {
			t.Errorf("%s: pipe fstat queued = %v, want 1", name, r)
		}
		if r := k.Exec(0, call("write", 0, map[string]int64{"fd": 1, "val": 42})); r.Code != 1 {
			t.Errorf("%s: pipe write = %v", name, r)
		}
		if r := k.Exec(0, call("read", 0, map[string]int64{"fd": 0})); r.Data != 41 {
			t.Errorf("%s: pipe read = %v, want 41 (FIFO)", name, r)
		}
		if r := k.Exec(0, call("read", 0, map[string]int64{"fd": 0})); r.Data != 42 {
			t.Errorf("%s: pipe read = %v, want 42", name, r)
		}
		if r := k.Exec(0, call("read", 0, map[string]int64{"fd": 0})); r.Code != -kernel.EAGAIN {
			t.Errorf("%s: empty pipe read = %v", name, r)
		}
		if r := k.Exec(0, call("read", 0, map[string]int64{"fd": 1})); r.Code != -kernel.EBADF {
			t.Errorf("%s: read on write end = %v", name, r)
		}
		if r := k.Exec(0, call("lseek", 0, map[string]int64{"fd": 0, "delta": 0, "wset": 1})); r.Code != -kernel.ESPIPE {
			t.Errorf("%s: lseek on pipe = %v", name, r)
		}
		if r := k.Exec(0, call("pipe", 0, nil)); r.Code != 0 || r.V1 == r.V2 {
			t.Errorf("%s: pipe() = %v", name, r)
		}
	}
}

func TestVMSemantics(t *testing.T) {
	setup := kernel.Setup{
		Files:  []kernel.SetupFile{{Name: "f0", Inum: 1}},
		Inodes: []kernel.SetupInode{{Inum: 1, Len: 1, Pages: map[int64]int64{0: 7}}},
		FDs:    []kernel.SetupFD{{Proc: 0, FD: 0, Inum: 1}},
	}
	for name, fresh := range kernels() {
		k := fresh()
		if err := k.Apply(setup); err != nil {
			t.Fatal(err)
		}
		if r := k.Exec(0, call("memread", 0, map[string]int64{"page": 0})); r.Code != -kernel.ESIGSEGV {
			t.Errorf("%s: unmapped memread = %v", name, r)
		}
		r := k.Exec(0, call("mmap", 0, map[string]int64{"page": 0, "fixed": 1, "anon": 1, "wr": 1}))
		if r.Code != 0 || r.V1 != 0 {
			t.Fatalf("%s: anon mmap fixed = %v", name, r)
		}
		if r = k.Exec(0, call("memread", 0, map[string]int64{"page": 0})); r.Code != 0 || r.Data != 0 {
			t.Errorf("%s: anon page reads zero, got %v", name, r)
		}
		if r = k.Exec(0, call("memwrite", 0, map[string]int64{"page": 0, "val": 5})); r.Code != 0 {
			t.Errorf("%s: memwrite = %v", name, r)
		}
		if r = k.Exec(0, call("memread", 0, map[string]int64{"page": 0})); r.Data != 5 {
			t.Errorf("%s: memread after write = %v", name, r)
		}
		// File-backed mapping shares the page cache.
		r = k.Exec(0, call("mmap", 0, map[string]int64{"page": 1, "fixed": 1, "fd": 0, "foff": 0, "wr": 1}))
		if r.Code != 0 {
			t.Fatalf("%s: file mmap = %v", name, r)
		}
		if r = k.Exec(0, call("memread", 0, map[string]int64{"page": 1})); r.Data != 7 {
			t.Errorf("%s: file-backed memread = %v, want 7", name, r)
		}
		if r = k.Exec(0, call("memwrite", 0, map[string]int64{"page": 1, "val": 8})); r.Code != 0 {
			t.Errorf("%s: file-backed memwrite = %v", name, r)
		}
		if r = k.Exec(0, call("pread", 0, map[string]int64{"fd": 0, "off": 0})); r.Data != 8 {
			t.Errorf("%s: pread after shared write = %v, want 8", name, r)
		}
		// Protection and unmapping.
		if r = k.Exec(0, call("mprotect", 0, map[string]int64{"page": 0, "wr": 0})); r.Code != 0 {
			t.Errorf("%s: mprotect = %v", name, r)
		}
		if r = k.Exec(0, call("memwrite", 0, map[string]int64{"page": 0, "val": 9})); r.Code != -kernel.ESIGSEGV {
			t.Errorf("%s: write to read-only page = %v", name, r)
		}
		if r = k.Exec(0, call("munmap", 0, map[string]int64{"page": 0})); r.Code != 0 {
			t.Errorf("%s: munmap = %v", name, r)
		}
		if r = k.Exec(0, call("memread", 0, map[string]int64{"page": 0})); r.Code != -kernel.ESIGSEGV {
			t.Errorf("%s: memread after munmap = %v", name, r)
		}
		if r = k.Exec(0, call("mprotect", 0, map[string]int64{"page": 0, "wr": 1})); r.Code != -kernel.ENOMEM {
			t.Errorf("%s: mprotect unmapped = %v", name, r)
		}
		// Non-fixed mmap picks an unused address.
		r = k.Exec(0, call("mmap", 0, map[string]int64{"anon": 1, "wr": 1}))
		if r.Code != 0 {
			t.Errorf("%s: non-fixed mmap = %v", name, r)
		}
		if r2 := k.Exec(0, call("memread", 0, map[string]int64{"page": r.V1})); r2.Code != 0 {
			t.Errorf("%s: read of non-fixed mapping at %d = %v", name, r.V1, r2)
		}
	}
}

// checkConflicts runs two calls on fresh kernels of each flavor and returns
// conflict-freedom per kernel name.
func checkConflicts(t *testing.T, setup kernel.Setup, c0, c1 kernel.Call) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	for name, fresh := range kernels() {
		res, err := kernel.Check(fresh, kernel.TestCase{ID: "t", Setup: setup, Calls: [2]kernel.Call{c0, c1}})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = res.ConflictFree
	}
	return out
}

// The §1 motivating example: creating two differently-named files in one
// directory commutes; Linux's directory lock conflicts, sv6's per-bucket
// hash directory does not.
func TestCreateDifferentFilesConflictProfile(t *testing.T) {
	cf := checkConflicts(t, kernel.Setup{},
		call("open", 0, map[string]int64{"fname": 1, "creat": 1, "anyfd": 1}),
		call("open", 1, map[string]int64{"fname": 2, "creat": 1, "anyfd": 1}))
	if cf["linux"] {
		t.Error("linux: creating different files should conflict (dir lock, global ialloc)")
	}
	if !cf["sv6"] {
		t.Error("sv6: creating different files should be conflict-free")
	}
}

func TestStatDifferentFilesBothScale(t *testing.T) {
	setup := kernel.Setup{
		Files:  []kernel.SetupFile{{Name: "f0", Inum: 1}, {Name: "f1", Inum: 2}},
		Inodes: []kernel.SetupInode{{Inum: 1}, {Inum: 2}},
	}
	cf := checkConflicts(t, setup,
		call("stat", 0, map[string]int64{"fname": 0}),
		call("stat", 1, map[string]int64{"fname": 1}))
	if !cf["linux"] || !cf["sv6"] {
		t.Errorf("stat of different files should be conflict-free on both: %v", cf)
	}
}

// stat of the same name commutes (read-only), but Linux's dentry refcount
// write makes it conflict; sv6's lock-free lookup does not (§6.2).
func TestStatSameFileConflictProfile(t *testing.T) {
	setup := oneFile()
	cf := checkConflicts(t, setup,
		call("stat", 0, map[string]int64{"fname": 0}),
		call("stat", 1, map[string]int64{"fname": 0}))
	if cf["linux"] {
		t.Error("linux: stat same name should conflict on the dentry refcount")
	}
	if !cf["sv6"] {
		t.Error("sv6: stat same name should be conflict-free")
	}
}

// Two fstats of the same descriptor commute; Linux bumps the struct-file
// refcount (§6.2's example), sv6 reads only.
func TestFstatSameFDConflictProfile(t *testing.T) {
	setup := kernel.Setup{
		Files:  []kernel.SetupFile{{Name: "f0", Inum: 1}},
		Inodes: []kernel.SetupInode{{Inum: 1}},
		FDs:    []kernel.SetupFD{{Proc: 0, FD: 0, Inum: 1}},
	}
	cf := checkConflicts(t, setup,
		call("fstat", 0, map[string]int64{"fd": 0}),
		call("fstat", 0, map[string]int64{"fd": 0}))
	if cf["linux"] {
		t.Error("linux: fstat same fd should conflict on the file refcount")
	}
	if !cf["sv6"] {
		t.Error("sv6: fstat same fd should be conflict-free")
	}
}

// Commutative mmaps in the same process: Linux serializes on mmap_sem,
// RadixVM's per-page cells do not (§6.2, [15]).
func TestMmapDifferentPagesConflictProfile(t *testing.T) {
	cf := checkConflicts(t, kernel.Setup{},
		call("mmap", 0, map[string]int64{"page": 0, "fixed": 1, "anon": 1, "wr": 1}),
		call("mmap", 0, map[string]int64{"page": 1, "fixed": 1, "anon": 1, "wr": 1}))
	if cf["linux"] {
		t.Error("linux: mmap of different pages should conflict on mmap_sem")
	}
	if !cf["sv6"] {
		t.Error("sv6: mmap of different pages should be conflict-free")
	}
}

func TestMemAccessDifferentPagesConflictProfile(t *testing.T) {
	setup := kernel.Setup{VMAs: []kernel.SetupVMA{
		{Proc: 0, Page: 0, Anon: true, Writable: true, Val: 1},
		{Proc: 0, Page: 1, Anon: true, Writable: true, Val: 2},
	}}
	cf := checkConflicts(t, setup,
		call("memwrite", 0, map[string]int64{"page": 0, "val": 9}),
		call("memread", 0, map[string]int64{"page": 1}))
	if cf["linux"] {
		t.Error("linux: page faults should conflict on mmap_sem")
	}
	if !cf["sv6"] {
		t.Error("sv6: access to different pages should be conflict-free")
	}
}

// link and unlink of different names pointing at one inode commute; the
// shared link count conflicts on Linux, Refcache does not (§7.2).
func TestLinkUnlinkSameInodeConflictProfile(t *testing.T) {
	setup := kernel.Setup{
		Files:  []kernel.SetupFile{{Name: "f0", Inum: 1}, {Name: "f1", Inum: 1}},
		Inodes: []kernel.SetupInode{{Inum: 1}},
	}
	cf := checkConflicts(t, setup,
		call("link", 0, map[string]int64{"old": 0, "new": 2}),
		call("unlink", 1, map[string]int64{"fname": 1}))
	if cf["linux"] {
		t.Error("linux: link/unlink same inode should conflict on nlink")
	}
	if !cf["sv6"] {
		t.Error("sv6: link/unlink same inode should be conflict-free via Refcache")
	}
}

// Reads and writes of a non-empty pipe commute; one pipe lock conflicts,
// sv6's split head/tail cursors do not (§4).
func TestPipeReadWriteConflictProfile(t *testing.T) {
	setup := kernel.Setup{
		Pipes: []kernel.SetupPipe{{ID: 1, Items: []int64{5}}},
		FDs: []kernel.SetupFD{
			{Proc: 0, FD: 0, Pipe: true, PipeID: 1},
			{Proc: 1, FD: 0, Pipe: true, PipeID: 1, WriteEnd: true},
		},
	}
	cf := checkConflicts(t, setup,
		call("read", 0, map[string]int64{"fd": 0}),
		call("write", 1, map[string]int64{"fd": 0, "val": 9}))
	if cf["linux"] {
		t.Error("linux: pipe read||write should conflict on the pipe lock")
	}
	if !cf["sv6"] {
		t.Error("sv6: read||write of non-empty pipe should be conflict-free")
	}
}

// §6.4: sv6 deliberately does not scale idempotent lseeks; the offset cell
// stays shared. Both kernels conflict — and the runner still reports the
// calls as commutative (same results both orders).
func TestIdempotentLseekDifficultCase(t *testing.T) {
	setup := kernel.Setup{
		Files:  []kernel.SetupFile{{Name: "f0", Inum: 1}},
		Inodes: []kernel.SetupInode{{Inum: 1, Len: 2}},
		FDs:    []kernel.SetupFD{{Proc: 0, FD: 0, Inum: 1, Off: 1}},
	}
	c := call("lseek", 0, map[string]int64{"fd": 0, "delta": 2, "wset": 1})
	for name, fresh := range kernels() {
		res, err := kernel.Check(fresh, kernel.TestCase{ID: "lseek2", Setup: setup, Calls: [2]kernel.Call{c, c}})
		if err != nil {
			t.Fatal(err)
		}
		if res.ConflictFree {
			t.Errorf("%s: idempotent lseek pair unexpectedly conflict-free", name)
		}
		if !res.Commuted {
			t.Errorf("%s: idempotent lseeks must commute: %v vs %v", name, res.Res, res.ResSwapped)
		}
	}
}

// Operations in different processes never share FD state.
func TestCrossProcessFDsConflictFree(t *testing.T) {
	setup := kernel.Setup{
		Files:  []kernel.SetupFile{{Name: "f0", Inum: 1}, {Name: "f1", Inum: 2}},
		Inodes: []kernel.SetupInode{{Inum: 1, Len: 1}, {Inum: 2, Len: 1}},
		FDs: []kernel.SetupFD{
			{Proc: 0, FD: 0, Inum: 1},
			{Proc: 1, FD: 0, Inum: 2},
		},
	}
	cf := checkConflicts(t, setup,
		call("read", 0, map[string]int64{"fd": 0}),
		call("read", 1, map[string]int64{"fd": 0}))
	if !cf["linux"] || !cf["sv6"] {
		t.Errorf("cross-process reads of different files should be conflict-free: %v", cf)
	}
}

func TestCheckReportsCommuted(t *testing.T) {
	setup := kernel.Setup{}
	tc := kernel.TestCase{
		ID:    "create2",
		Setup: setup,
		Calls: [2]kernel.Call{
			call("open", 0, map[string]int64{"fname": 1, "creat": 1, "anyfd": 1}),
			call("open", 1, map[string]int64{"fname": 2, "creat": 1, "anyfd": 1}),
		},
	}
	res, err := kernel.Check(func() kernel.Kernel { return svsix.New() }, tc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Commuted {
		t.Errorf("sv6 per-core allocation should make results order-independent: %v vs %v",
			res.Res, res.ResSwapped)
	}
}
