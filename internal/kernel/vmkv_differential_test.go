package kernel_test

// Differential quick-checks for the two non-POSIX reference kernels
// (memvm for the "vm" spec, memkv for the "kv" spec), mirroring the
// POSIX differential and replay suites:
//
//   - the setup snapshot/reset oracle: a long-lived Replayer over
//     randomized setups and call pairs must produce exactly the
//     CheckResult that two fresh kernels produce, or a journal/reset-hook
//     gap in the new kernels leaks state between tests;
//   - the conflict oracle: the online epoch/bitset detector's verdict on
//     the new kernels' cell traffic must agree with the legacy post-hoc
//     scan of the access log.

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/kernel"
	"repro/internal/kernel/memkv"
	"repro/internal/kernel/memvm"
	"repro/internal/mtrace"
)

func genVMSetup(r *rand.Rand) kernel.Setup {
	var s kernel.Setup
	seen := map[[2]int64]bool{}
	for i := 0; i < r.Intn(6); i++ {
		proc, page := r.Intn(2), int64(r.Intn(3))
		at := [2]int64{int64(proc), page}
		if seen[at] {
			continue
		}
		seen[at] = true
		s.VMAs = append(s.VMAs, kernel.SetupVMA{
			Proc: proc, Page: page, Anon: true,
			Val: int64(r.Intn(8)), Writable: r.Intn(2) == 0,
		})
	}
	return s
}

func genVMCall(r *rand.Rand) kernel.Call {
	proc := r.Intn(2)
	page := int64(r.Intn(3))
	switch r.Intn(5) {
	case 0:
		return kernel.Call{Op: "mmap", Proc: proc, Args: map[string]int64{
			"page": page, "fixed": int64(r.Intn(2)), "wr": int64(r.Intn(2))}}
	case 1:
		return kernel.Call{Op: "munmap", Proc: proc, Args: map[string]int64{"page": page}}
	case 2:
		return kernel.Call{Op: "mprotect", Proc: proc, Args: map[string]int64{
			"page": page, "wr": int64(r.Intn(2))}}
	case 3:
		return kernel.Call{Op: "memread", Proc: proc, Args: map[string]int64{"page": page}}
	}
	return kernel.Call{Op: "memwrite", Proc: proc, Args: map[string]int64{
		"page": page, "val": int64(r.Intn(8))}}
}

func genKVSetup(r *rand.Rand) kernel.Setup {
	var s kernel.Setup
	seen := map[int64]bool{}
	for i := 0; i < r.Intn(4); i++ {
		key := int64(r.Intn(3))
		if seen[key] {
			continue
		}
		seen[key] = true
		s.KVs = append(s.KVs, kernel.SetupKV{Key: key, Val: int64(r.Intn(4))})
	}
	return s
}

func genKVCall(r *rand.Rand) kernel.Call {
	proc := r.Intn(2)
	key := int64(r.Intn(3))
	switch r.Intn(4) {
	case 0:
		return kernel.Call{Op: "get", Proc: proc, Args: map[string]int64{"key": key}}
	case 1:
		return kernel.Call{Op: "put", Proc: proc, Args: map[string]int64{
			"key": key, "val": int64(r.Intn(4))}}
	case 2:
		return kernel.Call{Op: "delete", Proc: proc, Args: map[string]int64{"key": key}}
	}
	lo := int64(r.Intn(3))
	return kernel.Call{Op: "scan", Proc: proc, Args: map[string]int64{
		"lo": lo, "hi": lo + int64(r.Intn(3))}}
}

// specKernels is the generator bundle per new kernel.
var specKernels = map[string]struct {
	fresh    func() kernel.Kernel
	genSetup func(*rand.Rand) kernel.Setup
	genCall  func(*rand.Rand) kernel.Call
}{
	"memvm": {func() kernel.Kernel { return memvm.New() }, genVMSetup, genVMCall},
	"memkv": {func() kernel.Kernel { return memkv.New() }, genKVSetup, genKVCall},
}

// TestVMKVReplayerMatchesFresh is the setup snapshot/reset oracle for the
// new kernels: one long-lived Replayer across many randomized setup
// groups must reproduce kernel.Check (two fresh kernels per test)
// exactly. Any state the journal or the lazy-creation OnReset hooks fail
// to restore — a stale page map entry in memvm, a leaked binding in
// memkv — surfaces as a result, commuted, or conflict-report mismatch.
func TestVMKVReplayerMatchesFresh(t *testing.T) {
	for name, sk := range specKernels {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(1))
			rep := kernel.NewReplayer(sk.fresh)
			for group := 0; group < 60; group++ {
				setup := sk.genSetup(r)
				var tests []kernel.TestCase
				for i := 0; i < 1+r.Intn(6); i++ {
					tests = append(tests, kernel.TestCase{
						ID:    "t",
						Setup: setup,
						Calls: [2]kernel.Call{sk.genCall(r), sk.genCall(r)},
					})
				}
				i := 0
				err := rep.CheckGroup(setup, tests, func(got kernel.CheckResult) bool {
					want, err := kernel.Check(sk.fresh, tests[i])
					if err != nil {
						t.Fatalf("group %d test %d: fresh check: %v", group, i, err)
					}
					if got.ConflictFree != want.ConflictFree ||
						got.Res != want.Res ||
						got.Commuted != want.Commuted ||
						got.ResSwapped != want.ResSwapped ||
						!reflect.DeepEqual(got.Conflicts, want.Conflicts) {
						t.Fatalf("group %d test %d (%v || %v): replayed %+v != fresh %+v",
							group, i, tests[i].Calls[0], tests[i].Calls[1], got, want)
					}
					i++
					return true
				})
				if err != nil {
					t.Fatalf("group %d: %v", group, err)
				}
			}
		})
	}
}

// vmkvOracleConflicts is the legacy conflict algorithm (post-hoc scan of
// the access log, one writer-or-shared-reader analysis per cell),
// reimplemented over the exported mtrace surface as an independent check
// of the online detector on the new kernels' access patterns.
func vmkvOracleConflicts(accesses []mtrace.Access) []mtrace.Conflict {
	type cellState struct {
		cell    *mtrace.Cell
		writers map[int]bool
		readers map[int]bool
	}
	states := map[*mtrace.Cell]*cellState{}
	var order []*cellState
	for _, a := range accesses {
		st := states[a.Cell]
		if st == nil {
			st = &cellState{cell: a.Cell, writers: map[int]bool{}, readers: map[int]bool{}}
			states[a.Cell] = st
			order = append(order, st)
		}
		if a.Write {
			st.writers[a.Core] = true
		} else {
			st.readers[a.Core] = true
		}
	}
	cores := func(set map[int]bool) []int {
		var out []int
		for c := range set {
			out = append(out, c)
		}
		sort.Ints(out)
		return out
	}
	var out []mtrace.Conflict
	for _, st := range order {
		conflict := len(st.writers) > 1
		if !conflict && len(st.writers) == 1 {
			var w int
			for core := range st.writers {
				w = core
			}
			for core := range st.readers {
				if core != w {
					conflict = true
					break
				}
			}
		}
		if conflict {
			out = append(out, mtrace.Conflict{
				CellName: st.cell.Name(),
				Writers:  cores(st.writers),
				Readers:  cores(st.readers),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CellName < out[j].CellName })
	return out
}

// TestVMKVOnlineMatchesLegacyOracle runs randomized multi-core call
// sequences directly on the new kernels with the access log enabled and
// checks the online verdict — and the materialized conflict report —
// against the legacy oracle, across several traced regions per kernel
// instance (the epoch bump must isolate regions).
func TestVMKVOnlineMatchesLegacyOracle(t *testing.T) {
	for name, sk := range specKernels {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 60; seed++ {
				r := rand.New(rand.NewSource(seed))
				k := sk.fresh()
				m := k.Memory()
				m.LogAccesses(true)
				if err := k.Apply(sk.genSetup(r)); err != nil {
					t.Fatalf("seed %d: apply: %v", seed, err)
				}
				for region := 0; region < 3; region++ {
					m.Start()
					for i := 0; i < r.Intn(12); i++ {
						k.Exec(r.Intn(4), sk.genCall(r))
					}
					m.Stop()
					want := vmkvOracleConflicts(m.Accesses())
					if m.ConflictFree() != (len(want) == 0) {
						t.Fatalf("seed %d region %d: ConflictFree=%v, oracle conflicts=%d",
							seed, region, m.ConflictFree(), len(want))
					}
					got := m.Conflicts()
					if len(got) != 0 || len(want) != 0 {
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("seed %d region %d:\n online: %v\n oracle: %v",
								seed, region, got, want)
						}
					}
				}
			}
		})
	}
}
