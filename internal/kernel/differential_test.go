package kernel_test

import (
	"math/rand"
	"testing"

	"repro/internal/kernel"
	"repro/internal/kernel/monokernel"
	"repro/internal/kernel/svsix"
)

// The two kernels implement one specification with different sharing, so
// random call sequences must produce identical observable results when the
// specification is deterministic. To keep outcomes comparable the generator
// avoids the intentionally nondeterministic corners: descriptor allocation
// runs in lowest-FD mode on both kernels (no anyfd flag) and mmap is always
// MAP_FIXED. Inode numbers differ between kernels by design (sv6 never
// reuses them), so stat-family V1 values are masked.

type randomCall struct {
	call    kernel.Call
	maskIno bool
}

func genCall(r *rand.Rand) randomCall {
	proc := r.Intn(2)
	name := func() int64 { return int64(r.Intn(4)) }
	fd := func() int64 { return int64(r.Intn(4)) }
	page := func() int64 { return int64(r.Intn(3)) }
	val := func() int64 { return int64(r.Intn(5) + 10) }
	flag := func() int64 { return int64(r.Intn(2)) }
	switch r.Intn(18) {
	case 0:
		return randomCall{call: kernel.Call{Op: "open", Proc: proc, Args: map[string]int64{
			"fname": name(), "creat": flag(), "excl": flag(), "trunc": flag()}}}
	case 1:
		return randomCall{call: kernel.Call{Op: "link", Proc: proc, Args: map[string]int64{
			"old": name(), "new": name()}}}
	case 2:
		return randomCall{call: kernel.Call{Op: "unlink", Proc: proc, Args: map[string]int64{
			"fname": name()}}}
	case 3:
		return randomCall{call: kernel.Call{Op: "rename", Proc: proc, Args: map[string]int64{
			"src": name(), "dst": name()}}}
	case 4:
		return randomCall{maskIno: true, call: kernel.Call{Op: "stat", Proc: proc, Args: map[string]int64{
			"fname": name()}}}
	case 5:
		return randomCall{maskIno: true, call: kernel.Call{Op: "fstat", Proc: proc, Args: map[string]int64{
			"fd": fd()}}}
	case 6:
		return randomCall{call: kernel.Call{Op: "lseek", Proc: proc, Args: map[string]int64{
			"fd": fd(), "delta": int64(r.Intn(5) - 1), "wset": flag(), "wend": flag()}}}
	case 7:
		return randomCall{call: kernel.Call{Op: "close", Proc: proc, Args: map[string]int64{
			"fd": fd()}}}
	case 8:
		return randomCall{call: kernel.Call{Op: "pipe", Proc: proc, Args: map[string]int64{}}}
	case 9:
		return randomCall{call: kernel.Call{Op: "read", Proc: proc, Args: map[string]int64{
			"fd": fd()}}}
	case 10:
		return randomCall{call: kernel.Call{Op: "write", Proc: proc, Args: map[string]int64{
			"fd": fd(), "val": val()}}}
	case 11:
		return randomCall{call: kernel.Call{Op: "pread", Proc: proc, Args: map[string]int64{
			"fd": fd(), "off": page()}}}
	case 12:
		return randomCall{call: kernel.Call{Op: "pwrite", Proc: proc, Args: map[string]int64{
			"fd": fd(), "off": page(), "val": val()}}}
	case 13:
		return randomCall{call: kernel.Call{Op: "mmap", Proc: proc, Args: map[string]int64{
			"page": page(), "fixed": 1, "anon": flag(), "wr": flag(), "fd": fd(), "foff": page()}}}
	case 14:
		return randomCall{call: kernel.Call{Op: "munmap", Proc: proc, Args: map[string]int64{
			"page": page()}}}
	case 15:
		return randomCall{call: kernel.Call{Op: "mprotect", Proc: proc, Args: map[string]int64{
			"page": page(), "wr": flag()}}}
	case 16:
		return randomCall{call: kernel.Call{Op: "memread", Proc: proc, Args: map[string]int64{
			"page": page()}}}
	default:
		return randomCall{call: kernel.Call{Op: "memwrite", Proc: proc, Args: map[string]int64{
			"page": page(), "val": val()}}}
	}
}

func genSetup(r *rand.Rand) kernel.Setup {
	var s kernel.Setup
	nInodes := r.Intn(3) + 1
	for i := 1; i <= nInodes; i++ {
		ln := int64(r.Intn(3))
		pages := map[int64]int64{}
		for p := int64(0); p < ln; p++ {
			pages[p] = int64(r.Intn(5) + 20)
		}
		s.Inodes = append(s.Inodes, kernel.SetupInode{Inum: int64(i), Len: ln, Pages: pages})
	}
	used := map[int64]bool{}
	for i := 0; i < r.Intn(3)+1; i++ {
		nm := int64(r.Intn(4))
		if used[nm] {
			continue
		}
		used[nm] = true
		s.Files = append(s.Files, kernel.SetupFile{Name: kernel.Fname(nm), Inum: int64(r.Intn(nInodes) + 1)})
	}
	for proc := 0; proc < 2; proc++ {
		for fd := int64(0); fd < int64(r.Intn(3)); fd++ {
			s.FDs = append(s.FDs, kernel.SetupFD{
				Proc: proc, FD: fd,
				Inum: int64(r.Intn(nInodes) + 1),
				Off:  int64(r.Intn(3)),
			})
		}
	}
	return s
}

// maskResult hides fields that legitimately differ between implementations
// (inode numbers come from different allocators).
func maskResult(rc randomCall, r kernel.Result) kernel.Result {
	if rc.maskIno && r.Code == 0 {
		r.V1 = 0
	}
	// pipe ids surface as negative pseudo-inodes in fstat; already masked
	// by maskIno. open's returned descriptor is comparable in lowest-FD
	// mode. mmap returns the fixed page. Nothing else to mask.
	return r
}

func TestDifferentialKernels(t *testing.T) {
	const seeds = 150
	const callsPerSeed = 30
	for seed := int64(0); seed < seeds; seed++ {
		r := rand.New(rand.NewSource(seed))
		setup := genSetup(r)
		lin := monokernel.New()
		sv := svsix.New()
		if err := lin.Apply(setup); err != nil {
			t.Fatalf("seed %d: linux setup: %v", seed, err)
		}
		if err := sv.Apply(setup); err != nil {
			t.Fatalf("seed %d: sv6 setup: %v", seed, err)
		}
		for i := 0; i < callsPerSeed; i++ {
			rc := genCall(r)
			core := r.Intn(2)
			rl := maskResult(rc, lin.Exec(core, rc.call))
			rs := maskResult(rc, sv.Exec(core, rc.call))
			if rl != rs {
				t.Fatalf("seed %d call %d: %v diverged: linux=%v sv6=%v",
					seed, i, rc.call, rl, rs)
			}
		}
	}
}

// genOffsetCall draws from the offset-carrying operations only: lseek and
// the positioned/cursor reads and writes, plus open/close to churn the
// descriptor table. File-offset state is where the two kernels diverge
// most structurally (per-FD offsets vs sv6's descriptor sharing rules),
// and the general generator reaches these interleavings too rarely to
// stress EOF clamping, whence-relative seeks, and offset advancement.
func genOffsetCall(r *rand.Rand) randomCall {
	proc := r.Intn(2)
	fd := func() int64 { return int64(r.Intn(4)) }
	off := func() int64 { return int64(r.Intn(5) - 1) } // includes -1 and past-EOF
	val := func() int64 { return int64(r.Intn(5) + 10) }
	flag := func() int64 { return int64(r.Intn(2)) }
	switch r.Intn(8) {
	case 0:
		return randomCall{call: kernel.Call{Op: "lseek", Proc: proc, Args: map[string]int64{
			"fd": fd(), "delta": off(), "wset": flag(), "wend": flag()}}}
	case 1:
		return randomCall{call: kernel.Call{Op: "pread", Proc: proc, Args: map[string]int64{
			"fd": fd(), "off": off()}}}
	case 2:
		return randomCall{call: kernel.Call{Op: "pwrite", Proc: proc, Args: map[string]int64{
			"fd": fd(), "off": off(), "val": val()}}}
	case 3:
		return randomCall{call: kernel.Call{Op: "read", Proc: proc, Args: map[string]int64{
			"fd": fd()}}}
	case 4:
		return randomCall{call: kernel.Call{Op: "write", Proc: proc, Args: map[string]int64{
			"fd": fd(), "val": val()}}}
	case 5:
		return randomCall{call: kernel.Call{Op: "open", Proc: proc, Args: map[string]int64{
			"fname": int64(r.Intn(4)), "creat": flag(), "trunc": flag()}}}
	case 6:
		return randomCall{call: kernel.Call{Op: "close", Proc: proc, Args: map[string]int64{
			"fd": fd()}}}
	default:
		// Interrogate the cursor without moving it: lseek by zero.
		return randomCall{call: kernel.Call{Op: "lseek", Proc: proc, Args: map[string]int64{
			"fd": fd()}}}
	}
}

// TestDifferentialFileOffsets quick-checks the offset-carrying operations
// (lseek/pread/pwrite and the cursor read/write) against both kernels.
// Setups bias toward many descriptors on few inodes with offsets at and
// beyond EOF, the corner the general differential test under-covers.
func TestDifferentialFileOffsets(t *testing.T) {
	const seeds = 200
	const callsPerSeed = 40
	for seed := int64(0); seed < seeds; seed++ {
		r := rand.New(rand.NewSource(1_000_000 + seed))
		nInodes := r.Intn(2) + 1
		var setup kernel.Setup
		for i := 1; i <= nInodes; i++ {
			ln := int64(r.Intn(4))
			pages := map[int64]int64{}
			for p := int64(0); p < ln; p++ {
				pages[p] = int64(r.Intn(5) + 20)
			}
			setup.Inodes = append(setup.Inodes, kernel.SetupInode{Inum: int64(i), Len: ln, Pages: pages})
		}
		setup.Files = append(setup.Files, kernel.SetupFile{Name: kernel.Fname(0), Inum: 1})
		for proc := 0; proc < 2; proc++ {
			for fdn := int64(0); fdn < 3; fdn++ {
				setup.FDs = append(setup.FDs, kernel.SetupFD{
					Proc: proc, FD: fdn,
					Inum: int64(r.Intn(nInodes) + 1),
					Off:  int64(r.Intn(5)), // includes offsets at and past EOF
				})
			}
		}
		lin := monokernel.New()
		sv := svsix.New()
		if err := lin.Apply(setup); err != nil {
			t.Fatalf("seed %d: linux setup: %v", seed, err)
		}
		if err := sv.Apply(setup); err != nil {
			t.Fatalf("seed %d: sv6 setup: %v", seed, err)
		}
		for i := 0; i < callsPerSeed; i++ {
			rc := genOffsetCall(r)
			core := r.Intn(2)
			rl := maskResult(rc, lin.Exec(core, rc.call))
			rs := maskResult(rc, sv.Exec(core, rc.call))
			if rl != rs {
				t.Fatalf("seed %d call %d: %v diverged: linux=%v sv6=%v",
					seed, i, rc.call, rl, rs)
			}
		}
	}
}

// Determinism: replaying one sequence on fresh kernels reproduces results.
func TestKernelDeterminism(t *testing.T) {
	for _, fresh := range []func() kernel.Kernel{
		func() kernel.Kernel { return monokernel.New() },
		func() kernel.Kernel { return svsix.New() },
	} {
		r1 := rand.New(rand.NewSource(42))
		r2 := rand.New(rand.NewSource(42))
		k1, k2 := fresh(), fresh()
		setup1, setup2 := genSetup(r1), genSetup(r2)
		if err := k1.Apply(setup1); err != nil {
			t.Fatal(err)
		}
		if err := k2.Apply(setup2); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			c1, c2 := genCall(r1), genCall(r2)
			core1, core2 := r1.Intn(2), r2.Intn(2)
			a := k1.Exec(core1, c1.call)
			b := k2.Exec(core2, c2.call)
			if a != b {
				t.Fatalf("%s: call %d nondeterministic: %v vs %v", k1.Name(), i, a, b)
			}
		}
	}
}
