package kernel

import "fmt"

// Replayer checks batches of tests that share a Setup against one
// long-lived kernel instance, instead of building two fresh kernels per
// test the way Check does. Construction cost (the sv6 kernel allocates
// tens of thousands of cells) is paid once; each test then runs against
// mtrace snapshot/reset, which only undoes the handful of cells the test
// actually wrote. Both execution orders replay on the same instance, so
// the commutativity comparison is also setup-shared.
//
// A Replayer is not safe for concurrent use; the sweep creates one per
// shard.
type Replayer struct {
	k Kernel
}

// NewReplayer builds the kernel once and opens its baseline snapshot.
func NewReplayer(fresh func() Kernel) *Replayer {
	k := fresh()
	k.Snapshot()
	return &Replayer{k: k}
}

// Kernel exposes the underlying instance (for diagnostics).
func (r *Replayer) Kernel() Kernel { return r.k }

// CheckGroup applies setup once, then replays each test against it, both
// orders, resetting between replays. Every test in tests must share the
// setup (same Setup.Fingerprint); the per-test Setup field is not
// consulted. fn receives each result in order and returns false to stop
// early. After the group the kernel is reset to its baseline (pristine)
// state, so groups with different setups run back to back on the same
// instance.
func (r *Replayer) CheckGroup(setup Setup, tests []TestCase, fn func(CheckResult) bool) error {
	k := r.k
	mem := k.Memory()
	if err := k.Apply(setup); err != nil {
		// Undo the partial setup so the instance stays reusable.
		mem.Reset()
		id := ""
		if len(tests) > 0 {
			id = tests[0].ID
		}
		return fmt.Errorf("%s: setup %s: %w", k.Name(), id, err)
	}
	mem.Snapshot()
	for _, tc := range tests {
		mem.Start()
		r0 := k.Exec(0, tc.Calls[0])
		r1 := k.Exec(1, tc.Calls[1])
		mem.Stop()
		free := mem.ConflictFree()
		conflicts := mem.Conflicts()
		mem.Reset()

		// Opposite order for the commutativity check. When the traced run
		// was conflict-free the re-execution is provably redundant: every
		// piece of kernel state lives in traced cells, the journal reset
		// restores the exact post-setup state, and conflict-freedom means
		// the two calls touched disjoint cells (read-read sharing aside) —
		// so running them in the opposite order from the same state cannot
		// change either result. Reuse the traced results and skip the
		// second pass; it was ~half of all replay work, and the vast
		// majority of generated tests are conflict-free.
		var s0, s1 Result
		if free {
			s0, s1 = r0, r1
		} else {
			// Untraced (no Start), but still journaled, so the next test
			// replays from the same post-setup state.
			s1 = k.Exec(1, tc.Calls[1])
			s0 = k.Exec(0, tc.Calls[0])
			mem.Reset()
		}

		ok := fn(CheckResult{
			Test:         tc,
			ConflictFree: free,
			Conflicts:    conflicts,
			Res:          [2]Result{r0, r1},
			Commuted:     resultsCommute(r0, s0) && resultsCommute(r1, s1),
			ResSwapped:   [2]Result{s0, s1},
		})
		if !ok {
			break
		}
	}
	// Merge the group region into the baseline and roll everything —
	// setup included — back to the pristine kernel.
	mem.Pop()
	mem.Reset()
	return nil
}
