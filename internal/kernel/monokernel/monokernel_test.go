package monokernel

import (
	"testing"

	"repro/internal/kernel"
)

func apply(t *testing.T, k *Kern, s kernel.Setup) {
	t.Helper()
	if err := k.Apply(s); err != nil {
		t.Fatal(err)
	}
}

// The lowest-FD rule across open, pipe and close.
func TestLowestFDRule(t *testing.T) {
	k := New()
	apply(t, k, kernel.Setup{
		Files:  []kernel.SetupFile{{Name: "f0", Inum: 1}},
		Inodes: []kernel.SetupInode{{Inum: 1}},
	})
	open := func() int64 {
		r := k.Exec(0, kernel.Call{Op: "open", Args: map[string]int64{"fname": 0}})
		if r.Code < 0 {
			t.Fatalf("open: %v", r)
		}
		return r.Code
	}
	if fd := open(); fd != 0 {
		t.Errorf("first open = %d", fd)
	}
	if fd := open(); fd != 1 {
		t.Errorf("second open = %d", fd)
	}
	k.Exec(0, kernel.Call{Op: "close", Args: map[string]int64{"fd": 0}})
	if fd := open(); fd != 0 {
		t.Errorf("open after close = %d, want lowest (0)", fd)
	}
	r := k.Exec(0, kernel.Call{Op: "pipe", Args: map[string]int64{}})
	if r.V1 != 2 || r.V2 != 3 {
		t.Errorf("pipe fds = %d,%d, want 2,3", r.V1, r.V2)
	}
}

// O_TRUNC must zero dropped pages so later extension exposes holes, not
// stale data.
func TestTruncDropsPages(t *testing.T) {
	k := New()
	apply(t, k, kernel.Setup{
		Files:  []kernel.SetupFile{{Name: "f0", Inum: 1}},
		Inodes: []kernel.SetupInode{{Inum: 1, Len: 2, Pages: map[int64]int64{0: 21, 1: 22}}},
		FDs:    []kernel.SetupFD{{Proc: 0, FD: 0, Inum: 1}},
	})
	if r := k.Exec(0, kernel.Call{Op: "open", Args: map[string]int64{"fname": 0, "trunc": 1}}); r.Code < 0 {
		t.Fatal(r)
	}
	// Extend past the old pages: they must read back as zero.
	if r := k.Exec(0, kernel.Call{Op: "pwrite", Args: map[string]int64{"fd": 0, "off": 2, "val": 9}}); r.Code != 1 {
		t.Fatal(r)
	}
	if r := k.Exec(0, kernel.Call{Op: "pread", Args: map[string]int64{"fd": 0, "off": 0}}); r.Data != 0 {
		t.Errorf("stale page after trunc: %v", r)
	}
}

// Deliberate Linux-like sharing: the fault path writes mmap_sem even for
// reads, so two faults in one process conflict.
func TestMmapSemSharedOnFaults(t *testing.T) {
	k := New()
	apply(t, k, kernel.Setup{VMAs: []kernel.SetupVMA{
		{Proc: 0, Page: 0, Anon: true, Writable: true},
		{Proc: 0, Page: 1, Anon: true, Writable: true},
	}})
	mem := k.Memory()
	mem.Start()
	k.Exec(0, kernel.Call{Op: "memread", Args: map[string]int64{"page": 0}})
	k.Exec(1, kernel.Call{Op: "memread", Args: map[string]int64{"page": 1}})
	mem.Stop()
	if mem.ConflictFree() {
		t.Error("page faults should conflict on mmap_sem in the Linux-like kernel")
	}
}

// Every name lookup bumps the dentry refcount — even failing lookups of
// negative dentries, as in Linux's dcache.
func TestNegativeDentryRefcount(t *testing.T) {
	k := New()
	apply(t, k, kernel.Setup{})
	mem := k.Memory()
	mem.Start()
	k.Exec(0, kernel.Call{Op: "stat", Args: map[string]int64{"fname": 3}})
	k.Exec(1, kernel.Call{Op: "stat", Args: map[string]int64{"fname": 3}})
	mem.Stop()
	if mem.ConflictFree() {
		t.Error("same-name lookups should conflict on the (negative) dentry refcount")
	}
}

// The global inode allocator serializes file creation.
func TestGlobalInodeAllocator(t *testing.T) {
	k := New()
	apply(t, k, kernel.Setup{})
	mem := k.Memory()
	mem.Start()
	k.Exec(0, kernel.Call{Op: "open", Args: map[string]int64{"fname": 0, "creat": 1}})
	k.Exec(1, kernel.Call{Op: "open", Proc: 1, Args: map[string]int64{"fname": 1, "creat": 1}})
	mem.Stop()
	found := false
	for _, c := range mem.Conflicts() {
		if c.CellName == "inode_table.next_ino" || c.CellName == "dir.lock" {
			found = true
		}
	}
	if !found {
		t.Errorf("creates in different processes should share the allocator or dir lock: %v", mem.Conflicts())
	}
}
