// Package monokernel is the Linux-3.8-like baseline kernel: an in-memory
// Unix kernel (ramfs + virtual memory) whose sharing structure deliberately
// mirrors the conflict sources §6.2 of the paper found in Linux:
//
//   - every name lookup bumps a dentry reference count,
//   - any operation creating or removing names takes the directory lock,
//   - every descriptor use bumps the struct-file reference count,
//   - descriptor allocation takes the file-table lock and obeys the
//     "lowest available FD" rule,
//   - inode link counts and lengths are single shared cache lines,
//   - file writes serialize on the inode mutex,
//   - new inodes come from one global allocator,
//   - pipes serialize all ends on one pipe lock,
//   - every VM operation takes the process-wide mmap_sem, including the
//     read-mode acquisition (an atomic write) on the page-fault path.
//
// Its semantics match the POSIX model; only its sharing differs from sv6.
package monokernel

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/mtrace"
	"repro/internal/scale"
)

type dentry struct {
	refcnt *mtrace.Cell
	inum   *mtrace.Cell // 0 = negative dentry (name absent)
}

type inode struct {
	nlink *mtrace.Cell
	len   *mtrace.Cell
	mutex *scale.SpinLock
	pages map[int64]*mtrace.Cell
}

type file struct {
	refcnt *mtrace.Cell
	off    *mtrace.Cell
	pipe   *pipe
	wend   bool
	inum   int64
}

type fdslot struct {
	cell *mtrace.Cell // slot version; written on install/clear
	f    *file
}

type pipe struct {
	lock  *scale.SpinLock
	head  *mtrace.Cell
	tail  *mtrace.Cell
	items map[int64]*mtrace.Cell
}

type vma struct {
	cell *mtrace.Cell // mapping descriptor version
	anon bool
	inum int64
	foff int64
	wr   bool
}

type proc struct {
	fdLock  *scale.SpinLock
	slots   map[int64]*fdslot
	mmapSem *mtrace.Cell // rwsem: read and write acquisitions both write it
	vmaTree *mtrace.Cell // rbtree root version; written by map/unmap
	vmas    map[int64]*vma
	anon    map[int64]*mtrace.Cell
}

// Kern is the Linux-like kernel instance.
type Kern struct {
	mem      *mtrace.Memory
	dirLock  *scale.SpinLock
	dentries map[int64]*dentry
	nextIno  *mtrace.Cell
	nextPipe int64
	inodes   map[int64]*inode
	pipes    map[int64]*pipe
	procs    [2]*proc
}

var _ kernel.Kernel = (*Kern)(nil)

// New returns an empty Linux-like kernel over a fresh traced memory.
func New() *Kern {
	mem := mtrace.NewMemory()
	k := &Kern{
		mem:      mem,
		dirLock:  scale.NewSpinLock(mem, "dir.lock"),
		dentries: map[int64]*dentry{},
		nextIno:  mem.NewCell("inode_table.next_ino", 1000),
		nextPipe: 2000,
		inodes:   map[int64]*inode{},
		pipes:    map[int64]*pipe{},
	}
	for i := range k.procs {
		k.procs[i] = &proc{
			fdLock:  scale.NewSpinLock(mem, fmt.Sprintf("proc%d.files.lock", i)),
			slots:   map[int64]*fdslot{},
			mmapSem: mem.NewCellf(0, "proc%d.mmap_sem", i),
			vmaTree: mem.NewCellf(0, "proc%d.vma_tree", i),
			vmas:    map[int64]*vma{},
			anon:    map[int64]*mtrace.Cell{},
		}
	}
	return k
}

// Name implements kernel.Kernel.
func (k *Kern) Name() string { return "linux" }

// Memory implements kernel.Kernel.
func (k *Kern) Memory() *mtrace.Memory { return k.mem }

// Snapshot implements kernel.Kernel. Cell values are journaled by the
// memory itself; the mutation sites below register OnReset hooks for the
// structural state the journal cannot see (map entries, the plain fields
// of vma and fdslot, the pipe id counter), so Reset restores a state
// observationally identical to a fresh kernel with the same setup —
// including which map entries exist, because a stale entry would change
// the traced access pattern of lookups that are gated on entry presence
// (fget, the mmap address scan).
func (k *Kern) Snapshot() { k.mem.Snapshot() }

// Reset implements kernel.Kernel.
func (k *Kern) Reset() { k.mem.Reset() }

func (k *Kern) dentry(name int64) *dentry {
	d, ok := k.dentries[name]
	if !ok {
		d = &dentry{
			refcnt: k.mem.NewCellf(0, "dentry[%s].refcnt", kernel.Fname(name)),
			inum:   k.mem.NewCellf(0, "dentry[%s].inum", kernel.Fname(name)),
		}
		k.dentries[name] = d
	}
	return d
}

func (k *Kern) inode(inum int64) *inode {
	ino, ok := k.inodes[inum]
	if !ok {
		ino = &inode{
			nlink: k.mem.NewCellf(0, "inode[%d].nlink", inum),
			len:   k.mem.NewCellf(0, "inode[%d].len", inum),
			mutex: scale.NewSpinLock(k.mem, fmt.Sprintf("inode[%d].mutex", inum)),
			pages: map[int64]*mtrace.Cell{},
		}
		k.inodes[inum] = ino
	}
	return ino
}

func (ino *inode) page(mem *mtrace.Memory, inum, idx int64) *mtrace.Cell {
	p, ok := ino.pages[idx]
	if !ok {
		p = mem.NewCellf(0, "page[%d:%d]", inum, idx)
		ino.pages[idx] = p
	}
	return p
}

func (k *Kern) newPipe(id int64) *pipe {
	p := &pipe{
		lock:  scale.NewSpinLock(k.mem, fmt.Sprintf("pipe[%d].lock", id)),
		head:  k.mem.NewCellf(0, "pipe[%d].head", id),
		tail:  k.mem.NewCellf(0, "pipe[%d].tail", id),
		items: map[int64]*mtrace.Cell{},
	}
	prev, had := k.pipes[id]
	k.mem.OnReset(func() {
		if had {
			k.pipes[id] = prev
		} else {
			delete(k.pipes, id)
		}
	})
	k.pipes[id] = p
	return p
}

func (p *pipe) item(mem *mtrace.Memory, seq int64) *mtrace.Cell {
	c, ok := p.items[seq]
	if !ok {
		c = mem.NewCellf(0, "pipe.item[%d]", seq)
		p.items[seq] = c
	}
	return c
}

// dget looks a name up in the dcache, bumping and dropping the dentry
// reference count like Linux's path walk; the write is the conflict §6.2
// highlights. It returns the bound inode number (0 when unbound).
func (k *Kern) dget(core int, name int64) int64 {
	d := k.dentry(name)
	d.refcnt.Add(core, 1)
	inum := d.inum.Load(core)
	d.refcnt.Add(core, -1)
	return inum
}

// fget resolves a descriptor, bumping the struct-file refcount (RCU table
// lookup reads only the slot cell, but the refcount bump is a write).
func (k *Kern) fget(core int, pr int, fd int64) *file {
	p := k.procs[pr]
	s, ok := p.slots[fd]
	if !ok {
		return nil
	}
	if s.cell.Load(core) == 0 {
		return nil
	}
	s.f.refcnt.Add(core, 1)
	return s.f
}

func (k *Kern) fput(core int, f *file) { f.refcnt.Add(core, -1) }

// allocFD installs f at the lowest free descriptor under the table lock.
func (k *Kern) allocFD(core int, pr int, f *file) int64 {
	p := k.procs[pr]
	p.fdLock.Acquire(core)
	defer p.fdLock.Release(core)
	for fd := int64(0); ; fd++ {
		s, ok := p.slots[fd]
		if !ok {
			s = &fdslot{cell: k.mem.NewCellf(0, "proc%d.fd[%d]", pr, fd)}
			fd := fd
			k.mem.OnReset(func() { delete(p.slots, fd) })
			p.slots[fd] = s
		}
		if s.cell.Load(core) == 0 {
			old := s.f
			k.mem.OnReset(func() { s.f = old })
			s.f = f
			s.cell.Store(core, 1)
			return fd
		}
	}
}

// Apply implements kernel.Kernel; it builds initial state untraced.
func (k *Kern) Apply(s kernel.Setup) error {
	for _, si := range s.Inodes {
		ino := k.inode(si.Inum)
		ino.nlink.Poke(int64(si.ExtraLinks))
		ino.len.Poke(si.Len)
		for pg, val := range si.Pages {
			ino.page(k.mem, si.Inum, pg).Poke(val)
		}
	}
	for _, sf := range s.Files {
		nameID, err := parseName(sf.Name)
		if err != nil {
			return err
		}
		d := k.dentry(nameID)
		if d.inum.Peek() != 0 {
			return fmt.Errorf("monokernel: duplicate setup name %s", sf.Name)
		}
		d.inum.Poke(sf.Inum)
		ino := k.inode(sf.Inum)
		ino.nlink.Poke(ino.nlink.Peek() + 1)
	}
	for _, sp := range s.Pipes {
		p := k.newPipe(sp.ID)
		for i, v := range sp.Items {
			p.item(k.mem, int64(i)).Poke(v)
		}
		p.head.Poke(0)
		p.tail.Poke(int64(len(sp.Items)))
	}
	for _, sd := range s.FDs {
		p := k.procs[sd.Proc]
		f := &file{
			refcnt: k.mem.NewCellf(1, "file[p%d:%d].refcnt", sd.Proc, sd.FD),
			off:    k.mem.NewCellf(sd.Off, "file[p%d:%d].off", sd.Proc, sd.FD),
		}
		if sd.Pipe {
			pp, ok := k.pipes[sd.PipeID]
			if !ok {
				pp = k.newPipe(sd.PipeID)
			}
			f.pipe = pp
			f.wend = sd.WriteEnd
		} else {
			f.inum = sd.Inum
			k.inode(sd.Inum) // ensure the inode exists
		}
		slot := &fdslot{cell: k.mem.NewCellf(1, "proc%d.fd[%d]", sd.Proc, sd.FD), f: f}
		// The live slot cell is born at 1 and never journaled, so a reset
		// cannot revive its old value; drop the entry instead.
		fd := sd.FD
		k.mem.OnReset(func() { delete(p.slots, fd) })
		p.slots[fd] = slot
	}
	for _, sv := range s.VMAs {
		p := k.procs[sv.Proc]
		v := &vma{
			cell: k.mem.NewCellf(1, "proc%d.vma[%d]", sv.Proc, sv.Page),
			anon: sv.Anon, inum: sv.Inum, foff: sv.Foff, wr: sv.Writable,
		}
		page := sv.Page
		k.mem.OnReset(func() { delete(p.vmas, page) })
		p.vmas[page] = v
		if sv.Anon {
			c := k.mem.NewCellf(sv.Val, "proc%d.anonpage[%d]", sv.Proc, sv.Page)
			k.mem.OnReset(func() { delete(p.anon, page) })
			p.anon[page] = c
		} else {
			k.inode(sv.Inum)
		}
		p.vmaTree.Poke(p.vmaTree.Peek() + 1)
	}
	return nil
}

func parseName(s string) (int64, error) {
	var id int64
	if _, err := fmt.Sscanf(s, "f%d", &id); err != nil {
		return 0, fmt.Errorf("monokernel: bad setup name %q", s)
	}
	return id, nil
}

func errR(errno int64) kernel.Result { return kernel.Result{Code: -errno} }
