package monokernel

import (
	"fmt"

	"repro/internal/kernel"
)

// Exec implements kernel.Kernel.
func (k *Kern) Exec(core int, c kernel.Call) kernel.Result {
	switch c.Op {
	case "open":
		return k.open(core, c)
	case "link":
		return k.link(core, c)
	case "unlink":
		return k.unlink(core, c)
	case "rename":
		return k.rename(core, c)
	case "stat":
		return k.stat(core, c)
	case "fstat":
		return k.fstat(core, c)
	case "lseek":
		return k.lseek(core, c)
	case "close":
		return k.close(core, c)
	case "pipe":
		return k.pipe(core, c)
	case "read":
		return k.read(core, c)
	case "write":
		return k.write(core, c)
	case "pread":
		return k.pread(core, c)
	case "pwrite":
		return k.pwrite(core, c)
	case "mmap":
		return k.mmap(core, c)
	case "munmap":
		return k.munmap(core, c)
	case "mprotect":
		return k.mprotect(core, c)
	case "memread":
		return k.memread(core, c)
	case "memwrite":
		return k.memwrite(core, c)
	}
	panic(fmt.Sprintf("monokernel: unknown op %q", c.Op))
}

func (k *Kern) open(core int, c kernel.Call) kernel.Result {
	name := c.Arg("fname")
	creat, excl, trunc := c.ArgBool("creat"), c.ArgBool("excl"), c.ArgBool("trunc")
	inum := k.dget(core, name)
	if inum != 0 {
		if creat && excl {
			return errR(kernel.EEXIST)
		}
		if trunc {
			ino := k.inode(inum)
			ino.mutex.Acquire(core)
			// Drop the cached pages too, or a later extension would
			// resurrect stale data instead of zero-filled holes.
			for pg := int64(0); pg < ino.len.Load(core); pg++ {
				ino.page(k.mem, inum, pg).Store(core, 0)
			}
			ino.len.Store(core, 0)
			ino.mutex.Release(core)
		}
	} else {
		if !creat {
			return errR(kernel.ENOENT)
		}
		// Name creation takes the directory lock; the inode comes from
		// the global allocator. Both are conflict sources §6.2 reports.
		k.dirLock.Acquire(core)
		d := k.dentry(name)
		if d.inum.Load(core) != 0 {
			inum = d.inum.Load(core) // lost the race (single-threaded: unreachable)
		} else {
			inum = k.nextIno.Add(core, 1)
			ino := k.inode(inum)
			ino.nlink.Store(core, 1)
			ino.len.Store(core, 0)
			d.inum.Store(core, inum)
		}
		k.dirLock.Release(core)
	}
	f := &file{
		refcnt: k.mem.NewCellf(1, "file[new:%d]. refcnt", inum),
		off:    k.mem.NewCellf(0, "file[new:%d].off", inum),
		inum:   inum,
	}
	fd := k.allocFD(core, c.Proc, f)
	return kernel.Result{Code: fd}
}

func (k *Kern) link(core int, c kernel.Call) kernel.Result {
	old, nw := c.Arg("old"), c.Arg("new")
	inum := k.dget(core, old)
	if inum == 0 {
		return errR(kernel.ENOENT)
	}
	k.dirLock.Acquire(core)
	defer k.dirLock.Release(core)
	d := k.dentry(nw)
	if d.inum.Load(core) != 0 {
		return errR(kernel.EEXIST)
	}
	k.inode(inum).nlink.Add(core, 1)
	d.inum.Store(core, inum)
	return kernel.Result{}
}

func (k *Kern) unlink(core int, c kernel.Call) kernel.Result {
	name := c.Arg("fname")
	k.dirLock.Acquire(core)
	defer k.dirLock.Release(core)
	d := k.dentry(name)
	d.refcnt.Add(core, 1)
	inum := d.inum.Load(core)
	if inum == 0 {
		d.refcnt.Add(core, -1)
		return errR(kernel.ENOENT)
	}
	k.inode(inum).nlink.Add(core, -1)
	d.inum.Store(core, 0)
	d.refcnt.Add(core, -1)
	return kernel.Result{}
}

// rename mirrors the model's Figure 4 semantics under the directory lock.
func (k *Kern) rename(core int, c kernel.Call) kernel.Result {
	src, dst := c.Arg("src"), c.Arg("dst")
	k.dirLock.Acquire(core)
	defer k.dirLock.Release(core)
	sd := k.dentry(src)
	sd.refcnt.Add(core, 1)
	si := sd.inum.Load(core)
	sd.refcnt.Add(core, -1)
	if si == 0 {
		return errR(kernel.ENOENT)
	}
	if src == dst {
		return kernel.Result{}
	}
	dd := k.dentry(dst)
	dd.refcnt.Add(core, 1)
	if di := dd.inum.Load(core); di != 0 {
		k.inode(di).nlink.Add(core, -1)
	}
	dd.inum.Store(core, si)
	dd.refcnt.Add(core, -1)
	sd.inum.Store(core, 0)
	return kernel.Result{}
}

func (k *Kern) stat(core int, c kernel.Call) kernel.Result {
	inum := k.dget(core, c.Arg("fname"))
	if inum == 0 {
		return errR(kernel.ENOENT)
	}
	ino := k.inode(inum)
	return kernel.Result{V1: inum, V2: ino.nlink.Load(core), V3: ino.len.Load(core)}
}

func (k *Kern) fstat(core int, c kernel.Call) kernel.Result {
	f := k.fget(core, c.Proc, c.Arg("fd"))
	if f == nil {
		return errR(kernel.EBADF)
	}
	defer k.fput(core, f)
	if f.pipe != nil {
		f.pipe.lock.Acquire(core)
		n := f.pipe.tail.Load(core) - f.pipe.head.Load(core)
		f.pipe.lock.Release(core)
		return kernel.Result{V1: -pipeID(f), V2: 1, V3: n}
	}
	ino := k.inode(f.inum)
	return kernel.Result{V1: f.inum, V2: ino.nlink.Load(core), V3: ino.len.Load(core)}
}

// pipeID recovers a stable identifier for a pipe (its head cell name is
// unique); monokernel stores pipes keyed by id, so search.
func pipeID(f *file) int64 {
	// The id is immaterial to conflict analysis; derive it from the
	// pointer-independent head cell name, parsed lazily.
	var id int64
	fmt.Sscanf(f.pipe.head.Name(), "pipe[%d].head", &id)
	return id
}

func (k *Kern) lseek(core int, c kernel.Call) kernel.Result {
	f := k.fget(core, c.Proc, c.Arg("fd"))
	if f == nil {
		return errR(kernel.EBADF)
	}
	defer k.fput(core, f)
	if f.pipe != nil {
		return errR(kernel.ESPIPE)
	}
	delta := c.Arg("delta")
	var n int64
	switch {
	case c.ArgBool("wset"):
		n = delta
	case c.ArgBool("wend"):
		n = k.inode(f.inum).len.Load(core) + delta
	default:
		n = f.off.Load(core) + delta
	}
	if n < 0 {
		return errR(kernel.EINVAL)
	}
	f.off.Store(core, n)
	return kernel.Result{V1: n}
}

func (k *Kern) close(core int, c kernel.Call) kernel.Result {
	p := k.procs[c.Proc]
	fd := c.Arg("fd")
	p.fdLock.Acquire(core)
	defer p.fdLock.Release(core)
	s, ok := p.slots[fd]
	if !ok || s.cell.Load(core) == 0 {
		return errR(kernel.EBADF)
	}
	s.cell.Store(core, 0)
	s.f.refcnt.Add(core, -1)
	return kernel.Result{}
}

func (k *Kern) pipe(core int, c kernel.Call) kernel.Result {
	old := k.nextPipe
	k.mem.OnReset(func() { k.nextPipe = old })
	k.nextPipe++
	p := k.newPipe(k.nextPipe)
	rf := &file{refcnt: k.mem.NewCellf(1, "file[piper].refcnt"), off: k.mem.NewCellf(0, "file[piper].off"), pipe: p}
	wf := &file{refcnt: k.mem.NewCellf(1, "file[pipew].refcnt"), off: k.mem.NewCellf(0, "file[pipew].off"), pipe: p, wend: true}
	rfd := k.allocFD(core, c.Proc, rf)
	wfd := k.allocFD(core, c.Proc, wf)
	return kernel.Result{V1: rfd, V2: wfd}
}

func (k *Kern) read(core int, c kernel.Call) kernel.Result {
	f := k.fget(core, c.Proc, c.Arg("fd"))
	if f == nil {
		return errR(kernel.EBADF)
	}
	defer k.fput(core, f)
	if f.pipe != nil {
		if f.wend {
			return errR(kernel.EBADF)
		}
		p := f.pipe
		p.lock.Acquire(core)
		defer p.lock.Release(core)
		h, t := p.head.Load(core), p.tail.Load(core)
		if h == t {
			return errR(kernel.EAGAIN)
		}
		v := p.item(k.mem, h).Load(core)
		p.head.Store(core, h+1)
		return kernel.Result{Code: 1, Data: v}
	}
	ino := k.inode(f.inum)
	off := f.off.Load(core)
	if off >= ino.len.Load(core) {
		return kernel.Result{Code: 0}
	}
	v := ino.page(k.mem, f.inum, off).Load(core)
	f.off.Store(core, off+1)
	return kernel.Result{Code: 1, Data: v}
}

func (k *Kern) write(core int, c kernel.Call) kernel.Result {
	f := k.fget(core, c.Proc, c.Arg("fd"))
	if f == nil {
		return errR(kernel.EBADF)
	}
	defer k.fput(core, f)
	val := c.Arg("val")
	if f.pipe != nil {
		if !f.wend {
			return errR(kernel.EBADF)
		}
		p := f.pipe
		p.lock.Acquire(core)
		defer p.lock.Release(core)
		t := p.tail.Load(core)
		p.item(k.mem, t).Store(core, val)
		p.tail.Store(core, t+1)
		return kernel.Result{Code: 1}
	}
	ino := k.inode(f.inum)
	ino.mutex.Acquire(core)
	defer ino.mutex.Release(core)
	off := f.off.Load(core)
	ino.page(k.mem, f.inum, off).Store(core, val)
	if off+1 > ino.len.Load(core) {
		ino.len.Store(core, off+1)
	}
	f.off.Store(core, off+1)
	return kernel.Result{Code: 1}
}

func (k *Kern) pread(core int, c kernel.Call) kernel.Result {
	f := k.fget(core, c.Proc, c.Arg("fd"))
	if f == nil {
		return errR(kernel.EBADF)
	}
	defer k.fput(core, f)
	if f.pipe != nil {
		return errR(kernel.ESPIPE)
	}
	ino := k.inode(f.inum)
	off := c.Arg("off")
	if off >= ino.len.Load(core) {
		return kernel.Result{Code: 0}
	}
	return kernel.Result{Code: 1, Data: ino.page(k.mem, f.inum, off).Load(core)}
}

func (k *Kern) pwrite(core int, c kernel.Call) kernel.Result {
	f := k.fget(core, c.Proc, c.Arg("fd"))
	if f == nil {
		return errR(kernel.EBADF)
	}
	defer k.fput(core, f)
	if f.pipe != nil {
		return errR(kernel.ESPIPE)
	}
	ino := k.inode(f.inum)
	ino.mutex.Acquire(core)
	defer ino.mutex.Release(core)
	off := c.Arg("off")
	ino.page(k.mem, f.inum, off).Store(core, c.Arg("val"))
	if off+1 > ino.len.Load(core) {
		ino.len.Store(core, off+1)
	}
	return kernel.Result{Code: 1}
}

// vmWrite enters a VM-modifying section: mmap_sem in write mode.
func (p *proc) vmWrite(core int) { p.mmapSem.Add(core, 1) }
func (p *proc) vmDone(core int)  { p.mmapSem.Add(core, -1) }

// vmRead is the page-fault path's read-mode rwsem acquisition — an atomic
// add, i.e. a write to the semaphore's cache line.
func (p *proc) vmRead(core int) { p.mmapSem.Add(core, 1) }

func (k *Kern) mmap(core int, c kernel.Call) kernel.Result {
	p := k.procs[c.Proc]
	addr := c.Arg("page")
	if !c.ArgBool("fixed") {
		// Pick the first unmapped page while holding mmap_sem.
		p.vmWrite(core)
		for addr = 0; ; addr++ {
			if v, ok := p.vmas[addr]; !ok || v.cell.Load(core) == 0 {
				break
			}
		}
		p.vmDone(core)
	}
	var nv *vma
	if c.ArgBool("anon") {
		nv = &vma{anon: true, wr: c.ArgBool("wr")}
	} else {
		f := k.fget(core, c.Proc, c.Arg("fd"))
		if f == nil {
			return errR(kernel.EBADF)
		}
		if f.pipe != nil {
			k.fput(core, f)
			return errR(kernel.ENODEV)
		}
		nv = &vma{inum: f.inum, foff: c.Arg("foff"), wr: c.ArgBool("wr")}
		k.fput(core, f)
	}
	p.vmWrite(core)
	defer p.vmDone(core)
	old, ok := p.vmas[addr]
	if ok {
		old.cell.Store(core, 0)
	}
	nv.cell = k.mem.NewCellf(1, "proc%d.vma[%d]", c.Proc, addr)
	// The new descriptor cell is born live (1) and never journaled; put
	// the previous map state back on reset.
	k.mem.OnReset(func() {
		if ok {
			p.vmas[addr] = old
		} else {
			delete(p.vmas, addr)
		}
	})
	p.vmas[addr] = nv
	p.vmaTree.Add(core, 1)
	if nv.anon {
		cell, ok := p.anon[addr]
		if !ok {
			cell = k.mem.NewCellf(0, "proc%d.anonpage[%d]", c.Proc, addr)
			p.anon[addr] = cell
		}
		cell.Store(core, 0)
	}
	return kernel.Result{V1: addr}
}

func (k *Kern) munmap(core int, c kernel.Call) kernel.Result {
	p := k.procs[c.Proc]
	p.vmWrite(core)
	defer p.vmDone(core)
	if v, ok := p.vmas[c.Arg("page")]; ok && v.cell.Load(core) != 0 {
		v.cell.Store(core, 0)
		p.vmaTree.Add(core, 1)
	}
	return kernel.Result{}
}

func (k *Kern) mprotect(core int, c kernel.Call) kernel.Result {
	p := k.procs[c.Proc]
	p.vmWrite(core)
	defer p.vmDone(core)
	v, ok := p.vmas[c.Arg("page")]
	if !ok || v.cell.Load(core) == 0 {
		return errR(kernel.ENOMEM)
	}
	oldWr := v.wr
	k.mem.OnReset(func() { v.wr = oldWr })
	v.wr = c.ArgBool("wr")
	v.cell.Add(core, 1)
	return kernel.Result{}
}

// fault resolves a page for access; it models the page-fault path: rwsem in
// read mode (still a write to the semaphore), then the VMA tree walk.
func (k *Kern) fault(core int, pr int, page int64) *vma {
	p := k.procs[pr]
	p.vmRead(core)
	defer p.vmDone(core)
	_ = p.vmaTree.Load(core)
	v, ok := p.vmas[page]
	if !ok || v.cell.Load(core) == 0 {
		return nil
	}
	return v
}

func (k *Kern) memread(core int, c kernel.Call) kernel.Result {
	page := c.Arg("page")
	v := k.fault(core, c.Proc, page)
	if v == nil {
		return errR(kernel.ESIGSEGV)
	}
	if v.anon {
		return kernel.Result{Data: k.procs[c.Proc].anon[page].Load(core)}
	}
	ino := k.inode(v.inum)
	if v.foff >= ino.len.Load(core) {
		return errR(kernel.ESIGBUS)
	}
	return kernel.Result{Data: ino.page(k.mem, v.inum, v.foff).Load(core)}
}

func (k *Kern) memwrite(core int, c kernel.Call) kernel.Result {
	page := c.Arg("page")
	v := k.fault(core, c.Proc, page)
	if v == nil {
		return errR(kernel.ESIGSEGV)
	}
	if !v.wr {
		return errR(kernel.ESIGSEGV)
	}
	val := c.Arg("val")
	if v.anon {
		k.procs[c.Proc].anon[page].Store(core, val)
		return kernel.Result{}
	}
	ino := k.inode(v.inum)
	if v.foff >= ino.len.Load(core) {
		return errR(kernel.ESIGBUS)
	}
	ino.page(k.mem, v.inum, v.foff).Store(core, val)
	return kernel.Result{}
}
