package kernel_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/kernel"
	"repro/internal/kernel/memq"
	"repro/internal/kernel/monokernel"
	"repro/internal/kernel/svsix"
)

// genReplaySetup builds a random but valid setup exercising every setup
// dimension: files (with shared inodes for hard links), inode contents,
// file and pipe descriptors, anonymous and file-backed VMAs, and queue
// backlogs (consumed only by memq). It is broader than the cross-kernel
// differential's genSetup, which stays within the dimensions both POSIX
// kernels render identically.
func genReplaySetup(r *rand.Rand) kernel.Setup {
	var s kernel.Setup
	inums := []int64{}
	for i := 0; i < r.Intn(4); i++ {
		inum := int64(1 + r.Intn(3))
		s.Files = append(s.Files, kernel.SetupFile{Name: kernel.Fname(int64(i)), Inum: inum})
		inums = append(inums, inum)
	}
	seen := map[int64]bool{}
	for _, inum := range inums {
		if seen[inum] {
			continue
		}
		seen[inum] = true
		in := kernel.SetupInode{Inum: inum, ExtraLinks: r.Intn(2), Len: int64(r.Intn(4))}
		if r.Intn(2) == 0 {
			in.Pages = map[int64]int64{}
			for pg := int64(0); pg < in.Len; pg++ {
				if r.Intn(2) == 0 {
					in.Pages[pg] = int64(10 + r.Intn(20))
				}
			}
		}
		s.Inodes = append(s.Inodes, in)
	}
	for i := 0; i < r.Intn(3); i++ {
		var items []int64
		for j := 0; j < r.Intn(3); j++ {
			items = append(items, int64(30+r.Intn(10)))
		}
		s.Pipes = append(s.Pipes, kernel.SetupPipe{ID: int64(i), Items: items})
	}
	for proc := 0; proc < 2; proc++ {
		for fd := int64(0); fd < int64(r.Intn(3)); fd++ {
			sd := kernel.SetupFD{Proc: proc, FD: fd}
			if len(s.Pipes) > 0 && r.Intn(3) == 0 {
				sd.Pipe = true
				sd.PipeID = s.Pipes[r.Intn(len(s.Pipes))].ID
				sd.WriteEnd = r.Intn(2) == 0
			} else if len(inums) > 0 {
				sd.Inum = inums[r.Intn(len(inums))]
				sd.Off = int64(r.Intn(3))
			} else {
				sd.Inum = 1
			}
			s.FDs = append(s.FDs, sd)
		}
	}
	for proc := 0; proc < 2; proc++ {
		for page := int64(0); page < int64(r.Intn(3)); page++ {
			sv := kernel.SetupVMA{Proc: proc, Page: page, Writable: r.Intn(2) == 0}
			if len(inums) == 0 || r.Intn(2) == 0 {
				sv.Anon = true
				sv.Val = int64(50 + r.Intn(10))
			} else {
				sv.Inum = inums[r.Intn(len(inums))]
				sv.Foff = int64(r.Intn(3))
			}
			s.VMAs = append(s.VMAs, sv)
		}
	}
	for i := 0; i < r.Intn(3); i++ {
		var items []int64
		for j := 0; j < r.Intn(3); j++ {
			items = append(items, int64(70+r.Intn(10)))
		}
		s.Queues = append(s.Queues, kernel.SetupQueue{Core: int64(r.Intn(3)) - 1, Items: items})
	}
	return s
}

func genQueueCall(r *rand.Rand) kernel.Call {
	proc := r.Intn(2)
	switch r.Intn(5) {
	case 0:
		return kernel.Call{Op: "send", Proc: proc, Args: map[string]int64{"val": int64(r.Intn(9))}}
	case 1:
		return kernel.Call{Op: "recv", Proc: proc, Args: map[string]int64{}}
	case 2:
		return kernel.Call{Op: "send_any", Proc: proc, Args: map[string]int64{"val": int64(r.Intn(9))}}
	case 3:
		return kernel.Call{Op: "recv_any", Proc: proc, Args: map[string]int64{}}
	}
	return kernel.Call{Op: "status", Proc: proc, Args: map[string]int64{}}
}

// genPosixCall reuses the cross-kernel differential generator but also
// flips the knobs that generator must avoid (anyfd descriptor allocation,
// non-fixed mmap): here the comparison is one kernel against itself, so
// implementation-specific nondeterminism is in scope.
func genPosixCall(r *rand.Rand) kernel.Call {
	c := genCall(r).call
	switch c.Op {
	case "open", "pipe":
		c.Args["anyfd"] = int64(r.Intn(2))
	case "mmap":
		c.Args["fixed"] = int64(r.Intn(2))
	}
	return c
}

// TestReplayerMatchesFreshKernels is the setup snapshot/reset oracle: a
// single long-lived Replayer runs many randomized setup groups, and every
// CheckResult must exactly match kernel.Check, which builds two fresh
// kernels per test. Any state the journal or a reset hook fails to restore
// — a cell value, a stale or lost map entry, a counter — surfaces as a
// result, commuted, or conflict-report mismatch in a later test or group.
func TestReplayerMatchesFreshKernels(t *testing.T) {
	impls := map[string]func() kernel.Kernel{
		"linux": func() kernel.Kernel { return monokernel.New() },
		"sv6":   func() kernel.Kernel { return svsix.New() },
		"memq":  func() kernel.Kernel { return memq.New() },
	}
	for name, fresh := range impls {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(1))
			gen := genPosixCall
			if name == "memq" {
				gen = func(r *rand.Rand) kernel.Call { return genQueueCall(r) }
			}
			rep := kernel.NewReplayer(fresh)
			for group := 0; group < 40; group++ {
				setup := genReplaySetup(r)
				var tests []kernel.TestCase
				for i := 0; i < 1+r.Intn(6); i++ {
					tests = append(tests, kernel.TestCase{
						ID:    "t",
						Setup: setup,
						Calls: [2]kernel.Call{gen(r), gen(r)},
					})
				}
				i := 0
				err := rep.CheckGroup(setup, tests, func(got kernel.CheckResult) bool {
					want, err := kernel.Check(fresh, tests[i])
					if err != nil {
						t.Fatalf("group %d test %d: fresh check: %v", group, i, err)
					}
					if got.ConflictFree != want.ConflictFree ||
						got.Res != want.Res ||
						got.Commuted != want.Commuted ||
						got.ResSwapped != want.ResSwapped ||
						!reflect.DeepEqual(got.Conflicts, want.Conflicts) {
						t.Fatalf("group %d test %d (%v || %v): replayed %+v != fresh %+v",
							group, i, tests[i].Calls[0], tests[i].Calls[1], got, want)
					}
					i++
					return true
				})
				if err != nil {
					t.Fatalf("group %d: %v", group, err)
				}
			}
		})
	}
}

// TestReplayerGroupIsolation pins the group protocol itself: a test that
// mutates heavily must not leak into the next test of the same group, and
// a whole group must not leak into the next group's differently-shaped
// setup — probed with deterministic scenarios rather than random ones.
func TestReplayerGroupIsolation(t *testing.T) {
	for name, fresh := range kernels() {
		rep := kernel.NewReplayer(fresh)
		setup := oneFile()
		destroy := kernel.TestCase{ID: "destroy", Calls: [2]kernel.Call{
			call("unlink", 0, map[string]int64{"fname": 0}),
			call("open", 1, map[string]int64{"fname": 1, "creat": 1}),
		}}
		probe := kernel.TestCase{ID: "probe", Calls: [2]kernel.Call{
			call("stat", 0, map[string]int64{"fname": 0}),
			call("stat", 1, map[string]int64{"fname": 1}),
		}}
		var got []kernel.CheckResult
		err := rep.CheckGroup(setup, []kernel.TestCase{destroy, probe, destroy, probe}, func(res kernel.CheckResult) bool {
			got = append(got, res)
			return true
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Both probes see f0 intact (ino 1, 1 link, 2 pages) and f1 absent.
		for _, i := range []int{1, 3} {
			r := got[i]
			if r.Res[0].Code != 0 || r.Res[0].V2 != 1 || r.Res[0].V3 != 2 {
				t.Errorf("%s: probe %d: stat(f0) = %v, want intact file", name, i, r.Res[0])
			}
			if r.Res[1].Code != -kernel.ENOENT {
				t.Errorf("%s: probe %d: stat(f1) = %v, want ENOENT", name, i, r.Res[1])
			}
		}
		// And both destroy runs behave identically (second replays from the
		// same state as the first).
		if got[0].Res != got[2].Res || got[0].ConflictFree != got[2].ConflictFree {
			t.Errorf("%s: destroy runs diverged: %+v vs %+v", name, got[0], got[2])
		}

		// Next group: empty setup on the same Replayer — the file from the
		// previous group's setup must be gone.
		err = rep.CheckGroup(kernel.Setup{}, []kernel.TestCase{probe}, func(res kernel.CheckResult) bool {
			if res.Res[0].Code != -kernel.ENOENT || res.Res[1].Code != -kernel.ENOENT {
				t.Errorf("%s: empty-setup probe = %v, want ENOENT/ENOENT", name, res.Res)
			}
			return true
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestReplayerEarlyStop checks the fn-returns-false path leaves the
// replayer reusable.
func TestReplayerEarlyStop(t *testing.T) {
	for name, fresh := range kernels() {
		rep := kernel.NewReplayer(fresh)
		probe := kernel.TestCase{ID: "probe", Calls: [2]kernel.Call{
			call("stat", 0, map[string]int64{"fname": 0}),
			call("stat", 1, map[string]int64{"fname": 0}),
		}}
		n := 0
		err := rep.CheckGroup(oneFile(), []kernel.TestCase{probe, probe, probe}, func(kernel.CheckResult) bool {
			n++
			return false
		})
		if err != nil || n != 1 {
			t.Fatalf("%s: early stop ran %d tests (err %v), want 1", name, n, err)
		}
		err = rep.CheckGroup(oneFile(), []kernel.TestCase{probe}, func(res kernel.CheckResult) bool {
			if res.Res[0].Code != 0 {
				t.Errorf("%s: post-stop probe = %v", name, res.Res[0])
			}
			return true
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
