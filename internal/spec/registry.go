package spec

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

var (
	regMu    sync.RWMutex
	registry = map[string]Spec{}
)

// Register adds s to the spec registry under s.Name(). Specs register from
// init functions; a duplicate name panics (it is a wiring bug, not input).
func Register(s Spec) {
	regMu.Lock()
	defer regMu.Unlock()
	name := s.Name()
	if _, dup := registry[name]; dup {
		panic("spec: duplicate registration of " + name)
	}
	registry[name] = s
}

// Names returns the registered spec names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup resolves a spec by name. Unknown names return an error listing
// the registered specs, so CLI typos read as guidance instead of a panic.
func Lookup(name string) (Spec, error) {
	regMu.RLock()
	s, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("unknown spec %q (known specs: %s)",
			name, strings.Join(Names(), ", "))
	}
	return s, nil
}

// OpByName resolves one operation of s by name. Unknown names return an
// error listing the spec's operations — the registry-level lookup every
// caller should use instead of scanning Ops and dereferencing nil.
func OpByName(s Spec, name string) (*Op, error) {
	for _, op := range s.Ops() {
		if op.Name == name {
			return op, nil
		}
	}
	return nil, fmt.Errorf("unknown %s op %q (known ops: %s)",
		s.Name(), name, strings.Join(OpNames(s), ", "))
}

// OpNames returns the names of s's operations in canonical order.
func OpNames(s Spec) []string {
	ops := s.Ops()
	out := make([]string, len(ops))
	for i, op := range ops {
		out[i] = op.Name
	}
	return out
}

// OpSet resolves an operation-universe selector against s: "all" (every
// op, canonical order), one of the spec's named subsets (Sets), or a
// comma-separated list of op names — deduplicated preserving
// first-appearance order, so a repeated name can't multi-count its pairs
// in matrix totals.
func OpSet(s Spec, sel string) ([]*Op, error) {
	if sel == "all" {
		return s.Ops(), nil
	}
	if names, ok := s.Sets()[sel]; ok {
		out := make([]*Op, len(names))
		for i, n := range names {
			op, err := OpByName(s, n)
			if err != nil {
				return nil, fmt.Errorf("spec %s: set %q: %w", s.Name(), sel, err)
			}
			out[i] = op
		}
		return out, nil
	}
	var out []*Op
	seen := map[string]bool{}
	for _, n := range strings.Split(sel, ",") {
		op, err := OpByName(s, strings.TrimSpace(n))
		if err != nil {
			return nil, err
		}
		if seen[op.Name] {
			continue
		}
		seen[op.Name] = true
		out = append(out, op)
	}
	return out, nil
}
