package spec

import (
	"fmt"

	"repro/internal/sym"
	"repro/internal/symx"
)

// Probe is one evaluated initial-state dictionary probe: the concrete key
// a test setup must populate, plus the probed value's fields evaluated
// under the model assignment. Concretizers mine these to rebuild a
// realizable initial state.
type Probe struct {
	Key    []int64
	Fields map[string]int64
	Bools  map[string]bool
}

// CollectProbes evaluates the initial probes of one dictionary from both
// permutations' states, deduplicating by concrete key and dropping absent
// locations (only present initial content needs materializing).
func CollectProbes(m sym.Model, dicts ...*symx.Dict) []Probe {
	var out []Probe
	seen := map[string]bool{}
	for _, d := range dicts {
		for _, e := range d.Entries() {
			if !e.InitialProbe {
				continue
			}
			key := make([]int64, len(e.Key))
			ks := ""
			for i, ke := range e.Key {
				if ke.Sort.Kind == sym.KindBool {
					if EvalBool(m, ke, false) {
						key[i] = 1
					}
				} else {
					key[i] = EvalInt(m, ke, 0)
				}
				ks += fmt.Sprintf(",%d", key[i])
			}
			if seen[ks] {
				continue
			}
			seen[ks] = true
			p := Probe{Key: key, Fields: map[string]int64{}, Bools: map[string]bool{}}
			present := true
			if e.InitPresentVar != nil {
				present = EvalBool(m, e.InitPresentVar, false)
			}
			if present && e.InitVal != nil {
				st := e.InitVal.(*symx.Struct)
				for name, fe := range st.Fields {
					if fe.Sort.Kind == sym.KindBool {
						p.Bools[name] = EvalBool(m, fe, false)
					} else {
						p.Fields[name] = EvalInt(m, fe, 0)
					}
				}
			}
			if present {
				out = append(out, p)
			}
		}
	}
	return out
}

// EvalInt evaluates e under m, defaulting to def when m leaves it
// undetermined (the variable was irrelevant to the condition).
func EvalInt(m sym.Model, e *sym.Expr, def int64) int64 {
	if v, ok := m.TryEval(e); ok {
		return v.Int
	}
	return def
}

// EvalBool is EvalInt for boolean expressions.
func EvalBool(m sym.Model, e *sym.Expr, def bool) bool {
	if v, ok := m.TryEval(e); ok {
		return v.Bool
	}
	return def
}

// BacklogItems mines one FIFO's concrete backlog from a probed cursor
// pair: head and tail are clamped into [0, max] (tail at least head), and
// the values queued between them are returned oldest first. Both nil maps
// are fine — an unprobed FIFO yields an empty backlog.
func BacklogItems(fields map[string]int64, vals map[int64]int64, max int64) []int64 {
	h := Clamp(fields["head"], 0, max)
	t := Clamp(fields["tail"], h, max)
	var items []int64
	for seq := h; seq < t; seq++ {
		items = append(items, vals[seq])
	}
	return items
}

// Clamp bounds v to [lo, hi]; concretizers use it to keep mined values
// inside the bounds a realizable setup supports.
func Clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
