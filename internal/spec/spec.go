// Package spec defines the pluggable interface-specification layer of the
// COMMUTER pipeline. The scalable commutativity rule is about interfaces,
// not about POSIX: ANALYZE explores a symbolic model of *some* interface,
// TESTGEN concretizes its commutativity conditions, and CHECK runs the
// concrete tests against implementations of that same interface. A Spec
// bundles everything the pipeline needs to know about one interface:
//
//   - the operation universe (Ops, plus named subsets for the CLI),
//   - symbolic state construction (NewState) and the state's dictionary
//     layout (State.Dicts, which equivalence and probe mining walk),
//   - a Concretizer that turns a solver witness into a concrete
//     kernel.TestCase setup,
//   - implementation bindings (Impls): the runners that can execute the
//     spec's calls under the MTRACE conflict checker.
//
// Specs self-register in the package registry (Register, usually from an
// init function), and every pipeline layer — analyzer, testgen, sweep,
// eval, the CLI — is generic over the Spec interface. The POSIX model
// (internal/model) registers as "posix"; the mail-pipeline message-queue
// model (internal/queuespec) registers as "queue".
package spec

import (
	"repro/internal/kernel"
	"repro/internal/sym"
	"repro/internal/symx"
)

// Config selects specification variants shared by the pipeline layers.
// Fields a spec doesn't recognize are ignored by it (the zero Config is
// every spec's default behavior).
type Config struct {
	// LowestFD enforces POSIX's lowest-available-FD allocation rule
	// instead of the O_ANYFD specification nondeterminism (§4).
	LowestFD bool
}

// RetWidth is the uniform return-vector width of every operation:
// [code, i1, i2, i3, data]. code is 0/positive on success or a negated
// errno; unused slots hold zero (or the spec's zero data constant).
const RetWidth = 5

// ArgSpec describes one symbolic operation argument.
type ArgSpec struct {
	// Name is the argument name; instances are "<op>.<slot>.<name>".
	Name string
	// Sort of the argument.
	Sort sym.Sort
	// Min and Max bound integer arguments (inclusive) when Bounded.
	Min, Max int64
	Bounded  bool
}

// Exec bundles the execution context of one operation instance in one
// permutation run: the symbolic path context, the permutation's state (as
// built by the same spec's NewState) and the pipeline configuration.
type Exec struct {
	C   *symx.Context
	S   State
	Cfg Config
}

// Op defines one modeled operation of a spec.
type Op struct {
	// Name labels matrix rows/columns and concrete kernel.Calls.
	Name string
	// Args are the symbolic arguments. An argument literally named "proc"
	// of boolean sort is the pipeline-wide convention for the calling
	// process; TESTGEN maps it onto kernel.Call.Proc.
	Args []ArgSpec
	// Exec runs the call against x.S, returning a RetWidth vector.
	Exec func(x *Exec, slot string, args []*sym.Expr) []*sym.Expr
}

// State is one permutation's symbolic state, as built by a Spec.
type State interface {
	// Dicts returns the state's dictionaries in comparison order:
	// equivalence checking and TESTGEN's initial-probe mining walk them.
	// Dictionaries whose invariant closures probe other dictionaries must
	// come before the dictionaries they probe (late materialization must
	// not race the comparison of the tables it references).
	Dicts() []*symx.Dict
}

// Impl names one implementation of a spec's interface and how to build a
// fresh instance for one MTRACE-checked test run.
type Impl struct {
	Name string
	New  func() kernel.Kernel
}

// Concretizer turns one satisfying assignment of a commutativity condition
// into the concrete parts of a test case that are specific to the spec.
type Concretizer interface {
	// Setup mines a concrete, realizable initial state from model
	// assignment m over the two permutations' final symbolic states
	// (their dictionaries' initial-probe entries).
	Setup(a, b State, m sym.Model) (kernel.Setup, error)
	// FixupCall post-processes one materialized call — e.g. the POSIX
	// spec attaches the O_ANYFD flag to open/pipe calls unless cfg
	// selects the lowest-FD rule.
	FixupCall(cfg Config, call *kernel.Call)
}

// Spec is one pluggable interface specification. Implementations must be
// stateless values: the pipeline calls them concurrently from sweep
// workers.
type Spec interface {
	// Name is the registry key ("posix", "queue") and the identity folded
	// into sweep cache keys.
	Name() string
	// Ops returns the operation universe in canonical (matrix) order.
	Ops() []*Op
	// Sets names the op subsets the CLI accepts (e.g. posix's "fs"). The
	// "all" universe is implicit and need not be listed.
	Sets() map[string][]string
	// DefaultSet is the selector the CLI uses when -ops is not given:
	// "all" or one of Sets' keys (posix keeps its historical "fs").
	DefaultSet() string
	// NewState builds the spec's unconstrained symbolic initial state.
	NewState(c *symx.Context, cfg Config) State
	// Concretizer returns the spec's witness-to-setup converter.
	Concretizer() Concretizer
	// Impls returns the implementation bindings, in default check order.
	Impls() []Impl
}

// MakeArgs materializes the symbolic arguments of op for an operation
// slot, applying declared bounds.
func MakeArgs(c *symx.Context, op *Op, slot string) []*sym.Expr {
	args := make([]*sym.Expr, len(op.Args))
	for i, spec := range op.Args {
		v := c.Var(op.Name+"."+slot+"."+spec.Name, spec.Sort, symx.KindArg)
		if spec.Bounded {
			c.Assume(sym.And(sym.Ge(v, sym.Int(spec.Min)), sym.Le(v, sym.Int(spec.Max))))
		}
		args[i] = v
	}
	return args
}

// RetEq builds the formula stating two return vectors are equal.
func RetEq(a, b []*sym.Expr) *sym.Expr {
	if len(a) != len(b) {
		panic("spec: return width mismatch")
	}
	conj := make([]*sym.Expr, len(a))
	for i := range a {
		conj[i] = sym.Eq(a[i], b[i])
	}
	return sym.And(conj...)
}

// Equivalent builds the formula stating that two final states of the same
// spec are indistinguishable through the interface: every dictionary holds
// equal content at every key either execution touched.
func Equivalent(c *symx.Context, a, b State) *sym.Expr {
	da, db := a.Dicts(), b.Dicts()
	if len(da) != len(db) {
		panic("spec: comparing states with different dictionary layouts")
	}
	conj := make([]*sym.Expr, len(da))
	for i := range da {
		conj[i] = symx.DictsEquivalent(c, da[i], db[i])
	}
	return sym.And(conj...)
}
