package spec_test

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/queuespec"
	"repro/internal/spec"
)

// TestRegisteredSpecs pins the two shipped registrations.
func TestRegisteredSpecs(t *testing.T) {
	names := spec.Names()
	want := map[string]bool{"posix": false, "queue": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("spec %q not registered (have %v)", n, names)
		}
	}
	if _, err := spec.Lookup("posix"); err != nil {
		t.Errorf("Lookup(posix): %v", err)
	}
	if _, err := spec.Lookup("nope"); err == nil {
		t.Error("Lookup(nope) did not error")
	} else if !strings.Contains(err.Error(), "posix") || !strings.Contains(err.Error(), "queue") {
		t.Errorf("Lookup(nope) error %q does not list known specs", err)
	}
}

// TestOpByNameRoundTrip pins that every op of every shipped spec resolves
// back to itself by name, and that unknown names produce an error listing
// the full op universe (the nil-deref fix: lookups now fail loudly with
// guidance instead of returning nil).
func TestOpByNameRoundTrip(t *testing.T) {
	for _, sp := range []spec.Spec{model.Spec, queuespec.Spec} {
		ops := sp.Ops()
		if len(ops) == 0 {
			t.Fatalf("%s: no ops", sp.Name())
		}
		for _, op := range ops {
			got, err := spec.OpByName(sp, op.Name)
			if err != nil {
				t.Errorf("%s: OpByName(%s): %v", sp.Name(), op.Name, err)
				continue
			}
			if got.Name != op.Name {
				t.Errorf("%s: OpByName(%s) returned %s", sp.Name(), op.Name, got.Name)
			}
		}
		_, err := spec.OpByName(sp, "renme")
		if err == nil {
			t.Fatalf("%s: OpByName(renme) did not error", sp.Name())
		}
		for _, op := range ops {
			if !strings.Contains(err.Error(), op.Name) {
				t.Errorf("%s: unknown-op error %q does not list %s", sp.Name(), err, op.Name)
			}
		}
	}
}

// TestOpSetSelectors pins the universe selectors: "all", the spec-named
// subsets, comma lists with dedupe, and the error path.
func TestOpSetSelectors(t *testing.T) {
	if ops, err := spec.OpSet(model.Spec, "all"); err != nil || len(ops) != 18 {
		t.Errorf(`posix "all" = %d ops, err %v; want 18`, len(ops), err)
	}
	if ops, err := spec.OpSet(model.Spec, "fs"); err != nil || len(ops) != 9 {
		t.Errorf(`posix "fs" = %d ops, err %v; want 9`, len(ops), err)
	}
	if ops, err := spec.OpSet(queuespec.Spec, "all"); err != nil || len(ops) != 5 {
		t.Errorf(`queue "all" = %d ops, err %v; want 5`, len(ops), err)
	}
	if ops, err := spec.OpSet(queuespec.Spec, "ordered"); err != nil || len(ops) != 3 {
		t.Errorf(`queue "ordered" = %d ops, err %v; want 3`, len(ops), err)
	}
	ops, err := spec.OpSet(model.Spec, "open, rename ,open")
	if err != nil || len(ops) != 2 || ops[0].Name != "open" || ops[1].Name != "rename" {
		t.Errorf("comma list resolved to %v, err %v", ops, err)
	}
	if _, err := spec.OpSet(model.Spec, "open,nope"); err == nil {
		t.Error("unknown comma-list op did not error")
	}
}
