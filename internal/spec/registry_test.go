package spec_test

import (
	"strings"
	"testing"

	"repro/internal/kvspec"
	"repro/internal/model"
	"repro/internal/queuespec"
	"repro/internal/spec"
	"repro/internal/vmspec"
)

// TestRegisteredSpecs pins the four shipped registrations, and that the
// unknown-spec error (the text `commuter analyze -spec bogus` prints, and
// the names GET /v1/specs serves) lists every one of them.
func TestRegisteredSpecs(t *testing.T) {
	names := spec.Names()
	want := map[string]bool{"posix": false, "queue": false, "vm": false, "kv": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("spec %q not registered (have %v)", n, names)
		}
	}
	for n := range want {
		if _, err := spec.Lookup(n); err != nil {
			t.Errorf("Lookup(%s): %v", n, err)
		}
	}
	if _, err := spec.Lookup("nope"); err == nil {
		t.Error("Lookup(nope) did not error")
	} else {
		for n := range want {
			if !strings.Contains(err.Error(), n) {
				t.Errorf("Lookup(nope) error %q does not list spec %q", err, n)
			}
		}
	}
}

// TestSpecNamedSubsets pins that every registered spec exposes named op
// subsets whose members resolve within the spec — the discoverability
// contract behind /v1/specs and the -ops flag help.
func TestSpecNamedSubsets(t *testing.T) {
	for _, sp := range []spec.Spec{model.Spec, queuespec.Spec, vmspec.Spec, kvspec.Spec} {
		sets := sp.Sets()
		if len(sets) == 0 {
			t.Errorf("%s: no named op subsets", sp.Name())
		}
		for name, members := range sets {
			if len(members) == 0 {
				t.Errorf("%s: subset %q is empty", sp.Name(), name)
			}
			for _, opName := range members {
				if _, err := spec.OpByName(sp, opName); err != nil {
					t.Errorf("%s: subset %q member %s: %v", sp.Name(), name, opName, err)
				}
			}
		}
		if ds := sp.DefaultSet(); ds != "all" {
			if _, ok := sets[ds]; !ok {
				t.Errorf("%s: default set %q not in Sets()", sp.Name(), ds)
			}
		}
	}
}

// TestOpByNameRoundTrip pins that every op of every shipped spec resolves
// back to itself by name, and that unknown names produce an error listing
// the full op universe (the nil-deref fix: lookups now fail loudly with
// guidance instead of returning nil).
func TestOpByNameRoundTrip(t *testing.T) {
	for _, sp := range []spec.Spec{model.Spec, queuespec.Spec, vmspec.Spec, kvspec.Spec} {
		ops := sp.Ops()
		if len(ops) == 0 {
			t.Fatalf("%s: no ops", sp.Name())
		}
		for _, op := range ops {
			got, err := spec.OpByName(sp, op.Name)
			if err != nil {
				t.Errorf("%s: OpByName(%s): %v", sp.Name(), op.Name, err)
				continue
			}
			if got.Name != op.Name {
				t.Errorf("%s: OpByName(%s) returned %s", sp.Name(), op.Name, got.Name)
			}
		}
		_, err := spec.OpByName(sp, "renme")
		if err == nil {
			t.Fatalf("%s: OpByName(renme) did not error", sp.Name())
		}
		for _, op := range ops {
			if !strings.Contains(err.Error(), op.Name) {
				t.Errorf("%s: unknown-op error %q does not list %s", sp.Name(), err, op.Name)
			}
		}
	}
}

// TestOpSetSelectors pins the universe selectors: "all", the spec-named
// subsets, comma lists with dedupe, and the error path.
func TestOpSetSelectors(t *testing.T) {
	if ops, err := spec.OpSet(model.Spec, "all"); err != nil || len(ops) != 18 {
		t.Errorf(`posix "all" = %d ops, err %v; want 18`, len(ops), err)
	}
	if ops, err := spec.OpSet(model.Spec, "fs"); err != nil || len(ops) != 9 {
		t.Errorf(`posix "fs" = %d ops, err %v; want 9`, len(ops), err)
	}
	if ops, err := spec.OpSet(queuespec.Spec, "all"); err != nil || len(ops) != 5 {
		t.Errorf(`queue "all" = %d ops, err %v; want 5`, len(ops), err)
	}
	if ops, err := spec.OpSet(queuespec.Spec, "ordered"); err != nil || len(ops) != 3 {
		t.Errorf(`queue "ordered" = %d ops, err %v; want 3`, len(ops), err)
	}
	if ops, err := spec.OpSet(vmspec.Spec, "all"); err != nil || len(ops) != 5 {
		t.Errorf(`vm "all" = %d ops, err %v; want 5`, len(ops), err)
	}
	if ops, err := spec.OpSet(vmspec.Spec, "mem"); err != nil || len(ops) != 2 {
		t.Errorf(`vm "mem" = %d ops, err %v; want 2`, len(ops), err)
	}
	if ops, err := spec.OpSet(kvspec.Spec, "all"); err != nil || len(ops) != 4 {
		t.Errorf(`kv "all" = %d ops, err %v; want 4`, len(ops), err)
	}
	if ops, err := spec.OpSet(kvspec.Spec, "point"); err != nil || len(ops) != 3 {
		t.Errorf(`kv "point" = %d ops, err %v; want 3`, len(ops), err)
	}
	ops, err := spec.OpSet(model.Spec, "open, rename ,open")
	if err != nil || len(ops) != 2 || ops[0].Name != "open" || ops[1].Name != "rename" {
		t.Errorf("comma list resolved to %v, err %v", ops, err)
	}
	if _, err := spec.OpSet(model.Spec, "open,nope"); err == nil {
		t.Error("unknown comma-list op did not error")
	}
}
