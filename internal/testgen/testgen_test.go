package testgen

import (
	"testing"

	"repro/internal/analyzer"
	"repro/internal/kernel"
	"repro/internal/kernel/monokernel"
	"repro/internal/kernel/svsix"
	"repro/internal/model"
	"repro/internal/sym"
)

func gen(t *testing.T, a, b string, opt Options) []kernel.TestCase {
	t.Helper()
	pr := analyzer.AnalyzePair(model.Spec, model.OpByName(a), model.OpByName(b), analyzer.Options{})
	return Generate(model.Spec, pr, opt)
}

func TestGenerateProducesTests(t *testing.T) {
	tests := gen(t, "stat", "stat", Options{})
	if len(tests) == 0 {
		t.Fatal("no tests generated for stat x stat")
	}
	ids := map[string]bool{}
	for _, tc := range tests {
		if ids[tc.ID] {
			t.Errorf("duplicate test id %s", tc.ID)
		}
		ids[tc.ID] = true
		if tc.Calls[0].Op != "stat" || tc.Calls[1].Op != "stat" {
			t.Errorf("bad ops %v", tc.Calls)
		}
		if _, ok := tc.Calls[0].Args["fname"]; !ok {
			t.Errorf("stat call missing fname arg: %v", tc.Calls[0])
		}
	}
}

// Conflict coverage: for one model path, enumerated tests must differ in
// their equality pattern (e.g. same name vs different names).
func TestIsomorphismClassesDiffer(t *testing.T) {
	tests := gen(t, "stat", "stat", Options{MaxTestsPerPath: 8})
	sawSame, sawDiff := false, false
	for _, tc := range tests {
		if tc.Calls[0].Args["fname"] == tc.Calls[1].Args["fname"] {
			sawSame = true
		} else {
			sawDiff = true
		}
	}
	if !sawSame || !sawDiff {
		t.Errorf("conflict coverage incomplete: same=%v diff=%v", sawSame, sawDiff)
	}
}

// Setups must be internally consistent: files reference declared inodes,
// FDs reference pipes or inodes that exist.
func TestSetupsConsistent(t *testing.T) {
	for _, pair := range [][2]string{{"rename", "rename"}, {"link", "unlink"}, {"read", "write"}} {
		for _, tc := range gen(t, pair[0], pair[1], Options{}) {
			inodes := map[int64]bool{}
			for _, si := range tc.Setup.Inodes {
				inodes[si.Inum] = true
			}
			for _, f := range tc.Setup.Files {
				if !inodes[f.Inum] {
					t.Errorf("%s: file %s references undeclared inode %d", tc.ID, f.Name, f.Inum)
				}
			}
			pipes := map[int64]bool{}
			for _, p := range tc.Setup.Pipes {
				pipes[p.ID] = true
			}
			for _, fd := range tc.Setup.FDs {
				if fd.Pipe && !pipes[fd.PipeID] {
					t.Errorf("%s: fd references undeclared pipe %d", tc.ID, fd.PipeID)
				}
				if !fd.Pipe && !inodes[fd.Inum] {
					t.Errorf("%s: fd references undeclared inode %d", tc.ID, fd.Inum)
				}
			}
		}
	}
}

// Every generated setup must apply cleanly to both kernels.
func TestSetupsApply(t *testing.T) {
	for _, pair := range [][2]string{{"stat", "unlink"}, {"close", "pipe"}, {"mprotect", "munmap"}} {
		for _, tc := range gen(t, pair[0], pair[1], Options{}) {
			for _, fresh := range []func() kernel.Kernel{
				func() kernel.Kernel { return monokernel.New() },
				func() kernel.Kernel { return svsix.New() },
			} {
				k := fresh()
				if err := k.Apply(tc.Setup); err != nil {
					t.Errorf("%s: %v", tc.ID, err)
				}
			}
		}
	}
}

// The paper's core claim, locally: generated tests are commutative, so both
// calls must yield identical results in both execution orders on sv6
// (whose allocators are order-independent).
func TestGeneratedTestsCommuteOnSv6(t *testing.T) {
	pairs := [][2]string{{"stat", "stat"}, {"link", "link"}, {"unlink", "unlink"}, {"close", "close"}}
	for _, pair := range pairs {
		for _, tc := range gen(t, pair[0], pair[1], Options{}) {
			res, err := kernel.Check(func() kernel.Kernel { return svsix.New() }, tc)
			if err != nil {
				t.Fatalf("%s: %v", tc.ID, err)
			}
			if !res.Commuted {
				t.Errorf("%s: results differ across orders: %v vs %v (calls %v, setup %+v)",
					tc.ID, res.Res, res.ResSwapped, tc.Calls, tc.Setup)
			}
		}
	}
}

// sv6 must be conflict-free on (nearly all) generated tests for scalable
// pairs; the Linux-like kernel must conflict on create-heavy tests.
func TestKernelsOnGeneratedCreateTests(t *testing.T) {
	tests := gen(t, "open", "open", Options{})
	if len(tests) == 0 {
		t.Fatal("no open x open tests")
	}
	linuxConf, sv6Conf := 0, 0
	for _, tc := range tests {
		rl, err := kernel.Check(func() kernel.Kernel { return monokernel.New() }, tc)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := kernel.Check(func() kernel.Kernel { return svsix.New() }, tc)
		if err != nil {
			t.Fatal(err)
		}
		if !rl.ConflictFree {
			linuxConf++
		}
		if !rs.ConflictFree {
			sv6Conf++
		}
	}
	if linuxConf == 0 {
		t.Error("linux kernel should conflict on some open x open tests")
	}
	if sv6Conf >= linuxConf {
		t.Errorf("sv6 (%d conflicts) should beat linux (%d) on open x open", sv6Conf, linuxConf)
	}
}

// Nondeterministic allocation variables must not leak into setups.
func TestNondetVarsExcludedFromSetup(t *testing.T) {
	for _, tc := range gen(t, "open", "open", Options{}) {
		for _, si := range tc.Setup.Inodes {
			if si.Inum < 1 {
				t.Errorf("%s: setup contains allocated (negative) inode %d", tc.ID, si.Inum)
			}
		}
	}
}

func TestClassFormula(t *testing.T) {
	fn := model.FilenameSort
	x, y := sym.Var("x", fn), sym.Var("y", fn)
	b := sym.Var("b", sym.BoolSort)
	m := sym.Model{
		"x": {Sort: fn, Int: 1},
		"y": {Sort: fn, Int: 1},
		"b": {Sort: sym.BoolSort, Bool: true},
	}
	f := classFormula(m, []*sym.Expr{x, y, b})
	if !m.EvalBool(f) {
		t.Error("class formula must hold in its defining model")
	}
	m2 := sym.Model{
		"x": {Sort: fn, Int: 1},
		"y": {Sort: fn, Int: 2},
		"b": {Sort: sym.BoolSort, Bool: true},
	}
	if m2.EvalBool(f) {
		t.Error("different equality pattern must violate the class formula")
	}
}

func TestMaxTestsPerPathHonored(t *testing.T) {
	few := gen(t, "stat", "stat", Options{MaxTestsPerPath: 1})
	more := gen(t, "stat", "stat", Options{MaxTestsPerPath: 6})
	if len(few) >= len(more) {
		t.Errorf("MaxTestsPerPath not effective: %d vs %d", len(few), len(more))
	}
}

func TestAnyFDFlagPropagation(t *testing.T) {
	for _, tc := range gen(t, "open", "close", Options{}) {
		for _, c := range tc.Calls {
			if c.Op == "open" && c.Args["anyfd"] != 1 {
				t.Errorf("%s: open call missing anyfd under nondeterministic model", tc.ID)
			}
		}
	}
	for _, tc := range gen(t, "close", "close", Options{LowestFD: true}) {
		for _, c := range tc.Calls {
			if c.Args["anyfd"] == 1 {
				t.Errorf("%s: anyfd set under LowestFD model", tc.ID)
			}
		}
	}
}
