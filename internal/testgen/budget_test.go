package testgen

import (
	"testing"

	"repro/internal/analyzer"
	"repro/internal/model"
	"repro/internal/sym"
)

// TestClassFormulaDegenerate pins the single-pass enumeration's stopping
// precondition: with no class-distinguishing variables (no booleans,
// fewer than two same-sort non-booleans), classFormula is True — every
// model is one class, and Generate must stop after the first instead of
// walking the whole model space.
func TestClassFormulaDegenerate(t *testing.T) {
	x := sym.Var("cfd.x", sym.IntSort)
	m := sym.Model{"cfd.x": {Sort: sym.IntSort, Int: 1}}
	if cf := classFormula(m, []*sym.Expr{x}); !cf.IsTrue() {
		t.Fatalf("one lone integer variable should give the degenerate class formula, got %v", cf)
	}
	if cf := classFormula(m, nil); !cf.IsTrue() {
		t.Fatalf("empty variable set should give the degenerate class formula, got %v", cf)
	}
}

// TestGenerateCheckedReportsTruncation pins the budget surface: when the
// class enumeration runs out of solver steps, GenerateChecked says so
// instead of silently under-generating; with the default budget the same
// pair reports zero truncation.
func TestGenerateCheckedReportsTruncation(t *testing.T) {
	op := model.OpByName("stat")
	pr := analyzer.AnalyzePair(model.Spec, op, op, analyzer.Options{})
	nCommut := len(pr.CommutativePaths())
	if nCommut == 0 {
		t.Fatal("stat x stat should have commutative paths")
	}

	full, truncated := GenerateChecked(model.Spec, pr, Options{})
	if truncated != 0 {
		t.Errorf("default budget reported %d truncated paths", truncated)
	}
	if len(full) == 0 {
		t.Fatal("no tests generated")
	}

	tiny, truncated := GenerateChecked(model.Spec, pr, Options{Solver: &sym.Solver{MaxSteps: 3}})
	if truncated == 0 {
		t.Error("three-step budget truncated no enumerations")
	}
	if truncated > nCommut {
		t.Errorf("%d truncated paths exceeds the %d commutative paths", truncated, nCommut)
	}
	if len(tiny) >= len(full) {
		t.Errorf("truncated generation produced %d tests, full budget %d", len(tiny), len(full))
	}
}
