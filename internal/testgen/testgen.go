// Package testgen implements COMMUTER's TESTGEN component (§5.2 of the
// paper): it converts ANALYZER's per-path commutativity conditions into
// concrete test cases, aiming for conflict coverage — for each code path it
// enumerates satisfying assignments that differ in their pattern of equal
// and distinct values (isomorphism classes), because different aliasing
// patterns exercise different data-structure access patterns in an
// implementation even along one model path.
package testgen

import (
	"fmt"
	"sort"

	"repro/internal/analyzer"
	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/sym"
	"repro/internal/symx"
)

// Options tunes generation.
type Options struct {
	// MaxTestsPerPath caps the isomorphism classes enumerated per
	// commutative path (default 4).
	MaxTestsPerPath int
	// Solver overrides the default solver.
	Solver *sym.Solver
	// LowestFD indicates the model ran under the POSIX lowest-FD rule;
	// otherwise generated open/pipe calls carry the O_ANYFD flag,
	// matching the specification nondeterminism the tests assume.
	LowestFD bool
}

// Generate produces concrete test cases for every commutative path of a
// pair analysis.
func Generate(pr analyzer.PairResult, opt Options) []kernel.TestCase {
	tests, _ := GenerateChecked(pr, opt)
	return tests
}

// GenerateChecked is Generate plus the truncation count: the number of
// commutative paths whose class enumeration ran out of solver budget, so
// isomorphism classes (and hence tests) may have been dropped. Callers
// that report coverage treat such pairs as under-approximated, like the
// analyzer's Unknown paths.
func GenerateChecked(pr analyzer.PairResult, opt Options) ([]kernel.TestCase, int) {
	maxPer := opt.MaxTestsPerPath
	if maxPer == 0 {
		maxPer = 4
	}
	solver := opt.Solver
	if solver == nil {
		solver = &sym.Solver{}
	}
	var tests []kernel.TestCase
	truncated := 0
	seen := map[string]bool{}
	for pi, path := range pr.Paths {
		if !path.Commutes {
			continue
		}
		vars := classVars(path.CommuteCond, path.VarKinds)
		// One enumeration pass collects a representative per isomorphism
		// class: each model is kept if no previously kept model's class
		// formula covers it. This keeps the same representatives, in the
		// same order, as restarting Solve on cond ∧ ¬class(m₁) ∧ … (the
		// class negations only prune — they add no variables or
		// constants, so the candidate domains and assignment order are
		// untouched), without re-enumerating each restart's prefix. The
		// trade: filtering happens at the leaves, so covered regions are
		// not pruned at interior depths the way conjoined ¬class
		// formulas pruned them. With this model's deliberately tiny
		// domains the covered-leaf walk is cheap, and a path that does
		// exhaust the (single, shared) step budget is reported through
		// the truncation count instead of failing silently.
		ti := 0
		var classes []*sym.Expr
		solver.Enumerate(path.CommuteCond, func(m sym.Model) bool {
			for _, cf := range classes {
				if v, ok := m.TryEval(cf); ok && v.Bool {
					return true // same class as a kept model; keep searching
				}
			}
			id := fmt.Sprintf("%s_%s_path%d_test%d", pr.OpA, pr.OpB, pi, ti)
			tc, err := materialize(id, pr, path, m, opt)
			// Distinct isomorphism classes can materialize identically
			// when the distinguishing variables don't reach the concrete
			// state (e.g. content values on error paths); emit one copy.
			if err == nil && !seen[contentKey(tc)] {
				seen[contentKey(tc)] = true
				tests = append(tests, tc)
			}
			cf := classFormula(m, vars)
			ti++
			if cf.IsTrue() {
				// Degenerate class formula (no class-distinguishing
				// variables): every model is in this class, so there is
				// nothing further to enumerate — matching the restart
				// formulation, where conjoining ¬true made the next
				// query unsatisfiable immediately.
				return false
			}
			classes = append(classes, cf)
			return ti < maxPer
		})
		if solver.Budget() {
			truncated++
		}
	}
	return tests, truncated
}

// contentKey renders a test case's distinguishing content (everything but
// the ID) for deduplication.
func contentKey(tc kernel.TestCase) string {
	return fmt.Sprintf("%v|%v|%+v", tc.Calls[0], tc.Calls[1], tc.Setup)
}

// classVars selects the variables whose equality pattern defines a test's
// isomorphism class: arguments and initial state, but not nondeterministic
// outputs.
func classVars(cond *sym.Expr, kinds map[string]symx.VarKind) []*sym.Expr {
	var out []*sym.Expr
	for _, v := range sym.Vars(cond) {
		if kinds[v.Name] != symx.KindNondet {
			out = append(out, v)
		}
	}
	return out
}

// classFormula captures the isomorphism class of model m over vars: boolean
// variables keep their values, and every same-sort pair of non-boolean
// variables keeps its equal/distinct relation. Negating this formula forces
// the next enumerated assignment into a different class — the paper's
// "negates any equivalent assignment" step.
func classFormula(m sym.Model, vars []*sym.Expr) *sym.Expr {
	var conj []*sym.Expr
	for i, x := range vars {
		xv, ok := m[x.Name]
		if !ok {
			continue
		}
		if x.Sort.Kind == sym.KindBool {
			if xv.Bool {
				conj = append(conj, x)
			} else {
				conj = append(conj, sym.Not(x))
			}
			continue
		}
		for _, y := range vars[i+1:] {
			if y.Sort != x.Sort {
				continue
			}
			yv, ok := m[y.Name]
			if !ok {
				continue
			}
			if xv.Int == yv.Int {
				conj = append(conj, sym.Eq(x, y))
			} else {
				conj = append(conj, sym.Ne(x, y))
			}
		}
	}
	return sym.And(conj...)
}

// evalInt evaluates e under m, defaulting to def when m leaves it
// undetermined (the variable was irrelevant to the condition).
func evalInt(m sym.Model, e *sym.Expr, def int64) int64 {
	if v, ok := m.TryEval(e); ok {
		return v.Int
	}
	return def
}

func evalBool(m sym.Model, e *sym.Expr, def bool) bool {
	if v, ok := m.TryEval(e); ok {
		return v.Bool
	}
	return def
}

// materialize renders one satisfying assignment as a concrete test case:
// concrete arguments for the two calls plus the initial state mined from
// the union of initial-state probes of both permutations' symbolic states.
func materialize(id string, pr analyzer.PairResult, path analyzer.PairPath, m sym.Model, opt Options) (kernel.TestCase, error) {
	tc := kernel.TestCase{ID: id}
	ops := [2]*model.OpDef{model.OpByName(pr.OpA), model.OpByName(pr.OpB)}
	for slot, op := range ops {
		call := kernel.Call{Op: op.Name, Args: map[string]int64{}}
		for _, spec := range op.Args {
			name := fmt.Sprintf("%s.%d.%s", op.Name, slot, spec.Name)
			v := sym.Var(name, spec.Sort)
			switch {
			case spec.Name == "proc":
				if evalBool(m, v, false) {
					call.Proc = 1
				}
			case spec.Sort.Kind == sym.KindBool:
				if evalBool(m, v, false) {
					call.Args[spec.Name] = 1
				} else {
					call.Args[spec.Name] = 0
				}
			default:
				call.Args[spec.Name] = evalInt(m, v, max64(spec.Min, 0))
			}
		}
		if !opt.LowestFD && (op.Name == "open" || op.Name == "pipe") {
			call.Args["anyfd"] = 1
		}
		tc.Calls[slot] = call
	}
	setup, err := buildSetup(path, m)
	if err != nil {
		return tc, err
	}
	tc.Setup = setup
	return tc, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// probe is one evaluated initial-state dictionary probe.
type probe struct {
	key     []int64
	present bool
	fields  map[string]int64
	bools   map[string]bool
}

// collectProbes evaluates the initial probes of one dictionary from both
// permutations' states, deduplicating by concrete key.
func collectProbes(m sym.Model, dicts ...*symx.Dict) []probe {
	var out []probe
	seen := map[string]bool{}
	for _, d := range dicts {
		for _, e := range d.Entries() {
			if !e.InitialProbe {
				continue
			}
			key := make([]int64, len(e.Key))
			ks := ""
			for i, ke := range e.Key {
				if ke.Sort.Kind == sym.KindBool {
					if evalBool(m, ke, false) {
						key[i] = 1
					}
				} else {
					key[i] = evalInt(m, ke, 0)
				}
				ks += fmt.Sprintf(",%d", key[i])
			}
			if seen[ks] {
				continue
			}
			seen[ks] = true
			p := probe{key: key, fields: map[string]int64{}, bools: map[string]bool{}}
			if e.InitPresentVar != nil {
				p.present = evalBool(m, e.InitPresentVar, false)
			} else {
				p.present = true // total-function dictionaries
			}
			if p.present && e.InitVal != nil {
				st := e.InitVal.(*symx.Struct)
				for name, fe := range st.Fields {
					if fe.Sort.Kind == sym.KindBool {
						p.bools[name] = evalBool(m, fe, false)
					} else {
						p.fields[name] = evalInt(m, fe, 0)
					}
				}
			}
			if p.present {
				out = append(out, p)
			}
		}
	}
	return out
}

// buildSetup reconstructs a concrete, realizable initial kernel state from
// the model assignment. Link counts are realized with hidden extra links
// (the paper's Figure 5 "__i0" trick) when the probed count exceeds the
// visible names.
func buildSetup(path analyzer.PairPath, m sym.Model) (kernel.Setup, error) {
	var s kernel.Setup
	sa, sb := path.StateA, path.StateB

	inodeLen := map[int64]int64{}
	inodeNlink := map[int64]int64{}
	for _, p := range collectProbes(m, sa.Inode, sb.Inode) {
		inum := p.key[0]
		if inum < 1 {
			continue // allocated during the calls, not initial state
		}
		inodeLen[inum] = clamp(p.fields["len"], 0, model.MaxLen)
		inodeNlink[inum] = clamp(p.fields["nlink"], 0, model.MaxInum)
	}

	visibleLinks := map[int64]int{}
	for _, p := range collectProbes(m, sa.Fname, sb.Fname) {
		name, inum := p.key[0], p.fields["inum"]
		if inum < 1 {
			continue
		}
		s.Files = append(s.Files, kernel.SetupFile{Name: kernel.Fname(name), Inum: inum})
		visibleLinks[inum]++
		if _, ok := inodeLen[inum]; !ok {
			inodeLen[inum] = 0
		}
	}

	pages := map[int64]map[int64]int64{}
	for _, p := range collectProbes(m, sa.Data, sb.Data) {
		inum, pg := p.key[0], p.key[1]
		if inum < 1 || pg < 0 {
			continue
		}
		if _, ok := inodeLen[inum]; !ok {
			continue // content of a file not otherwise in play
		}
		if pg >= inodeLen[inum] {
			continue // beyond EOF: invisible through the interface
		}
		if pages[inum] == nil {
			pages[inum] = map[int64]int64{}
		}
		pages[inum][pg] = p.fields["val"]
	}

	pipesNeeded := map[int64]bool{}
	for _, p := range collectProbes(m, sa.FD, sb.FD) {
		proc, fd := int(p.key[0]), p.key[1]
		if fd < 0 {
			continue
		}
		sd := kernel.SetupFD{Proc: proc, FD: fd}
		if p.bools["ispipe"] {
			sd.Pipe = true
			sd.PipeID = p.fields["pipe"]
			sd.WriteEnd = p.bools["wend"]
			if sd.PipeID >= 1 {
				pipesNeeded[sd.PipeID] = true
			}
		} else {
			sd.Inum = p.fields["inum"]
			sd.Off = clamp(p.fields["off"], 0, model.MaxLen)
			if sd.Inum >= 1 {
				if _, ok := inodeLen[sd.Inum]; !ok {
					inodeLen[sd.Inum] = 0
				}
			}
		}
		s.FDs = append(s.FDs, sd)
	}

	pipeMeta := map[int64][2]int64{}
	for _, p := range collectProbes(m, sa.Pipe, sb.Pipe) {
		id := p.key[0]
		if id < 1 {
			continue
		}
		h := clamp(p.fields["head"], 0, model.MaxLen)
		t := clamp(p.fields["tail"], h, model.MaxLen)
		pipeMeta[id] = [2]int64{h, t}
		pipesNeeded[id] = true
	}
	pipeVals := map[int64]map[int64]int64{}
	for _, p := range collectProbes(m, sa.PipeD, sb.PipeD) {
		id, seq := p.key[0], p.key[1]
		if id < 1 {
			continue
		}
		if pipeVals[id] == nil {
			pipeVals[id] = map[int64]int64{}
		}
		pipeVals[id][seq] = p.fields["val"]
	}
	for id := range pipesNeeded {
		meta := pipeMeta[id]
		var items []int64
		for seq := meta[0]; seq < meta[1]; seq++ {
			items = append(items, pipeVals[id][seq])
		}
		s.Pipes = append(s.Pipes, kernel.SetupPipe{ID: id, Items: items})
	}

	anonVals := map[[2]int64]int64{}
	for _, p := range collectProbes(m, sa.Anon, sb.Anon) {
		anonVals[[2]int64{p.key[0], p.key[1]}] = p.fields["val"]
	}
	for _, p := range collectProbes(m, sa.VMA, sb.VMA) {
		proc, page := p.key[0], p.key[1]
		if page < 0 {
			continue
		}
		sv := kernel.SetupVMA{
			Proc: int(proc), Page: page,
			Anon:     p.bools["anon"],
			Writable: p.bools["wr"],
		}
		if sv.Anon {
			sv.Val = anonVals[[2]int64{proc, page}]
		} else {
			sv.Inum = p.fields["inum"]
			sv.Foff = clamp(p.fields["foff"], 0, model.MaxLen)
			if sv.Inum >= 1 {
				if _, ok := inodeLen[sv.Inum]; !ok {
					inodeLen[sv.Inum] = 0
				}
			}
		}
		s.VMAs = append(s.VMAs, sv)
	}

	inums := make([]int64, 0, len(inodeLen))
	for inum := range inodeLen {
		inums = append(inums, inum)
	}
	sort.Slice(inums, func(i, j int) bool { return inums[i] < inums[j] })
	for _, inum := range inums {
		extra := 0
		if want, ok := inodeNlink[inum]; ok {
			if d := int(want) - visibleLinks[inum]; d > 0 {
				extra = d
			}
		}
		s.Inodes = append(s.Inodes, kernel.SetupInode{
			Inum:       inum,
			ExtraLinks: extra,
			Len:        inodeLen[inum],
			Pages:      pages[inum],
		})
	}
	sortSetup(&s)
	return s, nil
}

func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// sortSetup fixes deterministic ordering for reproducible output.
func sortSetup(s *kernel.Setup) {
	sort.Slice(s.Files, func(i, j int) bool { return s.Files[i].Name < s.Files[j].Name })
	sort.Slice(s.FDs, func(i, j int) bool {
		a, b := s.FDs[i], s.FDs[j]
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		return a.FD < b.FD
	})
	sort.Slice(s.Pipes, func(i, j int) bool { return s.Pipes[i].ID < s.Pipes[j].ID })
	sort.Slice(s.VMAs, func(i, j int) bool {
		a, b := s.VMAs[i], s.VMAs[j]
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		return a.Page < b.Page
	})
}
