// Package testgen implements COMMUTER's TESTGEN component (§5.2 of the
// paper): it converts ANALYZER's per-path commutativity conditions into
// concrete test cases, aiming for conflict coverage — for each code path it
// enumerates satisfying assignments that differ in their pattern of equal
// and distinct values (isomorphism classes), because different aliasing
// patterns exercise different data-structure access patterns in an
// implementation even along one model path.
//
// testgen is generic over the interface specification (spec.Spec): the
// only spec-specific step — turning a solver witness into a concrete
// initial state — is delegated to the spec's Concretizer.
package testgen

import (
	"fmt"

	"repro/internal/analyzer"
	"repro/internal/kernel"
	"repro/internal/spec"
	"repro/internal/sym"
	"repro/internal/symx"
)

// Options tunes generation.
type Options struct {
	// MaxTestsPerPath caps the isomorphism classes enumerated per
	// commutative path (default 4).
	MaxTestsPerPath int
	// Solver overrides the default solver.
	Solver *sym.Solver
	// LowestFD indicates the model ran under the POSIX lowest-FD rule;
	// otherwise the posix spec's concretizer marks generated open/pipe
	// calls with the O_ANYFD flag, matching the specification
	// nondeterminism the tests assume. (Forwarded to the spec's
	// Concretizer as spec.Config; other specs ignore it.)
	LowestFD bool
}

// Config renders the options as the spec-layer configuration forwarded to
// the concretizer.
func (o Options) Config() spec.Config { return spec.Config{LowestFD: o.LowestFD} }

// Generate produces concrete test cases for every commutative path of a
// pair analysis performed against the spec sp.
func Generate(sp spec.Spec, pr analyzer.PairResult, opt Options) []kernel.TestCase {
	tests, _ := GenerateChecked(sp, pr, opt)
	return tests
}

// GenerateChecked is Generate plus the truncation count: the number of
// commutative paths whose class enumeration ran out of solver budget, so
// isomorphism classes (and hence tests) may have been dropped. Callers
// that report coverage treat such pairs as under-approximated, like the
// analyzer's Unknown paths.
func GenerateChecked(sp spec.Spec, pr analyzer.PairResult, opt Options) ([]kernel.TestCase, int) {
	maxPer := opt.MaxTestsPerPath
	if maxPer == 0 {
		maxPer = 4
	}
	solver := opt.Solver
	if solver == nil {
		solver = &sym.Solver{}
	}
	// The pair's ops and concretizer are invariant across paths and
	// tests; resolve them once, not per materialized test.
	opA, errA := spec.OpByName(sp, pr.OpA)
	opB, errB := spec.OpByName(sp, pr.OpB)
	if errA != nil || errB != nil {
		// The PairResult belongs to a different spec than sp: an API
		// misuse, not an input condition — fail loudly rather than
		// silently generating nothing.
		panic(fmt.Sprintf("testgen: pair %s/%s (spec %q) generated against spec %q",
			pr.OpA, pr.OpB, pr.Spec, sp.Name()))
	}
	ops := [2]*spec.Op{opA, opB}
	conc := sp.Concretizer()
	var tests []kernel.TestCase
	truncated := 0
	seen := map[string]bool{}
	for pi, path := range pr.Paths {
		if !path.Commutes {
			continue
		}
		vars := classVars(path.CommuteCond, path.VarKinds)
		// One enumeration pass collects a representative per isomorphism
		// class: each model is kept if no previously kept model's class
		// formula covers it. This keeps the same representatives, in the
		// same order, as restarting Solve on cond ∧ ¬class(m₁) ∧ … (the
		// class negations only prune — they add no variables or
		// constants, so the candidate domains and assignment order are
		// untouched), without re-enumerating each restart's prefix. The
		// trade: filtering happens at the leaves, so covered regions are
		// not pruned at interior depths the way conjoined ¬class
		// formulas pruned them. With this model's deliberately tiny
		// domains the covered-leaf walk is cheap, and a path that does
		// exhaust the (single, shared) step budget is reported through
		// the truncation count instead of failing silently.
		ti := 0
		var classes []*sym.Expr
		solver.Enumerate(path.CommuteCond, func(m sym.Model) bool {
			for _, cf := range classes {
				if v, ok := m.TryEval(cf); ok && v.Bool {
					return true // same class as a kept model; keep searching
				}
			}
			id := fmt.Sprintf("%s_%s_path%d_test%d", pr.OpA, pr.OpB, pi, ti)
			tc, err := materialize(ops, conc, id, path, m, opt)
			// Distinct isomorphism classes can materialize identically
			// when the distinguishing variables don't reach the concrete
			// state (e.g. content values on error paths); emit one copy.
			if err == nil && !seen[contentKey(tc)] {
				seen[contentKey(tc)] = true
				tests = append(tests, tc)
			}
			cf := classFormula(m, vars)
			ti++
			if cf.IsTrue() {
				// Degenerate class formula (no class-distinguishing
				// variables): every model is in this class, so there is
				// nothing further to enumerate — matching the restart
				// formulation, where conjoining ¬true made the next
				// query unsatisfiable immediately.
				return false
			}
			classes = append(classes, cf)
			return ti < maxPer
		})
		if solver.Budget() {
			truncated++
		}
	}
	return tests, truncated
}

// contentKey renders a test case's distinguishing content (everything but
// the ID) for deduplication.
func contentKey(tc kernel.TestCase) string {
	return fmt.Sprintf("%v|%v|%+v", tc.Calls[0], tc.Calls[1], tc.Setup)
}

// classVars selects the variables whose equality pattern defines a test's
// isomorphism class: arguments and initial state, but not nondeterministic
// outputs.
func classVars(cond *sym.Expr, kinds map[string]symx.VarKind) []*sym.Expr {
	var out []*sym.Expr
	for _, v := range sym.Vars(cond) {
		if kinds[v.Name] != symx.KindNondet {
			out = append(out, v)
		}
	}
	return out
}

// classFormula captures the isomorphism class of model m over vars: boolean
// variables keep their values, and every same-sort pair of non-boolean
// variables keeps its equal/distinct relation. Negating this formula forces
// the next enumerated assignment into a different class — the paper's
// "negates any equivalent assignment" step.
func classFormula(m sym.Model, vars []*sym.Expr) *sym.Expr {
	var conj []*sym.Expr
	for i, x := range vars {
		xv, ok := m[x.Name]
		if !ok {
			continue
		}
		if x.Sort.Kind == sym.KindBool {
			if xv.Bool {
				conj = append(conj, x)
			} else {
				conj = append(conj, sym.Not(x))
			}
			continue
		}
		for _, y := range vars[i+1:] {
			if y.Sort != x.Sort {
				continue
			}
			yv, ok := m[y.Name]
			if !ok {
				continue
			}
			if xv.Int == yv.Int {
				conj = append(conj, sym.Eq(x, y))
			} else {
				conj = append(conj, sym.Ne(x, y))
			}
		}
	}
	return sym.And(conj...)
}

// materialize renders one satisfying assignment as a concrete test case:
// concrete arguments for the two calls (an argument named "proc" selects
// the calling process by convention) plus the initial state mined by the
// spec's Concretizer from the union of initial-state probes of both
// permutations' symbolic states.
func materialize(ops [2]*spec.Op, conc spec.Concretizer, id string, path analyzer.PairPath, m sym.Model, opt Options) (kernel.TestCase, error) {
	tc := kernel.TestCase{ID: id}
	for slot, op := range ops {
		call := kernel.Call{Op: op.Name, Args: map[string]int64{}}
		for _, as := range op.Args {
			name := fmt.Sprintf("%s.%d.%s", op.Name, slot, as.Name)
			v := sym.Var(name, as.Sort)
			switch {
			case as.Name == "proc":
				if spec.EvalBool(m, v, false) {
					call.Proc = 1
				}
			case as.Sort.Kind == sym.KindBool:
				if spec.EvalBool(m, v, false) {
					call.Args[as.Name] = 1
				} else {
					call.Args[as.Name] = 0
				}
			default:
				call.Args[as.Name] = spec.EvalInt(m, v, max64(as.Min, 0))
			}
		}
		conc.FixupCall(opt.Config(), &call)
		tc.Calls[slot] = call
	}
	setup, err := conc.Setup(path.StateA, path.StateB, m)
	if err != nil {
		return tc, err
	}
	tc.Setup = setup
	// Content-address the setup so the checker can batch tests that share
	// an initial state without recomputing the fingerprint per test.
	tc.SetupID = setup.Fingerprint()
	return tc, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
