// Package queuespec is a symbolic model of the §7.3 mail server's
// communication interface, registered as the "queue" spec. It is the
// second interface the pipeline analyzes — the proof that the COMMUTER
// layers are generic over spec.Spec — and it reproduces, symbolically,
// the paper's §4 argument about ordered communication:
//
//   - send/recv is the order-preserving notification socket of the
//     regular mail APIs: send appends to one shared FIFO and returns the
//     assigned sequence number; recv takes from the head and returns the
//     message's sequence number with its payload. Because the sequence
//     order is observable, two sends never SIM-commute (their receipts
//     swap across orders), and send/recv commute only on a non-empty
//     queue (they touch opposite ends).
//   - send_any/recv_any is the commutative §4 redesign (the unordered
//     datagram socket with per-core load-balanced queues): delivery order
//     is unspecified, modeled as a nondeterministic queue choice, and no
//     position receipt is returned — so two send_anys (and two
//     recv_anys) always admit a commutative execution in which the
//     nondeterministic choices land on different queues.
//   - status reports the ordered queue's backlog (the qman status
//     query). It never commutes with ordered mutations (the count it
//     returns moves) but commutes with the unordered ops, whose state it
//     does not observe.
//
// The reference in-memory implementation is internal/kernel/memq, checked
// for conflict-freedom by the standard MTRACE runner.
package queuespec

import (
	"repro/internal/kernel"
	"repro/internal/kernel/memq"
	"repro/internal/spec"
	"repro/internal/sym"
	"repro/internal/symx"
)

// MsgSort is the uninterpreted sort of message payloads: like the POSIX
// model's page contents, semantics only ever compare them for equality.
var MsgSort = sym.Uninterpreted("Msg")

// MsgZero is the distinguished empty payload filling unused data slots.
var MsgZero = sym.Const(MsgSort, 0)

// Bounds keep the symbolic domains small, like the POSIX model's.
const (
	// MaxQLen bounds initial queue backlogs (in messages).
	MaxQLen = 3
	// NQueues is the number of per-core queues behind the unordered
	// operations (two is enough: the calls of a pair run on two cores).
	NQueues = 2
)

// State is the symbolic queue state.
type State struct {
	// Ord maps (0) -> {head, tail}: the shared ordered queue's cursors
	// (a total-function view, like the POSIX pipe cursors).
	Ord *symx.Dict
	// OrdD maps (seq) -> {val}: ordered-queue content by sequence number.
	OrdD *symx.Dict
	// AnyQ maps (q) -> {head, tail}: per-core unordered queue cursors.
	AnyQ *symx.Dict
	// AnyD maps (q, seq) -> {val}: per-core queue content.
	AnyD *symx.Dict
}

// Dicts returns the dictionaries in comparison order. The cursor
// dictionaries' invariant closures probe nothing, so any order works;
// cursors precede content for readability of equivalence formulas.
func (s *State) Dicts() []*symx.Dict {
	return []*symx.Dict{s.Ord, s.AnyQ, s.OrdD, s.AnyD}
}

func cursorsVal(c *symx.Context, tag string) symx.Value {
	head := c.Var(tag+".head", sym.IntSort, symx.KindState)
	tail := c.Var(tag+".tail", sym.IntSort, symx.KindState)
	c.Assume(sym.And(
		sym.Ge(head, sym.Int(0)), sym.Le(head, tail), sym.Le(tail, sym.Int(MaxQLen))))
	return symx.NewStruct("head", head, "tail", tail)
}

func msgVal(c *symx.Context, tag string) symx.Value {
	return symx.NewStruct("val", c.Var(tag+".val", MsgSort, symx.KindState))
}

// NewState builds the symbolic state with unconstrained initial content:
// every queue starts with an arbitrary (bounded) backlog of arbitrary
// messages.
func NewState(c *symx.Context) *State {
	return &State{
		Ord:  symx.NewDict("mq", cursorsVal),
		OrdD: symx.NewDict("mqd", msgVal),
		AnyQ: symx.NewDict("anyq", cursorsVal),
		AnyD: symx.NewDict("anyqd", msgVal),
	}
}

func errRet(errno int64) []*sym.Expr {
	return []*sym.Expr{sym.Int(-errno), sym.Int(0), sym.Int(0), sym.Int(0), MsgZero}
}

func okRet(code *sym.Expr, i1 *sym.Expr, data *sym.Expr) []*sym.Expr {
	return []*sym.Expr{code, i1, sym.Int(0), sym.Int(0), data}
}

// ordKey is the (single) ordered queue's dictionary key.
func ordKey() symx.Key { return symx.K(sym.Int(0)) }

// pickQueue nondeterministically selects one of the per-core queues: the
// specification leaves the delivery queue unspecified, which is exactly
// what lets the unordered operations commute (the choices can land on
// different queues).
func pickQueue(c *symx.Context, slot string) *sym.Expr {
	q := c.Var("anyq.pick."+slot, sym.IntSort, symx.KindNondet)
	c.Assume(sym.And(sym.Ge(q, sym.Int(0)), sym.Le(q, sym.Int(NQueues-1))))
	return q
}

// Ops returns the five modeled operations in canonical (matrix) order.
func Ops() []*spec.Op {
	return []*spec.Op{opSend(), opRecv(), opSendAny(), opRecvAny(), opStatus()}
}

func st(x *spec.Exec) *State { return x.S.(*State) }

func opSend() *spec.Op {
	return &spec.Op{
		Name: "send",
		Args: []spec.ArgSpec{{Name: "val", Sort: MsgSort}},
		Exec: func(x *spec.Exec, slot string, a []*sym.Expr) []*sym.Expr {
			s, val := st(x), a[0]
			q := s.Ord.GetFunc(x.C, ordKey()).(*symx.Struct)
			t := q.Get("tail")
			s.OrdD.Set(x.C, symx.K(t), symx.NewStruct("val", val))
			s.Ord.Set(x.C, ordKey(), q.With("tail", sym.Add(t, sym.Int(1))))
			// The assigned sequence number is the send's receipt: making
			// the order observable is what destroys commutativity (§4).
			return okRet(t, sym.Int(0), MsgZero)
		},
	}
}

func opRecv() *spec.Op {
	return &spec.Op{
		Name: "recv",
		Args: nil,
		Exec: func(x *spec.Exec, slot string, a []*sym.Expr) []*sym.Expr {
			s := st(x)
			q := s.Ord.GetFunc(x.C, ordKey()).(*symx.Struct)
			h := q.Get("head")
			if x.C.Branch(sym.Eq(h, q.Get("tail"))) {
				return errRet(kernel.EAGAIN) // modeled as non-blocking
			}
			v := s.OrdD.GetFunc(x.C, symx.K(h)).(*symx.Struct)
			s.Ord.Set(x.C, ordKey(), q.With("head", sym.Add(h, sym.Int(1))))
			return okRet(sym.Int(0), h, v.Get("val"))
		},
	}
}

func opSendAny() *spec.Op {
	return &spec.Op{
		Name: "send_any",
		Args: []spec.ArgSpec{{Name: "val", Sort: MsgSort}},
		Exec: func(x *spec.Exec, slot string, a []*sym.Expr) []*sym.Expr {
			s, val := st(x), a[0]
			qi := pickQueue(x.C, slot)
			q := s.AnyQ.GetFunc(x.C, symx.K(qi)).(*symx.Struct)
			t := q.Get("tail")
			s.AnyD.Set(x.C, symx.K(qi, t), symx.NewStruct("val", val))
			s.AnyQ.Set(x.C, symx.K(qi), q.With("tail", sym.Add(t, sym.Int(1))))
			// No receipt: delivery order is deliberately unobservable.
			return okRet(sym.Int(0), sym.Int(0), MsgZero)
		},
	}
}

func opRecvAny() *spec.Op {
	return &spec.Op{
		Name: "recv_any",
		Args: nil,
		Exec: func(x *spec.Exec, slot string, a []*sym.Expr) []*sym.Expr {
			s := st(x)
			qi := pickQueue(x.C, slot)
			q := s.AnyQ.GetFunc(x.C, symx.K(qi)).(*symx.Struct)
			h := q.Get("head")
			if x.C.Branch(sym.Eq(h, q.Get("tail"))) {
				return errRet(kernel.EAGAIN) // the polled queue is empty
			}
			v := s.AnyD.GetFunc(x.C, symx.K(qi, h)).(*symx.Struct)
			s.AnyQ.Set(x.C, symx.K(qi), q.With("head", sym.Add(h, sym.Int(1))))
			return okRet(sym.Int(0), sym.Int(0), v.Get("val"))
		},
	}
}

func opStatus() *spec.Op {
	return &spec.Op{
		Name: "status",
		Args: nil,
		Exec: func(x *spec.Exec, slot string, a []*sym.Expr) []*sym.Expr {
			s := st(x)
			q := s.Ord.GetFunc(x.C, ordKey()).(*symx.Struct)
			return okRet(sym.Sub(q.Get("tail"), q.Get("head")), sym.Int(0), MsgZero)
		},
	}
}

// queueSpec packages the model as the registered "queue" spec.
type queueSpec struct{}

// Spec is the queue model as a pluggable pipeline spec.
var Spec spec.Spec = queueSpec{}

func init() { spec.Register(Spec) }

func (queueSpec) Name() string { return "queue" }

func (queueSpec) Ops() []*spec.Op { return Ops() }

func (queueSpec) Sets() map[string][]string {
	return map[string][]string{
		"ordered": {"send", "recv", "status"},
		"any":     {"send_any", "recv_any"},
	}
}

// DefaultSet: the queue universe is tiny, so default to all of it.
func (queueSpec) DefaultSet() string { return "all" }

func (queueSpec) NewState(c *symx.Context, cfg spec.Config) spec.State {
	return NewState(c)
}

func (queueSpec) Concretizer() spec.Concretizer { return concretizer{} }

func (queueSpec) Impls() []spec.Impl {
	return []spec.Impl{{Name: "memq", New: func() kernel.Kernel { return memq.New() }}}
}

// concretizer mines queue backlogs from the witness.
type concretizer struct{}

// FixupCall is a no-op: the queue interface has no per-call spec flags.
func (concretizer) FixupCall(cfg spec.Config, call *kernel.Call) {}

// Setup rebuilds concrete queue backlogs: for each probed queue, the
// messages between head and tail become the seeded items (the
// implementation renumbers from zero; sequence numbers are relative, so
// only the backlog's content and order matter).
func (concretizer) Setup(a, b spec.State, m sym.Model) (kernel.Setup, error) {
	var s kernel.Setup
	sa, sb := a.(*State), b.(*State)

	// Shared ordered queue.
	var ordFields map[string]int64
	for _, p := range spec.CollectProbes(m, sa.Ord, sb.Ord) {
		if p.Key[0] == 0 {
			ordFields = p.Fields
		}
	}
	ordVals := map[int64]int64{}
	for _, p := range spec.CollectProbes(m, sa.OrdD, sb.OrdD) {
		ordVals[p.Key[0]] = p.Fields["val"]
	}
	if items := spec.BacklogItems(ordFields, ordVals, MaxQLen); len(items) > 0 {
		s.Queues = append(s.Queues, kernel.SetupQueue{Core: -1, Items: items})
	}

	// Per-core unordered queues, in queue-id order.
	anyFields := map[int64]map[string]int64{}
	for _, p := range spec.CollectProbes(m, sa.AnyQ, sb.AnyQ) {
		qi := p.Key[0]
		if qi < 0 || qi >= NQueues {
			continue
		}
		anyFields[qi] = p.Fields
	}
	anyVals := map[int64]map[int64]int64{}
	for _, p := range spec.CollectProbes(m, sa.AnyD, sb.AnyD) {
		qi, seq := p.Key[0], p.Key[1]
		if anyVals[qi] == nil {
			anyVals[qi] = map[int64]int64{}
		}
		anyVals[qi][seq] = p.Fields["val"]
	}
	for qi := int64(0); qi < NQueues; qi++ {
		if items := spec.BacklogItems(anyFields[qi], anyVals[qi], MaxQLen); len(items) > 0 {
			s.Queues = append(s.Queues, kernel.SetupQueue{Core: qi, Items: items})
		}
	}
	return s, nil
}
