package queuespec

import (
	"testing"

	"repro/internal/analyzer"
	"repro/internal/kernel"
	"repro/internal/spec"
	"repro/internal/sweep"
	"repro/internal/testgen"
)

func analyze(t *testing.T, a, b string) analyzer.PairResult {
	t.Helper()
	opA, err := spec.OpByName(Spec, a)
	if err != nil {
		t.Fatal(err)
	}
	opB, err := spec.OpByName(Spec, b)
	if err != nil {
		t.Fatal(err)
	}
	return analyzer.AnalyzePair(Spec, opA, opB, analyzer.Options{})
}

func counts(r analyzer.PairResult) (commute, diverge int) {
	for _, p := range r.Paths {
		if p.Commutes {
			commute++
		}
		if p.CanDiverge {
			diverge++
		}
	}
	return
}

// TestOrderedPairsDoNotCommute pins the §4 argument symbolically: the
// order-preserving interface's mutating pairs admit no commutative
// execution at all — the sequence-number receipt makes the order
// observable — while reads of a moving count (status vs send/recv) are
// likewise order-dependent.
func TestOrderedPairsDoNotCommute(t *testing.T) {
	for _, pair := range [][2]string{
		{"send", "send"},
		{"status", "send"},
	} {
		r := analyze(t, pair[0], pair[1])
		nc, nd := counts(r)
		if r.Unknown() > 0 {
			t.Fatalf("%s x %s: solver budget hit", pair[0], pair[1])
		}
		if nc != 0 {
			t.Errorf("%s x %s: %d commutative paths, want 0", pair[0], pair[1], nc)
		}
		if nd == 0 {
			t.Errorf("%s x %s: no order-dependent path found", pair[0], pair[1])
		}
	}
}

// TestSendRecvCommuteOnlyNonEmpty pins the conditional case: send and
// recv touch opposite ends of the FIFO, so they commute exactly when the
// queue is non-empty (on the empty queue, recv's verdict depends on
// whether send went first).
func TestSendRecvCommuteOnlyNonEmpty(t *testing.T) {
	r := analyze(t, "send", "recv")
	nc, nd := counts(r)
	if nc == 0 {
		t.Error("send x recv: no commutative path (non-empty queue should commute)")
	}
	if nd == 0 {
		t.Error("send x recv: no divergent path (empty queue should order-distinguish)")
	}

	// status x recv is conditional the other way around: it commutes
	// exactly when recv fails (empty queue, no state change) and
	// diverges when recv succeeds and moves the count.
	r = analyze(t, "status", "recv")
	nc, nd = counts(r)
	if nc == 0 {
		t.Error("status x recv: no commutative path (failing recv should commute)")
	}
	if nd == 0 {
		t.Error("status x recv: no divergent path (successful recv moves the count)")
	}
}

// TestUnorderedPairsCommute pins the redesigned interface: with delivery
// order unspecified (nondeterministic per-core queues, no receipts), the
// unordered operations always admit a commutative execution.
func TestUnorderedPairsCommute(t *testing.T) {
	for _, pair := range [][2]string{
		{"send_any", "send_any"},
		{"send_any", "recv_any"},
		{"recv_any", "recv_any"},
		{"status", "send_any"},
		{"status", "recv_any"},
	} {
		r := analyze(t, pair[0], pair[1])
		nc, _ := counts(r)
		if nc == 0 {
			t.Errorf("%s x %s: no commutative path", pair[0], pair[1])
		}
	}
}

// TestMemqConflictFree is the end-to-end acceptance: every test TESTGEN
// derives from the queue spec's commutative paths runs conflict-free on
// the memq reference implementation under the standard MTRACE check —
// the §4 scalable design (split cursors, per-slot full flags, per-core
// queues) realizes the commutativity the spec promises.
func TestMemqConflictFree(t *testing.T) {
	kernels, impl := Spec.Impls(), ""
	if len(kernels) != 1 || kernels[0].Name != "memq" {
		t.Fatalf("queue impls = %+v, want memq", kernels)
	}
	impl = kernels[0].Name

	res, err := sweep.Run(sweep.Config{
		Spec:    Spec,
		Ops:     Ops(),
		Kernels: []sweep.KernelSpec{{Name: impl, New: kernels[0].New}},
	})
	if err != nil {
		t.Fatal(err)
	}
	total, conflicts := 0, 0
	for _, p := range res.Pairs {
		if p.Unknown > 0 {
			t.Errorf("%s: solver budget hit", p.Pair())
		}
		for _, c := range p.Cells {
			total += c.Total
			conflicts += c.Conflicts
			if c.Conflicts > 0 {
				t.Errorf("%s on %s: %d/%d tests conflicted", p.Pair(), c.Kernel, c.Conflicts, c.Total)
			}
		}
	}
	if total == 0 {
		t.Fatal("queue sweep generated no tests")
	}
	t.Logf("queue spec: %d tests, %d conflicts", total, conflicts)

	// Spot-check that the non-commutative pairs really generate nothing:
	// their matrix cells must read "-", not "conflict-free by vacuity
	// plus luck".
	for _, p := range res.Pairs {
		if p.OpA == "send" && p.OpB == "send" && p.Tests != 0 {
			t.Errorf("send/send generated %d tests, want 0", p.Tests)
		}
	}
}

// TestGenerateQueueTests pins the concretizer: a send/recv test on a
// non-empty queue must seed the ordered backlog the witness probed.
func TestGenerateQueueTests(t *testing.T) {
	r := analyze(t, "send", "recv")
	tests := testgen.Generate(Spec, r, testgen.Options{})
	if len(tests) == 0 {
		t.Fatal("no tests for send x recv")
	}
	seeded := false
	for _, tc := range tests {
		for _, q := range tc.Setup.Queues {
			if q.Core == -1 && len(q.Items) > 0 {
				seeded = true
			}
		}
		if tc.Calls[0].Op != "send" || tc.Calls[1].Op != "recv" {
			t.Errorf("%s: calls %v", tc.ID, tc.Calls)
		}
	}
	if !seeded {
		t.Error("no generated test seeds a non-empty ordered queue")
	}
	for _, tc := range tests {
		res, err := kernel.Check(Spec.Impls()[0].New, tc)
		if err != nil {
			t.Fatalf("%s: %v", tc.ID, err)
		}
		if !res.ConflictFree {
			names := make([]string, len(res.Conflicts))
			for i, c := range res.Conflicts {
				names[i] = c.CellName
			}
			t.Errorf("%s: conflicts on %v", tc.ID, names)
		}
	}
}
