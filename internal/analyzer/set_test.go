package analyzer

import (
	"testing"

	"repro/internal/model"
	"repro/internal/sym"
)

func analyzeSet(t *testing.T, names []string, opt Options) SetResult {
	t.Helper()
	var ops []*model.OpDef
	for _, n := range names {
		op := model.OpByName(n)
		if op == nil {
			t.Fatalf("unknown op %s", n)
		}
		ops = append(ops, op)
	}
	return AnalyzeSet(model.Spec, ops, opt)
}

func TestPermutationsAndSubsets(t *testing.T) {
	if got := len(permutations(3)); got != 6 {
		t.Errorf("3! = %d", got)
	}
	// Proper subsets of size >= 2 of a 3-set: the three pairs.
	subs := subsets(3)
	if len(subs) != 3 {
		t.Errorf("subsets(3) = %v", subs)
	}
	if got := len(subsets(2)); got != 0 {
		t.Errorf("a pair has no proper subsets of size >= 2, got %d", got)
	}
}

// Three stats always commute — read-only at any state.
func TestTripleStatCommutes(t *testing.T) {
	r := analyzeSet(t, []string{"stat", "stat", "stat"}, Options{})
	if len(r.Paths) == 0 {
		t.Fatal("no paths")
	}
	for i, p := range r.Paths {
		if p.CanDiverge {
			t.Errorf("path %d of stat^3 can diverge under %v", i, p.PC)
		}
	}
}

// Three unlinks of pairwise distinct names commute; a shared name makes
// order observable (one call wins, the others fail).
func TestTripleUnlinkClasses(t *testing.T) {
	r := analyzeSet(t, []string{"unlink", "unlink", "unlink"}, Options{})
	a := sym.Var("unlink.0.fname", model.FilenameSort)
	b := sym.Var("unlink.1.fname", model.FilenameSort)
	c := sym.Var("unlink.2.fname", model.FilenameSort)
	allDiff := sym.And(sym.Ne(a, b), sym.Ne(b, c), sym.Ne(a, c))
	var s sym.Solver
	foundDistinct := false
	for _, p := range r.CommutativePaths() {
		if s.Sat(sym.And(p.CommuteCond, allDiff)) {
			foundDistinct = true
			break
		}
	}
	if !foundDistinct {
		t.Error("three unlinks of distinct names should commute")
	}
	exists := sym.Var("fname[unlink.0.fname].present", sym.BoolSort)
	sameAB := sym.And(sym.Eq(a, b), sym.Ne(a, c), exists)
	for _, p := range r.CommutativePaths() {
		if s.Sat(sym.And(p.CommuteCond, sameAB)) {
			t.Errorf("unlinks of one existing name must not commute (one wins); pc=%v", p.PC)
			break
		}
	}
}

// The intermediate-state requirement at work: link(a,b); unlink(b);
// stat(b). All full permutations placing stat(b) appropriately could agree
// on final state, but the pair subsets {link, unlink} and {unlink, stat}
// expose order dependence — the set must not commute when all three names
// alias and the file exists.
func TestTripleIntermediateStates(t *testing.T) {
	r := analyzeSet(t, []string{"link", "unlink", "stat"}, Options{})
	old := sym.Var("link.0.old", model.FilenameSort)
	nw := sym.Var("link.0.new", model.FilenameSort)
	victim := sym.Var("unlink.1.fname", model.FilenameSort)
	statName := sym.Var("stat.2.fname", model.FilenameSort)
	oldExists := sym.Var("fname[link.0.old].present", sym.BoolSort)

	situation := sym.And(oldExists, sym.Eq(nw, victim), sym.Eq(victim, statName), sym.Ne(old, nw))
	var s sym.Solver
	for _, p := range r.CommutativePaths() {
		if s.Sat(sym.And(p.CommuteCond, situation)) {
			t.Error("link(a,b) / unlink(b) / stat(b) must not commute when b aliases")
			break
		}
	}

	// With all four names distinct and present as needed, the triple
	// commutes.
	disjoint := sym.And(oldExists,
		sym.Ne(old, nw), sym.Ne(old, victim), sym.Ne(old, statName),
		sym.Ne(nw, victim), sym.Ne(nw, statName), sym.Ne(victim, statName))
	found := false
	for _, p := range r.CommutativePaths() {
		if s.Sat(sym.And(p.CommuteCond, disjoint)) {
			found = true
			break
		}
	}
	if !found {
		t.Error("disjoint link/unlink/stat should commute")
	}
}

func TestSetSummary(t *testing.T) {
	r := analyzeSet(t, []string{"close", "close"}, Options{})
	if r.Summary() == "" || len(r.Ops) != 2 {
		t.Errorf("summary %q ops %v", r.Summary(), r.Ops)
	}
	// Pair analysis via AnalyzeSet must agree with AnalyzePair on
	// commutativity structure (same model, same condition).
	pr := analyze(t, "close", "close", Options{})
	setCommutes, pairCommutes := 0, 0
	for _, p := range r.Paths {
		if p.Commutes {
			setCommutes++
		}
	}
	for _, p := range pr.Paths {
		if p.Commutes {
			pairCommutes++
		}
	}
	if (setCommutes == 0) != (pairCommutes == 0) {
		t.Errorf("AnalyzeSet (%d commutative) disagrees with AnalyzePair (%d)",
			setCommutes, pairCommutes)
	}
}
