package analyzer

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/sym"
)

// TestCheckerBudgetUnknown pins the solver-budget soundness fix at the
// classification seam: an unsatisfiable answer from a budget-truncated
// search must come back unknown=true, while real verdicts (sat, or unsat
// with budget to spare) stay unknown=false.
func TestCheckerBudgetUnknown(t *testing.T) {
	x, y := sym.Var("ckx", sym.IntSort), sym.Var("cky", sym.IntSort)
	unsat := sym.And(sym.Lt(x, y), sym.Lt(y, x))

	// Plenty of budget: a real refutation, not unknown.
	chk := newChecker(&sym.Solver{}, nil, sym.True)
	sat, unknown := chk.sat(unsat)
	if sat || unknown {
		t.Errorf("full budget: sat=%v unknown=%v, want false/false", sat, unknown)
	}

	// One step: the search is truncated before it can prove anything, so
	// the unsat answer must be flagged unknown.
	chk = newChecker(&sym.Solver{MaxSteps: 1}, nil, sym.True)
	sat, unknown = chk.sat(unsat)
	if sat {
		t.Fatal("one-step budget found a model of an unsatisfiable formula")
	}
	if !unknown {
		t.Error("budget-truncated unsat answer not reported as unknown")
	}

	// Satisfiable queries that fit the budget are definitive.
	chk = newChecker(&sym.Solver{}, nil, sym.True)
	sat, unknown = chk.sat(sym.Lt(x, y))
	if !sat || unknown {
		t.Errorf("satisfiable query: sat=%v unknown=%v, want true/false", sat, unknown)
	}
}

// TestCheckerSyntacticShortCircuits pins the hash-consing fast paths: a
// pc conjunct is satisfiable with pc, its negation is not, and neither
// answer needs (or spends) any solver budget.
func TestCheckerSyntacticShortCircuits(t *testing.T) {
	x, y := sym.Var("scx", sym.IntSort), sym.Var("scy", sym.IntSort)
	conj := sym.Lt(x, y)
	pc := sym.And(conj, sym.Ge(x, sym.Int(0)))
	// MaxSteps 1 would flag any real search as unknown, so unknown=false
	// proves the answers came from the syntactic short-circuits.
	chk := newChecker(&sym.Solver{MaxSteps: 1}, nil, pc)
	if sat, unknown := chk.sat(conj); !sat || unknown {
		t.Errorf("pc conjunct: sat=%v unknown=%v, want true/false", sat, unknown)
	}
	if sat, unknown := chk.sat(sym.Not(conj)); sat || unknown {
		t.Errorf("negated pc conjunct: sat=%v unknown=%v, want false/false", sat, unknown)
	}
}

// TestFullyTruncatedPairIsUnknown pins the harshest budget case: when
// exploration is truncated so hard that no path survives, the pair must
// still report unknown — an empty path list with a clean Unknown()==0
// would read as "no feasible executions", the exact silent
// under-approximation the budget plumbing exists to prevent.
func TestFullyTruncatedPairIsUnknown(t *testing.T) {
	op := model.OpByName("stat")
	r := AnalyzePair(model.Spec, op, op, Options{Solver: &sym.Solver{MaxSteps: 1}})
	if len(r.Paths) != 0 {
		t.Skipf("one-step budget still explored %d paths; test needs a harsher setup", len(r.Paths))
	}
	if !r.Budgeted {
		t.Fatal("fully truncated exploration did not set Budgeted")
	}
	if r.Unknown() != 1 {
		t.Errorf("Unknown() = %d, want 1 for a fully truncated pair", r.Unknown())
	}
	if s := r.Summary(); !strings.Contains(s, "unknown") {
		t.Errorf("summary hides the truncation: %q", s)
	}
}

// TestSummaryReportsUnknown pins the analyze-output surface: a pair with
// budget-truncated paths says so instead of reading as "never commutes".
func TestSummaryReportsUnknown(t *testing.T) {
	r := PairResult{OpA: "a", OpB: "b", Paths: []PairPath{{Unknown: true}, {Commutes: true}}}
	if r.Unknown() != 1 {
		t.Fatalf("Unknown() = %d, want 1", r.Unknown())
	}
	if s := r.Summary(); !strings.Contains(s, "1 unknown (solver budget exhausted)") {
		t.Errorf("summary does not surface the budget flag: %q", s)
	}
	clean := PairResult{OpA: "a", OpB: "b", Paths: []PairPath{{Commutes: true}}}
	if s := clean.Summary(); strings.Contains(s, "unknown") {
		t.Errorf("clean summary mentions unknown: %q", s)
	}
}
