package analyzer

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/spec"
)

func opOf(t *testing.T, name string) *spec.Op {
	t.Helper()
	op, err := spec.OpByName(model.Spec, name)
	if err != nil {
		t.Fatal(err)
	}
	return op
}

// TestAnalyzePairCtxCancel pins that a cancelled context aborts the
// analysis with context.Canceled instead of returning a partial (and
// therefore misleading) pair result.
func TestAnalyzePairCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	op := opOf(t, "rename")
	start := time.Now()
	pr, err := AnalyzePairCtx(ctx, model.Spec, op, op, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if len(pr.Paths) != 0 {
		t.Errorf("cancelled analysis returned %d paths", len(pr.Paths))
	}
	// rename/rename costs tens of milliseconds when actually analyzed; a
	// pre-cancelled context must return near-instantly.
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("pre-cancelled analysis took %v", d)
	}
}

// TestAnalyzePairCtxBackground pins that the ctx variant under a live
// context matches the plain AnalyzePair result.
func TestAnalyzePairCtxBackground(t *testing.T) {
	a, b := opOf(t, "stat"), opOf(t, "unlink")
	want := AnalyzePair(model.Spec, a, b, Options{})
	got, err := AnalyzePairCtx(context.Background(), model.Spec, a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Paths) != len(want.Paths) || got.Summary() != want.Summary() {
		t.Errorf("ctx variant diverged: %q vs %q", got.Summary(), want.Summary())
	}
}
