package analyzer

import (
	"strings"
	"testing"

	"repro/internal/model"
)

func TestDescribeRename(t *testing.T) {
	r := analyze(t, "rename", "rename", Options{})
	descs := Describe(r)
	if len(descs) == 0 {
		t.Fatal("no descriptions for rename x rename")
	}
	joined := strings.Join(descs, "\n")
	// §5.1's classes must surface as clauses: failing sources, existence
	// facts, and distinctness constraints.
	for _, want := range []string{"absent", "exists", "≠"} {
		if !strings.Contains(joined, want) {
			t.Errorf("descriptions missing %q:\n%s", want, joined)
		}
	}
	// Self-rename class: src = dst must appear in some clause.
	if !strings.Contains(joined, "=") {
		t.Errorf("descriptions missing an equality clause:\n%s", joined)
	}
	t.Logf("rename x rename commutative situations:\n  %s", strings.Join(descs, "\n  "))
}

func TestDescribeReadOnlyPair(t *testing.T) {
	r := analyze(t, "stat", "stat", Options{})
	descs := Describe(r)
	if len(descs) == 0 {
		t.Fatal("no descriptions for stat x stat")
	}
	// stat x stat commutes in every situation, so at least one path's
	// description is fully unconstrained on flags beyond existence.
	t.Logf("stat x stat: %v", descs)
}

func TestShortNames(t *testing.T) {
	if got := short("rename.0.src"); got != "src0" {
		t.Errorf("short = %q", got)
	}
	if got := short("weird"); got != "weird" {
		t.Errorf("short fallback = %q", got)
	}
}

func TestDescribeDedupes(t *testing.T) {
	r := analyze(t, "close", "close", Options{})
	descs := Describe(r)
	seen := map[string]bool{}
	for _, d := range descs {
		if seen[d] {
			t.Errorf("duplicate description %q", d)
		}
		seen[d] = true
	}
	_ = model.Ops() // keep the import honest if assertions change
}
