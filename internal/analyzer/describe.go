package analyzer

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sym"
	"repro/internal/symx"
)

// Describe renders a pair's commutativity conditions as human-readable
// clauses in the style of §5.1's bullet list for rename×rename. For every
// commutative path it determines, per predicate of interest (equalities
// between same-sort arguments, argument flags, and name-existence facts),
// whether the commutativity condition implies it, implies its negation, or
// leaves it free, then merges identical descriptions.
func Describe(pr PairResult) []string {
	solver := &sym.Solver{}
	seen := map[string]bool{}
	var out []string
	for _, p := range pr.Paths {
		if !p.Commutes {
			continue
		}
		desc := describePath(solver, p)
		if desc == "" || seen[desc] {
			continue
		}
		seen[desc] = true
		out = append(out, desc)
	}
	sort.Strings(out)
	return out
}

func describePath(solver *sym.Solver, p PairPath) string {
	argVars := map[string]*sym.Expr{}
	for name, kind := range p.VarKinds {
		if kind == symx.KindArg {
			argVars[name] = nil
		}
	}
	// Recover sorts from the condition's variable set.
	for _, v := range sym.Vars(p.CommuteCond) {
		if _, ok := argVars[v.Name]; ok {
			argVars[v.Name] = v
		}
	}
	var names []string
	for n, v := range argVars {
		if v != nil {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	var clauses []string
	implied := func(pred *sym.Expr) int {
		// 1: implied, -1: negation implied, 0: free.
		if _, ok := solver.SatAssuming(p.CommuteCond, sym.Not(pred)); !ok {
			return 1
		}
		if _, ok := solver.SatAssuming(p.CommuteCond, pred); !ok {
			return -1
		}
		return 0
	}

	// Equalities between same-sort argument pairs.
	for i, a := range names {
		va := argVars[a]
		for _, b := range names[i+1:] {
			vb := argVars[b]
			if va.Sort != vb.Sort || va.Sort.Kind == sym.KindBool {
				continue
			}
			switch implied(sym.Eq(va, vb)) {
			case 1:
				clauses = append(clauses, short(a)+" = "+short(b))
			case -1:
				clauses = append(clauses, short(a)+" ≠ "+short(b))
			}
		}
	}
	// Boolean argument flags.
	for _, a := range names {
		va := argVars[a]
		if va.Sort.Kind != sym.KindBool {
			continue
		}
		switch implied(va) {
		case 1:
			clauses = append(clauses, short(a))
		case -1:
			clauses = append(clauses, "!"+short(a))
		}
	}
	// Existence facts from the initial state: an uninterpreted-sort
	// argument used directly as a dictionary key appears as a
	// "<dict>[<arg>].present" state variable (POSIX filename arguments
	// probe the fname directory this way).
	for _, a := range names {
		va := argVars[a]
		if va.Sort.Kind != sym.KindUnint {
			continue
		}
		pvName := presentVarFor(p.VarKinds, a)
		if pvName == "" {
			continue
		}
		pv := sym.Var(pvName, sym.BoolSort)
		switch implied(pv) {
		case 1:
			clauses = append(clauses, short(a)+" exists")
		case -1:
			clauses = append(clauses, short(a)+" absent")
		}
	}
	if len(clauses) == 0 {
		return "unconditionally"
	}
	return strings.Join(clauses, ", ")
}

// presentVarFor finds the membership variable of the initial-state
// dictionary location keyed by argument a alone: a state variable named
// "<dict>[<a>].present". Candidates are sorted so a (hypothetical) arg
// probing several dictionaries describes deterministically.
func presentVarFor(kinds map[string]symx.VarKind, a string) string {
	suffix := "[" + a + "].present"
	var candidates []string
	for name, kind := range kinds {
		if kind == symx.KindState && strings.HasSuffix(name, suffix) {
			candidates = append(candidates, name)
		}
	}
	if len(candidates) == 0 {
		return ""
	}
	sort.Strings(candidates)
	return candidates[0]
}

// short strips the operation prefix from an argument variable name:
// "rename.0.src" -> "src0".
func short(name string) string {
	parts := strings.Split(name, ".")
	if len(parts) == 3 {
		return fmt.Sprintf("%s%s", parts[2], parts[1])
	}
	return name
}
