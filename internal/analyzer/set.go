package analyzer

import (
	"fmt"

	"repro/internal/spec"
	"repro/internal/sym"
	"repro/internal/symx"
)

// SetPath is one feasible joint path of a multi-operation analysis.
type SetPath struct {
	// PC is the joint path condition across every executed permutation.
	PC *sym.Expr
	// Eq states the full SIM condition: return values equal across all
	// permutations of the full set, final states equivalent, and — for
	// sets larger than pairs (§5.1) — intermediate states equivalent for
	// every permutation of every subset.
	Eq *sym.Expr
	// CommuteCond is PC ∧ Eq.
	CommuteCond *sym.Expr
	// Commutes and CanDiverge classify the path as for pairs.
	Commutes   bool
	CanDiverge bool
	// Unknown marks a budget-truncated classification, as for pairs.
	Unknown bool
	// VarKinds classifies the path's variables.
	VarKinds map[string]symx.VarKind
}

// SetResult aggregates a set analysis.
type SetResult struct {
	// Spec names the interface specification the set belongs to.
	Spec  string
	Ops   []string
	Paths []SetPath
	// Budgeted mirrors PairResult.Budgeted: exploration hit the solver
	// budget, so even an empty Paths list means unknown rather than "no
	// feasible executions".
	Budgeted bool
}

// CommutativePaths returns the paths on which the set can commute.
func (r *SetResult) CommutativePaths() []SetPath {
	var out []SetPath
	for _, p := range r.Paths {
		if p.Commutes {
			out = append(out, p)
		}
	}
	return out
}

// Summary describes the analysis in one line.
func (r *SetResult) Summary() string {
	nc, nd := 0, 0
	for _, p := range r.Paths {
		if p.Commutes {
			nc++
		}
		if p.CanDiverge {
			nd++
		}
	}
	names := ""
	for i, n := range r.Ops {
		if i > 0 {
			names += " x "
		}
		names += n
	}
	return fmt.Sprintf("%s: %d paths, %d commutative, %d order-dependent",
		names, len(r.Paths), nc, nd)
}

// permutations enumerates index permutations of 0..n-1.
func permutations(n int) [][]int {
	var out [][]int
	idx := make([]int, n)
	used := make([]bool, n)
	var rec func(d int)
	rec = func(d int) {
		if d == n {
			cp := make([]int, n)
			copy(cp, idx)
			out = append(out, cp)
			return
		}
		for i := 0; i < n; i++ {
			if !used[i] {
				used[i] = true
				idx[d] = i
				rec(d + 1)
				used[i] = false
			}
		}
	}
	rec(0)
	return out
}

// subsets enumerates the index subsets of size >= 2 (excluding the full
// set, which the main permutation sweep covers).
func subsets(n int) [][]int {
	var out [][]int
	for mask := 1; mask < 1<<n; mask++ {
		var s []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				s = append(s, i)
			}
		}
		if len(s) >= 2 && len(s) < n {
			out = append(out, s)
		}
	}
	return out
}

// AnalyzeSet generalizes AnalyzePair to op sets of any size (the paper
// typically uses pairs; triples exercise SIM's monotonicity requirement).
// Every permutation of the full set runs from the shared symbolic initial
// state; additionally, every permutation of every proper subset runs so
// intermediate-state equivalence can be required, which is what makes the
// resulting condition monotonic (SIM rather than just SI).
func AnalyzeSet(sp spec.Spec, ops []*spec.Op, opt Options) SetResult {
	if len(ops) < 2 {
		panic("analyzer: AnalyzeSet wants at least two operations")
	}
	solver := opt.Solver
	if solver == nil {
		solver = &sym.Solver{}
	}
	maxPaths := opt.MaxPaths
	if maxPaths == 0 {
		maxPaths = 8192
	}

	type setData struct{ eq *sym.Expr }
	fullPerms := permutations(len(ops))
	// Model execution must be deterministic across path replays, so the
	// subset permutation groups are an ordered slice, not a map.
	var subPermGroups [][][]int
	for _, sub := range subsets(len(ops)) {
		var group [][]int
		for _, p := range permutations(len(sub)) {
			ordered := make([]int, len(sub))
			for i, pi := range p {
				ordered[i] = sub[pi]
			}
			group = append(group, ordered)
		}
		subPermGroups = append(subPermGroups, group)
	}

	paths, budgeted := symx.RunChecked(func(c *symx.Context) any {
		args := make([][]*sym.Expr, len(ops))
		for i, op := range ops {
			args[i] = spec.MakeArgs(c, op, fmt.Sprint(i))
		}
		run := func(order []int) (spec.State, [][]*sym.Expr) {
			st := sp.NewState(c, opt.Config)
			x := &spec.Exec{C: c, S: st, Cfg: opt.Config}
			rets := make([][]*sym.Expr, len(ops))
			for _, i := range order {
				rets[i] = ops[i].Exec(x, fmt.Sprint(i), args[i])
			}
			return st, rets
		}
		// Subset runs execute only part of the set; rets for absent ops
		// stay nil and are not compared.

		var conj []*sym.Expr
		// Full-set permutations: returns and final states must agree.
		st0, rets0 := run(fullPerms[0])
		for _, perm := range fullPerms[1:] {
			st, rets := run(perm)
			for i := range ops {
				conj = append(conj, spec.RetEq(rets0[i], rets[i]))
			}
			conj = append(conj, spec.Equivalent(c, st0, st))
		}
		// Proper subsets: intermediate states must agree across each
		// subset's permutations (the paper's extra condition for sets
		// larger than pairs).
		for _, perms := range subPermGroups {
			base, _ := run(perms[0])
			for _, perm := range perms[1:] {
				st, _ := run(perm)
				conj = append(conj, spec.Equivalent(c, base, st))
			}
		}
		return setData{eq: sym.And(conj...)}
	}, symx.Options{MaxPaths: maxPaths, Solver: solver})

	res := SetResult{Spec: sp.Name(), Budgeted: budgeted}
	for _, op := range ops {
		res.Ops = append(res.Ops, op.Name)
	}
	for _, p := range paths {
		d := p.Result.(setData)
		cc := sym.And(p.PC, d.eq)
		chk := newChecker(solver, p.Witness, p.PC)
		commutes, cu := chk.sat(d.eq)
		diverges, du := chk.divergeSat(d.eq)
		res.Paths = append(res.Paths, SetPath{
			PC:          p.PC,
			Eq:          d.eq,
			CommuteCond: cc,
			Commutes:    commutes,
			CanDiverge:  diverges,
			Unknown:     p.Budgeted || cu || du,
			VarKinds:    p.VarKinds,
		})
	}
	return res
}
