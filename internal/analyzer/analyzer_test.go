package analyzer

import (
	"testing"

	"repro/internal/model"
	"repro/internal/sym"
	"repro/internal/symx"
)

func analyze(t *testing.T, a, b string, opt Options) PairResult {
	t.Helper()
	opA, opB := model.OpByName(a), model.OpByName(b)
	if opA == nil || opB == nil {
		t.Fatalf("unknown ops %q %q", a, b)
	}
	return AnalyzePair(model.Spec, opA, opB, opt)
}

// assertCommuteUnder checks that some commutative path's condition admits
// the extra constraint (i.e. the pair can commute in that situation).
func assertCommuteUnder(t *testing.T, r PairResult, extra *sym.Expr, why string) {
	t.Helper()
	var s sym.Solver
	for _, p := range r.CommutativePaths() {
		if s.Sat(sym.And(p.CommuteCond, extra)) {
			return
		}
	}
	t.Errorf("%s x %s: no commutative path under %v (%s)", r.OpA, r.OpB, extra, why)
}

// assertNeverCommutesUnder checks no commutative path admits the constraint.
func assertNeverCommutesUnder(t *testing.T, r PairResult, extra *sym.Expr, why string) {
	t.Helper()
	var s sym.Solver
	for _, p := range r.CommutativePaths() {
		if s.Sat(sym.And(p.CommuteCond, extra)) {
			t.Errorf("%s x %s: unexpectedly commutes under %v (%s)", r.OpA, r.OpB, extra, why)
			return
		}
	}
}

func fvar(name string) *sym.Expr { return sym.Var(name, model.FilenameSort) }

// §5.1's rename×rename commutativity classes from Figure 4's model. The
// analyzer must find commutative conditions exactly for the classes the
// paper lists, and reject the order-dependent ones.
func TestRenameRenameClasses(t *testing.T) {
	r := analyze(t, "rename", "rename", Options{})
	a, b := fvar("rename.0.src"), fvar("rename.0.dst")
	c, d := fvar("rename.1.src"), fvar("rename.1.dst")

	srcExists := func(src string) *sym.Expr {
		return sym.Var("fname["+src+"].present", sym.BoolSort)
	}
	allDiff := sym.And(sym.Ne(a, b), sym.Ne(a, c), sym.Ne(a, d),
		sym.Ne(b, c), sym.Ne(b, d), sym.Ne(c, d))

	// Class 1: both sources exist and all four names differ.
	assertCommuteUnder(t, r,
		sym.And(srcExists("rename.0.src"), srcExists("rename.1.src"), allDiff),
		"distinct names with existing sources commute")

	// Class 2: one source missing and not the other rename's destination.
	assertCommuteUnder(t, r,
		sym.And(srcExists("rename.0.src"), sym.Not(srcExists("rename.1.src")),
			sym.Ne(b, c), allDiffExcept(a, b, c, d)),
		"missing source commutes when it is not the other's destination")

	// Class 3: neither source exists.
	assertCommuteUnder(t, r,
		sym.And(sym.Not(srcExists("rename.0.src")), sym.Not(srcExists("rename.1.src")),
			sym.Ne(a, d), sym.Ne(c, b)),
		"two failing renames commute")

	// Class 4: both self-renames.
	assertCommuteUnder(t, r,
		sym.And(sym.Eq(a, b), sym.Eq(c, d)),
		"self-renames commute")

	// Class 5: one self-rename of an existing file, not the other's source.
	assertCommuteUnder(t, r,
		sym.And(srcExists("rename.0.src"), sym.Eq(a, b), sym.Ne(a, c)),
		"self-rename of existing file commutes when not the other's source")

	// Anti-class: same destination for two different existing sources is
	// order-dependent (the last rename wins).
	assertNeverCommutesUnder(t, r,
		sym.And(srcExists("rename.0.src"), srcExists("rename.1.src"),
			sym.Eq(b, d), sym.Ne(a, c), sym.Ne(a, b), sym.Ne(c, d),
			// exclude the hard-link special case (same inode)
			sym.Ne(sym.Var("fname[rename.0.src].inum", sym.IntSort),
				sym.Var("fname[rename.1.src].inum", sym.IntSort))),
		"two renames of different inodes to one name are order-dependent")

	// Anti-class: chained renames (b == c) with both sources existing.
	assertNeverCommutesUnder(t, r,
		sym.And(srcExists("rename.0.src"), srcExists("rename.1.src"),
			sym.Eq(b, c), allDiffExcept2(a, b, c, d)),
		"rename chains are order-dependent")
}

// allDiffExcept returns pairwise inequality over the names except the pairs
// the caller constrains separately (helpers for readability).
func allDiffExcept(a, b, c, d *sym.Expr) *sym.Expr {
	return sym.And(sym.Ne(a, b), sym.Ne(a, c), sym.Ne(a, d), sym.Ne(b, d), sym.Ne(c, d))
}

func allDiffExcept2(a, b, c, d *sym.Expr) *sym.Expr {
	return sym.And(sym.Ne(a, b), sym.Ne(a, c), sym.Ne(a, d), sym.Ne(b, d), sym.Ne(c, d))
}

// §3.2's open example: two open(O_CREAT|O_EXCL) calls on one name don't
// commute when the file is absent (one creates, one fails), but do commute
// when the file already exists (both fail identically).
func TestOpenExclusiveStateDependence(t *testing.T) {
	r := analyze(t, "open", "open", Options{})
	sameName := sym.Eq(fvar("open.0.fname"), fvar("open.1.fname"))
	bothExcl := sym.And(
		sym.Var("open.0.creat", sym.BoolSort), sym.Var("open.0.excl", sym.BoolSort),
		sym.Var("open.1.creat", sym.BoolSort), sym.Var("open.1.excl", sym.BoolSort))
	exists := sym.Var("fname[open.0.fname].present", sym.BoolSort)

	assertCommuteUnder(t, r,
		sym.And(sameName, bothExcl, exists),
		"O_EXCL on an existing file fails either way")
	assertNeverCommutesUnder(t, r,
		sym.And(sameName, bothExcl, sym.Not(exists)),
		"O_EXCL on a missing file: one succeeds, one fails, order matters")
}

func TestCreateDifferentNamesCommutes(t *testing.T) {
	r := analyze(t, "open", "open", Options{})
	creat := sym.And(sym.Var("open.0.creat", sym.BoolSort), sym.Var("open.1.creat", sym.BoolSort))
	diff := sym.Ne(fvar("open.0.fname"), fvar("open.1.fname"))
	assertCommuteUnder(t, r, sym.And(creat, diff),
		"creating differently named files commutes (§1)")
}

// getpid-style unconditional commutativity does not exist for stat pairs on
// the same changing state, but stat×stat always commutes (read-only).
func TestStatStatAlwaysCommutes(t *testing.T) {
	r := analyze(t, "stat", "stat", Options{})
	for _, p := range r.Paths {
		if p.CanDiverge {
			t.Errorf("stat x stat path can diverge under %v", p.PC)
		}
	}
}

// The lowest-FD rule (§4): two opens in one process stop commuting when FD
// allocation is deterministic, and commute again in different processes.
func TestLowestFDDestroysCommutativity(t *testing.T) {
	r := analyze(t, "open", "open", Options{Config: model.Config{LowestFD: true}})
	sameProc := sym.Eq(sym.Var("open.0.proc", sym.BoolSort), sym.Var("open.1.proc", sym.BoolSort))
	diffNames := sym.Ne(fvar("open.0.fname"), fvar("open.1.fname"))
	bothExist := sym.And(
		sym.Var("fname[open.0.fname].present", sym.BoolSort),
		sym.Var("fname[open.1.fname].present", sym.BoolSort))
	// Force both opens to succeed: names exist and O_EXCL is off (else
	// both fail with EEXIST and commute), and descriptor 0 is free (else
	// both can fail with EMFILE and commute).
	slot0Free := sym.Not(sym.Var("fd[open.0.proc,0].present", sym.BoolSort))
	noExcl := sym.And(
		sym.Not(sym.Var("open.0.excl", sym.BoolSort)),
		sym.Not(sym.Var("open.1.excl", sym.BoolSort)))
	assertNeverCommutesUnder(t, r,
		sym.And(sameProc, diffNames, bothExist, slot0Free, noExcl),
		"lowest-FD: both opens succeed in one process, FDs depend on order")
	assertCommuteUnder(t, r,
		sym.And(sym.Not(sameProc), diffNames, bothExist),
		"different processes have independent FD spaces")
}

// With AnyFD (the §4 fix), the same situation commutes.
func TestAnyFDRestoresCommutativity(t *testing.T) {
	r := analyze(t, "open", "open", Options{})
	sameProc := sym.Eq(sym.Var("open.0.proc", sym.BoolSort), sym.Var("open.1.proc", sym.BoolSort))
	diffNames := sym.Ne(fvar("open.0.fname"), fvar("open.1.fname"))
	bothExist := sym.And(
		sym.Var("fname[open.0.fname].present", sym.BoolSort),
		sym.Var("fname[open.1.fname].present", sym.BoolSort))
	assertCommuteUnder(t, r,
		sym.And(sameProc, diffNames, bothExist),
		"any-FD opens in one process commute")
}

// link×unlink: distinct names on the same inode commute (nlink net effect
// is order-independent); unlinking the link's target first does not.
func TestLinkUnlinkClasses(t *testing.T) {
	r := analyze(t, "link", "unlink", Options{})
	old, nw := fvar("link.0.old"), fvar("link.0.new")
	victim := fvar("unlink.1.fname")
	oldExists := sym.Var("fname[link.0.old].present", sym.BoolSort)
	victimExists := sym.Var("fname[unlink.1.fname].present", sym.BoolSort)

	assertCommuteUnder(t, r,
		sym.And(oldExists, victimExists,
			sym.Ne(old, nw), sym.Ne(old, victim), sym.Ne(nw, victim)),
		"link and unlink of disjoint names commute")
	assertNeverCommutesUnder(t, r,
		sym.And(oldExists, sym.Eq(old, victim), sym.Ne(nw, old)),
		"unlinking the link source is order-dependent")
}

// write×write on one descriptor never commutes (both the offset and the
// data depend on order); pwrite×pwrite at different offsets commutes.
func TestWriteCommutativity(t *testing.T) {
	rw := analyze(t, "write", "write", Options{})
	sameFD := sym.And(
		sym.Eq(sym.Var("write.0.proc", sym.BoolSort), sym.Var("write.1.proc", sym.BoolSort)),
		sym.Eq(sym.Var("write.0.fd", sym.IntSort), sym.Var("write.1.fd", sym.IntSort)))
	fdPresent := sym.Var("fd[write.0.proc,write.0.fd].present", sym.BoolSort)
	isFile := sym.Not(sym.Var("fd[write.0.proc,write.0.fd].ispipe", sym.BoolSort))
	diffVals := sym.Ne(sym.Var("write.0.val", model.DataSort), sym.Var("write.1.val", model.DataSort))
	assertNeverCommutesUnder(t, rw, sym.And(sameFD, fdPresent, isFile, diffVals),
		"file writes through one descriptor are order-dependent")

	rp := analyze(t, "pwrite", "pwrite", Options{})
	samePFD := sym.And(
		sym.Eq(sym.Var("pwrite.0.proc", sym.BoolSort), sym.Var("pwrite.1.proc", sym.BoolSort)),
		sym.Eq(sym.Var("pwrite.0.fd", sym.IntSort), sym.Var("pwrite.1.fd", sym.IntSort)))
	diffOff := sym.Ne(sym.Var("pwrite.0.off", sym.IntSort), sym.Var("pwrite.1.off", sym.IntSort))
	assertCommuteUnder(t, rp, sym.And(samePFD, diffOff),
		"pwrites at different offsets commute")
}

// Paths of one pair are disjoint and every path classifies as commutative,
// divergent, or both (a path whose condition splits).
func TestPathClassificationSanity(t *testing.T) {
	r := analyze(t, "unlink", "unlink", Options{})
	if len(r.Paths) == 0 {
		t.Fatal("no paths")
	}
	var s sym.Solver
	for i, p := range r.Paths {
		if !p.Commutes && !p.CanDiverge {
			t.Errorf("path %d neither commutes nor diverges", i)
		}
		if p.Commutes && !s.Sat(p.CommuteCond) {
			t.Errorf("path %d: Commutes set but condition unsat", i)
		}
	}
}

// VarKinds must classify model variables usefully for TESTGEN.
func TestVarKindsClassification(t *testing.T) {
	r := analyze(t, "open", "open", Options{})
	p := r.Paths[0]
	if p.VarKinds["open.0.fname"] != symx.KindArg {
		t.Error("argument variable not classified as KindArg")
	}
	found := false
	for name, k := range p.VarKinds {
		if k == symx.KindNondet && name == "alloc.fd.0" {
			found = true
		}
	}
	_ = found // allocation may not occur on path 0; presence checked below
	any := false
	for _, pp := range r.Paths {
		for name, k := range pp.VarKinds {
			if k == symx.KindNondet && name == "alloc.fd.0" {
				any = true
			}
		}
	}
	if !any {
		t.Error("no path classified alloc.fd.0 as nondeterministic")
	}
}

func TestSummaryFormat(t *testing.T) {
	r := analyze(t, "close", "close", Options{})
	s := r.Summary()
	if s == "" || r.OpA != "close" {
		t.Errorf("summary = %q", s)
	}
}
