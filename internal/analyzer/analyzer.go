// Package analyzer implements COMMUTER's ANALYZER component (§5.1 of the
// paper): it symbolically executes all permutations of a set of modeled
// operations from a shared unconstrained initial state, and computes the
// precise conditions — in terms of operation arguments and system state —
// under which the set commutes.
//
// The commutativity test codifies SIM commutativity for pairs (§3.2,
// specialized as in §5.1): a pair commutes on a path when each operation's
// return value is equal in both permutations and the final states are
// indistinguishable through the interface, allowing nondeterministic
// outputs (freshly allocated identifiers) to be chosen equal.
package analyzer

import (
	"context"
	"fmt"

	"repro/internal/spec"
	"repro/internal/sym"
	"repro/internal/symx"
)

// PairPath is one feasible joint path of the two permutations of a pair.
type PairPath struct {
	// PC is the joint path condition.
	PC *sym.Expr
	// Eq states that returns match and final states are equivalent.
	Eq *sym.Expr
	// CommuteCond is PC ∧ Eq: the commutativity condition of this path.
	CommuteCond *sym.Expr
	// Commutes reports whether CommuteCond is satisfiable: some initial
	// state and arguments on this path make the pair commute.
	Commutes bool
	// CanDiverge reports whether PC ∧ ¬Eq is satisfiable: some initial
	// state and arguments on this path order-distinguish the pair.
	CanDiverge bool
	// Unknown reports that classifying this path exhausted the solver's
	// step budget (or path exploration itself did): a false Commutes or
	// CanDiverge is then an under-approximation — "not proven", not
	// "proven not" — and downstream reporting must not present the pair
	// as definitively non-commutative.
	Unknown bool
	// StateA and StateB are the final symbolic states of the two
	// permutations (op0;op1 and op1;op0); the spec's Concretizer mines
	// their initial-probe entries to materialize concrete initial states.
	StateA, StateB spec.State
	// RetsA0.. hold the return vectors: RetsA* from the op0;op1 order,
	// RetsB* from op1;op0; index 0 is op0's return, 1 is op1's.
	RetsA, RetsB [2][]*sym.Expr
	// VarKinds classifies the path's symbolic variables.
	VarKinds map[string]symx.VarKind
}

// PairResult aggregates analysis of one operation pair.
type PairResult struct {
	// Spec names the interface specification the pair belongs to; the
	// pipeline threads it through test generation and caching so results
	// of different specs can never be conflated.
	Spec     string
	OpA, OpB string
	// Paths holds every feasible joint path.
	Paths []PairPath
	// Budgeted reports that path exploration hit the solver budget
	// somewhere. When true every path carries Unknown; it is recorded
	// separately so a truncation harsh enough to leave zero surviving
	// paths still reads as unknown, not as "no feasible executions".
	Budgeted bool
}

// CommutativePaths returns the paths on which the pair can commute.
func (r *PairResult) CommutativePaths() []PairPath {
	var out []PairPath
	for _, p := range r.Paths {
		if p.Commutes {
			out = append(out, p)
		}
	}
	return out
}

// Options tunes the analysis.
type Options struct {
	// Config selects spec variants (e.g. the POSIX lowest-FD rule).
	Config spec.Config
	// MaxPaths caps joint path exploration per pair (default 4096).
	MaxPaths int
	// Solver overrides the default solver.
	Solver *sym.Solver
}

type pathData struct {
	eq             *sym.Expr
	stateA, stateB spec.State
	retsA, retsB   [2][]*sym.Expr
}

// AnalyzePair symbolically executes both permutations of (opA, opB) —
// operations of the spec sp — from a shared symbolic initial state and
// classifies every joint path.
func AnalyzePair(sp spec.Spec, opA, opB *spec.Op, opt Options) PairResult {
	// context.Background() is never cancelled, so the error leg is dead.
	pr, _ := AnalyzePairCtx(context.Background(), sp, opA, opB, opt)
	return pr
}

// AnalyzePairCtx is AnalyzePair under a context. Cancellation is observed
// between path replays, between per-path classifications, and — via the
// solver's Stop hook — inside individual satisfiability searches, so an
// abandoned analysis stops promptly even mid-pair. On cancellation it
// returns ctx.Err() and a zero PairResult; nothing partial escapes.
func AnalyzePairCtx(ctx context.Context, sp spec.Spec, opA, opB *spec.Op, opt Options) (PairResult, error) {
	solver := opt.Solver
	if solver == nil {
		solver = &sym.Solver{Stop: func() bool { return ctx.Err() != nil }}
	}
	paths, budgeted, err := symx.RunCtx(ctx, func(c *symx.Context) any {
		argsA := spec.MakeArgs(c, opA, "0")
		argsB := spec.MakeArgs(c, opB, "1")

		sa := sp.NewState(c, opt.Config)
		xa := &spec.Exec{C: c, S: sa, Cfg: opt.Config}
		rA0 := opA.Exec(xa, "0", argsA)
		rA1 := opB.Exec(xa, "1", argsB)

		sb := sp.NewState(c, opt.Config)
		xb := &spec.Exec{C: c, S: sb, Cfg: opt.Config}
		rB1 := opB.Exec(xb, "1", argsB)
		rB0 := opA.Exec(xb, "0", argsA)

		eq := sym.And(
			spec.RetEq(rA0, rB0),
			spec.RetEq(rA1, rB1),
			spec.Equivalent(c, sa, sb))
		return pathData{
			eq:     eq,
			stateA: sa, stateB: sb,
			retsA: [2][]*sym.Expr{rA0, rA1},
			retsB: [2][]*sym.Expr{rB0, rB1},
		}
	}, symx.Options{MaxPaths: opt.MaxPaths, Solver: solver})
	if err != nil {
		return PairResult{}, err
	}

	res := PairResult{Spec: sp.Name(), OpA: opA.Name, OpB: opB.Name, Budgeted: budgeted}
	for _, p := range paths {
		if cerr := ctx.Err(); cerr != nil {
			return PairResult{}, cerr
		}
		d := p.Result.(pathData)
		cc := sym.And(p.PC, d.eq)
		chk := newChecker(solver, p.Witness, p.PC)
		commutes, cu := chk.sat(d.eq)
		diverges, du := chk.divergeSat(d.eq)
		pp := PairPath{
			PC:          p.PC,
			Eq:          d.eq,
			CommuteCond: cc,
			Commutes:    commutes,
			CanDiverge:  diverges,
			Unknown:     p.Budgeted || cu || du,
			StateA:      d.stateA,
			StateB:      d.stateB,
			RetsA:       d.retsA,
			RetsB:       d.retsB,
			VarKinds:    p.VarKinds,
		}
		res.Paths = append(res.Paths, pp)
	}
	// Cancellation during the last path's classification would otherwise
	// escape as a "successful" result whose Stop-hook-aborted searches
	// read as spurious Unknowns; nothing partial may escape.
	if err := ctx.Err(); err != nil {
		return PairResult{}, err
	}
	return res, nil
}

// checker classifies one path's satisfiability questions against a fixed
// path condition. The witness verdict on the path condition is computed
// once per path — every per-conjunct question then only evaluates its own
// conjunct under the witness before falling back to a cone-of-influence
// solver search.
type checker struct {
	solver  *sym.Solver
	w       sym.Model
	pc      *sym.Expr
	pcConjs []*sym.Expr
	pcSet   map[*sym.Expr]struct{} // pointer-identity set of pc conjuncts
	pcTrue  bool                   // w decides pc true
}

func newChecker(solver *sym.Solver, w sym.Model, pc *sym.Expr) *checker {
	c := &checker{solver: solver, w: w, pc: pc, pcConjs: sym.Conjuncts(pc)}
	c.pcSet = make(map[*sym.Expr]struct{}, len(c.pcConjs))
	for _, cj := range c.pcConjs {
		c.pcSet[cj] = struct{}{}
	}
	if w != nil {
		if v, ok := w.TryEval(pc); ok && v.Bool {
			c.pcTrue = true
		}
	}
	return c
}

// sat checks satisfiability of pc ∧ extra (pc known satisfiable). unknown
// reports that an unsatisfiable answer came from a budget-truncated
// search and is therefore not a proof. Hash-consing gives two syntactic
// short-circuits before any search: extra already among pc's conjuncts
// (satisfiable by the pc invariant) and extra the negation of one
// (unsatisfiable outright).
func (c *checker) sat(extra *sym.Expr) (sat, unknown bool) {
	if _, ok := c.pcSet[extra]; ok {
		return true, false
	}
	// sym.Not canonicalizes (double negation folds), so this single
	// lookup finds the pc conjunct refuting extra at either polarity.
	if _, ok := c.pcSet[sym.Not(extra)]; ok {
		return false, false
	}
	if c.pcTrue {
		if v, ok := c.w.TryEval(extra); ok && v.Bool {
			return true, false
		}
	}
	if _, ok := c.solver.SatAssumingConjs(c.pcConjs, extra); ok {
		return true, false
	}
	return false, c.solver.Budget()
}

// divergeSat checks whether pc ∧ ¬eq is satisfiable. eq is a conjunction,
// and ¬(c1 ∧ … ∧ cn) is satisfiable with pc iff some pc ∧ ¬ci is, so the
// check decomposes into small per-conjunct problems whose cones of
// influence stay narrow.
func (c *checker) divergeSat(eq *sym.Expr) (sat, unknown bool) {
	for _, conj := range sym.Conjuncts(eq) {
		s, u := c.sat(sym.Not(conj))
		if s {
			return true, false
		}
		unknown = unknown || u
	}
	return false, unknown
}

// AnalyzeAll analyzes every unordered pair drawn from ops (including
// self-pairs), invoking report after each pair if non-nil.
func AnalyzeAll(sp spec.Spec, ops []*spec.Op, opt Options, report func(PairResult)) []PairResult {
	var out []PairResult
	for i, a := range ops {
		for _, b := range ops[:i+1] {
			r := AnalyzePair(sp, b, a, opt)
			out = append(out, r)
			if report != nil {
				report(r)
			}
		}
	}
	return out
}

// Unknown counts the paths whose classification hit the solver budget.
// A budget-truncated exploration that left no surviving paths counts as
// one unknown, so the pair can never silently read as "no feasible
// executions".
func (r *PairResult) Unknown() int {
	n := 0
	for _, p := range r.Paths {
		if p.Unknown {
			n++
		}
	}
	if n == 0 && r.Budgeted {
		return 1
	}
	return n
}

// Summary describes a pair's commutativity in one line. Budget-truncated
// classifications are called out so an under-approximated pair is never
// read as "never commutes".
func (r *PairResult) Summary() string {
	nc, nd := 0, 0
	for _, p := range r.Paths {
		if p.Commutes {
			nc++
		}
		if p.CanDiverge {
			nd++
		}
	}
	s := fmt.Sprintf("%s x %s: %d paths, %d commutative, %d order-dependent",
		r.OpA, r.OpB, len(r.Paths), nc, nd)
	if nu := r.Unknown(); nu > 0 {
		s += fmt.Sprintf(", %d unknown (solver budget exhausted)", nu)
	}
	return s
}
