package symx

import (
	"testing"

	"repro/internal/sym"
)

var nameSort = sym.Uninterpreted("Name")

func mkVal(c *Context, tag string) Value {
	return NewStruct("inum", c.Var(tag+".inum", sym.IntSort, KindState))
}

func TestStructWithReplacesField(t *testing.T) {
	s := NewStruct("a", sym.Int(1), "b", sym.Int(2))
	s2 := s.With("a", sym.Int(9))
	if s2.Get("a").Int != 9 || s2.Get("b").Int != 2 {
		t.Errorf("With: got a=%v b=%v", s2.Get("a"), s2.Get("b"))
	}
	if s.Get("a").Int != 1 {
		t.Error("With must not mutate the receiver")
	}
}

func TestDictSetGetDel(t *testing.T) {
	paths := Run(func(c *Context) any {
		d := NewDict("fs", mkVal)
		k := K(c.Var("a", nameSort, KindArg))
		d.Set(c, k, NewStruct("inum", sym.Int(7)))
		if !d.Contains(c, k) {
			t.Error("Set then Contains must be true")
		}
		v := d.Get(c, k).(*Struct)
		if v.Get("inum").Int != 7 {
			t.Errorf("Get after Set: %v", v.Get("inum"))
		}
		d.Del(c, k)
		if d.Contains(c, k) {
			t.Error("Del then Contains must be false")
		}
		return nil
	}, Options{})
	if len(paths) != 1 {
		t.Fatalf("no forks expected once the key is in the overlay, got %d paths", len(paths))
	}
}

func TestDictInitialProbeForks(t *testing.T) {
	paths := Run(func(c *Context) any {
		d := NewDict("fs", mkVal)
		k := K(c.Var("a", nameSort, KindArg))
		return d.Contains(c, k)
	}, Options{})
	if len(paths) != 2 {
		t.Fatalf("first probe must fork on membership, got %d paths", len(paths))
	}
}

func TestDictAliasedKeysShareEntry(t *testing.T) {
	// Probing two possibly-equal keys forks; in the equal branch the
	// second probe must observe the first key's value.
	paths := Run(func(c *Context) any {
		d := NewDict("fs", mkVal)
		a := c.Var("a", nameSort, KindArg)
		b := c.Var("b", nameSort, KindArg)
		d.Set(c, K(a), NewStruct("inum", sym.Int(3)))
		equal := c.Branch(sym.Eq(a, b))
		if equal {
			got := d.Get(c, K(b)).(*Struct)
			if got.Get("inum").Int != 3 {
				t.Errorf("aliased key saw %v", got.Get("inum"))
			}
		}
		return equal
	}, Options{})
	var sawEqual bool
	for _, p := range paths {
		if p.Result.(bool) {
			sawEqual = true
		}
	}
	if !sawEqual {
		t.Error("no path explored the aliased case")
	}
}

func TestDictsEquivalentDetectsDifference(t *testing.T) {
	paths := Run(func(c *Context) any {
		d1 := NewDict("fs", mkVal)
		d2 := NewDict("fs", mkVal)
		k := K(c.Var("a", nameSort, KindArg))
		d1.Set(c, k, NewStruct("inum", sym.Int(1)))
		d2.Set(c, k, NewStruct("inum", sym.Int(2)))
		return DictsEquivalent(c, d1, d2)
	}, Options{})
	var s sym.Solver
	for _, p := range paths {
		if s.Sat(sym.And(p.PC, p.Result.(*sym.Expr))) {
			t.Errorf("dicts with different values reported equivalent under %v", p.PC)
		}
	}
}

func TestDictsEquivalentPresenceMismatch(t *testing.T) {
	paths := Run(func(c *Context) any {
		d1 := NewDict("fs", mkVal)
		d2 := NewDict("fs", mkVal)
		k := K(c.Var("a", nameSort, KindArg))
		d1.Set(c, k, NewStruct("inum", sym.Int(1)))
		d2.Del(c, k)
		return DictsEquivalent(c, d1, d2)
	}, Options{})
	var s sym.Solver
	for _, p := range paths {
		if s.Sat(sym.And(p.PC, p.Result.(*sym.Expr))) {
			t.Error("present-vs-deleted dicts reported equivalent")
		}
	}
}

func TestDictsEquivalentSameWrites(t *testing.T) {
	paths := Run(func(c *Context) any {
		d1 := NewDict("fs", mkVal)
		d2 := NewDict("fs", mkVal)
		a := c.Var("a", nameSort, KindArg)
		b := c.Var("b", nameSort, KindArg)
		// Write the same values in different orders.
		d1.Set(c, K(a), NewStruct("inum", sym.Int(1)))
		d1.Set(c, K(b), NewStruct("inum", sym.Int(2)))
		d2.Set(c, K(b), NewStruct("inum", sym.Int(2)))
		d2.Set(c, K(a), NewStruct("inum", sym.Int(1)))
		return DictsEquivalent(c, d1, d2)
	}, Options{})
	var s sym.Solver
	for _, p := range paths {
		eq := p.Result.(*sym.Expr)
		// Where a != b the orders are fully equivalent. Where a == b the
		// last writer differs (1 vs 2 at the shared key), so equivalence
		// must fail there — exactly the paper's order-dependence signal.
		aNeB := sym.Ne(sym.Var("a", nameSort), sym.Var("b", nameSort))
		if !s.Valid(sym.Implies(sym.And(p.PC, aNeB), eq)) {
			t.Errorf("distinct-key writes should commute under %v", p.PC)
		}
		if s.Sat(sym.And(p.PC, sym.Eq(sym.Var("a", nameSort), sym.Var("b", nameSort)), eq)) {
			t.Errorf("same-key conflicting writes should not commute under %v", p.PC)
		}
	}
}

func TestTupleKeys(t *testing.T) {
	paths := Run(func(c *Context) any {
		d := NewDict("pages", mkVal)
		ino := c.Var("ino", sym.IntSort, KindArg)
		d.Set(c, K(ino, sym.Int(0)), NewStruct("inum", sym.Int(10)))
		d.Set(c, K(ino, sym.Int(1)), NewStruct("inum", sym.Int(11)))
		v0 := d.Get(c, K(ino, sym.Int(0))).(*Struct)
		v1 := d.Get(c, K(ino, sym.Int(1))).(*Struct)
		if v0.Get("inum").Int != 10 || v1.Get("inum").Int != 11 {
			t.Errorf("tuple keys collided: %v %v", v0.Get("inum"), v1.Get("inum"))
		}
		return nil
	}, Options{})
	if len(paths) != 1 {
		t.Fatalf("distinct constant tuple keys must not fork, got %d paths", len(paths))
	}
}

func TestGetOrDefault(t *testing.T) {
	Run(func(c *Context) any {
		d := NewDict("fs", mkVal)
		k := K(c.Var("a", nameSort, KindArg))
		def := NewStruct("inum", sym.Int(-1))
		v := d.GetOr(c, k, def).(*Struct)
		if d.Contains(c, k) {
			if v.Get("inum") == def.Get("inum") {
				t.Error("present key returned default")
			}
		} else if v.Get("inum").Int != -1 {
			t.Error("absent key did not return default")
		}
		return nil
	}, Options{})
}
