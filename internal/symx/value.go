package symx

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sym"
)

// Value is the interface of symbolic values stored in model state: either a
// plain expression (*sym.Expr) or a Struct of named expression fields.
// Keeping values flat (no nested dictionaries) keeps equivalence formulas
// quantifier-free; models flatten nesting with tuple dictionary keys
// instead (e.g. file pages live in a Dict keyed by (inode, offset)).
type Value interface {
	valueMarker()
}

// ExprValue wraps a plain expression as a Value.
type ExprValue struct{ E *sym.Expr }

func (ExprValue) valueMarker() {}

// Struct is an ordered collection of named expression fields.
type Struct struct {
	// Fields maps field name to expression; FieldOrder fixes iteration.
	Fields     map[string]*sym.Expr
	FieldOrder []string
}

func (*Struct) valueMarker() {}

// NewStruct builds a struct from alternating name, expr pairs.
func NewStruct(pairs ...any) *Struct {
	if len(pairs)%2 != 0 {
		panic("symx: NewStruct requires name/expr pairs")
	}
	s := &Struct{Fields: map[string]*sym.Expr{}}
	for i := 0; i < len(pairs); i += 2 {
		name := pairs[i].(string)
		e := pairs[i+1].(*sym.Expr)
		if _, dup := s.Fields[name]; dup {
			panic("symx: duplicate struct field " + name)
		}
		s.Fields[name] = e
		s.FieldOrder = append(s.FieldOrder, name)
	}
	return s
}

// Get returns the named field.
func (s *Struct) Get(name string) *sym.Expr {
	e, ok := s.Fields[name]
	if !ok {
		panic("symx: no struct field " + name)
	}
	return e
}

// With returns a copy of s with the named field replaced.
func (s *Struct) With(name string, e *sym.Expr) *Struct {
	if _, ok := s.Fields[name]; !ok {
		panic("symx: no struct field " + name)
	}
	ns := &Struct{Fields: make(map[string]*sym.Expr, len(s.Fields)), FieldOrder: s.FieldOrder}
	for k, v := range s.Fields {
		ns.Fields[k] = v
	}
	ns.Fields[name] = e
	return ns
}

// Key is a tuple of expressions indexing a Dict. Equality of keys is the
// conjunction of componentwise equalities.
type Key []*sym.Expr

// K builds a key from expressions.
func K(es ...*sym.Expr) Key { return Key(es) }

func (k Key) eq(o Key) *sym.Expr {
	if len(k) != len(o) {
		panic("symx: key arity mismatch")
	}
	conj := make([]*sym.Expr, len(k))
	for i := range k {
		conj[i] = sym.Eq(k[i], o[i])
	}
	return sym.And(conj...)
}

// tag renders a content-derived identity for naming initial-state variables.
func (k Key) tag() string {
	parts := make([]string, len(k))
	for i, e := range k {
		parts[i] = e.String()
	}
	return strings.Join(parts, ",")
}

// DictEntry records what one path knows about one dictionary key.
type DictEntry struct {
	Key Key
	// Present is this path's concrete knowledge of membership.
	Present bool
	// Val is the stored value when Present.
	Val Value
	// InitialProbe is true when the entry was created by probing
	// unconstrained initial state (as opposed to an explicit Set/Del);
	// TESTGEN uses these entries to materialize concrete initial states.
	InitialProbe bool
	// InitPresentVar is the membership variable for initial probes; nil
	// for total-function dictionaries, whose keys are always present.
	InitPresentVar *sym.Expr
	// InitVal snapshots the unconstrained initial value materialized at
	// probe time; unlike Val it is never overwritten by Set.
	InitVal Value
}

// Dict is a symbolic dictionary over tuple keys with unconstrained initial
// content. The first probe of a fresh key forks on a named membership
// variable and, when present, materializes an unconstrained value via
// MakeVal. Within one path, entry keys are pairwise distinct under the path
// condition (lookup branches on key equality before creating a new entry).
type Dict struct {
	// Name prefixes the content-derived variable names.
	Name string
	// MakeVal builds an unconstrained value for initial content at the
	// key with the given tag.
	MakeVal func(c *Context, tag string) Value

	entries []*DictEntry
}

// NewDict returns an empty-overlay dictionary with unconstrained initial
// content.
func NewDict(name string, makeVal func(c *Context, tag string) Value) *Dict {
	return &Dict{Name: name, MakeVal: makeVal}
}

// initProbe is one registered initial-content probe, shared across all
// same-named dictionaries of a Context so that differently-keyed probes of
// one location observe the same unconstrained content.
type initProbe struct {
	key Key
	// presentVar is nil for total-function probes (always present).
	presentVar *sym.Expr
	val        Value
}

// lookup finds or creates the entry governing key k on this path. A miss in
// this dictionary's overlay first consults the Context's initial-probe
// registry: if k equals a location some same-named dictionary already
// probed, the same membership variable and value are observed; otherwise a
// fresh probe is registered.
func (d *Dict) lookup(c *Context, k Key) *DictEntry {
	for _, e := range d.entries {
		if c.Branch(k.eq(e.Key)) {
			return e
		}
	}
	for _, ip := range c.initProbes[d.Name] {
		if ip.presentVar == nil {
			continue // total-function probe; lookup callers never made it
		}
		if c.Branch(k.eq(ip.key)) {
			e := &DictEntry{
				Key: k, Present: c.Branch(ip.presentVar),
				InitialProbe: true, InitPresentVar: ip.presentVar,
			}
			if e.Present {
				e.Val = ip.val
				e.InitVal = ip.val
			}
			d.entries = append(d.entries, e)
			return e
		}
	}
	tag := fmt.Sprintf("%s[%s]", d.Name, k.tag())
	pv := c.Var(tag+".present", sym.BoolSort, KindState)
	present := c.Branch(pv)
	e := &DictEntry{Key: k, Present: present, InitialProbe: true, InitPresentVar: pv}
	ip := &initProbe{key: k, presentVar: pv}
	if present {
		e.Val = d.MakeVal(c, tag)
		e.InitVal = e.Val
		ip.val = e.Val
	}
	d.entries = append(d.entries, e)
	c.initProbes[d.Name] = append(c.initProbes[d.Name], ip)
	return e
}

// GetFunc is a total-function view: the key is considered always present,
// and a fresh unconstrained value is materialized on first access without
// forking on membership. Use this for tables indexed by identifiers that
// always resolve (inode metadata, pipe cursors). Initial content is shared
// through the Context registry like lookup's.
func (d *Dict) GetFunc(c *Context, k Key) Value {
	for _, e := range d.entries {
		if c.Branch(k.eq(e.Key)) {
			if !e.Present {
				panic("symx: GetFunc after Del in " + d.Name)
			}
			return e.Val
		}
	}
	for _, ip := range c.initProbes[d.Name] {
		if ip.presentVar != nil || ip.val == nil {
			continue
		}
		if c.Branch(k.eq(ip.key)) {
			e := &DictEntry{Key: k, Present: true, Val: ip.val, InitialProbe: true, InitVal: ip.val}
			d.entries = append(d.entries, e)
			return e.Val
		}
	}
	tag := fmt.Sprintf("%s[%s]", d.Name, k.tag())
	v := d.MakeVal(c, tag)
	e := &DictEntry{Key: k, Present: true, Val: v, InitialProbe: true, InitVal: v}
	d.entries = append(d.entries, e)
	c.initProbes[d.Name] = append(c.initProbes[d.Name], &initProbe{key: k, val: v})
	return e.Val
}

// Contains reports (per-path concretely) whether k is present.
func (d *Dict) Contains(c *Context, k Key) bool { return d.lookup(c, k).Present }

// Get returns the value at k; the caller must have established presence.
func (d *Dict) Get(c *Context, k Key) Value {
	e := d.lookup(c, k)
	if !e.Present {
		panic("symx: Get of absent key in " + d.Name)
	}
	return e.Val
}

// GetOr returns the value at k, or def when absent.
func (d *Dict) GetOr(c *Context, k Key, def Value) Value {
	e := d.lookup(c, k)
	if !e.Present {
		return def
	}
	return e.Val
}

// lookupWrite is like lookup but does not probe unconstrained initial
// membership: a write overwrites whatever was there, so the prior state is
// irrelevant and forking on it would only multiply paths.
func (d *Dict) lookupWrite(c *Context, k Key) *DictEntry {
	for _, e := range d.entries {
		if c.Branch(k.eq(e.Key)) {
			return e
		}
	}
	e := &DictEntry{Key: k}
	d.entries = append(d.entries, e)
	return e
}

// Set stores v at k.
func (d *Dict) Set(c *Context, k Key, v Value) {
	e := d.lookupWrite(c, k)
	e.Present = true
	e.Val = v
}

// Del removes k.
func (d *Dict) Del(c *Context, k Key) {
	e := d.lookupWrite(c, k)
	e.Present = false
	e.Val = nil
}

// Entries exposes the per-path entry overlay (for TESTGEN and equivalence).
func (d *Dict) Entries() []*DictEntry { return d.entries }

// presentAt builds, without branching, the membership formula of key k:
// an ITE chain over the overlay entries with the initial-content membership
// variable as the default.
func (d *Dict) presentAt(c *Context, k Key) *sym.Expr {
	// The default for keys outside this dictionary's overlay is the
	// initial content: a registered probe's membership variable if the
	// location was probed anywhere, else a fresh tag-derived variable.
	tag := fmt.Sprintf("%s[%s]", d.Name, k.tag())
	res := c.Var(tag+".present", sym.BoolSort, KindState)
	for _, ip := range c.initProbes[d.Name] {
		if ip.presentVar != nil {
			res = sym.Ite(ip.key.eq(k), ip.presentVar, res)
		} else {
			res = sym.Ite(ip.key.eq(k), sym.True, res)
		}
	}
	// Later entries were written later; an overlay entry whose key equals
	// k overrides the default. Entries are pairwise distinct under the
	// path condition, so at most one guard is true and order among
	// entries is immaterial; entry-vs-default priority is what matters.
	for _, e := range d.entries {
		res = sym.Ite(e.Key.eq(k), sym.Bool(e.Present), res)
	}
	return res
}

// fieldAt builds the formula for field f of the value at key k, defaulting
// to the initial-content value for keys outside the overlay. For absent
// entries the default variable is used; callers must guard by presence.
func (d *Dict) fieldAt(c *Context, k Key, f string) *sym.Expr {
	tag := fmt.Sprintf("%s[%s]", d.Name, k.tag())
	def := d.MakeVal(c, tag)
	res := fieldOf(def, f)
	for _, ip := range c.initProbes[d.Name] {
		if ip.val == nil {
			continue
		}
		res = sym.Ite(ip.key.eq(k), fieldOf(ip.val, f), res)
	}
	for _, e := range d.entries {
		var v *sym.Expr
		if e.Present {
			v = fieldOf(e.Val, f)
		} else {
			v = res // masked by the presence guard
		}
		res = sym.Ite(e.Key.eq(k), v, res)
	}
	return res
}

func fieldOf(v Value, f string) *sym.Expr {
	switch x := v.(type) {
	case ExprValue:
		if f != "" {
			panic("symx: field access on plain expression value")
		}
		return x.E
	case *Struct:
		return x.Get(f)
	}
	panic(fmt.Sprintf("symx: bad value %T", v))
}

func valueFields(v Value) []string {
	switch x := v.(type) {
	case ExprValue:
		return []string{""}
	case *Struct:
		out := append([]string(nil), x.FieldOrder...)
		sort.Strings(out)
		return out
	}
	panic(fmt.Sprintf("symx: bad value %T", v))
}

// DictsEquivalent builds the formula stating that dictionaries a and b hold
// equal content at every key either path touched. Untouched keys share the
// same initial-content variables by construction (content-derived naming),
// so they are equal by definition and need no clauses.
func DictsEquivalent(c *Context, a, b *Dict) *sym.Expr {
	if a.Name != b.Name {
		panic("symx: comparing dictionaries with different identities")
	}
	keys := unionKeys(a, b)
	conj := make([]*sym.Expr, 0, len(keys))
	for _, k := range keys {
		pa := a.presentAt(c, k)
		pb := b.presentAt(c, k)
		clause := sym.Eq(pa, pb)
		fields := fieldSetAt(a, b, k)
		for _, f := range fields {
			fa := a.fieldAt(c, k, f)
			fb := b.fieldAt(c, k, f)
			clause = sym.And(clause, sym.Implies(pa, sym.Eq(fa, fb)))
		}
		conj = append(conj, clause)
	}
	return sym.And(conj...)
}

// unionKeys returns the syntactically-deduplicated union of overlay keys.
func unionKeys(a, b *Dict) []Key {
	var keys []Key
	seen := map[string]bool{}
	for _, d := range []*Dict{a, b} {
		for _, e := range d.entries {
			t := e.Key.tag()
			if !seen[t] {
				seen[t] = true
				keys = append(keys, e.Key)
			}
		}
	}
	return keys
}

// fieldSetAt finds the field names of values stored near key k, falling
// back to the MakeVal shape. All values in one dictionary share a shape.
func fieldSetAt(a, b *Dict, k Key) []string {
	for _, d := range []*Dict{a, b} {
		for _, e := range d.entries {
			if e.Present && e.Val != nil {
				return valueFields(e.Val)
			}
		}
	}
	// No present entry anywhere: only membership matters.
	return nil
}
