// Package symx is a symbolic execution harness for interface models
// written in Go. It plays the role COMMUTER's symbolic Python interpreter
// played in the original prototype: a model is an ordinary Go function that
// manipulates symbolic state through a Context; symx explores every feasible
// path by fork-and-replay, accumulating a path condition per path.
//
// Models must be deterministic: given the same branch decisions they must
// perform the same Context calls in the same order. All state reachable by a
// model must be rebuilt inside the model function (replay re-executes it
// from scratch for each path).
package symx

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/sym"
)

// VarKind classifies the symbolic variables a model creates, so downstream
// tools (TESTGEN) can tell operation arguments from initial-state content
// from nondeterministic outputs.
type VarKind int

const (
	// KindArg marks operation arguments.
	KindArg VarKind = iota
	// KindState marks unconstrained initial-state content.
	KindState
	// KindNondet marks nondeterministic outputs (e.g. freshly allocated
	// inode numbers); equivalence checks existentially quantify these.
	KindNondet
)

// abort is the panic sentinel used to abandon an infeasible path.
type abort struct{ reason string }

// Context carries the path condition and branch-decision trace for one
// symbolic path. Model code receives a Context and calls Branch/Assume/
// fresh-variable helpers on it.
type Context struct {
	solver *sym.Solver
	// The path condition is maintained as its conjunct list plus a
	// pointer-identity set for deduplication (conjuncts are hash-consed,
	// so pointer equality is structural equality). It only ever grows by
	// conjunction, so the list is append-only: conjuncts keep their
	// position for the life of the path, and the conjunction node itself
	// is materialized once per completed path instead of once per
	// branch. The list is kept exactly equal to
	// sym.Conjuncts(sym.And(pcConjs...)).
	pcConjs []*sym.Expr
	pcSet   map[*sym.Expr]struct{}

	trace []bool // prerecorded decisions for replay
	pos   int    // next decision index

	pending  [][]bool // alternative decision prefixes discovered this run
	varKinds map[string]VarKind
	varSorts map[string]sym.Sort
	vars     map[string]*sym.Expr // memoized named variables

	// witness is a model known to satisfy pc; it lets Branch and Assume
	// skip solver calls when the witness already decides a condition.
	witness sym.Model
	// witOK counts the leading pcConjs the current witness is known to
	// satisfy. Because pcConjs is append-only and conjunct verdicts are
	// fixed under a fixed witness, each witness check only evaluates the
	// conjuncts beyond this high-water mark (plus the new condition)
	// instead of re-walking the whole path condition; witness merges
	// reset the mark, since overlaid values can flip earlier verdicts.
	witOK int

	// infeas caches conditions proven unsatisfiable with the path
	// condition. The path condition only grows, so infeasibility is
	// monotone: once pc ∧ cond is unsatisfiable it stays unsatisfiable,
	// and dictionary lookups that re-branch on the same (hash-consed,
	// pointer-identical) key equalities skip the repeated refutation.
	infeas map[*sym.Expr]struct{}

	// budgeted records that some feasibility check exhausted the
	// solver's step budget, so an "infeasible" answer along this path
	// may actually be unknown.
	budgeted bool

	// initProbes registers, per dictionary name, the initial-content
	// probes made by any dictionary instance, so that two states built
	// from the same unconstrained initial state observe identical
	// content even when they first probe a location under semantically
	// equal but syntactically different keys.
	initProbes map[string][]*initProbe
}

func newContext(trace []bool, solver *sym.Solver) *Context {
	return &Context{
		solver:     solver,
		pcSet:      map[*sym.Expr]struct{}{},
		infeas:     map[*sym.Expr]struct{}{},
		trace:      trace,
		varKinds:   map[string]VarKind{},
		varSorts:   map[string]sym.Sort{},
		vars:       map[string]*sym.Expr{},
		initProbes: map[string][]*initProbe{},
	}
}

// PC returns the current path condition.
func (c *Context) PC() *sym.Expr { return sym.And(c.pcConjs...) }

// Var returns the memoized named variable, creating it with the given sort
// and kind on first use. Names are content-derived by callers (for example
// "fs[a].present"), which keeps variable identities stable across the
// replays of different paths and permutations.
func (c *Context) Var(name string, s sym.Sort, kind VarKind) *sym.Expr {
	if v, ok := c.vars[name]; ok {
		if c.varSorts[name] != s {
			panic(fmt.Sprintf("symx: variable %q redeclared at sort %v (was %v)", name, s, c.varSorts[name]))
		}
		return v
	}
	v := sym.Var(name, s)
	c.vars[name] = v
	c.varKinds[name] = kind
	c.varSorts[name] = s
	return v
}

// VarKinds returns a copy of the kind classification of every variable the
// path created.
func (c *Context) VarKinds() map[string]VarKind {
	out := make(map[string]VarKind, len(c.varKinds))
	for k, v := range c.varKinds {
		out[k] = v
	}
	return out
}

// Abort abandons the current path unconditionally. Models use it to prune
// branches excluded by nondeterministic choice (e.g. "the kernel picks an
// unused descriptor", so the branch where the choice collides is dropped).
func (c *Context) Abort() {
	panic(abort{reason: "model abort"})
}

// addPC conjoins cond onto the path condition: cond's top-level conjuncts
// are appended, skipping ones already present, exactly mirroring what
// sym.And's flatten-and-dedup would produce. cond must not be False (the
// callers abort or return before reaching here).
func (c *Context) addPC(cond *sym.Expr) {
	for _, cj := range sym.Conjuncts(cond) {
		if _, dup := c.pcSet[cj]; dup {
			continue
		}
		c.pcSet[cj] = struct{}{}
		c.pcConjs = append(c.pcConjs, cj)
	}
}

// witnessDecides reports whether the cached witness decides pc ∧ cond
// true. The witness is heuristic (merges can go stale against replayed
// constraints), so it must decide the whole path condition, not just
// cond, before it is trusted; the witOK high-water mark makes the pc part
// incremental — only conjuncts not yet verified under the current witness
// are evaluated.
func (c *Context) witnessDecides(cond *sym.Expr) bool {
	if c.witness == nil {
		return false
	}
	for c.witOK < len(c.pcConjs) {
		v, ok := c.witness.TryEval(c.pcConjs[c.witOK])
		if !ok || !v.Bool {
			return false
		}
		c.witOK++
	}
	if cond.IsTrue() {
		return true
	}
	v, ok := c.witness.TryEval(cond)
	return ok && v.Bool
}

// pcImplies reports that cond (or each of its conjuncts) is already a
// path-condition conjunct, so pc ∧ cond ≡ pc — satisfiable by invariant.
// Hash-consing makes this a pointer lookup.
func (c *Context) pcImplies(cond *sym.Expr) bool {
	if _, ok := c.pcSet[cond]; ok {
		return true
	}
	if cond.Op != sym.OpAnd {
		return false
	}
	for _, cj := range cond.Args {
		if _, ok := c.pcSet[cj]; !ok {
			return false
		}
	}
	return true
}

// pcRefutes reports that the path condition syntactically contains cond's
// negation (or the negation of one of cond's conjuncts), so pc ∧ cond is
// unsatisfiable without a search. sym.Not canonicalizes — for an OpNot
// argument it returns the inner node — so one lookup covers both
// polarities.
func (c *Context) pcRefutes(cond *sym.Expr) bool {
	if _, ok := c.pcSet[sym.Not(cond)]; ok {
		return true
	}
	if cond.Op == sym.OpAnd {
		for _, cj := range cond.Args {
			if _, ok := c.pcSet[sym.Not(cj)]; ok {
				return true
			}
		}
	}
	return false
}

// Assume conjoins cond onto the path condition, abandoning the path if it
// becomes unsatisfiable.
func (c *Context) Assume(cond *sym.Expr) {
	if cond.IsTrue() {
		return
	}
	if cond.IsFalse() || c.pcRefutes(cond) {
		panic(abort{reason: "assumption unsatisfiable"})
	}
	if c.pcImplies(cond) {
		return // already a conjunct: nothing to add or check
	}
	if c.witnessDecides(cond) {
		c.addPC(cond)
		return
	}
	m, ok := c.solver.SatAssumingConjs(c.pcConjs, cond)
	if !ok {
		if c.solver.Budget() {
			c.budgeted = true
		}
		panic(abort{reason: "assumption unsatisfiable"})
	}
	c.mergeWitness(m)
	c.addPC(cond)
}

// mergeWitness overlays a cone model onto the cached witness. The cone's
// variables are disjoint from the conjuncts the cone excluded, so the
// overlay still satisfies the whole path condition.
func (c *Context) mergeWitness(m sym.Model) {
	if len(m) == 0 {
		// No-op overlay: verified conjuncts stay verified, and a still-
		// missing witness stays nil (an empty model can't decide any
		// later condition, it would only blunt the witness fast paths).
		return
	}
	if c.witness == nil {
		c.witness = m.Clone()
		c.witOK = 0
		return
	}
	merged := c.witness.Clone()
	for k, v := range m {
		merged[k] = v
	}
	c.witness = merged
	// Overlaid values can flip conjuncts the old witness satisfied, so
	// the verified prefix must be rechecked from the start.
	c.witOK = 0
}

// feasible reports whether pc ∧ cond is satisfiable (pc is known
// satisfiable — the invariant every admitted constraint preserves). The
// cached witness is consulted first; when it doesn't decide the
// conjunction, a cone-of-influence search runs and its model is returned
// for merging.
func (c *Context) feasible(cond *sym.Expr) (sym.Model, bool) {
	if cond.IsFalse() {
		return nil, false
	}
	if _, bad := c.infeas[cond]; bad {
		return nil, false // monotone: infeasible once, infeasible forever
	}
	if c.pcImplies(cond) {
		return nil, true
	}
	if c.pcRefutes(cond) {
		c.infeas[cond] = struct{}{}
		return nil, false
	}
	if c.witnessDecides(cond) {
		return nil, true
	}
	m, ok := c.solver.SatAssumingConjs(c.pcConjs, cond)
	if !ok {
		c.infeas[cond] = struct{}{}
		if c.solver.Budget() {
			c.budgeted = true
		}
	}
	return m, ok
}

// Branch explores both sides of cond. It returns the concrete decision for
// this path and adds the corresponding constraint to the path condition.
// When both sides are feasible, the unexplored side is queued for a later
// replay.
func (c *Context) Branch(cond *sym.Expr) bool {
	if cond.IsTrue() {
		return true
	}
	if cond.IsFalse() {
		return false
	}
	if c.pos < len(c.trace) {
		d := c.trace[c.pos]
		c.pos++
		if d {
			c.addPC(cond)
		} else {
			c.addPC(sym.Not(cond))
		}
		return d
	}
	tModel, tSat := c.feasible(cond)
	fModel, fSat := c.feasible(sym.Not(cond))
	switch {
	case tSat && fSat:
		// The trace holds only decided prefixes; c.pos == len(c.trace)
		// here, so the alternative is "everything so far, then false".
		alt := make([]bool, c.pos+1)
		copy(alt, c.traceSoFar())
		alt[c.pos] = false
		c.pending = append(c.pending, alt)
		c.takeDecision(true)
		c.addPC(cond)
		c.mergeWitness(tModel)
		return true
	case tSat:
		c.takeDecision(true)
		c.addPC(cond)
		c.mergeWitness(tModel)
		return true
	case fSat:
		c.takeDecision(false)
		c.addPC(sym.Not(cond))
		c.mergeWitness(fModel)
		return false
	default:
		panic(abort{reason: "both branch directions infeasible"})
	}
}

func (c *Context) traceSoFar() []bool { return c.trace[:c.pos] }

func (c *Context) takeDecision(d bool) {
	c.trace = append(c.trace[:c.pos], d)
	c.pos++
}

// Path is the outcome of one feasible execution path.
type Path struct {
	// PC is the path condition.
	PC *sym.Expr
	// Result is whatever the model function returned.
	Result any
	// VarKinds classifies every symbolic variable the path mentions.
	VarKinds map[string]VarKind
	// Witness is a model satisfying PC (possibly partial with respect to
	// variables created after the last solver call). Downstream checks
	// can try it before paying for a solver search.
	Witness sym.Model
	// Budgeted reports that a feasibility check during the exploration
	// exhausted the solver's step budget. The flag is aggregated across
	// the whole run — including replays that aborted *because* of a
	// truncated check, whose own paths never surface — so any path of an
	// affected exploration carries it: some branch somewhere reported
	// infeasible without proof and may have been wrongly pruned.
	// Downstream classification should treat the pair's negative answers
	// as unknown rather than definitive.
	Budgeted bool
}

// Options tunes path exploration.
type Options struct {
	// MaxPaths caps exploration (default 4096).
	MaxPaths int
	// Solver is used for feasibility checks; nil means a fresh default.
	Solver *sym.Solver
}

// Run symbolically executes fn, exploring every feasible path, and returns
// one Path per feasible complete execution.
func Run(fn func(*Context) any, opt Options) []Path {
	paths, _ := RunChecked(fn, opt)
	return paths
}

// RunChecked is Run plus the aggregated budget flag, which it also stamps
// on every returned path. The separate return matters when exploration is
// truncated so hard that *no* path survives: an empty path list with
// budgeted=true means "unknown", not "no feasible executions".
func RunChecked(fn func(*Context) any, opt Options) ([]Path, bool) {
	paths, budgeted, _ := RunCtx(context.Background(), fn, opt)
	return paths, budgeted
}

// RunCtx is RunChecked under a context: cancellation is observed between
// path replays, and — when RunCtx owns the solver — inside a replay's
// feasibility searches through the solver's Stop hook, so even a single
// long search cannot outlive the caller's deadline by much. On
// cancellation it returns ctx.Err() and whatever paths had completed;
// partial results from a cancelled exploration must not be interpreted
// (the caller is abandoning the work, not truncating it).
func RunCtx(ctx context.Context, fn func(*Context) any, opt Options) ([]Path, bool, error) {
	maxPaths := opt.MaxPaths
	if maxPaths == 0 {
		maxPaths = 4096
	}
	solver := opt.Solver
	if solver == nil {
		// A fresh solver is ours to wire: its Stop hook makes in-search
		// cancellation prompt. A caller-provided solver is left untouched
		// (it may be shared across calls under a different context), so
		// there cancellation lands at replay granularity.
		solver = &sym.Solver{Stop: func() bool { return ctx.Err() != nil }}
	}

	var paths []Path
	budgeted := false
	queue := [][]bool{nil}
	for len(queue) > 0 && len(paths) < maxPaths {
		if err := ctx.Err(); err != nil {
			return paths, budgeted, err
		}
		prefix := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		ctx := newContext(prefix, solver)
		res, aborted := runOne(ctx, fn)
		queue = append(queue, ctx.pending...)
		// Aggregate across replays, aborted ones included: a replay that
		// aborted because a truncated check said "infeasible" may have
		// been a real path, and only the surviving paths can carry that
		// news to the caller.
		budgeted = budgeted || ctx.budgeted
		if aborted {
			continue
		}
		paths = append(paths, Path{
			PC: ctx.PC(), Result: res, VarKinds: ctx.VarKinds(),
			Witness: ctx.witness,
		})
	}
	for i := range paths {
		paths[i].Budgeted = budgeted
	}
	return paths, budgeted, nil
}

// runOne executes fn once under ctx, converting abort panics into a flag.
func runOne(ctx *Context, fn func(*Context) any) (res any, aborted bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abort); ok {
				aborted = true
				return
			}
			panic(r)
		}
	}()
	return fn(ctx), false
}

// SortedVarNames returns the names of all variables of the given kind,
// sorted, from a VarKinds map.
func SortedVarNames(kinds map[string]VarKind, kind VarKind) []string {
	var names []string
	for n, k := range kinds {
		if k == kind {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}
