// Package symx is a symbolic execution harness for interface models
// written in Go. It plays the role COMMUTER's symbolic Python interpreter
// played in the original prototype: a model is an ordinary Go function that
// manipulates symbolic state through a Context; symx explores every feasible
// path by fork-and-replay, accumulating a path condition per path.
//
// Models must be deterministic: given the same branch decisions they must
// perform the same Context calls in the same order. All state reachable by a
// model must be rebuilt inside the model function (replay re-executes it
// from scratch for each path).
package symx

import (
	"fmt"
	"sort"

	"repro/internal/sym"
)

// VarKind classifies the symbolic variables a model creates, so downstream
// tools (TESTGEN) can tell operation arguments from initial-state content
// from nondeterministic outputs.
type VarKind int

const (
	// KindArg marks operation arguments.
	KindArg VarKind = iota
	// KindState marks unconstrained initial-state content.
	KindState
	// KindNondet marks nondeterministic outputs (e.g. freshly allocated
	// inode numbers); equivalence checks existentially quantify these.
	KindNondet
)

// abort is the panic sentinel used to abandon an infeasible path.
type abort struct{ reason string }

// Context carries the path condition and branch-decision trace for one
// symbolic path. Model code receives a Context and calls Branch/Assume/
// fresh-variable helpers on it.
type Context struct {
	solver *sym.Solver
	pc     *sym.Expr

	trace []bool // prerecorded decisions for replay
	pos   int    // next decision index

	pending  [][]bool // alternative decision prefixes discovered this run
	varKinds map[string]VarKind
	varSorts map[string]sym.Sort
	vars     map[string]*sym.Expr // memoized named variables

	// witness is a model known to satisfy pc; it lets Branch and Assume
	// skip solver calls when the witness already decides a condition.
	witness sym.Model

	// initProbes registers, per dictionary name, the initial-content
	// probes made by any dictionary instance, so that two states built
	// from the same unconstrained initial state observe identical
	// content even when they first probe a location under semantically
	// equal but syntactically different keys.
	initProbes map[string][]*initProbe
}

func newContext(trace []bool, solver *sym.Solver) *Context {
	return &Context{
		solver:     solver,
		pc:         sym.True,
		trace:      trace,
		varKinds:   map[string]VarKind{},
		varSorts:   map[string]sym.Sort{},
		vars:       map[string]*sym.Expr{},
		initProbes: map[string][]*initProbe{},
	}
}

// PC returns the current path condition.
func (c *Context) PC() *sym.Expr { return c.pc }

// Var returns the memoized named variable, creating it with the given sort
// and kind on first use. Names are content-derived by callers (for example
// "fs[a].present"), which keeps variable identities stable across the
// replays of different paths and permutations.
func (c *Context) Var(name string, s sym.Sort, kind VarKind) *sym.Expr {
	if v, ok := c.vars[name]; ok {
		if c.varSorts[name] != s {
			panic(fmt.Sprintf("symx: variable %q redeclared at sort %v (was %v)", name, s, c.varSorts[name]))
		}
		return v
	}
	v := sym.Var(name, s)
	c.vars[name] = v
	c.varKinds[name] = kind
	c.varSorts[name] = s
	return v
}

// VarKinds returns a copy of the kind classification of every variable the
// path created.
func (c *Context) VarKinds() map[string]VarKind {
	out := make(map[string]VarKind, len(c.varKinds))
	for k, v := range c.varKinds {
		out[k] = v
	}
	return out
}

// Abort abandons the current path unconditionally. Models use it to prune
// branches excluded by nondeterministic choice (e.g. "the kernel picks an
// unused descriptor", so the branch where the choice collides is dropped).
func (c *Context) Abort() {
	panic(abort{reason: "model abort"})
}

// Assume conjoins cond onto the path condition, abandoning the path if it
// becomes unsatisfiable.
func (c *Context) Assume(cond *sym.Expr) {
	if cond.IsTrue() {
		return
	}
	npc := sym.And(c.pc, cond)
	if npc.IsFalse() {
		panic(abort{reason: "assumption unsatisfiable"})
	}
	if c.witness != nil {
		// The witness is heuristic (merges can go stale against replayed
		// constraints), so it must decide the whole new path condition,
		// not just cond, before we trust it.
		if v, ok := c.witness.TryEval(npc); ok && v.Bool {
			c.pc = npc
			return
		}
	}
	m, ok := c.solver.SatAssuming(c.pc, cond)
	if !ok {
		panic(abort{reason: "assumption unsatisfiable"})
	}
	c.mergeWitness(m)
	c.pc = npc
}

// mergeWitness overlays a cone model onto the cached witness. The cone's
// variables are disjoint from the conjuncts the cone excluded, so the
// overlay still satisfies the whole path condition.
func (c *Context) mergeWitness(m sym.Model) {
	if c.witness == nil {
		c.witness = m.Clone()
		return
	}
	merged := c.witness.Clone()
	for k, v := range m {
		merged[k] = v
	}
	c.witness = merged
}

// feasible reports whether pc ∧ cond is satisfiable (pc is known
// satisfiable — the invariant every admitted constraint preserves). The
// cached witness is consulted first; because merges can leave it stale
// against replayed constraints, it must decide the whole conjunction, not
// just cond. Otherwise a cone-of-influence search runs and its model is
// returned for merging.
func (c *Context) feasible(cond *sym.Expr) (sym.Model, bool) {
	if cond.IsFalse() {
		return nil, false
	}
	if c.witness != nil {
		if v, ok := c.witness.TryEval(sym.And(c.pc, cond)); ok && v.Bool {
			return nil, true
		}
	}
	return c.solver.SatAssuming(c.pc, cond)
}

// Branch explores both sides of cond. It returns the concrete decision for
// this path and adds the corresponding constraint to the path condition.
// When both sides are feasible, the unexplored side is queued for a later
// replay.
func (c *Context) Branch(cond *sym.Expr) bool {
	if cond.IsTrue() {
		return true
	}
	if cond.IsFalse() {
		return false
	}
	if c.pos < len(c.trace) {
		d := c.trace[c.pos]
		c.pos++
		if d {
			c.pc = sym.And(c.pc, cond)
		} else {
			c.pc = sym.And(c.pc, sym.Not(cond))
		}
		return d
	}
	tModel, tSat := c.feasible(cond)
	fModel, fSat := c.feasible(sym.Not(cond))
	switch {
	case tSat && fSat:
		// The trace holds only decided prefixes; c.pos == len(c.trace)
		// here, so the alternative is "everything so far, then false".
		alt := make([]bool, c.pos+1)
		copy(alt, c.traceSoFar())
		alt[c.pos] = false
		c.pending = append(c.pending, alt)
		c.takeDecision(true)
		c.pc = sym.And(c.pc, cond)
		c.mergeWitness(tModel)
		return true
	case tSat:
		c.takeDecision(true)
		c.pc = sym.And(c.pc, cond)
		c.mergeWitness(tModel)
		return true
	case fSat:
		c.takeDecision(false)
		c.pc = sym.And(c.pc, sym.Not(cond))
		c.mergeWitness(fModel)
		return false
	default:
		panic(abort{reason: "both branch directions infeasible"})
	}
}

func (c *Context) traceSoFar() []bool { return c.trace[:c.pos] }

func (c *Context) takeDecision(d bool) {
	c.trace = append(c.trace[:c.pos], d)
	c.pos++
}

// Path is the outcome of one feasible execution path.
type Path struct {
	// PC is the path condition.
	PC *sym.Expr
	// Result is whatever the model function returned.
	Result any
	// VarKinds classifies every symbolic variable the path mentions.
	VarKinds map[string]VarKind
	// Witness is a model satisfying PC (possibly partial with respect to
	// variables created after the last solver call). Downstream checks
	// can try it before paying for a solver search.
	Witness sym.Model
}

// Options tunes path exploration.
type Options struct {
	// MaxPaths caps exploration (default 4096).
	MaxPaths int
	// Solver is used for feasibility checks; nil means a fresh default.
	Solver *sym.Solver
}

// Run symbolically executes fn, exploring every feasible path, and returns
// one Path per feasible complete execution.
func Run(fn func(*Context) any, opt Options) []Path {
	maxPaths := opt.MaxPaths
	if maxPaths == 0 {
		maxPaths = 4096
	}
	solver := opt.Solver
	if solver == nil {
		solver = &sym.Solver{}
	}

	var paths []Path
	queue := [][]bool{nil}
	for len(queue) > 0 && len(paths) < maxPaths {
		prefix := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		ctx := newContext(prefix, solver)
		res, aborted := runOne(ctx, fn)
		queue = append(queue, ctx.pending...)
		if aborted {
			continue
		}
		paths = append(paths, Path{PC: ctx.pc, Result: res, VarKinds: ctx.VarKinds(), Witness: ctx.witness})
	}
	return paths
}

// runOne executes fn once under ctx, converting abort panics into a flag.
func runOne(ctx *Context, fn func(*Context) any) (res any, aborted bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abort); ok {
				aborted = true
				return
			}
			panic(r)
		}
	}()
	return fn(ctx), false
}

// SortedVarNames returns the names of all variables of the given kind,
// sorted, from a VarKinds map.
func SortedVarNames(kinds map[string]VarKind, kind VarKind) []string {
	var names []string
	for n, k := range kinds {
		if k == kind {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}
