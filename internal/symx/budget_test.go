package symx

import (
	"testing"

	"repro/internal/sym"
)

// TestPathBudgetedFlag pins the exploration-side budget surface: when a
// feasibility check exhausts the solver's step budget, the completed path
// carries Budgeted=true so downstream classification can report unknown
// instead of trusting an unproven "infeasible".
func TestPathBudgetedFlag(t *testing.T) {
	run := func(maxSteps int) []Path {
		return Run(func(c *Context) any {
			x := c.Var("bgx", sym.IntSort, KindArg)
			c.Assume(sym.Eq(x, sym.Int(0))) // cheap: decided within any budget here
			y := c.Var("bgy", sym.IntSort, KindArg)
			z := c.Var("bgz", sym.IntSort, KindArg)
			// Unsatisfiable branch condition over two fresh variables: the
			// true-side refutation needs more steps than the tiny budget
			// allows, while the false side satisfies immediately.
			c.Branch(sym.And(sym.Lt(y, z), sym.Lt(z, y)))
			return nil
		}, Options{Solver: &sym.Solver{MaxSteps: maxSteps}})
	}

	tight := run(8)
	if len(tight) != 1 {
		t.Fatalf("tight budget: %d paths, want 1", len(tight))
	}
	if !tight[0].Budgeted {
		t.Error("budget-truncated refutation did not mark the path Budgeted")
	}

	roomy := run(0) // default budget: the refutation completes for real
	if len(roomy) != 1 {
		t.Fatalf("roomy budget: %d paths, want 1", len(roomy))
	}
	if roomy[0].Budgeted {
		t.Error("fully proven path marked Budgeted")
	}
}

// TestBudgetedSurvivesAbortedReplay pins the aggregation across replays:
// when the budget event aborts the very replay that hit it, the news must
// still reach the caller through the paths that do survive — otherwise a
// possibly-wrongly-pruned path leaves no trace and the pair reads as
// definitively classified.
func TestBudgetedSurvivesAbortedReplay(t *testing.T) {
	paths := Run(func(c *Context) any {
		p := c.Var("abp", sym.BoolSort, KindArg)
		if c.Branch(p) {
			y := c.Var("aby", sym.IntSort, KindArg)
			z := c.Var("abz", sym.IntSort, KindArg)
			// Unsatisfiable, but the refutation exceeds the tiny budget:
			// this replay aborts carrying the only budgeted flag.
			c.Assume(sym.And(sym.Lt(y, z), sym.Lt(z, y)))
		}
		return nil
	}, Options{Solver: &sym.Solver{MaxSteps: 8}})
	if len(paths) != 1 {
		t.Fatalf("%d paths, want 1 (the !p side)", len(paths))
	}
	if !paths[0].Budgeted {
		t.Error("budget truncation on an aborted replay left surviving paths unmarked")
	}
}
