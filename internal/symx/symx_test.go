package symx

import (
	"testing"

	"repro/internal/sym"
)

func TestRunExploresBothBranches(t *testing.T) {
	paths := Run(func(c *Context) any {
		x := c.Var("x", sym.IntSort, KindArg)
		if c.Branch(sym.Lt(x, sym.Int(0))) {
			return "neg"
		}
		return "nonneg"
	}, Options{})
	if len(paths) != 2 {
		t.Fatalf("want 2 paths, got %d", len(paths))
	}
	got := map[string]bool{}
	for _, p := range paths {
		got[p.Result.(string)] = true
	}
	if !got["neg"] || !got["nonneg"] {
		t.Errorf("paths = %v", got)
	}
}

func TestRunPathConditionsDisjoint(t *testing.T) {
	paths := Run(func(c *Context) any {
		x := c.Var("x", sym.IntSort, KindArg)
		a := c.Branch(sym.Lt(x, sym.Int(0)))
		b := c.Branch(sym.Lt(x, sym.Int(10)))
		return [2]bool{a, b}
	}, Options{})
	// x<0 implies x<10, so the (true, false) combination is infeasible.
	if len(paths) != 3 {
		t.Fatalf("want 3 feasible paths, got %d", len(paths))
	}
	var s sym.Solver
	for i, p := range paths {
		for j, q := range paths {
			if i < j && s.Sat(sym.And(p.PC, q.PC)) {
				t.Errorf("paths %d and %d overlap: %v and %v", i, j, p.PC, q.PC)
			}
		}
	}
}

func TestAssumeAbandonsInfeasible(t *testing.T) {
	paths := Run(func(c *Context) any {
		x := c.Var("x", sym.IntSort, KindArg)
		c.Assume(sym.Lt(x, sym.Int(0)))
		if c.Branch(sym.Gt(x, sym.Int(5))) {
			t.Error("infeasible branch direction taken")
		}
		return nil
	}, Options{})
	if len(paths) != 1 {
		t.Fatalf("want 1 path, got %d", len(paths))
	}
}

func TestNestedBranchesEnumerate(t *testing.T) {
	paths := Run(func(c *Context) any {
		p := c.Var("p", sym.BoolSort, KindArg)
		q := c.Var("q", sym.BoolSort, KindArg)
		n := 0
		if c.Branch(p) {
			n += 2
		}
		if c.Branch(q) {
			n++
		}
		return n
	}, Options{})
	if len(paths) != 4 {
		t.Fatalf("want 4 paths, got %d", len(paths))
	}
	seen := map[int]bool{}
	for _, p := range paths {
		seen[p.Result.(int)] = true
	}
	for want := 0; want < 4; want++ {
		if !seen[want] {
			t.Errorf("missing outcome %d", want)
		}
	}
}

func TestMaxPathsCap(t *testing.T) {
	paths := Run(func(c *Context) any {
		for i := 0; i < 10; i++ {
			c.Branch(c.Var(string(rune('a'+i)), sym.BoolSort, KindArg))
		}
		return nil
	}, Options{MaxPaths: 7})
	if len(paths) != 7 {
		t.Fatalf("MaxPaths not honored: got %d", len(paths))
	}
}

func TestVarMemoization(t *testing.T) {
	Run(func(c *Context) any {
		v1 := c.Var("x", sym.IntSort, KindArg)
		v2 := c.Var("x", sym.IntSort, KindArg)
		if v1 != v2 {
			t.Error("repeated Var not memoized")
		}
		return nil
	}, Options{})
}

func TestVarSortConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on sort conflict")
		}
	}()
	Run(func(c *Context) any {
		c.Var("x", sym.IntSort, KindArg)
		c.Var("x", sym.BoolSort, KindArg)
		return nil
	}, Options{})
}

func TestVarKindsReported(t *testing.T) {
	paths := Run(func(c *Context) any {
		c.Var("arg", sym.IntSort, KindArg)
		c.Var("state", sym.IntSort, KindState)
		c.Var("nd", sym.IntSort, KindNondet)
		return nil
	}, Options{})
	k := paths[0].VarKinds
	if k["arg"] != KindArg || k["state"] != KindState || k["nd"] != KindNondet {
		t.Errorf("kinds = %v", k)
	}
	if names := SortedVarNames(k, KindArg); len(names) != 1 || names[0] != "arg" {
		t.Errorf("SortedVarNames = %v", names)
	}
}

func TestBranchOnConstantsDoesNotFork(t *testing.T) {
	paths := Run(func(c *Context) any {
		if !c.Branch(sym.True) {
			t.Error("Branch(true) returned false")
		}
		if c.Branch(sym.False) {
			t.Error("Branch(false) returned true")
		}
		return nil
	}, Options{})
	if len(paths) != 1 {
		t.Fatalf("constant branches must not fork: %d paths", len(paths))
	}
}

func TestReplayDeterminismSharedNames(t *testing.T) {
	// Two identically-named dictionaries must materialize identical
	// initial-content variables, making untouched state trivially equal.
	paths := Run(func(c *Context) any {
		mk := func(c *Context, tag string) Value {
			return NewStruct("v", c.Var(tag+".v", sym.IntSort, KindState))
		}
		d1 := NewDict("fs", mk)
		d2 := NewDict("fs", mk)
		k := K(c.Var("a", sym.Uninterpreted("Name"), KindArg))
		if d1.Contains(c, k) != d2.Contains(c, k) {
			t.Error("same initial content must agree on membership")
		}
		return DictsEquivalent(c, d1, d2)
	}, Options{})
	var s sym.Solver
	for _, p := range paths {
		eq := p.Result.(*sym.Expr)
		if !s.Valid(sym.Implies(p.PC, eq)) {
			t.Errorf("untouched identical dicts not equivalent under %v: %v", p.PC, eq)
		}
	}
}
