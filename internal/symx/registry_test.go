package symx

import (
	"testing"

	"repro/internal/sym"
)

// Regression test: two states built from the same unconstrained initial
// content must observe identical values even when they first probe a
// location under different (but semantically equal) keys. Before the
// initial-probe registry, state A probing via key x and state B probing via
// key y minted distinct variables, so x == y paths spuriously "diverged".
func TestInitialProbeSharingAcrossKeys(t *testing.T) {
	nameSort := sym.Uninterpreted("Name")
	mk := func(c *Context, tag string) Value {
		return NewStruct("v", c.Var(tag+".v", sym.IntSort, KindState))
	}
	var s sym.Solver
	paths := Run(func(c *Context) any {
		x := c.Var("x", nameSort, KindArg)
		y := c.Var("y", nameSort, KindArg)
		c.Assume(sym.Eq(x, y))

		d1 := NewDict("fs", mk)
		e1 := d1.lookup(c, K(x))

		d2 := NewDict("fs", mk)
		e2 := d2.lookup(c, K(y))

		if e1.Present != e2.Present {
			t.Error("aliased probes disagree on membership")
		}
		if !e1.Present {
			return sym.True
		}
		return sym.Eq(e1.Val.(*Struct).Get("v"), e2.Val.(*Struct).Get("v"))
	}, Options{})
	for _, p := range paths {
		eq := p.Result.(*sym.Expr)
		if !s.Valid(sym.Implies(p.PC, eq)) {
			t.Errorf("aliased initial values differ under %v", p.PC)
		}
	}
}

// Same property for total-function dictionaries (GetFunc).
func TestGetFuncSharingAcrossKeys(t *testing.T) {
	mk := func(c *Context, tag string) Value {
		return NewStruct("n", c.Var(tag+".n", sym.IntSort, KindState))
	}
	var s sym.Solver
	paths := Run(func(c *Context) any {
		x := c.Var("x", sym.IntSort, KindArg)
		y := c.Var("y", sym.IntSort, KindArg)
		c.Assume(sym.Eq(x, y))
		d1 := NewDict("ino", mk)
		d2 := NewDict("ino", mk)
		v1 := d1.GetFunc(c, K(x)).(*Struct).Get("n")
		v2 := d2.GetFunc(c, K(y)).(*Struct).Get("n")
		return sym.Eq(v1, v2)
	}, Options{})
	for _, p := range paths {
		if !s.Valid(sym.Implies(p.PC, p.Result.(*sym.Expr))) {
			t.Errorf("aliased GetFunc values differ under %v", p.PC)
		}
	}
}

// Distinct keys must stay independent: no spurious sharing.
func TestInitialProbesDistinctKeysIndependent(t *testing.T) {
	nameSort := sym.Uninterpreted("Name")
	mk := func(c *Context, tag string) Value {
		return NewStruct("v", c.Var(tag+".v", sym.IntSort, KindState))
	}
	var s sym.Solver
	paths := Run(func(c *Context) any {
		x := c.Var("x", nameSort, KindArg)
		y := c.Var("y", nameSort, KindArg)
		c.Assume(sym.Ne(x, y))
		d := NewDict("fs", mk)
		ex := d.lookup(c, K(x))
		ey := d.lookup(c, K(y))
		if !ex.Present || !ey.Present {
			return sym.True // nothing to compare
		}
		return sym.Ne(ex.Val.(*Struct).Get("v"), ey.Val.(*Struct).Get("v"))
	}, Options{})
	someIndependent := false
	for _, p := range paths {
		ne := p.Result.(*sym.Expr)
		if s.Sat(sym.And(p.PC, ne)) {
			someIndependent = true
		}
	}
	if !someIndependent {
		t.Error("values at distinct keys should be independently choosable")
	}
}

// The registry must also feed the equivalence-formula defaults: a dict that
// wrote nothing compares equal to one whose write restored the initial
// value probed under a different key name.
func TestEquivalenceUsesRegistryDefaults(t *testing.T) {
	nameSort := sym.Uninterpreted("Name")
	mk := func(c *Context, tag string) Value {
		return NewStruct("v", c.Var(tag+".v", sym.IntSort, KindState))
	}
	var s sym.Solver
	paths := Run(func(c *Context) any {
		x := c.Var("x", nameSort, KindArg)
		y := c.Var("y", nameSort, KindArg)
		c.Assume(sym.Eq(x, y))

		d1 := NewDict("fs", mk)
		e := d1.lookup(c, K(x)) // probe via x
		if !e.Present {
			return sym.True
		}
		// d1 rewrites the same value it read (a no-op update).
		d1.Set(c, K(x), e.Val)

		// d2 never touches the location.
		d2 := NewDict("fs", mk)
		_ = d2.Contains(c, K(y)) // probe via y (reuses the registry entry)

		return DictsEquivalent(c, d1, d2)
	}, Options{})
	for _, p := range paths {
		eq := p.Result.(*sym.Expr)
		if !s.Valid(sym.Implies(p.PC, eq)) {
			t.Errorf("no-op rewrite should leave states equivalent under %v", p.PC)
		}
	}
}
