// Package flight provides single-flight coalescing with context-aware
// leadership handoff: concurrent calls for the same key execute the work
// once and share the result.
//
// It differs from the classic singleflight shape in two ways the sweep
// engine needs:
//
//   - Every caller passes its own work function. Whoever acquires the
//     flight's token executes; the others wait. This matters because the
//     leader's closure records side effects (phase timings, cache-hit
//     accounting) into the leader's own result record — a waiter must not
//     have its closure run on its behalf by someone else.
//   - Cancellation has handoff semantics. A waiter whose context ends
//     leaves immediately with its own ctx error. A leader whose context
//     ends while waiters remain does not publish the cancellation: it
//     hands the token back, one of the surviving waiters re-executes, and
//     only the canceled caller observes the error.
//
// A result (value or genuine error) is published to exactly the callers
// attached at publish time; the flight then retires, so later calls for
// the same key start fresh. Results must therefore be safe to share
// (treat shared values as immutable).
package flight

import (
	"context"
	"sync"
)

// Stat reports how a Do call obtained (or failed to obtain) its result.
type Stat struct {
	// Led reports that this caller executed the work function itself.
	Led bool
	// Shared reports that the result came from another caller's
	// execution.
	Shared bool
	// HandedOff reports that this caller was a canceled leader that
	// passed the token to a surviving waiter instead of failing it.
	HandedOff bool
}

// Group coalesces concurrent Do calls per key. The zero value is ready to
// use. Groups must not be copied after first use.
type Group[V any] struct {
	mu      sync.Mutex
	flights map[string]*flight[V]
}

type flight[V any] struct {
	// token is the right to execute; capacity 1. It starts full, is
	// drained by the caller that becomes leader, and is refilled only on
	// a cancellation handoff.
	token chan struct{}
	// done is closed once val/err are published.
	done chan struct{}
	// refs counts attached callers (waiters plus leader), under Group.mu.
	refs int

	val V
	err error
}

// Do executes fn under single-flight semantics for key: if no flight for
// key is in progress this caller leads (runs fn); otherwise it waits for
// the leader's result. The returned Stat distinguishes the cases.
//
// Context semantics: a waiting caller returns ctx.Err() as soon as its
// context ends. A leading caller whose fn returns an error while its
// context is canceled is treated as a canceled leader — if waiters
// remain, the flight's token is handed to one of them (which re-executes
// its own fn) and the canceled leader returns its error with
// Stat.HandedOff set.
func (g *Group[V]) Do(ctx context.Context, key string, fn func() (V, error)) (V, Stat, error) {
	g.mu.Lock()
	if g.flights == nil {
		g.flights = make(map[string]*flight[V])
	}
	f, ok := g.flights[key]
	if !ok {
		f = &flight[V]{token: make(chan struct{}, 1), done: make(chan struct{})}
		f.token <- struct{}{}
		g.flights[key] = f
	}
	f.refs++
	g.mu.Unlock()

	var zero V
	select {
	case <-f.done:
		g.detach(key, f)
		return f.val, Stat{Shared: true}, f.err
	case <-ctx.Done():
		g.detach(key, f)
		return zero, Stat{}, ctx.Err()
	case <-f.token:
		return g.lead(ctx, key, f, fn)
	}
}

// Pending reports how many callers are attached to key's in-progress
// flight, zero when none is active. It exists for tests and monitoring
// that need to observe coalescing without racing it.
func (g *Group[V]) Pending(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.flights[key]; ok {
		return f.refs
	}
	return 0
}

// lead runs fn as the flight's leader and publishes or hands off.
func (g *Group[V]) lead(ctx context.Context, key string, f *flight[V], fn func() (V, error)) (V, Stat, error) {
	var zero V
	finished := false
	// Backstop for a panicking fn: pass the token on (or retire the
	// flight) so waiters are not stranded, then let the panic continue.
	defer func() {
		if !finished {
			g.release(key, f)
		}
	}()

	if cerr := ctx.Err(); cerr != nil {
		// Canceled between attach and leadership: never ran fn.
		finished = true
		return zero, Stat{HandedOff: g.release(key, f)}, cerr
	}
	val, err := fn()
	if err != nil && ctx.Err() != nil {
		// Canceled mid-work. The error is this caller's context artifact,
		// not a property of the key — don't publish it to waiters.
		finished = true
		return zero, Stat{HandedOff: g.release(key, f)}, err
	}

	// Publish. The value is set and the flight removed from the map under
	// one critical section, so a caller arriving now starts a fresh
	// flight and can never attach to one about to close over a result it
	// did not ask to share.
	g.mu.Lock()
	f.val, f.err = val, err
	f.refs--
	if g.flights[key] == f {
		delete(g.flights, key)
	}
	g.mu.Unlock()
	close(f.done)
	finished = true
	return val, Stat{Led: true}, err
}

// release drops the leader's reference. If waiters remain the token is
// handed to one of them (reported true); otherwise the flight retires.
func (g *Group[V]) release(key string, f *flight[V]) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	f.refs--
	if f.refs > 0 {
		f.token <- struct{}{}
		return true
	}
	if g.flights[key] == f {
		delete(g.flights, key)
	}
	return false
}

// detach drops a non-leading caller's reference, retiring the flight if
// this was the last caller and no result was published (a published
// flight is already out of the map).
func (g *Group[V]) detach(key string, f *flight[V]) {
	g.mu.Lock()
	f.refs--
	if f.refs == 0 && g.flights[key] == f {
		delete(g.flights, key)
	}
	g.mu.Unlock()
}
