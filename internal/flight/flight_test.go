package flight

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitRefs blocks until exactly want callers are attached to key's
// flight — the white-box barrier the coalescing tests use to make "every
// caller joined before the result published" deterministic.
func waitRefs[V any](t *testing.T, g *Group[V], key string, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		g.mu.Lock()
		refs := 0
		if f := g.flights[key]; f != nil {
			refs = f.refs
		}
		g.mu.Unlock()
		if refs == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("flight %q never reached %d attached callers (at %d)", key, want, refs)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoalesce pins the headline property: N concurrent calls for one key
// execute the work once, exactly one caller leads, and every caller gets
// the same value.
func TestCoalesce(t *testing.T) {
	var g Group[int]
	const n = 16
	var execs, leds, shareds atomic.Int32
	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, st, err := g.Do(context.Background(), "k", func() (int, error) {
				execs.Add(1)
				<-release // hold the flight open until all callers attach
				return 42, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i] = v
			if st.Led {
				leds.Add(1)
			}
			if st.Shared {
				shareds.Add(1)
			}
		}()
	}
	// Hold the flight open until every caller has attached (white-box:
	// the refcount is the attachment barrier), so none can arrive after
	// the publish and lead a second flight.
	waitRefs(t, &g, "k", n)
	close(release)
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Errorf("work executed %d times, want 1", got)
	}
	if leds.Load() != 1 || shareds.Load() != n-1 {
		t.Errorf("led=%d shared=%d, want 1/%d", leds.Load(), shareds.Load(), n-1)
	}
	for i, v := range results {
		if v != 42 {
			t.Errorf("caller %d got %d, want 42", i, v)
		}
	}
}

// TestDistinctKeysDoNotCoalesce pins that the key is the coalescing unit.
func TestDistinctKeysDoNotCoalesce(t *testing.T) {
	var g Group[string]
	var wg sync.WaitGroup
	var execs atomic.Int32
	for _, key := range []string{"a", "b", "c"} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := g.Do(context.Background(), key, func() (string, error) {
				execs.Add(1)
				return key, nil
			})
			if err != nil || v != key {
				t.Errorf("Do(%q) = %q, %v", key, v, err)
			}
		}()
	}
	wg.Wait()
	if got := execs.Load(); got != 3 {
		t.Errorf("3 distinct keys executed %d times, want 3", got)
	}
}

// TestSequentialCallsReExecute pins that a flight retires once published:
// a later call for the same key runs the work again.
func TestSequentialCallsReExecute(t *testing.T) {
	var g Group[int]
	var execs atomic.Int32
	for i := 0; i < 3; i++ {
		if _, st, err := g.Do(context.Background(), "k", func() (int, error) {
			execs.Add(1)
			return i, nil
		}); err != nil || !st.Led {
			t.Fatalf("call %d: stat=%+v err=%v", i, st, err)
		}
	}
	if got := execs.Load(); got != 3 {
		t.Errorf("3 sequential calls executed %d times, want 3", got)
	}
}

// TestErrorShared pins that a genuine (non-cancellation) failure is a
// result like any other: published to every attached caller.
func TestErrorShared(t *testing.T) {
	var g Group[int]
	boom := errors.New("boom")
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, 4)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, errs[0] = g.Do(context.Background(), "k", func() (int, error) {
			close(started)
			<-release
			return 0, boom
		})
	}()
	<-started
	for i := 1; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, errs[i] = g.Do(context.Background(), "k", func() (int, error) {
				t.Error("waiter's fn ran despite a published result")
				return 0, nil
			})
		}()
	}
	waitRefs(t, &g, "k", 4)
	close(release)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Errorf("caller %d got %v, want boom", i, err)
		}
	}
}

// TestWaiterCancellation pins that a waiter leaves with its own context
// error without disturbing the flight.
func TestWaiterCancellation(t *testing.T) {
	var g Group[int]
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	var leaderVal int
	go func() {
		defer wg.Done()
		leaderVal, _, _ = g.Do(context.Background(), "k", func() (int, error) {
			close(started)
			<-release
			return 7, nil
		})
	}()
	<-started

	wctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := g.Do(wctx, "k", func() (int, error) { return 0, nil })
		waiterDone <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("canceled waiter got %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("canceled waiter did not return promptly")
	}

	close(release)
	wg.Wait()
	if leaderVal != 7 {
		t.Errorf("leader got %d after waiter cancellation, want 7", leaderVal)
	}
}

// TestLeaderCancellationHandsOff pins the handoff contract: a canceled
// leader with waiters returns its own context error with HandedOff set,
// one waiter re-executes, and every surviving caller gets the new result.
func TestLeaderCancellationHandsOff(t *testing.T) {
	var g Group[int]
	lctx, cancelLeader := context.WithCancel(context.Background())
	leaderIn := make(chan struct{})

	type outcome struct {
		v   int
		st  Stat
		err error
	}
	leaderOut := make(chan outcome, 1)
	go func() {
		v, st, err := g.Do(lctx, "k", func() (int, error) {
			close(leaderIn)
			<-lctx.Done() // simulate work interrupted by cancellation
			return 0, lctx.Err()
		})
		leaderOut <- outcome{v, st, err}
	}()
	<-leaderIn

	const waiters = 4
	var execs atomic.Int32
	waiterOut := make(chan outcome, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			v, st, err := g.Do(context.Background(), "k", func() (int, error) {
				execs.Add(1)
				return 99, nil
			})
			waiterOut <- outcome{v, st, err}
		}()
	}
	waitRefs(t, &g, "k", waiters+1) // every waiter attached, plus the leader
	cancelLeader()

	lead := <-leaderOut
	if !errors.Is(lead.err, context.Canceled) {
		t.Errorf("canceled leader returned %v, want context.Canceled", lead.err)
	}
	if !lead.st.HandedOff {
		t.Errorf("canceled leader stat %+v, want HandedOff", lead.st)
	}

	var led int
	for i := 0; i < waiters; i++ {
		select {
		case o := <-waiterOut:
			if o.err != nil || o.v != 99 {
				t.Errorf("waiter got (%d, %v), want (99, nil)", o.v, o.err)
			}
			if o.st.Led {
				led++
			}
		case <-time.After(5 * time.Second):
			t.Fatal("waiter stranded after leader cancellation")
		}
	}
	if execs.Load() != 1 || led != 1 {
		t.Errorf("after handoff: execs=%d led=%d, want 1/1", execs.Load(), led)
	}
}

// TestLeaderCancellationNoWaiters pins the lonely-cancel case: with no
// waiters the flight retires and the next call starts fresh.
func TestLeaderCancellationNoWaiters(t *testing.T) {
	var g Group[int]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, st, err := g.Do(ctx, "k", func() (int, error) {
		<-ctx.Done()
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) || st.HandedOff || st.Led {
		t.Errorf("lonely canceled leader: stat=%+v err=%v", st, err)
	}
	v, st, err := g.Do(context.Background(), "k", func() (int, error) { return 5, nil })
	if err != nil || v != 5 || !st.Led {
		t.Errorf("call after lonely cancel: v=%d stat=%+v err=%v", v, st, err)
	}
}
