package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/commuter"
)

// cmdServe hosts the COMMUTER pipeline over HTTP: the versioned JSON API
// every subcommand's -server flag consumes. One serve instance fans each
// sweep across its own worker pool and puts the shared two-tier result
// cache (-cache) behind all clients, so a pair any client ever swept is a
// cache hit for every later one.
//
// The handler exposes its telemetry on GET /metrics (Prometheus text
// exposition) and — with -pprof — the runtime profiler under
// /debug/pprof/. Every request logs one structured line at Info; -log
// selects the level (default warn keeps the console quiet).
func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8372", "listen address")
	cacheDir := fs.String("cache", "", "shared sweep result cache backend: a directory (or dir:PATH), mem[:N], a peer server's http(s) URL, or a comma list layered fastest-first (empty disables caching)")
	fleet := fs.String("fleet", "", "fleet coordinator: `coordinator=URL` (or a bare URL) of the commuter serve instance whose lease table this server's sweeps work from; empty runs every sweep standalone")
	j := fs.Int("j", runtime.NumCPU(), "default worker pool size for sweeps that don't request one")
	grace := fs.Duration("grace", 15*time.Second, "shutdown drain bound: how long in-flight requests may run before being cancelled")
	pprofOn := fs.Bool("pprof", false, "mount the runtime profiler on /debug/pprof/ (exposes stacks; keep the listener trusted)")
	logLevel := logFlag(fs)
	fs.Parse(args)
	logger := setupLogging(*logLevel)

	opts := []commuter.ServerOption{
		commuter.ServeWithWorkers(*j),
		commuter.ServeWithLogger(logger),
	}
	if *cacheDir != "" {
		opts = append(opts, commuter.ServeWithCache(*cacheDir))
	}
	if *fleet != "" {
		opts = append(opts, commuter.ServeWithFleet(fleetURL(*fleet)))
	}
	if *pprofOn {
		opts = append(opts, commuter.ServeWithPprof())
	}
	handler, err := commuter.NewServerHandler(commuter.Local(), opts...)
	if err != nil {
		fatal(err)
	}

	// Listen before announcing, so "serving on ..." is a readiness signal
	// scripts (and the CI smoke job) can wait for.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}

	// Request lifetimes are deliberately NOT tied to the first signal:
	// Shutdown below stops new connections while in-flight sweeps keep
	// running to completion. cancelReqs is the second, forceful stage —
	// through BaseContext it reaches every request context, and from
	// there the sweep workers and solver Stop hooks.
	reqCtx, cancelReqs := context.WithCancel(context.Background())
	defer cancelReqs()
	srv := &http.Server{
		Handler:     handler,
		BaseContext: func(net.Listener) context.Context { return reqCtx },
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	fmt.Fprintf(os.Stderr, "commuter: serving on http://%s (cache: %s)\n", ln.Addr(), cacheOrNone(*cacheDir))

	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		sig := <-sigs
		logger.Info("shutdown: draining in-flight requests", "signal", sig.String(), "grace", *grace)
		// A second signal skips the rest of the drain.
		go func() {
			sig := <-sigs
			logger.Warn("shutdown: second signal, cancelling in-flight requests", "signal", sig.String())
			cancelReqs()
		}()
		sctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			// Grace expired with requests still running. Cancel them —
			// sweeps abandon their symbolic work between (and inside)
			// solver searches and emit a terminal error frame — then give
			// the unwinding a short, bounded wait.
			logger.Warn("shutdown: drain bound hit, cancelling in-flight requests", "err", err)
			cancelReqs()
			fctx, fcancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer fcancel()
			srv.Shutdown(fctx)
		}
		logger.Info("shutdown: done")
	}()
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	// Serve returns the moment the listener closes; the drain above is
	// still running. Wait it out so in-flight work isn't killed mid-write.
	<-shutdownDone
}

func cacheOrNone(dir string) string {
	if dir == "" {
		return "none"
	}
	return dir
}

// fleetURL strips the optional "coordinator=" prefix of a -fleet value,
// so both `-fleet coordinator=http://host:8372` (the documented form,
// leaving room for future fleet sub-options) and a bare URL work.
func fleetURL(v string) string {
	if rest, ok := strings.CutPrefix(v, "coordinator="); ok {
		return rest
	}
	return v
}
