package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"repro/commuter"
)

// cmdServe hosts the COMMUTER pipeline over HTTP: the versioned JSON API
// every subcommand's -server flag consumes. One serve instance fans each
// sweep across its own worker pool and puts the shared two-tier result
// cache (-cache) behind all clients, so a pair any client ever swept is a
// cache hit for every later one.
func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8372", "listen address")
	cacheDir := fs.String("cache", "", "shared sweep result cache directory (empty disables caching)")
	j := fs.Int("j", runtime.NumCPU(), "default worker pool size for sweeps that don't request one")
	fs.Parse(args)

	opts := []commuter.ServerOption{commuter.ServeWithWorkers(*j)}
	if *cacheDir != "" {
		opts = append(opts, commuter.ServeWithCache(*cacheDir))
	}
	handler, err := commuter.NewServerHandler(commuter.Local(), opts...)
	if err != nil {
		fatal(err)
	}

	// Listen before announcing, so "serving on ..." is a readiness signal
	// scripts (and the CI smoke job) can wait for.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	ctx, stop := runContext()
	defer stop()
	srv := &http.Server{
		Handler: handler,
		// Derive every request context from the signal context:
		// http.Server.Shutdown alone never cancels in-flight requests, so
		// this is what makes a SIGINT reach a running sweep's workers.
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	fmt.Fprintf(os.Stderr, "commuter: serving on http://%s (cache: %s)\n", ln.Addr(), cacheOrNone(*cacheDir))

	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		// Graceful drain: cancelled sweeps emit their terminal error
		// frame and the connections go idle; Shutdown returns once they
		// have (or after the bound, abandoning stragglers).
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(sctx)
	}()
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	// Serve returns the moment the listener closes; the drain above is
	// still running. Wait it out so in-flight work isn't killed mid-write.
	<-shutdownDone
}

func cacheOrNone(dir string) string {
	if dir == "" {
		return "none"
	}
	return dir
}
