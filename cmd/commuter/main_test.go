package main

import (
	"testing"

	"repro/internal/model"
)

func opNames(t *testing.T, sel string) []string {
	t.Helper()
	ops := opSet(model.Spec, sel)
	names := make([]string, len(ops))
	for i, op := range ops {
		names[i] = op.Name
	}
	return names
}

// TestOpSetDedupes pins that a comma list with repeats enumerates each op
// once, in first-appearance order — "open,open" must not triple-count the
// open/open pair in matrix totals.
func TestOpSetDedupes(t *testing.T) {
	for _, tc := range []struct {
		sel  string
		want []string
	}{
		{"open,open", []string{"open"}},
		{"open,rename,open", []string{"open", "rename"}},
		{"rename, open ,rename,open", []string{"rename", "open"}},
		{"stat", []string{"stat"}},
	} {
		got := opNames(t, tc.sel)
		if len(got) != len(tc.want) {
			t.Errorf("opSet(%q) = %v, want %v", tc.sel, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("opSet(%q) = %v, want %v", tc.sel, got, tc.want)
				break
			}
		}
	}
}

// TestOpSetNamedUniverses pins the named universes' sizes so the dedupe
// path can't accidentally shadow them.
func TestOpSetNamedUniverses(t *testing.T) {
	if got := opSet(model.Spec, "fs"); len(got) != 9 {
		t.Errorf(`opSet("fs") has %d ops, want 9`, len(got))
	}
	if got := opSet(model.Spec, "all"); len(got) != 18 {
		t.Errorf(`opSet("all") has %d ops, want 18`, len(got))
	}
}
