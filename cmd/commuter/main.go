// Command commuter drives the COMMUTER pipeline: it analyzes the
// commutativity of a modeled interface's operation pairs, generates
// concrete test cases from the commutativity conditions, and checks
// implementations for conflict-freedom, regenerating the paper's Figure 6.
//
// Usage:
//
//	commuter analyze -pair rename,rename     # print commutativity conditions
//	commuter testgen -pair rename,rename     # print generated test cases
//	commuter matrix  -ops fs                 # Figure 6 for both kernels
//	commuter matrix  -ops all -kernel sv6    # one kernel, all 18 ops
//	commuter sweep   -ops all -j 8           # parallel, cacheable matrix run
//	commuter sweep   -ops all -cache .sweep  # repeat sweeps are incremental
//	commuter matrix  -spec queue             # second interface: mail queues
//	commuter analyze -spec queue -pair send,send
//
// Every pipeline command takes -spec, selecting the modeled interface
// specification from the registry (default "posix", the 18 POSIX calls;
// "queue" is the §7.3 mail server's communication interface with its
// memq reference implementation). The scalable commutativity rule is
// about interfaces, not about POSIX — the same ANALYZE → TESTGEN → CHECK
// layers run whichever spec is selected.
//
// The -ops flag selects the operation universe within the spec: "all"
// (every op), a spec-defined named subset (posix's "fs" is the 9
// file-system metadata and descriptor calls — fast; queue has "ordered"
// and "any"), or a comma-separated list (deduplicated, first appearance
// wins). Every pipeline command takes -lowestfd to model POSIX's
// lowest-FD rule instead of the O_ANYFD variant, reproducing the
// lowest-FD column of Figure 6.
//
// The full 18-op matrix is dominated by the VM pairs; sweep fans the pairs
// across a worker pool (-j, default all CPUs) and can persist per-pair
// results in an on-disk cache (-cache), so a warm rerun finishes in well
// under a second and a cold run takes minutes of wall-clock rather than
// the tens of minutes the sequential path needs. Cache keys fold in the
// spec name, so every spec can share one cache directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/analyzer"
	"repro/internal/eval"
	"repro/internal/kernel"
	_ "repro/internal/model"     // registers the "posix" spec
	_ "repro/internal/queuespec" // registers the "queue" spec
	"repro/internal/spec"
	"repro/internal/sweep"
	"repro/internal/testgen"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "analyze":
		cmdAnalyze(args)
	case "testgen":
		cmdTestgen(args)
	case "matrix":
		cmdMatrix(args)
	case "sweep":
		cmdSweep(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: commuter {analyze|testgen|matrix|sweep} [flags]")
	os.Exit(2)
}

// specFlag registers the -spec flag on a subcommand's flag set.
func specFlag(fs *flag.FlagSet) *string {
	return fs.String("spec", "posix",
		"interface specification to analyze (known: "+strings.Join(spec.Names(), ", ")+")")
}

// resolveSpec looks the selected spec up in the registry.
func resolveSpec(name string) spec.Spec {
	sp, err := spec.Lookup(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "commuter:", err)
		os.Exit(2)
	}
	return sp
}

func parsePair(sp spec.Spec, s string) (*spec.Op, *spec.Op) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		fmt.Fprintln(os.Stderr, "commuter: -pair wants op1,op2")
		os.Exit(2)
	}
	a, err := spec.OpByName(sp, strings.TrimSpace(parts[0]))
	if err == nil {
		var b *spec.Op
		if b, err = spec.OpByName(sp, strings.TrimSpace(parts[1])); err == nil {
			return a, b
		}
	}
	fmt.Fprintln(os.Stderr, "commuter:", err)
	os.Exit(2)
	return nil, nil
}

// opSet resolves the -ops selector: "all", a spec-defined named subset,
// or a comma list — deduplicated preserving first-appearance order, so a
// repeated name ("open,open") can't multi-count its pairs in matrix
// totals. Unknown names exit with the spec's ops listed.
func opSet(sp spec.Spec, s string) []*spec.Op {
	out, err := spec.OpSet(sp, s)
	if err != nil {
		fmt.Fprintln(os.Stderr, "commuter:", err)
		os.Exit(2)
	}
	return out
}

func cmdAnalyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	pair := fs.String("pair", "rename,rename", "operation pair to analyze")
	specName := specFlag(fs)
	lowest := fs.Bool("lowestfd", false, "model POSIX's lowest-FD rule instead of O_ANYFD nondeterminism")
	verbose := fs.Bool("v", false, "print each path's commutativity condition")
	fs.Parse(args)

	sp := resolveSpec(*specName)
	a, b := parsePair(sp, *pair)
	start := time.Now()
	r := analyzer.AnalyzePair(sp, a, b, analyzer.Options{Config: spec.Config{LowestFD: *lowest}})
	fmt.Printf("%s (%v)\n", r.Summary(), time.Since(start).Round(time.Millisecond))
	fmt.Println("\ncommutative situations (§5.1-style clauses):")
	for _, d := range analyzer.Describe(r) {
		fmt.Printf("  - %s\n", d)
	}
	if *verbose {
		fmt.Println("\nraw per-path conditions:")
		for i, p := range r.Paths {
			tag := ""
			if p.Commutes {
				tag += " commutes"
			}
			if p.CanDiverge {
				tag += " diverges"
			}
			if p.Unknown {
				tag += " unknown(solver budget)"
			}
			fmt.Printf("path %d:%s\n  condition: %v\n", i, tag, p.CommuteCond)
		}
	}
}

func cmdTestgen(args []string) {
	fs := flag.NewFlagSet("testgen", flag.ExitOnError)
	pair := fs.String("pair", "rename,rename", "operation pair")
	specName := specFlag(fs)
	perPath := fs.Int("per-path", 4, "max isomorphism classes per path")
	lowest := fs.Bool("lowestfd", false, "model POSIX's lowest-FD rule instead of O_ANYFD nondeterminism")
	check := fs.Bool("check", false, "also run the tests on the spec's implementations")
	fs.Parse(args)

	sp := resolveSpec(*specName)
	a, b := parsePair(sp, *pair)
	r := analyzer.AnalyzePair(sp, a, b, analyzer.Options{Config: spec.Config{LowestFD: *lowest}})
	tests, truncated := testgen.GenerateChecked(sp, r, testgen.Options{MaxTestsPerPath: *perPath, LowestFD: *lowest})
	fmt.Printf("%d test cases for %s x %s\n", len(tests), r.OpA, r.OpB)
	if n := r.Unknown() + truncated; n > 0 {
		fmt.Fprintf(os.Stderr, "commuter: warning: %d path(s) hit the solver budget; the test set is a lower bound\n", n)
	}
	for _, tc := range tests {
		printTest(tc)
		if *check {
			for _, impl := range sp.Impls() {
				kn := impl.Name
				res, err := kernel.Check(impl.New, tc)
				if err != nil {
					fmt.Fprintf(os.Stderr, "  %s: %v\n", kn, err)
					continue
				}
				verdict := "conflict-free"
				if !res.ConflictFree {
					names := make([]string, len(res.Conflicts))
					for i, c := range res.Conflicts {
						names[i] = c.CellName
					}
					verdict = "CONFLICTS on " + strings.Join(names, ", ")
				}
				fmt.Printf("  %-5s: %s\n", kn, verdict)
			}
		}
	}
}

// printTest renders a test case in the style of the paper's Figure 5.
func printTest(tc kernel.TestCase) {
	fmt.Printf("\ntest %s:\n", tc.ID)
	fmt.Println("  setup:")
	for _, ino := range tc.Setup.Inodes {
		fmt.Printf("    inode %d: len=%d extra_links=%d pages=%v\n", ino.Inum, ino.Len, ino.ExtraLinks, ino.Pages)
	}
	for _, f := range tc.Setup.Files {
		fmt.Printf("    file %s -> inode %d\n", f.Name, f.Inum)
	}
	for _, p := range tc.Setup.Pipes {
		fmt.Printf("    pipe %d: %v\n", p.ID, p.Items)
	}
	for _, q := range tc.Setup.Queues {
		if q.Core < 0 {
			fmt.Printf("    queue ordered: %v\n", q.Items)
		} else {
			fmt.Printf("    queue core %d: %v\n", q.Core, q.Items)
		}
	}
	for _, fd := range tc.Setup.FDs {
		if fd.Pipe {
			fmt.Printf("    fd p%d:%d -> pipe %d (write=%v)\n", fd.Proc, fd.FD, fd.PipeID, fd.WriteEnd)
		} else {
			fmt.Printf("    fd p%d:%d -> inode %d off=%d\n", fd.Proc, fd.FD, fd.Inum, fd.Off)
		}
	}
	for _, v := range tc.Setup.VMAs {
		fmt.Printf("    vma p%d:page%d anon=%v wr=%v inode=%d foff=%d\n",
			v.Proc, v.Page, v.Anon, v.Writable, v.Inum, v.Foff)
	}
	fmt.Printf("  op0: %v\n  op1: %v\n", tc.Calls[0], tc.Calls[1])
}

// kernelSet resolves the -kernel flag against the spec's implementation
// bindings: "both"/"all" selects every implementation of the spec.
func kernelSet(sp spec.Spec, s string) []sweep.KernelSpec {
	var names []string
	if s != "both" && s != "all" {
		names = strings.Split(s, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
	}
	ks, err := eval.ImplSpecs(sp, names...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "commuter:", err)
		os.Exit(2)
	}
	return ks
}

func cmdMatrix(args []string) {
	fs := flag.NewFlagSet("matrix", flag.ExitOnError)
	ops := fs.String("ops", "", `operation universe: "all", a spec-named subset ("fs"), or a comma list`)
	specName := specFlag(fs)
	kern := fs.String("kernel", "both", `implementation names, or "both"/"all" for every one`)
	perPath := fs.Int("per-path", 4, "max isomorphism classes per path")
	lowest := fs.Bool("lowestfd", false, "model POSIX's lowest-FD rule instead of O_ANYFD nondeterminism")
	fs.Parse(args)

	sp := resolveSpec(*specName)
	universe := opSet(sp, defaultOps(sp, *ops))
	kernels := kernelSet(sp, *kern)
	start := time.Now()
	tests := eval.GenerateAllTests(sp, universe,
		analyzer.Options{Config: spec.Config{LowestFD: *lowest}},
		testgen.Options{MaxTestsPerPath: *perPath, LowestFD: *lowest},
		func(pair string, n int) {
			fmt.Fprintf(os.Stderr, "generated %-20s %4d tests (%v)\n", pair, n, time.Since(start).Round(time.Second))
		})
	total := 0
	for _, ts := range tests {
		total += len(ts.Tests)
	}
	fmt.Printf("generated %d tests for %d operations in %v\n\n",
		total, len(universe), time.Since(start).Round(time.Second))

	for _, ks := range kernels {
		m, err := eval.CheckMatrix(sp, ks.Name, tests)
		if err != nil {
			fmt.Fprintln(os.Stderr, "commuter:", err)
			os.Exit(1)
		}
		fmt.Println(eval.FormatMatrix(m))
	}
}

// defaultOps resolves the -ops selector, falling back to the spec's own
// declared default when the flag was not given.
func defaultOps(sp spec.Spec, flagVal string) string {
	if flagVal != "" {
		return flagVal
	}
	return sp.DefaultSet()
}

func cmdSweep(args []string) {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	ops := fs.String("ops", "", `operation universe: "all", a spec-named subset ("fs"), or a comma list`)
	specName := specFlag(fs)
	j := fs.Int("j", runtime.NumCPU(), "worker pool size")
	cacheDir := fs.String("cache", "", "result cache directory (empty disables caching)")
	out := fs.String("out", "", "write per-pair results as JSONL to this file")
	kern := fs.String("kernel", "both", `implementation names, or "both"/"all" for every one`)
	perPath := fs.Int("per-path", 4, "max isomorphism classes per path")
	lowest := fs.Bool("lowestfd", false, "model POSIX's lowest-FD rule instead of O_ANYFD nondeterminism")
	fs.Parse(args)

	sp := resolveSpec(*specName)
	cfg := sweep.Config{
		Spec:     sp,
		Ops:      opSet(sp, defaultOps(sp, *ops)),
		Kernels:  kernelSet(sp, *kern),
		Analyzer: analyzer.Options{Config: spec.Config{LowestFD: *lowest}},
		Testgen:  testgen.Options{MaxTestsPerPath: *perPath, LowestFD: *lowest},
		Workers:  *j,
		Progress: func(ev sweep.Event) {
			from := "computed"
			if ev.Cached {
				from = "cached"
			}
			fmt.Fprintf(os.Stderr, "[%3d/%3d] %-20s %4d tests %-8s in %.0fms (total %v)\n",
				ev.Done, ev.Total, ev.Pair, ev.Tests, from, ev.PairMS, ev.Elapsed.Round(time.Millisecond))
		},
	}
	if *cacheDir != "" {
		c, err := sweep.OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "commuter:", err)
			os.Exit(1)
		}
		cfg.Cache = c
	}
	var artifact *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "commuter:", err)
			os.Exit(1)
		}
		artifact = f
		cfg.Artifact = f
	}

	res, err := sweep.Run(cfg)
	if err != nil {
		if artifact != nil {
			// The artifact holds an arbitrary prefix of the failed sweep,
			// and a truncated JSONL file parses as a complete one; remove
			// it so nothing downstream mistakes it for a finished run.
			artifact.Close()
			os.Remove(*out)
		}
		fmt.Fprintln(os.Stderr, "commuter:", err)
		os.Exit(1)
	}
	if artifact != nil {
		// A close error (deferred write failure on NFS, full disk) means a
		// truncated artifact; remove it and fail loudly rather than exit 0
		// leaving bad data that parses as a complete run.
		if err := artifact.Close(); err != nil {
			os.Remove(*out)
			fmt.Fprintln(os.Stderr, "commuter: artifact:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("swept %d pairs (%d tests) on %d workers in %v",
		len(res.Pairs), res.TotalTests(), res.Workers, res.Elapsed.Round(time.Millisecond))
	if cfg.Cache != nil {
		fmt.Printf("; cache: testgen %d hits/%d misses, check %d hits/%d misses",
			res.Cache.TestgenHits, res.Cache.TestgenMisses,
			res.Cache.CheckHits, res.Cache.CheckMisses)
	}
	fmt.Print("\n\n")
	if res.CacheWriteErrors > 0 {
		fmt.Fprintf(os.Stderr, "commuter: warning: %d cache entries could not be stored\n", res.CacheWriteErrors)
	}
	for _, m := range eval.MatricesFromSweep(res) {
		fmt.Println(eval.FormatMatrix(m))
	}
}
