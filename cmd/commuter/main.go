// Command commuter drives the COMMUTER pipeline: it analyzes the
// commutativity of modeled POSIX operation pairs, generates concrete test
// cases from the commutativity conditions, and checks kernel
// implementations for conflict-freedom, regenerating the paper's Figure 6.
//
// Usage:
//
//	commuter analyze -pair rename,rename     # print commutativity conditions
//	commuter testgen -pair rename,rename     # print generated test cases
//	commuter matrix  -ops fs                 # Figure 6 for both kernels
//	commuter matrix  -ops all -kernel sv6    # one kernel, all 18 ops
//	commuter sweep   -ops all -j 8           # parallel, cacheable matrix run
//	commuter sweep   -ops all -cache .sweep  # repeat sweeps are incremental
//
// The -ops flag selects the operation universe: "fs" (the 9 file-system
// metadata and descriptor calls — fast), "all" (the full 18), or a
// comma-separated list (deduplicated, first appearance wins). Every
// pipeline command takes -lowestfd to model POSIX's lowest-FD rule instead
// of the O_ANYFD variant, reproducing the lowest-FD column of Figure 6.
//
// The full 18-op matrix is dominated by the VM pairs; sweep fans the pairs
// across a worker pool (-j, default all CPUs) and can persist per-pair
// results in an on-disk cache (-cache), so a warm rerun finishes in well
// under a second and a cold run takes minutes of wall-clock rather than
// the tens of minutes the sequential path needs.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/analyzer"
	"repro/internal/eval"
	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/sweep"
	"repro/internal/testgen"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "analyze":
		cmdAnalyze(args)
	case "testgen":
		cmdTestgen(args)
	case "matrix":
		cmdMatrix(args)
	case "sweep":
		cmdSweep(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: commuter {analyze|testgen|matrix|sweep} [flags]")
	os.Exit(2)
}

func parsePair(s string) (*model.OpDef, *model.OpDef) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		fmt.Fprintln(os.Stderr, "commuter: -pair wants op1,op2")
		os.Exit(2)
	}
	a, b := model.OpByName(parts[0]), model.OpByName(parts[1])
	if a == nil || b == nil {
		fmt.Fprintf(os.Stderr, "commuter: unknown op in %q\n", s)
		os.Exit(2)
	}
	return a, b
}

func opSet(s string) []*model.OpDef {
	switch s {
	case "all":
		return model.Ops()
	case "fs":
		names := []string{"open", "link", "unlink", "rename", "stat", "fstat", "lseek", "close", "pipe"}
		var out []*model.OpDef
		for _, n := range names {
			out = append(out, model.OpByName(n))
		}
		return out
	}
	// Dedupe while preserving first-appearance order: a repeated name
	// ("open,open") must not enumerate its pairs more than once, which
	// would multi-count them in matrix totals.
	var out []*model.OpDef
	seen := map[string]bool{}
	for _, n := range strings.Split(s, ",") {
		op := model.OpByName(strings.TrimSpace(n))
		if op == nil {
			fmt.Fprintf(os.Stderr, "commuter: unknown op %q\n", n)
			os.Exit(2)
		}
		if seen[op.Name] {
			continue
		}
		seen[op.Name] = true
		out = append(out, op)
	}
	return out
}

func cmdAnalyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	pair := fs.String("pair", "rename,rename", "operation pair to analyze")
	lowest := fs.Bool("lowestfd", false, "model POSIX's lowest-FD rule instead of O_ANYFD nondeterminism")
	verbose := fs.Bool("v", false, "print each path's commutativity condition")
	fs.Parse(args)

	a, b := parsePair(*pair)
	start := time.Now()
	r := analyzer.AnalyzePair(a, b, analyzer.Options{Config: model.Config{LowestFD: *lowest}})
	fmt.Printf("%s (%v)\n", r.Summary(), time.Since(start).Round(time.Millisecond))
	fmt.Println("\ncommutative situations (§5.1-style clauses):")
	for _, d := range analyzer.Describe(r) {
		fmt.Printf("  - %s\n", d)
	}
	if *verbose {
		fmt.Println("\nraw per-path conditions:")
		for i, p := range r.Paths {
			tag := ""
			if p.Commutes {
				tag += " commutes"
			}
			if p.CanDiverge {
				tag += " diverges"
			}
			if p.Unknown {
				tag += " unknown(solver budget)"
			}
			fmt.Printf("path %d:%s\n  condition: %v\n", i, tag, p.CommuteCond)
		}
	}
}

func cmdTestgen(args []string) {
	fs := flag.NewFlagSet("testgen", flag.ExitOnError)
	pair := fs.String("pair", "rename,rename", "operation pair")
	perPath := fs.Int("per-path", 4, "max isomorphism classes per path")
	lowest := fs.Bool("lowestfd", false, "model POSIX's lowest-FD rule instead of O_ANYFD nondeterminism")
	check := fs.Bool("check", false, "also run the tests on both kernels")
	fs.Parse(args)

	a, b := parsePair(*pair)
	r := analyzer.AnalyzePair(a, b, analyzer.Options{Config: model.Config{LowestFD: *lowest}})
	tests, truncated := testgen.GenerateChecked(r, testgen.Options{MaxTestsPerPath: *perPath, LowestFD: *lowest})
	fmt.Printf("%d test cases for %s x %s\n", len(tests), r.OpA, r.OpB)
	if n := r.Unknown() + truncated; n > 0 {
		fmt.Fprintf(os.Stderr, "commuter: warning: %d path(s) hit the solver budget; the test set is a lower bound\n", n)
	}
	for _, tc := range tests {
		printTest(tc)
		if *check {
			for _, kn := range []string{"linux", "sv6"} {
				res, err := kernel.Check(eval.NewKernelFunc(kn), tc)
				if err != nil {
					fmt.Fprintf(os.Stderr, "  %s: %v\n", kn, err)
					continue
				}
				verdict := "conflict-free"
				if !res.ConflictFree {
					names := make([]string, len(res.Conflicts))
					for i, c := range res.Conflicts {
						names[i] = c.CellName
					}
					verdict = "CONFLICTS on " + strings.Join(names, ", ")
				}
				fmt.Printf("  %-5s: %s\n", kn, verdict)
			}
		}
	}
}

// printTest renders a test case in the style of the paper's Figure 5.
func printTest(tc kernel.TestCase) {
	fmt.Printf("\ntest %s:\n", tc.ID)
	fmt.Println("  setup:")
	for _, ino := range tc.Setup.Inodes {
		fmt.Printf("    inode %d: len=%d extra_links=%d pages=%v\n", ino.Inum, ino.Len, ino.ExtraLinks, ino.Pages)
	}
	for _, f := range tc.Setup.Files {
		fmt.Printf("    file %s -> inode %d\n", f.Name, f.Inum)
	}
	for _, p := range tc.Setup.Pipes {
		fmt.Printf("    pipe %d: %v\n", p.ID, p.Items)
	}
	for _, fd := range tc.Setup.FDs {
		if fd.Pipe {
			fmt.Printf("    fd p%d:%d -> pipe %d (write=%v)\n", fd.Proc, fd.FD, fd.PipeID, fd.WriteEnd)
		} else {
			fmt.Printf("    fd p%d:%d -> inode %d off=%d\n", fd.Proc, fd.FD, fd.Inum, fd.Off)
		}
	}
	for _, v := range tc.Setup.VMAs {
		fmt.Printf("    vma p%d:page%d anon=%v wr=%v inode=%d foff=%d\n",
			v.Proc, v.Page, v.Anon, v.Writable, v.Inum, v.Foff)
	}
	fmt.Printf("  op0: %v\n  op1: %v\n", tc.Calls[0], tc.Calls[1])
}

// kernelSet resolves the -kernel flag to implementation names.
func kernelSet(s string) []string {
	switch s {
	case "both":
		return []string{"linux", "sv6"}
	case "linux", "sv6":
		return []string{s}
	}
	fmt.Fprintf(os.Stderr, "commuter: unknown kernel %q (want linux, sv6 or both)\n", s)
	os.Exit(2)
	return nil
}

func cmdMatrix(args []string) {
	fs := flag.NewFlagSet("matrix", flag.ExitOnError)
	ops := fs.String("ops", "fs", `operation universe: "fs", "all", or a comma list`)
	kern := fs.String("kernel", "both", "linux, sv6, or both")
	perPath := fs.Int("per-path", 4, "max isomorphism classes per path")
	lowest := fs.Bool("lowestfd", false, "model POSIX's lowest-FD rule instead of O_ANYFD nondeterminism")
	fs.Parse(args)

	universe := opSet(*ops)
	kernels := kernelSet(*kern)
	start := time.Now()
	tests := eval.GenerateAllTests(universe,
		analyzer.Options{Config: model.Config{LowestFD: *lowest}},
		testgen.Options{MaxTestsPerPath: *perPath, LowestFD: *lowest},
		func(pair string, n int) {
			fmt.Fprintf(os.Stderr, "generated %-20s %4d tests (%v)\n", pair, n, time.Since(start).Round(time.Second))
		})
	total := 0
	for _, ts := range tests {
		total += len(ts.Tests)
	}
	fmt.Printf("generated %d tests for %d operations in %v\n\n",
		total, len(universe), time.Since(start).Round(time.Second))

	for _, kn := range kernels {
		m, err := eval.CheckMatrix(kn, tests)
		if err != nil {
			fmt.Fprintln(os.Stderr, "commuter:", err)
			os.Exit(1)
		}
		fmt.Println(eval.FormatMatrix(m))
	}
}

func cmdSweep(args []string) {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	ops := fs.String("ops", "fs", `operation universe: "fs", "all", or a comma list`)
	j := fs.Int("j", runtime.NumCPU(), "worker pool size")
	cacheDir := fs.String("cache", "", "result cache directory (empty disables caching)")
	out := fs.String("out", "", "write per-pair results as JSONL to this file")
	kern := fs.String("kernel", "both", "linux, sv6, or both")
	perPath := fs.Int("per-path", 4, "max isomorphism classes per path")
	lowest := fs.Bool("lowestfd", false, "model POSIX's lowest-FD rule instead of O_ANYFD nondeterminism")
	fs.Parse(args)

	cfg := sweep.Config{
		Ops:      opSet(*ops),
		Kernels:  eval.SweepKernels(kernelSet(*kern)...),
		Analyzer: analyzer.Options{Config: model.Config{LowestFD: *lowest}},
		Testgen:  testgen.Options{MaxTestsPerPath: *perPath, LowestFD: *lowest},
		Workers:  *j,
		Progress: func(ev sweep.Event) {
			from := "computed"
			if ev.Cached {
				from = "cached"
			}
			fmt.Fprintf(os.Stderr, "[%3d/%3d] %-20s %4d tests %-8s in %.0fms (total %v)\n",
				ev.Done, ev.Total, ev.Pair, ev.Tests, from, ev.PairMS, ev.Elapsed.Round(time.Millisecond))
		},
	}
	if *cacheDir != "" {
		c, err := sweep.OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "commuter:", err)
			os.Exit(1)
		}
		cfg.Cache = c
	}
	var artifact *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "commuter:", err)
			os.Exit(1)
		}
		artifact = f
		cfg.Artifact = f
	}

	res, err := sweep.Run(cfg)
	if err != nil {
		if artifact != nil {
			// The artifact holds an arbitrary prefix of the failed sweep,
			// and a truncated JSONL file parses as a complete one; remove
			// it so nothing downstream mistakes it for a finished run.
			artifact.Close()
			os.Remove(*out)
		}
		fmt.Fprintln(os.Stderr, "commuter:", err)
		os.Exit(1)
	}
	if artifact != nil {
		// A close error (deferred write failure on NFS, full disk) means a
		// truncated artifact; remove it and fail loudly rather than exit 0
		// leaving bad data that parses as a complete run.
		if err := artifact.Close(); err != nil {
			os.Remove(*out)
			fmt.Fprintln(os.Stderr, "commuter: artifact:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("swept %d pairs (%d tests) on %d workers in %v",
		len(res.Pairs), res.TotalTests(), res.Workers, res.Elapsed.Round(time.Millisecond))
	if cfg.Cache != nil {
		fmt.Printf("; cache: testgen %d hits/%d misses, check %d hits/%d misses",
			res.Cache.TestgenHits, res.Cache.TestgenMisses,
			res.Cache.CheckHits, res.Cache.CheckMisses)
	}
	fmt.Print("\n\n")
	if res.CacheWriteErrors > 0 {
		fmt.Fprintf(os.Stderr, "commuter: warning: %d cache entries could not be stored\n", res.CacheWriteErrors)
	}
	for _, m := range eval.MatricesFromSweep(res) {
		fmt.Println(eval.FormatMatrix(m))
	}
}
