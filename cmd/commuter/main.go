// Command commuter drives the COMMUTER pipeline: it analyzes the
// commutativity of a modeled interface's operation pairs, generates
// concrete test cases from the commutativity conditions, and checks
// implementations for conflict-freedom, regenerating the paper's Figure 6.
//
// Usage:
//
//	commuter analyze -pair rename,rename     # print commutativity conditions
//	commuter testgen -pair rename,rename     # print generated test cases
//	commuter matrix  -ops fs                 # Figure 6 for both kernels
//	commuter matrix  -ops all -kernel sv6    # one kernel, all 18 ops
//	commuter sweep   -ops all -j 8           # parallel, cacheable matrix run
//	commuter sweep   -ops all -cache .sweep  # repeat sweeps are incremental
//	commuter matrix  -spec queue             # second interface: mail queues
//	commuter analyze -spec queue -pair send,send
//	commuter serve   -addr :8372 -cache .sweep   # host sweeps over HTTP
//	commuter sweep   -ops fs -server http://host:8372  # ...and consume them
//
// Every pipeline command runs through the commuter.Client façade and
// takes -server: with no URL the pipeline runs in-process, with one it
// runs on the named `commuter serve` instance over the versioned JSON
// protocol — same flags, same output, different machine. The serve
// subcommand hosts the pipeline (and the shared two-tier result cache)
// for any number of such clients.
//
// Every pipeline command takes -spec, selecting the modeled interface
// specification from the registry (default "posix", the 18 POSIX calls;
// "queue" is the §7.3 mail server's communication interface with its
// memq reference implementation; "vm" is the §5.2 virtual-memory
// interface — mmap/munmap/mprotect/memread/memwrite over per-process
// page mappings, checked on memvm; "kv" is an ordered key-value store —
// get/put/delete/scan, checked on memkv). The scalable commutativity
// rule is about interfaces, not about POSIX — the same ANALYZE → TESTGEN
// → CHECK layers run whichever spec is selected.
//
// The -ops flag selects the operation universe within the spec: "all"
// (every op), a spec-defined named subset (posix's "fs" is the 9
// file-system metadata and descriptor calls — fast; queue has "ordered"
// and "any", vm has "map" and "mem", kv has "point" and "range"), or a
// comma-separated list (deduplicated, first appearance wins). Every
// pipeline command takes -lowestfd to model POSIX's lowest-FD rule
// instead of the O_ANYFD variant, reproducing the lowest-FD column of
// Figure 6.
//
// The full 18-op matrix is dominated by the VM pairs; sweep fans the pairs
// across a worker pool (-j, default all CPUs) and can persist per-pair
// results in an on-disk cache (-cache locally, `serve -cache` remotely),
// so a warm rerun finishes in well under a second and a cold run takes
// minutes of wall-clock rather than the tens of minutes the sequential
// path needs. Cache keys fold in the spec name, so every spec can share
// one cache directory.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/commuter"
	"repro/internal/api"
	"repro/internal/eval"
	_ "repro/internal/kvspec" // registers the "kv" spec
	_ "repro/internal/model"  // registers the "posix" spec
	"repro/internal/obs"
	_ "repro/internal/queuespec" // registers the "queue" spec
	"repro/internal/spec"
	_ "repro/internal/vmspec" // registers the "vm" spec
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "analyze":
		cmdAnalyze(args)
	case "testgen":
		cmdTestgen(args)
	case "matrix":
		cmdMatrix(args)
	case "sweep":
		cmdSweep(args)
	case "serve":
		cmdServe(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: commuter {analyze|testgen|matrix|sweep|serve} [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "commuter:", err)
	// Usage-class failures (unknown specs/ops/kernels, malformed
	// requests) keep their historical exit status 2; pipeline failures
	// exit 1.
	var ae *api.Error
	if errors.As(err, &ae) && ae.Code == api.CodeBadRequest {
		os.Exit(2)
	}
	os.Exit(1)
}

// specFlag registers the -spec flag on a subcommand's flag set.
func specFlag(fs *flag.FlagSet) *string {
	return fs.String("spec", "posix",
		"interface specification to analyze (known: "+strings.Join(spec.Names(), ", ")+")")
}

// logFlag registers the -log flag on a subcommand's flag set. The default
// keeps the human-facing output (results on stdout, progress on stderr)
// unpolluted; -log info/debug turns on the engine's structured telemetry.
func logFlag(fs *flag.FlagSet) *string {
	return fs.String("log", "warn", "structured log level: debug, info, warn or error")
}

// setupLogging installs the process-wide structured logger at the given
// level (text lines on stderr) and returns it.
func setupLogging(level string) *slog.Logger {
	lv, err := obs.ParseLevel(level)
	if err != nil {
		fmt.Fprintln(os.Stderr, "commuter:", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv}))
	slog.SetDefault(logger)
	return logger
}

// serverFlag registers the -server flag on a subcommand's flag set.
func serverFlag(fs *flag.FlagSet) *string {
	return fs.String("server", "",
		"run the pipeline on this `commuter serve` URL instead of in-process")
}

// newClient builds the pipeline client the subcommand runs against: the
// in-process binding, or the wire binding when -server was given.
func newClient(server string) commuter.Client {
	if server == "" {
		return commuter.Local()
	}
	cli, err := commuter.Dial(server)
	if err != nil {
		fatal(err)
	}
	return cli
}

// runContext is the lifetime of one CLI invocation: Ctrl-C cancels it, and
// the cancellation propagates through the client into the pipeline (local
// workers or the remote server) instead of killing the process mid-write.
func runContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// splitPair parses the -pair flag into its two op names; name resolution
// (with its "known ops" listing) happens inside the client.
func splitPair(s string) (string, string) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		fmt.Fprintln(os.Stderr, "commuter: -pair wants op1,op2")
		os.Exit(2)
	}
	return strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
}

// opSet resolves the -ops selector against a local spec: "all", a
// spec-defined named subset, or a comma list — deduplicated preserving
// first-appearance order. Retained for in-process tooling (tests, the
// golden pin); the CLI proper passes selectors through the client, which
// applies the same resolution wherever it executes.
func opSet(sp spec.Spec, s string) []*spec.Op {
	out, err := spec.OpSet(sp, s)
	if err != nil {
		fmt.Fprintln(os.Stderr, "commuter:", err)
		os.Exit(2)
	}
	return out
}

// kernelNames parses the -kernel flag: "both"/"all" means every
// implementation of the spec (the client's default).
func kernelNames(s string) []string {
	if s == "both" || s == "all" {
		return nil
	}
	names := strings.Split(s, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	return names
}

func cmdAnalyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	pair := fs.String("pair", "rename,rename", "operation pair to analyze")
	specName := specFlag(fs)
	server := serverFlag(fs)
	lowest := fs.Bool("lowestfd", false, "model POSIX's lowest-FD rule instead of O_ANYFD nondeterminism")
	verbose := fs.Bool("v", false, "print each path's commutativity condition")
	logLevel := logFlag(fs)
	fs.Parse(args)
	setupLogging(*logLevel)

	ctx, stop := runContext()
	defer stop()
	cli := newClient(*server)
	defer cli.Close()
	opA, opB := splitPair(*pair)
	start := time.Now()
	a, err := cli.Analyze(ctx, opA, opB,
		commuter.WithSpec(*specName), commuter.WithLowestFD(*lowest))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s (%v)\n", a.Summary(), time.Since(start).Round(time.Millisecond))
	fmt.Println("\ncommutative situations (§5.1-style clauses):")
	for _, d := range a.Clauses {
		fmt.Printf("  - %s\n", d)
	}
	if *verbose {
		fmt.Println("\nraw per-path conditions:")
		for i, p := range a.PathDetails {
			tag := ""
			if p.Commutes {
				tag += " commutes"
			}
			if p.CanDiverge {
				tag += " diverges"
			}
			if p.Unknown {
				tag += " unknown(solver budget)"
			}
			fmt.Printf("path %d:%s\n  condition: %v\n", i, tag, p.Condition)
		}
	}
}

func cmdTestgen(args []string) {
	fs := flag.NewFlagSet("testgen", flag.ExitOnError)
	pair := fs.String("pair", "rename,rename", "operation pair")
	specName := specFlag(fs)
	server := serverFlag(fs)
	perPath := fs.Int("per-path", 4, "max isomorphism classes per path")
	lowest := fs.Bool("lowestfd", false, "model POSIX's lowest-FD rule instead of O_ANYFD nondeterminism")
	check := fs.Bool("check", false, "also run the tests on the spec's implementations")
	logLevel := logFlag(fs)
	fs.Parse(args)
	setupLogging(*logLevel)

	ctx, stop := runContext()
	defer stop()
	cli := newClient(*server)
	defer cli.Close()
	opA, opB := splitPair(*pair)
	opts := []commuter.Option{
		commuter.WithSpec(*specName),
		commuter.WithTestsPerPath(*perPath),
		commuter.WithLowestFD(*lowest),
	}
	ts, err := cli.GenerateTests(ctx, opA, opB, opts...)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%d test cases for %s x %s\n", len(ts.Tests), ts.OpA, ts.OpB)
	if ts.Unknown > 0 {
		fmt.Fprintf(os.Stderr, "commuter: warning: %d path(s) hit the solver budget; the test set is a lower bound\n", ts.Unknown)
	}

	// With -check, batch one Check call per implementation, then print
	// verdicts under each test in implementation order.
	var verdicts map[string][]commuter.TestVerdict
	var impls []string
	if *check {
		impls = implNames(ctx, cli, *specName)
		verdicts = map[string][]commuter.TestVerdict{}
		for _, kn := range impls {
			sum, err := cli.Check(ctx, kn, ts.Tests, opts...)
			if err != nil {
				fatal(err)
			}
			// The wire response is untrusted input: a short verdict list
			// (truncated body that still parses, a misbehaving proxy) must
			// fail cleanly, not index out of range below.
			if len(sum.Verdicts) != len(ts.Tests) {
				fatal(fmt.Errorf("%s returned %d verdicts for %d tests", kn, len(sum.Verdicts), len(ts.Tests)))
			}
			verdicts[kn] = sum.Verdicts
		}
	}
	for i, tc := range ts.Tests {
		printTest(tc)
		for _, kn := range impls {
			v := verdicts[kn][i]
			verdict := "conflict-free"
			if !v.ConflictFree {
				verdict = "CONFLICTS on " + strings.Join(v.Conflicts, ", ")
			}
			fmt.Printf("  %-5s: %s\n", kn, verdict)
		}
	}
}

// implNames looks up the named spec's implementations through the client,
// so -check works identically against a server.
func implNames(ctx context.Context, cli commuter.Client, specName string) []string {
	infos, err := cli.Specs(ctx)
	if err != nil {
		fatal(err)
	}
	for _, in := range infos {
		if in.Name == specName {
			return in.Impls
		}
	}
	fatal(fmt.Errorf("spec %q not offered by the pipeline", specName))
	return nil
}

// printTest renders a test case in the style of the paper's Figure 5.
func printTest(tc commuter.TestCase) {
	fmt.Printf("\ntest %s:\n", tc.ID)
	fmt.Println("  setup:")
	for _, ino := range tc.Setup.Inodes {
		fmt.Printf("    inode %d: len=%d extra_links=%d pages=%v\n", ino.Inum, ino.Len, ino.ExtraLinks, ino.Pages)
	}
	for _, f := range tc.Setup.Files {
		fmt.Printf("    file %s -> inode %d\n", f.Name, f.Inum)
	}
	for _, p := range tc.Setup.Pipes {
		fmt.Printf("    pipe %d: %v\n", p.ID, p.Items)
	}
	for _, q := range tc.Setup.Queues {
		if q.Core < 0 {
			fmt.Printf("    queue ordered: %v\n", q.Items)
		} else {
			fmt.Printf("    queue core %d: %v\n", q.Core, q.Items)
		}
	}
	for _, fd := range tc.Setup.FDs {
		if fd.Pipe {
			fmt.Printf("    fd p%d:%d -> pipe %d (write=%v)\n", fd.Proc, fd.FD, fd.PipeID, fd.WriteEnd)
		} else {
			fmt.Printf("    fd p%d:%d -> inode %d off=%d\n", fd.Proc, fd.FD, fd.Inum, fd.Off)
		}
	}
	for _, v := range tc.Setup.VMAs {
		fmt.Printf("    vma p%d:page%d anon=%v wr=%v inode=%d foff=%d\n",
			v.Proc, v.Page, v.Anon, v.Writable, v.Inum, v.Foff)
	}
	for _, kv := range tc.Setup.KVs {
		fmt.Printf("    kv %d = %d\n", kv.Key, kv.Val)
	}
	fmt.Printf("  op0: %v\n  op1: %v\n", tc.Calls[0], tc.Calls[1])
}

// sweepOptions assembles the client options shared by matrix and sweep.
func sweepOptions(specName, ops, kern string, perPath int, lowest bool, workers int) []commuter.Option {
	opts := []commuter.Option{
		commuter.WithSpec(specName),
		commuter.WithTestsPerPath(perPath),
		commuter.WithLowestFD(lowest),
	}
	if ops != "" {
		opts = append(opts, commuter.WithOpSet(ops))
	}
	if names := kernelNames(kern); len(names) > 0 {
		opts = append(opts, commuter.WithKernels(names...))
	}
	if workers > 0 {
		opts = append(opts, commuter.WithWorkers(workers))
	}
	return opts
}

// runSweep drives one streamed sweep, printing progress to stderr and
// optionally mirroring per-pair results to a JSONL artifact.
func runSweep(ctx context.Context, cli commuter.Client, artifactPath string, opts []commuter.Option) *commuter.SweepResult {
	var artifact *os.File
	var enc *json.Encoder
	if artifactPath != "" {
		f, err := os.Create(artifactPath)
		if err != nil {
			fatal(err)
		}
		artifact = f
		enc = json.NewEncoder(f)
	}
	// The artifact holds an arbitrary prefix of a failed sweep, and a
	// truncated JSONL file parses as a complete one; remove it on any
	// failure so nothing downstream mistakes it for a finished run.
	discardArtifact := func() {
		if artifact != nil {
			artifact.Close()
			os.Remove(artifactPath)
		}
	}

	var res *commuter.SweepResult
	for upd, err := range cli.SweepStream(ctx, opts...) {
		if err != nil {
			discardArtifact()
			fatal(err)
		}
		if upd.Pair != nil && enc != nil {
			if werr := enc.Encode(upd.Pair); werr != nil {
				discardArtifact()
				fatal(fmt.Errorf("artifact write: %w", werr))
			}
		}
		if ev := upd.Progress; ev != nil {
			from := "computed"
			switch {
			case ev.Cached:
				from = "cached"
			case ev.Coalesced:
				from = "coalesced"
			}
			fmt.Fprintf(os.Stderr, "[%3d/%3d] %-20s %4d tests %-8s in %.0fms (total %v)\n",
				ev.Done, ev.Total, ev.Pair, ev.Tests, from, ev.PairMS, ev.Elapsed.Round(time.Millisecond))
		}
		if upd.Result != nil {
			res = upd.Result
		}
	}
	if res == nil {
		discardArtifact()
		fatal(fmt.Errorf("sweep stream ended without a result"))
	}
	if artifact != nil {
		// A close error (deferred write failure on NFS, full disk) means a
		// truncated artifact; remove it and fail loudly rather than exit 0
		// leaving bad data that parses as a complete run.
		if err := artifact.Close(); err != nil {
			os.Remove(artifactPath)
			fatal(fmt.Errorf("artifact: %w", err))
		}
	}
	return res
}

// writeTraceFile exports the sweep's per-pair/per-phase timeline as a
// Chrome trace-event file. Remote sweeps work too: the phase record rides
// the wire inside each PairResult.
func writeTraceFile(path string, res *commuter.SweepResult) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := commuter.WriteSweepTrace(f, res); err != nil {
		f.Close()
		os.Remove(path)
		fatal(fmt.Errorf("trace: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		fatal(fmt.Errorf("trace: %w", err))
	}
	fmt.Fprintf(os.Stderr, "commuter: wrote trace to %s (load in chrome://tracing or ui.perfetto.dev)\n", path)
}

func cmdMatrix(args []string) {
	fs := flag.NewFlagSet("matrix", flag.ExitOnError)
	ops := fs.String("ops", "", `operation universe: "all", a spec-named subset ("fs"), or a comma list`)
	specName := specFlag(fs)
	server := serverFlag(fs)
	kern := fs.String("kernel", "both", `implementation names, or "both"/"all" for every one`)
	perPath := fs.Int("per-path", 4, "max isomorphism classes per path")
	lowest := fs.Bool("lowestfd", false, "model POSIX's lowest-FD rule instead of O_ANYFD nondeterminism")
	logLevel := logFlag(fs)
	fs.Parse(args)
	setupLogging(*logLevel)

	ctx, stop := runContext()
	defer stop()
	cli := newClient(*server)
	defer cli.Close()
	res := runSweep(ctx, cli, "", sweepOptions(*specName, *ops, *kern, *perPath, *lowest, 0))
	fmt.Printf("generated %d tests for %d pairs in %v\n\n",
		res.TotalTests(), len(res.Pairs), res.Elapsed.Round(time.Second))
	for _, m := range eval.MatricesFromSweep(res) {
		fmt.Println(eval.FormatMatrix(m))
	}
}

func cmdSweep(args []string) {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	ops := fs.String("ops", "", `operation universe: "all", a spec-named subset ("fs"), or a comma list`)
	specName := specFlag(fs)
	server := serverFlag(fs)
	j := fs.Int("j", 0, "worker pool size (default: executing side's CPUs)")
	cacheDir := fs.String("cache", "", "result cache backend: a directory (or dir:PATH), mem[:N], an http(s) server URL, or a comma list layered fastest-first (empty disables caching; server-side caches are set by `serve -cache`)")
	out := fs.String("out", "", "write per-pair results as JSONL to this file")
	kern := fs.String("kernel", "both", `implementation names, or "both"/"all" for every one`)
	perPath := fs.Int("per-path", 4, "max isomorphism classes per path")
	lowest := fs.Bool("lowestfd", false, "model POSIX's lowest-FD rule instead of O_ANYFD nondeterminism")
	tracePath := fs.String("trace", "", "write a Chrome trace-event timeline of the sweep to this file")
	fleet := fs.String("fleet", "", "fleet coordinator: `coordinator=URL` (or a bare URL) of a commuter serve instance; this sweep then executes only the pairs it leases, sharing the work with every other member (server-side fleets are set by `serve -fleet`)")
	logLevel := logFlag(fs)
	fs.Parse(args)
	setupLogging(*logLevel)

	ctx, stop := runContext()
	defer stop()
	cli := newClient(*server)
	defer cli.Close()
	workers := *j
	if *server == "" && workers == 0 {
		workers = runtime.NumCPU()
	}
	opts := sweepOptions(*specName, *ops, *kern, *perPath, *lowest, workers)
	if *cacheDir != "" {
		opts = append(opts, commuter.WithCache(*cacheDir))
	}
	if *fleet != "" {
		opts = append(opts, commuter.WithFleet(fleetURL(*fleet)))
	}
	res := runSweep(ctx, cli, *out, opts)
	if *tracePath != "" {
		writeTraceFile(*tracePath, res)
	}

	fmt.Printf("swept %d pairs (%d tests) on %d workers in %v",
		len(res.Pairs), res.TotalTests(), res.Workers, res.Elapsed.Round(time.Millisecond))
	// Replay shape: how many setup groups the CHECK stages batched into,
	// and the widest intra-pair shard fan-out the worker budget allowed.
	groups, maxShards := 0, 0
	for _, p := range res.Pairs {
		groups += p.CheckGroups
		if p.CheckShards > maxShards {
			maxShards = p.CheckShards
		}
	}
	if groups > 0 {
		fmt.Printf("; check: %d setup groups, <=%d shards/pair", groups, maxShards)
	}
	// Print per-tier statistics whenever a cache was in play: requested
	// locally, or reported back non-zero by a caching server.
	if *cacheDir != "" || res.Cache != (commuter.SweepCacheStats{}) {
		fmt.Printf("; cache: testgen %d hits/%d misses, check %d hits/%d misses",
			res.Cache.TestgenHits, res.Cache.TestgenMisses,
			res.Cache.CheckHits, res.Cache.CheckMisses)
	}
	fmt.Print("\n\n")
	if res.CacheWriteErrors > 0 {
		fmt.Fprintf(os.Stderr, "commuter: warning: %d cache entries could not be stored\n", res.CacheWriteErrors)
	}
	for _, m := range eval.MatricesFromSweep(res) {
		fmt.Println(eval.FormatMatrix(m))
	}
}
