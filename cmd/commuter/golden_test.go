package main

import (
	"context"
	"net/http/httptest"
	"os"
	"testing"

	"repro/commuter"
	"repro/internal/analyzer"
	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/testgen"
)

// TestMatrixFSGolden pins the rendering of `commuter matrix -ops fs`
// byte-for-byte against a golden file captured before the spec-layer
// refactor: the pluggable spec machinery must be a pure re-plumbing of
// the POSIX pipeline — same tests, same cells, same formatting. Refresh
// testdata/matrix_fs.golden only for a deliberate semantic change.
func TestMatrixFSGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full fs matrix in -short mode")
	}
	want, err := os.ReadFile("testdata/matrix_fs.golden")
	if err != nil {
		t.Fatal(err)
	}
	universe := opSet(model.Spec, "fs")
	tests := eval.GenerateAllTests(model.Spec, universe,
		analyzer.Options{}, testgen.Options{MaxTestsPerPath: 4}, nil)
	got := ""
	for _, kn := range []string{"linux", "sv6"} {
		m, err := eval.CheckMatrix(model.Spec, kn, tests)
		if err != nil {
			t.Fatal(err)
		}
		got += eval.FormatMatrix(m) + "\n"
	}
	if got != string(want) {
		t.Errorf("matrix -ops fs rendering changed from golden\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestMatrixVMKVGolden pins `commuter matrix -spec vm` and `-spec kv`
// byte-for-byte against golden files, through both client bindings: the
// local in-process pipeline and a `commuter serve` loopback (the -server
// flag's path). The two renderings must also match each other exactly —
// the serve binding is pure transport, never a reinterpretation. Refresh
// testdata/matrix_{vm,kv}.golden only for a deliberate semantic change to
// the vm or kv spec, its concretizer, or its reference kernel.
func TestMatrixVMKVGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full vm/kv matrices in -short mode")
	}
	ctx := context.Background()
	h, err := commuter.NewServerHandler(commuter.Local())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	render := func(t *testing.T, cli commuter.Client, specName string) string {
		t.Helper()
		res, err := cli.Sweep(ctx, commuter.WithSpec(specName), commuter.WithTestsPerPath(4))
		if err != nil {
			t.Fatal(err)
		}
		got := ""
		for _, m := range eval.MatricesFromSweep(res) {
			got += eval.FormatMatrix(m) + "\n"
		}
		return got
	}

	for _, specName := range []string{"vm", "kv"} {
		t.Run(specName, func(t *testing.T) {
			want, err := os.ReadFile("testdata/matrix_" + specName + ".golden")
			if err != nil {
				t.Fatal(err)
			}
			local := render(t, commuter.Local(), specName)
			if local != string(want) {
				t.Errorf("matrix -spec %s rendering changed from golden\ngot:\n%s\nwant:\n%s",
					specName, local, want)
			}
			remote, err := commuter.Dial(srv.URL)
			if err != nil {
				t.Fatal(err)
			}
			defer remote.Close()
			if served := render(t, remote, specName); served != local {
				t.Errorf("matrix -spec %s -server diverged from local\nserved:\n%s\nlocal:\n%s",
					specName, served, local)
			}
		})
	}
}
