package main

import (
	"os"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/testgen"
)

// TestMatrixFSGolden pins the rendering of `commuter matrix -ops fs`
// byte-for-byte against a golden file captured before the spec-layer
// refactor: the pluggable spec machinery must be a pure re-plumbing of
// the POSIX pipeline — same tests, same cells, same formatting. Refresh
// testdata/matrix_fs.golden only for a deliberate semantic change.
func TestMatrixFSGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full fs matrix in -short mode")
	}
	want, err := os.ReadFile("testdata/matrix_fs.golden")
	if err != nil {
		t.Fatal(err)
	}
	universe := opSet(model.Spec, "fs")
	tests := eval.GenerateAllTests(model.Spec, universe,
		analyzer.Options{}, testgen.Options{MaxTestsPerPath: 4}, nil)
	got := ""
	for _, kn := range []string{"linux", "sv6"} {
		m, err := eval.CheckMatrix(model.Spec, kn, tests)
		if err != nil {
			t.Fatal(err)
		}
		got += eval.FormatMatrix(m) + "\n"
	}
	if got != string(want) {
		t.Errorf("matrix -ops fs rendering changed from golden\ngot:\n%s\nwant:\n%s", got, want)
	}
}
