package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBaseline(t *testing.T, records ...benchRecord) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH_baseline.json")
	data, err := json.Marshal(benchReport{Schema: 1, Records: records})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareBaseline pins the regression gate: 2x on ms records with a
// floor that keeps scheduler noise on tiny baselines from tripping it.
func TestCompareBaseline(t *testing.T) {
	base := writeBaseline(t,
		benchRecord{Name: "sweep_wall_ms", Value: 100, Unit: "ms"},
		benchRecord{Name: "micro_ms", Value: 1, Unit: "ms"},
		benchRecord{Name: "tests", Value: 42, Unit: "tests"},
	)

	ok := []benchRecord{
		{Name: "sweep_wall_ms", Value: 199, Unit: "ms"}, // within 2x
		{Name: "micro_ms", Value: 9, Unit: "ms"},        // 9x, but under the 5ms-floor limit
		{Name: "tests", Value: 9999, Unit: "tests"},     // counts are not gated
		{Name: "new_ms", Value: 1e9, Unit: "ms"},        // not in baseline: ignored
	}
	if err := compareBaseline(base, ok); err != nil {
		t.Errorf("in-bound run failed the gate: %v", err)
	}

	bad := []benchRecord{{Name: "sweep_wall_ms", Value: 201, Unit: "ms"}}
	err := compareBaseline(base, bad)
	if err == nil {
		t.Fatal("2x+ regression passed the gate")
	}
	if !strings.Contains(err.Error(), "sweep_wall_ms") {
		t.Errorf("regression error does not name the record: %v", err)
	}

	// The floor is a lift, not a bypass: 10ms+ on a 1ms baseline fails.
	if err := compareBaseline(base, []benchRecord{{Name: "micro_ms", Value: 11, Unit: "ms"}}); err == nil {
		t.Error("regression above the floored limit passed the gate")
	}

	// Disjoint record sets are a configuration error, not a pass.
	if err := compareBaseline(base, []benchRecord{{Name: "tests", Value: 1, Unit: "tests"}}); err == nil {
		t.Error("run sharing no ms records passed the gate")
	}
}

// TestPercentile pins the nearest-rank read the load harness reports.
func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.50, 5}, {0.90, 9}, {0.99, 10}, {1, 10}} {
		if got := percentile(sorted, tc.q); got != tc.want {
			t.Errorf("p%v = %v, want %v", tc.q*100, got, tc.want)
		}
	}
	if got := percentile([]float64{7}, 0.5); got != 7 {
		t.Errorf("single-sample p50 = %v", got)
	}
}
