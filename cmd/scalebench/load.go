package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/commuter"
)

// cmdLoad is a load harness for `commuter serve`: it points N concurrent
// Dial clients at one server, drives R streamed sweeps through them (the
// first sweep per cache is cold, the rest warm — the serving mix the
// shared cache exists for), and reports per-request latency percentiles
// plus the server's own /metrics deltas, so a change to the serving path
// is judged by the server's telemetry, not just by client-side clocks.
//
// A -stall fraction of the clients consume their NDJSON stream slowly
// (sleeping -stall-ms per frame), exercising the per-frame flush path
// under TCP backpressure — the regression class streaming servers grow.
//
// With no -server, it self-hosts an in-process server (fresh temp cache)
// on a loopback port and load-tests that, so the harness works in a bare
// checkout and in CI.
func cmdLoad(args []string) {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	server := fs.String("server", "", "`commuter serve` URL to load (default: self-host one on a loopback port)")
	clients := fs.Int("clients", 8, "concurrent Dial clients")
	requests := fs.Int("requests", 32, "total sweep requests across all clients")
	specName := fs.String("spec", "queue", "spec to sweep")
	ops := fs.String("ops", "all", "operation universe within the spec")
	stall := fs.Float64("stall", 0.25, "fraction of clients that consume their stream slowly")
	stallMS := fs.Int("stall-ms", 20, "per-frame delay of a stalling consumer")
	fs.Parse(args)
	if *clients < 1 || *requests < 1 || *stall < 0 || *stall > 1 {
		fmt.Fprintln(os.Stderr, "scalebench: load wants -clients >= 1, -requests >= 1, -stall in [0,1]")
		os.Exit(2)
	}

	base := *server
	if base == "" {
		var shutdown func()
		var err error
		base, shutdown, err = selfHost()
		if err != nil {
			fmt.Fprintln(os.Stderr, "scalebench:", err)
			os.Exit(1)
		}
		defer shutdown()
		fmt.Printf("load: self-hosting a caching server on %s\n", base)
	}

	before, err := scrapeMetrics(base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scalebench: scraping /metrics:", err)
		os.Exit(1)
	}

	// One cold sweep up front, so the concurrent phase measures the
	// serving mix (all-warm plus whatever the stall pattern does) rather
	// than raced duplicate cold computations.
	opts := []commuter.Option{commuter.WithSpec(*specName), commuter.WithOpSet(*ops)}
	warmup := time.Now()
	if _, err := oneSweep(base, opts, 0); err != nil {
		fmt.Fprintln(os.Stderr, "scalebench: warmup sweep:", err)
		os.Exit(1)
	}
	fmt.Printf("load: warmup (cold) sweep in %v\n", time.Since(warmup).Round(time.Millisecond))

	stalling := int(*stall * float64(*clients))
	fmt.Printf("load: %d requests over %d clients (%d stalling %dms/frame), spec=%s ops=%s\n",
		*requests, *clients, stalling, *stallMS, *specName, *ops)

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []float64
		failures  []error
	)
	reqCh := make(chan int)
	start := time.Now()
	for c := 0; c < *clients; c++ {
		delay := 0
		if c < stalling {
			delay = *stallMS
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range reqCh {
				t0 := time.Now()
				_, err := oneSweep(base, opts, delay)
				d := float64(time.Since(t0)) / 1e6
				mu.Lock()
				if err != nil {
					failures = append(failures, err)
				} else {
					latencies = append(latencies, d)
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < *requests; i++ {
		reqCh <- i
	}
	close(reqCh)
	wg.Wait()
	wall := time.Since(start)

	sort.Float64s(latencies)
	fmt.Printf("load: %d ok, %d failed in %v (%.1f sweeps/s)\n",
		len(latencies), len(failures), wall.Round(time.Millisecond),
		float64(len(latencies))/wall.Seconds())
	if len(latencies) > 0 {
		fmt.Printf("load: latency p50=%.1fms p90=%.1fms p99=%.1fms max=%.1fms\n",
			percentile(latencies, 0.50), percentile(latencies, 0.90),
			percentile(latencies, 0.99), latencies[len(latencies)-1])
	}

	after, err := scrapeMetrics(base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scalebench: scraping /metrics:", err)
		os.Exit(1)
	}
	fmt.Println("load: server metric deltas:")
	printDeltas(before, after)

	for _, err := range failures {
		fmt.Fprintln(os.Stderr, "scalebench: load:", err)
	}
	if len(failures) > 0 {
		os.Exit(1)
	}
}

// selfHost starts an in-process caching server on a loopback port and
// returns its base URL and a shutdown func.
func selfHost() (string, func(), error) {
	dir, err := os.MkdirTemp("", "scalebench-load-*")
	if err != nil {
		return "", nil, err
	}
	// The harness's own serving logs would drown its report; keep them.
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	h, err := commuter.NewServerHandler(commuter.Local(),
		commuter.ServeWithCache(dir), commuter.ServeWithLogger(quiet))
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		os.RemoveAll(dir)
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// oneSweep runs one streamed sweep through a fresh Dial client, consuming
// every frame (sleeping delayMS per frame when stalling) and returning
// the terminal result.
func oneSweep(base string, opts []commuter.Option, delayMS int) (*commuter.SweepResult, error) {
	cli, err := commuter.Dial(base)
	if err != nil {
		return nil, err
	}
	defer cli.Close()
	var res *commuter.SweepResult
	for upd, err := range cli.SweepStream(context.Background(), opts...) {
		if err != nil {
			return nil, err
		}
		if delayMS > 0 {
			time.Sleep(time.Duration(delayMS) * time.Millisecond)
		}
		if upd.Result != nil {
			res = upd.Result
		}
	}
	if res == nil {
		return nil, errors.New("sweep stream ended without a result")
	}
	return res, nil
}

// percentile reads the q-quantile from an ascending slice (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// scrapeMetrics fetches and flattens a Prometheus text exposition into
// series -> value ("name{labels}" keys, comments dropped).
func scrapeMetrics(base string) (map[string]float64, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics: %s", resp.Status)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] = v
	}
	return out, sc.Err()
}

// printDeltas prints every commuter_* series the load moved — the proof
// the telemetry measures the traffic — skipping the histogram bucket
// series, whose per-bucket deltas just restate the percentile lines.
func printDeltas(before, after map[string]float64) {
	keys := make([]string, 0, len(after))
	for k := range after {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		name := k
		if i := strings.IndexByte(k, '{'); i >= 0 {
			name = k[:i]
		}
		if !strings.HasPrefix(name, "commuter_") || strings.HasSuffix(name, "_bucket") {
			continue
		}
		if d := after[k] - before[k]; d != 0 {
			fmt.Printf("  %-60s %+g\n", k, d)
		}
	}
}
