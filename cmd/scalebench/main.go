// Command scalebench regenerates the paper's Figure 7 throughput curves on
// the MESI coherence simulator:
//
//	scalebench stat    # Figure 7(a): statbench, three st_nlink variants
//	scalebench open    # Figure 7(b): openbench, any-FD vs lowest-FD
//	scalebench mail    # Figure 7(c): mail server, commutative vs regular
//	scalebench all     # the three Figure 7 benchmarks
//	scalebench perf    # machine-readable pipeline perf record
//	scalebench fleet   # N-member fleet sweep speedup vs one member
//
// Values are operations per million simulated cycles per core; the paper's
// absolute axes differ (real hardware), but the shapes — who scales, who
// collapses, and where — are the reproduction target.
//
// perf measures the pipeline itself rather than the simulated kernels: the
// Figure 6 fs-subset sweep wall-clock and the sym-engine (ANALYZE/TESTGEN)
// micro-benchmarks. The sweep runs through the commuter.Client façade —
// in-process by default, or against a `commuter serve` instance with
// -server, in which case the measurement covers the service (wire format,
// HTTP, streaming) end to end. With -json FILE it writes the measurements
// as a BENCH_*.json record (CI uploads one per run as an artifact), so
// the repository's performance trajectory is tracked instead of
// anecdotal.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/commuter"
	"repro/internal/analyzer"
	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/testgen"
)

func main() {
	// load carries its own flag set; dispatch it before the shared flags.
	if len(os.Args) > 1 && os.Args[1] == "load" {
		cmdLoad(os.Args[2:])
		return
	}
	coresFlag := flag.String("cores", "", "comma-separated core counts (default 1,10,...,80)")
	jsonPath := flag.String("json", "", "perf: also write the record to this BENCH_*.json file")
	server := flag.String("server", "", "perf: run the sweep on this `commuter serve` URL instead of in-process")
	baseline := flag.String("baseline", "", "perf: compare ms records against this BENCH_*.json and fail on >2x regressions")
	members := flag.Int("n", 2, "fleet: number of fleet members sharing one sweep")
	perMember := flag.Int("j", 0, "fleet: worker pool size per member (default NumCPU/n, so the fleet and single-member runs use the same total parallelism budget per member)")
	flag.Parse()
	cores := eval.DefaultCores
	if *coresFlag != "" {
		cores = nil
		for _, s := range strings.Split(*coresFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 || n > 96 {
				fmt.Fprintf(os.Stderr, "scalebench: bad core count %q\n", s)
				os.Exit(2)
			}
			cores = append(cores, n)
		}
	}
	which := "all"
	if flag.NArg() > 0 {
		which = flag.Arg(0)
	}
	run := func(name string) {
		switch name {
		case "stat":
			fmt.Println(eval.FormatCurves("Figure 7(a): statbench (fstats/Mcycle/core)", []eval.Curve{
				eval.Statbench(eval.StatFstatx, cores),
				eval.Statbench(eval.StatShared, cores),
				eval.Statbench(eval.StatRefcache, cores),
			}))
		case "open":
			fmt.Println(eval.FormatCurves("Figure 7(b): openbench (opens/Mcycle/core)", []eval.Curve{
				eval.Openbench(true, cores),
				eval.Openbench(false, cores),
			}))
		case "mail":
			fmt.Println(eval.FormatCurves("Figure 7(c): mail server (messages/Mcycle/core)", []eval.Curve{
				eval.Mailbench(true, cores),
				eval.Mailbench(false, cores),
			}))
		case "perf":
			if err := runPerf(*jsonPath, *server, *baseline); err != nil {
				fmt.Fprintln(os.Stderr, "scalebench:", err)
				os.Exit(1)
			}
		case "fleet":
			if err := runFleetBench(*members, *perMember, *jsonPath, *baseline); err != nil {
				fmt.Fprintln(os.Stderr, "scalebench:", err)
				os.Exit(1)
			}
		default:
			fmt.Fprintf(os.Stderr, "scalebench: unknown benchmark %q\n", name)
			os.Exit(2)
		}
	}
	if which == "all" {
		run("stat")
		run("open")
		run("mail")
		return
	}
	run(which)
}

// benchRecord is one measurement of the perf record.
type benchRecord struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// benchReport is the BENCH_*.json schema: enough environment to compare
// runs, plus flat records a dashboard (or jq) can consume directly.
type benchReport struct {
	Schema    int           `json:"schema"`
	Generated string        `json:"generated"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	NumCPU    int           `json:"num_cpu"`
	Records   []benchRecord `json:"records"`
}

// runPerf measures the pipeline: one cold Figure 6 fs-subset sweep (both
// kernels, all CPUs, no cache) for the end-to-end wall-clock — through
// the Client façade, so the same measurement covers the in-process engine
// or a remote serve instance — plus the sym-engine micro-benchmarks the
// README's Performance section tracks.
func runPerf(jsonPath, server, baseline string) error {
	var records []benchRecord
	add := func(name string, value float64, unit string) {
		records = append(records, benchRecord{Name: name, Value: value, Unit: unit})
		fmt.Printf("%-32s %12.2f %s\n", name, value, unit)
	}

	cli := commuter.Local()
	if server != "" {
		var err error
		if cli, err = commuter.Dial(server); err != nil {
			return err
		}
	}
	defer cli.Close()
	start := time.Now()
	res, err := cli.Sweep(context.Background(), commuter.WithOpSet("fs"))
	if err != nil {
		return err
	}
	add("fig6_fs_sweep_wall_ms", float64(time.Since(start))/1e6, "ms")
	add("fig6_fs_sweep_tests", float64(res.TotalTests()), "tests")
	add("fig6_fs_sweep_workers", float64(res.Workers), "workers")

	// Phase breakdown: where the sweep's CPU time went, summed across
	// pairs. The sum exceeds the wall clock above because pairs overlap
	// across workers; what the records track is the per-phase cost, so a
	// regression points at the layer that regressed (solver_ms is the
	// satisfiability-search share inside analyze+testgen).
	var phases commuter.PhaseTimes
	var satCalls int64
	var checkGroups, maxShards int
	for _, p := range res.Pairs {
		phases.AnalyzeMS += p.Phases.AnalyzeMS
		phases.TestgenMS += p.Phases.TestgenMS
		phases.CheckMS += p.Phases.CheckMS
		phases.SolverMS += p.Phases.SolverMS
		satCalls += p.Solver.SatCalls
		checkGroups += p.CheckGroups
		if p.CheckShards > maxShards {
			maxShards = p.CheckShards
		}
	}
	add("fig6_fs_sweep_analyze_ms", phases.AnalyzeMS, "ms")
	add("fig6_fs_sweep_testgen_ms", phases.TestgenMS, "ms")
	add("fig6_fs_sweep_check_ms", phases.CheckMS, "ms")
	add("fig6_fs_sweep_solver_ms", phases.SolverMS, "ms")
	add("fig6_fs_sweep_sat_calls", float64(satCalls), "calls")
	// Replay shape (non-ms, so the regression gate skips them): total setup
	// groups across the CHECK stages and the widest intra-pair shard fan-out.
	add("fig6_fs_sweep_check_groups", float64(checkGroups), "groups")
	add("fig6_fs_sweep_check_shards", float64(maxShards), "shards")

	// Sym-engine micro-benchmarks: the hot ANALYZE and ANALYZE+TESTGEN
	// paths on representative pairs, best of three.
	rename := timeBest(3, func() {
		r, _ := spec.OpByName(model.Spec, "rename")
		analyzer.AnalyzePair(model.Spec, r, r, analyzer.Options{})
	})
	add("sym_analyze_rename_rename_ms", rename, "ms")
	open2 := timeBest(3, func() {
		o, _ := spec.OpByName(model.Spec, "open")
		pr := analyzer.AnalyzePair(model.Spec, o, o, analyzer.Options{})
		testgen.Generate(model.Spec, pr, testgen.Options{})
	})
	add("sym_analyze_testgen_open_open_ms", open2, "ms")

	// The vm-spec sweep: the §5.2 virtual-memory universe (mmap, munmap,
	// mprotect, memread, memwrite) on the memvm reference kernel, end to
	// end through the same Client façade. Far smaller than the fs sweep,
	// but it is the only record exercising a non-POSIX spec's full
	// pipeline, so a regression here that the fs records miss points at
	// the spec-dispatch plumbing rather than the shared engine.
	vmStart := time.Now()
	vmRes, err := cli.Sweep(context.Background(), commuter.WithSpec("vm"))
	if err != nil {
		return err
	}
	add("fig8_vm_sweep_wall_ms", float64(time.Since(vmStart))/1e6, "ms")
	add("fig8_vm_sweep_tests", float64(vmRes.TotalTests()), "tests")

	// The same sweep sharded across a two-member fleet behind an
	// in-process HTTP coordinator: tracks the fleet path's end-to-end
	// cost (lease round trips included) next to the single-member
	// wall-clock above. On a multi-core machine with idle capacity this
	// is the near-linear speedup record; on a saturated one it bounds
	// the coordination overhead instead.
	fleetMS, fleetRes, err := fleetSweepWall(2, 0)
	if err != nil {
		return err
	}
	add("fig6_fs_fleet2_sweep_wall_ms", fleetMS, "ms")
	if err := sameMatrices(res, fleetRes); err != nil {
		return fmt.Errorf("fleet sweep diverges from single-member sweep: %w", err)
	}

	return finishReport(jsonPath, baseline, records)
}

// finishReport gates the records against a committed baseline (when one
// is named) and writes the BENCH_*.json record (when a path is named).
func finishReport(jsonPath, baseline string, records []benchRecord) error {
	if baseline != "" {
		if err := compareBaseline(baseline, records); err != nil {
			return err
		}
	}
	if jsonPath == "" {
		return nil
	}
	report := benchReport{
		Schema:    1,
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Records:   records,
	}
	data, err := json.MarshalIndent(report, "", "\t")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", jsonPath)
	return nil
}

// fleetSweepWall runs one cold fs-subset sweep sharded across n fleet
// members behind an in-process HTTP coordinator and returns the wall
// time in ms (submission of the first member to completion of the last)
// plus one member's merged result. workers sizes each member's pool; 0
// leaves the engine default (one per CPU).
func fleetSweepWall(n, workers int) (float64, *commuter.SweepResult, error) {
	// The coordinator's per-request log lines would swamp the bench
	// output; discard them.
	quiet := commuter.ServeWithLogger(slog.New(slog.NewTextHandler(io.Discard, nil)))
	h, err := commuter.NewServerHandler(commuter.Local(), quiet)
	if err != nil {
		return 0, nil, err
	}
	coord := httptest.NewServer(h)
	defer coord.Close()
	opts := []commuter.Option{commuter.WithOpSet("fs"), commuter.WithFleet(coord.URL)}
	if workers > 0 {
		opts = append(opts, commuter.WithWorkers(workers))
	}
	results := make([]*commuter.SweepResult, n)
	errs := make([]error, n)
	start := time.Now()
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = commuter.Local().Sweep(context.Background(), opts...)
		}(i)
	}
	wg.Wait()
	wall := float64(time.Since(start)) / 1e6
	for i, err := range errs {
		if err != nil {
			return 0, nil, fmt.Errorf("fleet member %d: %w", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if err := sameMatrices(results[0], results[i]); err != nil {
			return 0, nil, fmt.Errorf("fleet members 0 and %d disagree: %w", i, err)
		}
	}
	return wall, results[0], nil
}

// sameMatrices asserts two sweeps render byte-identical Figure 6
// matrices — the correctness guard behind every fleet measurement.
func sameMatrices(a, b *commuter.SweepResult) error {
	ma, mb := eval.MatricesFromSweep(a), eval.MatricesFromSweep(b)
	if len(ma) != len(mb) {
		return fmt.Errorf("%d vs %d kernel matrices", len(ma), len(mb))
	}
	for i := range ma {
		if fa, fb := eval.FormatMatrix(ma[i]), eval.FormatMatrix(mb[i]); fa != fb {
			return fmt.Errorf("matrix %d differs:\n%s\nvs:\n%s", i, fa, fb)
		}
	}
	return nil
}

// runFleetBench measures the fleet speedup directly: one cold fs-subset
// sweep on a single member, then the same sweep sharded across n
// members, each with the same per-member worker-pool size, so on a
// machine with n*j idle CPUs the fleet run approaches n-times the
// single-member throughput. A warmup sweep first takes the process-global
// interner warming out of the comparison.
func runFleetBench(n, workers int, jsonPath, baseline string) error {
	if n < 2 {
		return fmt.Errorf("fleet: need at least 2 members, have %d", n)
	}
	if workers <= 0 {
		workers = max(1, runtime.NumCPU()/n)
	}
	var records []benchRecord
	add := func(name string, value float64, unit string) {
		records = append(records, benchRecord{Name: name, Value: value, Unit: unit})
		fmt.Printf("%-32s %12.2f %s\n", name, value, unit)
	}
	fmt.Printf("fleet: %d members x %d workers on %d CPUs\n", n, workers, runtime.NumCPU())

	ctx := context.Background()
	if _, err := commuter.Local().Sweep(ctx, commuter.WithOpSet("fs"), commuter.WithWorkers(workers)); err != nil {
		return err
	}
	start := time.Now()
	single, err := commuter.Local().Sweep(ctx, commuter.WithOpSet("fs"), commuter.WithWorkers(workers))
	if err != nil {
		return err
	}
	singleMS := float64(time.Since(start)) / 1e6
	add("fleet_fs_single_wall_ms", singleMS, "ms")

	fleetMS, fleetRes, err := fleetSweepWall(n, workers)
	if err != nil {
		return err
	}
	add(fmt.Sprintf("fleet_fs_fleet%d_wall_ms", n), fleetMS, "ms")
	add(fmt.Sprintf("fleet_fs_fleet%d_speedup", n), singleMS/fleetMS, "x")
	add("fleet_fs_workers_per_member", float64(workers), "workers")
	if err := sameMatrices(single, fleetRes); err != nil {
		return fmt.Errorf("fleet sweep diverges from single-member sweep: %w", err)
	}
	return finishReport(jsonPath, baseline, records)
}

// Baseline gate tuning: a wall-time record regresses when it exceeds
// regressionFactor times its committed baseline. Sub-regressionFloorMS
// baselines are lifted to the floor first — at that scale scheduler noise
// dwarfs the pipeline and a strict ratio would flag nothing real.
const (
	regressionFactor  = 2.0
	regressionFloorMS = 5.0
)

// compareBaseline gates the wall-time records against a committed
// BENCH_*.json. Only "ms" records present in both runs are compared:
// counts are pinned by tests, and disjoint record sets (a renamed
// measurement) should fail review, not the gate.
func compareBaseline(path string, records []benchRecord) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base benchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	want := map[string]float64{}
	for _, r := range base.Records {
		if r.Unit == "ms" {
			want[r.Name] = r.Value
		}
	}
	var regressed []string
	compared := 0
	for _, r := range records {
		b, ok := want[r.Name]
		if r.Unit != "ms" || !ok {
			continue
		}
		compared++
		allowed := max(b, regressionFloorMS) * regressionFactor
		status := "ok"
		if r.Value > allowed {
			status = "REGRESSED"
			regressed = append(regressed, r.Name)
		}
		fmt.Printf("baseline %-32s %10.2f -> %10.2f ms (limit %10.2f) %s\n",
			r.Name, b, r.Value, allowed, status)
	}
	if compared == 0 {
		return fmt.Errorf("baseline %s shares no ms records with this run", path)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("performance regression (>%.0fx baseline): %s",
			regressionFactor, strings.Join(regressed, ", "))
	}
	return nil
}

// timeBest runs fn n times and returns the fastest wall-clock in ms (the
// usual minimum-of-N noise reduction).
func timeBest(n int, fn func()) float64 {
	best := 0.0
	for i := 0; i < n; i++ {
		t0 := time.Now()
		fn()
		d := float64(time.Since(t0)) / 1e6
		if i == 0 || d < best {
			best = d
		}
	}
	return best
}
