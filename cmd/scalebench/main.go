// Command scalebench regenerates the paper's Figure 7 throughput curves on
// the MESI coherence simulator:
//
//	scalebench stat    # Figure 7(a): statbench, three st_nlink variants
//	scalebench open    # Figure 7(b): openbench, any-FD vs lowest-FD
//	scalebench mail    # Figure 7(c): mail server, commutative vs regular
//	scalebench all     # the three Figure 7 benchmarks
//	scalebench perf    # machine-readable pipeline perf record
//
// Values are operations per million simulated cycles per core; the paper's
// absolute axes differ (real hardware), but the shapes — who scales, who
// collapses, and where — are the reproduction target.
//
// perf measures the pipeline itself rather than the simulated kernels: the
// Figure 6 fs-subset sweep wall-clock and the sym-engine (ANALYZE/TESTGEN)
// micro-benchmarks. The sweep runs through the commuter.Client façade —
// in-process by default, or against a `commuter serve` instance with
// -server, in which case the measurement covers the service (wire format,
// HTTP, streaming) end to end. With -json FILE it writes the measurements
// as a BENCH_*.json record (CI uploads one per run as an artifact), so
// the repository's performance trajectory is tracked instead of
// anecdotal.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/commuter"
	"repro/internal/analyzer"
	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/testgen"
)

func main() {
	coresFlag := flag.String("cores", "", "comma-separated core counts (default 1,10,...,80)")
	jsonPath := flag.String("json", "", "perf: also write the record to this BENCH_*.json file")
	server := flag.String("server", "", "perf: run the sweep on this `commuter serve` URL instead of in-process")
	flag.Parse()
	cores := eval.DefaultCores
	if *coresFlag != "" {
		cores = nil
		for _, s := range strings.Split(*coresFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 || n > 96 {
				fmt.Fprintf(os.Stderr, "scalebench: bad core count %q\n", s)
				os.Exit(2)
			}
			cores = append(cores, n)
		}
	}
	which := "all"
	if flag.NArg() > 0 {
		which = flag.Arg(0)
	}
	run := func(name string) {
		switch name {
		case "stat":
			fmt.Println(eval.FormatCurves("Figure 7(a): statbench (fstats/Mcycle/core)", []eval.Curve{
				eval.Statbench(eval.StatFstatx, cores),
				eval.Statbench(eval.StatShared, cores),
				eval.Statbench(eval.StatRefcache, cores),
			}))
		case "open":
			fmt.Println(eval.FormatCurves("Figure 7(b): openbench (opens/Mcycle/core)", []eval.Curve{
				eval.Openbench(true, cores),
				eval.Openbench(false, cores),
			}))
		case "mail":
			fmt.Println(eval.FormatCurves("Figure 7(c): mail server (messages/Mcycle/core)", []eval.Curve{
				eval.Mailbench(true, cores),
				eval.Mailbench(false, cores),
			}))
		case "perf":
			if err := runPerf(*jsonPath, *server); err != nil {
				fmt.Fprintln(os.Stderr, "scalebench:", err)
				os.Exit(1)
			}
		default:
			fmt.Fprintf(os.Stderr, "scalebench: unknown benchmark %q\n", name)
			os.Exit(2)
		}
	}
	if which == "all" {
		run("stat")
		run("open")
		run("mail")
		return
	}
	run(which)
}

// benchRecord is one measurement of the perf record.
type benchRecord struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// benchReport is the BENCH_*.json schema: enough environment to compare
// runs, plus flat records a dashboard (or jq) can consume directly.
type benchReport struct {
	Schema    int           `json:"schema"`
	Generated string        `json:"generated"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	NumCPU    int           `json:"num_cpu"`
	Records   []benchRecord `json:"records"`
}

// runPerf measures the pipeline: one cold Figure 6 fs-subset sweep (both
// kernels, all CPUs, no cache) for the end-to-end wall-clock — through
// the Client façade, so the same measurement covers the in-process engine
// or a remote serve instance — plus the sym-engine micro-benchmarks the
// README's Performance section tracks.
func runPerf(jsonPath, server string) error {
	var records []benchRecord
	add := func(name string, value float64, unit string) {
		records = append(records, benchRecord{Name: name, Value: value, Unit: unit})
		fmt.Printf("%-32s %12.2f %s\n", name, value, unit)
	}

	cli := commuter.Local()
	if server != "" {
		var err error
		if cli, err = commuter.Dial(server); err != nil {
			return err
		}
	}
	defer cli.Close()
	start := time.Now()
	res, err := cli.Sweep(context.Background(), commuter.WithOpSet("fs"))
	if err != nil {
		return err
	}
	add("fig6_fs_sweep_wall_ms", float64(time.Since(start))/1e6, "ms")
	add("fig6_fs_sweep_tests", float64(res.TotalTests()), "tests")
	add("fig6_fs_sweep_workers", float64(res.Workers), "workers")

	// Sym-engine micro-benchmarks: the hot ANALYZE and ANALYZE+TESTGEN
	// paths on representative pairs, best of three.
	rename := timeBest(3, func() {
		r, _ := spec.OpByName(model.Spec, "rename")
		analyzer.AnalyzePair(model.Spec, r, r, analyzer.Options{})
	})
	add("sym_analyze_rename_rename_ms", rename, "ms")
	open2 := timeBest(3, func() {
		o, _ := spec.OpByName(model.Spec, "open")
		pr := analyzer.AnalyzePair(model.Spec, o, o, analyzer.Options{})
		testgen.Generate(model.Spec, pr, testgen.Options{})
	})
	add("sym_analyze_testgen_open_open_ms", open2, "ms")

	if jsonPath == "" {
		return nil
	}
	report := benchReport{
		Schema:    1,
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Records:   records,
	}
	data, err := json.MarshalIndent(report, "", "\t")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", jsonPath)
	return nil
}

// timeBest runs fn n times and returns the fastest wall-clock in ms (the
// usual minimum-of-N noise reduction).
func timeBest(n int, fn func()) float64 {
	best := 0.0
	for i := 0; i < n; i++ {
		t0 := time.Now()
		fn()
		d := float64(time.Since(t0)) / 1e6
		if i == 0 || d < best {
			best = d
		}
	}
	return best
}
