// Command scalebench regenerates the paper's Figure 7 throughput curves on
// the MESI coherence simulator:
//
//	scalebench stat    # Figure 7(a): statbench, three st_nlink variants
//	scalebench open    # Figure 7(b): openbench, any-FD vs lowest-FD
//	scalebench mail    # Figure 7(c): mail server, commutative vs regular
//	scalebench all     # everything
//
// Values are operations per million simulated cycles per core; the paper's
// absolute axes differ (real hardware), but the shapes — who scales, who
// collapses, and where — are the reproduction target.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/eval"
)

func main() {
	coresFlag := flag.String("cores", "", "comma-separated core counts (default 1,10,...,80)")
	flag.Parse()
	cores := eval.DefaultCores
	if *coresFlag != "" {
		cores = nil
		for _, s := range strings.Split(*coresFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 || n > 96 {
				fmt.Fprintf(os.Stderr, "scalebench: bad core count %q\n", s)
				os.Exit(2)
			}
			cores = append(cores, n)
		}
	}
	which := "all"
	if flag.NArg() > 0 {
		which = flag.Arg(0)
	}
	run := func(name string) {
		switch name {
		case "stat":
			fmt.Println(eval.FormatCurves("Figure 7(a): statbench (fstats/Mcycle/core)", []eval.Curve{
				eval.Statbench(eval.StatFstatx, cores),
				eval.Statbench(eval.StatShared, cores),
				eval.Statbench(eval.StatRefcache, cores),
			}))
		case "open":
			fmt.Println(eval.FormatCurves("Figure 7(b): openbench (opens/Mcycle/core)", []eval.Curve{
				eval.Openbench(true, cores),
				eval.Openbench(false, cores),
			}))
		case "mail":
			fmt.Println(eval.FormatCurves("Figure 7(c): mail server (messages/Mcycle/core)", []eval.Curve{
				eval.Mailbench(true, cores),
				eval.Mailbench(false, cores),
			}))
		default:
			fmt.Fprintf(os.Stderr, "scalebench: unknown benchmark %q\n", name)
			os.Exit(2)
		}
	}
	if which == "all" {
		run("stat")
		run("open")
		run("mail")
		return
	}
	run(which)
}
