package scalerule_test

import (
	"testing"

	"repro/scalerule"
)

func observers() []scalerule.History {
	var ops []scalerule.Op
	for v := int64(0); v <= 3; v++ {
		ops = append(ops, scalerule.Op{Thread: 9, Class: "max", Ret: []int64{v}})
	}
	return scalerule.ObserverUniverse(ops, 1)
}

// The package-comment example, verified.
func TestDocExample(t *testing.T) {
	spec := scalerule.RefSpec{New: scalerule.NewCounter}
	y := scalerule.History{
		{Thread: 0, Class: "inc", Ret: []int64{0}},
		{Thread: 1, Class: "inc", Ret: []int64{0}},
	}
	var reads []scalerule.Op
	for v := int64(0); v <= 3; v++ {
		reads = append(reads, scalerule.Op{Thread: 9, Class: "read", Ret: []int64{v}})
	}
	obs := scalerule.ObserverUniverse(reads, 1)
	if !scalerule.SIMCommutes(spec, nil, y, obs) {
		t.Fatal("two incs must SIM-commute")
	}
	m := scalerule.NewScalable(nil, y, scalerule.NewCounter)
	for _, o := range y {
		if got := m.Invoke(o.Thread, o.Class, o.Args); got[0] != o.Ret[0] {
			t.Fatalf("invoke %v -> %v", o, got)
		}
	}
	if cs := scalerule.Conflicts(m.Log(), 0, len(y)); len(cs) != 0 {
		t.Errorf("commutative region conflicts: %v", cs)
	}
}

func TestFacadeReordering(t *testing.T) {
	h := scalerule.History{
		{Thread: 0, Class: "put", Args: []int64{1}, Ret: []int64{0}},
		{Thread: 1, Class: "put", Args: []int64{2}, Ret: []int64{0}},
	}
	rs := scalerule.Reorderings(h)
	if len(rs) != 2 {
		t.Fatalf("2 reorderings expected, got %d", len(rs))
	}
	for _, r := range rs {
		if !scalerule.IsReordering(h, r) {
			t.Error("generated non-reordering")
		}
	}
	if got := len(scalerule.Prefixes(h)); got != 3 {
		t.Errorf("prefixes = %d", got)
	}
}

func TestFacadeNonScalable(t *testing.T) {
	h := scalerule.History{
		{Thread: 0, Class: "put", Args: []int64{1}, Ret: []int64{0}},
		{Thread: 1, Class: "max", Ret: []int64{1}},
	}
	m := scalerule.NewNonScalable(h, scalerule.NewPutMax)
	for _, o := range h {
		if got := m.Invoke(o.Thread, o.Class, o.Args); got[0] != o.Ret[0] {
			t.Fatalf("replay %v -> %v", o, got)
		}
	}
	if cs := scalerule.Conflicts(m.Log(), 0, len(h)); len(cs) == 0 {
		t.Error("mns should conflict on its shared history")
	}
}

func TestCompletedOps(t *testing.T) {
	ops := scalerule.CompletedOps(3, "get", [][]int64{nil}, [][]int64{{0}, {1}})
	if len(ops) != 2 || ops[0].Thread != 3 {
		t.Errorf("CompletedOps = %v", ops)
	}
	_ = observers()
}
