// Package scalerule is the public API of the paper's §3 formalism: serial
// histories, specifications, SI and SIM commutativity, and the constructed
// implementations (Figures 1 and 2) whose conflict accounting demonstrates
// the scalable commutativity rule — whenever interface operations commute,
// they can be implemented in a way that scales.
//
// A quick demonstration that two increments commute and therefore admit a
// conflict-free implementation:
//
//	spec := scalerule.RefSpec{New: scalerule.NewCounter}
//	y := scalerule.History{
//		{Thread: 0, Class: "inc", Ret: []int64{0}},
//		{Thread: 1, Class: "inc", Ret: []int64{0}},
//	}
//	obs := scalerule.ObserverUniverse(..., 1)
//	scalerule.SIMCommutes(spec, nil, y, obs) // true
//	m := scalerule.NewScalable(nil, y, scalerule.NewCounter)
//	// feed y's invocations; scalerule.Conflicts(m.Log(), 0, 2) is empty.
package scalerule

import "repro/internal/history"

// Re-exported formalism types; see internal/history for details.
type (
	// Op is one completed operation (invocation plus response).
	Op = history.Op
	// History is a serial history.
	History = history.History
	// Spec decides history membership (prefix-closed).
	Spec = history.Spec
	// RefSpec derives a specification from a reference state machine.
	RefSpec = history.RefSpec
	// RefState is a deterministic reference state machine.
	RefState = history.RefState
	// Machine executes invocations and logs component accesses.
	Machine = history.Machine
	// CompAccess is one tracked state-component access.
	CompAccess = history.CompAccess
	// NonScalable is Figure 1's constructed implementation.
	NonScalable = history.NonScalable
	// Scalable is Figure 2's constructed implementation.
	Scalable = history.Scalable
)

// Re-exported functions.
var (
	// IsReordering reports whether one history reorders another.
	IsReordering = history.IsReordering
	// Reorderings enumerates all reorderings of a history.
	Reorderings = history.Reorderings
	// Prefixes enumerates all prefixes.
	Prefixes = history.Prefixes
	// SICommutes checks SI commutativity over an observer universe.
	SICommutes = history.SICommutes
	// SIMCommutes checks SIM commutativity (monotonic SI).
	SIMCommutes = history.SIMCommutes
	// ObserverUniverse builds bounded observer suffixes.
	ObserverUniverse = history.ObserverUniverse
	// CompletedOps enumerates candidate completed operations.
	CompletedOps = history.CompletedOps
	// NewNonScalable builds Figure 1's machine for a history.
	NewNonScalable = history.NewNonScalable
	// NewScalable builds Figure 2's machine for X || Y.
	NewScalable = history.NewScalable
	// Conflicts analyzes a machine's access log over a step window.
	Conflicts = history.Conflicts
	// NewRegister, NewPutMax and NewCounter are example reference
	// machines (get/set, §3.6's put/max, inc/read).
	NewRegister = history.NewRegister
	NewPutMax   = history.NewPutMax
	NewCounter  = history.NewCounter
)
