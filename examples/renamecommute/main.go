// Renamecommute reproduces §5.1's worked example: the commutativity
// conditions of two rename calls, the concrete test cases TESTGEN derives
// (the paper's Figure 5 shows one), and both kernels' conflict verdicts.
//
//	go run ./examples/renamecommute
package main

import (
	"fmt"
	"strings"

	"repro/commuter"
)

func main() {
	fmt.Println("== rename(a,b) x rename(c,d) (§5.1, Figure 4 model) ==")
	pair := commuter.Analyze("rename", "rename", commuter.Options{})
	fmt.Println(pair.Summary())
	fmt.Println()

	// The paper lists six classes of commutative situations; spot-check
	// the headline one with concrete tests.
	tests := commuter.GenerateTests(pair, commuter.GenOptions{MaxTestsPerPath: 3})
	fmt.Printf("TESTGEN produced %d test cases; a sample with kernel verdicts:\n\n", len(tests))

	shown := 0
	for _, tc := range tests {
		if shown >= 6 {
			break
		}
		shown++
		fmt.Printf("%s\n", tc.ID)
		for _, f := range tc.Setup.Files {
			fmt.Printf("   setup: %s -> inode %d\n", f.Name, f.Inum)
		}
		fmt.Printf("   op0: %v\n   op1: %v\n", tc.Calls[0], tc.Calls[1])
		for _, newK := range []struct {
			name  string
			fresh func() commuter.Kernel
		}{{"linux", commuter.NewLinux}, {"sv6", commuter.NewSv6}} {
			res, err := commuter.Check(newK.fresh, tc)
			if err != nil {
				fmt.Printf("   %-5s: error: %v\n", newK.name, err)
				continue
			}
			if res.ConflictFree {
				fmt.Printf("   %-5s: conflict-free\n", newK.name)
			} else {
				var cells []string
				for _, c := range res.Conflicts {
					cells = append(cells, c.CellName)
				}
				fmt.Printf("   %-5s: conflicts on %s\n", newK.name, strings.Join(cells, ", "))
			}
		}
		fmt.Println()
	}
	fmt.Println("Linux's directory lock serializes every rename; sv6's per-bucket")
	fmt.Println("hash directory keeps renames of unrelated names conflict-free.")
}
