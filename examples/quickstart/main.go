// Quickstart walks the scalable commutativity rule end to end on §3.6's
// put/max interface, then runs one COMMUTER analysis of a POSIX pair.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/commuter"
	"repro/scalerule"
)

func main() {
	fmt.Println("== The scalable commutativity rule on put/max (§3.6) ==")

	// The history H = [put(2)] || [put(1), put(1), max()=2]: after put(2),
	// the two puts and the max all commute (max already returns 2 in any
	// order of the region).
	x := scalerule.History{{Thread: 0, Class: "put", Args: []int64{2}, Ret: []int64{0}}}
	y := scalerule.History{
		{Thread: 0, Class: "put", Args: []int64{1}, Ret: []int64{0}},
		{Thread: 1, Class: "put", Args: []int64{1}, Ret: []int64{0}},
		{Thread: 2, Class: "max", Ret: []int64{2}},
	}

	// Observers: max() with any plausible return distinguishes states.
	var maxes []scalerule.Op
	for v := int64(0); v <= 3; v++ {
		maxes = append(maxes, scalerule.Op{Thread: 9, Class: "max", Ret: []int64{v}})
	}
	obs := scalerule.ObserverUniverse(maxes, 1)
	spec := scalerule.RefSpec{New: scalerule.NewPutMax}

	fmt.Printf("region SIM-commutes after put(2): %v\n",
		scalerule.SIMCommutes(spec, x, y, obs))

	// The rule says a conflict-free implementation of the region exists.
	// Build the paper's Figure 2 construction and verify.
	m := scalerule.NewScalable(x, y, scalerule.NewPutMax)
	for _, o := range x.Concat(y) {
		ret := m.Invoke(o.Thread, o.Class, o.Args)
		fmt.Printf("  %v -> %v\n", o, ret)
	}
	conflicts := scalerule.Conflicts(m.Log(), len(x), len(x)+len(y))
	fmt.Printf("conflicts inside the commutative region: %v (empty = scales)\n\n", conflicts)

	fmt.Println("== COMMUTER on a POSIX pair: open x open ==")
	pair := commuter.Analyze("open", "open", commuter.Options{})
	fmt.Println(pair.Summary())

	tests := commuter.GenerateTests(pair, commuter.GenOptions{MaxTestsPerPath: 2})
	fmt.Printf("generated %d concrete commutative test cases\n", len(tests))

	linuxBad, sv6Bad := 0, 0
	for _, tc := range tests {
		if r, err := commuter.Check(commuter.NewLinux, tc); err == nil && !r.ConflictFree {
			linuxBad++
		}
		if r, err := commuter.Check(commuter.NewSv6, tc); err == nil && !r.ConflictFree {
			sv6Bad++
		}
	}
	fmt.Printf("not conflict-free: linux %d/%d, sv6 %d/%d\n",
		linuxBad, len(tests), sv6Bad, len(tests))
	fmt.Println("(the rule: every one of these commutative tests *could* be conflict-free)")
}
