// Remote_sweep demonstrates the Client API's two bindings end to end in
// one process: it hosts the COMMUTER pipeline on a loopback HTTP server
// (the same handler `commuter serve` runs), dials it, streams a small
// sweep over the versioned JSON protocol, and shows that the remote
// result renders the exact same Figure 6 matrix as an in-process run.
//
//	go run ./examples/remote_sweep
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"repro/commuter"
	"repro/internal/eval"
)

func main() {
	// Host the pipeline: any Client can back the handler; here the
	// in-process binding, with a shared sweep cache.
	cacheDir, err := os.MkdirTemp("", "commuter-cache-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(cacheDir)
	handler, err := commuter.NewServerHandler(commuter.Local(), commuter.ServeWithCache(cacheDir))
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	defer srv.Close()

	url := "http://" + ln.Addr().String()
	fmt.Printf("serving the COMMUTER pipeline on %s\n\n", url)

	// Dial it. Everything below would work identically with
	// cli := commuter.Local() — that is the point of the interface.
	cli, err := commuter.Dial(url)
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()
	ctx := context.Background()

	// One request-response call: analyze a pair on the server.
	analysis, err := cli.Analyze(ctx, "stat", "unlink")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(analysis.Summary())

	// One streamed sweep: per-pair results arrive as NDJSON frames while
	// the server still computes the rest.
	fmt.Println("\nsweeping stat,lseek,close,open over the wire:")
	opts := []commuter.Option{commuter.WithOps("stat", "lseek", "close", "open")}
	var remote *commuter.SweepResult
	for upd, err := range cli.SweepStream(ctx, opts...) {
		if err != nil {
			log.Fatal(err)
		}
		if ev := upd.Progress; ev != nil {
			fmt.Printf("  [%2d/%2d] %-12s %3d tests in %.0fms\n", ev.Done, ev.Total, ev.Pair, ev.Tests, ev.PairMS)
		}
		if upd.Result != nil {
			remote = upd.Result
		}
	}
	fmt.Printf("server cache after the sweep: %d testgen misses (cold run)\n\n", remote.Cache.TestgenMisses)

	// The remote result is the local result: same pairs, same cells, same
	// rendered matrix.
	local, err := commuter.Local().Sweep(ctx, opts...)
	if err != nil {
		log.Fatal(err)
	}
	for i, m := range eval.MatricesFromSweep(remote) {
		lm := eval.MatricesFromSweep(local)[i]
		same := eval.FormatMatrix(m) == eval.FormatMatrix(lm)
		fmt.Printf("%s(remote matrix byte-identical to local: %v)\n\n", eval.FormatMatrix(m), same)
	}
}
