// Statbench reproduces §7.2's first microbenchmark: n/2 cores fstat a file
// while n/2 cores link/unlink it. fstat returns st_nlink and therefore
// does not commute with link — one small compound-return field destroys
// scalability. fstatx (the paper's proposed API) lets callers omit the
// field, restoring commutativity and conflict-freedom.
//
//	go run ./examples/statbench
package main

import (
	"fmt"

	"repro/commuter"
)

func main() {
	fmt.Println("== statbench (§7.2, Figure 7a) ==")
	fmt.Println()
	fmt.Println("fstat returns st_nlink, so it does not commute with concurrent")
	fmt.Println("link/unlink of the same file; fstatx(...without st_nlink) does.")
	fmt.Println()

	cores := []int{1, 10, 20, 40, 80}
	fmt.Println(commuter.FormatCurves(
		"fstat throughput while n/2 cores link/unlink (fstats/Mcycle/core)",
		[]commuter.Curve{
			commuter.Statbench(commuter.StatFstatx, cores),
			commuter.Statbench(commuter.StatShared, cores),
			commuter.Statbench(commuter.StatRefcache, cores),
		}))

	fmt.Println("Reading the three columns:")
	fmt.Println(" - Without st_nlink (fstatx): commutative with link/unlink; the")
	fmt.Println("   implementation is conflict-free and per-core throughput is flat.")
	fmt.Println(" - Shared st_nlink: every link/unlink writes one cache line that")
	fmt.Println("   every fstat reads — 'the most scalable fstat can possibly be'")
	fmt.Println("   given the interface, and it still collapses (§7.2).")
	fmt.Println(" - Refcache st_nlink: link/unlink scale (per-core deltas), but")
	fmt.Println("   fstat pays reconciliation across every core's delta line.")
}
