// Mailserver runs the §7.3 application workload with regular and
// commutative APIs, showing the conflict reports and the simulated
// scalability curves that reproduce Figure 7(c)'s shape.
//
//	go run ./examples/mailserver
package main

import (
	"fmt"

	"repro/commuter"
	"repro/internal/mail"
)

func main() {
	fmt.Println("== qmail-like mail server (§7.3) ==")
	for _, commutative := range []bool{false, true} {
		cfg := "regular APIs (lowest FD, ordered socket, fork)"
		if commutative {
			cfg = "commutative APIs (O_ANYFD, unordered socket, posix_spawn)"
		}
		fmt.Printf("\n-- %s --\n", cfg)
		s := mail.NewServer(mail.Config{Commutative: commutative})
		// Warm up, then trace one message pipeline on each of two cores.
		for core := 0; core < 2; core++ {
			if err := s.DeliverOne(core); err != nil {
				panic(err)
			}
		}
		s.Memory().Start()
		for core := 0; core < 2; core++ {
			if err := s.DeliverOne(core); err != nil {
				panic(err)
			}
		}
		s.Memory().Stop()
		conflicts := s.Memory().Conflicts()
		if len(conflicts) == 0 {
			fmt.Println("two cores delivering concurrently: conflict-free")
		} else {
			fmt.Println("two cores delivering concurrently share:")
			for _, c := range conflicts {
				fmt.Printf("  %s\n", c.CellName)
			}
		}
	}

	cores := []int{1, 2, 4, 8, 16, 32, 64, 80}
	fmt.Println()
	fmt.Println(commuter.FormatCurves(
		"Figure 7(c) shape: mail throughput (messages/Mcycle/core)",
		[]commuter.Curve{
			commuter.Mailbench(true, cores),
			commuter.Mailbench(false, cores),
		}))
}
