// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation:
//
//   - BenchmarkFigure6* re-run the COMMUTER pipeline (ANALYZER → TESTGEN →
//     MTRACE check) per kernel and report conflict-free fractions,
//   - BenchmarkFigure7a/b/c replay traced workloads through the MESI
//     coherence simulator at 80 cores and report per-core throughput,
//   - BenchmarkSequentialFstat* measure §7.2's single-core cost of
//     scalability (Refcache reconciliation vs a shared counter),
//   - BenchmarkReal* corroborate the simulator's shapes with real atomics
//     on the host's cores (shared cache line vs per-core lines),
//   - BenchmarkAblation* quantify the design choices DESIGN.md calls out
//     (hash-directory bucket counts, coherence transfer costs).
//
// Reported custom metrics make the regenerated "rows" visible in benchmark
// output: tests, conflictfree_pct, percore_ops_per_Mcycle, speedup ratios.
package repro_test

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/coherence"
	"repro/internal/eval"
	"repro/internal/kernel"
	"repro/internal/kernel/svsix"
	"repro/internal/model"
	"repro/internal/mtrace"
	"repro/internal/scale"
	"repro/internal/testgen"
)

// fsOps is the fast (file-system metadata) operation subset used by the
// in-benchmark matrix; the full 18-op matrix lives in cmd/commuter.
func fsOps() []*model.OpDef {
	names := []string{"open", "link", "unlink", "rename", "stat", "fstat", "lseek", "close", "pipe"}
	out := make([]*model.OpDef, len(names))
	for i, n := range names {
		out[i] = model.OpByName(n)
	}
	return out
}

var testsCache map[[2]string]eval.PairTests

func generatedTests(b *testing.B) map[[2]string]eval.PairTests {
	b.Helper()
	if testsCache == nil {
		testsCache = eval.GenerateAllTests(model.Spec, fsOps(),
			analyzer.Options{}, testgen.Options{MaxTestsPerPath: 4}, nil)
	}
	return testsCache
}

func benchMatrix(b *testing.B, kernelName string) {
	tests := generatedTests(b)
	var m eval.Matrix
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		m, err = eval.CheckMatrix(model.Spec, kernelName, tests)
		if err != nil {
			b.Fatal(err)
		}
	}
	total, conf := m.Totals()
	b.ReportMetric(float64(total), "tests")
	b.ReportMetric(100*float64(total-conf)/float64(total), "conflictfree_pct")
}

// BenchmarkFigure6Linux regenerates the left half of Figure 6 (file-system
// subset): the fraction of commutative tests Linux executes conflict-free.
func BenchmarkFigure6Linux(b *testing.B) { benchMatrix(b, "linux") }

// BenchmarkFigure6Sv6 regenerates the right half of Figure 6 (file-system
// subset): sv6's conflict-free fraction.
func BenchmarkFigure6Sv6(b *testing.B) { benchMatrix(b, "sv6") }

// BenchmarkTestGeneration regenerates §6.1's headline: the number of test
// cases COMMUTER generates (file-system subset) and how long that takes —
// the paper reports 13,664 tests over all 18 calls in 8 minutes.
func BenchmarkTestGeneration(b *testing.B) {
	var total int
	for i := 0; i < b.N; i++ {
		tests := eval.GenerateAllTests(model.Spec, fsOps(),
			analyzer.Options{}, testgen.Options{MaxTestsPerPath: 4}, nil)
		total = 0
		for _, ts := range tests {
			total += len(ts.Tests)
		}
	}
	b.ReportMetric(float64(total), "tests")
}

func benchCurvePoint(b *testing.B, f func() float64) {
	var v float64
	for i := 0; i < b.N; i++ {
		v = f()
	}
	b.ReportMetric(v, "percore_ops_per_Mcycle")
}

// Figure 7(a): statbench at 80 cores, three st_nlink representations.
func BenchmarkFigure7aStatbenchFstatx(b *testing.B) {
	benchCurvePoint(b, func() float64 {
		return eval.Statbench(eval.StatFstatx, []int{80}).PerSec[0]
	})
}

func BenchmarkFigure7aStatbenchRefcache(b *testing.B) {
	benchCurvePoint(b, func() float64 {
		return eval.Statbench(eval.StatRefcache, []int{80}).PerSec[0]
	})
}

func BenchmarkFigure7aStatbenchSharedCount(b *testing.B) {
	benchCurvePoint(b, func() float64 {
		return eval.Statbench(eval.StatShared, []int{80}).PerSec[0]
	})
}

// Figure 7(b): openbench at 80 cores, any-FD vs lowest-FD.
func BenchmarkFigure7bOpenbenchAnyFD(b *testing.B) {
	benchCurvePoint(b, func() float64 { return eval.Openbench(true, []int{80}).PerSec[0] })
}

func BenchmarkFigure7bOpenbenchLowestFD(b *testing.B) {
	benchCurvePoint(b, func() float64 { return eval.Openbench(false, []int{80}).PerSec[0] })
}

// Figure 7(c): the mail server at 80 cores, commutative vs regular APIs.
func BenchmarkFigure7cMailCommutative(b *testing.B) {
	benchCurvePoint(b, func() float64 { return eval.Mailbench(true, []int{80}).PerSec[0] })
}

func BenchmarkFigure7cMailRegular(b *testing.B) {
	benchCurvePoint(b, func() float64 { return eval.Mailbench(false, []int{80}).PerSec[0] })
}

// §7.2's sequential-performance observation: with Refcache, a single-core
// fstat must reconcile per-core deltas and becomes several times more
// expensive than with a shared count (the paper measures 3.9x at 80 cores'
// worth of Refcache caches).
func sequentialFstat(b *testing.B, shared bool) {
	k := svsix.NewOpts(svsix.Opts{SharedLinkCount: shared})
	setup := kernel.Setup{
		Files:  []kernel.SetupFile{{Name: "f0", Inum: 1}},
		Inodes: []kernel.SetupInode{{Inum: 1, Len: 1}},
		FDs:    []kernel.SetupFD{{Proc: 0, FD: 0, Inum: 1}},
	}
	if err := k.Apply(setup); err != nil {
		b.Fatal(err)
	}
	call := kernel.Call{Op: "fstat", Args: map[string]int64{"fd": 0}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := k.Exec(0, call); r.Code != 0 {
			b.Fatal(r)
		}
	}
}

func BenchmarkSequentialFstatRefcache(b *testing.B)    { sequentialFstat(b, false) }
func BenchmarkSequentialFstatSharedCount(b *testing.B) { sequentialFstat(b, true) }

// Real-hardware corroboration (§7.1's premise): a single modified shared
// cache line collapses scalability on actual cores, while per-core lines
// scale. Run with -cpu 1,2,4,... to see the divergence.
func BenchmarkRealSharedCounter(b *testing.B) {
	var c scale.RealSharedCounter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc(1)
		}
	})
}

func BenchmarkRealRefcacheInc(b *testing.B) {
	rc := scale.NewRealRefcache(runtime.GOMAXPROCS(0)*2, 0)
	var slot atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		s := int(slot.Add(1)-1) % (runtime.GOMAXPROCS(0) * 2)
		for pb.Next() {
			rc.Inc(s, 1)
		}
	})
}

func BenchmarkRealLowestFD(b *testing.B) {
	t := scale.NewRealLowestFD(1 << 16)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			fd := t.Alloc()
			t.Free(fd)
		}
	})
}

func BenchmarkRealAnyFD(b *testing.B) {
	t := scale.NewRealAnyFD(runtime.GOMAXPROCS(0) * 2)
	var slot atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		s := int(slot.Add(1)-1) % (runtime.GOMAXPROCS(0) * 2)
		for pb.Next() {
			t.Free(t.Alloc(s))
		}
	})
}

// Ablation: the hash directory's bucket count trades collision conflicts
// against memory; DESIGN.md calls this choice out. Reported metric is the
// conflict-free percentage of concurrent distinct-name creates.
func BenchmarkAblationDirBuckets(b *testing.B) {
	for _, buckets := range []int{1, 16, 64, 1024} {
		b.Run(fmt.Sprintf("buckets=%d", buckets), func(b *testing.B) {
			free := 0
			trials := 0
			for i := 0; i < b.N; i++ {
				mem := newTracedDirMem(buckets)
				free, trials = mem.run()
			}
			b.ReportMetric(100*float64(free)/float64(trials), "conflictfree_pct")
		})
	}
}

// newTracedDirMem builds a directory with the given bucket count and
// measures conflict-freedom of pairwise distinct-name inserts.
type tracedDir struct {
	buckets int
}

func newTracedDirMem(buckets int) tracedDir { return tracedDir{buckets: buckets} }

func (td tracedDir) run() (free, trials int) {
	for a := int64(0); a < 8; a++ {
		for bn := a + 1; bn < 8; bn++ {
			mem := mtrace.NewMemory()
			d := scale.NewHashDir(mem, "dir", td.buckets)
			mem.Start()
			d.Insert(0, a, 100)
			d.Insert(1, bn, 200)
			mem.Stop()
			trials++
			if mem.ConflictFree() {
				free++
			}
		}
	}
	return free, trials
}

// Ablation: the coherence simulator's transfer-cost parameter controls how
// hard contention collapses; the contended/free throughput ratio is the
// reported metric.
func BenchmarkAblationTransferCost(b *testing.B) {
	for _, cost := range []int64{10, 100, 400} {
		b.Run(fmt.Sprintf("transfer=%d", cost), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				n := 16
				shared := make([]coherence.CoreTrace, n)
				private := make([]coherence.CoreTrace, n)
				for c := 0; c < n; c++ {
					shared[c] = coherence.CoreTrace{coherence.Op{{Line: 0, Write: true}}}
					private[c] = coherence.CoreTrace{coherence.Op{{Line: c + 1, Write: true}}}
				}
				opts := coherence.Opts{TransferCost: cost, Duration: 200_000}
				rs := coherence.Simulate(shared, opts)
				rp := coherence.Simulate(private, opts)
				ratio = rp.PerCorePerCycle() / rs.PerCorePerCycle()
			}
			b.ReportMetric(ratio, "free_over_contended")
		})
	}
}
