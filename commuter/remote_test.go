package commuter_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/commuter"
	"repro/internal/eval"
)

// newLoopback starts a wire-format server over Local() on a loopback
// listener and dials it.
func newLoopback(t *testing.T, opts ...commuter.ServerOption) (commuter.Client, *httptest.Server) {
	t.Helper()
	h, err := commuter.NewServerHandler(commuter.Local(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	cli, err := commuter.Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli, srv
}

// stripTimings zeroes the timing fields, which legitimately differ
// between runs; everything else must round-trip exactly.
func stripTimings(res *commuter.SweepResult) *commuter.SweepResult {
	out := *res
	out.Elapsed = 0
	out.Pairs = append([]commuter.SweepPair(nil), res.Pairs...)
	for i := range out.Pairs {
		out.Pairs[i].ElapsedMS = 0
		out.Pairs[i].Cached = false // cache state differs run to run, not pair content
		out.Pairs[i].StartMS = 0
		out.Pairs[i].Phases = commuter.PhaseTimes{}
		out.Pairs[i].Solver = commuter.SolverCounters{}
		// Execution-shape details: CheckGroups is populated only when the
		// CHECK stage actually replays (cache hits skip it), and the shard
		// count depends on how many worker permits happened to be idle when
		// the pair's CHECK stage ran.
		out.Pairs[i].CheckGroups = 0
		out.Pairs[i].CheckShards = 0
	}
	return &out
}

// TestRemoteSweepMatchesLocal is the implementation-agnosticism proof: a
// small sweep through the HTTP binding must equal the in-process run —
// structurally on the pair results, and byte-for-byte on the rendered
// Figure 6 matrices.
func TestRemoteSweepMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline in -short mode")
	}
	ctx := context.Background()
	opts := []commuter.Option{commuter.WithOps("stat", "lseek", "close"), commuter.WithWorkers(2)}

	local, err := commuter.Local().Sweep(ctx, opts...)
	if err != nil {
		t.Fatal(err)
	}
	cli, _ := newLoopback(t)
	remote, err := cli.Sweep(ctx, opts...)
	if err != nil {
		t.Fatal(err)
	}

	lt, rt := stripTimings(local), stripTimings(remote)
	rt.Workers = lt.Workers // resolved by whichever side executes
	if !reflect.DeepEqual(lt, rt) {
		lj, _ := json.MarshalIndent(lt, "", " ")
		rj, _ := json.MarshalIndent(rt, "", " ")
		t.Fatalf("remote sweep diverged from local:\nlocal:\n%s\nremote:\n%s", lj, rj)
	}

	// The rendering the CLI prints must be byte-identical too.
	lm, rm := eval.MatricesFromSweep(local), eval.MatricesFromSweep(remote)
	if len(lm) != len(rm) {
		t.Fatalf("matrix count: %d vs %d", len(lm), len(rm))
	}
	for i := range lm {
		if got, want := eval.FormatMatrix(rm[i]), eval.FormatMatrix(lm[i]); got != want {
			t.Errorf("matrix %d rendering diverged:\nremote:\n%s\nlocal:\n%s", i, got, want)
		}
	}
}

// TestRemotePipelineMatchesLocal pins the request-response endpoints:
// specs, analysis and testgen+check must agree across the wire.
func TestRemotePipelineMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline in -short mode")
	}
	ctx := context.Background()
	cli, _ := newLoopback(t)
	local := commuter.Local()

	ls, err := local.Specs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := cli.Specs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ls, rs) {
		t.Errorf("specs diverged:\nlocal:  %+v\nremote: %+v", ls, rs)
	}

	la, err := local.Analyze(ctx, "stat", "unlink")
	if err != nil {
		t.Fatal(err)
	}
	ra, err := cli.Analyze(ctx, "stat", "unlink")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(la, ra) {
		t.Errorf("analysis diverged:\nlocal:  %+v\nremote: %+v", la, ra)
	}

	lt, err := local.GenerateTests(ctx, "stat", "unlink", commuter.WithTestsPerPath(2))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := cli.GenerateTests(ctx, "stat", "unlink", commuter.WithTestsPerPath(2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lt, rt) {
		t.Errorf("test sets diverged (%d vs %d tests)", len(lt.Tests), len(rt.Tests))
	}

	lc, err := local.Check(ctx, "sv6", lt.Tests)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := cli.Check(ctx, "sv6", rt.Tests)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lc, rc) {
		t.Errorf("check summaries diverged:\nlocal:  %+v\nremote: %+v", lc, rc)
	}
}

// TestRemoteErrorsMatchLocal pins that name-resolution failures read the
// same through the wire as in-process.
func TestRemoteErrorsMatchLocal(t *testing.T) {
	ctx := context.Background()
	cli, _ := newLoopback(t)
	local := commuter.Local()

	_, lerr := local.Analyze(ctx, "renme", "rename")
	_, rerr := cli.Analyze(ctx, "renme", "rename")
	if lerr == nil || rerr == nil {
		t.Fatalf("unknown op did not error (local %v, remote %v)", lerr, rerr)
	}
	if lerr.Error() != rerr.Error() {
		t.Errorf("error text diverged:\nlocal:  %s\nremote: %s", lerr, rerr)
	}

	if _, err := cli.Sweep(ctx, commuter.WithSpec("posxi")); err == nil ||
		!strings.Contains(err.Error(), "known specs:") {
		t.Errorf("remote sweep with unknown spec: %v", err)
	}

	// WithCache is a local-only option; the remote binding must reject it
	// client-side instead of silently ignoring it.
	if _, err := cli.Sweep(ctx, commuter.WithOps("stat"), commuter.WithCache(t.TempDir())); err == nil ||
		!strings.Contains(err.Error(), "commuter serve -cache") {
		t.Errorf("remote sweep with WithCache: %v", err)
	}
}

// TestRemoteSweepServerCache pins the serve-side shared cache: a cold
// sweep misses, a warm rerun of the same request hits both tiers and
// recomputes nothing.
func TestRemoteSweepServerCache(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline in -short mode")
	}
	ctx := context.Background()
	cli, _ := newLoopback(t, commuter.ServeWithCache(t.TempDir()))
	opts := []commuter.Option{commuter.WithOps("stat", "lseek", "close")}

	cold, err := cli.Sweep(ctx, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cache.TestgenMisses == 0 || cold.Cache.TestgenHits != 0 {
		t.Errorf("cold sweep stats: %+v", cold.Cache)
	}
	warm, err := cli.Sweep(ctx, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cache.TestgenMisses != 0 || warm.Cache.CheckMisses != 0 || warm.Cache.TestgenHits == 0 {
		t.Errorf("warm sweep stats: %+v", warm.Cache)
	}
	for _, p := range warm.Pairs {
		if !p.Cached {
			t.Errorf("warm pair %s was recomputed", p.Pair())
		}
	}
}

// TestRemoteSweepCancel is the remote half of the acceptance criterion:
// cancelling a sweep running on the server returns context.Canceled to
// the dialing side promptly and leaks no goroutines on either side (both
// live in this process here, so one counter covers them).
func TestRemoteSweepCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline in -short mode")
	}
	cli, srv := newLoopback(t)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var sawErr error
	start := time.Now()
	for upd, err := range cli.SweepStream(ctx, commuter.WithOps("stat", "lseek", "close", "open")) {
		if err != nil {
			sawErr = err
			break
		}
		if upd.Progress != nil {
			cancel()
		}
	}
	if !errors.Is(sawErr, context.Canceled) {
		t.Errorf("cancelled remote stream ended with %v, want context.Canceled", sawErr)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("cancellation took %v to surface", elapsed)
	}

	// Both halves live in this process: wait for the server handler and
	// the client bridge to wind down, then compare goroutine counts.
	srv.Config.SetKeepAlivesEnabled(false)
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutine leak after cancelled remote sweep: %d before, %d after", before, after)
	}
}

// TestDialValidation pins Dial's URL contract.
func TestDialValidation(t *testing.T) {
	for _, bad := range []string{"", "localhost:1", "ftp://x", "http://"} {
		if _, err := commuter.Dial(bad); err == nil {
			t.Errorf("Dial(%q) accepted", bad)
		}
	}
	if _, err := commuter.Dial("http://localhost:0"); err != nil {
		t.Errorf("Dial(valid) = %v", err)
	}
}
